package repro

// One benchmark per reproduced table/figure (DESIGN.md §3), plus the
// ablations. Each bench exercises the same code path the experiment
// harness (cmd/experiments) uses, at bench-friendly sizes; custom
// metrics report the paper-comparable quantities (slopes, capacities,
// hit rates) alongside ns/op.

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/distiller"
	"repro/internal/manager"
	"repro/internal/media"
	"repro/internal/san"
	"repro/internal/search"
	"repro/internal/snsim"
	"repro/internal/stub"
	"repro/internal/tacc"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vcache"
)

// BenchmarkFig5SizeSampling measures the Figure 5 content model and
// reports the sampled means for comparison with the paper's captions.
func BenchmarkFig5SizeSampling(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	model := trace.NewContentModel()
	var gifSum, gifN float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mime, size := model.Sample(rng)
		if mime == media.MIMESGIF {
			gifSum += float64(size)
			gifN++
		}
	}
	if gifN > 0 {
		b.ReportMetric(gifSum/gifN, "gif-mean-bytes")
	}
}

// BenchmarkFig6Arrivals generates one hour of the bursty arrival
// process per iteration.
func BenchmarkFig6Arrivals(b *testing.B) {
	model := trace.DefaultArrivals(1)
	rng := rand.New(rand.NewSource(1))
	var events int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events += len(model.Generate(rng, 12*time.Hour, 13*time.Hour))
	}
	b.ReportMetric(float64(events)/float64(b.N), "arrivals/hour")
}

// BenchmarkFig7DistillerLatency measures the real SGIF distiller on
// ~10 KB inputs and reports the per-KB cost (the paper's Figure 7
// slope, hardware-scaled).
func BenchmarkFig7DistillerLatency(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := media.GenerateContent(rng, media.MIMESGIF, 10*1024)
	w := distiller.SGIFDistiller{}
	task := &tacc.Task{Input: tacc.Blob{MIME: media.MIMESGIF, Data: data}}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Process(context.Background(), task); err != nil {
			b.Fatal(err)
		}
	}
	perKB := float64(b.Elapsed().Microseconds()) / 1000 / float64(b.N) / (float64(len(data)) / 1024)
	b.ReportMetric(perKB, "ms/KB")
}

// BenchmarkFig8SelfTuning runs the full 400-virtual-second Figure 8
// scenario per iteration.
func BenchmarkFig8SelfTuning(b *testing.B) {
	var spawns int
	for i := 0; i < b.N; i++ {
		res := snsim.RunFigure8(int64(i + 1))
		spawns += len(res.Spawns)
	}
	b.ReportMetric(float64(spawns)/float64(b.N), "spawns/run")
}

// BenchmarkTable2Scalability runs the full Table 2 sweep per
// iteration and reports the derived per-distiller capacity.
func BenchmarkTable2Scalability(b *testing.B) {
	var cap float64
	for i := 0; i < b.N; i++ {
		res := snsim.RunTable2(int64(i + 1))
		cap = res.PerDistillerReqS
	}
	b.ReportMetric(cap, "req/s-per-distiller")
}

// BenchmarkCachePartition measures the live cache partition's
// get/put path (the Harvest stand-in of §4.4).
func BenchmarkCachePartition(b *testing.B) {
	p := vcache.NewPartition(64<<20, nil)
	data := make([]byte, 8192)
	for i := 0; i < 1000; i++ {
		p.Put(fmt.Sprintf("warm%d", i), data, "b", 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("warm%d", i%1000)
		if _, ok := p.Get(key); !ok {
			b.Fatal("miss on warm key")
		}
	}
}

// BenchmarkCacheServiceModel reproduces the §4.4 service-time numbers.
func BenchmarkCacheServiceModel(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res := snsim.RunCacheService(int64(i + 1))
		mean = res.MeanHitMs
	}
	b.ReportMetric(mean, "hit-ms")
}

// BenchmarkCacheHitRateCurve simulates one LRU point (scaled down)
// and reports the hit rate.
func BenchmarkCacheHitRateCurve(b *testing.B) {
	var hit float64
	for i := 0; i < b.N; i++ {
		res := snsim.RunCacheCurve(snsim.CacheCurveParams{
			Seed:       int64(i + 1),
			Users:      800,
			ReqPerUser: 100,
			Universe:   200000,
			CacheBytes: 1 << 30,
		})
		hit = res.HitRate
	}
	b.ReportMetric(hit, "hit-rate")
}

// nullWorker backs the control-plane benches.
type nullWorker struct{}

func (nullWorker) Class() string { return "null" }
func (nullWorker) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	return task.Input, nil
}

// BenchmarkManagerAnnouncements measures the manager's load-report
// ingestion rate — the §4.6 capacity experiment's inner loop. The
// paper needs 1800/s; report the sustained rate.
func BenchmarkManagerAnnouncements(b *testing.B) {
	net := san.NewNetwork(1)
	m := manager.New(manager.Config{
		Node: "mgr", Net: net,
		BeaconInterval: time.Hour, // isolate report handling
		WorkerTTL:      time.Hour,
		Policy:         manager.Policy{SpawnThreshold: 1e18, Damping: time.Hour, ReapThreshold: -1},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)
	wep := net.Endpoint(san.Addr{Node: "w", Proc: "w0"}, 1<<16)
	wep.Send(m.Addr(), stub.MsgRegister, stub.RegisterMsg{Info: stub.WorkerInfo{
		ID: "w0", Class: "null", Addr: wep.Addr(), Node: "w"}}, 64)
	deadline := time.Now().Add(2 * time.Second)
	for m.Stats().Workers == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	report := stub.LoadReport{ID: "w0", Class: "null", QLen: 3}
	b.ResetTimer()
	sent := 0
	for i := 0; i < b.N; i++ {
		// Pace against the manager's consumption so the bounded
		// inbox does not silently drop reports.
		for sent-int(m.Stats().ReportsHandled) > 2048 {
			time.Sleep(50 * time.Microsecond)
		}
		if wep.Send(m.Addr(), stub.MsgLoadReport, report, 64) == nil {
			sent++
		}
	}
	drain := time.Now().Add(10 * time.Second)
	for int(m.Stats().ReportsHandled) < sent && time.Now().Before(drain) {
		time.Sleep(time.Millisecond)
	}
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "announcements/s")
}

// BenchmarkOscillationAblation runs the §4.5 ablation pair and
// reports the spread ratio (raw / fixed — higher means the estimator
// helps more).
func BenchmarkOscillationAblation(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		raw := snsim.RunOscillation(int64(i+1), false)
		fixed := snsim.RunOscillation(int64(i+1), true)
		if fixed.Spread > 0 {
			ratio = raw.Spread / fixed.Spread
		}
	}
	b.ReportMetric(ratio, "spread-ratio")
}

// BenchmarkSANSaturation runs the §4.6 saturated-SAN scenario and
// reports the beacon loss rate.
func BenchmarkSANSaturation(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		res := snsim.RunSANSaturation(int64(i+1), 10, false)
		loss = res.BeaconLossRate
	}
	b.ReportMetric(loss, "beacon-loss")
}

// BenchmarkFaultRecovery boots a live system once and measures a full
// worker-crash -> timeout-detection -> respawn cycle per iteration
// (§3.1.3's process-peer loop).
func BenchmarkFaultRecovery(b *testing.B) {
	registry := tacc.NewRegistry()
	registry.Register("null", func() tacc.Worker { return nullWorker{} })
	sys, err := core.Start(core.Config{
		Seed:           1,
		DedicatedNodes: 4,
		FrontEnds:      1,
		CacheParts:     1,
		Workers:        map[string]int{"null": 1},
		Registry:       registry,
		BeaconInterval: 10 * time.Millisecond,
		ReportInterval: 10 * time.Millisecond,
		Policy:         manager.Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Stop()
	if !sys.WaitReady(10 * time.Second) {
		b.Fatal("system did not come up")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pick a worker that is actually alive (the front end's
		// cached table can briefly list the previous victim).
		var victim string
		deadline := time.Now().Add(10 * time.Second)
		for victim == "" && time.Now().Before(deadline) {
			for _, id := range sys.Workers() {
				victim = id
				break
			}
			if victim == "" {
				time.Sleep(time.Millisecond)
			}
		}
		if victim == "" {
			b.Fatal("no worker to kill")
		}
		spawnsBefore := sys.Manager().Stats().Spawns
		if err := sys.KillWorker(victim); err != nil {
			b.Fatal(err)
		}
		deadline = time.Now().Add(10 * time.Second)
		for sys.Manager().Stats().Spawns == spawnsBefore && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
}

// BenchmarkChaosKillRestartCycle boots one system through the chaos
// harness and measures a full scripted kill -> timeout-inference ->
// respawn -> steady-state cycle per iteration (the §4.3 recovery
// latency as a tracked number).
func BenchmarkChaosKillRestartCycle(b *testing.B) {
	h, err := chaos.New(chaos.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Stop()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spawnsBefore := h.Sys.Manager().Stats().Spawns
		sched := chaos.Schedule{Seed: 1, Events: []chaos.Event{{Kind: chaos.KillWorker, Slot: i}}}
		h.Execute(ctx, sched)
		deadline := time.Now().Add(10 * time.Second)
		for h.Sys.Manager().Stats().Spawns == spawnsBefore {
			if time.Now().After(deadline) {
				b.Fatal("no respawn within 10s")
			}
			time.Sleep(time.Millisecond)
		}
		if !h.AwaitSteady(10 * time.Second) {
			b.Fatal("system did not recover")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "recovery-ms")
}

// --- Wire-path benchmarks -------------------------------------------------
//
// Matched passthrough/wire pairs over the same traffic shape, so the
// serialization overhead of wire mode is a direct A/B read (the
// acceptance bar: wire Send ≤ 1.5x passthrough in the parallel SAN
// bench, steady-state encode allocs ~0 via pooling).

// benchSANSendParallel is the shared body of the send pairs: many
// concurrent sender/receiver pairs, 1% loss to keep the rng hot,
// mirroring san.BenchmarkSANSendParallel's traffic shape.
func benchSANSendParallel(b *testing.B, net *san.Network, kind string, body any) {
	net.SetLoss(0.01, 0)
	var next atomic.Int64
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := fmt.Sprint(next.Add(1))
		src := net.Endpoint(san.Addr{Node: "senders", Proc: id}, 8)
		dst := net.Endpoint(san.Addr{Node: "sinks", Proc: id}, 4096)
		go func() {
			for range dst.Inbox() {
			}
		}()
		for pb.Next() {
			if err := src.Send(dst.Addr(), kind, body, 1024); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSANSendParallelPassthrough / Wire is the acceptance pair:
// identical traffic to san.BenchmarkSANSendParallel, with and without
// the codec on the path (wire must stay ≤ 1.5x passthrough).
func BenchmarkSANSendParallelPassthrough(b *testing.B) {
	benchSANSendParallel(b, san.NewNetwork(1), "d", nil)
}

func BenchmarkSANSendParallelWire(b *testing.B) {
	benchSANSendParallel(b, san.NewNetwork(1, san.WithCodec(stub.WireCodec{})), "d", nil)
}

// BenchmarkSANSendParallelWireSpawnReq puts the smallest real
// control-plane body on the wire path (encode + per-delivery decode).
func BenchmarkSANSendParallelWireSpawnReq(b *testing.B) {
	benchSANSendParallel(b, san.NewNetwork(1, san.WithCodec(stub.WireCodec{})),
		stub.MsgSpawnReq, stub.SpawnReq{Class: "echo"})
}

// wireLoadReport is the heavier data-plane shape for the load-report
// send pair.
func wireLoadReport() stub.LoadReport {
	info := stub.WorkerInfo{
		ID: "w0", Class: "echo",
		Addr: san.Addr{Node: "n1", Proc: "w0"}, Node: "n1", QLen: 2.5,
	}
	return stub.LoadReport{
		ID: "w0", Class: "echo", QLen: 10, CostMs: 3.75,
		Done: 100, Errors: 2, Crashes: 1, Info: info,
	}
}

// BenchmarkSANSendParallelWireLoadReport measures the realistic worst
// case of the periodic control plane: a full load report per send.
func BenchmarkSANSendParallelWireLoadReport(b *testing.B) {
	net := san.NewNetwork(1, san.WithCodec(stub.WireCodec{}))
	net.SetLoss(0.01, 0)
	report := wireLoadReport()
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := fmt.Sprint(next.Add(1))
		src := net.Endpoint(san.Addr{Node: "senders", Proc: id}, 8)
		dst := net.Endpoint(san.Addr{Node: "sinks", Proc: id}, 4096)
		go func() {
			for range dst.Inbox() {
			}
		}()
		for pb.Next() {
			if err := src.Send(dst.Addr(), stub.MsgLoadReport, report, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSANMulticast is the shared body of the multicast pair: 16-member
// group, beacon-shaped body — the manager's actual fanout.
func benchSANMulticast(b *testing.B, net *san.Network) {
	const members = 16
	workers := []stub.WorkerInfo{wireLoadReport().Info}
	beacon := stub.Beacon{Manager: san.Addr{Node: "mgr", Proc: "manager"}, Seq: 1, Workers: workers}
	for i := 0; i < members; i++ {
		ep := net.Endpoint(san.Addr{Node: "m", Proc: fmt.Sprintf("p%d", i)}, 4096)
		ep.Join("grp")
		go func() {
			for range ep.Inbox() {
			}
		}()
	}
	src := net.Endpoint(san.Addr{Node: "senders", Proc: "src"}, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Multicast("grp", stub.MsgBeacon, beacon, 128)
	}
	if net.WireMode() {
		st := net.Stats()
		if st.WireEncodes != uint64(b.N) {
			b.Fatalf("encode-once violated: %d encodes for %d multicasts", st.WireEncodes, b.N)
		}
	}
}

// BenchmarkSANMulticastBeaconPassthrough / Wire: the encode-once
// fanout pair.
func BenchmarkSANMulticastBeaconPassthrough(b *testing.B) {
	benchSANMulticast(b, san.NewNetwork(1))
}

func BenchmarkSANMulticastBeaconWire(b *testing.B) {
	benchSANMulticast(b, san.NewNetwork(1, san.WithCodec(stub.WireCodec{})))
}

// BenchmarkHotBotQuery measures fan-out query latency over a deployed
// partitioned index (§3.2).
func BenchmarkHotBotQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	docs := search.GenerateCorpus(rng, 10000, 2000)
	net := san.NewNetwork(1)
	cl := cluster.New(net)
	for i := 0; i < 8; i++ {
		cl.AddNode(fmt.Sprintf("n%d", i), false)
	}
	engine, err := search.Deploy(search.Config{
		Net: net, Cluster: cl, Partitions: 8, Seed: 1, CacheSize: 1,
	}, docs)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.StopAll()
	queries := []string{"ba de", "ka ne", "be ro", "du bi"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Distinct-ish queries defeat the result cache (capacity 1).
		q := queries[i%len(queries)]
		res := engine.Query(context.Background(), q, 10)
		if res.ShardsAlive != 8 {
			b.Fatalf("shards alive = %d", res.ShardsAlive)
		}
	}
}

// BenchmarkEconomics evaluates the §5.2 cost model.
func BenchmarkEconomics(b *testing.B) {
	var cost float64
	for i := 0; i < b.N; i++ {
		cost = snsim.RunEconomics(23).CostPerUserMonth
	}
	b.ReportMetric(cost, "$/user/month")
}

// BenchmarkEndToEndRequest measures a whole-request path on the live
// system (cache-warm distilled hits).
func BenchmarkEndToEndRequest(b *testing.B) {
	registry := tacc.NewRegistry()
	distiller.RegisterAll(registry)
	sys, err := core.Start(core.Config{
		Seed:           1,
		DedicatedNodes: 6,
		FrontEnds:      1,
		CacheParts:     2,
		Workers:        map[string]int{distiller.ClassSJPG: 2},
		Registry:       registry,
		Rules:          distiller.TranSendRules(),
		Policy:         manager.Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Stop()
	if !sys.WaitReady(10 * time.Second) {
		b.Fatal("system did not come up")
	}
	ctx := context.Background()
	url := trace.ObjectURL(42, media.MIMESJPG)
	if _, err := sys.Request(ctx, url, "u"); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Request(ctx, url, "u"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Transport benchmarks -------------------------------------------------
//
// The socket layer's cost structure: frame encode/decode as pure CPU
// (frame encode must stay 0 allocs/op — gated in the bench snapshot),
// and the bridged send pair with batching on vs off, where the delta
// is the syscall amortization the batching writer buys.

// BenchmarkFrameEncodeData appends a data frame carrying a real
// encoded load report into a warm buffer — the bridge's send path.
func BenchmarkFrameEncodeData(b *testing.B) {
	body, err := stub.EncodeBody(stub.MsgLoadReport, wireLoadReport())
	if err != nil {
		b.Fatal(err)
	}
	from := san.Addr{Node: "a-node0", Proc: "fe0"}
	to := san.Addr{Node: "b-node1", Proc: "w0"}
	buf := transport.AppendData(nil, from, to, stub.MsgLoadReport, 1, false, body)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = transport.AppendData(buf[:0], from, to, stub.MsgLoadReport, 1, false, body)
	}
}

// BenchmarkFrameDecodeData runs the streaming decoder over the same
// frame — the bridge's receive path before SAN injection.
func BenchmarkFrameDecodeData(b *testing.B) {
	body, err := stub.EncodeBody(stub.MsgLoadReport, wireLoadReport())
	if err != nil {
		b.Fatal(err)
	}
	frame := transport.AppendData(nil,
		san.Addr{Node: "a-node0", Proc: "fe0"},
		san.Addr{Node: "b-node1", Proc: "w0"},
		stub.MsgLoadReport, 1, false, body)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	var dec transport.Decoder
	for i := 0; i < b.N; i++ {
		if _, err := dec.Write(frame); err != nil {
			b.Fatal(err)
		}
		if _, ok, err := dec.Next(); err != nil || !ok {
			b.Fatalf("decode: ok=%v err=%v", ok, err)
		}
	}
}

// benchBridgeSend measures one-way sends across two bridged networks
// over loopback TCP, batched (default microsecond-deadline writer) or
// unbatched (every frame its own write syscall).
func benchBridgeSend(b *testing.B, batched bool) {
	netA := san.NewNetwork(1, san.WithCodec(stub.WireCodec{}))
	netB := san.NewNetwork(2, san.WithCodec(stub.WireCodec{}))
	delay := time.Duration(0) // transport default (batched)
	if !batched {
		delay = -1 // flush every frame
	}
	ba, err := transport.New(transport.Config{Net: netA, Listen: "tcp:127.0.0.1:0", ID: "bench-a", FlushDelay: delay})
	if err != nil {
		b.Fatal(err)
	}
	defer ba.Close()
	bb, err := transport.New(transport.Config{Net: netB, Listen: "tcp:127.0.0.1:0", ID: "bench-b", FlushDelay: delay, Join: []string{ba.Advertise()}})
	if err != nil {
		b.Fatal(err)
	}
	defer bb.Close()
	if !ba.WaitPeers(1, 5*time.Second) {
		b.Fatal("bridges never connected")
	}
	src := netA.Endpoint(san.Addr{Node: "a-n0", Proc: "src"}, 8)
	dst := netB.Endpoint(san.Addr{Node: "b-n0", Proc: "dst"}, 1<<16)
	go func() {
		for range dst.Inbox() {
		}
	}()
	// Teach A a route for dst: routes are learned from the source
	// address of RECEIVED frames, so dst must send something back
	// once; after that the benchmark loop is routed, not flooded.
	report := wireLoadReport()
	if err := dst.Send(src.Addr(), stub.MsgLoadReport, report, 64); err != nil {
		b.Fatal(err)
	}
	for range src.Inbox() {
		break // route learned when the frame arrives
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(dst.Addr(), stub.MsgLoadReport, report, 64); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := ba.Stats()
	if st.Batches > 0 {
		b.ReportMetric(float64(st.FramesOut)/float64(st.Batches), "frames/batch")
	}
	netA.Close()
	netB.Close()
}

// BenchmarkBridgeSendBatched / Unbatched is the coalescing A/B: the
// same wire traffic with the batching writer on vs one syscall per
// frame.
func BenchmarkBridgeSendBatched(b *testing.B)   { benchBridgeSend(b, true) }
func BenchmarkBridgeSendUnbatched(b *testing.B) { benchBridgeSend(b, false) }
