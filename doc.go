// Package repro is a from-scratch Go reproduction of "Cluster-Based
// Scalable Network Services" (Fox, Gribble, Chawathe, Brewer, and
// Gauthier — SOSP 1997): the layered SNS/TACC architecture, the
// TranSend distillation proxy and HotBot-style search engine built on
// it, and a harness that regenerates every table and figure in the
// paper's evaluation.
//
// Start with README.md for the tour and the package map (including
// the SAN's wire mode — the production serialization path, default-on
// in chaos runs — internal/transport, the framed, batched socket
// layer that lets one cluster span real OS processes via cmd/node,
// and internal/supervisor, the per-process daemon that makes
// process-peer restarts and rolling upgrades location-transparent
// across those processes).
// The benchmarks in bench_test.go (one per reproduced artifact, plus
// matched passthrough/wire SAN pairs and the batched/unbatched bridge
// pair) and cmd/experiments regenerate the results; make
// bench-snapshot and make bench-diff track the perf trajectory across
// PRs.
package repro
