#!/usr/bin/env bash
# Bench-regression gate: measure a fresh snapshot and diff it against
# the newest committed BENCH_*.json baseline. Fails (exit 1) when any
# seed-deterministic metric drifts more than its tolerance (±20%) —
# see cmd/experiments/benchdiff.go for the gated-metric list.
# Wall-clock metrics (ns/op, ms/KB, recovery latency) are reported for
# the trajectory but never gated.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
if [[ -z "${baseline}" ]]; then
    echo "bench_diff: no committed BENCH_*.json baseline found" >&2
    exit 2
fi

fresh=$(mktemp -t bench_snapshot.XXXXXX.json)
trap 'rm -f "${fresh}"' EXIT

echo "bench_diff: measuring fresh snapshot (baseline: ${baseline})..."
go run ./cmd/experiments -snapshot "${fresh}" >/dev/null

go run ./cmd/experiments -benchdiff "${baseline}" "${fresh}"
