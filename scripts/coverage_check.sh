#!/usr/bin/env bash
# Coverage regression gate: run the short test suite with coverage and
# fail if total statement coverage drops more than 2 points below the
# committed baseline (coverage_baseline.txt). Regenerate the baseline
# intentionally with: scripts/coverage_check.sh --update
set -euo pipefail
cd "$(dirname "$0")/.."

baseline_file=coverage_baseline.txt
profile=$(mktemp)
trap 'rm -f "$profile"' EXIT

go test -short -count=1 -coverprofile="$profile" ./... > /dev/null

total=$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/,"",$3); print $3}')

if [ "${1:-}" = "--update" ]; then
  {
    echo "# Coverage baseline — regenerate with scripts/coverage_check.sh --update"
    echo "# The CI gate fails when total drops >2 points below this."
    echo "total ${total}"
    echo "#"
    echo "# Per-package snapshot (informational):"
    go test -short -count=1 -cover ./... 2>/dev/null \
      | awk '$1 == "ok" && $4 == "coverage:" && $5 ~ /%$/ {gsub(/%/,"",$5); printf "# %-32s %s\n", $2, $5}'
  } > "$baseline_file"
  echo "baseline updated: total ${total}%"
  exit 0
fi

baseline=$(awk '$1 == "total" {print $2}' "$baseline_file")
echo "total coverage: ${total}% (baseline ${baseline}%, gate: baseline - 2.0)"
ok=$(awk -v t="$total" -v b="$baseline" 'BEGIN { print (t+0 >= b - 2.0) ? 1 : 0 }')
if [ "$ok" != "1" ]; then
  echo "FAIL: total coverage ${total}% is more than 2 points below the committed baseline ${baseline}%" >&2
  echo "If the drop is intentional, regenerate with scripts/coverage_check.sh --update" >&2
  exit 1
fi
