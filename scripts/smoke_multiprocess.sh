#!/usr/bin/env bash
# Two-process loopback smoke test (CI gate for internal/transport and
# internal/supervisor): spawn a data-plane node process (workers +
# caches) and a control/serving process (front ends + manager +
# monitor) joined over 127.0.0.1, run a short TranSend workload from
# the serving side, and assert zero failed requests and zero
# wire/frame errors. Mid-run, the serving side SIGKILLs the peer
# process's cache0 through that process's supervisor daemon and
# asserts the manager's process-peer duty respawned it by supervisor
# delegation — the cross-process self-healing path — still with zero
# failed requests. The serving process's -selftest mode performs all
# assertions and exits non-zero on any violation.
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${1:-150}"
PORT="${SMOKE_PORT:-7461}"

bin=$(mktemp -t sns-node.XXXXXX)
ctl_log=$(mktemp -t sns-ctl.XXXXXX.log)
cleanup() {
    [[ -n "${ctl_pid:-}" ]] && kill "${ctl_pid}" 2>/dev/null || true
    [[ -n "${ctl_pid:-}" ]] && wait "${ctl_pid}" 2>/dev/null || true
    rm -f "${bin}" "${ctl_log}"
}
trap cleanup EXIT

echo "smoke: building cmd/node..."
go build -o "${bin}" ./cmd/node

echo "smoke: starting data-plane process (worker,cache) on :${PORT}..."
"${bin}" -listen "tcp:127.0.0.1:${PORT}" -prefix ctl -roles worker,cache \
    -seed 1 >"${ctl_log}" 2>&1 &
ctl_pid=$!

echo "smoke: starting serving process (frontend,manager,monitor) with -selftest ${REQUESTS} -selftest-kill cache0..."
if ! out=$("${bin}" -listen tcp:127.0.0.1:0 -join "tcp:127.0.0.1:${PORT}" \
    -prefix srv -roles frontend,manager,monitor -cache-host ctl -seed 2 \
    -selftest "${REQUESTS}" -selftest-kill cache0 2> >(cat >&2)); then
    echo "smoke: FAILED — data-plane log:" >&2
    cat "${ctl_log}" >&2
    exit 1
fi
echo "${out}"

# Belt and braces on top of the selftest's own exit code: the JSON
# must show the delegated respawn actually happened.
if ! grep -q '"delegated_restarts":[1-9]' <<<"${out}"; then
    echo "smoke: FAILED — no delegated restart in selftest report" >&2
    cat "${ctl_log}" >&2
    exit 1
fi

# The large-body leg must have round-tripped a 512 KB blob through the
# remote cache partition — above the chunking threshold, so it crossed
# the TCP bridge as chunk fragments and reassembled on both hops. The
# selftest already failed on any wire/frame error; assert here that
# the chunked path actually ran (not just small frames).
if ! grep -q '"large_body_bytes":524288' <<<"${out}"; then
    echo "smoke: FAILED — large-body leg did not complete" >&2
    cat "${ctl_log}" >&2
    exit 1
fi
if ! grep -q '"reassembled":[1-9]' <<<"${out}"; then
    echo "smoke: FAILED — no chunk stream was reassembled on the serving side" >&2
    cat "${ctl_log}" >&2
    exit 1
fi

echo "smoke: OK — ${REQUESTS}+ requests plus a chunked 512 KB blob across two OS processes, zero failures, zero wire errors, cache0 respawned by supervisor delegation"
