#!/usr/bin/env bash
# Two-process loopback smoke test (CI gate for internal/transport):
# spawn a control-plane node process (manager + workers + caches) and
# a serving-plane node process (front ends + monitor) joined over
# 127.0.0.1, run a short TranSend workload from the serving side, and
# assert zero failed requests and zero wire/frame errors. The serving
# process's -selftest mode performs the assertions and exits non-zero
# on any violation.
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${1:-150}"
PORT="${SMOKE_PORT:-7461}"

bin=$(mktemp -t sns-node.XXXXXX)
ctl_log=$(mktemp -t sns-ctl.XXXXXX.log)
cleanup() {
    [[ -n "${ctl_pid:-}" ]] && kill "${ctl_pid}" 2>/dev/null || true
    [[ -n "${ctl_pid:-}" ]] && wait "${ctl_pid}" 2>/dev/null || true
    rm -f "${bin}" "${ctl_log}"
}
trap cleanup EXIT

echo "smoke: building cmd/node..."
go build -o "${bin}" ./cmd/node

echo "smoke: starting control-plane process (manager,worker,cache) on :${PORT}..."
"${bin}" -listen "tcp:127.0.0.1:${PORT}" -prefix ctl -roles manager,worker,cache \
    -seed 1 >"${ctl_log}" 2>&1 &
ctl_pid=$!

echo "smoke: starting serving process (frontend,monitor) with -selftest ${REQUESTS}..."
if ! "${bin}" -listen tcp:127.0.0.1:0 -join "tcp:127.0.0.1:${PORT}" \
    -prefix srv -roles frontend,monitor -cache-host ctl -seed 2 \
    -selftest "${REQUESTS}"; then
    echo "smoke: FAILED — control-plane log:" >&2
    cat "${ctl_log}" >&2
    exit 1
fi

echo "smoke: OK — ${REQUESTS} requests across two OS processes, zero failures, zero wire errors"
