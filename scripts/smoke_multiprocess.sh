#!/usr/bin/env bash
# Multi-process loopback smoke test (CI gate for internal/transport,
# internal/supervisor, and manager replication).
#
# Leg 1 — cross-process self-healing: spawn a data-plane node process
# (workers + caches) and a control/serving process (front ends +
# manager + monitor) joined over 127.0.0.1, run a short TranSend
# workload from the serving side, and assert zero failed requests and
# zero wire/frame errors. Mid-run, the serving side SIGKILLs the peer
# process's cache0 through that process's supervisor daemon and
# asserts the manager's process-peer duty respawned it by supervisor
# delegation — still with zero failed requests. The serving process's
# -selftest mode performs all assertions and exits non-zero on any
# violation.
#
# Leg 2 — manager failover: three processes (data-plane hub; a rank-0
# manager-only process; a serving process hosting front ends plus a
# rank-1 standby manager replica). Mid-workload the script SIGKILLs
# the rank-0 manager's whole OS process; the standby must win the
# election (epoch >= 2) within the beacon-silence timeout, the workers
# and supervisors must re-anchor on it, and not one request may fail —
# the last singleton is gone.
#
# Leg 3 — overload degradation: a two-process topology whose single
# front end has a deliberately tiny admission bound and a short cache
# TTL. After a normal workload the serving process fires a concurrent
# burst past capacity and asserts the BASE ladder held: some requests
# degraded to stale cached data, the rest shed with the typed overload
# error, zero unexplained failures, zero wire errors.
#
# Leg 4 — end-to-end tracing: a two-process topology (data plane;
# serving plane with -trace-sample 1 and the HTTP API). One /fetch
# returns an X-Trace-Id header; /trace?id= on the serving process must
# then render a span tree recorded by BOTH OS processes, decomposing
# the request into front-end hops (this process) and worker
# queue-wait + service hops (the peer, crossed back as span digests on
# the report group). /metrics must expose the registry in Prometheus
# form and /status must be machine-readable JSON.
#
# Leg 5 — edge front door: four processes (data plane with the
# manager; two single-FE serving processes advertising HTTP adapters
# in their heartbeats; an edge-only process). A curl workload runs
# against the edge listener while one FE's OS process is SIGKILLed
# mid-loop: every request must still return 200 (transparent retry on
# the surviving replica), the edge must eject the dead backend, and
# after the FE process is restarted a half-open probe must readmit it
# — ejects >= 1 and readmits >= 1 on /status, zero failed requests,
# zero wire errors on the edge's /metrics.
set -euo pipefail
cd "$(dirname "$0")/.."

REQUESTS="${1:-150}"
PORT="${SMOKE_PORT:-7461}"

bin=$(mktemp -t sns-node.XXXXXX)
ctl_log=$(mktemp -t sns-ctl.XXXXXX.log)
hub_log=$(mktemp -t sns-hub.XXXXXX.log)
mgr_log=$(mktemp -t sns-mgr.XXXXXX.log)
srv_log=$(mktemp -t sns-srv.XXXXXX.log)
srv_out=$(mktemp -t sns-srv.XXXXXX.json)
ovl_log=$(mktemp -t sns-ovl.XXXXXX.log)
trc_log=$(mktemp -t sns-trc.XXXXXX.log)
tsv_log=$(mktemp -t sns-tsv.XXXXXX.log)
dp5_log=$(mktemp -t sns-dp5.XXXXXX.log)
fea_log=$(mktemp -t sns-fea.XXXXXX.log)
feb_log=$(mktemp -t sns-feb.XXXXXX.log)
edg_log=$(mktemp -t sns-edg.XXXXXX.log)
cleanup() {
    for pid in "${ctl_pid:-}" "${hub_pid:-}" "${mgr_pid:-}" "${srv_pid:-}" "${ovl_pid:-}" "${trc_pid:-}" "${tsv_pid:-}" \
               "${dp5_pid:-}" "${fea_pid:-}" "${feb_pid:-}" "${edg_pid:-}"; do
        [[ -n "${pid}" ]] && kill "${pid}" 2>/dev/null || true
        [[ -n "${pid}" ]] && wait "${pid}" 2>/dev/null || true
    done
    rm -f "${bin}" "${ctl_log}" "${hub_log}" "${mgr_log}" "${srv_log}" "${srv_out}" "${ovl_log}" "${trc_log}" "${tsv_log}" \
        "${dp5_log}" "${fea_log}" "${feb_log}" "${edg_log}"
}
trap cleanup EXIT

echo "smoke: building cmd/node..."
go build -o "${bin}" ./cmd/node

echo "smoke: starting data-plane process (worker,cache) on :${PORT}..."
"${bin}" -listen "tcp:127.0.0.1:${PORT}" -prefix ctl -roles worker,cache \
    -seed 1 >"${ctl_log}" 2>&1 &
ctl_pid=$!

echo "smoke: starting serving process (frontend,manager,monitor) with -selftest ${REQUESTS} -selftest-kill cache0..."
if ! out=$("${bin}" -listen tcp:127.0.0.1:0 -join "tcp:127.0.0.1:${PORT}" \
    -prefix srv -roles frontend,manager,monitor -cache-host ctl -seed 2 \
    -selftest "${REQUESTS}" -selftest-kill cache0 2> >(cat >&2)); then
    echo "smoke: FAILED — data-plane log:" >&2
    cat "${ctl_log}" >&2
    exit 1
fi
echo "${out}"

# Belt and braces on top of the selftest's own exit code: the JSON
# must show the delegated respawn actually happened.
if ! grep -q '"delegated_restarts":[1-9]' <<<"${out}"; then
    echo "smoke: FAILED — no delegated restart in selftest report" >&2
    cat "${ctl_log}" >&2
    exit 1
fi

# The large-body leg must have round-tripped a 512 KB blob through the
# remote cache partition — above the chunking threshold, so it crossed
# the TCP bridge as chunk fragments and reassembled on both hops. The
# selftest already failed on any wire/frame error; assert here that
# the chunked path actually ran (not just small frames).
if ! grep -q '"large_body_bytes":524288' <<<"${out}"; then
    echo "smoke: FAILED — large-body leg did not complete" >&2
    cat "${ctl_log}" >&2
    exit 1
fi
if ! grep -q '"reassembled":[1-9]' <<<"${out}"; then
    echo "smoke: FAILED — no chunk stream was reassembled on the serving side" >&2
    cat "${ctl_log}" >&2
    exit 1
fi

echo "smoke: OK — ${REQUESTS}+ requests plus a chunked 512 KB blob across two OS processes, zero failures, zero wire errors, cache0 respawned by supervisor delegation"

# Leg 1's data-plane process is done serving; stop it before the
# failover leg so the two clusters never share a port or a peer.
kill "${ctl_pid}" 2>/dev/null || true
wait "${ctl_pid}" 2>/dev/null || true
ctl_pid=

PORT2=$((PORT + 1))
echo "smoke: [failover] starting data-plane hub (worker,cache) on :${PORT2}..."
"${bin}" -listen "tcp:127.0.0.1:${PORT2}" -prefix hub -roles worker,cache \
    -seed 3 >"${hub_log}" 2>&1 &
hub_pid=$!

echo "smoke: [failover] starting rank-0 manager process..."
"${bin}" -listen tcp:127.0.0.1:0 -join "tcp:127.0.0.1:${PORT2}" \
    -prefix m0 -roles manager -manager-rank 0 -seed 4 >"${mgr_log}" 2>&1 &
mgr_pid=$!

echo "smoke: [failover] starting serving process (frontend,monitor + rank-1 standby manager) with -selftest ${REQUESTS}..."
# 30 ms spacing stretches the workload to ~5 s so the SIGKILL below
# lands mid-run; -selftest-expect-epoch 2 makes the serving process
# itself assert the standby won the election.
"${bin}" -listen tcp:127.0.0.1:0 -join "tcp:127.0.0.1:${PORT2}" \
    -prefix srv2 -roles frontend,manager,monitor -manager-rank 1 \
    -cache-host hub -seed 5 \
    -selftest "${REQUESTS}" -selftest-spacing 30ms -selftest-expect-epoch 2 \
    >"${srv_out}" 2>"${srv_log}" &
srv_pid=$!

for _ in $(seq 1 300); do
    grep -q "node: ready" "${srv_log}" 2>/dev/null && break
    sleep 0.1
done
if ! grep -q "node: ready" "${srv_log}"; then
    echo "smoke: [failover] FAILED — serving process never became ready" >&2
    cat "${srv_log}" "${mgr_log}" "${hub_log}" >&2
    exit 1
fi
sleep 1.5
echo "smoke: [failover] SIGKILLing the rank-0 manager's OS process mid-workload..."
kill -9 "${mgr_pid}" 2>/dev/null || true
wait "${mgr_pid}" 2>/dev/null || true
mgr_pid=

if ! wait "${srv_pid}"; then
    srv_pid=
    echo "smoke: [failover] FAILED — serving-process selftest:" >&2
    cat "${srv_out}" >&2
    cat "${srv_log}" "${hub_log}" >&2
    exit 1
fi
srv_pid=
out=$(cat "${srv_out}")
echo "${out}"

# Belt and braces on top of the selftest's own gates (zero failures,
# zero wire/frame errors, local primary at epoch >= 2): the JSON must
# show the election actually ran — a takeover, not a quiet reboot.
if ! grep -q '"failures":0' <<<"${out}" || ! grep -q '"wire_errors":0' <<<"${out}"; then
    echo "smoke: [failover] FAILED — failures or wire errors in report" >&2
    exit 1
fi
if ! grep -q '"manager_epoch":[2-9]' <<<"${out}"; then
    echo "smoke: [failover] FAILED — no epoch >= 2 in report" >&2
    exit 1
fi
if ! grep -q '"manager_takeovers":[1-9]' <<<"${out}"; then
    echo "smoke: [failover] FAILED — standby recorded no takeover" >&2
    exit 1
fi

echo "smoke: [failover] OK — rank-0 manager process SIGKILLed mid-workload, standby won epoch >= 2, zero failed requests, zero wire errors"

# Leg 2's hub is done; stop it before the overload leg for the same
# isolation reason as between legs 1 and 2.
kill "${hub_pid}" 2>/dev/null || true
wait "${hub_pid}" 2>/dev/null || true
hub_pid=

PORT3=$((PORT + 2))
echo "smoke: [overload] starting data-plane process (worker,cache) on :${PORT3}..."
"${bin}" -listen "tcp:127.0.0.1:${PORT3}" -prefix ovl -roles worker,cache \
    -seed 6 >"${ovl_log}" 2>&1 &
ovl_pid=$!

echo "smoke: [overload] starting serving process (1 frontend, inflight bound 2, cache TTL 500ms) with -selftest 40 -selftest-overload 64..."
# One front end so a shed surfaces to the client instead of failing
# over to a sibling; -fe-max-inflight 2 makes the concurrent burst of
# 64 trip admission control, and -cache-ttl 500ms lets the selftest's
# warm set expire into stale data the degraded path can serve.
if ! out=$("${bin}" -listen tcp:127.0.0.1:0 -join "tcp:127.0.0.1:${PORT3}" \
    -prefix srv3 -roles frontend,manager,monitor -cache-host ovl -seed 7 \
    -frontends 1 -fe-max-inflight 2 -cache-ttl 500ms \
    -selftest 40 -selftest-overload 64 2> >(cat >&2)); then
    echo "smoke: [overload] FAILED — data-plane log:" >&2
    cat "${ovl_log}" >&2
    exit 1
fi
echo "${out}"

# Belt and braces on top of the selftest's own gates: degraded-before-
# shed actually happened, every failure was a typed shed (the failure
# counter excludes sheds and must be zero), and nothing corrupted the
# wire under overload.
if ! grep -q '"shed":[1-9]' <<<"${out}"; then
    echo "smoke: [overload] FAILED — burst past capacity but nothing was shed" >&2
    exit 1
fi
if ! grep -q '"degraded":[1-9]' <<<"${out}"; then
    echo "smoke: [overload] FAILED — no degraded serves; the stale-cache ladder rung never ran" >&2
    exit 1
fi
if ! grep -q '"failures":0' <<<"${out}" || ! grep -q '"wire_errors":0' <<<"${out}"; then
    echo "smoke: [overload] FAILED — unexplained failures or wire errors under overload" >&2
    exit 1
fi

echo "smoke: [overload] OK — 64-deep burst against an inflight bound of 2: degraded serves plus typed sheds, zero unexplained failures, zero wire errors"

# Leg 3's data-plane process is done; stop it before the tracing leg.
kill "${ovl_pid}" 2>/dev/null || true
wait "${ovl_pid}" 2>/dev/null || true
ovl_pid=

PORT4=$((PORT + 3))
HTTP4="${SMOKE_HTTP_PORT:-$((PORT + 10))}"
echo "smoke: [trace] starting data-plane process (worker,cache) on :${PORT4}..."
"${bin}" -listen "tcp:127.0.0.1:${PORT4}" -prefix trc -roles worker,cache \
    -seed 8 >"${trc_log}" 2>&1 &
trc_pid=$!

echo "smoke: [trace] starting serving process with -trace-sample 1 and HTTP on :${HTTP4}..."
"${bin}" -listen tcp:127.0.0.1:0 -join "tcp:127.0.0.1:${PORT4}" \
    -prefix tsv -roles frontend,manager,monitor -cache-host trc -seed 9 \
    -trace-sample 1 -http "127.0.0.1:${HTTP4}" >"${tsv_log}" 2>&1 &
tsv_pid=$!

for _ in $(seq 1 300); do
    grep -q "node: http on" "${tsv_log}" 2>/dev/null && break
    sleep 0.1
done
if ! grep -q "node: http on" "${tsv_log}"; then
    echo "smoke: [trace] FAILED — serving process never exposed the HTTP API" >&2
    cat "${tsv_log}" "${trc_log}" >&2
    exit 1
fi

echo "smoke: [trace] fetching one object and extracting X-Trace-Id..."
trace_id=$(curl -fsS -D - -o /dev/null \
    "http://127.0.0.1:${HTTP4}/fetch?url=http://origin4.example/trace.sjpg" \
    | tr -d '\r' | grep -i '^x-trace-id:' | awk '{print $2}')
if [[ -z "${trace_id}" ]]; then
    echo "smoke: [trace] FAILED — /fetch returned no X-Trace-Id header" >&2
    cat "${tsv_log}" "${trc_log}" >&2
    exit 1
fi
echo "smoke: [trace] trace id ${trace_id}"

# The worker-side spans cross back on the next report tick; poll
# /trace until the tree covers both OS processes and decomposes the
# worker's part into queue-wait and service time.
tree=""
for _ in $(seq 1 100); do
    tree=$(curl -fsS "http://127.0.0.1:${HTTP4}/trace?id=${trace_id}" || true)
    if grep -q '"proc": "trc"' <<<"${tree}" && grep -q '"proc": "tsv"' <<<"${tree}" \
        && grep -q '"hop": "worker.queue"' <<<"${tree}" \
        && grep -q '"hop": "worker.service"' <<<"${tree}"; then
        break
    fi
    sleep 0.1
done
for want in '"proc": "trc"' '"proc": "tsv"' '"hop": "worker.queue"' '"hop": "worker.service"' "\"hop\": \"fe.request\""; do
    if ! grep -q "${want}" <<<"${tree}"; then
        echo "smoke: [trace] FAILED — span tree missing ${want}:" >&2
        echo "${tree}" >&2
        cat "${tsv_log}" "${trc_log}" >&2
        exit 1
    fi
done

# The metrics plane: Prometheus exposition on /metrics, machine-
# readable JSON on /status (with the old human dump behind
# ?format=text).
metrics=$(curl -fsS "http://127.0.0.1:${HTTP4}/metrics")
if ! grep -q '^sns_' <<<"${metrics}"; then
    echo "smoke: [trace] FAILED — /metrics has no sns_ samples" >&2
    exit 1
fi
status=$(curl -fsS "http://127.0.0.1:${HTTP4}/status")
if command -v python3 >/dev/null 2>&1; then
    if ! python3 -c 'import json,sys; json.load(sys.stdin)' <<<"${status}"; then
        echo "smoke: [trace] FAILED — /status is not valid JSON" >&2
        echo "${status}" >&2
        exit 1
    fi
fi
if ! grep -q '"san.' <<<"${status}"; then
    echo "smoke: [trace] FAILED — /status JSON missing san.* metrics" >&2
    echo "${status}" >&2
    exit 1
fi
text=$(curl -fsS "http://127.0.0.1:${HTTP4}/status?format=text")
if ! grep -q 'san: wire=' <<<"${text}"; then
    echo "smoke: [trace] FAILED — /status?format=text lost the human dump" >&2
    exit 1
fi

echo "smoke: [trace] OK — one X-Trace-Id resolved to a span tree recorded by both OS processes (fe.request on tsv, worker.queue + worker.service on trc); /metrics and JSON /status served"

# Leg 4's processes are done; stop them before the edge leg.
kill "${trc_pid}" "${tsv_pid}" 2>/dev/null || true
wait "${trc_pid}" 2>/dev/null || true
wait "${tsv_pid}" 2>/dev/null || true
trc_pid=
tsv_pid=

PORT5=$((PORT + 4))
EDGE5="${SMOKE_EDGE_PORT:-$((PORT + 11))}"
echo "smoke: [edge] starting data-plane process (manager,worker,cache,monitor) on :${PORT5}..."
"${bin}" -listen "tcp:127.0.0.1:${PORT5}" -prefix dp5 -roles manager,worker,cache,monitor \
    -seed 10 >"${dp5_log}" 2>&1 &
dp5_pid=$!

start_fe() { # start_fe <prefix> <seed> <log>
    "${bin}" -listen tcp:127.0.0.1:0 -join "tcp:127.0.0.1:${PORT5}" \
        -prefix "$1" -roles frontend -frontends 1 -fe-http 127.0.0.1 \
        -cache-host dp5 -seed "$2" >"$3" 2>&1 &
}
wait_ready() { # wait_ready <log> <label>
    for _ in $(seq 1 300); do
        grep -q "node: ready" "$1" 2>/dev/null && return 0
        sleep 0.1
    done
    echo "smoke: [edge] FAILED — $2 never became ready" >&2
    cat "$1" "${dp5_log}" >&2
    exit 1
}

echo "smoke: [edge] starting two single-FE serving processes with HTTP adapters..."
start_fe fea 11 "${fea_log}"
fea_pid=$!
start_fe feb 12 "${feb_log}"
feb_pid=$!
wait_ready "${fea_log}" "front-end process fea"
wait_ready "${feb_log}" "front-end process feb"

echo "smoke: [edge] starting edge-only process with the front door on :${EDGE5}..."
"${bin}" -listen tcp:127.0.0.1:0 -join "tcp:127.0.0.1:${PORT5}" \
    -prefix edg -roles edge -edge-listen "127.0.0.1:${EDGE5}" \
    -seed 13 >"${edg_log}" 2>&1 &
edg_pid=$!
for _ in $(seq 1 300); do
    grep -q "node: edge front door on" "${edg_log}" 2>/dev/null && break
    sleep 0.1
done
if ! grep -q "node: edge front door on" "${edg_log}"; then
    echo "smoke: [edge] FAILED — edge process never became ready" >&2
    cat "${edg_log}" "${fea_log}" "${feb_log}" "${dp5_log}" >&2
    exit 1
fi
# The edge must have learned BOTH replicas from heartbeats before the
# kill, or the eject/readmit assertions race pool discovery.
for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:${EDGE5}/status" 2>/dev/null | grep -q '"healthy":2' && break
    sleep 0.1
done
if ! curl -fsS "http://127.0.0.1:${EDGE5}/status" | grep -q '"healthy":2'; then
    echo "smoke: [edge] FAILED — edge pool never saw both front ends" >&2
    curl -fsS "http://127.0.0.1:${EDGE5}/status" >&2 || true
    cat "${edg_log}" >&2
    exit 1
fi

edge_fails=0
edge_get() {
    curl -fsS -o /dev/null --max-time 10 \
        "http://127.0.0.1:${EDGE5}/fetch?url=http://origin5.example/e$1.sbin" \
        || edge_fails=$((edge_fails + 1))
}

echo "smoke: [edge] warmup: 20 requests through the front door..."
for i in $(seq 1 20); do edge_get "w${i}"; done

echo "smoke: [edge] SIGKILLing front-end process feb mid-workload..."
( sleep 0.7; kill -9 "${feb_pid}" 2>/dev/null ) &
killer_pid=$!
for i in $(seq 1 60); do
    edge_get "k${i}"
    sleep 0.05
done
wait "${killer_pid}" 2>/dev/null || true
wait "${feb_pid}" 2>/dev/null || true
feb_pid=

if ! curl -fsS "http://127.0.0.1:${EDGE5}/status" | grep -q '"ejects":[1-9]'; then
    echo "smoke: [edge] FAILED — dead backend was never ejected" >&2
    curl -fsS "http://127.0.0.1:${EDGE5}/status" >&2 || true
    cat "${edg_log}" >&2
    exit 1
fi

echo "smoke: [edge] restarting front-end process feb..."
start_fe feb 12 "${feb_log}"
feb_pid=$!
wait_ready "${feb_log}" "restarted front-end process feb"

# Keep idempotent traffic flowing so the pool can risk a half-open
# probe against the respawned replica, and poll until it is readmitted.
readmitted=0
for i in $(seq 1 150); do
    edge_get "r${i}"
    if curl -fsS "http://127.0.0.1:${EDGE5}/status" 2>/dev/null | grep -q '"readmits":[1-9]'; then
        readmitted=1
        break
    fi
    sleep 0.1
done
if [[ "${readmitted}" != 1 ]]; then
    echo "smoke: [edge] FAILED — respawned backend was never readmitted" >&2
    curl -fsS "http://127.0.0.1:${EDGE5}/status" >&2 || true
    cat "${edg_log}" "${feb_log}" >&2
    exit 1
fi

if [[ "${edge_fails}" -ne 0 ]]; then
    echo "smoke: [edge] FAILED — ${edge_fails} client-visible request failures across the FE kill" >&2
    curl -fsS "http://127.0.0.1:${EDGE5}/status" >&2 || true
    cat "${edg_log}" >&2
    exit 1
fi

# Zero wire errors on the edge's own metrics plane, and the edge.*
# counters must be exposed there.
edge_metrics=$(curl -fsS "http://127.0.0.1:${EDGE5}/metrics")
if ! grep -q '^sns_edge_' <<<"${edge_metrics}"; then
    echo "smoke: [edge] FAILED — /metrics on the edge has no sns_edge_ samples" >&2
    exit 1
fi
if grep '^sns_.*wire_errors' <<<"${edge_metrics}" | grep -qv ' 0$'; then
    echo "smoke: [edge] FAILED — wire errors on the edge process" >&2
    grep '^sns_.*wire_errors' <<<"${edge_metrics}" >&2
    exit 1
fi

echo "smoke: [edge] OK — FE process SIGKILLed and restarted under load through the front door: zero failed requests, >=1 eject, >=1 probe readmission, zero wire errors"
