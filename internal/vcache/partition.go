// Package vcache implements TranSend's caching subsystem (paper
// §3.1.5): per-node object-cache partitions with LRU eviction under a
// byte budget, and a client-side "single virtual cache" that hashes
// the key space across partitions with consistent hashing and
// automatically re-hashes when cache nodes are added or removed —
// the two fixes the paper applied to stock Harvest (no sibling
// queries, and direct injection of post-transformation data).
//
// Cached data is BASE: "all cached data can be thrown away at the
// cost of performance — cache nodes are workers whose only job is the
// management of BASE data."
package vcache

import (
	"container/list"
	"sync"
	"time"
)

// Entry is one cached object.
type Entry struct {
	Key     string
	Data    []byte
	MIME    string
	Expires time.Time // zero = no TTL
}

// Stats counts partition activity.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Injects   uint64 // post-transform data injected by workers
	Evictions uint64
	Expired   uint64
	Used      int64 // bytes currently cached
	Objects   int
}

// Partition is one cache node's store: an LRU map bounded by a byte
// budget. Safe for concurrent use.
type Partition struct {
	budget int64
	clock  func() time.Time

	mu    sync.Mutex
	ll    *list.List // front = most recent
	index map[string]*list.Element
	used  int64
	stats Stats
}

type lruItem struct {
	entry Entry
	size  int64
}

// NewPartition creates a partition holding at most budget bytes of
// object data. A nil clock uses real time.
func NewPartition(budget int64, clock func() time.Time) *Partition {
	if budget <= 0 {
		panic("vcache: budget must be positive")
	}
	if clock == nil {
		clock = time.Now
	}
	return &Partition{
		budget: budget,
		clock:  clock,
		ll:     list.New(),
		index:  make(map[string]*list.Element),
	}
}

// Get returns the cached entry for key and refreshes its recency.
func (p *Partition) Get(key string) (Entry, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.index[key]
	if !ok {
		p.stats.Misses++
		return Entry{}, false
	}
	item := el.Value.(*lruItem)
	if !item.entry.Expires.IsZero() && p.clock().After(item.entry.Expires) {
		p.removeLocked(el)
		p.stats.Expired++
		p.stats.Misses++
		return Entry{}, false
	}
	p.ll.MoveToFront(el)
	p.stats.Hits++
	return item.entry, true
}

// Put stores original (pre-transformation) content.
func (p *Partition) Put(key string, data []byte, mime string, ttl time.Duration) {
	p.store(key, data, mime, ttl, false)
}

// Inject stores post-transformation or intermediate-state content —
// the capability the paper added to Harvest so distillers could cache
// their outputs (§3.1.5).
func (p *Partition) Inject(key string, data []byte, mime string, ttl time.Duration) {
	p.store(key, data, mime, ttl, true)
}

func (p *Partition) store(key string, data []byte, mime string, ttl time.Duration, inject bool) {
	size := int64(len(data)) + int64(len(key))
	if size > p.budget {
		return // object larger than the whole partition: uncacheable
	}
	var expires time.Time
	if ttl > 0 {
		expires = p.clock().Add(ttl)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if inject {
		p.stats.Injects++
	} else {
		p.stats.Puts++
	}
	if el, ok := p.index[key]; ok {
		old := el.Value.(*lruItem)
		p.used -= old.size
		old.entry = Entry{Key: key, Data: data, MIME: mime, Expires: expires}
		old.size = size
		p.used += size
		p.ll.MoveToFront(el)
	} else {
		el := p.ll.PushFront(&lruItem{
			entry: Entry{Key: key, Data: data, MIME: mime, Expires: expires},
			size:  size,
		})
		p.index[key] = el
		p.used += size
	}
	for p.used > p.budget {
		back := p.ll.Back()
		if back == nil {
			break
		}
		p.removeLocked(back)
		p.stats.Evictions++
	}
}

// Remove deletes an entry.
func (p *Partition) Remove(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.index[key]
	if !ok {
		return false
	}
	p.removeLocked(el)
	return true
}

func (p *Partition) removeLocked(el *list.Element) {
	item := el.Value.(*lruItem)
	p.ll.Remove(el)
	delete(p.index, item.entry.Key)
	p.used -= item.size
}

// Flush discards everything — legal at any time for BASE data.
func (p *Partition) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ll.Init()
	p.index = make(map[string]*list.Element)
	p.used = 0
}

// Len returns the number of cached objects.
func (p *Partition) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.index)
}

// Used returns the bytes currently cached.
func (p *Partition) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Stats returns a snapshot of counters.
func (p *Partition) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Used = p.used
	st.Objects = len(p.index)
	return st
}

// HitRate returns hits / (hits + misses), or 0 before any lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
