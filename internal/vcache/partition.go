// Package vcache implements TranSend's caching subsystem (paper
// §3.1.5): per-node object-cache partitions with LRU eviction under a
// byte budget, and a client-side "single virtual cache" that hashes
// the key space across partitions with consistent hashing and
// automatically re-hashes when cache nodes are added or removed —
// the two fixes the paper applied to stock Harvest (no sibling
// queries, and direct injection of post-transformation data).
//
// Cached data is BASE: "all cached data can be thrown away at the
// cost of performance — cache nodes are workers whose only job is the
// management of BASE data."
//
// A Partition is internally split into key-hashed shards, each with
// its own mutex, LRU list, and slice of the byte budget, so
// concurrent Gets on one cache node serialize only when they land on
// the same shard instead of on a single partition-wide lock. Eviction
// is exact LRU per shard. Small partitions collapse to one shard and
// behave exactly like the classic single-LRU implementation.
package vcache

import (
	"container/list"
	"sync"
	"time"
)

// Entry is one cached object.
type Entry struct {
	Key     string
	Data    []byte
	MIME    string
	Expires time.Time // zero = no TTL
}

// Stats counts partition activity.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Injects   uint64 // post-transform data injected by workers
	Evictions uint64
	Expired   uint64
	Used      int64 // bytes currently cached
	Objects   int
}

const (
	// defaultShards is the shard count for comfortably large budgets.
	defaultShards = 16
	// minShardBudget is the smallest per-shard byte budget: the shard
	// count is halved until every shard holds at least this much.
	// Since an object larger than its shard's budget is uncacheable,
	// this floor is set above the content model's 2 MiB size ceiling
	// so sharding never changes which objects are cacheable; it also
	// means small test partitions collapse to one shard and keep
	// exact whole-partition LRU semantics.
	minShardBudget = 4 << 20
)

// Partition is one cache node's store: a sharded LRU map bounded by a
// byte budget. Safe for concurrent use.
type Partition struct {
	shards []*shard
	mask   uint64
}

// shard is one independently locked LRU slice of a partition.
type shard struct {
	budget int64
	clock  func() time.Time

	mu    sync.Mutex
	ll    *list.List // front = most recent
	index map[uint64]*list.Element
	used  int64
	stats Stats
}

// lruItem keys the LRU list by the precomputed hash so eviction can
// delete index entries without rehashing. The key string is kept to
// detect (astronomically rare) 64-bit hash collisions.
type lruItem struct {
	entry Entry
	hash  uint64
	size  int64
}

// keyHash is inline FNV-1a (the hash/fnv interface costs more than
// the hash itself). One hash both picks the shard and keys the index.
func keyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// shardCount picks a power-of-two shard count so each shard keeps a
// useful slice of the budget.
func shardCount(budget int64) int {
	n := defaultShards
	for n > 1 && budget/int64(n) < minShardBudget {
		n /= 2
	}
	return n
}

// NewPartition creates a partition holding at most budget bytes of
// object data, sharded automatically by budget. A nil clock uses real
// time.
func NewPartition(budget int64, clock func() time.Time) *Partition {
	return NewPartitionShards(budget, clock, shardCount(budget))
}

// NewPartitionShards creates a partition with an explicit shard count
// (rounded down to a power of two; minimum 1). Tests use one shard to
// pin exact whole-partition LRU order; benchmarks use many to measure
// scaling.
func NewPartitionShards(budget int64, clock func() time.Time, shards int) *Partition {
	if budget <= 0 {
		panic("vcache: budget must be positive")
	}
	if clock == nil {
		clock = time.Now
	}
	n := 1
	for n*2 <= shards {
		n *= 2
	}
	p := &Partition{shards: make([]*shard, n), mask: uint64(n - 1)}
	per := budget / int64(n)
	for i := range p.shards {
		b := per
		if i == 0 {
			b += budget % int64(n) // remainder lands on shard 0
		}
		p.shards[i] = &shard{
			budget: b,
			clock:  clock,
			ll:     list.New(),
			index:  make(map[uint64]*list.Element),
		}
	}
	return p
}

func (p *Partition) shard(h uint64) *shard {
	return p.shards[h&p.mask]
}

// Get returns the cached entry for key and refreshes its recency.
func (p *Partition) Get(key string) (Entry, bool) {
	h := keyHash(key)
	s := p.shard(h)
	s.mu.Lock()
	el, ok := s.index[h]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return Entry{}, false
	}
	item := el.Value.(*lruItem)
	if item.entry.Key != key { // 64-bit hash collision: treat as a miss
		s.stats.Misses++
		s.mu.Unlock()
		return Entry{}, false
	}
	if !item.entry.Expires.IsZero() && s.clock().After(item.entry.Expires) {
		s.removeLocked(el)
		s.stats.Expired++
		s.stats.Misses++
		s.mu.Unlock()
		return Entry{}, false
	}
	s.ll.MoveToFront(el)
	s.stats.Hits++
	e := item.entry
	s.mu.Unlock()
	return e, true
}

// GetStale returns the cached entry for key even when its TTL has
// passed, reporting stale=true for an expired hit. Unlike Get it never
// removes the expired entry: the degraded-mode read (BASE — stale data
// beats no data under overload) must stay repeatable while the entry
// remains resident, and LRU eviction already bounds how long that is.
// A stale hit refreshes recency like any other hit.
func (p *Partition) GetStale(key string) (Entry, bool, bool) {
	h := keyHash(key)
	s := p.shard(h)
	s.mu.Lock()
	el, ok := s.index[h]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		return Entry{}, false, false
	}
	item := el.Value.(*lruItem)
	if item.entry.Key != key { // 64-bit hash collision: treat as a miss
		s.stats.Misses++
		s.mu.Unlock()
		return Entry{}, false, false
	}
	stale := !item.entry.Expires.IsZero() && s.clock().After(item.entry.Expires)
	s.ll.MoveToFront(el)
	s.stats.Hits++
	e := item.entry
	s.mu.Unlock()
	return e, stale, true
}

// Put stores original (pre-transformation) content.
func (p *Partition) Put(key string, data []byte, mime string, ttl time.Duration) {
	p.store(key, data, mime, ttl, false)
}

// Inject stores post-transformation or intermediate-state content —
// the capability the paper added to Harvest so distillers could cache
// their outputs (§3.1.5).
func (p *Partition) Inject(key string, data []byte, mime string, ttl time.Duration) {
	p.store(key, data, mime, ttl, true)
}

func (p *Partition) store(key string, data []byte, mime string, ttl time.Duration, inject bool) {
	h := keyHash(key)
	s := p.shard(h)
	size := int64(len(data)) + int64(len(key))
	if size > s.budget {
		// Larger than this shard's whole budget: uncacheable. With
		// auto-sharding this cap is budget/shards, kept above the
		// largest object the content model produces (see
		// minShardBudget); single-shard partitions keep the classic
		// whole-budget cap.
		return
	}
	var expires time.Time
	if ttl > 0 {
		expires = s.clock().Add(ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if inject {
		s.stats.Injects++
	} else {
		s.stats.Puts++
	}
	if el, ok := s.index[h]; ok {
		item := el.Value.(*lruItem)
		if item.entry.Key != key {
			// 64-bit hash collision with a different key: evict the
			// squatter (BASE data — dropping it only costs a refetch).
			s.removeLocked(el)
			s.stats.Evictions++
			s.insertLocked(h, Entry{Key: key, Data: data, MIME: mime, Expires: expires}, size)
		} else {
			s.used -= item.size
			item.entry = Entry{Key: key, Data: data, MIME: mime, Expires: expires}
			item.size = size
			s.used += size
			s.ll.MoveToFront(el)
		}
	} else {
		s.insertLocked(h, Entry{Key: key, Data: data, MIME: mime, Expires: expires}, size)
	}
	for s.used > s.budget {
		back := s.ll.Back()
		if back == nil {
			break
		}
		s.removeLocked(back)
		s.stats.Evictions++
	}
}

func (s *shard) insertLocked(h uint64, e Entry, size int64) {
	el := s.ll.PushFront(&lruItem{entry: e, hash: h, size: size})
	s.index[h] = el
	s.used += size
}

// Remove deletes an entry.
func (p *Partition) Remove(key string) bool {
	h := keyHash(key)
	s := p.shard(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[h]
	if !ok || el.Value.(*lruItem).entry.Key != key {
		return false
	}
	s.removeLocked(el)
	return true
}

func (s *shard) removeLocked(el *list.Element) {
	item := el.Value.(*lruItem)
	s.ll.Remove(el)
	delete(s.index, item.hash)
	s.used -= item.size
}

// Flush discards everything — legal at any time for BASE data.
func (p *Partition) Flush() {
	for _, s := range p.shards {
		s.mu.Lock()
		s.ll.Init()
		s.index = make(map[uint64]*list.Element)
		s.used = 0
		s.mu.Unlock()
	}
}

// Len returns the number of cached objects.
func (p *Partition) Len() int {
	n := 0
	for _, s := range p.shards {
		s.mu.Lock()
		n += len(s.index)
		s.mu.Unlock()
	}
	return n
}

// Used returns the bytes currently cached.
func (p *Partition) Used() int64 {
	n := int64(0)
	for _, s := range p.shards {
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}

// Shards reports the shard count (for tests and tuning).
func (p *Partition) Shards() int { return len(p.shards) }

// Stats returns a snapshot of counters aggregated across shards.
func (p *Partition) Stats() Stats {
	var st Stats
	for _, s := range p.shards {
		s.mu.Lock()
		st.Hits += s.stats.Hits
		st.Misses += s.stats.Misses
		st.Puts += s.stats.Puts
		st.Injects += s.stats.Injects
		st.Evictions += s.stats.Evictions
		st.Expired += s.stats.Expired
		st.Used += s.used
		st.Objects += len(s.index)
		s.mu.Unlock()
	}
	return st
}

// HitRate returns hits / (hits + misses), or 0 before any lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
