package vcache

import (
	"fmt"
	"testing"
)

func BenchmarkPartitionGetHit(b *testing.B) {
	p := NewPartition(64<<20, nil)
	data := make([]byte, 4096)
	for i := 0; i < 1024; i++ {
		p.Put(fmt.Sprintf("k%d", i), data, "b", 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Get(fmt.Sprintf("k%d", i%1024))
	}
}

func BenchmarkPartitionPutEvict(b *testing.B) {
	p := NewPartition(1<<20, nil) // small budget: constant eviction
	data := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Put(fmt.Sprintf("k%d", i), data, "b", 0)
	}
}

func BenchmarkRingLookup(b *testing.B) {
	r := NewRing(128)
	for i := 0; i < 16; i++ {
		r.Add(fmt.Sprintf("cache%d", i))
	}
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("object-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(keys[i%len(keys)])
	}
}
