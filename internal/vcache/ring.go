package vcache

import (
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring mapping cache keys to node names.
// Each node owns VNodes virtual points; removing a node remaps only
// the keys it owned (the property that makes "automatically
// re-hashing when cache nodes are added or removed" cheap, §3.1.5).
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing creates a ring with the given virtual nodes per physical
// node (0 uses a sensible default).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

func hashKey(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	// FNV's high bits avalanche poorly for short strings that differ
	// only in a trailing digit (exactly our vnode labels), which
	// clusters a node's vnodes in one arc of the ring. A murmur3-style
	// finalizer disperses them.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash: hashKey(node + "#" + itoa(i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the node owning key, or "" if the ring is empty.
func (r *Ring) Lookup(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the current node set, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
