package vcache_test

// View-mode equivalence over a real wire-mode SAN (external test
// package: the codec lives in stub, which itself imports vcache).
// Get and GetView must be observationally identical — same data, mime,
// and hit/miss verdicts — and the copy-on-retain discipline must hold:
// bytes a caller keeps past release stay stable while the zero-copy
// pool churns underneath.

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/vcache"
)

func startViewCache(t *testing.T) *vcache.Client {
	t.Helper()
	// WireCodec implements ViewCodec, so decode views are on: cache
	// responses arrive as leased buffers, exactly as in production.
	net := san.NewNetwork(1, san.WithCodec(stub.WireCodec{}))
	t.Cleanup(net.Close)
	svc := vcache.NewService("cache0", net, "cnode", vcache.NewPartition(1<<20, nil))
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { _ = svc.Run(ctx) }()

	ep := net.Endpoint(san.Addr{Node: "fe", Proc: "client"}, 256)
	go func() {
		for msg := range ep.Inbox() {
			ep.DeliverReply(msg)
		}
	}()
	client := vcache.NewClient(ep)
	client.AddNode("cache0", svc.Addr())
	return client
}

// TestGetViewEquivalence: for every key, Get (owning) and GetView
// (zero-copy) agree byte for byte, on hits and on misses.
func TestGetViewEquivalence(t *testing.T) {
	client := startViewCache(t)
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("obj-%d", i)
		payload := bytes.Repeat([]byte{byte(i)}, 16+i*37)
		client.Put(ctx, key, payload, "image/sjpg", 0)
	}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("obj-%d", i)
		owned, mimeA, okA := client.Get(ctx, key)
		view, mimeB, release, okB := client.GetView(ctx, key)
		if okA != okB || mimeA != mimeB {
			t.Fatalf("%s: Get (%v,%q) vs GetView (%v,%q)", key, okA, mimeA, okB, mimeB)
		}
		if !okA {
			t.Fatalf("%s: stored object missed", key)
		}
		if !bytes.Equal(owned, view) {
			t.Fatalf("%s: Get returned %d bytes, GetView %d", key, len(owned), len(view))
		}
		if release != nil {
			release()
		}
	}
	if _, _, ok := client.Get(ctx, "absent"); ok {
		t.Fatal("Get hit on an absent key")
	}
	if _, _, release, ok := client.GetView(ctx, "absent"); ok || release != nil {
		t.Fatal("GetView hit (or leaked a release) on an absent key")
	}
}

// TestGetViewCopyOnRetain: bytes kept past release — whether from the
// owning Get or cloned out of a view — must not change while heavy
// traffic recycles the underlying lease buffers.
func TestGetViewCopyOnRetain(t *testing.T) {
	client := startViewCache(t)
	ctx := context.Background()
	want := bytes.Repeat([]byte{0x42}, 4096)
	client.Put(ctx, "keep", want, "image/gif", 0)

	owned, _, ok := client.Get(ctx, "keep")
	if !ok {
		t.Fatal("owned get missed")
	}
	view, _, release, ok := client.GetView(ctx, "keep")
	if !ok {
		t.Fatal("view get missed")
	}
	cloned := san.CloneBytes(view)
	if release != nil {
		release()
	}

	// Churn: overwrite the key and push enough distinct payloads
	// through the same wire path that the released buffers get reused
	// and refilled many times over.
	client.Put(ctx, "keep", bytes.Repeat([]byte{0x99}, 4096), "image/gif", 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("churn-%d", i%8)
		client.Put(ctx, key, bytes.Repeat([]byte{byte(i)}, 4096), "x", 0)
		if _, _, rel, ok := client.GetView(ctx, key); ok && rel != nil {
			rel()
		}
	}

	if !bytes.Equal(owned, want) {
		t.Fatal("bytes from the owning Get changed under pool churn")
	}
	if !bytes.Equal(cloned, want) {
		t.Fatal("bytes cloned from a view changed under pool churn")
	}
}
