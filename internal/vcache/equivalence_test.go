package vcache

// Property test: a multi-shard Partition is observationally
// equivalent to the classic single-LRU implementation
// (NewPartitionShards(..., 1)) whenever the working set fits — the
// sharding is a lock-splitting optimization, not a semantic change —
// and both respect the byte-budget ceiling unconditionally.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source shared by both
// partitions so TTL expiry is deterministic and identical.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestShardedEquivalentToSingleLRU drives a seeded random op stream
// (put/inject/get/remove/clock-advance) against a 16-shard partition
// and a 1-shard partition with the same budget. The working set is
// kept below any single shard's budget slice, so no evictions can
// occur in either; every observable — per-get hit/miss and returned
// bytes, object count, used bytes, hit/miss counters — must agree at
// every step.
func TestShardedEquivalentToSingleLRU(t *testing.T) {
	const (
		budget  = 16 * 4096 // per-shard slice: 4096
		keys    = 30
		maxSize = 32 // 30*(32+keylen) << 4096: eviction-free in both
		ops     = 4000
	)
	for seedN := int64(1); seedN <= 5; seedN++ {
		seedN := seedN
		t.Run(fmt.Sprintf("seed%d", seedN), func(t *testing.T) {
			clock := &fakeClock{now: time.Unix(1000, 0)}
			sharded := NewPartitionShards(budget, clock.Now, 16)
			single := NewPartitionShards(budget, clock.Now, 1)
			if sharded.Shards() != 16 || single.Shards() != 1 {
				t.Fatalf("shard counts = %d/%d", sharded.Shards(), single.Shards())
			}
			rng := rand.New(rand.NewSource(seedN))
			key := func() string { return fmt.Sprintf("k%02d", rng.Intn(keys)) }
			for i := 0; i < ops; i++ {
				switch op := rng.Intn(10); {
				case op < 3: // put
					k := key()
					data := make([]byte, 1+rng.Intn(maxSize))
					for j := range data {
						data[j] = byte(rng.Intn(256))
					}
					var ttl time.Duration
					if rng.Intn(3) == 0 {
						ttl = time.Duration(1+rng.Intn(50)) * time.Millisecond
					}
					sharded.Put(k, data, "m", ttl)
					single.Put(k, data, "m", ttl)
				case op < 4: // inject
					k := key()
					data := []byte{byte(i), byte(i >> 8)}
					sharded.Inject(k, data, "j", 0)
					single.Inject(k, data, "j", 0)
				case op < 5: // remove
					k := key()
					a := sharded.Remove(k)
					b := single.Remove(k)
					if a != b {
						t.Fatalf("op %d: Remove(%s) = %v vs %v", i, k, a, b)
					}
				case op < 6: // advance the clock (expire TTLs)
					clock.Advance(time.Duration(rng.Intn(40)) * time.Millisecond)
				default: // get
					k := key()
					ea, oka := sharded.Get(k)
					eb, okb := single.Get(k)
					if oka != okb {
						t.Fatalf("op %d: Get(%s) hit = %v vs %v", i, k, oka, okb)
					}
					if oka && (string(ea.Data) != string(eb.Data) || ea.MIME != eb.MIME) {
						t.Fatalf("op %d: Get(%s) returned different entries", i, k)
					}
				}
				if sharded.Len() != single.Len() {
					t.Fatalf("op %d: Len %d vs %d", i, sharded.Len(), single.Len())
				}
				if sharded.Used() != single.Used() {
					t.Fatalf("op %d: Used %d vs %d", i, sharded.Used(), single.Used())
				}
			}
			sa, sb := sharded.Stats(), single.Stats()
			if sa.Hits != sb.Hits || sa.Misses != sb.Misses || sa.Evictions != sb.Evictions ||
				sa.Expired != sb.Expired || sa.Puts != sb.Puts || sa.Injects != sb.Injects {
				t.Fatalf("stats diverged:\nsharded: %+v\nsingle:  %+v", sa, sb)
			}
			if sa.Evictions != 0 {
				t.Fatalf("working set was supposed to be eviction-free, saw %d evictions", sa.Evictions)
			}
		})
	}
}

// TestShardedBudgetCeiling overflows both variants with a hot stream
// far beyond the budget: used bytes must never exceed the configured
// ceiling in either (per-shard slices sum to the whole budget), even
// though the two may legally differ in *which* objects survive once
// eviction starts.
func TestShardedBudgetCeiling(t *testing.T) {
	const budget = 8192
	clock := &fakeClock{now: time.Unix(1000, 0)}
	sharded := NewPartitionShards(budget, clock.Now, 16)
	single := NewPartitionShards(budget, clock.Now, 1)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key%04d", rng.Intn(800))
		data := make([]byte, 1+rng.Intn(600))
		sharded.Put(k, data, "m", 0)
		single.Put(k, data, "m", 0)
		if u := sharded.Used(); u > budget {
			t.Fatalf("op %d: sharded used %d > budget %d", i, u, budget)
		}
		if u := single.Used(); u > budget {
			t.Fatalf("op %d: single used %d > budget %d", i, u, budget)
		}
		if rng.Intn(4) == 0 {
			sharded.Get(k)
			single.Get(k)
		}
	}
	if sharded.Stats().Evictions == 0 || single.Stats().Evictions == 0 {
		t.Fatal("overflow stream was supposed to force evictions")
	}
}
