package vcache

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
	"repro/internal/san"
)

func TestPartitionGetPut(t *testing.T) {
	p := NewPartition(1<<20, nil)
	if _, ok := p.Get("x"); ok {
		t.Fatal("hit on empty cache")
	}
	p.Put("x", []byte("hello"), "text/html", 0)
	e, ok := p.Get("x")
	if !ok || string(e.Data) != "hello" || e.MIME != "text/html" {
		t.Fatalf("entry = %+v, %v", e, ok)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
}

func TestPartitionLRUEviction(t *testing.T) {
	p := NewPartition(100, nil)
	// Each entry is 10 bytes data + 2 bytes key = 12 bytes.
	for i := 0; i < 8; i++ {
		p.Put(fmt.Sprintf("k%d", i), make([]byte, 10), "b", 0)
	}
	if p.Used() > 100 {
		t.Fatalf("budget exceeded: %d", p.Used())
	}
	// Touch k0 so k1 becomes LRU, then overflow.
	p.Get("k0")
	p.Put("k9", make([]byte, 10), "b", 0)
	if _, ok := p.Get("k0"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := p.Get("k1"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("evictions not counted")
	}
}

func TestPartitionBudgetNeverExceeded(t *testing.T) {
	// Property: no sequence of puts pushes Used past the budget.
	p := NewPartition(1000, nil)
	check := func(keys []string, sizes []uint8) bool {
		for i, k := range keys {
			if k == "" {
				continue
			}
			size := 0
			if i < len(sizes) {
				size = int(sizes[i])
			}
			p.Put(k, make([]byte, size), "b", 0)
			if p.Used() > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionOversizeObjectIgnored(t *testing.T) {
	p := NewPartition(100, nil)
	p.Put("big", make([]byte, 200), "b", 0)
	if p.Len() != 0 {
		t.Fatal("oversized object cached")
	}
}

func TestPartitionTTL(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	p := NewPartition(1<<20, clock)
	p.Put("x", []byte("v"), "b", time.Second)
	if _, ok := p.Get("x"); !ok {
		t.Fatal("fresh entry missing")
	}
	mu.Lock()
	now = now.Add(2 * time.Second)
	mu.Unlock()
	if _, ok := p.Get("x"); ok {
		t.Fatal("expired entry returned")
	}
	if p.Stats().Expired != 1 {
		t.Fatalf("expired count = %d", p.Stats().Expired)
	}
}

func TestPartitionUpdateReplaces(t *testing.T) {
	p := NewPartition(1000, nil)
	p.Put("k", make([]byte, 100), "a", 0)
	p.Put("k", make([]byte, 50), "b", 0)
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	e, _ := p.Get("k")
	if len(e.Data) != 50 || e.MIME != "b" {
		t.Fatalf("update not applied: %d bytes %s", len(e.Data), e.MIME)
	}
	if p.Used() != 50+1 {
		t.Fatalf("Used = %d after replace", p.Used())
	}
}

func TestPartitionRemoveFlush(t *testing.T) {
	p := NewPartition(1000, nil)
	p.Put("a", []byte("1"), "b", 0)
	p.Put("b", []byte("2"), "b", 0)
	if !p.Remove("a") || p.Remove("a") {
		t.Fatal("Remove semantics broken")
	}
	p.Flush()
	if p.Len() != 0 || p.Used() != 0 {
		t.Fatal("Flush incomplete")
	}
}

func TestPartitionInjectCounted(t *testing.T) {
	p := NewPartition(1000, nil)
	p.Inject("distilled", []byte("x"), "image/sgif", 0)
	if p.Stats().Injects != 1 || p.Stats().Puts != 0 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	nodes := []string{"c0", "c1", "c2", "c3"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	want := float64(keys) / float64(len(nodes))
	for _, n := range nodes {
		dev := math.Abs(float64(counts[n])-want) / want
		if dev > 0.35 {
			t.Fatalf("node %s owns %d keys (%.0f%% off fair share)", n, counts[n], dev*100)
		}
	}
}

func TestRingMonotoneRemapping(t *testing.T) {
	// Property: removing one node only remaps keys it owned.
	r := NewRing(64)
	for _, n := range []string{"c0", "c1", "c2", "c3"} {
		r.Add(n)
	}
	before := map[string]string{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Lookup(k)
	}
	r.Remove("c2")
	for k, owner := range before {
		after := r.Lookup(k)
		if owner != "c2" && after != owner {
			t.Fatalf("key %s moved %s -> %s though %s survived", k, owner, after, owner)
		}
		if owner == "c2" && after == "c2" {
			t.Fatalf("key %s still on removed node", k)
		}
	}
}

func TestRingAddMonotone(t *testing.T) {
	r := NewRing(64)
	r.Add("c0")
	r.Add("c1")
	before := map[string]string{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Lookup(k)
	}
	r.Add("c2")
	moved := 0
	for k, owner := range before {
		after := r.Lookup(k)
		if after != owner {
			if after != "c2" {
				t.Fatalf("key %s moved %s -> %s, not to the new node", k, owner, after)
			}
			moved++
		}
	}
	// Roughly 1/3 of keys should move to the new node.
	frac := float64(moved) / 5000
	if frac < 0.15 || frac > 0.55 {
		t.Fatalf("add moved %.0f%% of keys, want ~33%%", frac*100)
	}
}

func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(8)
	if r.Lookup("x") != "" {
		t.Fatal("empty ring returned owner")
	}
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	r.Remove("ghost")
	r.Remove("a")
	r.Remove("a")
	if r.Len() != 0 || r.Lookup("x") != "" {
		t.Fatal("remove not idempotent")
	}
}

// startCacheCluster boots n cache services and returns a client wired
// to all of them plus a cleanup func.
func startCacheCluster(t *testing.T, n int) (*Client, *cluster.Cluster) {
	t.Helper()
	net := san.NewNetwork(1)
	cl := cluster.New(net)
	client := NewClient(clientEndpoint(t, net))
	for i := 0; i < n; i++ {
		node := fmt.Sprintf("cnode%d", i)
		cl.AddNode(node, false)
		name := fmt.Sprintf("cache%d", i)
		svc := NewService(name, net, node, NewPartition(1<<20, nil))
		if _, err := cl.Spawn(node, svc); err != nil {
			t.Fatal(err)
		}
		client.AddNode(name, svc.Addr())
	}
	t.Cleanup(cl.StopAll)
	return client, cl
}

// clientEndpoint creates an endpoint with a reply pump.
func clientEndpoint(t *testing.T, net *san.Network) *san.Endpoint {
	t.Helper()
	ep := net.Endpoint(san.Addr{Node: "fe", Proc: "client"}, 256)
	go func() {
		for msg := range ep.Inbox() {
			ep.DeliverReply(msg)
		}
	}()
	return ep
}

func TestClientVirtualCache(t *testing.T) {
	client, _ := startCacheCluster(t, 4)
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("obj-%d", i)
		client.Put(ctx, key, []byte(key+"-data"), "text/html", 0)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("obj-%d", i)
		data, mime, ok := client.Get(ctx, key)
		if !ok || string(data) != key+"-data" || mime != "text/html" {
			t.Fatalf("key %s: %q %q %v", key, data, mime, ok)
		}
	}
	// Objects must be spread across partitions.
	populated := 0
	for _, name := range client.Nodes() {
		st, err := client.StatsOf(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Objects > 0 {
			populated++
		}
	}
	if populated < 3 {
		t.Fatalf("only %d partitions populated", populated)
	}
}

func TestClientNodeLossIsAMiss(t *testing.T) {
	client, cl := startCacheCluster(t, 3)
	ctx := context.Background()
	client.Timeout = 100 * time.Millisecond
	// Find a key on cache1.
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if client.ring.Lookup(k) == "cache1" {
			key = k
			break
		}
	}
	client.Put(ctx, key, []byte("v"), "b", 0)
	if _, _, ok := client.Get(ctx, key); !ok {
		t.Fatal("warm get failed")
	}
	// Kill the owning node: the get times out and reads as a miss.
	if err := cl.KillNode("cnode1"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := client.Get(ctx, key); ok {
		t.Fatal("got data from dead node")
	}
	// After re-hashing, the key lands on a live partition.
	client.RemoveNode("cache1")
	client.Put(ctx, key, []byte("v2"), "b", 0)
	data, _, ok := client.Get(ctx, key)
	if !ok || string(data) != "v2" {
		t.Fatal("re-hashed key unreachable")
	}
}

func TestClientInjectAndStats(t *testing.T) {
	client, _ := startCacheCluster(t, 2)
	ctx := context.Background()
	client.Inject(ctx, "post-transform", []byte("tiny"), "image/sgif", 0)
	total := uint64(0)
	for _, name := range client.Nodes() {
		st, err := client.StatsOf(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		total += st.Injects
	}
	if total != 1 {
		t.Fatalf("injects = %d", total)
	}
	if _, err := client.StatsOf(ctx, "ghost"); err == nil {
		t.Fatal("StatsOf unknown partition should error")
	}
}

func TestClientEmptyRing(t *testing.T) {
	net := san.NewNetwork(1)
	client := NewClient(clientEndpoint(t, net))
	if _, _, ok := client.Get(context.Background(), "x"); ok {
		t.Fatal("hit with no partitions")
	}
	client.Put(context.Background(), "x", []byte("v"), "b", 0) // no panic
}

func TestServiceTimeModel(t *testing.T) {
	net := san.NewNetwork(1)
	cl := cluster.New(net)
	cl.AddNode("c0", false)
	svc := NewService("cache0", net, "c0", NewPartition(1<<20, nil))
	svc.ServiceTime = func() time.Duration { return 20 * time.Millisecond }
	if _, err := cl.Spawn("c0", svc); err != nil {
		t.Fatal(err)
	}
	defer cl.StopAll()
	client := NewClient(clientEndpoint(t, net))
	client.AddNode("cache0", san.Addr{Node: "c0", Proc: "cache0"})
	ctx := context.Background()
	client.Put(ctx, "k", []byte("v"), "b", 0)
	start := time.Now()
	client.Get(ctx, "k")
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("service time not applied: %v", elapsed)
	}
}

func TestPartitionConcurrency(t *testing.T) {
	p := NewPartition(1<<20, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%50)
				p.Put(key, []byte("data"), "b", 0)
				p.Get(key)
			}
		}()
	}
	wg.Wait()
}
