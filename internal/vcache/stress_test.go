package vcache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPartitionShardedStress hammers a multi-shard partition with
// concurrent Get/Put/Inject/Remove/Flush/Stats from many goroutines.
// Run under -race this is the shard-safety proof; the invariant
// checks catch budget-accounting corruption.
func TestPartitionShardedStress(t *testing.T) {
	const budget = 64 << 20
	p := NewPartition(budget, nil)
	if p.Shards() < 2 {
		t.Fatalf("want a sharded partition, got %d shards", p.Shards())
	}
	data := make([]byte, 2048)

	var workers sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("g%d-k%d", g%4, i%97)
				switch i % 7 {
				case 0, 1, 2:
					p.Get(key)
				case 3, 4:
					p.Put(key, data, "b", 0)
				case 5:
					p.Inject(key, data[:512], "b", time.Minute)
				case 6:
					p.Remove(key)
				}
			}
		}()
	}

	// Meanwhile one goroutine flushes periodically (legal at any time
	// for BASE data) and another reads the aggregates.
	stop := make(chan struct{})
	var background sync.WaitGroup
	background.Add(2)
	go func() {
		defer background.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.Flush()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	go func() {
		defer background.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if used := p.Used(); used > budget {
					t.Errorf("Used %d exceeds budget %d", used, budget)
					return
				}
				p.Stats()
				p.Len()
			}
		}
	}()

	workers.Wait()
	close(stop)
	background.Wait()

	st := p.Stats()
	if st.Used > budget || st.Used < 0 {
		t.Fatalf("final Used %d outside [0, %d] (accounting corrupted)", st.Used, budget)
	}
	if got := p.Used(); int64(st.Used) != got {
		// Quiesced: the two views must agree.
		t.Fatalf("Stats().Used = %d but Used() = %d", st.Used, got)
	}
}

// TestPartitionShardBudgetInvariant checks that no interleaving of
// concurrent puts overruns the aggregate budget.
func TestPartitionShardBudgetInvariant(t *testing.T) {
	const budget = 1 << 20
	p := NewPartitionShards(budget, nil, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := make([]byte, 4096)
			for i := 0; i < 500; i++ {
				p.Put(fmt.Sprintf("g%d-%d", g, i), data, "b", 0)
				if used := p.Used(); used > budget {
					t.Errorf("Used %d > budget %d", used, budget)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPartitionShardDistribution sanity-checks that realistic keys
// actually spread across shards (a degenerate hash would quietly
// serialize everything on one shard again).
func TestPartitionShardDistribution(t *testing.T) {
	p := NewPartitionShards(16<<20, nil, 16)
	for i := 0; i < 4096; i++ {
		p.Put(fmt.Sprintf("http://host/obj-%d.html", i), []byte("x"), "b", 0)
	}
	populated := 0
	for _, s := range p.shards {
		s.mu.Lock()
		n := len(s.index)
		s.mu.Unlock()
		if n > 0 {
			populated++
		}
		if n > 4096/len(p.shards)*3 {
			t.Fatalf("shard holds %d of 4096 objects — hash is skewed", n)
		}
	}
	if populated != 16 {
		t.Fatalf("only %d/16 shards populated", populated)
	}
}
