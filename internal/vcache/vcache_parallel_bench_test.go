package vcache

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkPartitionGetParallel measures concurrent hit throughput on
// one partition — before sharding, every Get serialized on a single
// mutex to run MoveToFront.
func BenchmarkPartitionGetParallel(b *testing.B) {
	benchPartitionGet(b, NewPartition(64<<20, nil))
}

// BenchmarkPartitionGetParallelSingleShard pins one shard — the
// pre-sharding implementation's behavior — so the sharding win is
// measurable in-tree on any machine.
func BenchmarkPartitionGetParallelSingleShard(b *testing.B) {
	benchPartitionGet(b, NewPartitionShards(64<<20, nil, 1))
}

func benchPartitionGet(b *testing.B, p *Partition) {
	data := make([]byte, 4096)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		p.Put(keys[i], data, "b", 0)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stagger start offsets so goroutines are not in lockstep on
		// the same key (and therefore the same shard) every iteration.
		i := int(next.Add(1)) * 257
		for pb.Next() {
			p.Get(keys[i%len(keys)])
			i++
		}
	})
}

// BenchmarkPartitionMixedParallel is a 90/10 get/put mix under a budget
// that forces steady eviction pressure.
func BenchmarkPartitionMixedParallel(b *testing.B) {
	p := NewPartition(16<<20, nil)
	data := make([]byte, 4096)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	for _, k := range keys[:1024] {
		p.Put(k, data, "b", 0)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 257
		for pb.Next() {
			if i%10 == 9 {
				p.Put(keys[i%len(keys)], data, "b", 0)
			} else {
				p.Get(keys[i%1024])
			}
			i++
		}
	})
}
