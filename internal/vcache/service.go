package vcache

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/san"
)

// Message kinds for the cache wire protocol. Cache nodes are plain
// workers reachable over the SAN; the paper notes each Harvest request
// cost a TCP connection — here each request is one SAN round trip, and
// an optional ServiceTime models the measured per-hit cost (§4.4).
const (
	MsgGet    = "cache.get"
	MsgGot    = "cache.got"
	MsgPut    = "cache.put"
	MsgInject = "cache.inject"
	MsgOK     = "cache.ok"
	MsgStats  = "cache.stats"
	MsgStatsR = "cache.stats.reply"
	// MsgHello is the cache service's periodic liveness heartbeat,
	// multicast on the control group so the manager can carry the
	// process-peer duty for cache nodes: silence longer than the TTL
	// means the service crashed and must be restarted (§3.1.3 timeout
	// inference, same as for front ends).
	MsgHello = "cache.hello"
)

// HelloMsg is the MsgHello body.
type HelloMsg struct {
	Name string
	Addr san.Addr
	Node string
}

// GetReq asks for a key. Stale widens the lookup to entries whose TTL
// has passed but which are still resident: the BASE degraded-mode read
// an overloaded front end uses when stale data beats no data.
type GetReq struct {
	Key   string
	Stale bool
}

// GetResp answers a GetReq. Stale marks an entry served past its TTL
// (only possible when the request asked for it).
type GetResp struct {
	Found bool
	Data  []byte
	MIME  string
	Stale bool
}

// PutReq stores content (Put or Inject depending on message kind).
type PutReq struct {
	Key  string
	Data []byte
	MIME string
	TTL  time.Duration
}

// Service hosts one cache partition on a cluster node. It implements
// cluster.Process.
type Service struct {
	// Name is the process id (e.g. "cache0").
	Name string
	// Net and Node place the service's endpoint.
	Net  *san.Network
	Node string
	// Partition is the backing store.
	Partition *Partition
	// ServiceTime, if non-nil, delays each Get response to model
	// per-request service cost (the paper's 27 ms average hit).
	ServiceTime func() time.Duration

	// HeartbeatGroup/HeartbeatInterval, when both set, make Run
	// multicast a HelloMsg on the group every interval so a process
	// peer (the manager) can supervise this service. The platform
	// layer wires these; bare services in unit tests stay silent.
	HeartbeatGroup    string
	HeartbeatInterval time.Duration

	ep *san.Endpoint
}

// NewService constructs a cache service and registers its SAN
// endpoint immediately, so clients can address it as soon as it is
// spawned (no startup race between Spawn and the first request).
func NewService(name string, net *san.Network, node string, part *Partition) *Service {
	s := &Service{Name: name, Net: net, Node: node, Partition: part}
	s.ep = net.Endpoint(s.addr(), 1024)
	return s
}

func (s *Service) addr() san.Addr { return san.Addr{Node: s.Node, Proc: s.Name} }

// Addr returns the service's SAN address.
func (s *Service) Addr() san.Addr { return s.addr() }

// ID implements cluster.Process.
func (s *Service) ID() string { return s.Name }

// Run implements cluster.Process: it serves cache requests until ctx
// is cancelled. If the endpoint is missing (struct-literal
// construction, or a respawn after its node was dropped) it is
// registered here.
func (s *Service) Run(ctx context.Context) error {
	if s.ep == nil || !s.Net.Lookup(s.addr()) {
		s.ep = s.Net.Endpoint(s.addr(), 1024)
	}
	ep := s.ep
	defer ep.Close()
	s.Net.Registry().SetCollector("cache."+s.Name, func(emit func(string, float64)) {
		st := s.Partition.Stats()
		emit("hits", float64(st.Hits))
		emit("misses", float64(st.Misses))
		emit("puts", float64(st.Puts))
		emit("injects", float64(st.Injects))
		emit("evictions", float64(st.Evictions))
		emit("expired", float64(st.Expired))
		emit("used_bytes", float64(st.Used))
		emit("objects", float64(st.Objects))
		emit("hit_rate", st.HitRate())
	})

	var hb <-chan time.Time
	if s.HeartbeatGroup != "" && s.HeartbeatInterval > 0 {
		t := time.NewTicker(s.HeartbeatInterval)
		defer t.Stop()
		hb = t.C
		s.heartbeat(ep) // announce immediately so supervision starts now
	}
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-hb:
			s.heartbeat(ep)
		case msg, ok := <-ep.Inbox():
			if !ok {
				return fmt.Errorf("vcache: %s endpoint closed", s.Name)
			}
			s.handle(ep, msg)
		}
	}
}

func (s *Service) heartbeat(ep *san.Endpoint) {
	ep.Multicast(s.HeartbeatGroup, MsgHello, HelloMsg{
		Name: s.Name,
		Addr: s.addr(),
		Node: s.Node,
	}, 48)
}

func (s *Service) handle(ep *san.Endpoint, msg san.Message) {
	switch msg.Kind {
	case MsgGet:
		req, ok := msg.Body.(GetReq)
		if !ok {
			return
		}
		gstart := time.Now()
		if s.ServiceTime != nil {
			if d := s.ServiceTime(); d > 0 {
				time.Sleep(d)
			}
		}
		var (
			entry Entry
			found bool
			stale bool
		)
		if req.Stale {
			entry, stale, found = s.Partition.GetStale(req.Key)
		} else {
			entry, found = s.Partition.Get(req.Key)
		}
		if msg.Trace.Sampled() {
			note := "miss"
			if found {
				note = "hit"
			}
			s.Net.Tracer().Record(obs.Span{
				Trace: msg.Trace, Comp: s.Name, Hop: "cache.serve", Note: note,
				Start: gstart.UnixNano(), Dur: int64(time.Since(gstart)),
			})
		}
		resp := GetResp{Found: found, Data: entry.Data, MIME: entry.MIME, Stale: stale}
		_ = ep.Respond(msg, MsgGot, resp, len(entry.Data)+32)
	case MsgPut, MsgInject:
		req, ok := msg.Body.(PutReq)
		if !ok {
			msg.Release()
			return
		}
		if msg.Lease != nil {
			// Copy-on-retain: with decode views on, req.Data aliases a
			// pooled receive buffer, and the partition stores data far
			// past this message's lifetime. This is the one copy a put
			// pays; everything upstream was zero-copy.
			req.Data = san.CloneBytes(req.Data)
		}
		if msg.Kind == MsgInject {
			s.Partition.Inject(req.Key, req.Data, req.MIME, req.TTL)
		} else {
			s.Partition.Put(req.Key, req.Data, req.MIME, req.TTL)
		}
		msg.Release()
		_ = ep.Respond(msg, MsgOK, nil, 16)
	case MsgStats:
		_ = ep.Respond(msg, MsgStatsR, s.Partition.Stats(), 64)
	}
}

// Client presents a set of cache partitions as one virtual cache: keys
// are consistent-hashed to nodes, and membership changes re-hash
// automatically. It shares its owner's SAN endpoint (whose receive
// loop must route replies via DeliverReply).
type Client struct {
	ep      *san.Endpoint
	ring    *Ring
	addrs   map[string]san.Addr
	mu      chan struct{} // 1-token semaphore guarding addrs+ring mutation
	Timeout time.Duration
}

// NewClient creates a virtual-cache client over an endpoint.
func NewClient(ep *san.Endpoint) *Client {
	c := &Client{
		ep:      ep,
		ring:    NewRing(0),
		addrs:   make(map[string]san.Addr),
		mu:      make(chan struct{}, 1),
		Timeout: 2 * time.Second,
	}
	c.mu <- struct{}{}
	return c
}

// AddNode registers a cache partition under a logical name.
func (c *Client) AddNode(name string, addr san.Addr) {
	<-c.mu
	c.addrs[name] = addr
	c.ring.Add(name)
	c.mu <- struct{}{}
}

// RemoveNode drops a partition; its key range re-hashes to survivors.
func (c *Client) RemoveNode(name string) {
	<-c.mu
	delete(c.addrs, name)
	c.ring.Remove(name)
	c.mu <- struct{}{}
}

// Nodes returns the current partition names.
func (c *Client) Nodes() []string { return c.ring.Nodes() }

// owner resolves the partition address for a key.
func (c *Client) owner(key string) (san.Addr, bool) {
	node := c.ring.Lookup(key)
	if node == "" {
		return san.Addr{}, false
	}
	<-c.mu
	addr, ok := c.addrs[node]
	c.mu <- struct{}{}
	return addr, ok
}

// Get fetches a key from the virtual cache. A missing partition or
// timeout reads as a miss: the cache is an optimization, never a
// correctness dependency (BASE). The returned data is owned by the
// caller (copied out of any pooled receive buffer); holders that can
// bound the data's lifetime should prefer GetView and skip the copy.
func (c *Client) Get(ctx context.Context, key string) (data []byte, mime string, found bool) {
	data, mime, release, found := c.GetView(ctx, key)
	if release != nil {
		data = san.CloneBytes(data)
		release()
	}
	return data, mime, found
}

// GetView is the zero-copy Get: when the reply arrived as a decode
// view, data aliases a pooled receive buffer and release is non-nil —
// the caller must finish reading (or copy) before calling release, must
// call it exactly once, and must not touch data afterwards. A nil
// release means data is already owned (local passthrough delivery, or
// a miss). Front ends that write the bytes straight to a client socket
// use this to serve a cache hit without any body copy in this process.
func (c *Client) GetView(ctx context.Context, key string) (data []byte, mime string, release func(), found bool) {
	addr, ok := c.owner(key)
	if !ok {
		return nil, "", nil, false
	}
	cctx, cancel := context.WithTimeout(ctx, c.Timeout)
	defer cancel()
	resp, err := c.ep.Call(cctx, addr, MsgGet, GetReq{Key: key}, len(key)+16)
	if err != nil {
		return nil, "", nil, false
	}
	got, ok := resp.Body.(GetResp)
	if !ok || !got.Found {
		resp.Release()
		return nil, "", nil, false
	}
	if resp.Lease == nil {
		return got.Data, got.MIME, nil, true
	}
	return got.Data, got.MIME, resp.Lease.Release, true
}

// GetStaleView is GetView with the BASE degraded-mode widening: the
// partition may answer with an entry whose TTL has passed but which is
// still resident (stale=true), per the paper's stale-data-beats-no-data
// argument. An overloaded front end uses this to keep answering without
// spending worker capacity; release semantics match GetView.
func (c *Client) GetStaleView(ctx context.Context, key string) (data []byte, mime string, stale bool, release func(), found bool) {
	addr, ok := c.owner(key)
	if !ok {
		return nil, "", false, nil, false
	}
	cctx, cancel := context.WithTimeout(ctx, c.Timeout)
	defer cancel()
	resp, err := c.ep.Call(cctx, addr, MsgGet, GetReq{Key: key, Stale: true}, len(key)+16)
	if err != nil {
		return nil, "", false, nil, false
	}
	got, ok := resp.Body.(GetResp)
	if !ok || !got.Found {
		resp.Release()
		return nil, "", false, nil, false
	}
	if resp.Lease == nil {
		return got.Data, got.MIME, got.Stale, nil, true
	}
	return got.Data, got.MIME, got.Stale, resp.Lease.Release, true
}

// Put stores original content; errors are swallowed (best effort).
func (c *Client) Put(ctx context.Context, key string, data []byte, mime string, ttl time.Duration) {
	c.put(ctx, MsgPut, key, data, mime, ttl)
}

// Inject stores post-transformation content.
func (c *Client) Inject(ctx context.Context, key string, data []byte, mime string, ttl time.Duration) {
	c.put(ctx, MsgInject, key, data, mime, ttl)
}

func (c *Client) put(ctx context.Context, kind, key string, data []byte, mime string, ttl time.Duration) {
	addr, ok := c.owner(key)
	if !ok {
		return
	}
	cctx, cancel := context.WithTimeout(ctx, c.Timeout)
	defer cancel()
	_, _ = c.ep.Call(cctx, addr, kind, PutReq{Key: key, Data: data, MIME: mime, TTL: ttl}, len(data)+len(key)+32)
}

// StatsOf fetches one partition's stats (for the monitor).
func (c *Client) StatsOf(ctx context.Context, name string) (Stats, error) {
	<-c.mu
	addr, ok := c.addrs[name]
	c.mu <- struct{}{}
	if !ok {
		return Stats{}, fmt.Errorf("vcache: unknown partition %q", name)
	}
	cctx, cancel := context.WithTimeout(ctx, c.Timeout)
	defer cancel()
	resp, err := c.ep.Call(cctx, addr, MsgStats, nil, 16)
	if err != nil {
		return Stats{}, err
	}
	st, ok := resp.Body.(Stats)
	if !ok {
		return Stats{}, fmt.Errorf("vcache: bad stats reply")
	}
	return st, nil
}
