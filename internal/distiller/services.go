package distiller

import (
	"context"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/media"
	"repro/internal/tacc"
)

// This file implements the §5.1 services built "entirely at the TACC
// and Service layers": keyword filtering, the Bay Area Culture Page,
// TranSend metasearch, the anonymous rewebber, and thin-client
// simplification. Each is a handful of lines of real logic — the
// paper's point is precisely that the SNS layer makes these trivial.

// KeywordFilter marks occurrences of user-chosen keywords in HTML with
// large bold red typeface — the paper's 10-line-of-Perl example. The
// pattern comes from the user profile key "keywords" (comma separated)
// or "pattern" (a regular expression).
type KeywordFilter struct{}

// Class implements tacc.Worker.
func (KeywordFilter) Class() string { return ClassKeyword }

// Process implements tacc.Worker.
func (KeywordFilter) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	pattern := task.Param("pattern", "")
	if pattern == "" {
		words := strings.Split(task.Param("keywords", ""), ",")
		var quoted []string
		for _, w := range words {
			w = strings.TrimSpace(w)
			if w != "" {
				quoted = append(quoted, regexp.QuoteMeta(w))
			}
		}
		if len(quoted) == 0 {
			return task.Input, nil // nothing to mark
		}
		pattern = strings.Join(quoted, "|")
	}
	re, err := regexp.Compile("(?i)(" + pattern + ")")
	if err != nil {
		return tacc.Blob{}, fmt.Errorf("distiller: keyword pattern: %w", err)
	}
	out := re.ReplaceAll(task.Input.Data,
		[]byte(`<b style="color:red;font-size:large">$1</b>`))
	return tacc.Blob{MIME: media.MIMEHTML, Data: out}, nil
}

// dateRe matches the "extremely general, layout-independent
// heuristics" for event dates: month-name dates and numeric dates.
// Like the paper's version it is deliberately loose and picks up
// 10-20% spurious matches; users ignore them (BASE approximate
// answers at the application layer).
var dateRe = regexp.MustCompile(`(?i)\b(jan|feb|mar|apr|may|jun|jul|aug|sep|oct|nov|dec)[a-z]*\.?\s+\d{1,2}\b|\b\d{1,2}/\d{1,2}(/\d{2,4})?\b`)

// CultureAggregator collates event listings from several cultural
// pages into one "culture this week" page (§2.3, §5.1).
type CultureAggregator struct{}

// Class implements tacc.Worker.
func (CultureAggregator) Class() string { return ClassCulture }

// Process implements tacc.Worker.
func (CultureAggregator) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	inputs := task.Inputs
	if len(inputs) == 0 && task.Input.Size() > 0 {
		inputs = []tacc.Blob{task.Input}
	}
	type event struct{ date, desc string }
	var events []event
	for _, in := range inputs {
		text := string(media.StripTags(in.Data))
		for _, loc := range dateRe.FindAllStringIndex(text, -1) {
			date := text[loc[0]:loc[1]]
			// The "description" heuristic: the words following
			// the date, up to a sentence-ish boundary.
			rest := text[loc[1]:]
			end := len(rest)
			if end > 90 {
				end = 90
			}
			if dot := strings.IndexAny(rest[:end], ".;"); dot >= 0 {
				end = dot
			}
			desc := strings.TrimSpace(rest[:end])
			if desc != "" {
				events = append(events, event{date: date, desc: desc})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].date < events[j].date })
	var b strings.Builder
	b.WriteString("<html><head><title>Culture This Week</title></head><body><h1>Culture This Week</h1><ul>\n")
	max := task.ParamInt("maxevents", 50)
	for i, e := range events {
		if i >= max {
			break
		}
		fmt.Fprintf(&b, "<li><b>%s</b> — %s</li>\n", e.date, e.desc)
	}
	b.WriteString("</ul></body></html>\n")
	blob := tacc.Blob{MIME: media.MIMEHTML, Data: []byte(b.String())}
	return blob.WithMeta("events", itoa(len(events))), nil
}

// resultRe extracts anchors from synthetic search-engine result pages.
var resultRe = regexp.MustCompile(`(?i)<a\s+href="([^"]+)"[^>]*>([^<]+)</a>`)

// MetasearchAggregator queries "a number of popular search engines"
// (its aggregation inputs are their result pages) and collates the top
// results into a single page — the paper's 3-pages-of-Perl,
// 2.5-hours-to-build example.
type MetasearchAggregator struct{}

// Class implements tacc.Worker.
func (MetasearchAggregator) Class() string { return ClassSearch }

// Process implements tacc.Worker.
func (MetasearchAggregator) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	perEngine := task.ParamInt("perEngine", 5)
	type hit struct{ url, title string }
	var hits []hit
	seen := map[string]bool{}
	for _, in := range task.Inputs {
		matches := resultRe.FindAllStringSubmatch(string(in.Data), -1)
		taken := 0
		for _, m := range matches {
			if taken >= perEngine {
				break
			}
			if seen[m[1]] {
				continue // dedup across engines
			}
			seen[m[1]] = true
			hits = append(hits, hit{url: m[1], title: strings.TrimSpace(m[2])})
			taken++
		}
	}
	query := task.Param("query", "")
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>Metasearch: %s</title></head><body><h1>Results for %q</h1><ol>\n", query, query)
	for _, h := range hits {
		fmt.Fprintf(&b, `<li><a href="%s">%s</a></li>`+"\n", h.url, h.title)
	}
	b.WriteString("</ol></body></html>\n")
	blob := tacc.Blob{MIME: media.MIMEHTML, Data: []byte(b.String())}
	return blob.WithMeta("results", itoa(len(hits))), nil
}

// ErrNoKey reports a rewebber task without key material.
var ErrNoKey = errors.New("distiller: rewebber requires a 'rewebkey' profile entry")

func rewebKey(task *tacc.Task) ([]byte, error) {
	k := task.Param("rewebkey", "")
	if k == "" {
		return nil, ErrNoKey
	}
	sum := sha256.Sum256([]byte(k))
	return sum[:], nil
}

// EncryptWorker is the anonymous rewebber's publishing side (§5.1):
// computationally intensive, highly parallelizable encryption of
// content under a key from the profile database.
type EncryptWorker struct{}

// Class implements tacc.Worker.
func (EncryptWorker) Class() string { return ClassEncrypt }

// Process implements tacc.Worker.
func (EncryptWorker) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	key, err := rewebKey(task)
	if err != nil {
		return tacc.Blob{}, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return tacc.Blob{}, fmt.Errorf("distiller: encrypt: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return tacc.Blob{}, fmt.Errorf("distiller: encrypt: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return tacc.Blob{}, fmt.Errorf("distiller: encrypt: %w", err)
	}
	sealed := gcm.Seal(nonce, nonce, task.Input.Data, nil)
	blob := tacc.Blob{MIME: "application/x-rewebbed", Data: sealed}
	return blob.WithMeta("origMIME", task.Input.MIME), nil
}

// DecryptWorker is the rewebber's reading side; decrypted pages are
// BASE data cached by the virtual cache.
type DecryptWorker struct{}

// Class implements tacc.Worker.
func (DecryptWorker) Class() string { return ClassDecrypt }

// Process implements tacc.Worker.
func (DecryptWorker) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	key, err := rewebKey(task)
	if err != nil {
		return tacc.Blob{}, err
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return tacc.Blob{}, fmt.Errorf("distiller: decrypt: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return tacc.Blob{}, fmt.Errorf("distiller: decrypt: %w", err)
	}
	data := task.Input.Data
	if len(data) < gcm.NonceSize() {
		return tacc.Blob{}, fmt.Errorf("distiller: decrypt: ciphertext too short")
	}
	plain, err := gcm.Open(nil, data[:gcm.NonceSize()], data[gcm.NonceSize():], nil)
	if err != nil {
		return tacc.Blob{}, fmt.Errorf("distiller: decrypt: %w", err)
	}
	mime := task.Input.Meta["origMIME"]
	if mime == "" {
		mime = media.DetectMIME(plain)
	}
	return tacc.Blob{MIME: mime, Data: plain}, nil
}

// ThinClient produces "simplified markup and scaled-down images ready
// to be spoon-fed to an extremely simple browser client" (§5.1's
// PalmPilot support): markup is stripped and the text fit to the
// client's screen dimensions from the profile.
type ThinClient struct{}

// Class implements tacc.Worker.
func (ThinClient) Class() string { return ClassThin }

// Process implements tacc.Worker.
func (ThinClient) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	cols := task.ParamInt("screenCols", 40)
	rows := task.ParamInt("screenRows", 20)
	if cols < 8 {
		cols = 8
	}
	text := string(media.StripTags(task.Input.Data))
	words := strings.Fields(text)
	var lines []string
	var cur strings.Builder
	for _, w := range words {
		if cur.Len() > 0 && cur.Len()+1+len(w) > cols {
			lines = append(lines, cur.String())
			cur.Reset()
			if len(lines) >= rows {
				break
			}
		}
		if cur.Len() > 0 {
			cur.WriteByte(' ')
		}
		cur.WriteString(w)
	}
	if cur.Len() > 0 && len(lines) < rows {
		lines = append(lines, cur.String())
	}
	out := strings.Join(lines, "\n")
	blob := tacc.Blob{MIME: "text/plain", Data: []byte(out)}
	return blob.WithMeta("lines", itoa(len(lines))), nil
}
