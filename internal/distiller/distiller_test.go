package distiller

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/media"
	"repro/internal/tacc"
)

var ctx = context.Background()

func sgifBlob(t *testing.T, target int) tacc.Blob {
	t.Helper()
	data := media.GenerateContent(rand.New(rand.NewSource(1)), media.MIMESGIF, target)
	return tacc.Blob{MIME: media.MIMESGIF, Data: data}
}

func sjpgBlob(t *testing.T, target int) tacc.Blob {
	t.Helper()
	data := media.GenerateContent(rand.New(rand.NewSource(2)), media.MIMESJPG, target)
	return tacc.Blob{MIME: media.MIMESJPG, Data: data}
}

func TestSGIFDistillerShrinks(t *testing.T) {
	in := sgifBlob(t, 10*1024)
	out, err := (SGIFDistiller{}).Process(ctx, &tacc.Task{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() >= in.Size()/2 {
		t.Fatalf("distilled %d -> %d, want at least 2x reduction", in.Size(), out.Size())
	}
	if out.Meta["distilled"] != "true" {
		t.Fatalf("meta = %v", out.Meta)
	}
	if _, err := media.DecodeSGIF(out.Data); err != nil {
		t.Fatalf("output not decodable: %v", err)
	}
}

func TestSJPGDistillerShrinks(t *testing.T) {
	in := sjpgBlob(t, 10*1024)
	out, err := (SJPGDistiller{}).Process(ctx, &tacc.Task{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() >= in.Size()/2 {
		t.Fatalf("distilled %d -> %d", in.Size(), out.Size())
	}
	im, err := media.DecodeSJPG(out.Data)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := media.DecodeSJPG(in.Data)
	if im.W != orig.W/2 {
		t.Fatalf("width %d, want %d (scale 2)", im.W, orig.W/2)
	}
}

func TestDistillerRespectsProfileParams(t *testing.T) {
	in := sjpgBlob(t, 10*1024)
	// Profile asks for aggressive scale 4.
	out4, err := (SJPGDistiller{}).Process(ctx, &tacc.Task{
		Input:   in,
		Profile: map[string]string{"scale": "4", "quality": "10"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := (SJPGDistiller{}).Process(ctx, &tacc.Task{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if out4.Size() >= out2.Size() {
		t.Fatalf("scale4/q10 (%d B) not smaller than defaults (%d B)", out4.Size(), out2.Size())
	}
}

func TestOneKBThreshold(t *testing.T) {
	// Sub-1KB objects pass through untouched (§4.1).
	small := sgifBlob(t, 600)
	if small.Size() > 1024 {
		t.Skipf("generator overshot: %d bytes", small.Size())
	}
	out, err := (SGIFDistiller{}).Process(ctx, &tacc.Task{Input: small})
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Data) != string(small.Data) {
		t.Fatal("small object modified")
	}
	if out.Meta["distilled"] != "skipped-small" {
		t.Fatalf("meta = %v", out.Meta)
	}
}

func TestDistillerCorruptInputErrors(t *testing.T) {
	junk := tacc.Blob{MIME: media.MIMESGIF, Data: make([]byte, 5000)}
	if _, err := (SGIFDistiller{}).Process(ctx, &tacc.Task{Input: junk}); err == nil {
		t.Fatal("corrupt SGIF accepted")
	}
	junk.MIME = media.MIMESJPG
	if _, err := (SJPGDistiller{}).Process(ctx, &tacc.Task{Input: junk}); err == nil {
		t.Fatal("corrupt SJPG accepted")
	}
}

func TestHTMLMunger(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	page := media.GenerateHTML(rng, 4000, []string{"http://o.example/a.sgif"})
	out, err := (HTMLMunger{}).Process(ctx, &tacc.Task{
		Input:   tacc.Blob{MIME: media.MIMEHTML, Data: page},
		Profile: map[string]string{"quality": "10"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := string(out.Data)
	if !strings.Contains(s, "transend-toolbar") {
		t.Fatal("toolbar missing")
	}
	if !strings.Contains(s, "/distill?url=http://o.example/a.sgif&quality=10") {
		t.Fatalf("img src not rewritten with profile quality: %.300s", s)
	}
	if !strings.Contains(s, "[original]") {
		t.Fatal("original links missing")
	}
}

func TestHTMLMungerToolbarOff(t *testing.T) {
	out, err := (HTMLMunger{}).Process(ctx, &tacc.Task{
		Input:  tacc.Blob{MIME: media.MIMEHTML, Data: []byte("<html><body>x</body></html>")},
		Params: map[string]string{"toolbar": "false"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out.Data), "transend-toolbar") {
		t.Fatal("toolbar present despite toolbar=false")
	}
}

func TestKeywordFilter(t *testing.T) {
	in := tacc.Blob{MIME: media.MIMEHTML, Data: []byte("<p>the Cluster is a cluster of clusters</p>")}
	out, err := (KeywordFilter{}).Process(ctx, &tacc.Task{
		Input:   in,
		Profile: map[string]string{"keywords": "cluster"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(out.Data), `<b style="color:red`); got != 3 {
		t.Fatalf("marked %d occurrences, want 3 (case-insensitive)", got)
	}
}

func TestKeywordFilterNoKeywords(t *testing.T) {
	in := tacc.Blob{Data: []byte("unchanged")}
	out, err := (KeywordFilter{}).Process(ctx, &tacc.Task{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Data) != "unchanged" {
		t.Fatal("no-op filter modified content")
	}
}

func TestKeywordFilterBadPattern(t *testing.T) {
	_, err := (KeywordFilter{}).Process(ctx, &tacc.Task{
		Input:  tacc.Blob{Data: []byte("x")},
		Params: map[string]string{"pattern": "("},
	})
	if err == nil {
		t.Fatal("invalid regexp accepted")
	}
}

func TestCultureAggregator(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var inputs []tacc.Blob
	for i, site := range []string{"siteA", "siteB", "siteC"} {
		_ = i
		inputs = append(inputs, tacc.Blob{
			MIME: media.MIMEHTML,
			Data: GenerateCulturePage(rng, site, 6),
		})
	}
	out, err := (CultureAggregator{}).Process(ctx, &tacc.Task{Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	s := string(out.Data)
	if !strings.Contains(s, "Culture This Week") {
		t.Fatal("title missing")
	}
	items := strings.Count(s, "<li>")
	// 18 real events; heuristics may add some spurious ones and the
	// stable sort keeps all; require at least the real ones.
	if items < 15 {
		t.Fatalf("only %d events extracted from 18 real ones", items)
	}
}

func TestCultureAggregatorSingleInputFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	out, err := (CultureAggregator{}).Process(ctx, &tacc.Task{
		Input: tacc.Blob{MIME: media.MIMEHTML, Data: GenerateCulturePage(rng, "solo", 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out.Data), "<li>") {
		t.Fatal("no events from single input")
	}
}

func TestMetasearchAggregator(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inputs := []tacc.Blob{
		{Data: GenerateResultsPage(rng, "AltaVista", "clusters", 10)},
		{Data: GenerateResultsPage(rng, "Lycos", "clusters", 10)},
		{Data: GenerateResultsPage(rng, "Excite", "clusters", 10)},
	}
	out, err := (MetasearchAggregator{}).Process(ctx, &tacc.Task{
		Inputs: inputs,
		Params: map[string]string{"query": "clusters", "perEngine": "4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := string(out.Data)
	if got := strings.Count(s, "<li>"); got != 12 {
		t.Fatalf("collated %d results, want 12 (4 per engine)", got)
	}
	if out.Meta["results"] != "12" {
		t.Fatalf("meta = %v", out.Meta)
	}
}

func TestRewebberRoundTrip(t *testing.T) {
	plain := tacc.Blob{MIME: media.MIMEHTML, Data: []byte("<html>secret pamphlet</html>")}
	prof := map[string]string{"rewebkey": "author-key-1"}
	enc, err := (EncryptWorker{}).Process(ctx, &tacc.Task{Input: plain, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc.Data), "secret") {
		t.Fatal("ciphertext leaks plaintext")
	}
	dec, err := (DecryptWorker{}).Process(ctx, &tacc.Task{Input: enc, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if string(dec.Data) != string(plain.Data) || dec.MIME != media.MIMEHTML {
		t.Fatalf("round trip failed: %q %s", dec.Data, dec.MIME)
	}
}

func TestRewebberWrongKey(t *testing.T) {
	plain := tacc.Blob{Data: []byte("x")}
	enc, err := (EncryptWorker{}).Process(ctx, &tacc.Task{
		Input: plain, Profile: map[string]string{"rewebkey": "right"}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = (DecryptWorker{}).Process(ctx, &tacc.Task{
		Input: enc, Profile: map[string]string{"rewebkey": "wrong"}})
	if err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestRewebberMissingKey(t *testing.T) {
	_, err := (EncryptWorker{}).Process(ctx, &tacc.Task{Input: tacc.Blob{Data: []byte("x")}})
	if !errors.Is(err, ErrNoKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestThinClient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	page := media.GenerateHTML(rng, 8000, nil)
	out, err := (ThinClient{}).Process(ctx, &tacc.Task{
		Input:   tacc.Blob{MIME: media.MIMEHTML, Data: page},
		Profile: map[string]string{"screenCols": "30", "screenRows": "10"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(out.Data), "\n")
	if len(lines) > 10 {
		t.Fatalf("%d lines exceed screenRows", len(lines))
	}
	for _, l := range lines {
		if len(l) > 30 {
			t.Fatalf("line %q exceeds screenCols", l)
		}
	}
	if strings.Contains(string(out.Data), "<") {
		t.Fatal("markup not stripped")
	}
}

func TestRegisterAllAndPipelines(t *testing.T) {
	reg := tacc.NewRegistry()
	RegisterAll(reg)
	if len(reg.Classes()) != 9 {
		t.Fatalf("classes = %v", reg.Classes())
	}
	// End-to-end: HTML through munger + keyword filter via registry.
	rng := rand.New(rand.NewSource(8))
	page := media.GenerateHTML(rng, 3000, nil)
	out, err := reg.Run(ctx, tacc.Pipeline{
		{Class: ClassHTML},
		{Class: ClassKeyword, Params: map[string]string{"keywords": "lorem"}},
	}, &tacc.Task{Input: tacc.Blob{MIME: media.MIMEHTML, Data: page}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out.Data), "transend-toolbar") {
		t.Fatal("pipeline lost munger output")
	}
}

func TestTranSendRules(t *testing.T) {
	rules := TranSendRules()
	if p := rules("u", media.MIMESGIF, nil); len(p) != 1 || p[0].Class != ClassSGIF {
		t.Fatalf("sgif pipeline = %v", p)
	}
	if p := rules("u", media.MIMESJPG, nil); len(p) != 1 || p[0].Class != ClassSJPG {
		t.Fatalf("sjpg pipeline = %v", p)
	}
	if p := rules("u", media.MIMEHTML, nil); len(p) != 1 || p[0].Class != ClassHTML {
		t.Fatalf("html pipeline = %v", p)
	}
	p := rules("u", media.MIMEHTML, map[string]string{"keywords": "x", "thin": "true"})
	if len(p) != 3 {
		t.Fatalf("customized html pipeline = %v", p)
	}
	if p := rules("u", media.MIMEOther, nil); p != nil {
		t.Fatalf("other pipeline = %v", p)
	}
	if p := rules("u", media.MIMESGIF, map[string]string{"transend": "off"}); p != nil {
		t.Fatal("user opt-out ignored")
	}
}
