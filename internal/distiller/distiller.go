// Package distiller implements TranSend's datatype-specific workers
// (paper §3.1.6) and the additional TACC services of §5.1. Each worker
// is a stateless tacc.Worker: it reads its parameters from the stage
// definition and the user profile, does real computation on the
// content, and returns the transformed blob. Workers deliberately make
// no fault-tolerance or threading decisions — that is the worker
// stub's job.
//
// Profile/parameter keys honored by the image distillers:
//
//	scale    integer downscale factor (default 2)
//	colors   SGIF palette size after distillation (default 16)
//	quality  SJPG re-encode quality (default 25)
//	blur     optional low-pass radius before encoding (default 0)
//	minsize  objects at or below this size pass through untouched
//	         (default 1024 — the paper's 1 KB distillation threshold)
package distiller

import (
	"context"
	"fmt"

	"repro/internal/media"
	"repro/internal/tacc"
)

// Worker class names.
const (
	ClassSGIF    = "distill-sgif"
	ClassSJPG    = "distill-sjpg"
	ClassHTML    = "munge-html"
	ClassKeyword = "filter-keyword"
	ClassCulture = "aggregate-culture"
	ClassSearch  = "aggregate-metasearch"
	ClassEncrypt = "rewebber-encrypt"
	ClassDecrypt = "rewebber-decrypt"
	ClassThin    = "thin-client"
)

// DefaultMinSize is the 1 KB distillation threshold from §4.1:
// "data under 1 KB is transferred to the client unmodified, since
// distillation of such small content rarely results in a size
// reduction."
const DefaultMinSize = 1024

// RegisterAll installs every worker class in a registry.
func RegisterAll(reg *tacc.Registry) {
	reg.Register(ClassSGIF, func() tacc.Worker { return SGIFDistiller{} })
	reg.Register(ClassSJPG, func() tacc.Worker { return SJPGDistiller{} })
	reg.Register(ClassHTML, func() tacc.Worker { return HTMLMunger{} })
	reg.Register(ClassKeyword, func() tacc.Worker { return KeywordFilter{} })
	reg.Register(ClassCulture, func() tacc.Worker { return CultureAggregator{} })
	reg.Register(ClassSearch, func() tacc.Worker { return MetasearchAggregator{} })
	reg.Register(ClassEncrypt, func() tacc.Worker { return EncryptWorker{} })
	reg.Register(ClassDecrypt, func() tacc.Worker { return DecryptWorker{} })
	reg.Register(ClassThin, func() tacc.Worker { return ThinClient{} })
}

// SGIFDistiller scales and palette-reduces SGIF images — the GIF
// distiller ("GIF-to-JPEG conversion followed by JPEG degradation" is
// approximated by palette + scale reduction on the same codec family,
// keeping the size-linear cost profile of Figure 7).
type SGIFDistiller struct{}

// Class implements tacc.Worker.
func (SGIFDistiller) Class() string { return ClassSGIF }

// Process implements tacc.Worker.
func (SGIFDistiller) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	in := task.Input
	if in.Size() <= task.ParamInt("minsize", DefaultMinSize) {
		return in.WithMeta("distilled", "skipped-small"), nil
	}
	im, err := media.DecodeSGIF(in.Data)
	if err != nil {
		return tacc.Blob{}, fmt.Errorf("distiller: sgif: %w", err)
	}
	scale := task.ParamInt("scale", 2)
	colors := task.ParamInt("colors", 16)
	if r := task.ParamInt("blur", 0); r > 0 {
		im = im.BoxBlur(r)
	}
	out := media.EncodeSGIF(im.Downscale(scale), colors)
	blob := tacc.Blob{MIME: media.MIMESGIF, Data: out}
	blob = blob.WithMeta("origSize", itoa(in.Size()))
	return blob.WithMeta("distilled", "true"), nil
}

// SJPGDistiller scales, low-pass filters, and re-encodes SJPG images
// at reduced quality — "scaling and low-pass filtering of JPEG images
// using the off-the-shelf jpeg-6a library".
type SJPGDistiller struct{}

// Class implements tacc.Worker.
func (SJPGDistiller) Class() string { return ClassSJPG }

// Process implements tacc.Worker.
func (SJPGDistiller) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	in := task.Input
	if in.Size() <= task.ParamInt("minsize", DefaultMinSize) {
		return in.WithMeta("distilled", "skipped-small"), nil
	}
	im, err := media.DecodeSJPG(in.Data)
	if err != nil {
		return tacc.Blob{}, fmt.Errorf("distiller: sjpg: %w", err)
	}
	scale := task.ParamInt("scale", 2)
	quality := task.ParamInt("quality", 25)
	if r := task.ParamInt("blur", 0); r > 0 {
		im = im.BoxBlur(r)
	}
	out := media.EncodeSJPG(im.Downscale(scale), quality)
	blob := tacc.Blob{MIME: media.MIMESJPG, Data: out}
	blob = blob.WithMeta("origSize", itoa(in.Size()))
	return blob.WithMeta("distilled", "true"), nil
}

// HTMLMunger rewrites inline image references to point at the
// distillation service, appends links to the originals, and prepends
// the TranSend toolbar (Figure 4). The munger is where the service's
// user interface lives: "the user interface for TranSend is thus
// controlled by the HTML distiller".
type HTMLMunger struct{}

// Class implements tacc.Worker.
func (HTMLMunger) Class() string { return ClassHTML }

// Process implements tacc.Worker.
func (HTMLMunger) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	prefix := task.Param("distillPrefix", "/distill?url=")
	quality := task.Param("quality", "25")
	scale := task.Param("scale", "2")
	toolbar := ""
	if task.ParamBool("toolbar", true) {
		toolbar = fmt.Sprintf(
			`<div class="transend-toolbar">TranSend | quality=%s scale=%s | <a href="/prefs">preferences</a> | <a href="?raw=1">view original</a></div>`,
			quality, scale)
	}
	out := media.RewriteHTML(task.Input.Data, media.MungeOptions{
		RewriteSrc: func(src string) string {
			return prefix + src + "&quality=" + quality + "&scale=" + scale
		},
		OriginalLink: task.ParamBool("originalLinks", true),
		Toolbar:      toolbar,
	})
	return tacc.Blob{MIME: media.MIMEHTML, Data: out, Meta: map[string]string{"munged": "true"}}, nil
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
