package distiller

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/media"
	"repro/internal/tacc"
)

// Generators for the aggregation services' upstream content: cultural
// listing pages and search-engine result pages. These stand in for the
// live web sites the paper's aggregators scraped.

var venues = []string{
	"Zellerbach Hall", "Greek Theatre", "Fillmore", "Yerba Buena Center",
	"Freight and Salvage", "Paramount Theatre", "Davies Symphony Hall",
}

var acts = []string{
	"Symphony No. 5", "Jazz Quartet", "Poetry Slam", "Kodo Drummers",
	"String Ensemble", "Modern Dance Revue", "Chamber Orchestra",
	"Improv Night", "Film Retrospective",
}

var months = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun",
	"Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// GenerateCulturePage synthesizes one cultural-events listing with
// nEvents real events plus noise text, some of which contains
// date-like strings that the aggregator's loose heuristics will
// (correctly, per the paper) pick up spuriously.
func GenerateCulturePage(rng *rand.Rand, site string, nEvents int) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s events</title></head><body><h1>%s</h1>\n", site, site)
	for i := 0; i < nEvents; i++ {
		month := months[rng.Intn(len(months))]
		day := 1 + rng.Intn(28)
		fmt.Fprintf(&b, "<p>%s %d: %s at %s. Tickets at the door.</p>\n",
			month, day, acts[rng.Intn(len(acts))], venues[rng.Intn(len(venues))])
	}
	// Noise paragraphs; roughly one in five contains a spurious
	// date-like token (e.g. "version 3/14" — not an event).
	for i := 0; i < nEvents/2+1; i++ {
		if rng.Intn(5) == 0 {
			fmt.Fprintf(&b, "<p>Our site was updated to version %d/%d last week.</p>\n",
				1+rng.Intn(9), 1+rng.Intn(20))
		} else {
			b.WriteString("<p>Parking is available on site; see directions page.</p>\n")
		}
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// GenerateResultsPage synthesizes a search engine's result page for a
// query: n ranked anchors in the shape MetasearchAggregator parses.
func GenerateResultsPage(rng *rand.Rand, engine, query string, n int) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s: %s</title></head><body><ol>\n", engine, query)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<li><a href="http://site%d.example/%s/%d">%s result %d from %s</a></li>`+"\n",
			rng.Intn(1000), query, i, query, i+1, engine)
	}
	b.WriteString("</ol></body></html>\n")
	return []byte(b.String())
}

// TranSendRules returns the TranSend service's dispatch logic (§3.1.1):
// images go to the matching distiller, HTML through the munger,
// everything else (and anything the user disabled) passes through.
func TranSendRules() tacc.DispatchRule {
	return func(url, mime string, profile map[string]string) tacc.Pipeline {
		if profile["transend"] == "off" {
			return nil
		}
		switch mime {
		case media.MIMESGIF:
			return tacc.Pipeline{{Class: ClassSGIF}}
		case media.MIMESJPG:
			return tacc.Pipeline{{Class: ClassSJPG}}
		case media.MIMEHTML:
			p := tacc.Pipeline{{Class: ClassHTML}}
			if profile["keywords"] != "" || profile["pattern"] != "" {
				p = append(p, tacc.Stage{Class: ClassKeyword})
			}
			if profile["thin"] == "true" {
				p = append(p, tacc.Stage{Class: ClassThin})
			}
			return p
		default:
			return nil // no distiller for this type: pass through
		}
	}
}
