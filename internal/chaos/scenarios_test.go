package chaos

// End-to-end self-healing scenarios (paper §4.3): each test boots a
// complete SNS instance through the harness, injects one fault class,
// and asserts the system restores full capacity with no recovery
// protocol — the soft-state claim, exercised on the real stack rather
// than per-package unit tests.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

const seed = 1

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newHarness(t *testing.T, cfg Config) *Harness {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Stop)
	return h
}

// TestScenarioWorkerCrashRespawn: kill a worker with requests in
// flight — every request must still complete (timeout + failover
// drain the orphaned queue onto the survivor), and the manager must
// infer the loss and respawn a replacement.
func TestScenarioWorkerCrashRespawn(t *testing.T) {
	h := newHarness(t, Config{Seed: seed})
	ctx := context.Background()

	spawnsBefore := h.Sys.Manager().Stats().Spawns
	var wg sync.WaitGroup
	errs := make([]error, 24)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, 8*time.Second)
			defer cancel()
			_, errs[i] = h.Sys.Request(rctx, fmt.Sprintf("http://chaos.example/w%d.bin", i), "u")
		}(i)
	}
	// Crash one of the two workers while those requests are moving.
	killAt := time.Now()
	h.Execute(ctx, Schedule{Seed: seed, Events: []Event{{Kind: KillWorker, Slot: 0}}})
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed across worker crash: %v", i, err)
		}
	}

	// The manager replaces the crashed worker (timeout inference: no
	// deregistration was sent).
	waitFor(t, "replacement spawn", func() bool {
		return h.Sys.Manager().Stats().Spawns > spawnsBefore
	})
	h.Note("worker-respawn", time.Since(killAt).String())
	if !h.AwaitSteady(10 * time.Second) {
		t.Fatal("system did not return to full worker strength")
	}
}

// TestScenarioManagerCrashReregister: kill the manager — requests
// keep flowing off cached beacons, a front-end watchdog restarts it,
// and every worker re-registers with zero lost state (§3.1.3).
func TestScenarioManagerCrashReregister(t *testing.T) {
	h := newHarness(t, Config{Seed: seed})
	ctx := context.Background()

	old := h.Sys.Manager()
	want := old.Stats().Workers
	if want == 0 {
		t.Fatal("no workers registered before the fault")
	}
	killAt := time.Now()
	h.Execute(ctx, Schedule{Seed: seed, Events: []Event{{Kind: KillManager}}})

	// Availability during the outage: dispatch runs off the stub's
	// cached load-balancing state ("stale data tolerated", §3.1.8).
	for i := 0; i < 5; i++ {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_, err := h.Sys.Request(rctx, fmt.Sprintf("http://chaos.example/m%d.bin", i), "u")
		cancel()
		if err != nil {
			t.Fatalf("request %d failed during manager outage: %v", i, err)
		}
	}

	waitFor(t, "manager restart + full re-registration", func() bool {
		m := h.Sys.Manager()
		return m != old && m.Stats().Workers >= want
	})
	h.Note("manager-recovery", time.Since(killAt).String())
	if regs := h.Sys.Manager().Stats().Registrations; regs < uint64(want) {
		t.Fatalf("only %d re-registrations for %d workers", regs, want)
	}
}

// TestScenarioFrontEndCrashRestart: kill a front end — its process
// peer (the manager) restarts it and requests succeed again.
func TestScenarioFrontEndCrashRestart(t *testing.T) {
	h := newHarness(t, Config{Seed: seed})
	ctx := context.Background()

	killAt := time.Now()
	h.Execute(ctx, Schedule{Seed: seed, Events: []Event{{Kind: KillFrontEnd, Slot: 0}}})
	waitFor(t, "front end restarted by process peer", func() bool {
		fes := h.Sys.FrontEnds()
		return len(fes) == 1 && fes[0].Running()
	})
	h.Note("frontend-restart", time.Since(killAt).String())

	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := h.Sys.Request(rctx, "http://chaos.example/fe.bin", "u"); err != nil {
		t.Fatalf("request after front-end restart: %v", err)
	}
	if h.Sys.Manager().Stats().FERestarts == 0 {
		t.Fatal("manager did not record the process-peer restart")
	}
}

// TestScenarioCachePartitionFallback: partition the cache group away
// from the rest of the SAN — front ends must fall back to origin
// fetches (the cache is BASE, never a correctness dependency) and
// re-absorb the cache after heal.
func TestScenarioCachePartitionFallback(t *testing.T) {
	h := newHarness(t, Config{Seed: seed})
	ctx := context.Background()
	url := "http://chaos.example/hot.sgif"

	req := func() string {
		t.Helper()
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		resp, err := h.Sys.Request(rctx, url, "u")
		if err != nil {
			t.Fatalf("request: %v", err)
		}
		return resp.Source
	}

	req() // populate the cache
	waitFor(t, "cache hit", func() bool {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		resp, err := h.Sys.Request(rctx, url, "u")
		cancel()
		return err == nil && resp.Source == "cache-distilled"
	})

	h.Sys.Net.Partition(h.CachePartitionGroups())
	if src := req(); strings.HasPrefix(src, "cache-") {
		t.Fatalf("served %q from an unreachable cache", src)
	}

	h.Sys.Net.Heal()
	waitFor(t, "cache re-absorbed after heal", func() bool {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		resp, err := h.Sys.Request(rctx, url, "u")
		cancel()
		return err == nil && resp.Source == "cache-distilled"
	})
}

// TestScenarioCacheCrashLoop (ROADMAP cache-node crash-loop): kill a
// cache service repeatedly. Every cycle the manager's cache
// process-peer duty must notice the heartbeat silence and respawn the
// partition; requests issued during the outage fall back to origin
// fetches (BASE — never an error), and after each revival the cache
// is re-absorbed (the same URL serves from cache again).
func TestScenarioCacheCrashLoop(t *testing.T) {
	h := newHarness(t, Config{Seed: seed, CacheSuperviseTTL: 80 * time.Millisecond})
	ctx := context.Background()
	url := "http://chaos.example/crashloop.sgif"

	req := func() string {
		t.Helper()
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		resp, err := h.Sys.Request(rctx, url, "u")
		if err != nil {
			t.Fatalf("request failed during cache outage: %v", err)
		}
		return resp.Source
	}
	waitHit := func(phase string) {
		waitFor(t, "cache hit "+phase, func() bool {
			rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			resp, err := h.Sys.Request(rctx, url, "u")
			return err == nil && resp.Source == "cache-distilled"
		})
	}

	req() // distill once and populate the cache
	waitHit("initially")

	const cycles = 3
	for cycle := 0; cycle < cycles; cycle++ {
		restartsBefore := h.Sys.Manager().Stats().CacheRestarts
		h.Execute(ctx, Schedule{Seed: seed, Events: []Event{
			{Kind: KillCache, Slot: 0},
			{Kind: KillCache, Slot: 1},
		}})
		// Fallback: with every partition dead, requests still succeed
		// (served from origin + distillation, not from the cache).
		if src := req(); strings.HasPrefix(src, "cache-") {
			t.Fatalf("cycle %d: served %q from a dead cache", cycle, src)
		}
		// Reabsorption: the manager restarts the partitions, and the
		// distilled object lands back in cache on the next request.
		waitFor(t, fmt.Sprintf("cache respawn (cycle %d)", cycle), func() bool {
			return h.Sys.Manager().Stats().CacheRestarts >= restartsBefore+2
		})
		waitHit(fmt.Sprintf("after cycle %d", cycle))
	}
	if got := h.Sys.Manager().Stats().CacheRestarts; got < 2*cycles {
		t.Fatalf("manager recorded %d cache restarts over %d cycles", got, cycles)
	}
}

// TestScenarioWorkerHangDrains: a hung worker (gray failure — alive
// on the SAN, completing nothing) must not fail requests: dispatch
// timeouts fail over to the survivor, and the queue drains once the
// hang lifts.
func TestScenarioWorkerHangDrains(t *testing.T) {
	h := newHarness(t, Config{Seed: seed, CallTimeout: 100 * time.Millisecond})
	ctx := context.Background()

	victim := h.pickWorker(0)
	ws := h.Sys.WorkerStub(victim)
	if ws == nil {
		t.Fatalf("no stub for %s", victim)
	}
	h.Execute(ctx, Schedule{Seed: seed, Events: []Event{
		{Kind: HangWorker, Slot: 0, Dur: 400 * time.Millisecond},
	}})

	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(ctx, 8*time.Second)
			defer cancel()
			_, errs[i] = h.Sys.Request(rctx, fmt.Sprintf("http://chaos.example/h%d.bin", i), "u")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed during worker hang: %v", i, err)
		}
	}
	waitFor(t, "hung worker's queue to drain after resume", func() bool {
		return ws.QueueLen() == 0
	})
}

// TestScenarioMonitorSeesComponentDeath drives the monitor's
// silent-component alert path from an actual process death rather
// than a synthetic silence (the gap the unit tests leave).
func TestScenarioMonitorSeesComponentDeath(t *testing.T) {
	h := newHarness(t, Config{Seed: seed})
	ctx := context.Background()

	victim := h.pickWorker(0)
	// The monitor must have seen the victim alive first.
	waitFor(t, "monitor sees "+victim, func() bool {
		for _, st := range h.Sys.Mon.Snapshot() {
			if st.Component == victim {
				return true
			}
		}
		return false
	})

	h.Execute(ctx, Schedule{Seed: seed, Events: []Event{{Kind: KillWorker, Slot: 0}}})
	waitFor(t, "silence alert for dead component", func() bool {
		for _, a := range h.Sys.Mon.Alerts() {
			if a.Component == victim && strings.Contains(a.Message, "no reports") {
				return true
			}
		}
		return false
	})
	// The death shows up on the unified timeline too: the injected
	// fault, the process exit, and the monitor alert, in order.
	tl := h.Timeline()
	if len(tl.Filter("fault")) == 0 || len(tl.Filter("exit")) == 0 || len(tl.Filter("alert")) == 0 {
		t.Fatalf("timeline missing fault/exit/alert entries:\n%s", tl)
	}
}

// TestScenarioHotUpgradeDisableEnable exercises the monitor's
// disable/re-enable-after-upgrade path against a live worker: the
// disabled worker deregisters (no respawn — the departure is
// voluntary), the system keeps serving, and enabling brings it back.
func TestScenarioHotUpgradeDisableEnable(t *testing.T) {
	h := newHarness(t, Config{Seed: seed})
	ctx := context.Background()

	victim := h.pickWorker(0)
	ws := h.Sys.WorkerStub(victim)
	if ws == nil {
		t.Fatalf("no stub for %s", victim)
	}
	addr := ws.Addr()
	spawnsBefore := h.Sys.Manager().Stats().Spawns

	if err := h.Sys.Mon.Disable(addr); err != nil {
		t.Fatal(err)
	}
	if d := h.Sys.Mon.Disabled(); len(d) != 1 || d[0] != addr {
		t.Fatalf("Disabled() = %v, want [%v]", d, addr)
	}
	waitFor(t, "worker deregistered for upgrade", func() bool {
		return h.Sys.Manager().Stats().Workers == 1
	})

	// Still serving through the remaining worker.
	for i := 0; i < 5; i++ {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_, err := h.Sys.Request(rctx, fmt.Sprintf("http://chaos.example/u%d.bin", i), "u")
		cancel()
		if err != nil {
			t.Fatalf("request %d failed during hot upgrade: %v", i, err)
		}
	}
	// Voluntary departure must not trigger a replacement spawn.
	if s := h.Sys.Manager().Stats().Spawns; s != spawnsBefore {
		t.Fatalf("spawned %d replacements for a disabled worker", s-spawnsBefore)
	}

	if err := h.Sys.Mon.Enable(addr); err != nil {
		t.Fatal(err)
	}
	if d := h.Sys.Mon.Disabled(); len(d) != 0 {
		t.Fatalf("Disabled() = %v after enable", d)
	}
	waitFor(t, "worker re-registered after upgrade", func() bool {
		return h.Sys.Manager().Stats().Workers == 2
	})
}

// TestSoakKillAnything is the §4.3 closing experiment: kill something
// every T seconds under background load, then verify the system
// returns to steady-state capacity within 10% of the pre-fault
// baseline. Skipped with -short.
func TestSoakKillAnything(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	h := newHarness(t, Config{Seed: 7, FrontEnds: 2, DedicatedNodes: 12})
	ctx := context.Background()

	baseline := h.BaselineCapacity(ctx, 40)
	if baseline < 0.95 {
		t.Fatalf("pre-fault capacity only %.2f", baseline)
	}

	sched := RandomSoak(7, SoakOptions{Kills: 5, Every: 400 * time.Millisecond})
	h.StartLoad(60, 400, 3*time.Second)
	injected := h.Execute(ctx, sched)
	if injected < 3 {
		t.Fatalf("only %d kill cycles injected, want >= 3", injected)
	}
	load := h.StopLoad()

	if !h.AwaitSteady(15 * time.Second) {
		t.Fatalf("system did not return to steady state after the soak:\n%s", h.Timeline())
	}
	after, ok := h.RecoveredWithin(ctx, 40, 0.10)
	if !ok {
		t.Fatalf("post-soak capacity %.2f vs baseline %.2f (want within 10%%):\n%s",
			after, baseline, h.Timeline())
	}
	if load.Issued == 0 {
		t.Fatal("load generator issued nothing")
	}
	t.Logf("soak: %d faults, load %+v (success %.2f), capacity %.2f -> %.2f",
		injected, load, load.SuccessRate(), baseline, after)
}

// TestScenarioPrimaryManagerKilledMidRespawn (ROADMAP): with three
// manager replicas, crash a worker and then kill the primary manager
// BEFORE the worker's TTL fires — the respawn duty is in flight with
// nobody having acted on it. A standby must win the election within
// about one beacon interval past the timeout, inherit the duty from
// its mirrored soft state, and execute it: zero lost restart duties,
// no recovery protocol. The fault timeline must be identical across
// two executions of the same schedule.
func TestScenarioPrimaryManagerKilledMidRespawn(t *testing.T) {
	// The primary dies 30 ms in: after the worker crash (0 ms) but
	// before its 50 ms TTL (5 beacons) can fire on the old regime.
	sched := Schedule{Seed: seed, Events: []Event{
		{Kind: KillWorker, Slot: 0},
		{At: 30 * time.Millisecond, Kind: KillManager},
	}}

	run := func(t *testing.T) []string {
		h := newHarness(t, Config{Seed: seed, Managers: 3})
		ctx := context.Background()

		oldPrimary := h.Sys.PrimaryManager()
		oldEpoch := oldPrimary.Epoch()
		if reps := h.Sys.ManagerReplicas(); len(reps) != 3 {
			t.Fatalf("%d manager replicas, want 3", len(reps))
		}
		killAt := time.Now()
		h.Execute(ctx, sched)

		// A standby takes over: new primary instance, higher epoch.
		waitFor(t, "standby takeover", func() bool {
			m := h.Sys.PrimaryManager()
			return m != nil && m != oldPrimary && m.IsPrimary() && m.Epoch() > oldEpoch
		})
		elected := time.Since(killAt) - 30*time.Millisecond
		h.Note("manager-failover", elected.String())
		newPrimary := h.Sys.PrimaryManager()
		if st := newPrimary.Stats(); st.Takeovers != 1 {
			t.Fatalf("new primary stats %+v, want exactly one takeover", st)
		}

		// Requests flow throughout: dispatch runs off cached beacons
		// during the election gap (§3.1.8 stale-data tolerance).
		for i := 0; i < 5; i++ {
			rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			_, err := h.Sys.Request(rctx, fmt.Sprintf("http://chaos.example/fo%d.bin", i), "u")
			cancel()
			if err != nil {
				t.Fatalf("request %d failed across manager failover: %v", i, err)
			}
		}

		// The in-flight respawn duty lands on the NEW primary: it
		// expires the dead worker from its mirrored inventory and spawns
		// the replacement the old regime never got to.
		waitFor(t, "inherited respawn duty", func() bool {
			return newPrimary.Stats().Spawns >= 1
		})
		if !h.AwaitSteady(10 * time.Second) {
			t.Fatalf("system did not return to full strength under the new primary:\n%s", h.Timeline())
		}
		return h.FaultTimeline()
	}

	first := run(t)
	second := run(t)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("fault timelines diverged across identical runs:\n%v\n%v", first, second)
	}
}

// TestScenarioBothFrontEndsDieInOneFETTLWindow (ROADMAP): kill both
// front ends 10 ms apart — inside a single 60 ms FETTL window, so
// their heartbeat silences overlap and the manager's process-peer
// sweep sees two dead peers at once. Both must be restarted (zero
// lost restart duties) and service must fully recover. Same
// run-twice determinism contract as every scripted schedule.
func TestScenarioBothFrontEndsDieInOneFETTLWindow(t *testing.T) {
	sched := Schedule{Seed: seed, Events: []Event{
		{Kind: KillFrontEnd, Slot: 0},
		{At: 10 * time.Millisecond, Kind: KillFrontEnd, Slot: 1},
	}}

	run := func(t *testing.T) []string {
		h := newHarness(t, Config{Seed: seed, FrontEnds: 2})
		ctx := context.Background()

		killAt := time.Now()
		h.Execute(ctx, sched)

		waitFor(t, "both front ends restarted", func() bool {
			fes := h.Sys.FrontEnds()
			if len(fes) != 2 {
				return false
			}
			for _, fe := range fes {
				if !fe.Running() {
					return false
				}
			}
			return true
		})
		h.Note("frontend-double-restart", time.Since(killAt).String())
		if got := h.Sys.Manager().Stats().FERestarts; got < 2 {
			t.Fatalf("manager recorded %d front-end restarts, want 2", got)
		}

		// Full service recovery: restarted front ends re-anchor on
		// beacons and serve.
		if !h.AwaitSteady(10 * time.Second) {
			t.Fatalf("front ends did not return to steady state:\n%s", h.Timeline())
		}
		for i := 0; i < 5; i++ {
			rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			_, err := h.Sys.Request(rctx, fmt.Sprintf("http://chaos.example/fe2x%d.bin", i), "u")
			cancel()
			if err != nil {
				t.Fatalf("request %d failed after double front-end restart: %v", i, err)
			}
		}
		return h.FaultTimeline()
	}

	first := run(t)
	second := run(t)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("fault timelines diverged across identical runs:\n%v\n%v", first, second)
	}
}
