package chaos

import (
	"fmt"
	"math/rand"
	"time"
)

// ActionKind enumerates the faults a schedule can inject.
type ActionKind string

// The fault vocabulary. Process kills are the paper's §4.3 scenarios;
// the network and gray-failure actions extend them to the failure
// modes timeouts must catch without a crash to observe.
const (
	// KillWorker crashes a live worker (no deregistration — the
	// manager must infer the loss by timeout, §3.1.3).
	KillWorker ActionKind = "kill-worker"
	// KillManager crashes the acting primary manager replica. With
	// replicas configured a standby wins the election and beacons the
	// next epoch; single-manager systems respawn it, and workers
	// re-register on the new regime's beacons either way.
	KillManager ActionKind = "kill-manager"
	// KillFrontEnd crashes a front end; the manager's process-peer
	// duty restarts it.
	KillFrontEnd ActionKind = "kill-frontend"
	// KillCache crashes a cache service (no goodbye — heartbeat
	// silence is the only evidence); the manager's cache process-peer
	// duty restarts it empty, and front ends fall back to origin
	// fetches in the meantime.
	KillCache ActionKind = "kill-cache"
	// PartitionCaches splits every cache node away from the rest of
	// the SAN for Dur; front ends must fall back to origin fetches
	// and re-absorb the cache on heal.
	PartitionCaches ActionKind = "partition-caches"
	// LossBurst raises point-to-point/multicast loss to P2P/Mcast
	// for Dur (the §4.6 saturation analogue).
	LossBurst ActionKind = "loss-burst"
	// HangWorker freezes a worker's task loop for Dur: it stays
	// registered and keeps reporting (growing) load but completes
	// nothing.
	HangWorker ActionKind = "hang-worker"
	// SlowWorker adds Delay to every task on one worker for Dur.
	SlowWorker ActionKind = "slow-worker"
	// SeverBridge cuts every TCP peering of the system's transport
	// bridge for Dur — the multi-process analogue of PartitionCaches'
	// in-SAN PartitionFor. Dur <= 0 severs without scheduling a heal;
	// the bridge redials when the window (if any) passes. No-op on
	// single-process systems (recorded as "no-bridge").
	SeverBridge ActionKind = "sever-bridge"
	// Heal removes all partitions immediately.
	Heal ActionKind = "heal"
)

// Event is one scheduled fault. Targets are chosen by Slot — a
// deterministic index into the sorted live set at execution time —
// rather than by concrete process id, so a schedule is meaningful
// against any system and reproducible across runs.
type Event struct {
	// At is the offset from schedule start.
	At time.Duration
	// Kind selects the action.
	Kind ActionKind
	// Slot picks the target among eligible candidates (modulo the
	// live count). Ignored by non-targeted actions.
	Slot int
	// Dur bounds timed impairments (partitions, bursts, hangs,
	// slowdowns).
	Dur time.Duration
	// P2P and Mcast are the LossBurst probabilities.
	P2P, Mcast float64
	// Delay is the SlowWorker per-task penalty.
	Delay time.Duration
}

// String renders the deterministic identity of the event — exactly
// the fields two runs of the same seed must agree on.
func (e Event) String() string {
	return fmt.Sprintf("%s@%s slot=%d dur=%s p2p=%.2f mcast=%.2f delay=%s",
		e.Kind, e.At, e.Slot, e.Dur, e.P2P, e.Mcast, e.Delay)
}

// Schedule is a seeded, ordered fault script.
type Schedule struct {
	Seed   int64
	Events []Event
}

// SoakOptions tunes RandomSoak.
type SoakOptions struct {
	// Kills is the number of fault events to generate (default 3).
	Kills int
	// Every is the spacing between events (default 1s).
	Every time.Duration
	// Kinds is the action pool to draw from (default: the three
	// §4.3 process kills).
	Kinds []ActionKind
	// ImpairDur bounds generated timed impairments (default Every/2).
	ImpairDur time.Duration
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Kills <= 0 {
		o.Kills = 3
	}
	if o.Every <= 0 {
		o.Every = time.Second
	}
	if len(o.Kinds) == 0 {
		o.Kinds = []ActionKind{KillWorker, KillManager, KillFrontEnd}
	}
	if o.ImpairDur <= 0 {
		o.ImpairDur = o.Every / 2
	}
	return o
}

// RandomSoak builds the "kill anything every T seconds" schedule
// (§4.3's closing experiment) as a pure function of the seed: the
// same seed always yields the identical event list.
func RandomSoak(seed int64, opts SoakOptions) Schedule {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}
	for i := 0; i < opts.Kills; i++ {
		kind := opts.Kinds[rng.Intn(len(opts.Kinds))]
		ev := Event{
			At:   time.Duration(i+1) * opts.Every,
			Kind: kind,
			Slot: rng.Intn(1 << 16),
		}
		switch kind {
		case PartitionCaches, HangWorker:
			ev.Dur = opts.ImpairDur
		case SlowWorker:
			ev.Dur = opts.ImpairDur
			ev.Delay = time.Duration(1+rng.Intn(20)) * time.Millisecond
		case LossBurst:
			ev.Dur = opts.ImpairDur
			ev.P2P = 0.2 + 0.6*rng.Float64()
			ev.Mcast = 0.2 + 0.6*rng.Float64()
		}
		s.Events = append(s.Events, ev)
	}
	return s
}
