package chaos

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/manager"
	"repro/internal/tacc"
	"repro/internal/transport"
)

// startBridgedPair boots a two-OS-process-shaped cluster inside the
// test binary: process B hosts the manager, workers, and caches;
// process A hosts the front ends and monitor. Loopback TCP is all
// they share — the same split cmd/node runs.
func startBridgedPair(t *testing.T, seedA, seedB int64) (sysA, sysB *core.System) {
	t.Helper()
	reg := tacc.NewRegistry()
	reg.Register(EchoClass, func() tacc.Worker {
		return tacc.WorkerFunc{Name: EchoClass, Fn: func(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
			return task.Input, nil
		}}
	})
	rules := func(url, mime string, profile map[string]string) tacc.Pipeline {
		return tacc.Pipeline{{Class: EchoClass}}
	}
	workers := map[string]int{EchoClass: 2}
	policy := manager.Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1}
	const tick = 10 * time.Millisecond

	sysB, err := core.Start(core.Config{
		Seed:           seedB,
		Roles:          core.Roles{Manager: true, Workers: true, Caches: true},
		NodePrefix:     "b-",
		Transport:      core.TransportConfig{Listen: "tcp:127.0.0.1:0"},
		DedicatedNodes: 6,
		CacheParts:     2,
		Workers:        workers,
		Registry:       reg,
		Rules:          rules,
		ProfileDir:     t.TempDir(),
		BeaconInterval: tick,
		ReportInterval: tick,
		CallTimeout:    time.Second,
		MinDistillSize: 1,
		Policy:         policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sysB.Stop)

	sysA, err = core.Start(core.Config{
		Seed:           seedA,
		Roles:          core.Roles{FrontEnds: true, Monitor: true},
		NodePrefix:     "a-",
		Transport:      core.TransportConfig{Listen: "tcp:127.0.0.1:0", Join: []string{sysB.Bridge.Advertise()}},
		DedicatedNodes: 4,
		FrontEnds:      1,
		RemoteCaches:   core.CacheAddrs("b-", 2, 6),
		Workers:        workers,
		Registry:       reg,
		Rules:          rules,
		ProfileDir:     t.TempDir(),
		BeaconInterval: tick,
		ReportInterval: tick,
		CallTimeout:    time.Second,
		MinDistillSize: 1,
		Policy:         policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sysA.Stop)

	if !sysA.Bridge.WaitPeers(1, 10*time.Second) {
		t.Fatal("bridges never met")
	}
	if !sysB.WaitReady(15*time.Second) || !sysA.WaitReady(15*time.Second) {
		t.Fatal("bridged pair not ready")
	}
	return sysA, sysB
}

// crossProcessRespawnTimeline runs the scripted cross-process fault
// scenario once and returns its event timeline: two kill cycles of
// process A's front end, each recovered by the manager in process B
// through A's supervisor. Only fe0's lifecycle belongs on the
// timeline; any other process exit in either system is cross-talk and
// recorded so the diff flags it.
func crossProcessRespawnTimeline(t *testing.T) []string {
	t.Helper()
	sysA, sysB := startBridgedPair(t, 1, 2)

	var mu sync.Mutex
	var events []string
	record := func(ev string) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	stopped := make(chan struct{})
	observe := func(side string, sys *core.System) {
		sys.Cluster.OnExit(func(info cluster.ExitInfo) {
			select {
			case <-stopped:
				return // teardown exits are not scenario events
			default:
			}
			if info.Proc == "fe0" {
				record("exit:" + side + "/" + info.Proc)
			} else if info.Proc != "sup" {
				// Anything else dying mid-scenario (spurious restarts,
				// double respawns) must show up in the diff.
				record("stray-exit:" + side + "/" + info.Proc)
			}
		})
	}
	observe("A", sysA)
	observe("B", sysB)

	waitFor(t, "cross-process supervisor hello", func() bool {
		_, ok := sysB.Manager().SupervisorFor("a-node0")
		return ok
	})

	for cycle := 1; cycle <= 2; cycle++ {
		record(fmt.Sprintf("kill:fe0#%d", cycle))
		if err := sysA.KillFrontEnd("fe0"); err != nil {
			t.Fatal(err)
		}
		waitFor(t, fmt.Sprintf("respawn cycle %d", cycle), func() bool {
			st := sysB.Manager().Stats()
			if int(st.FERestarts) < cycle || int(st.Delegated) < cycle {
				return false
			}
			fes := sysA.FrontEnds()
			return len(fes) > 0 && fes[0].Running()
		})
		record(fmt.Sprintf("restored:fe0#%d", cycle))
	}
	close(stopped)

	if st := sysA.Net.Stats(); st.WireErrors != 0 {
		t.Fatalf("process A: WireErrors=%d", st.WireErrors)
	}
	if st := sysB.Net.Stats(); st.WireErrors != 0 {
		t.Fatalf("process B: WireErrors=%d", st.WireErrors)
	}
	mu.Lock()
	defer mu.Unlock()
	return append([]string(nil), events...)
}

// TestCrossProcessSeverBridgeWindow drives the real-TCP partition the
// SeverBridge schedule action maps to: cut every peering for a window,
// verify the split is total (peers drop on both sides) yet bounded —
// the bridges re-meet on their own once the window passes and service
// resumes, with zero wire errors and the batcher's queued bytes never
// exceeding the backpressure bound.
func TestCrossProcessSeverBridgeWindow(t *testing.T) {
	sysA, sysB := startBridgedPair(t, 1, 2)
	ctx := context.Background()

	req := func(i int) error {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		_, err := sysA.Request(rctx, fmt.Sprintf("http://sever.example/s%d.bin", i), "u")
		return err
	}
	if err := req(0); err != nil {
		t.Fatalf("pre-sever request: %v", err)
	}

	const window = 400 * time.Millisecond
	severAt := time.Now()
	sysA.Bridge.SeverPeers(window)
	waitFor(t, "peers severed", func() bool {
		return sysA.Bridge.Stats().Peers == 0 && sysB.Bridge.Stats().Peers == 0
	})

	// The bridges must not re-meet inside the window, and must re-meet
	// on their own after it — SeverPeers heals like PartitionFor does.
	if sysA.Bridge.WaitPeers(1, time.Until(severAt.Add(window-50*time.Millisecond))) {
		t.Fatal("bridges re-met inside the severed window")
	}
	if !sysA.Bridge.WaitPeers(1, 10*time.Second) {
		t.Fatal("bridges never re-met after the severed window")
	}
	waitFor(t, "service resumed after heal", func() bool { return req(1) == nil })

	// Post-heal burst: concurrent cross-process traffic stays inside
	// the batcher byte bound (no unbounded growth behind any write).
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = req(100 + i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("post-heal request %d: %v", i, err)
		}
	}
	for side, sys := range map[string]*core.System{"A": sysA, "B": sysB} {
		if st := sys.Net.Stats(); st.WireErrors != 0 {
			t.Fatalf("process %s: WireErrors=%d", side, st.WireErrors)
		}
		bst := sys.Bridge.Stats()
		if bst.MaxQueued > transport.DefaultMaxBatchBytes {
			t.Fatalf("process %s: batcher staged %d bytes, past the %d bound",
				side, bst.MaxQueued, transport.DefaultMaxBatchBytes)
		}
	}
}

// TestCrossProcessRespawnTimelineDeterministic is the run-twice-and-
// diff contract extended across process boundaries: the scripted
// kill/respawn scenario yields the identical event timeline on two
// fresh bridged pairs built from the same seeds — same kills, same
// exits, same recoveries, and no stray process churn on either side.
func TestCrossProcessRespawnTimelineDeterministic(t *testing.T) {
	first := crossProcessRespawnTimeline(t)
	second := crossProcessRespawnTimeline(t)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cross-process respawn timelines diverged:\nrun 1: %v\nrun 2: %v", first, second)
	}
	want := []string{
		"kill:fe0#1", "exit:A/fe0", "restored:fe0#1",
		"kill:fe0#2", "exit:A/fe0", "restored:fe0#2",
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("timeline = %v, want %v", first, want)
	}
}
