package chaos

// Front-door scenarios: the edge must make FE replicas one service —
// a killed FE is ejected and readmitted with zero client-visible
// failures, and draining plus a rolling upgrade stay invisible from
// outside the cluster. These drive real HTTP through the edge
// listener rather than in-process System.Request calls.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/monitor"
)

// TestScenarioEdgeFEKillUnderLoad: SIGKILL one of two front ends with
// HTTP load flowing through the edge. The edge must eject the dead
// backend after consecutive failures, the manager's process-peer duty
// respawns the FE, and a half-open probe readmits it — with zero
// failed client requests end to end (first-attempt errors retry on
// the surviving replica under the retry budget). Same run-twice
// determinism contract as every scripted schedule.
func TestScenarioEdgeFEKillUnderLoad(t *testing.T) {
	if testing.Short() {
		// Load-driven and calibrated to the harness's 10ms beacon
		// cadence: under the race detector's scheduler lag the manager
		// spuriously restarts healthy FEs, which is the harness timing,
		// not the edge. The edge package's own tests run under -race.
		t.Skip("edge load scenario skipped in -short mode")
	}
	sched := Schedule{Seed: seed, Events: []Event{{Kind: KillFrontEnd, Slot: 0}}}

	run := func(t *testing.T) []string {
		h := newHarness(t, Config{Seed: seed, FrontEnds: 2, Edge: true})
		ctx := context.Background()
		eg := h.Sys.Edge()
		if eg == nil {
			t.Fatal("harness booted without an edge")
		}
		waitFor(t, "both front ends in the edge pool", func() bool {
			return eg.PoolStats().Healthy == 2
		})

		// High rate so several arrivals land on the dead backend inside
		// the manager's FE supervision window: the eject must come from
		// organic traffic, not a synthetic probe. The window is long
		// enough that traffic is still flowing to drive the readmission
		// probe even under the race detector's slowdown.
		if err := h.StartEdgeLoad(300, 200, 6*time.Second); err != nil {
			t.Fatal(err)
		}
		time.Sleep(500 * time.Millisecond) // accrue budget before the fault
		restartsBefore := h.Sys.Manager().Stats().FERestarts
		killAt := time.Now()
		h.Execute(ctx, sched)

		waitFor(t, "edge ejects the dead backend", func() bool {
			return eg.PoolStats().Ejects >= 1
		})
		h.Note("edge-eject", time.Since(killAt).String())
		waitFor(t, "manager respawns the front end", func() bool {
			return h.Sys.Manager().Stats().FERestarts > restartsBefore
		})
		waitFor(t, "probe readmits the respawned backend", func() bool {
			st := eg.PoolStats()
			return st.Readmits >= 1 && st.Healthy == 2
		})
		h.Note("edge-readmit", time.Since(killAt).String())

		load := h.StopLoad()
		if load.Issued == 0 {
			t.Fatal("load generator issued nothing")
		}
		if load.Failed != 0 {
			t.Fatalf("%d client-visible failures across FE kill: %+v\n%s",
				load.Failed, load, h.Timeline())
		}
		if load.OK+load.Degraded == 0 {
			t.Fatalf("nothing served through the edge: %+v", load)
		}
		if !h.AwaitSteady(10 * time.Second) {
			t.Fatalf("system did not return to steady state:\n%s", h.Timeline())
		}
		return h.FaultTimeline()
	}

	first := run(t)
	second := run(t)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("fault timelines diverged across identical runs:\n%v\n%v", first, second)
	}
}

// TestScenarioEdgeDrainUpgradeZeroDowntime: with load flowing through
// the edge, drain each front end in turn (the hot-upgrade handshake:
// monitor disable -> FE heartbeats Draining -> edge stops routing
// there) and then roll an UpgradeWave across the worker class. The
// client outside the cluster must see zero failures throughout.
func TestScenarioEdgeDrainUpgradeZeroDowntime(t *testing.T) {
	if testing.Short() {
		t.Skip("edge load scenario skipped in -short mode")
	}
	h := newHarness(t, Config{Seed: seed, FrontEnds: 2, Edge: true})
	ctx := context.Background()
	eg := h.Sys.Edge()
	if eg == nil {
		t.Fatal("harness booted without an edge")
	}
	waitFor(t, "both front ends in the edge pool", func() bool {
		return eg.PoolStats().Healthy == 2
	})

	if err := h.StartEdgeLoad(120, 200, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Roll the front ends one at a time, like an FE binary upgrade.
	for _, fe := range h.Sys.FrontEnds() {
		addr := fe.Addr()
		if err := h.Sys.Mon.Disable(addr); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "edge sees "+addr.String()+" draining", func() bool {
			st := eg.PoolStats()
			return st.Draining >= 1 && st.Healthy == 1
		})
		time.Sleep(150 * time.Millisecond) // serve through the survivor
		if err := h.Sys.Mon.Enable(addr); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "edge readmits "+addr.String()+" after enable", func() bool {
			st := eg.PoolStats()
			return st.Draining == 0 && st.Healthy == 2
		})
	}
	h.Note("edge-fe-roll", "both front ends drained and re-enabled")

	// Hot-upgrade the worker class while requests keep arriving.
	rep, err := h.Sys.Mon.UpgradeWave(ctx, EchoClass, monitor.WaveOptions{})
	if err != nil {
		t.Fatalf("upgrade wave: %v", err)
	}
	if len(rep.Failed) != 0 || len(rep.Upgraded) == 0 {
		t.Fatalf("upgrade wave report: %+v", rep)
	}
	h.Note("edge-upgrade-wave", fmt.Sprintf("upgraded=%d", len(rep.Upgraded)))

	load := h.StopLoad()
	if load.Issued == 0 {
		t.Fatal("load generator issued nothing")
	}
	if load.Failed != 0 {
		t.Fatalf("%d client-visible failures across drain+upgrade: %+v\n%s",
			load.Failed, load, h.Timeline())
	}
	if st := eg.PoolStats(); st.Ejects != 0 {
		t.Fatalf("draining should never look like failure to the edge: %+v", st)
	}
}
