package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frontend"
	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/trace"
)

// LoadStats summarizes the background load generator's view of the
// run — the request-outcome half of the chaos timeline.
type LoadStats struct {
	Issued   uint64
	OK       uint64
	Degraded uint64 // served, but via a fallback source or stale entry
	Shed     uint64 // refused fast with the typed overload reply
	Failed   uint64 // any other error (timeouts, exhausted dispatch)

	// End-to-end latency percentiles over every completed request
	// (sheds included — a fast refusal is part of the latency story),
	// measured from issue to reply. Zero until requests complete.
	P50, P99, P999, Max time.Duration
}

// SuccessRate returns (OK+Degraded)/Issued — the paper's availability
// measure: an approximate answer delivered quickly still counts
// (§3.1.8). Sheds and failures both count against it.
func (s LoadStats) SuccessRate() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.OK+s.Degraded) / float64(s.Issued)
}

// Goodput returns completed (OK+Degraded) requests per second over
// dur — the saturation soak's before/after comparison measure.
func (s LoadStats) Goodput(dur time.Duration) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(s.OK+s.Degraded) / dur.Seconds()
}

// loadGen replays a seeded arrival process against the system while
// faults land. Arrival offsets come from the paper's bursty model
// (trace.ArrivalModel) compressed onto the test clock; object choice
// is Zipf, so the cache is doing real work when a fault hits it.
type loadGen struct {
	cancel context.CancelFunc
	wg     sync.WaitGroup

	issued, ok, degraded, shed, failed atomic.Uint64

	latMu sync.Mutex
	lats  []time.Duration // issue-to-reply, one per completed request
}

// StartLoad launches the background generator: requests arrive for
// dur (wall-clock) at roughly rate req/s with the Figure 6 burst
// structure, drawn from a universe of objects objects. It is seeded
// by the harness seed: the same seed issues the same request
// sequence at the same offsets. Poll progress with LoadStats; stop
// and collect with StopLoad.
func (h *Harness) StartLoad(rate float64, objects int, dur time.Duration) {
	if h.load != nil {
		h.load.stop()
	}
	lg := &loadGen{}
	ctx, cancel := context.WithCancel(context.Background())
	lg.cancel = cancel
	h.load = lg

	rng := rand.New(rand.NewSource(h.cfg.Seed ^ 0x10ad))
	// One virtual hour of the midday arrival process, rescaled so
	// its mean matches the requested rate over dur: burstiness at
	// every scale survives the compression.
	model := trace.DefaultArrivals(h.cfg.Seed)
	virtual := model.Generate(rng, 12*time.Hour, 13*time.Hour)
	scale := float64(dur) / float64(time.Hour)
	wantN := int(rate * dur.Seconds())
	stride := 1
	if wantN > 0 && len(virtual) > wantN {
		stride = len(virtual) / wantN
	}
	zipf := sim.Zipf(rng, 1.1, objects)

	lg.wg.Add(1)
	go func() {
		defer lg.wg.Done()
		start := time.Now()
		for i := 0; i < len(virtual); i += stride {
			at := time.Duration(float64(virtual[i]-12*time.Hour) * scale)
			if wait := at - time.Since(start); wait > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(wait):
				}
			}
			if ctx.Err() != nil {
				return
			}
			obj := zipf()
			url := trace.ObjectURL(obj, media.MIMESGIF)
			lg.issued.Add(1)
			lg.wg.Add(1)
			go func() {
				defer lg.wg.Done()
				rctx, rcancel := context.WithTimeout(ctx, 5*time.Second)
				defer rcancel()
				t0 := time.Now()
				resp, err := h.Sys.Request(rctx, url, "loadgen")
				lg.observe(time.Since(t0))
				switch {
				case errors.Is(err, frontend.ErrOverloaded):
					lg.shed.Add(1)
				case err != nil:
					lg.failed.Add(1)
				case resp.Degraded || isFallback(resp.Source):
					lg.degraded.Add(1)
				default:
					lg.ok.Add(1)
				}
			}()
		}
	}()
}

// LoadStats returns the generator's counters so far (zero value if no
// generator was started).
func (h *Harness) LoadStats() LoadStats {
	if h.load == nil {
		return LoadStats{}
	}
	return h.load.stats()
}

func isFallback(source string) bool {
	return source == "fallback-original" || source == "fallback-stale"
}

// StopLoad halts the generator and waits for in-flight requests, then
// returns final stats and records them on the timeline.
func (h *Harness) StopLoad() LoadStats {
	if h.load == nil {
		return LoadStats{}
	}
	h.load.stop()
	st := h.load.stats()
	h.rec.record("note", "load", fmt.Sprintf("issued=%d ok=%d degraded=%d shed=%d failed=%d p99=%s",
		st.Issued, st.OK, st.Degraded, st.Shed, st.Failed, st.P99))
	h.load = nil
	return st
}

func (lg *loadGen) stop() {
	lg.cancel()
	lg.wg.Wait()
}

func (lg *loadGen) observe(d time.Duration) {
	lg.latMu.Lock()
	lg.lats = append(lg.lats, d)
	lg.latMu.Unlock()
}

func (lg *loadGen) stats() LoadStats {
	st := LoadStats{
		Issued:   lg.issued.Load(),
		OK:       lg.ok.Load(),
		Degraded: lg.degraded.Load(),
		Shed:     lg.shed.Load(),
		Failed:   lg.failed.Load(),
	}
	lg.latMu.Lock()
	lats := append([]time.Duration(nil), lg.lats...)
	lg.latMu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.P50 = percentile(lats, 0.50)
		st.P99 = percentile(lats, 0.99)
		st.P999 = percentile(lats, 0.999)
		st.Max = lats[len(lats)-1]
	}
	return st
}

// percentile reads quantile q from an ascending-sorted sample using
// the nearest-rank method.
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
