package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/trace"
)

// LoadStats summarizes the background load generator's view of the
// run — the request-outcome half of the chaos timeline.
type LoadStats struct {
	Issued   uint64
	OK       uint64
	Degraded uint64 // served, but via a fallback source
	Failed   uint64
}

// SuccessRate returns (OK+Degraded)/Issued — the paper's availability
// measure: an approximate answer delivered quickly still counts
// (§3.1.8).
func (s LoadStats) SuccessRate() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.OK+s.Degraded) / float64(s.Issued)
}

// loadGen replays a seeded arrival process against the system while
// faults land. Arrival offsets come from the paper's bursty model
// (trace.ArrivalModel) compressed onto the test clock; object choice
// is Zipf, so the cache is doing real work when a fault hits it.
type loadGen struct {
	cancel context.CancelFunc
	wg     sync.WaitGroup

	issued, ok, degraded, failed atomic.Uint64
}

// StartLoad launches the background generator: requests arrive for
// dur (wall-clock) at roughly rate req/s with the Figure 6 burst
// structure, drawn from a universe of objects objects. It is seeded
// by the harness seed: the same seed issues the same request
// sequence at the same offsets. Poll progress with LoadStats; stop
// and collect with StopLoad.
func (h *Harness) StartLoad(rate float64, objects int, dur time.Duration) {
	if h.load != nil {
		h.load.stop()
	}
	lg := &loadGen{}
	ctx, cancel := context.WithCancel(context.Background())
	lg.cancel = cancel
	h.load = lg

	rng := rand.New(rand.NewSource(h.cfg.Seed ^ 0x10ad))
	// One virtual hour of the midday arrival process, rescaled so
	// its mean matches the requested rate over dur: burstiness at
	// every scale survives the compression.
	model := trace.DefaultArrivals(h.cfg.Seed)
	virtual := model.Generate(rng, 12*time.Hour, 13*time.Hour)
	scale := float64(dur) / float64(time.Hour)
	wantN := int(rate * dur.Seconds())
	stride := 1
	if wantN > 0 && len(virtual) > wantN {
		stride = len(virtual) / wantN
	}
	zipf := sim.Zipf(rng, 1.1, objects)

	lg.wg.Add(1)
	go func() {
		defer lg.wg.Done()
		start := time.Now()
		for i := 0; i < len(virtual); i += stride {
			at := time.Duration(float64(virtual[i]-12*time.Hour) * scale)
			if wait := at - time.Since(start); wait > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(wait):
				}
			}
			if ctx.Err() != nil {
				return
			}
			obj := zipf()
			url := trace.ObjectURL(obj, media.MIMESGIF)
			lg.issued.Add(1)
			lg.wg.Add(1)
			go func() {
				defer lg.wg.Done()
				rctx, rcancel := context.WithTimeout(ctx, 5*time.Second)
				defer rcancel()
				resp, err := h.Sys.Request(rctx, url, "loadgen")
				switch {
				case err != nil:
					lg.failed.Add(1)
				case isFallback(resp.Source):
					lg.degraded.Add(1)
				default:
					lg.ok.Add(1)
				}
			}()
		}
	}()
}

// LoadStats returns the generator's counters so far (zero value if no
// generator was started).
func (h *Harness) LoadStats() LoadStats {
	if h.load == nil {
		return LoadStats{}
	}
	return h.load.stats()
}

func isFallback(source string) bool {
	return source == "fallback-original" || source == "fallback-stale"
}

// StopLoad halts the generator and waits for in-flight requests, then
// returns final stats and records them on the timeline.
func (h *Harness) StopLoad() LoadStats {
	if h.load == nil {
		return LoadStats{}
	}
	h.load.stop()
	st := h.load.stats()
	h.rec.record("note", "load", fmt.Sprintf("issued=%d ok=%d degraded=%d failed=%d",
		st.Issued, st.OK, st.Degraded, st.Failed))
	h.load = nil
	return st
}

func (lg *loadGen) stop() {
	lg.cancel()
	lg.wg.Wait()
}

func (lg *loadGen) stats() LoadStats {
	return LoadStats{
		Issued:   lg.issued.Load(),
		OK:       lg.ok.Load(),
		Degraded: lg.degraded.Load(),
		Failed:   lg.failed.Load(),
	}
}
