package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	neturl "net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/edge"
	"repro/internal/frontend"
	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/trace"
)

// LoadStats summarizes the background load generator's view of the
// run — the request-outcome half of the chaos timeline.
type LoadStats struct {
	Issued   uint64
	OK       uint64
	Degraded uint64 // served, but via a fallback source or stale entry
	Shed     uint64 // refused fast with the typed overload reply
	Failed   uint64 // any other error (timeouts, exhausted dispatch)

	// End-to-end latency percentiles over every completed request
	// (sheds included — a fast refusal is part of the latency story),
	// measured from issue to reply. Zero until requests complete.
	P50, P99, P999, Max time.Duration
}

// SuccessRate returns (OK+Degraded)/Issued — the paper's availability
// measure: an approximate answer delivered quickly still counts
// (§3.1.8). Sheds and failures both count against it.
func (s LoadStats) SuccessRate() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.OK+s.Degraded) / float64(s.Issued)
}

// Goodput returns completed (OK+Degraded) requests per second over
// dur — the saturation soak's before/after comparison measure.
func (s LoadStats) Goodput(dur time.Duration) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(s.OK+s.Degraded) / dur.Seconds()
}

// outcome classifies one completed load-generator request.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeDegraded
	outcomeShed
	outcomeFailed
)

// loadGen replays a seeded arrival process against the system while
// faults land. Arrival offsets come from the paper's bursty model
// (trace.ArrivalModel) compressed onto the test clock; object choice
// is Zipf, so the cache is doing real work when a fault hits it.
type loadGen struct {
	cancel context.CancelFunc
	wg     sync.WaitGroup

	issued, ok, degraded, shed, failed atomic.Uint64

	latMu sync.Mutex
	lats  []time.Duration // issue-to-reply, one per completed request
}

// StartLoad launches the background generator: requests arrive for
// dur (wall-clock) at roughly rate req/s with the Figure 6 burst
// structure, drawn from a universe of objects objects. It is seeded
// by the harness seed: the same seed issues the same request
// sequence at the same offsets. Poll progress with LoadStats; stop
// and collect with StopLoad.
func (h *Harness) StartLoad(rate float64, objects int, dur time.Duration) {
	h.startLoad(rate, objects, dur, func(ctx context.Context, url string) outcome {
		resp, err := h.Sys.Request(ctx, url, "loadgen")
		switch {
		case errors.Is(err, frontend.ErrOverloaded):
			return outcomeShed
		case err != nil:
			return outcomeFailed
		case resp.Degraded || isFallback(resp.Source):
			return outcomeDegraded
		default:
			return outcomeOK
		}
	})
}

// StartEdgeLoad is StartLoad aimed at the front door: the same seeded
// arrival process, issued as real HTTP GETs against the edge listener
// and classified from status codes and the X-TranSend-* headers — the
// client's view of the cluster as one service.
func (h *Harness) StartEdgeLoad(rate float64, objects int, dur time.Duration) error {
	eg := h.Sys.Edge()
	if eg == nil {
		return fmt.Errorf("chaos: no edge configured (Config.Edge)")
	}
	base := "http://" + eg.HTTPAddr() + "/fetch?user=loadgen&url="
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
	h.startLoad(rate, objects, dur, func(ctx context.Context, url string) outcome {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+neturl.QueryEscape(url), nil)
		if err != nil {
			return outcomeFailed
		}
		resp, err := client.Do(req)
		if err != nil {
			return outcomeFailed
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		switch {
		case resp.StatusCode == http.StatusOK:
			if resp.Header.Get(edge.HeaderDegraded) == "1" || isFallback(resp.Header.Get(edge.HeaderSource)) {
				return outcomeDegraded
			}
			return outcomeOK
		case resp.Header.Get(edge.HeaderError) == "overloaded":
			return outcomeShed
		default:
			return outcomeFailed
		}
	})
	return nil
}

// startLoad is the shared generator body: the seeded arrival process
// drives the supplied request function, whose outcome lands in the
// ok/degraded/shed/failed counters.
func (h *Harness) startLoad(rate float64, objects int, dur time.Duration, do func(ctx context.Context, url string) outcome) {
	if h.load != nil {
		h.load.stop()
	}
	lg := &loadGen{}
	ctx, cancel := context.WithCancel(context.Background())
	lg.cancel = cancel
	h.load = lg

	rng := rand.New(rand.NewSource(h.cfg.Seed ^ 0x10ad))
	// One virtual hour of the midday arrival process, rescaled so
	// its mean matches the requested rate over dur: burstiness at
	// every scale survives the compression.
	model := trace.DefaultArrivals(h.cfg.Seed)
	virtual := model.Generate(rng, 12*time.Hour, 13*time.Hour)
	scale := float64(dur) / float64(time.Hour)
	wantN := int(rate * dur.Seconds())
	stride := 1
	if wantN > 0 && len(virtual) > wantN {
		stride = len(virtual) / wantN
	}
	zipf := sim.Zipf(rng, 1.1, objects)

	lg.wg.Add(1)
	go func() {
		defer lg.wg.Done()
		start := time.Now()
		for i := 0; i < len(virtual); i += stride {
			at := time.Duration(float64(virtual[i]-12*time.Hour) * scale)
			if wait := at - time.Since(start); wait > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(wait):
				}
			}
			if ctx.Err() != nil {
				return
			}
			obj := zipf()
			url := trace.ObjectURL(obj, media.MIMESGIF)
			lg.issued.Add(1)
			lg.wg.Add(1)
			go func() {
				defer lg.wg.Done()
				// Deliberately not derived from the generator's ctx:
				// StopLoad halts *issuing* but lets in-flight requests
				// finish, so a stop never misclassifies them as failures.
				// The timeout is a hang backstop, far above any latency a
				// loaded-but-live system produces (the race detector can
				// stretch tails well past seconds) — scenarios assert on
				// failures, not latency, so slow must never read as failed.
				rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer rcancel()
				t0 := time.Now()
				out := do(rctx, url)
				lg.observe(time.Since(t0))
				switch out {
				case outcomeShed:
					lg.shed.Add(1)
				case outcomeFailed:
					lg.failed.Add(1)
				case outcomeDegraded:
					lg.degraded.Add(1)
				default:
					lg.ok.Add(1)
				}
			}()
		}
	}()
}

// LoadStats returns the generator's counters so far (zero value if no
// generator was started).
func (h *Harness) LoadStats() LoadStats {
	if h.load == nil {
		return LoadStats{}
	}
	return h.load.stats()
}

func isFallback(source string) bool {
	return source == "fallback-original" || source == "fallback-stale"
}

// StopLoad halts the generator and waits for in-flight requests, then
// returns final stats and records them on the timeline.
func (h *Harness) StopLoad() LoadStats {
	if h.load == nil {
		return LoadStats{}
	}
	h.load.stop()
	st := h.load.stats()
	h.rec.record("note", "load", fmt.Sprintf("issued=%d ok=%d degraded=%d shed=%d failed=%d p99=%s",
		st.Issued, st.OK, st.Degraded, st.Shed, st.Failed, st.P99))
	h.load = nil
	return st
}

func (lg *loadGen) stop() {
	lg.cancel()
	lg.wg.Wait()
}

func (lg *loadGen) observe(d time.Duration) {
	lg.latMu.Lock()
	lg.lats = append(lg.lats, d)
	lg.latMu.Unlock()
}

func (lg *loadGen) stats() LoadStats {
	st := LoadStats{
		Issued:   lg.issued.Load(),
		OK:       lg.ok.Load(),
		Degraded: lg.degraded.Load(),
		Shed:     lg.shed.Load(),
		Failed:   lg.failed.Load(),
	}
	lg.latMu.Lock()
	lats := append([]time.Duration(nil), lg.lats...)
	lg.latMu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		st.P50 = percentile(lats, 0.50)
		st.P99 = percentile(lats, 0.99)
		st.P999 = percentile(lats, 0.999)
		st.Max = lats[len(lats)-1]
	}
	return st
}

// percentile reads quantile q from an ascending-sorted sample using
// the nearest-rank method.
func percentile(sorted []time.Duration, q float64) time.Duration {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
