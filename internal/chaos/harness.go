package chaos

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/manager"
	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/tacc"
)

// Config assembles a chaos harness. Zero values give a compact system
// with timings compressed for tests: 2 workers of one echo class, one
// front end, two cache partitions, 10 ms beacons.
type Config struct {
	Seed int64

	// Passthrough disables the SAN's wire mode. Chaos runs default to
	// wire mode — every message serialized through the production
	// codec — so the encoding path is exercised under faults; the
	// passthrough-vs-wire equivalence test is the only expected user
	// of this knob.
	Passthrough bool

	// Topology. Defaults: 10 dedicated nodes (one process each, so
	// node-level faults map 1:1 to component faults), 2 overflow.
	DedicatedNodes int
	OverflowNodes  int
	FrontEnds      int
	CacheParts     int
	Workers        map[string]int
	// Managers is how many manager replicas to run (election-ranked:
	// rank 0 boots as primary, the rest as standbys). Default 1 — the
	// pre-replication topology. KillManager faults always target the
	// acting primary.
	Managers int
	// Edge adds the L7 front door: the system binds an edge listener
	// and per-FE HTTP adapters on loopback, and StartEdgeLoad drives
	// the workload through it as real HTTP instead of in-process
	// System.Request calls.
	Edge bool

	// Service. Nil Registry/Rules install an echo worker class
	// ("chaos-echo") whose pipeline every request traverses, so a
	// request observes the full FE -> cache -> dispatch -> inject
	// path without distillation cost.
	Registry *tacc.Registry
	Rules    tacc.DispatchRule

	// Timings (compressed for tests).
	BeaconInterval time.Duration
	ReportInterval time.Duration
	CallTimeout    time.Duration
	CacheTimeout   time.Duration

	// CacheSuperviseTTL tunes the manager's cache process-peer
	// timeout. The harness default (10 s) is deliberately longer than
	// any scripted partition or loss burst, so cache restarts appear
	// on a timeline only when a schedule actually kills a cache —
	// keeping run-to-run timelines deterministic. The crash-loop
	// scenario opts into a tight TTL explicitly.
	CacheSuperviseTTL time.Duration

	// Policy defaults to recovery-only: replace crashed workers,
	// never spawn on load — so respawn counts are a pure function of
	// the fault schedule.
	Policy manager.Policy

	// Overload robustness passthroughs (zero = the core defaults:
	// no deadline stamping, inflight bound at Threads+QueueCap, no
	// queue-high-water shedding, no cache expiry). The saturation
	// scenarios set these; CacheTTL > 0 gives the degraded path stale
	// entries to serve.
	RequestDeadline  time.Duration
	FEMaxInflight    int
	FEQueueHighWater float64
	CacheTTL         time.Duration
}

// EchoClass is the default worker class installed when no registry is
// supplied.
const EchoClass = "chaos-echo"

func (c Config) withDefaults() Config {
	if c.DedicatedNodes <= 0 {
		c.DedicatedNodes = 10
	}
	if c.FrontEnds <= 0 {
		c.FrontEnds = 1
	}
	if c.CacheParts <= 0 {
		c.CacheParts = 2
	}
	if len(c.Workers) == 0 {
		c.Workers = map[string]int{EchoClass: 2}
	}
	if c.Registry == nil {
		c.Registry = tacc.NewRegistry()
		c.Registry.Register(EchoClass, func() tacc.Worker {
			return tacc.WorkerFunc{Name: EchoClass, Fn: func(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
				return task.Input, nil
			}}
		})
		if c.Rules == nil {
			c.Rules = func(url, mime string, profile map[string]string) tacc.Pipeline {
				return tacc.Pipeline{{Class: EchoClass}}
			}
		}
	}
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = 10 * time.Millisecond
	}
	if c.ReportInterval <= 0 {
		c.ReportInterval = c.BeaconInterval
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 250 * time.Millisecond
	}
	if c.CacheTimeout <= 0 {
		c.CacheTimeout = 100 * time.Millisecond
	}
	if c.CacheSuperviseTTL <= 0 {
		c.CacheSuperviseTTL = 10 * time.Second
	}
	if c.Policy == (manager.Policy{}) {
		c.Policy = manager.Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1}
	}
	return c
}

// Harness drives one SNS instance through fault schedules.
type Harness struct {
	cfg Config
	Sys *core.System

	rec        *recorder
	removeObs  func()
	load       *loadGen
	baseline   float64 // pre-fault steady-state capacity (success fraction)
	baselineOK bool
}

// New boots a complete SNS instance and attaches the observers.
func New(cfg Config) (*Harness, error) {
	cfg = cfg.withDefaults()
	var edgeListen, feHTTP string
	if cfg.Edge {
		edgeListen, feHTTP = "127.0.0.1:0", "127.0.0.1"
	}
	sys, err := core.Start(core.Config{
		Seed:              cfg.Seed,
		WireMode:          !cfg.Passthrough,
		DedicatedNodes:    cfg.DedicatedNodes,
		OverflowNodes:     cfg.OverflowNodes,
		FrontEnds:         cfg.FrontEnds,
		CacheParts:        cfg.CacheParts,
		Workers:           cfg.Workers,
		Managers:          cfg.Managers,
		Registry:          cfg.Registry,
		Rules:             cfg.Rules,
		BeaconInterval:    cfg.BeaconInterval,
		ReportInterval:    cfg.ReportInterval,
		CallTimeout:       cfg.CallTimeout,
		CacheTimeout:      cfg.CacheTimeout,
		CacheSuperviseTTL: cfg.CacheSuperviseTTL,
		MinDistillSize:    1, // everything traverses the worker pipeline
		Policy:            cfg.Policy,
		RequestDeadline:   cfg.RequestDeadline,
		FEMaxInflight:     cfg.FEMaxInflight,
		FEQueueHighWater:  cfg.FEQueueHighWater,
		CacheTTL:          cfg.CacheTTL,
		EdgeListen:        edgeListen,
		FEHTTP:            feHTTP,
		EdgeRetryBudget:   0.5,
	})
	if err != nil {
		return nil, err
	}
	h := &Harness{cfg: cfg, Sys: sys, rec: &recorder{start: time.Now()}}
	h.removeObs = sys.Cluster.OnExit(func(info cluster.ExitInfo) {
		detail := "clean"
		if info.Err != nil {
			detail = info.Err.Error()
		}
		h.rec.record("exit", info.Node+"/"+info.Proc, detail)
	})
	if !sys.WaitReady(10*time.Second) || !h.AwaitSteady(10*time.Second) {
		h.Stop()
		return nil, fmt.Errorf("chaos: system did not become ready")
	}
	return h, nil
}

// Stop tears the system down. The timeline remains readable.
func (h *Harness) Stop() {
	if h.load != nil {
		h.load.stop()
	}
	if h.removeObs != nil {
		h.removeObs()
	}
	h.Sys.Stop()
}

// Timeline returns the recorded history so far: injected faults,
// process exits, scenario notes, and the monitor's alerts merged in.
func (h *Harness) Timeline() Timeline {
	tl := h.rec.snapshot()
	for _, a := range h.Sys.Mon.Alerts() {
		t := a.Time.Sub(h.rec.start)
		if t < 0 {
			t = 0
		}
		tl = append(tl, TimelineEvent{T: t, Kind: "alert", Name: a.Component, Detail: a.Message})
	}
	sort.SliceStable(tl, func(i, j int) bool { return tl[i].T < tl[j].T })
	return tl
}

// FaultTimeline returns only the injected-fault events, each named by
// the deterministic Event identity (offset, kind, slot, knobs). Two
// executions of the same schedule yield identical fault timelines —
// the reproducibility contract the determinism test asserts.
func (h *Harness) FaultTimeline() []string {
	var out []string
	for _, e := range h.rec.snapshot() {
		if e.Kind == "fault" {
			out = append(out, e.Name)
		}
	}
	return out
}

// Note records a scenario annotation (e.g. a measured recovery
// latency) on the timeline.
func (h *Harness) Note(name, detail string) { h.rec.record("note", name, detail) }

// Execute runs the schedule to completion: each event fires at its
// offset from the call, against the live system. It returns the
// number of events injected.
func (h *Harness) Execute(ctx context.Context, sched Schedule) int {
	start := time.Now()
	injected := 0
	for _, ev := range sched.Events {
		wait := ev.At - time.Since(start)
		if wait > 0 {
			select {
			case <-ctx.Done():
				return injected
			case <-time.After(wait):
			}
		}
		h.inject(ev)
		injected++
	}
	return injected
}

// inject applies one event and records it. The recorded name is the
// event's deterministic identity; the detail carries the resolved
// target (which may legitimately differ between runs, e.g. respawned
// worker ids).
func (h *Harness) inject(ev Event) {
	detail := ""
	switch ev.Kind {
	case KillWorker:
		if id := h.pickWorker(ev.Slot); id != "" {
			_ = h.Sys.KillWorker(id)
			detail = id
		} else {
			detail = "no-target"
		}
	case KillManager:
		_ = h.Sys.KillManager()
	case KillCache:
		if name := h.pickCache(ev.Slot); name != "" {
			_ = h.Sys.KillCache(name)
			detail = name
		} else {
			detail = "no-target"
		}
	case KillFrontEnd:
		if name := h.pickFrontEnd(ev.Slot); name != "" {
			_ = h.Sys.KillFrontEnd(name)
			detail = name
		} else {
			detail = "no-target"
		}
	case PartitionCaches:
		groups := h.CachePartitionGroups()
		if ev.Dur > 0 {
			h.Sys.Net.PartitionFor(groups, ev.Dur)
		} else {
			h.Sys.Net.Partition(groups)
		}
	case LossBurst:
		h.Sys.Net.LossBurst(ev.P2P, ev.Mcast, ev.Dur)
	case HangWorker:
		// As with PartitionCaches, Dur <= 0 means the fault persists
		// until lifted manually.
		if id := h.pickWorker(ev.Slot); id != "" {
			if ws := h.Sys.WorkerStub(id); ws != nil {
				ws.InjectHang(true)
				if ev.Dur > 0 {
					time.AfterFunc(ev.Dur, func() { ws.InjectHang(false) })
				}
				detail = id
			}
		}
	case SlowWorker:
		if id := h.pickWorker(ev.Slot); id != "" {
			if ws := h.Sys.WorkerStub(id); ws != nil {
				ws.InjectSlowdown(ev.Delay)
				if ev.Dur > 0 {
					time.AfterFunc(ev.Dur, func() { ws.InjectSlowdown(0) })
				}
				detail = id
			}
		}
	case SeverBridge:
		if br := h.Sys.Bridge; br != nil {
			br.SeverPeers(ev.Dur)
		} else {
			detail = "no-bridge"
		}
	case Heal:
		h.Sys.Net.Heal()
	}
	h.rec.record("fault", ev.String(), detail)
}

// pickWorker resolves a slot to a live worker id (sorted order).
func (h *Harness) pickWorker(slot int) string {
	ids := h.Sys.Workers()
	if len(ids) == 0 {
		return ""
	}
	return ids[slot%len(ids)]
}

// pickCache resolves a slot to a locally hosted cache name (sorted
// order).
func (h *Harness) pickCache(slot int) string {
	names := h.Sys.Caches()
	if len(names) == 0 {
		return ""
	}
	return names[slot%len(names)]
}

// pickFrontEnd resolves a slot to a front-end name (creation order).
func (h *Harness) pickFrontEnd(slot int) string {
	fes := h.Sys.FrontEnds()
	if len(fes) == 0 {
		return ""
	}
	return fes[slot%len(fes)].ID()
}

// AwaitSteady blocks until the system is at full strength: every
// configured worker registered with the current manager, every front
// end running, seeing beacons, and holding every worker class in its
// dispatch cache (so a request needs no cold-start spawn). It returns
// false on timeout.
func (h *Harness) AwaitSteady(timeout time.Duration) bool {
	want := 0
	for _, n := range h.cfg.Workers {
		want += n
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if h.steadyNow(want) {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return h.steadyNow(want)
}

func (h *Harness) steadyNow(wantWorkers int) bool {
	if h.Sys.Manager().Stats().Workers < wantWorkers {
		return false
	}
	fes := h.Sys.FrontEnds()
	if len(fes) < h.cfg.FrontEnds {
		return false
	}
	for _, fe := range fes {
		if !fe.Running() || fe.ManagerStub().Stats().BeaconsSeen == 0 {
			return false
		}
		for class, n := range h.cfg.Workers {
			if len(fe.ManagerStub().Workers(class)) < n {
				return false
			}
		}
	}
	return true
}

// ProbeCapacity issues n sequential requests against the system and
// returns the fraction that succeeded — the steady-state capacity
// measure the soak test compares before and after the kill storm.
// Probes use a dedicated URL range so they share cache state across
// calls only with each other.
func (h *Harness) ProbeCapacity(ctx context.Context, n int) float64 {
	if n <= 0 {
		return 0
	}
	ok := 0
	for i := 0; i < n; i++ {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_, err := h.Sys.Request(rctx, probeURL(i), "probe")
		cancel()
		if err == nil {
			ok++
		}
	}
	return float64(ok) / float64(n)
}

func probeURL(i int) string {
	return fmt.Sprintf("http://probe.example/obj%d.bin", i%64)
}

// BaselineCapacity measures and remembers the pre-fault steady-state
// capacity; RecoveredWithin compares against it later.
func (h *Harness) BaselineCapacity(ctx context.Context, n int) float64 {
	h.baseline = h.ProbeCapacity(ctx, n)
	h.baselineOK = true
	h.Note("baseline", fmt.Sprintf("capacity=%.2f over %d probes", h.baseline, n))
	return h.baseline
}

// RecoveredWithin reports whether post-fault capacity is within frac
// (e.g. 0.10) of the recorded baseline, probing with n requests.
func (h *Harness) RecoveredWithin(ctx context.Context, n int, frac float64) (float64, bool) {
	after := h.ProbeCapacity(ctx, n)
	h.Note("recovered", fmt.Sprintf("capacity=%.2f baseline=%.2f", after, h.baseline))
	if !h.baselineOK {
		return after, false
	}
	return after, after >= h.baseline*(1-frac)
}

// Beacons re-exports the control-plane group name for experiments
// that want to eavesdrop on the harnessed system.
const Beacons = stub.GroupControl

// CachePartitionGroups returns the partition map that isolates every
// cache node — exported so scenarios can partition and heal manually
// around their own assertions.
func (h *Harness) CachePartitionGroups() map[string]int {
	groups := map[string]int{}
	for _, addr := range h.Sys.CacheNodes() {
		groups[addr.Node] = 1
	}
	return groups
}

// Net returns the underlying SAN (impairment knobs).
func (h *Harness) Net() *san.Network { return h.Sys.Net }
