// Package chaos is a deterministic fault-injection harness for the
// full SNS stack (paper §4.3): it assembles a complete system — front
// ends, manager, worker stubs, cache partitions, monitor — on the
// cluster substrate over the SAN, drives it with a seeded background
// load generator (trace arrivals + Zipf object popularity), and
// executes a scripted fault schedule against it: process crashes,
// network partitions, loss bursts, worker hangs and slowdowns.
//
// The paper's second headline claim (after linear scalability) is
// that soft state makes recovery a non-protocol: kill a worker, the
// manager infers the loss by timeout and respawns it; kill the
// manager, workers re-register on the next beacon; kill a front end,
// its process peer restarts it; throw the cache away, front ends fall
// back to origin fetches. The harness exists so every scenario PR can
// prove its behavior under these faults, not just under load.
//
// Everything is seeded: a Schedule is a pure function of its seed, so
// the same seed injects the same faults at the same offsets on every
// run — the property the reproducibility tests assert by running one
// schedule twice and diffing the fault timelines.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// TimelineEvent is one entry in a run's recorded history.
type TimelineEvent struct {
	// T is the offset from the start of the schedule execution.
	T time.Duration
	// Kind classifies the entry: "fault" (an injected action),
	// "exit" (a process left the cluster), "alert" (monitor), or
	// "note" (scenario annotations such as measured recovery
	// latencies).
	Kind string
	// Name identifies the subject (action kind, process id, alert
	// component).
	Name string
	// Detail is free-form context.
	Detail string
}

// Timeline is an ordered run history.
type Timeline []TimelineEvent

// Filter returns the events of one kind, in order.
func (tl Timeline) Filter(kind string) Timeline {
	var out Timeline
	for _, e := range tl {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// String renders the timeline as text, one event per line.
func (tl Timeline) String() string {
	var b strings.Builder
	for _, e := range tl {
		fmt.Fprintf(&b, "%8.3fs  %-6s %-22s %s\n", e.T.Seconds(), e.Kind, e.Name, e.Detail)
	}
	return b.String()
}

// recorder collects timeline events concurrently.
type recorder struct {
	mu     sync.Mutex
	start  time.Time
	events []TimelineEvent
}

func (r *recorder) record(kind, name, detail string) {
	r.recordAt(time.Since(r.start), kind, name, detail)
}

func (r *recorder) recordAt(t time.Duration, kind, name, detail string) {
	r.mu.Lock()
	r.events = append(r.events, TimelineEvent{T: t, Kind: kind, Name: name, Detail: detail})
	r.mu.Unlock()
}

func (r *recorder) snapshot() Timeline {
	r.mu.Lock()
	out := make(Timeline, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
