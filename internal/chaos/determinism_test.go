package chaos

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// TestRandomSoakIsPureFunctionOfSeed: the generated schedule is
// byte-identical across calls with the same seed and differs across
// seeds.
func TestRandomSoakIsPureFunctionOfSeed(t *testing.T) {
	opts := SoakOptions{
		Kills: 12,
		Every: 250 * time.Millisecond,
		Kinds: []ActionKind{KillWorker, KillManager, KillFrontEnd, PartitionCaches, LossBurst, HangWorker, SlowWorker},
	}
	a := RandomSoak(42, opts)
	b := RandomSoak(42, opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%+v\n%+v", a, b)
	}
	c := RandomSoak(43, opts)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleTimelineReproducible is the reproducibility contract:
// executing one schedule twice, on two fresh systems built from the
// same seed, yields the identical fault timeline (the acceptance
// criterion's run-twice-and-diff assertion), and both runs converge
// back to steady state.
func TestScheduleTimelineReproducible(t *testing.T) {
	sched := Schedule{Seed: 5, Events: []Event{
		{At: 50 * time.Millisecond, Kind: KillWorker, Slot: 1},
		{At: 150 * time.Millisecond, Kind: LossBurst, Dur: 80 * time.Millisecond, P2P: 0.3, Mcast: 0.5},
		{At: 300 * time.Millisecond, Kind: SlowWorker, Slot: 0, Dur: 100 * time.Millisecond, Delay: 2 * time.Millisecond},
		{At: 450 * time.Millisecond, Kind: KillFrontEnd, Slot: 0},
		{At: 650 * time.Millisecond, Kind: PartitionCaches, Dur: 100 * time.Millisecond},
		{At: 900 * time.Millisecond, Kind: KillManager},
	}}

	run := func() []string {
		h, err := New(Config{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Stop()
		h.Execute(context.Background(), sched)
		if !h.AwaitSteady(15 * time.Second) {
			t.Fatalf("run did not return to steady state:\n%s", h.Timeline())
		}
		return h.FaultTimeline()
	}

	first := run()
	second := run()
	if len(first) != len(sched.Events) {
		t.Fatalf("run injected %d of %d events", len(first), len(sched.Events))
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("fault timelines differ between runs of the same schedule:\nrun1: %v\nrun2: %v", first, second)
	}
}
