package chaos

import (
	"context"
	"reflect"
	"sort"
	"testing"
	"time"
)

// TestWireModeTimelineEquivalence is the wire-mode acceptance test:
// the same seeded fault schedule, executed once over the passthrough
// SAN and once over the wire-codec SAN, produces an identical fault
// timeline and the same set of process deaths, and both runs converge
// back to steady state. Serialization is a representation change, not
// a behavior change.
func TestWireModeTimelineEquivalence(t *testing.T) {
	sched := Schedule{Seed: 7, Events: []Event{
		{At: 40 * time.Millisecond, Kind: KillWorker, Slot: 0},
		{At: 120 * time.Millisecond, Kind: LossBurst, Dur: 60 * time.Millisecond, P2P: 0.2, Mcast: 0.4},
		{At: 220 * time.Millisecond, Kind: PartitionCaches, Dur: 80 * time.Millisecond},
		{At: 380 * time.Millisecond, Kind: KillFrontEnd, Slot: 0},
	}}

	type outcome struct {
		faults []string
		exits  []string
	}
	run := func(passthrough bool) outcome {
		h, err := New(Config{Seed: 7, Passthrough: passthrough})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Stop()
		if wire := h.Net().WireMode(); wire != !passthrough {
			t.Fatalf("wire mode = %v with passthrough=%v", wire, passthrough)
		}
		h.Execute(context.Background(), sched)
		if !h.AwaitSteady(15 * time.Second) {
			t.Fatalf("passthrough=%v run did not return to steady state:\n%v", passthrough, h.Timeline())
		}
		if !passthrough {
			st := h.Net().Stats()
			if st.WireEncodes == 0 || st.WireDecodes == 0 {
				t.Fatalf("wire run never exercised the codec: %+v", st)
			}
			if st.WireErrors != 0 {
				t.Fatalf("codec rejected %d live messages (missing body layout?)", st.WireErrors)
			}
		}
		var out outcome
		out.faults = h.FaultTimeline()
		for _, e := range h.Timeline() {
			if e.Kind == "exit" {
				out.exits = append(out.exits, e.Name)
			}
		}
		sort.Strings(out.exits)
		return out
	}

	passthrough := run(true)
	wire := run(false)
	if !reflect.DeepEqual(passthrough.faults, wire.faults) {
		t.Fatalf("fault timelines differ:\npassthrough: %v\nwire:        %v", passthrough.faults, wire.faults)
	}
	if !reflect.DeepEqual(passthrough.exits, wire.exits) {
		t.Fatalf("process deaths differ:\npassthrough: %v\nwire:        %v", passthrough.exits, wire.exits)
	}
}
