package chaos

// Overload and gray-failure scenarios: the estimator-driven load
// shifts of §4.5 observed end to end, and the BASE saturation story
// (§3.1.8, §4.6) — degrade and shed rather than queue into deadlines
// nobody can meet.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/tacc"
)

// slowEchoService returns a registry/rules pair whose single echo
// class costs `cost` wall-clock per task — giving the system a finite,
// known capacity the saturation soak can overdrive.
func slowEchoService(cost time.Duration) (*tacc.Registry, tacc.DispatchRule) {
	reg := tacc.NewRegistry()
	reg.Register(EchoClass, func() tacc.Worker {
		return tacc.WorkerFunc{Name: EchoClass, Fn: func(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
			select {
			case <-ctx.Done():
				return tacc.Blob{}, ctx.Err()
			case <-time.After(cost):
			}
			return task.Input, nil
		}}
	})
	rules := func(url, mime string, profile map[string]string) tacc.Pipeline {
		return tacc.Pipeline{{Class: EchoClass}}
	}
	return reg, rules
}

// TestScenarioSlowWorkerEstimatorShift: one worker grows a 40 ms
// per-task limp (gray failure: alive, registered, just slow). Under a
// steady arrival stream the queue-delta estimator must starve it long
// before CallTimeout — zero dispatch retries, every request well under
// the timeout, and the survivor executing the clear majority of tasks.
// Run twice; the fault timelines must match.
func TestScenarioSlowWorkerEstimatorShift(t *testing.T) {
	const callTimeout = 2 * time.Second
	run := func(t *testing.T) []string {
		h := newHarness(t, Config{Seed: seed, CallTimeout: callTimeout})
		ctx := context.Background()

		victim := h.pickWorker(0)
		vs := h.Sys.WorkerStub(victim)
		if vs == nil {
			t.Fatalf("no stub for %s", victim)
		}
		// 25 ms per task: even if every request piled onto the victim
		// its backlog could not reach CallTimeout, so any dispatch
		// retry is estimator failure, not bad luck.
		h.Execute(ctx, Schedule{Seed: seed, Events: []Event{
			{Kind: SlowWorker, Slot: 0, Delay: 25 * time.Millisecond}, // Dur 0: persists
		}})

		fe := h.Sys.FrontEnds()[0]
		retries0 := fe.ManagerStub().Stats().Retries
		done0 := map[string]uint64{}
		for _, id := range h.Sys.Workers() {
			done0[id] = h.Sys.WorkerStub(id).TasksDone()
		}

		const n = 48
		var (
			wg      sync.WaitGroup
			mu      sync.Mutex
			slowest time.Duration
		)
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rctx, cancel := context.WithTimeout(ctx, 8*time.Second)
				defer cancel()
				t0 := time.Now()
				_, errs[i] = h.Sys.Request(rctx, fmt.Sprintf("http://chaos.example/sw%d.bin", i), "u")
				el := time.Since(t0)
				mu.Lock()
				if el > slowest {
					slowest = el
				}
				mu.Unlock()
			}(i)
			// A steady stream (not a wave) so the victim's backlog is
			// visible in its load reports while new work keeps arriving.
			time.Sleep(5 * time.Millisecond)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("request %d failed under slow worker: %v", i, err)
			}
		}

		if d := fe.ManagerStub().Stats().Retries - retries0; d != 0 {
			t.Fatalf("dispatch fell back %d times via CallTimeout; the estimator should have shifted load first", d)
		}
		if slowest >= callTimeout {
			t.Fatalf("slowest request took %s, at/past CallTimeout %s", slowest, callTimeout)
		}

		victimDelta := vs.TasksDone() - done0[victim]
		var survivorDelta uint64
		for _, id := range h.Sys.Workers() {
			if id != victim {
				survivorDelta += h.Sys.WorkerStub(id).TasksDone() - done0[id]
			}
		}
		h.Note("slow-worker-shift", fmt.Sprintf("victim=%d survivors=%d slowest=%s", victimDelta, survivorDelta, slowest))
		if survivorDelta <= 2*victimDelta {
			t.Fatalf("victim executed %d of %d tasks (survivors %d); lottery did not shift load away",
				victimDelta, n, survivorDelta)
		}
		return h.FaultTimeline()
	}

	first := run(t)
	second := run(t)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("fault timelines diverged across identical runs:\n%v\n%v", first, second)
	}
}

// TestScenarioHangWorkerEstimatorShift: a hung worker keeps its
// trapped queue on display in every load report. Once a few requests
// are stuck, the estimator must route the next burst to the survivor
// before CallTimeout fires — most of the burst completes in a fraction
// of the timeout, and the hung worker completes nothing while hung.
func TestScenarioHangWorkerEstimatorShift(t *testing.T) {
	const callTimeout = time.Second
	run := func(t *testing.T) []string {
		h := newHarness(t, Config{Seed: seed, CallTimeout: callTimeout})
		ctx := context.Background()

		victim := h.pickWorker(0)
		vs := h.Sys.WorkerStub(victim)
		if vs == nil {
			t.Fatalf("no stub for %s", victim)
		}
		h.Execute(ctx, Schedule{Seed: seed, Events: []Event{
			{Kind: HangWorker, Slot: 0}, // Dur 0: hangs until lifted below
		}})

		var wg sync.WaitGroup
		issue := func(i int, tag string, lat *time.Duration, errp *error) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rctx, cancel := context.WithTimeout(ctx, 8*time.Second)
				defer cancel()
				t0 := time.Now()
				_, err := h.Sys.Request(rctx, fmt.Sprintf("http://chaos.example/%s%d.bin", tag, i), "u")
				if lat != nil {
					*lat = time.Since(t0)
				}
				if errp != nil {
					*errp = err
				}
			}()
		}

		// Seed the evidence: some of these land on the hung worker and
		// sit there, so its reported queue stops draining.
		const seeds = 12
		seedErrs := make([]error, seeds)
		for i := 0; i < seeds; i++ {
			issue(i, "hseed", nil, &seedErrs[i])
			time.Sleep(time.Millisecond)
		}
		waitFor(t, "hung worker trapping work", func() bool { return vs.QueueLen() > 0 })
		time.Sleep(50 * time.Millisecond) // several report intervals of a non-draining queue

		// Measurement burst: the shift must happen via the estimator,
		// not via CallTimeout failover.
		const n = 32
		trapped0 := vs.QueueLen()
		done0 := vs.TasksDone()
		lats := make([]time.Duration, n)
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			issue(i, "hburst", &lats[i], &errs[i])
			time.Sleep(2 * time.Millisecond)
		}
		trappedDelta := vs.QueueLen() - trapped0
		wg.Wait()

		fast := 0
		for i, err := range errs {
			if err != nil {
				t.Fatalf("burst request %d failed during worker hang: %v", i, err)
			}
			if lats[i] < callTimeout/2 {
				fast++
			}
		}
		h.Note("hang-worker-shift", fmt.Sprintf("fast=%d/%d trapped=%d", fast, n, trappedDelta))
		if fast < n*2/3 {
			t.Fatalf("only %d of %d burst requests finished before CallTimeout could fire; estimator did not shift load", fast, n)
		}
		if trappedDelta > n/3 {
			t.Fatalf("hung worker trapped %d of %d burst tasks", trappedDelta, n)
		}
		if d := vs.TasksDone() - done0; d > 1 {
			t.Fatalf("hung worker completed %d tasks while hung", d)
		}
		for i, err := range seedErrs {
			if err != nil {
				t.Fatalf("seed request %d failed during worker hang: %v", i, err)
			}
		}

		// Lift the hang: the trapped backlog drains and the worker
		// rejoins the pool.
		vs.InjectHang(false)
		waitFor(t, "trapped queue to drain after resume", func() bool { return vs.QueueLen() == 0 })
		return h.FaultTimeline()
	}

	first := run(t)
	second := run(t)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("fault timelines diverged across identical runs:\n%v\n%v", first, second)
	}
}

// TestScenarioSaturationSoak is the acceptance scenario for the
// overload tentpole: sustained offered load well past worker capacity
// plus a LossBurst. The front end must shed/degrade rather than queue
// — goodput within 20% of the pre-overload run, no accepted request
// riding to its deadline, explicit sheds under saturation — and the
// system must return to full strength afterward. Skipped with -short.
func TestScenarioSaturationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation soak skipped in -short mode")
	}
	// 2 workers x 5 ms/task = ~400 dispatches/s of worker capacity.
	const taskCost = 5 * time.Millisecond
	reg, rules := slowEchoService(taskCost)

	run := func(t *testing.T) []string {
		h := newHarness(t, Config{
			Seed:             11,
			Registry:         reg,
			Rules:            rules,
			CallTimeout:      time.Second,
			RequestDeadline:  3 * time.Second,
			FEQueueHighWater: 12,
			CacheTTL:         400 * time.Millisecond,
		})
		ctx := context.Background()

		baseline := h.BaselineCapacity(ctx, 30)
		if baseline < 0.95 {
			t.Fatalf("pre-fault capacity only %.2f", baseline)
		}

		// Pre-overload throughput: a sustainable offered rate.
		preDur := 1200 * time.Millisecond
		h.StartLoad(250, 16384, preDur)
		// Sleep past the issue window plus drain headroom: StopLoad
		// cancels whatever is still in flight, which would count as
		// failures.
		time.Sleep(preDur + 300*time.Millisecond)
		pre := h.StopLoad()
		if pre.Issued == 0 {
			t.Fatal("pre-overload load generator issued nothing")
		}
		if sr := pre.SuccessRate(); sr < 0.9 {
			t.Fatalf("pre-overload success rate %.2f, want >= 0.9 (%+v)", sr, pre)
		}
		goodputPre := pre.Goodput(preDur)

		// Overload: far past capacity, with a loss burst in the middle.
		overDur := 2 * time.Second
		h.StartLoad(1200, 16384, overDur)
		h.Execute(ctx, Schedule{Seed: 11, Events: []Event{
			{At: 500 * time.Millisecond, Kind: LossBurst, P2P: 0.05, Mcast: 0.2, Dur: 300 * time.Millisecond},
		}})
		time.Sleep(overDur - 500*time.Millisecond + 400*time.Millisecond)
		over := h.StopLoad()
		goodputOver := over.Goodput(overDur)

		if got := over.OK + over.Degraded + over.Shed + over.Failed; got != over.Issued {
			t.Fatalf("outcome accounting: %d outcomes for %d issued (%+v)", got, over.Issued, over)
		}
		// BASE under saturation: goodput holds (within 20% of the
		// pre-overload run), the excess is refused explicitly instead
		// of queued, and nothing rides to its request deadline.
		if goodputOver < 0.8*goodputPre {
			t.Fatalf("goodput collapsed under overload: %.0f/s vs %.0f/s pre-overload (%+v)",
				goodputOver, goodputPre, over)
		}
		if over.Shed == 0 {
			t.Fatalf("no requests shed at 3x capacity (%+v)", over)
		}
		if over.Failed > over.Issued/50 {
			t.Fatalf("%d of %d overload requests failed outright, want <= 2%% (%+v)",
				over.Failed, over.Issued, over)
		}
		if over.Max >= 4*time.Second {
			t.Fatalf("slowest accepted request took %s — queued into its deadline instead of shedding", over.Max)
		}
		h.Note("saturation", fmt.Sprintf("goodput %.0f/s -> %.0f/s shed=%d degraded=%d p99=%s",
			goodputPre, goodputOver, over.Shed, over.Degraded, over.P99))

		// Recovery: overload and the loss burst leave no residue.
		if !h.AwaitSteady(15 * time.Second) {
			t.Fatalf("system did not return to steady state after overload:\n%s", h.Timeline())
		}
		after, ok := h.RecoveredWithin(ctx, 30, 0.2)
		if !ok {
			t.Fatalf("post-overload capacity %.2f vs baseline %.2f (want within 20%%):\n%s",
				after, baseline, h.Timeline())
		}
		waitFor(t, "worker queues drained", func() bool {
			for _, id := range h.Sys.Workers() {
				if ws := h.Sys.WorkerStub(id); ws != nil && ws.QueueLen() > 0 {
					return false
				}
			}
			return true
		})
		return h.FaultTimeline()
	}

	first := run(t)
	second := run(t)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("fault timelines diverged across identical runs:\n%v\n%v", first, second)
	}
}
