package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMultiProcessTracePropagation is the acceptance test for the
// observability tentpole run in-binary: with sampling at 1, a request
// served across two bridged processes leaves one trace id whose span
// tree — queried on the front-end process alone — decomposes the
// request into front-end, dispatch, and worker hops recorded by BOTH
// processes (the worker-side spans arrive via span-digest multicast on
// the report group).
func TestMultiProcessTracePropagation(t *testing.T) {
	sysA, sysB := startPair(t, func(a, b *Config) {
		a.TraceSampleRate = 1
		b.TraceSampleRate = 1
	})
	ctx := context.Background()

	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	resp, err := sysA.Request(rctx, "http://origin0.example/trace0.sjpg", "alice")
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Trace.Valid() || !resp.Trace.Sampled() {
		t.Fatalf("response trace id %v not a sampled trace", resp.Trace)
	}

	// The worker-side spans cross back on the next report tick; poll the
	// FE-side tracer until the tree spans both processes.
	hopsOf := func(tr *obs.Tracer) map[string]string { // hop -> proc
		out := make(map[string]string)
		for _, sp := range tr.Spans(resp.Trace) {
			out[sp.Hop] = sp.Proc
		}
		return out
	}
	waitFor(t, "cluster-wide span tree on the FE process", func() bool {
		hops := hopsOf(sysA.Tracer())
		_, hasQueue := hops["worker.queue"]
		_, hasService := hops["worker.service"]
		_, hasRoot := hops[obs.RootHop]
		return hasQueue && hasService && hasRoot
	})

	hops := hopsOf(sysA.Tracer())
	procs := make(map[string]bool)
	for _, proc := range hops {
		procs[proc] = true
	}
	if len(procs) < 2 {
		t.Fatalf("span tree covers %d process(es), want >= 2: %v", len(procs), hops)
	}
	if hops[obs.RootHop] != "a-" || hops["worker.service"] != "b-" {
		t.Fatalf("hops attributed to wrong processes: %v", hops)
	}
	for _, hop := range []string{"fe.admit", "fe.cache", "dispatch"} {
		if _, ok := hops[hop]; !ok {
			t.Fatalf("span tree missing hop %q: %v", hop, hops)
		}
	}

	// The digests flow the other way too: B's tracer can answer for the
	// FE-side hops.
	waitFor(t, "FE spans ingested on the worker process", func() bool {
		_, ok := hopsOf(sysB.Tracer())[obs.RootHop]
		return ok
	})

	// Queue-wait vs service decomposition: both worker spans carry
	// non-negative durations and the service span names the class.
	for _, sp := range sysA.Tracer().Spans(resp.Trace) {
		if sp.Dur < 0 {
			t.Fatalf("negative span duration: %+v", sp)
		}
		if sp.Hop == "worker.service" && sp.Note == "" {
			t.Fatalf("service span missing class note: %+v", sp)
		}
	}
}
