// Package core is the off-the-shelf SNS platform (paper §2): it
// assembles the cluster, SAN, manager, front ends, cache partitions,
// monitor, and profile database into a running system, and wires the
// process-peer fault-tolerance loops (front ends restart the manager;
// the manager restarts front ends and workers).
//
// A new service is exactly what the paper promises: register TACC
// worker classes, supply a dispatch rule, call Start. Everything below
// the Service/TACC layers — scaling, load balancing, overflow, failure
// management, monitoring — comes from here, unchanged, for every
// service.
package core

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/edge"
	"repro/internal/frontend"
	"repro/internal/manager"
	"repro/internal/monitor"
	"repro/internal/origin"
	"repro/internal/profiledb"
	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/supervisor"
	"repro/internal/tacc"
	"repro/internal/transport"
	"repro/internal/vcache"
)

// Roles selects which SNS components a process hosts. The zero value
// hosts everything (the classic single-process deployment); a
// multi-process cluster gives each cmd/node process a subset and the
// components discover each other over the bridged SAN exactly as they
// would in one process. Every process additionally runs a supervisor
// daemon (internal/supervisor), regardless of its role set, so
// whichever process hosts the manager can delegate process-peer
// restarts into any other.
//
// Replicated roles: front ends, workers, and caches may be hosted by
// several processes of one cluster — FE and cache heartbeats are
// keyed by SAN address and worker ids are prefix-qualified, so
// same-named components in different processes never interleave in
// the manager's soft-state tables. The manager role itself must still
// be hosted by exactly one process (beacons carry a single manager
// address; there is no election yet).
type Roles struct {
	FrontEnds bool
	Manager   bool
	Workers   bool
	Caches    bool
	Monitor   bool
	// Edge hosts the L7 front door (internal/edge). Unlike the other
	// roles it still needs Config.EdgeListen set to actually bind.
	Edge bool
}

// All reports whether this is the host-everything zero value.
func (r Roles) All() bool { return r == (Roles{}) }

func (r Roles) frontEnds() bool { return r.All() || r.FrontEnds }
func (r Roles) manager() bool   { return r.All() || r.Manager }
func (r Roles) workers() bool   { return r.All() || r.Workers }
func (r Roles) caches() bool    { return r.All() || r.Caches }
func (r Roles) monitor() bool   { return r.All() || r.Monitor }
func (r Roles) edge() bool      { return r.All() || r.Edge }

// ParseRoles parses a comma-separated role list
// ("frontend,manager,worker,cache,monitor,edge"; "all" or "" selects
// everything) — the cmd/node and cmd/transend flag format.
func ParseRoles(s string) (Roles, error) {
	var r Roles
	if s == "" || s == "all" {
		return r, nil
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "frontend", "frontends", "fe":
			r.FrontEnds = true
		case "manager", "mgr":
			r.Manager = true
		case "worker", "workers":
			r.Workers = true
		case "cache", "caches":
			r.Caches = true
		case "monitor", "mon":
			r.Monitor = true
		case "edge":
			r.Edge = true
		case "":
		default:
			return Roles{}, fmt.Errorf("core: unknown role %q", part)
		}
	}
	if r.All() {
		return Roles{}, fmt.Errorf("core: no roles in %q", s)
	}
	return r, nil
}

// TransportConfig attaches the SAN to a socket bridge
// (internal/transport) so the process can splice into a cluster that
// spans real OS processes. A non-empty Listen enables it and forces
// wire mode.
type TransportConfig struct {
	// Listen is the bridge's socket: "tcp:host:port" or "unix:/path"
	// (port 0 picks a free port).
	Listen string
	// Join lists seed bridge addresses; peer gossip completes the
	// mesh from any one of them.
	Join []string
	// ID names this process's bridge uniquely in the cluster
	// (defaults to NodePrefix, then to the resolved listen address).
	ID string
	// FlushBytes/FlushDelay tune frame batching (transport defaults
	// when zero; negative FlushDelay disables batching).
	FlushBytes int
	FlushDelay time.Duration
	// MaxBatchBytes bounds each peer's write queue: sends past the
	// bound fail fast with backpressure instead of buffering behind a
	// stalled peer (transport default when zero; negative unbounded).
	MaxBatchBytes int
}

// Config describes a deployment.
type Config struct {
	Seed int64

	// WireMode serializes every SAN message body through the stub wire
	// codec on send and decodes it on delivery, so inter-process
	// messages cross the SAN as bytes exactly as they would a
	// production interconnect. Chaos runs enable this by default.
	WireMode bool

	// Roles selects the components this process hosts (zero = all).
	Roles Roles

	// NodePrefix prefixes every cluster node name ("node0" becomes
	// "<prefix>node0"), keeping SAN addresses disjoint when several
	// OS processes join one logical SAN. Required (and must be
	// unique) per process in multi-process mode.
	NodePrefix string

	// Transport, when Listen is set, bridges this process's SAN to
	// its peers over sockets.
	Transport TransportConfig

	// RemoteCaches names cache partitions hosted by peer processes
	// (use CacheAddrs to compute them from the hosting process's
	// prefix and topology). Merged with locally hosted partitions
	// into every front end's view.
	RemoteCaches map[string]san.Addr

	// Topology.
	DedicatedNodes int // worker/cache/FE hosts (default 8)
	OverflowNodes  int // burst-absorbing pool (§2.2.3)
	ProcsPerNode   int // capacity heuristic per node (default 8)

	// Components.
	FrontEnds int
	// Managers is how many manager replicas this process hosts when
	// it carries the manager role (default 1). Replica 0 boots as the
	// acting primary; the rest boot standby and win the primacy by
	// the lease election in internal/manager when the primary goes
	// silent.
	Managers int
	// ManagerRank offsets the election rank of the first local
	// replica: replica i runs at rank ManagerRank+i, and only global
	// rank 0 boots as the acting primary. A multi-process deployment
	// gives each manager-role process Managers=1 and a distinct
	// ManagerRank; exactly one process runs rank 0.
	ManagerRank int
	CacheParts  int
	// CacheBudget is bytes per cache partition (default 64 MiB).
	CacheBudget int64
	// Workers maps class -> initial replica count.
	Workers map[string]int

	// Service definition.
	Registry *tacc.Registry
	Rules    tacc.DispatchRule
	Origin   origin.Fetcher

	// ProfileDir holds the ACID profile database; empty uses a
	// fresh temporary directory.
	ProfileDir string

	// Tuning.
	Policy         manager.Policy
	BeaconInterval time.Duration
	ReportInterval time.Duration
	CallTimeout    time.Duration
	FEThreads      int
	CacheTTL       time.Duration
	CacheTimeout   time.Duration // per-lookup vcache bound (0 = client default)
	MinDistillSize int
	// CacheServiceTime optionally models per-hit cache cost (§4.4).
	CacheServiceTime func() time.Duration
	// CacheSuperviseTTL is how long the manager tolerates cache
	// heartbeat silence before its process-peer duty restarts the
	// service (default 5x ReportInterval). Keep it comfortably above
	// the longest network partition a deployment should ride out —
	// restarting a merely-partitioned cache is safe (the content is
	// discardable) but churns.
	CacheSuperviseTTL time.Duration
	// DisableDeltaEstimator turns off the §4.5 queue-delta fix
	// (used by the oscillation ablation).
	DisableDeltaEstimator bool

	// Overload robustness (zero values leave each check off or at the
	// frontend package's own defaults).

	// RequestDeadline is the end-to-end budget stamped onto requests
	// that arrive without a context deadline; it propagates through
	// dispatch so every hop drops expired work. Zero = no deadline.
	RequestDeadline time.Duration
	// FEMaxInflight bounds each front end's admitted requests
	// (0 = frontend default Threads+QueueCap; negative disables).
	FEMaxInflight int
	// FEQueueHighWater sheds at admission when even the least-loaded
	// worker's estimated queue reaches this depth (0 = off).
	FEQueueHighWater float64

	// Front door (internal/edge).

	// EdgeListen, when non-empty, hosts the L7 front door on this
	// HTTP address ("host:port", port 0 picks a free port) — provided
	// the process carries the edge role (or the host-everything zero
	// Roles).
	EdgeListen string
	// FEHTTP, when non-empty, binds an HTTP adapter (edge.FEServer) on
	// this host for every local front end and advertises its address
	// in FE heartbeats — the per-replica listener the edge routes to.
	FEHTTP string
	// EdgeRetryBudget bounds edge retries as a fraction of requests
	// (0 disables transparent retry).
	EdgeRetryBudget float64

	// Observability (internal/obs).

	// TraceSampleRate samples 1 in N requests for distributed tracing
	// (0 = the obs package default of 64; 1 = every request; negative
	// disables sampling — forced spans for shed/degraded/expired
	// requests still record).
	TraceSampleRate int
	// TraceSlowThreshold, when positive, logs the full local span tree
	// of any request whose end-to-end latency exceeds it.
	TraceSlowThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.DedicatedNodes <= 0 {
		c.DedicatedNodes = 8
	}
	if c.ProcsPerNode <= 0 {
		c.ProcsPerNode = 8
	}
	if c.FrontEnds <= 0 {
		c.FrontEnds = 1
	}
	if c.Managers <= 0 {
		c.Managers = 1
	}
	if c.CacheParts <= 0 {
		c.CacheParts = 2
	}
	if c.CacheBudget <= 0 {
		c.CacheBudget = 64 << 20
	}
	if c.Registry == nil {
		c.Registry = tacc.NewRegistry()
	}
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = stub.DefaultBeaconInterval
	}
	if c.ReportInterval <= 0 {
		c.ReportInterval = c.BeaconInterval
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = stub.DefaultCallTimeout
	}
	if c.CacheSuperviseTTL <= 0 {
		c.CacheSuperviseTTL = 5 * c.ReportInterval
	}
	if c.FEThreads <= 0 {
		c.FEThreads = 64
	}
	if c.Policy == (manager.Policy{}) {
		c.Policy = manager.DefaultPolicy()
	}
	return c
}

// System is a running SNS deployment.
type System struct {
	cfg Config

	Net     *san.Network
	Cluster *cluster.Cluster
	DB      *profiledb.DB
	Profile *profiledb.ReadCache
	Mon     *monitor.Monitor // nil when the monitor role is remote
	// Bridge is the socket transport splicing this process into a
	// multi-process SAN; nil in single-process deployments.
	Bridge *transport.Bridge

	mu          sync.Mutex
	cacheNodes  map[string]san.Addr // local + remote partitions (FE view)
	localCaches map[string]bool     // partitions this process hosts
	mgrs        []*mgrReplica
	mgrEpochHW  uint64 // high-water election epoch across local replicas
	lastMgrFix  time.Time
	sup         *supervisor.Supervisor
	supNode     string
	fes         map[string]*frontend.FrontEnd
	feNodes     map[string]string
	feOrder     []string
	feHTTP      map[string]*edge.FEServer
	edge        *edge.Edge
	workerNodes map[string]string
	workerStubs map[string]*stub.WorkerStub

	workerSeq atomic.Int64
	rr        atomic.Uint64
	tmpDir    string
	stopped   atomic.Bool
}

// mgrReplica tracks one locally hosted manager replica across its
// respawns. The rank is stable; the Manager instance and handle are
// replaced each time the replica is respawned.
type mgrReplica struct {
	rank int
	gen  int // spawn generation, for distinct process names
	m    *manager.Manager
	h    *cluster.Handle
}

// nodeName/ovfName build prefix-qualified cluster node names — unique
// across processes when each supplies a distinct NodePrefix.
func nodeName(prefix string, i int) string { return fmt.Sprintf("%snode%d", prefix, i) }
func ovfName(prefix string, i int) string  { return fmt.Sprintf("%sovf%d", prefix, i) }

// CacheAddrs computes the deterministic SAN addresses the cache
// partitions of a process started with the given prefix and topology
// will hold: cache i lives on node i (mod dedicated). A front-end
// process uses this to reach partitions hosted by a peer process
// without a discovery protocol. Zero parts/dedicated take the Config
// defaults (2 partitions, 8 nodes).
func CacheAddrs(nodePrefix string, cacheParts, dedicatedNodes int) map[string]san.Addr {
	if cacheParts <= 0 {
		cacheParts = 2
	}
	if dedicatedNodes <= 0 {
		dedicatedNodes = 8
	}
	out := make(map[string]san.Addr, cacheParts)
	for i := 0; i < cacheParts; i++ {
		name := fmt.Sprintf("cache%d", i)
		out[name] = san.Addr{Node: nodeName(nodePrefix, i%dedicatedNodes), Proc: name}
	}
	return out
}

// Start builds and boots a system.
func Start(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if cfg.Transport.Listen != "" {
		cfg.WireMode = true // bodies must be bytes to cross processes
	}
	s := &System{
		cfg:         cfg,
		cacheNodes:  make(map[string]san.Addr),
		localCaches: make(map[string]bool),
		fes:         make(map[string]*frontend.FrontEnd),
		feNodes:     make(map[string]string),
		feHTTP:      make(map[string]*edge.FEServer),
		workerNodes: make(map[string]string),
		workerStubs: make(map[string]*stub.WorkerStub),
	}
	var netOpts []san.Option
	if cfg.WireMode {
		// Decode views ride along with the codec: []byte bodies alias
		// pooled receive buffers (see san.WithDecodeViews), and every
		// consumer in this tree honors the Lease/Release contract.
		netOpts = append(netOpts, san.WithCodec(stub.WireCodec{}), san.WithDecodeViews(true))
	}
	s.Net = san.NewNetwork(cfg.Seed, netOpts...)
	s.configureObs()
	if cfg.Transport.Listen != "" {
		id := cfg.Transport.ID
		if id == "" {
			id = cfg.NodePrefix // may still be empty; bridge then uses its listen addr
		}
		br, err := transport.New(transport.Config{
			Net:           s.Net,
			Listen:        cfg.Transport.Listen,
			Join:          cfg.Transport.Join,
			ID:            id,
			FlushBytes:    cfg.Transport.FlushBytes,
			FlushDelay:    cfg.Transport.FlushDelay,
			MaxBatchBytes: cfg.Transport.MaxBatchBytes,
		})
		if err != nil {
			return nil, err
		}
		s.Bridge = br
	}
	s.Cluster = cluster.New(s.Net)
	for i := 0; i < cfg.DedicatedNodes; i++ {
		s.Cluster.AddNode(nodeName(cfg.NodePrefix, i), false)
	}
	for i := 0; i < cfg.OverflowNodes; i++ {
		s.Cluster.AddNode(ovfName(cfg.NodePrefix, i), true)
	}

	// ACID island: the profile database.
	dir := cfg.ProfileDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "sns-profiles-*")
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		s.tmpDir = tmp
		dir = tmp
	}
	db, err := profiledb.Open(dir)
	if err != nil {
		s.cleanup()
		return nil, err
	}
	s.DB = db
	s.Profile = profiledb.NewReadCache(db)

	if s.cfg.Origin == nil {
		s.cfg.Origin = origin.NewSimulated(cfg.Seed)
	}

	// Per-process supervisor daemon — every role set gets one, so the
	// manager's process-peer duties reach into this process wherever
	// the manager itself lives. A local watchdog respawns it if it
	// dies: the supervisor must not be the one component nobody
	// supervises.
	if err := s.spawnSupervisor(); err != nil {
		s.cleanup()
		return nil, err
	}
	s.Cluster.OnExit(func(info cluster.ExitInfo) {
		if info.Proc == "sup" && !s.stopped.Load() {
			go func() { _ = s.spawnSupervisor() }()
		}
	})

	// Cache partitions. Placement comes from CacheAddrs — the same
	// function peer processes call — so the "computed address ==
	// actual address" contract that replaces a discovery protocol is
	// enforced by construction, not by keeping two formulas in sync.
	if cfg.Roles.caches() {
		for name, addr := range CacheAddrs(cfg.NodePrefix, cfg.CacheParts, cfg.DedicatedNodes) {
			svc := s.newCacheService(name, addr.Node)
			if _, err := s.Cluster.Spawn(addr.Node, svc); err != nil {
				s.cleanup()
				return nil, err
			}
			s.cacheNodes[name] = svc.Addr()
			s.localCaches[name] = true
		}
	}
	// Partitions hosted by peer processes join the front ends' view.
	for name, addr := range cfg.RemoteCaches {
		if _, local := s.localCaches[name]; !local {
			s.cacheNodes[name] = addr
		}
	}

	// Manager replicas: global rank 0 boots as the acting primary,
	// everyone else standby. The election (internal/manager) owns
	// primacy from here on.
	if cfg.Roles.manager() {
		for i := 0; i < cfg.Managers; i++ {
			rank := cfg.ManagerRank + i
			if err := s.spawnManagerReplica(rank, rank != 0, 0); err != nil {
				s.cleanup()
				return nil, err
			}
		}
	}

	// Monitor.
	if cfg.Roles.monitor() {
		s.Mon = monitor.New(monitor.Config{
			Node:         s.placeOrErr(),
			Net:          s.Net,
			SilenceAfter: 4 * cfg.ReportInterval,
		})
		if _, err := s.Cluster.Spawn(s.Mon.Addr().Node, s.Mon); err != nil {
			s.cleanup()
			return nil, err
		}
	}

	// Initial workers.
	if cfg.Roles.workers() {
		sp := &spawner{s: s}
		for class, n := range cfg.Workers {
			for i := 0; i < n; i++ {
				if _, err := sp.SpawnWorker(class, false); err != nil {
					s.cleanup()
					return nil, err
				}
			}
		}
	}

	// Span reporter: publishes this process's trace spans on the report
	// group and ingests its peers', so any process can answer
	// /trace?id= with the cluster-wide tree.
	rep := &obsReporter{
		name:     "obsrep",
		node:     s.placeOrErr(),
		net:      s.Net,
		interval: cfg.ReportInterval,
	}
	if _, err := s.Cluster.Spawn(rep.node, rep); err != nil {
		s.cleanup()
		return nil, err
	}

	// Front ends.
	if cfg.Roles.frontEnds() {
		for i := 0; i < cfg.FrontEnds; i++ {
			name := fmt.Sprintf("fe%d", i)
			node := s.placeOrErr()
			if err := s.spawnFrontEnd(name, node); err != nil {
				s.cleanup()
				return nil, err
			}
		}
	}

	// Front door: one L7 edge proxy balancing across the FE replicas
	// it hears heartbeating (local and peer-process alike).
	if cfg.EdgeListen != "" && cfg.Roles.edge() {
		// Generous pool TTL: an FE being SIGKILLed and respawned must
		// keep its (ejected) slot across the gap so the probe
		// readmission path runs. The kill→respawn window is wall-clock
		// (detection sweep + spawn), not a beacon multiple, so the TTL
		// gets an absolute floor even under very fast test beacons.
		poolTTL := 20 * cfg.BeaconInterval
		if poolTTL < 2*time.Second {
			poolTTL = 2 * time.Second
		}
		eg, err := edge.New(edge.Config{
			Name:        "edge",
			Node:        s.placeOrErr(),
			Net:         s.Net,
			Listen:      cfg.EdgeListen,
			RetryBudget: cfg.EdgeRetryBudget,
			Pool: edge.PoolConfig{
				TTL:        poolTTL,
				ProbeAfter: 2 * cfg.BeaconInterval,
				Seed:       cfg.Seed,
			},
			RequestTimeout: cfg.RequestDeadline,
		})
		if err != nil {
			s.cleanup()
			return nil, err
		}
		if _, err := s.Cluster.Spawn(eg.Addr().Node, eg); err != nil {
			_ = eg.Close()
			s.cleanup()
			return nil, err
		}
		s.mu.Lock()
		s.edge = eg
		s.mu.Unlock()
	}
	return s, nil
}

// newCacheService builds one cache partition process with its
// supervision heartbeat wired to the control group, so whichever
// process hosts the manager carries the cache's process-peer duty.
func (s *System) newCacheService(name, node string) *vcache.Service {
	svc := vcache.NewService(name, s.Net, node, vcache.NewPartition(s.cfg.CacheBudget, nil))
	svc.ServiceTime = s.cfg.CacheServiceTime
	svc.HeartbeatGroup = stub.GroupControl
	svc.HeartbeatInterval = s.cfg.ReportInterval
	return svc
}

func (s *System) placeOrErr() string {
	return s.Cluster.Place(false, nil)
}

func (s *System) cleanup() {
	s.Cluster.StopAll()
	s.mu.Lock()
	adapters := make([]*edge.FEServer, 0, len(s.feHTTP))
	for _, a := range s.feHTTP {
		adapters = append(adapters, a)
	}
	eg := s.edge
	s.mu.Unlock()
	for _, a := range adapters {
		_ = a.Close()
	}
	if eg != nil {
		_ = eg.Close()
	}
	if s.Bridge != nil {
		_ = s.Bridge.Close()
	}
	s.Net.Close()
	if s.DB != nil {
		s.DB.Close()
	}
	if s.tmpDir != "" {
		os.RemoveAll(s.tmpDir)
	}
}

// Stop shuts the whole system down.
func (s *System) Stop() {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	s.cleanup()
}

// spawnManagerReplica starts (or restarts) one manager replica. Each
// spawn generation gets a distinct process name so a lingering old
// instance can never collide with its replacement; initialEpoch seeds
// the replica's election epoch so a respawn re-enters the cluster
// already knowing roughly where the epoch stands (its first claim
// outbids the epoch it died holding instead of a long-deposed one).
func (s *System) spawnManagerReplica(rank int, standby bool, initialEpoch uint64) error {
	s.mu.Lock()
	var rep *mgrReplica
	for _, r := range s.mgrs {
		if r.rank == rank {
			rep = r
			break
		}
	}
	if rep == nil {
		rep = &mgrReplica{rank: rank}
		s.mgrs = append(s.mgrs, rep)
	}
	rep.gen++
	name := "manager"
	if rank > 0 {
		name = fmt.Sprintf("manager-r%d", rank)
	}
	if rep.gen > 1 {
		name = fmt.Sprintf("%s.%d", name, rep.gen)
	}
	s.mu.Unlock()
	node := s.placeOrErr()
	if node == "" {
		return fmt.Errorf("core: no node for manager")
	}
	m := manager.New(manager.Config{
		Name:           name,
		Node:           node,
		Net:            s.Net,
		Policy:         s.cfg.Policy,
		BeaconInterval: s.cfg.BeaconInterval,
		WorkerTTL:      5 * s.cfg.ReportInterval,
		FETTL:          6 * s.cfg.BeaconInterval,
		CacheTTL:       s.cfg.CacheSuperviseTTL,
		Prefix:         s.cfg.NodePrefix,
		CmdTimeout:     s.cfg.CallTimeout,
		Spawner:        &spawner{s: s},
		Rank:           rank,
		Standby:        standby,
		InitialEpoch:   initialEpoch,
	})
	h, err := s.Cluster.Spawn(node, m)
	if err != nil {
		return err
	}
	s.mu.Lock()
	rep.m = m
	rep.h = h
	s.mu.Unlock()
	return nil
}

// Manager returns the acting primary manager replica (an alias for
// PrimaryManager — existing callers predate replication and always
// mean "the manager that is actually running the cluster").
func (s *System) Manager() *manager.Manager { return s.PrimaryManager() }

// PrimaryManager returns the local replica currently acting as
// primary — the newest-epoch one if several claim it (a deposed
// replica that has not yet heard the winner's beacon may still say
// yes). With no acting primary it returns the newest-epoch replica,
// so callers polling "who won?" always have a candidate to watch.
func (s *System) PrimaryManager() *manager.Manager {
	// Snapshot the manager pointers under the lock — the replica slots
	// themselves are rewritten by respawns.
	s.mu.Lock()
	ms := make([]*manager.Manager, 0, len(s.mgrs))
	for _, r := range s.mgrs {
		if r.m != nil {
			ms = append(ms, r.m)
		}
	}
	s.mu.Unlock()
	var best, fallback *manager.Manager
	var bestEpoch, fbEpoch uint64
	for _, m := range ms {
		e := m.Epoch()
		if fallback == nil || e > fbEpoch {
			fallback, fbEpoch = m, e
		}
		if m.IsPrimary() && (best == nil || e > bestEpoch) {
			best, bestEpoch = m, e
		}
	}
	if best != nil {
		return best
	}
	return fallback
}

// ManagerReplicas returns every locally hosted manager replica in
// rank order (standbys included), for tests and operator tooling.
func (s *System) ManagerReplicas() []*manager.Manager {
	s.mu.Lock()
	type slot struct {
		rank int
		m    *manager.Manager
	}
	slots := make([]slot, 0, len(s.mgrs))
	for _, r := range s.mgrs {
		if r.m != nil {
			slots = append(slots, slot{r.rank, r.m})
		}
	}
	s.mu.Unlock()
	sort.Slice(slots, func(i, j int) bool { return slots[i].rank < slots[j].rank })
	out := make([]*manager.Manager, 0, len(slots))
	for _, sl := range slots {
		out = append(out, sl.m)
	}
	return out
}

// Supervisor returns this process's supervisor daemon.
func (s *System) Supervisor() *supervisor.Supervisor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sup
}

// spawnSupervisor starts (or restarts) the per-process supervisor. The
// address is stable across respawns — a restarted daemon reclaims its
// name, and managers keep delegating to the same place.
func (s *System) spawnSupervisor() error {
	if s.stopped.Load() {
		return fmt.Errorf("core: system stopped")
	}
	s.mu.Lock()
	node := s.supNode
	s.mu.Unlock()
	// If the daemon's node died, it moves; the fresh hello re-teaches
	// every manager the new address (the table is address-keyed).
	for _, n := range s.Cluster.Nodes() {
		if n.ID == node && !n.Alive {
			node = ""
			break
		}
	}
	if node == "" {
		node = s.placeOrErr()
		if node == "" {
			return fmt.Errorf("core: no node for supervisor")
		}
	}
	sup := supervisor.New(supervisor.Config{
		Node:              node,
		Net:               s.Net,
		Prefix:            s.cfg.NodePrefix,
		Host:              supHost{s: s},
		HeartbeatGroup:    stub.GroupControl,
		HeartbeatInterval: s.cfg.ReportInterval,
		DisableKind:       stub.MsgDisable,
		EnableKind:        stub.MsgEnable,
		// The supervisor cannot import the stub package (stub's wire
		// codec encodes supervisor commands), so the beacon-epoch
		// extraction it fences stale commands with is injected here.
		EpochFrom: func(kind string, body any) (uint64, bool) {
			if kind != stub.MsgBeacon {
				return 0, false
			}
			if b, ok := body.(stub.Beacon); ok {
				return b.Epoch, true
			}
			return 0, false
		},
	})
	if _, err := s.Cluster.Spawn(node, sup); err != nil {
		return err
	}
	s.mu.Lock()
	s.sup = sup
	s.supNode = node
	s.mu.Unlock()
	return nil
}

// restartManager is the front ends' process-peer action ("the front
// end detects and restarts a crashed manager", §3.1.3). A cooldown
// keeps multiple front ends from racing to restart it. In a
// multi-process deployment only the process hosting the manager role
// may act — a front-end-only process inferring silence must not spawn
// a second manager of its own.
//
// With replication, the election — not this watchdog — owns primacy:
// dead replicas are respawned as standbys so the replica set stays at
// full strength, and a surviving standby's takeover is what restores
// beacons. Only when every local replica is dead does the first
// respawn boot as an immediate primary, seeded past the local epoch
// high-water mark so its beacons outbid every stub's and supervisor's
// memory of the dead regime.
func (s *System) restartManager() {
	if s.stopped.Load() || !s.cfg.Roles.manager() {
		return
	}
	s.mu.Lock()
	if time.Since(s.lastMgrFix) < 2*s.cfg.BeaconInterval {
		s.mu.Unlock()
		return
	}
	s.lastMgrFix = time.Now()
	type slot struct {
		rank int
		m    *manager.Manager
		h    *cluster.Handle
	}
	reps := make([]slot, 0, len(s.mgrs))
	for _, r := range s.mgrs {
		reps = append(reps, slot{r.rank, r.m, r.h})
	}
	s.mu.Unlock()

	var hw uint64
	var dead []slot
	live := 0
	for _, r := range reps {
		if r.m != nil {
			// Readable even after the replica's goroutine died: the
			// epoch a killed primary last held is exactly what its
			// replacement's first claim must outbid.
			if e := r.m.Epoch(); e > hw {
				hw = e
			}
		}
		if r.h == nil {
			continue
		}
		select {
		case <-r.h.Done():
			dead = append(dead, r)
		default:
			live++
		}
	}
	s.mu.Lock()
	if hw > s.mgrEpochHW {
		s.mgrEpochHW = hw
	}
	hw = s.mgrEpochHW
	s.mu.Unlock()
	if len(dead) == 0 {
		return // silence without a corpse: the election owns this
	}
	for i, r := range dead {
		standby := live > 0 || i > 0
		_ = s.spawnManagerReplica(r.rank, standby, hw)
	}
}

// spawnFrontEnd builds and spawns one front end.
func (s *System) spawnFrontEnd(name, node string) error {
	if node == "" {
		return fmt.Errorf("core: no node for %s", name)
	}
	// Remote congestion sheds upstream: each FE's admission estimator
	// samples the bridge's backpressure counter, so a stalled peer
	// process shows up as saturation here instead of as silent frame
	// loss.
	var backpressureFn func() uint64
	if s.Bridge != nil {
		br := s.Bridge
		backpressureFn = func() uint64 { return br.Stats().Backpressure }
	}
	// Bind the replica's HTTP adapter before building the front end:
	// the bound address goes into the config so the very first
	// heartbeat already advertises it. A respawn rebinds (fresh port);
	// the edge's pool entry is keyed by SAN address, so the new
	// address refreshes the existing slot and the half-open probe
	// readmits it.
	var fesrv *edge.FEServer
	if s.cfg.FEHTTP != "" {
		var err error
		fesrv, err = edge.NewFEServer(s.cfg.FEHTTP)
		if err != nil {
			return err
		}
	}
	httpAddr := ""
	if fesrv != nil {
		httpAddr = fesrv.Addr()
	}
	fe := frontend.New(frontend.Config{
		Name:              name,
		Node:              node,
		Net:               s.Net,
		Rules:             s.cfg.Rules,
		Profiles:          s.Profile,
		Origin:            s.cfg.Origin,
		CacheNodes:        s.CacheNodes(),
		Threads:           s.cfg.FEThreads,
		CacheTTL:          s.cfg.CacheTTL,
		CacheTimeout:      s.cfg.CacheTimeout,
		HeartbeatInterval: s.cfg.BeaconInterval,
		HTTPAddr:          httpAddr,
		MinDistillSize:    s.cfg.MinDistillSize,
		RequestDeadline:   s.cfg.RequestDeadline,
		MaxInflight:       s.cfg.FEMaxInflight,
		QueueHighWater:    s.cfg.FEQueueHighWater,
		BackpressureFn:    backpressureFn,
		ManagerStub: stub.ManagerStubConfig{
			Seed:             s.cfg.Seed,
			CallTimeout:      s.cfg.CallTimeout,
			UseDelta:         !s.cfg.DisableDeltaEstimator,
			WorkerTTL:        20 * s.cfg.BeaconInterval,
			ManagerTimeout:   5 * s.cfg.BeaconInterval,
			OnManagerSilence: s.restartManager,
		},
	})
	if _, err := s.Cluster.Spawn(node, fe); err != nil {
		if fesrv != nil {
			_ = fesrv.Close()
		}
		return err
	}
	if fesrv != nil {
		fesrv.Serve(fe)
	}
	s.mu.Lock()
	if old := s.feHTTP[name]; old != nil {
		// Respawn: retire the dead instance's adapter.
		_ = old.Close()
	}
	if fesrv != nil {
		s.feHTTP[name] = fesrv
	} else {
		delete(s.feHTTP, name)
	}
	s.fes[name] = fe
	s.feNodes[name] = node
	if !contains(s.feOrder, name) {
		s.feOrder = append(s.feOrder, name)
	}
	s.mu.Unlock()
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Edge returns the front-door proxy this process hosts (nil when the
// edge role or EdgeListen is unset).
func (s *System) Edge() *edge.Edge {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.edge
}

// FrontEndHTTPAddr returns the HTTP adapter address of a local front
// end ("" when FEHTTP is unset or the name is unknown).
func (s *System) FrontEndHTTPAddr(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a := s.feHTTP[name]; a != nil {
		return a.Addr()
	}
	return ""
}

// FrontEnds returns the live front-end instances in creation order.
func (s *System) FrontEnds() []*frontend.FrontEnd {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*frontend.FrontEnd, 0, len(s.feOrder))
	for _, name := range s.feOrder {
		if fe, ok := s.fes[name]; ok {
			out = append(out, fe)
		}
	}
	return out
}

// WaitReady blocks until the system is serviceable. In a
// single-process deployment that means every front end's receive loop
// is running and has heard a manager beacon, and the initially
// configured workers have registered with the manager. A process
// hosting only a subset of roles checks what it can observe: a
// local manager counts registrations (from this process and its
// peers alike); front ends without a local manager instead wait until
// their stub's beacon cache holds every configured worker class at
// full strength — the cluster-wide view a beacon carries. It returns
// false on timeout.
func (s *System) WaitReady(timeout time.Duration) bool {
	want := 0
	for _, n := range s.cfg.Workers {
		want += n
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ready := true
		if s.cfg.Roles.manager() {
			// The primary's (or, in a standby-only process, the beacon
			// mirror's) worker table carries the cluster-wide count.
			if m := s.PrimaryManager(); m == nil || m.Stats().Workers < want {
				ready = false
			}
		}
		if s.cfg.Roles.frontEnds() {
			fes := s.FrontEnds()
			if len(fes) == 0 {
				ready = false
			}
			for _, fe := range fes {
				if !fe.Running() || fe.ManagerStub().Stats().BeaconsSeen == 0 {
					ready = false
					break
				}
				if !s.cfg.Roles.manager() {
					// The manager is remote: readiness is judged from
					// the worker inventory its beacons deliver.
					for class, n := range s.cfg.Workers {
						if len(fe.ManagerStub().Workers(class)) < n {
							ready = false
							break
						}
					}
				}
			}
		}
		if eg := s.Edge(); eg != nil {
			// The front door is serviceable once its listener is live
			// and it has heard at least one routable FE heartbeat.
			if !eg.Running() || eg.PoolStats().Healthy < 1 {
				ready = false
			}
		}
		if ready {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// Request submits a client request, round-robining across live front
// ends — the in-process analogue of the paper's client-side load
// balancing (JavaScript auto-config / round-robin DNS, §3.1.2).
func (s *System) Request(ctx context.Context, url, user string) (frontend.Response, error) {
	fes := s.FrontEnds()
	if len(fes) == 0 {
		return frontend.Response{}, fmt.Errorf("core: no front ends")
	}
	start := int(s.rr.Add(1))
	var lastErr error
	for i := 0; i < len(fes); i++ {
		fe := fes[(start+i)%len(fes)]
		if !fe.Running() {
			continue // masks transient front end failures
		}
		resp, err := fe.Do(ctx, frontend.Request{URL: url, User: user})
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("core: no running front end")
	}
	return frontend.Response{}, lastErr
}

// SetProfile writes one user preference through to the ACID store.
func (s *System) SetProfile(user, key, val string) error {
	return s.Profile.Set(user, key, val)
}

// spawner implements manager.Spawner against the live cluster.
type spawner struct{ s *System }

// SpawnWorker places a fresh worker stub on the least-loaded eligible
// node.
func (sp *spawner) SpawnWorker(class string, overflow bool) (stub.WorkerInfo, error) {
	s := sp.s
	w, err := s.cfg.Registry.New(class)
	if err != nil {
		return stub.WorkerInfo{}, err
	}
	var node string
	if overflow {
		node = s.Cluster.Place(true, func(n cluster.Node) bool { return n.Overflow })
	} else {
		node = s.Cluster.Place(false, func(n cluster.Node) bool {
			return len(n.Procs) < s.cfg.ProcsPerNode
		})
		if node == "" {
			// Dedicated pool exhausted: recruit overflow (§2.2.3).
			node = s.Cluster.Place(true, func(n cluster.Node) bool { return n.Overflow })
			overflow = node != ""
		}
	}
	if node == "" {
		return stub.WorkerInfo{}, fmt.Errorf("core: no capacity for worker class %s", class)
	}
	// Prefix-qualified like node names, so replicated worker roles
	// across processes never collide in the manager's id-keyed table.
	id := fmt.Sprintf("%s%s.%d", s.cfg.NodePrefix, class, s.workerSeq.Add(1))
	ws := stub.NewWorkerStub(id, node, w, s.Net, stub.WorkerConfig{
		ReportInterval: s.cfg.ReportInterval,
		Overflow:       overflow,
	})
	if _, err := s.Cluster.Spawn(node, ws); err != nil {
		return stub.WorkerInfo{}, err
	}
	s.mu.Lock()
	s.workerNodes[id] = node
	s.workerStubs[id] = ws
	s.mu.Unlock()
	return ws.Info(), nil
}

// ReapWorker stops a worker process.
func (sp *spawner) ReapWorker(id string) error {
	s := sp.s
	s.mu.Lock()
	node, ok := s.workerNodes[id]
	if ok {
		delete(s.workerNodes, id)
		delete(s.workerStubs, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown worker %s", id)
	}
	return s.Cluster.KillProcess(node, id)
}

// RestartFrontEnd is the manager's process-peer action. Restart means
// stop-then-start: if the silence was a false alarm (a live but slow
// front end), the old instance is killed first so the replacement can
// claim its name — the paper's watchers restart peers, they never try
// to coexist with them.
func (sp *spawner) RestartFrontEnd(name string) error {
	s := sp.s
	if s.stopped.Load() {
		return fmt.Errorf("core: system stopped")
	}
	s.mu.Lock()
	node := s.feNodes[name]
	s.mu.Unlock()
	if node == "" {
		return fmt.Errorf("core: unknown front end %s", name)
	}
	_ = s.Cluster.KillProcess(node, name) // usually already dead
	// If the node itself died, move the front end.
	for _, n := range s.Cluster.Nodes() {
		if n.ID == node && !n.Alive {
			node = s.placeOrErr()
			break
		}
	}
	return s.spawnFrontEnd(name, node)
}

// RestartCache is the manager's process-peer action for cache
// services: kill any lingering instance, then respawn the partition
// (empty — it is a cache) under the same name. The address is
// preserved when the node survives, so front ends re-absorb the
// partition with no reconfiguration; if the node died the service
// moves and the local front ends' clients are re-pointed.
func (sp *spawner) RestartCache(name string) error {
	s := sp.s
	if s.stopped.Load() {
		return fmt.Errorf("core: system stopped")
	}
	s.mu.Lock()
	addr, ok := s.cacheNodes[name]
	local := s.localCaches[name]
	s.mu.Unlock()
	if !ok || !local {
		// A heartbeat from a partition another process hosts: that
		// process's manager-peer (or supervisor) owns the restart.
		return fmt.Errorf("core: cache %s is not hosted here", name)
	}
	_ = s.Cluster.KillProcess(addr.Node, name) // usually already dead
	node := addr.Node
	for _, n := range s.Cluster.Nodes() {
		if n.ID == node && !n.Alive {
			node = s.placeOrErr()
			break
		}
	}
	if node == "" {
		return fmt.Errorf("core: no node for cache %s", name)
	}
	svc := s.newCacheService(name, node)
	if _, err := s.Cluster.Spawn(node, svc); err != nil {
		return err
	}
	if newAddr := svc.Addr(); newAddr != addr {
		s.mu.Lock()
		s.cacheNodes[name] = newAddr
		fes := make([]*frontend.FrontEnd, 0, len(s.fes))
		for _, fe := range s.fes {
			fes = append(fes, fe)
		}
		s.mu.Unlock()
		for _, fe := range fes {
			fe.Cache().RemoveNode(name)
			fe.Cache().AddNode(name, newAddr)
		}
	}
	return nil
}

// HasDedicatedCapacity reports whether any dedicated node has room.
func (sp *spawner) HasDedicatedCapacity() bool {
	s := sp.s
	node := s.Cluster.Place(false, func(n cluster.Node) bool {
		return len(n.Procs) < s.cfg.ProcsPerNode
	})
	return node != ""
}

// supHost adapts the System into the supervisor's lever on this
// process (supervisor.Host): the same restart duties the manager's
// spawner performs, now reachable from a manager in any process.
type supHost struct{ s *System }

func (h supHost) RestartFrontEnd(name string) error { return (&spawner{s: h.s}).RestartFrontEnd(name) }
func (h supHost) RestartCache(name string) error    { return (&spawner{s: h.s}).RestartCache(name) }
func (h supHost) RestartWorker(id string) error     { return h.s.restartWorker(id) }

func (h supHost) SpawnWorker(class string) error {
	sp := &spawner{s: h.s}
	_, err := sp.SpawnWorker(class, !sp.HasDedicatedCapacity())
	return err
}

func (h supHost) KillComponent(name string) error { return h.s.KillComponent(name) }

func (h supHost) ComponentAddr(name string) (san.Addr, bool) { return h.s.ComponentAddr(name) }

// restartWorker kills and respawns a worker under the same id and
// class — the supervisor's hot-upgrade restart. The stub's context
// cancellation deregisters it cleanly (a voluntary departure, so the
// manager spawns no replacement), and the fresh stub re-registers on
// the next beacon as the "upgraded binary".
func (s *System) restartWorker(id string) error {
	if s.stopped.Load() {
		return fmt.Errorf("core: system stopped")
	}
	s.mu.Lock()
	ws := s.workerStubs[id]
	node := s.workerNodes[id]
	s.mu.Unlock()
	if ws == nil {
		return fmt.Errorf("core: unknown worker %s", id)
	}
	info := ws.Info()
	w, err := s.cfg.Registry.New(info.Class)
	if err != nil {
		return err
	}
	_ = s.Cluster.KillProcess(node, id) // graceful: the stub deregisters on its way out
	for _, n := range s.Cluster.Nodes() {
		if n.ID == node && !n.Alive {
			node = s.placeOrErr()
			break
		}
	}
	if node == "" {
		return fmt.Errorf("core: no node for worker %s", id)
	}
	ws2 := stub.NewWorkerStub(id, node, w, s.Net, stub.WorkerConfig{
		ReportInterval: s.cfg.ReportInterval,
		Overflow:       info.Overflow,
	})
	if _, err := s.Cluster.Spawn(node, ws2); err != nil {
		return err
	}
	s.mu.Lock()
	s.workerNodes[id] = node
	s.workerStubs[id] = ws2
	s.mu.Unlock()
	return nil
}

// KillComponent crashes any locally hosted component by name — the
// supervisor's remote fault-injection op for multi-process chaos.
func (s *System) KillComponent(name string) error {
	s.mu.Lock()
	_, isWorker := s.workerStubs[name]
	_, isFE := s.fes[name]
	isCache := s.localCaches[name]
	s.mu.Unlock()
	switch {
	case isWorker:
		return s.KillWorker(name)
	case isCache:
		return s.KillCache(name)
	case isFE:
		return s.KillFrontEnd(name)
	}
	return fmt.Errorf("core: no component %s hosted here", name)
}

// ComponentAddr resolves a locally hosted component's SAN address.
func (s *System) ComponentAddr(name string) (san.Addr, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ws, ok := s.workerStubs[name]; ok {
		return ws.Addr(), true
	}
	if _, ok := s.fes[name]; ok {
		if node := s.feNodes[name]; node != "" {
			return san.Addr{Node: node, Proc: name}, true
		}
	}
	if s.localCaches[name] {
		return s.cacheNodes[name], true
	}
	for _, r := range s.mgrs {
		if r.m != nil && r.m.ID() == name {
			return r.m.Addr(), true
		}
	}
	return san.Addr{}, false
}

// KillWorker crashes a worker abruptly (fault injection for tests and
// experiments): its endpoint drops off the SAN before the process is
// cancelled, so no deregistration reaches the manager — the loss must
// be inferred by timeout, exactly as for a real crash (§3.1.3).
func (s *System) KillWorker(id string) error {
	s.mu.Lock()
	node, ok := s.workerNodes[id]
	if ok {
		delete(s.workerNodes, id)
		delete(s.workerStubs, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown worker %s", id)
	}
	s.Net.Drop(san.Addr{Node: node, Proc: id})
	// The endpoint closure usually makes the stub exit on its own;
	// a racing "already gone" from the cluster is success here.
	if err := s.Cluster.KillProcess(node, id); err != nil && !s.stopped.Load() {
		return nil
	}
	return nil
}

// KillFrontEnd crashes a front end process.
func (s *System) KillFrontEnd(name string) error {
	s.mu.Lock()
	node := s.feNodes[name]
	s.mu.Unlock()
	if node == "" {
		return fmt.Errorf("core: unknown front end %s", name)
	}
	return s.Cluster.KillProcess(node, name)
}

// KillManager crashes the acting primary manager replica (fault
// injection). Standby replicas are left running — surviving the
// primary's death is their whole job; the election promotes one
// within ElectionTimeout plus its rank stagger.
func (s *System) KillManager() error {
	type slot struct {
		m *manager.Manager
		h *cluster.Handle
	}
	s.mu.Lock()
	reps := make([]slot, 0, len(s.mgrs))
	for _, r := range s.mgrs {
		if r.m != nil && r.h != nil {
			reps = append(reps, slot{r.m, r.h})
		}
	}
	s.mu.Unlock()
	var victim *slot
	var vEpoch uint64
	var anyLive *slot
	for i := range reps {
		r := &reps[i]
		select {
		case <-r.h.Done():
			continue
		default:
		}
		if anyLive == nil {
			anyLive = r
		}
		if e := r.m.Epoch(); r.m.IsPrimary() && (victim == nil || e > vEpoch) {
			victim, vEpoch = r, e
		}
	}
	if victim == nil {
		victim = anyLive // mid-election: kill any live replica
	}
	if victim == nil {
		return fmt.Errorf("core: no manager")
	}
	s.mu.Lock()
	if vEpoch > s.mgrEpochHW {
		s.mgrEpochHW = vEpoch
	}
	s.mu.Unlock()
	victim.h.Kill()
	return nil
}

// Workers returns the ids of currently tracked worker processes
// (spawned and not yet reaped/killed), sorted.
func (s *System) Workers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.workerNodes))
	for id := range s.workerNodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// WorkerStub returns the live stub for a tracked worker id (nil if
// unknown), giving chaos harnesses access to the per-worker fault
// injection knobs (InjectSlowdown, InjectHang).
func (s *System) WorkerStub(id string) *stub.WorkerStub {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workerStubs[id]
}

// WorkerNode returns the node hosting a tracked worker ("" if
// unknown).
func (s *System) WorkerNode(id string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workerNodes[id]
}

// FrontEndNode returns the node hosting a front end ("" if unknown).
func (s *System) FrontEndNode(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.feNodes[name]
}

// CacheNodes returns the cache partition addresses (local and
// remote).
func (s *System) CacheNodes() map[string]san.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]san.Addr, len(s.cacheNodes))
	for k, v := range s.cacheNodes {
		out[k] = v
	}
	return out
}

// Caches returns the names of cache partitions hosted by this
// process, sorted.
func (s *System) Caches() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.localCaches))
	for name := range s.localCaches {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// KillCache crashes a locally hosted cache service abruptly (fault
// injection): its endpoint drops off the SAN before the process is
// cancelled, so no goodbye traffic is sent — the manager must infer
// the loss from heartbeat silence, exactly as for a real crash.
func (s *System) KillCache(name string) error {
	s.mu.Lock()
	addr, ok := s.cacheNodes[name]
	local := s.localCaches[name]
	s.mu.Unlock()
	if !ok || !local {
		return fmt.Errorf("core: unknown local cache %s", name)
	}
	s.Net.Drop(addr)
	// The endpoint closure usually makes the service exit on its own;
	// racing "already gone" is success, as with KillWorker.
	_ = s.Cluster.KillProcess(addr.Node, name)
	return nil
}
