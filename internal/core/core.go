// Package core is the off-the-shelf SNS platform (paper §2): it
// assembles the cluster, SAN, manager, front ends, cache partitions,
// monitor, and profile database into a running system, and wires the
// process-peer fault-tolerance loops (front ends restart the manager;
// the manager restarts front ends and workers).
//
// A new service is exactly what the paper promises: register TACC
// worker classes, supply a dispatch rule, call Start. Everything below
// the Service/TACC layers — scaling, load balancing, overflow, failure
// management, monitoring — comes from here, unchanged, for every
// service.
package core

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/frontend"
	"repro/internal/manager"
	"repro/internal/monitor"
	"repro/internal/origin"
	"repro/internal/profiledb"
	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/tacc"
	"repro/internal/vcache"
)

// Config describes a deployment.
type Config struct {
	Seed int64

	// WireMode serializes every SAN message body through the stub wire
	// codec on send and decodes it on delivery, so inter-process
	// messages cross the SAN as bytes exactly as they would a
	// production interconnect. Chaos runs enable this by default.
	WireMode bool

	// Topology.
	DedicatedNodes int // worker/cache/FE hosts (default 8)
	OverflowNodes  int // burst-absorbing pool (§2.2.3)
	ProcsPerNode   int // capacity heuristic per node (default 8)

	// Components.
	FrontEnds  int
	CacheParts int
	// CacheBudget is bytes per cache partition (default 64 MiB).
	CacheBudget int64
	// Workers maps class -> initial replica count.
	Workers map[string]int

	// Service definition.
	Registry *tacc.Registry
	Rules    tacc.DispatchRule
	Origin   origin.Fetcher

	// ProfileDir holds the ACID profile database; empty uses a
	// fresh temporary directory.
	ProfileDir string

	// Tuning.
	Policy         manager.Policy
	BeaconInterval time.Duration
	ReportInterval time.Duration
	CallTimeout    time.Duration
	FEThreads      int
	CacheTTL       time.Duration
	CacheTimeout   time.Duration // per-lookup vcache bound (0 = client default)
	MinDistillSize int
	// CacheServiceTime optionally models per-hit cache cost (§4.4).
	CacheServiceTime func() time.Duration
	// DisableDeltaEstimator turns off the §4.5 queue-delta fix
	// (used by the oscillation ablation).
	DisableDeltaEstimator bool
}

func (c Config) withDefaults() Config {
	if c.DedicatedNodes <= 0 {
		c.DedicatedNodes = 8
	}
	if c.ProcsPerNode <= 0 {
		c.ProcsPerNode = 8
	}
	if c.FrontEnds <= 0 {
		c.FrontEnds = 1
	}
	if c.CacheParts <= 0 {
		c.CacheParts = 2
	}
	if c.CacheBudget <= 0 {
		c.CacheBudget = 64 << 20
	}
	if c.Registry == nil {
		c.Registry = tacc.NewRegistry()
	}
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = stub.DefaultBeaconInterval
	}
	if c.ReportInterval <= 0 {
		c.ReportInterval = c.BeaconInterval
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = stub.DefaultCallTimeout
	}
	if c.FEThreads <= 0 {
		c.FEThreads = 64
	}
	if c.Policy == (manager.Policy{}) {
		c.Policy = manager.DefaultPolicy()
	}
	return c
}

// System is a running SNS deployment.
type System struct {
	cfg Config

	Net     *san.Network
	Cluster *cluster.Cluster
	DB      *profiledb.DB
	Profile *profiledb.ReadCache
	Mon     *monitor.Monitor

	cacheNodes map[string]san.Addr

	mu          sync.Mutex
	mgr         *manager.Manager
	mgrHandle   *cluster.Handle
	mgrEpoch    int
	lastMgrFix  time.Time
	fes         map[string]*frontend.FrontEnd
	feNodes     map[string]string
	feOrder     []string
	workerNodes map[string]string
	workerStubs map[string]*stub.WorkerStub

	workerSeq atomic.Int64
	rr        atomic.Uint64
	tmpDir    string
	stopped   atomic.Bool
}

// Start builds and boots a system.
func Start(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	s := &System{
		cfg:         cfg,
		cacheNodes:  make(map[string]san.Addr),
		fes:         make(map[string]*frontend.FrontEnd),
		feNodes:     make(map[string]string),
		workerNodes: make(map[string]string),
		workerStubs: make(map[string]*stub.WorkerStub),
	}
	var netOpts []san.Option
	if cfg.WireMode {
		netOpts = append(netOpts, san.WithCodec(stub.WireCodec{}))
	}
	s.Net = san.NewNetwork(cfg.Seed, netOpts...)
	s.Cluster = cluster.New(s.Net)
	for i := 0; i < cfg.DedicatedNodes; i++ {
		s.Cluster.AddNode(fmt.Sprintf("node%d", i), false)
	}
	for i := 0; i < cfg.OverflowNodes; i++ {
		s.Cluster.AddNode(fmt.Sprintf("ovf%d", i), true)
	}

	// ACID island: the profile database.
	dir := cfg.ProfileDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "sns-profiles-*")
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		s.tmpDir = tmp
		dir = tmp
	}
	db, err := profiledb.Open(dir)
	if err != nil {
		s.cleanup()
		return nil, err
	}
	s.DB = db
	s.Profile = profiledb.NewReadCache(db)

	if s.cfg.Origin == nil {
		s.cfg.Origin = origin.NewSimulated(cfg.Seed)
	}

	// Cache partitions.
	for i := 0; i < cfg.CacheParts; i++ {
		name := fmt.Sprintf("cache%d", i)
		node := s.placeOrErr()
		if node == "" {
			s.cleanup()
			return nil, fmt.Errorf("core: no node for %s", name)
		}
		svc := vcache.NewService(name, s.Net, node, vcache.NewPartition(cfg.CacheBudget, nil))
		svc.ServiceTime = cfg.CacheServiceTime
		if _, err := s.Cluster.Spawn(node, svc); err != nil {
			s.cleanup()
			return nil, err
		}
		s.cacheNodes[name] = svc.Addr()
	}

	// Manager.
	if err := s.spawnManager(); err != nil {
		s.cleanup()
		return nil, err
	}

	// Monitor.
	s.Mon = monitor.New(monitor.Config{
		Node:         s.placeOrErr(),
		Net:          s.Net,
		SilenceAfter: 4 * cfg.ReportInterval,
	})
	if _, err := s.Cluster.Spawn(s.Mon.Addr().Node, s.Mon); err != nil {
		s.cleanup()
		return nil, err
	}

	// Initial workers.
	sp := &spawner{s: s}
	for class, n := range cfg.Workers {
		for i := 0; i < n; i++ {
			if _, err := sp.SpawnWorker(class, false); err != nil {
				s.cleanup()
				return nil, err
			}
		}
	}

	// Front ends.
	for i := 0; i < cfg.FrontEnds; i++ {
		name := fmt.Sprintf("fe%d", i)
		node := s.placeOrErr()
		if err := s.spawnFrontEnd(name, node); err != nil {
			s.cleanup()
			return nil, err
		}
	}
	return s, nil
}

func (s *System) placeOrErr() string {
	return s.Cluster.Place(false, nil)
}

func (s *System) cleanup() {
	s.Cluster.StopAll()
	if s.DB != nil {
		s.DB.Close()
	}
	if s.tmpDir != "" {
		os.RemoveAll(s.tmpDir)
	}
}

// Stop shuts the whole system down.
func (s *System) Stop() {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	s.cleanup()
}

// spawnManager starts (or restarts) the centralized manager. Each
// epoch gets a distinct process name so a lingering old instance can
// never collide with its replacement.
func (s *System) spawnManager() error {
	s.mu.Lock()
	s.mgrEpoch++
	name := "manager"
	if s.mgrEpoch > 1 {
		name = fmt.Sprintf("manager.%d", s.mgrEpoch)
	}
	s.mu.Unlock()
	node := s.placeOrErr()
	if node == "" {
		return fmt.Errorf("core: no node for manager")
	}
	m := manager.New(manager.Config{
		Name:           name,
		Node:           node,
		Net:            s.Net,
		Policy:         s.cfg.Policy,
		BeaconInterval: s.cfg.BeaconInterval,
		WorkerTTL:      5 * s.cfg.ReportInterval,
		FETTL:          6 * s.cfg.BeaconInterval,
		Spawner:        &spawner{s: s},
	})
	h, err := s.Cluster.Spawn(node, m)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.mgr = m
	s.mgrHandle = h
	s.mu.Unlock()
	return nil
}

// Manager returns the current manager instance.
func (s *System) Manager() *manager.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr
}

// restartManager is the front ends' process-peer action ("the front
// end detects and restarts a crashed manager", §3.1.3). A cooldown
// keeps multiple front ends from racing to restart it.
func (s *System) restartManager() {
	if s.stopped.Load() {
		return
	}
	s.mu.Lock()
	if time.Since(s.lastMgrFix) < 2*s.cfg.BeaconInterval {
		s.mu.Unlock()
		return
	}
	s.lastMgrFix = time.Now()
	old := s.mgrHandle
	s.mu.Unlock()
	if old != nil {
		old.Kill()
	}
	_ = s.spawnManager()
}

// spawnFrontEnd builds and spawns one front end.
func (s *System) spawnFrontEnd(name, node string) error {
	if node == "" {
		return fmt.Errorf("core: no node for %s", name)
	}
	fe := frontend.New(frontend.Config{
		Name:              name,
		Node:              node,
		Net:               s.Net,
		Rules:             s.cfg.Rules,
		Profiles:          s.Profile,
		Origin:            s.cfg.Origin,
		CacheNodes:        s.cacheNodes,
		Threads:           s.cfg.FEThreads,
		CacheTTL:          s.cfg.CacheTTL,
		CacheTimeout:      s.cfg.CacheTimeout,
		HeartbeatInterval: s.cfg.BeaconInterval,
		MinDistillSize:    s.cfg.MinDistillSize,
		ManagerStub: stub.ManagerStubConfig{
			Seed:             s.cfg.Seed,
			CallTimeout:      s.cfg.CallTimeout,
			UseDelta:         !s.cfg.DisableDeltaEstimator,
			WorkerTTL:        20 * s.cfg.BeaconInterval,
			ManagerTimeout:   5 * s.cfg.BeaconInterval,
			OnManagerSilence: s.restartManager,
		},
	})
	if _, err := s.Cluster.Spawn(node, fe); err != nil {
		return err
	}
	s.mu.Lock()
	s.fes[name] = fe
	s.feNodes[name] = node
	if !contains(s.feOrder, name) {
		s.feOrder = append(s.feOrder, name)
	}
	s.mu.Unlock()
	return nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// FrontEnds returns the live front-end instances in creation order.
func (s *System) FrontEnds() []*frontend.FrontEnd {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*frontend.FrontEnd, 0, len(s.feOrder))
	for _, name := range s.feOrder {
		if fe, ok := s.fes[name]; ok {
			out = append(out, fe)
		}
	}
	return out
}

// WaitReady blocks until the system is serviceable: every front end's
// receive loop is running and has heard a manager beacon, and the
// initially configured workers have registered. It returns false on
// timeout.
func (s *System) WaitReady(timeout time.Duration) bool {
	want := 0
	for _, n := range s.cfg.Workers {
		want += n
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ready := s.Manager().Stats().Workers >= want
		for _, fe := range s.FrontEnds() {
			if !fe.Running() || fe.ManagerStub().Stats().BeaconsSeen == 0 {
				ready = false
				break
			}
		}
		if len(s.FrontEnds()) == 0 {
			ready = false
		}
		if ready {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// Request submits a client request, round-robining across live front
// ends — the in-process analogue of the paper's client-side load
// balancing (JavaScript auto-config / round-robin DNS, §3.1.2).
func (s *System) Request(ctx context.Context, url, user string) (frontend.Response, error) {
	fes := s.FrontEnds()
	if len(fes) == 0 {
		return frontend.Response{}, fmt.Errorf("core: no front ends")
	}
	start := int(s.rr.Add(1))
	var lastErr error
	for i := 0; i < len(fes); i++ {
		fe := fes[(start+i)%len(fes)]
		if !fe.Running() {
			continue // masks transient front end failures
		}
		resp, err := fe.Do(ctx, frontend.Request{URL: url, User: user})
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("core: no running front end")
	}
	return frontend.Response{}, lastErr
}

// SetProfile writes one user preference through to the ACID store.
func (s *System) SetProfile(user, key, val string) error {
	return s.Profile.Set(user, key, val)
}

// spawner implements manager.Spawner against the live cluster.
type spawner struct{ s *System }

// SpawnWorker places a fresh worker stub on the least-loaded eligible
// node.
func (sp *spawner) SpawnWorker(class string, overflow bool) (stub.WorkerInfo, error) {
	s := sp.s
	w, err := s.cfg.Registry.New(class)
	if err != nil {
		return stub.WorkerInfo{}, err
	}
	var node string
	if overflow {
		node = s.Cluster.Place(true, func(n cluster.Node) bool { return n.Overflow })
	} else {
		node = s.Cluster.Place(false, func(n cluster.Node) bool {
			return len(n.Procs) < s.cfg.ProcsPerNode
		})
		if node == "" {
			// Dedicated pool exhausted: recruit overflow (§2.2.3).
			node = s.Cluster.Place(true, func(n cluster.Node) bool { return n.Overflow })
			overflow = node != ""
		}
	}
	if node == "" {
		return stub.WorkerInfo{}, fmt.Errorf("core: no capacity for worker class %s", class)
	}
	id := fmt.Sprintf("%s.%d", class, s.workerSeq.Add(1))
	ws := stub.NewWorkerStub(id, node, w, s.Net, stub.WorkerConfig{
		ReportInterval: s.cfg.ReportInterval,
		Overflow:       overflow,
	})
	if _, err := s.Cluster.Spawn(node, ws); err != nil {
		return stub.WorkerInfo{}, err
	}
	s.mu.Lock()
	s.workerNodes[id] = node
	s.workerStubs[id] = ws
	s.mu.Unlock()
	return ws.Info(), nil
}

// ReapWorker stops a worker process.
func (sp *spawner) ReapWorker(id string) error {
	s := sp.s
	s.mu.Lock()
	node, ok := s.workerNodes[id]
	if ok {
		delete(s.workerNodes, id)
		delete(s.workerStubs, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown worker %s", id)
	}
	return s.Cluster.KillProcess(node, id)
}

// RestartFrontEnd is the manager's process-peer action. Restart means
// stop-then-start: if the silence was a false alarm (a live but slow
// front end), the old instance is killed first so the replacement can
// claim its name — the paper's watchers restart peers, they never try
// to coexist with them.
func (sp *spawner) RestartFrontEnd(name string) error {
	s := sp.s
	if s.stopped.Load() {
		return fmt.Errorf("core: system stopped")
	}
	s.mu.Lock()
	node := s.feNodes[name]
	s.mu.Unlock()
	if node == "" {
		return fmt.Errorf("core: unknown front end %s", name)
	}
	_ = s.Cluster.KillProcess(node, name) // usually already dead
	// If the node itself died, move the front end.
	for _, n := range s.Cluster.Nodes() {
		if n.ID == node && !n.Alive {
			node = s.placeOrErr()
			break
		}
	}
	return s.spawnFrontEnd(name, node)
}

// HasDedicatedCapacity reports whether any dedicated node has room.
func (sp *spawner) HasDedicatedCapacity() bool {
	s := sp.s
	node := s.Cluster.Place(false, func(n cluster.Node) bool {
		return len(n.Procs) < s.cfg.ProcsPerNode
	})
	return node != ""
}

// KillWorker crashes a worker abruptly (fault injection for tests and
// experiments): its endpoint drops off the SAN before the process is
// cancelled, so no deregistration reaches the manager — the loss must
// be inferred by timeout, exactly as for a real crash (§3.1.3).
func (s *System) KillWorker(id string) error {
	s.mu.Lock()
	node, ok := s.workerNodes[id]
	if ok {
		delete(s.workerNodes, id)
		delete(s.workerStubs, id)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown worker %s", id)
	}
	s.Net.Drop(san.Addr{Node: node, Proc: id})
	// The endpoint closure usually makes the stub exit on its own;
	// a racing "already gone" from the cluster is success here.
	if err := s.Cluster.KillProcess(node, id); err != nil && !s.stopped.Load() {
		return nil
	}
	return nil
}

// KillFrontEnd crashes a front end process.
func (s *System) KillFrontEnd(name string) error {
	s.mu.Lock()
	node := s.feNodes[name]
	s.mu.Unlock()
	if node == "" {
		return fmt.Errorf("core: unknown front end %s", name)
	}
	return s.Cluster.KillProcess(node, name)
}

// KillManager crashes the manager process.
func (s *System) KillManager() error {
	s.mu.Lock()
	h := s.mgrHandle
	s.mu.Unlock()
	if h == nil {
		return fmt.Errorf("core: no manager")
	}
	h.Kill()
	return nil
}

// Workers returns the ids of currently tracked worker processes
// (spawned and not yet reaped/killed), sorted.
func (s *System) Workers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.workerNodes))
	for id := range s.workerNodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// WorkerStub returns the live stub for a tracked worker id (nil if
// unknown), giving chaos harnesses access to the per-worker fault
// injection knobs (InjectSlowdown, InjectHang).
func (s *System) WorkerStub(id string) *stub.WorkerStub {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workerStubs[id]
}

// WorkerNode returns the node hosting a tracked worker ("" if
// unknown).
func (s *System) WorkerNode(id string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workerNodes[id]
}

// FrontEndNode returns the node hosting a front end ("" if unknown).
func (s *System) FrontEndNode(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.feNodes[name]
}

// CacheNodes returns the cache partition addresses.
func (s *System) CacheNodes() map[string]san.Addr {
	out := make(map[string]san.Addr, len(s.cacheNodes))
	for k, v := range s.cacheNodes {
		out[k] = v
	}
	return out
}
