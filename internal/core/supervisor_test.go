package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/supervisor"
)

// TestSupervisorWiredIntoEveryRoleSet: a plain single-process system
// runs a supervisor daemon, the manager tracks its hello, and the
// Host adapter resolves every locally hosted component kind.
func TestSupervisorWiredIntoEveryRoleSet(t *testing.T) {
	s := startTranSend(t, nil)

	sup := s.Supervisor()
	if sup == nil {
		t.Fatal("no supervisor daemon")
	}
	if sup.Prefix() != "" {
		t.Fatalf("single-process supervisor prefix %q", sup.Prefix())
	}
	waitFor(t, "manager tracks the supervisor", func() bool {
		return s.Manager().Stats().Supervisors >= 1
	})
	hb, ok := s.Manager().SupervisorFor("node0")
	if !ok || hb.Addr != sup.Addr() {
		t.Fatalf("SupervisorFor(node0) = %+v ok=%v, want %v", hb, ok, sup.Addr())
	}
	if sups := s.Manager().Supervisors(); len(sups) != 1 || sups[0].Addr != sup.Addr() {
		t.Fatalf("Supervisors() = %v", sups)
	}

	// ComponentAddr covers workers, front ends, caches, the manager.
	workers := s.Workers()
	if len(workers) == 0 {
		t.Fatal("no workers")
	}
	if addr, ok := s.ComponentAddr(workers[0]); !ok || addr.Proc != workers[0] {
		t.Fatalf("worker ComponentAddr = %v ok=%v", addr, ok)
	}
	if addr, ok := s.ComponentAddr("fe0"); !ok || addr.Proc != "fe0" {
		t.Fatalf("fe ComponentAddr = %v ok=%v", addr, ok)
	}
	if addr, ok := s.ComponentAddr("cache0"); !ok || addr.Proc != "cache0" {
		t.Fatalf("cache ComponentAddr = %v ok=%v", addr, ok)
	}
	if _, ok := s.ComponentAddr("manager"); !ok {
		t.Fatal("manager ComponentAddr missing")
	}
	if _, ok := s.ComponentAddr("nonesuch"); ok {
		t.Fatal("unknown component resolved")
	}
}

// TestKillComponentByName: the supervisor's kill op crashes any local
// component kind; unknown names refuse.
func TestKillComponentByName(t *testing.T) {
	s := startTranSend(t, func(c *Config) { c.Seed = 2 })
	waitForWorkers(t, s, 3)
	// Supervision must be live before the kill: the manager can only
	// infer the death of a component it has heard from.
	waitFor(t, "cache supervision live", func() bool {
		return s.Manager().Stats().Caches >= 2
	})

	victim := s.Workers()[0]
	if err := s.KillComponent(victim); err != nil {
		t.Fatalf("kill worker: %v", err)
	}
	if err := s.KillComponent("cache0"); err != nil {
		t.Fatalf("kill cache: %v", err)
	}
	if err := s.KillComponent("nonesuch"); err == nil {
		t.Fatal("killed a component that does not exist")
	}
	// The manager's process-peer duty brings the cache back (local
	// path — no delegation in one process).
	waitFor(t, "cache respawned", func() bool {
		return s.Manager().Stats().CacheRestarts >= 1
	})
}

// TestSupervisorRespawnedByWatchdog: the supervisor is not the one
// component nobody supervises — killing it brings a replacement at
// the same address.
func TestSupervisorRespawnedByWatchdog(t *testing.T) {
	s := startTranSend(t, func(c *Config) { c.Seed = 3 })
	// The daemon must be live (heartbeating) before the crash, or the
	// drop races its startup re-registration.
	waitFor(t, "supervisor heartbeating", func() bool {
		return s.Manager().Stats().Supervisors >= 1 && s.Supervisor().Stats().Hellos >= 1
	})
	sup := s.Supervisor()
	addr := sup.Addr()
	s.Net.Drop(addr) // crash: endpoint gone, Run exits on closed inbox
	waitFor(t, "supervisor respawned", func() bool {
		cur := s.Supervisor()
		return cur != sup && s.Net.Lookup(addr)
	})
	if got := s.Supervisor().Addr(); got != addr {
		t.Fatalf("respawned supervisor moved: %v != %v", got, addr)
	}
	// The replacement serves commands: the full circle.
	waitFor(t, "replacement heartbeating", func() bool {
		return s.Supervisor().Stats().Hellos >= 1
	})
}

// TestRestartWorkerKeepsIdentity: the hot-upgrade restart respawns the
// same worker id (fresh stub, same address) and the worker returns to
// service — the per-worker step UpgradeWave is built from.
func TestRestartWorkerKeepsIdentity(t *testing.T) {
	s := startTranSend(t, func(c *Config) { c.Seed = 4 })
	sup := s.Supervisor()
	waitForWorkers(t, s, 3)

	victim := s.Workers()[0]
	before := s.WorkerStub(victim)
	hb, _ := s.Manager().SupervisorFor(s.WorkerNode(victim))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ack, err := sup.Invoke(ctx, hb.Addr, supervisor.Command{
		Op: supervisor.OpRestartWorker, Target: victim,
	})
	if err != nil || !ack.OK {
		t.Fatalf("restart-worker: ack=%+v err=%v", ack, err)
	}
	after := s.WorkerStub(victim)
	if after == nil || after == before {
		t.Fatal("worker was not replaced by a fresh stub")
	}
	if after.Addr() != before.Addr() {
		t.Fatalf("restart moved the worker: %v != %v", after.Addr(), before.Addr())
	}
	waitForWorkers(t, s, 3) // the upgraded instance re-registers
}
