package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/distiller"
	"repro/internal/manager"
	"repro/internal/media"
	"repro/internal/tacc"
	"repro/internal/trace"
)

const tick = 15 * time.Millisecond

// startTranSend boots a small TranSend deployment with compressed
// timers suitable for tests.
func startTranSend(t *testing.T, mutate func(*Config)) *System {
	t.Helper()
	reg := tacc.NewRegistry()
	distiller.RegisterAll(reg)
	cfg := Config{
		Seed:           1,
		DedicatedNodes: 6,
		OverflowNodes:  2,
		FrontEnds:      1,
		CacheParts:     2,
		Workers: map[string]int{
			distiller.ClassSGIF: 1,
			distiller.ClassSJPG: 1,
			distiller.ClassHTML: 1,
		},
		Registry:       reg,
		Rules:          distiller.TranSendRules(),
		ProfileDir:     t.TempDir(),
		BeaconInterval: tick,
		ReportInterval: tick,
		CallTimeout:    2 * time.Second,
		Policy: manager.Policy{
			SpawnThreshold: 1e9, // no autoscaling unless a test wants it
			Damping:        time.Hour,
			ReapThreshold:  -1,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitForWorkers(t *testing.T, s *System, n int) {
	t.Helper()
	waitFor(t, fmt.Sprintf("%d workers registered", n), func() bool {
		return s.Manager().Stats().Workers >= n
	})
	// Front ends learn about workers from beacons, and the manager
	// must be tracking the front ends (process-peer coverage).
	waitFor(t, "front ends see workers", func() bool {
		for _, fe := range s.FrontEnds() {
			if fe.ManagerStub().Stats().BeaconsSeen == 0 {
				return false
			}
		}
		return s.Manager().Stats().FrontEnds >= len(s.FrontEnds())
	})
}

func TestEndToEndDistillation(t *testing.T) {
	s := startTranSend(t, nil)
	waitForWorkers(t, s, 3)
	ctx := context.Background()

	// A large JPEG gets distilled.
	url := trace.ObjectURL(42, media.MIMESJPG)
	var resp = mustRequest(t, s, url, "user1")
	if resp.Source != "distilled" {
		t.Fatalf("source = %s, want distilled", resp.Source)
	}
	orig, err := s.cfg.Origin.Fetch(ctx, url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Blob.Size() >= orig.Size() {
		t.Fatalf("distilled %d >= original %d", resp.Blob.Size(), orig.Size())
	}

	// Same request again: served from the cache as a distilled hit.
	resp2 := mustRequest(t, s, url, "user1")
	if resp2.Source != "cache-distilled" {
		t.Fatalf("second source = %s, want cache-distilled", resp2.Source)
	}
	if string(resp2.Blob.Data) != string(resp.Blob.Data) {
		t.Fatal("cache returned different bytes")
	}
}

func mustRequest(t *testing.T, s *System, url, user string) (resp frontendResponse) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	r, err := s.Request(ctx, url, user)
	if err != nil {
		t.Fatalf("request %s: %v", url, err)
	}
	return frontendResponse{Blob: r.Blob, Source: r.Source}
}

// frontendResponse avoids importing frontend in every assertion.
type frontendResponse struct {
	Blob   tacc.Blob
	Source string
}

func TestHTMLGetsMungedWithProfile(t *testing.T) {
	s := startTranSend(t, nil)
	waitForWorkers(t, s, 3)
	if err := s.SetProfile("alice", "quality", "10"); err != nil {
		t.Fatal(err)
	}
	url := trace.ObjectURL(7, media.MIMEHTML)
	resp := mustRequest(t, s, url, "alice")
	if resp.Source != "distilled" {
		t.Fatalf("source = %s", resp.Source)
	}
	body := string(resp.Blob.Data)
	if !strings.Contains(body, "transend-toolbar") {
		t.Fatal("toolbar missing from munged page")
	}
	if !strings.Contains(body, "quality=10") {
		t.Fatal("profile quality not propagated into munged links")
	}
}

func TestSmallContentPassesThrough(t *testing.T) {
	s := startTranSend(t, func(cfg *Config) {
		cfg.MinDistillSize = 1 << 20 // everything is "small"
	})
	waitForWorkers(t, s, 3)
	url := trace.ObjectURL(42, media.MIMESJPG)
	resp := mustRequest(t, s, url, "u")
	if resp.Source != "original" {
		t.Fatalf("source = %s, want original (1KB threshold)", resp.Source)
	}
}

func TestWorkerCrashFallsBackThenRecovers(t *testing.T) {
	s := startTranSend(t, nil)
	waitForWorkers(t, s, 3)

	// Find and crash the SJPG distiller.
	var victim string
	s.mu.Lock()
	for id := range s.workerNodes {
		if strings.HasPrefix(id, distiller.ClassSJPG) {
			victim = id
		}
	}
	s.mu.Unlock()
	if victim == "" {
		t.Fatal("no sjpg worker found")
	}
	if err := s.KillWorker(victim); err != nil {
		t.Fatal(err)
	}

	// Immediately after the crash the dispatch may fail over or
	// fall back to the original — but the user always gets bytes.
	url := trace.ObjectURL(1001, media.MIMESJPG)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := s.Request(ctx, url, "u")
	if err != nil {
		t.Fatalf("request during failure: %v", err)
	}
	if resp.Blob.Size() == 0 {
		t.Fatal("empty response during failure")
	}

	// The manager replaces the crashed worker (TTL + replica floor).
	waitFor(t, "replacement worker", func() bool {
		for _, fe := range s.FrontEnds() {
			if len(fe.ManagerStub().Workers(distiller.ClassSJPG)) >= 1 {
				return true
			}
		}
		return false
	})
	// And distillation works again.
	waitFor(t, "distillation recovers", func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		r, err := s.Request(ctx, trace.ObjectURL(2002, media.MIMESJPG), "u")
		return err == nil && r.Source == "distilled"
	})
}

func TestManagerCrashIsMaskedAndRepaired(t *testing.T) {
	s := startTranSend(t, nil)
	waitForWorkers(t, s, 3)

	epoch0 := s.Manager()
	if err := s.KillManager(); err != nil {
		t.Fatal(err)
	}

	// Requests keep working off cached beacon state while the
	// manager is dead (§3.1.8 stale load-balancing data).
	resp := mustRequest(t, s, trace.ObjectURL(55, media.MIMESJPG), "u")
	if resp.Blob.Size() == 0 {
		t.Fatal("no answer while manager down")
	}

	// The front end's watchdog restarts the manager; workers
	// re-register with the new epoch.
	waitFor(t, "manager restarted", func() bool {
		m := s.Manager()
		return m != epoch0 && m.Stats().Workers >= 3
	})
}

func TestFrontEndCrashIsRestartedByManager(t *testing.T) {
	s := startTranSend(t, nil)
	waitForWorkers(t, s, 3)
	if err := s.KillFrontEnd("fe0"); err != nil {
		t.Fatal(err)
	}
	// The manager's FE TTL expires and it respawns fe0.
	waitFor(t, "front end restarted", func() bool {
		fes := s.FrontEnds()
		return len(fes) == 1 && fes[0].Running()
	})
	resp := mustRequest(t, s, trace.ObjectURL(9, media.MIMESJPG), "u")
	if resp.Blob.Size() == 0 {
		t.Fatal("restarted front end served nothing")
	}
}

func TestAutoscaleUnderLoadAndOverflow(t *testing.T) {
	s := startTranSend(t, func(cfg *Config) {
		cfg.DedicatedNodes = 2 // tiny dedicated pool
		cfg.OverflowNodes = 2
		cfg.ProcsPerNode = 4
		cfg.Workers = map[string]int{distiller.ClassSJPG: 1}
		cfg.Policy = manager.Policy{
			SpawnThreshold: 2,
			Damping:        5 * tick,
			ReapThreshold:  -1, // no reaping during the ramp
		}
		cfg.FEThreads = 64
	})
	waitForWorkers(t, s, 1)

	// Hammer with concurrent requests for distinct URLs (no cache
	// hits) so distiller queues grow.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for g := 0; g < 32; g++ {
		g := g
		go func() {
			for i := 0; ctx.Err() == nil; i++ {
				url := trace.ObjectURL(10000+g*10000+i, media.MIMESJPG)
				rctx, rcancel := context.WithTimeout(ctx, 5*time.Second)
				s.Request(rctx, url, "u")
				rcancel()
			}
		}()
	}
	waitFor(t, "autoscale spawn", func() bool {
		return s.Manager().Stats().Spawns >= 2
	})
	cancel()
}

func TestMonitorSeesComponentsAndAlertsOnSilence(t *testing.T) {
	s := startTranSend(t, nil)
	waitForWorkers(t, s, 3)
	waitFor(t, "monitor sees components", func() bool {
		snap := s.Mon.Snapshot()
		kinds := map[string]int{}
		for _, c := range snap {
			kinds[c.Kind]++
		}
		return kinds["worker"] >= 3 && kinds["frontend"] >= 1 && kinds["manager"] >= 1
	})
	if !strings.Contains(s.Mon.RenderTable(), "COMPONENT") {
		t.Fatal("render table broken")
	}

	// Crash a worker: the monitor alerts on its silence.
	var victim string
	s.mu.Lock()
	for id := range s.workerNodes {
		if strings.HasPrefix(id, distiller.ClassHTML) {
			victim = id
		}
	}
	s.mu.Unlock()
	if err := s.KillWorker(victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "silence alert", func() bool {
		for _, a := range s.Mon.Alerts() {
			if a.Component == victim {
				return true
			}
		}
		return false
	})
}

func TestHotUpgradeDisableEnableWorker(t *testing.T) {
	s := startTranSend(t, func(cfg *Config) {
		cfg.Workers = map[string]int{distiller.ClassSJPG: 2}
	})
	waitForWorkers(t, s, 2)

	// Disable one SJPG worker via the monitor; service continues on
	// the other.
	var addr = stubAddrOf(t, s, distiller.ClassSJPG)
	if err := s.Mon.Disable(addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker deregisters", func() bool {
		return s.Manager().Stats().Workers == 1
	})
	// Service continues on the remaining worker. A fallback is
	// acceptable in the brief window before the front end's cached
	// table drops the disabled instance; distillation must resume.
	waitFor(t, "distillation on remaining worker", func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		r, err := s.Request(ctx, trace.ObjectURL(77, media.MIMESJPG), "u")
		return err == nil && (r.Source == "distilled" || r.Source == "cache-distilled")
	})
	// Re-enable: both workers back.
	if err := s.Mon.Enable(addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker re-registers", func() bool {
		return s.Manager().Stats().Workers == 2
	})
}

func stubAddrOf(t *testing.T, s *System, class string) (addr sanAddr) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, node := range s.workerNodes {
		if strings.HasPrefix(id, class) {
			return sanAddr{Node: node, Proc: id}
		}
	}
	t.Fatalf("no worker of class %s", class)
	return
}

// sanAddr aliases san.Addr to keep the test imports tight.
type sanAddr = struct{ Node, Proc string }

func TestUnknownWorkerClassFailsGracefully(t *testing.T) {
	s := startTranSend(t, func(cfg *Config) {
		cfg.Rules = func(url, mime string, profile map[string]string) tacc.Pipeline {
			return tacc.Pipeline{{Class: "no-such-class"}}
		}
	})
	waitFor(t, "beacons", func() bool {
		fes := s.FrontEnds()
		return len(fes) == 1 && fes[0].ManagerStub().Stats().BeaconsSeen > 0
	})
	// Dispatch fails (no worker, spawn fails), so the front end
	// falls back to the original: the user still gets bytes.
	resp := mustRequest(t, s, trace.ObjectURL(5, media.MIMESJPG), "u")
	if resp.Source != "fallback-original" {
		t.Fatalf("source = %s, want fallback-original", resp.Source)
	}
}

func TestProfilePersistsAcrossSystemRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := startTranSend(t, func(cfg *Config) { cfg.ProfileDir = dir })
	if err := s1.SetProfile("bob", "scale", "4"); err != nil {
		t.Fatal(err)
	}
	s1.Stop()

	s2 := startTranSend(t, func(cfg *Config) { cfg.ProfileDir = dir })
	if got := s2.Profile.Get("bob")["scale"]; got != "4" {
		t.Fatalf("profile after restart = %q, want 4 (ACID durability)", got)
	}
}

func TestSANPartitionWorkerRestartedOnVisibleSide(t *testing.T) {
	// §2.2.4: "if workers lost because of a SAN partition can be
	// restarted on still-visible nodes, the manager performs the
	// necessary actions."
	s := startTranSend(t, func(cfg *Config) {
		cfg.Workers = map[string]int{distiller.ClassSJPG: 1}
	})
	waitForWorkers(t, s, 1)

	var node string
	s.mu.Lock()
	for id, n := range s.workerNodes {
		if strings.HasPrefix(id, distiller.ClassSJPG) {
			node = n
		}
	}
	s.mu.Unlock()
	if node == "" {
		t.Fatal("no sjpg worker")
	}

	// Cut the worker's node off from the rest of the cluster. Its
	// reports stop arriving; the manager infers the loss by timeout
	// and restarts the worker on a still-visible node.
	s.Net.Partition(map[string]int{node: 1})
	waitFor(t, "replacement on visible side", func() bool {
		st := s.Manager().Stats()
		return st.Spawns >= 1 && st.Workers >= 1
	})
	waitFor(t, "distillation resumes", func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		r, err := s.Request(ctx, trace.ObjectURL(4040, media.MIMESJPG), "u")
		return err == nil && (r.Source == "distilled" || r.Source == "cache-distilled")
	})

	// Heal: the marooned original is still alive and re-registers on
	// the next beacon it hears — no recovery protocol required.
	before := s.Manager().Stats().Workers
	s.Net.Heal()
	waitFor(t, "partitioned worker re-registers", func() bool {
		return s.Manager().Stats().Workers > before
	})
}

func TestAggregationThroughPlatform(t *testing.T) {
	// Aggregation workers (multiple inputs) ride the same dispatch
	// path as transformations: §2.3's composable building blocks.
	s := startTranSend(t, func(cfg *Config) {
		cfg.Workers = map[string]int{distiller.ClassSearch: 1}
	})
	waitForWorkers(t, s, 1)
	fe := s.FrontEnds()[0]
	waitFor(t, "aggregator visible", func() bool {
		return len(fe.ManagerStub().Workers(distiller.ClassSearch)) == 1
	})
	task := &tacc.Task{
		Key: "meta:q",
		Inputs: []tacc.Blob{
			{MIME: media.MIMEHTML, Data: []byte(`<li><a href="http://a/1">one</a></li>`)},
			{MIME: media.MIMEHTML, Data: []byte(`<li><a href="http://b/2">two</a></li>`)},
		},
		Params: map[string]string{"query": "q"},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := fe.ManagerStub().Dispatch(ctx, distiller.ClassSearch, task)
	if err != nil {
		t.Fatal(err)
	}
	if out.Meta["results"] != "2" {
		t.Fatalf("collated %s results, want 2", out.Meta["results"])
	}
}
