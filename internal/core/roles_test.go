package core

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestParseRoles(t *testing.T) {
	cases := []struct {
		in   string
		want Roles
		err  bool
	}{
		{"", Roles{}, false},
		{"all", Roles{}, false},
		{"frontend,manager", Roles{FrontEnds: true, Manager: true}, false},
		{"fe, worker", Roles{FrontEnds: true, Workers: true}, false},
		{"cache,monitor,workers", Roles{Caches: true, Monitor: true, Workers: true}, false},
		{"mgr", Roles{Manager: true}, false},
		{"bogus", Roles{}, true},
		{",", Roles{}, true}, // nothing selected
	}
	for _, c := range cases {
		got, err := ParseRoles(c.in)
		if (err != nil) != c.err {
			t.Fatalf("ParseRoles(%q) err=%v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseRoles(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if !(Roles{}).All() {
		t.Fatal("zero Roles is not All")
	}
	if (Roles{Manager: true}).All() {
		t.Fatal("partial Roles claims All")
	}
}

// TestCacheAddrsMatchPlacement: the addresses CacheAddrs predicts are
// exactly where Start places the partitions — the contract that lets
// a peer process reach remote caches with no discovery protocol.
func TestCacheAddrsMatchPlacement(t *testing.T) {
	s := startTranSend(t, func(c *Config) {
		c.NodePrefix = "px-"
		c.CacheParts = 3
	})
	predicted := CacheAddrs("px-", 3, 6)
	actual := s.CacheNodes()
	if len(actual) != 3 {
		t.Fatalf("placed %d partitions, want 3", len(actual))
	}
	for name, want := range predicted {
		if got := actual[name]; got != want {
			t.Fatalf("cache %s placed at %v, predicted %v", name, got, want)
		}
	}
	for _, name := range s.Caches() {
		if !strings.HasPrefix(actual[name].Node, "px-node") {
			t.Fatalf("cache %s on unprefixed node %s", name, actual[name].Node)
		}
	}
}

// TestCacheCrashRespawn: killing a cache service silently makes the
// manager's cache process-peer duty respawn it at the same address,
// and requests keep succeeding throughout (BASE fallback).
func TestCacheCrashRespawn(t *testing.T) {
	s := startTranSend(t, func(c *Config) {
		c.CacheSuperviseTTL = 6 * tick
	})
	if !s.WaitReady(10 * time.Second) {
		t.Fatal("system not ready")
	}
	ctx := context.Background()
	url := "http://origin1.example/obj5.sjpg"
	if _, err := s.Request(ctx, url, "u"); err != nil {
		t.Fatal(err)
	}

	names := s.Caches()
	if len(names) == 0 {
		t.Fatal("no local caches")
	}
	victim := names[0]
	addrBefore := s.CacheNodes()[victim]
	restarts := s.Manager().Stats().CacheRestarts
	if err := s.KillCache(victim); err != nil {
		t.Fatal(err)
	}
	if err := s.KillCache("no-such-cache"); err == nil {
		t.Fatal("KillCache accepted an unknown name")
	}

	// Requests during the outage must still succeed.
	if _, err := s.Request(ctx, url, "u"); err != nil {
		t.Fatalf("request during cache outage: %v", err)
	}

	waitFor(t, "cache respawn", func() bool {
		return s.Manager().Stats().CacheRestarts > restarts
	})
	waitFor(t, "respawned cache answering", func() bool {
		return s.Net.Lookup(addrBefore)
	})
	if got := s.CacheNodes()[victim]; got != addrBefore {
		t.Fatalf("cache moved from %v to %v despite a live node", addrBefore, got)
	}
}

// TestSystemAccessors: the chaos-facing accessors resolve what the
// system is actually running.
func TestSystemAccessors(t *testing.T) {
	s := startTranSend(t, nil)
	if !s.WaitReady(10 * time.Second) {
		t.Fatal("system not ready")
	}
	workers := s.Workers()
	if len(workers) != 3 {
		t.Fatalf("Workers() = %v, want 3 ids", workers)
	}
	for _, id := range workers {
		if s.WorkerStub(id) == nil {
			t.Fatalf("no stub for tracked worker %s", id)
		}
		if s.WorkerNode(id) == "" {
			t.Fatalf("no node for tracked worker %s", id)
		}
	}
	if s.WorkerStub("ghost") != nil || s.WorkerNode("ghost") != "" {
		t.Fatal("accessors resolved an unknown worker")
	}
	if s.FrontEndNode("fe0") == "" {
		t.Fatal("fe0 has no node")
	}
	if s.FrontEndNode("feX") != "" {
		t.Fatal("unknown front end resolved to a node")
	}
}
