package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/distiller"
	"repro/internal/manager"
	"repro/internal/monitor"
	"repro/internal/tacc"
)

// startPair boots a two-process cluster in one test binary: process B
// hosts the manager, the workers, and the cache partitions; process A
// hosts the front ends and the monitor. They share nothing but
// loopback TCP — each has its own san.Network, cluster, and profile
// store, spliced by a transport.Bridge pair, exactly what two cmd/node
// processes run.
func startPair(t *testing.T, mutate func(a, b *Config)) (feSide, mgrSide *System) {
	t.Helper()
	reg := tacc.NewRegistry()
	distiller.RegisterAll(reg)
	workers := map[string]int{
		distiller.ClassSGIF: 1,
		distiller.ClassSJPG: 1,
		distiller.ClassHTML: 1,
	}
	policy := manager.Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1}

	cfgB := Config{
		Seed:           2,
		Roles:          Roles{Manager: true, Workers: true, Caches: true},
		NodePrefix:     "b-",
		Transport:      TransportConfig{Listen: "tcp:127.0.0.1:0"},
		DedicatedNodes: 6,
		CacheParts:     2,
		Workers:        workers,
		Registry:       reg,
		Rules:          distiller.TranSendRules(),
		ProfileDir:     t.TempDir(),
		BeaconInterval: tick,
		ReportInterval: tick,
		CallTimeout:    2 * time.Second,
		Policy:         policy,
	}
	cfgA := Config{
		Seed:           1,
		Roles:          Roles{FrontEnds: true, Monitor: true},
		NodePrefix:     "a-",
		DedicatedNodes: 4,
		FrontEnds:      1,
		RemoteCaches:   CacheAddrs("b-", cfgB.CacheParts, cfgB.DedicatedNodes),
		Workers:        workers, // readiness expectation only (no worker role)
		Registry:       reg,
		Rules:          distiller.TranSendRules(),
		ProfileDir:     t.TempDir(),
		BeaconInterval: tick,
		ReportInterval: tick,
		CallTimeout:    2 * time.Second,
		Policy:         policy,
	}
	if mutate != nil {
		mutate(&cfgA, &cfgB)
	}

	sysB, err := Start(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sysB.Stop)

	cfgA.Transport = TransportConfig{Listen: "tcp:127.0.0.1:0", Join: []string{sysB.Bridge.Advertise()}}
	sysA, err := Start(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sysA.Stop)

	if !sysA.Bridge.WaitPeers(1, 10*time.Second) {
		t.Fatal("bridges never met")
	}
	if !sysB.WaitReady(15*time.Second) || !sysA.WaitReady(15*time.Second) {
		t.Fatalf("split cluster not ready: A peers=%v B peers=%v",
			sysA.Bridge.Peers(), sysB.Bridge.Peers())
	}
	return sysA, sysB
}

// TestMultiProcessEndToEnd is the acceptance test for the transport
// tentpole run in-binary: a TranSend cluster split across two
// processes over loopback serves a workload with zero failed requests
// and zero wire errors on either side, with the batching writer
// packing multiple frames per write under the burst.
func TestMultiProcessEndToEnd(t *testing.T) {
	sysA, sysB := startPair(t, nil)

	ctx := context.Background()
	const requests = 120
	for i := 0; i < requests; i++ {
		url := fmt.Sprintf("http://origin%d.example/obj%d.sjpg", i%4, i%24)
		rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		resp, err := sysA.Request(rctx, url, fmt.Sprintf("user%d", i%8))
		cancel()
		if err != nil {
			t.Fatalf("request %d (%s) failed: %v", i, url, err)
		}
		if len(resp.Blob.Data) == 0 {
			t.Fatalf("request %d returned empty body (source %s)", i, resp.Source)
		}
	}

	// Every hop crossed the wire cleanly.
	for name, sys := range map[string]*System{"A": sysA, "B": sysB} {
		if st := sys.Net.Stats(); st.WireErrors != 0 {
			t.Fatalf("process %s: WireErrors=%d", name, st.WireErrors)
		}
		if st := sys.Bridge.Stats(); st.FrameErrors != 0 {
			t.Fatalf("process %s: FrameErrors=%d", name, st.FrameErrors)
		}
	}

	// Distillation really happened across the boundary (tasks went
	// B-ward, results came back), and the cache on B served A.
	feStats := sysA.FrontEnds()[0].Stats()
	if feStats.Distilled+feStats.CacheDistilled == 0 {
		t.Fatalf("nothing distilled across processes: %+v", feStats)
	}
	if feStats.Fallbacks == requests {
		t.Fatal("every request fell back: workers were never reachable")
	}
	abr, bbr := sysA.Bridge.Stats(), sysB.Bridge.Stats()
	if abr.FramesOut == 0 || bbr.FramesOut == 0 {
		t.Fatalf("traffic did not flow both ways: A out=%d B out=%d", abr.FramesOut, bbr.FramesOut)
	}
	t.Logf("A: %d frames out in %d batches; B: %d frames out in %d batches",
		abr.FramesOut, abr.Batches, bbr.FramesOut, bbr.Batches)
}

// TestMultiProcessSupervisedRestart is the acceptance test for the
// supervisor tentpole: a front end in process A is killed; the manager
// in process B infers the death from heartbeat silence, resolves A's
// supervisor from its hello table, and delegates the restart over the
// SAN — the process-peer duty made location-transparent. Service
// resumes with zero failed requests and zero wire errors on both
// sides.
func TestMultiProcessSupervisedRestart(t *testing.T) {
	sysA, sysB := startPair(t, nil)
	ctx := context.Background()

	// The manager must know A's supervisor before the kill, or the
	// restart would have nowhere to go.
	waitFor(t, "cross-process supervisor hello", func() bool {
		sup, ok := sysB.Manager().SupervisorFor("a-node0")
		return ok && sup.Prefix == "a-"
	})

	if err := sysA.KillFrontEnd("fe0"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delegated FE restart", func() bool {
		st := sysB.Manager().Stats()
		return st.Delegated >= 1 && st.FERestarts >= 1
	})
	waitFor(t, "front end serving again", func() bool {
		fes := sysA.FrontEnds()
		return len(fes) > 0 && fes[0].Running()
	})

	for i := 0; i < 40; i++ {
		url := fmt.Sprintf("http://origin%d.example/obj%d.sjpg", i%4, i%16)
		rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		_, err := sysA.Request(rctx, url, "carol")
		cancel()
		if err != nil {
			t.Fatalf("request %d after supervised restart failed: %v", i, err)
		}
	}
	for name, sys := range map[string]*System{"A": sysA, "B": sysB} {
		if st := sys.Net.Stats(); st.WireErrors != 0 {
			t.Fatalf("process %s: WireErrors=%d", name, st.WireErrors)
		}
	}
}

// TestMultiProcessRollingUpgradeWave: the ROADMAP's "upgrade waves"
// scenario made real across OS process boundaries. Both processes
// host SJPG workers (ids prefix-qualified, so the replicated role is
// safe); the monitor in process A rolls a disable -> supervisor
// restart -> enable wave over all of them — one at a time, each via
// its own process's supervisor — while a foreground load keeps
// hitting the SJPG pipeline. Zero failed requests, zero wire errors.
func TestMultiProcessRollingUpgradeWave(t *testing.T) {
	sysA, sysB := startPair(t, func(a, b *Config) {
		a.Roles = Roles{FrontEnds: true, Monitor: true, Workers: true}
	})
	ctx := context.Background()

	// The wave driver needs the full inventory: one SJPG worker per
	// process, plus both supervisors.
	waitFor(t, "beacon inventory spans both processes", func() bool {
		ws := sysA.Mon.WorkersOf(distiller.ClassSJPG)
		if len(ws) != 2 {
			return false
		}
		for _, w := range ws {
			if _, ok := sysA.Mon.SupervisorFor(w.Node); !ok {
				return false
			}
		}
		return true
	})
	before := sysA.Mon.WorkersOf(distiller.ClassSJPG)

	// Foreground load across the wave: every request exercises the
	// SJPG worker pipeline being upgraded under it.
	stopLoad := make(chan struct{})
	done := make(chan struct{})
	var failures atomic.Int64
	var issued atomic.Int64
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			url := fmt.Sprintf("http://origin%d.example/wave%d.sjpg", i%4, i%32)
			rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			_, err := sysA.Request(rctx, url, "dave")
			cancel()
			issued.Add(1)
			if err != nil {
				failures.Add(1)
			}
		}
	}()

	wctx, wcancel := context.WithTimeout(ctx, 60*time.Second)
	rep, err := sysA.Mon.UpgradeWave(wctx, distiller.ClassSJPG, monitor.WaveOptions{
		Drain:          5 * tick,
		CommandTimeout: 5 * time.Second,
	})
	wcancel()
	close(stopLoad)
	<-done
	if err != nil {
		t.Fatalf("upgrade wave: %v (report %+v)", err, rep)
	}
	if len(rep.Upgraded) != 2 || len(rep.Failed) != 0 {
		t.Fatalf("wave report %+v, want both workers upgraded", rep)
	}
	for i, id := range rep.Upgraded {
		if id != before[i].ID {
			t.Fatalf("wave order %v != inventory %v", rep.Upgraded, before)
		}
	}
	if issued.Load() == 0 {
		t.Fatal("load generator issued nothing")
	}
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d of %d requests failed during the rolling upgrade", f, issued.Load())
	}
	for name, sys := range map[string]*System{"A": sysA, "B": sysB} {
		if st := sys.Net.Stats(); st.WireErrors != 0 {
			t.Fatalf("process %s: WireErrors=%d", name, st.WireErrors)
		}
	}
	t.Logf("wave upgraded %v under %d requests, 0 failures", rep.Upgraded, issued.Load())
}

// TestMultiProcessCacheHit: an object distilled once is served from
// the remote cache partition on the second request — the cross-
// process cache protocol (Call/Respond over the bridge) works end to
// end.
func TestMultiProcessCacheHit(t *testing.T) {
	sysA, _ := startPair(t, nil)
	ctx := context.Background()

	const url = "http://origin1.example/obj7.sjpg"
	if _, err := sysA.Request(ctx, url, "alice"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cache-distilled hit", func() bool {
		resp, err := sysA.Request(ctx, url, "alice")
		return err == nil && resp.Source == "cache-distilled"
	})
}
