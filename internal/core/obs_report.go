package core

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/san"
	"repro/internal/stub"
)

// obsReporter is the per-process glue between the local obs plane and
// the cluster: every interval it drains the tracer's newly recorded
// local spans and multicasts them as a digest on the report group (the
// same channel the §3.1.7 monitor already subscribes to), and it
// ingests the digests peer processes publish so /trace?id= on any node
// can render the cluster-wide span tree. It implements
// cluster.Process.
type obsReporter struct {
	name     string
	node     string
	net      *san.Network
	interval time.Duration
}

// spanDigestBatch bounds one digest's span count; anything beyond it
// waits for the next tick (the ring already bounds total backlog).
const spanDigestBatch = 256

func (r *obsReporter) ID() string { return r.name }

func (r *obsReporter) Run(ctx context.Context) error {
	ep := r.net.Endpoint(san.Addr{Node: r.node, Proc: r.name}, 1024)
	defer ep.Close()
	ep.Join(stub.GroupReports)
	tracer := r.net.Tracer()

	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	flush := func() {
		if spans := tracer.TakeNew(spanDigestBatch); len(spans) > 0 {
			ep.Multicast(stub.GroupReports, stub.MsgSpanDigest,
				stub.SpanDigest{Spans: spans}, len(spans)*64+32)
		}
	}
	for {
		select {
		case <-ctx.Done():
			flush() // last gasp: publish what the ring still holds
			return nil
		case <-tick.C:
			flush()
		case msg, ok := <-ep.Inbox():
			if !ok {
				return fmt.Errorf("core: obs reporter endpoint closed")
			}
			if msg.Kind == stub.MsgSpanDigest {
				if d, isDigest := msg.Body.(stub.SpanDigest); isDigest {
					tracer.Ingest(d.Spans)
				}
			}
			msg.Release()
		}
	}
}

// configureObs points the process's tracer and registry at this
// deployment: proc label, sampling rate, slow-request logging, and the
// collectors for components that don't own a Run loop of their own
// (manager replicas, the supervisor).
func (s *System) configureObs() {
	tr := s.Net.Tracer()
	proc := s.cfg.NodePrefix
	if proc == "" {
		proc = "local"
	}
	tr.SetProc(proc)
	switch {
	case s.cfg.TraceSampleRate > 0:
		tr.SetSampleRate(s.cfg.TraceSampleRate)
	case s.cfg.TraceSampleRate < 0:
		tr.SetSampleRate(0) // tracing off: forced spans still record
	}
	if s.cfg.TraceSlowThreshold > 0 {
		tr.SetSlowThreshold(s.cfg.TraceSlowThreshold)
		tr.SetLogf(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[slow-request] "+format+"\n", args...)
		})
	}

	reg := s.Net.Registry()
	reg.SetCollector("manager", func(emit func(string, float64)) {
		m := s.PrimaryManager()
		if m == nil {
			return
		}
		st := m.Stats()
		emit("workers", float64(st.Workers))
		emit("frontends", float64(st.FrontEnds))
		emit("caches", float64(st.Caches))
		emit("spawns", float64(st.Spawns))
		emit("reaps", float64(st.Reaps))
		emit("fe_restarts", float64(st.FERestarts))
		emit("cache_restarts", float64(st.CacheRestarts))
		emit("beacons_sent", float64(st.BeaconsSent))
		emit("registrations", float64(st.Registrations))
		emit("epoch", float64(st.Epoch))
	})
	reg.SetCollector("supervisor", func(emit func(string, float64)) {
		sup := s.Supervisor()
		if sup == nil {
			return
		}
		st := sup.Stats()
		emit("commands", float64(st.Commands))
		emit("dupes", float64(st.Dupes))
		emit("failures", float64(st.Failures))
		emit("hellos", float64(st.Hellos))
		emit("stale_epoch", float64(st.StaleEpoch))
	})
}

// Tracer exposes the process-wide tracer (operator surface: /trace).
func (s *System) Tracer() *obs.Tracer { return s.Net.Tracer() }

// Registry exposes the process-wide metrics registry (operator
// surface: /metrics, /status).
func (s *System) Registry() *obs.Registry { return s.Net.Registry() }
