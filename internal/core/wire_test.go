package core

import (
	"testing"

	"repro/internal/media"
	"repro/internal/trace"
)

// TestWireModeEndToEnd boots the full TranSend stack with the SAN in
// wire mode and drives a real distillation request: every message on
// the path — beacons, registrations, load reports, task dispatch,
// cache get/put/inject, heartbeats, monitor reports — crosses the SAN
// as codec bytes. WireErrors == 0 proves every live message kind has a
// wire layout (nothing silently bypasses or fails serialization).
func TestWireModeEndToEnd(t *testing.T) {
	s := startTranSend(t, func(cfg *Config) { cfg.WireMode = true })
	if !s.Net.WireMode() {
		t.Fatal("WireMode config did not install the codec")
	}
	waitForWorkers(t, s, 3)

	url := trace.ObjectURL(42, media.MIMESJPG)
	resp := mustRequest(t, s, url, "user1")
	if resp.Source != "distilled" {
		t.Fatalf("source = %s, want distilled", resp.Source)
	}
	resp2 := mustRequest(t, s, url, "user1")
	if resp2.Source != "cache-distilled" {
		t.Fatalf("second source = %s, want cache-distilled", resp2.Source)
	}

	st := s.Net.Stats()
	if st.WireEncodes == 0 || st.WireDecodes == 0 {
		t.Fatalf("codec never ran: %+v", st)
	}
	if st.WireErrors != 0 {
		t.Fatalf("%d messages failed serialization (missing body layout?)", st.WireErrors)
	}
	if st.Bytes == 0 {
		t.Fatal("no wire bytes accounted")
	}
}
