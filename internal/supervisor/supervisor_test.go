package supervisor

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/san"
)

// fakeHost records every action; failures are switchable per op.
type fakeHost struct {
	mu        sync.Mutex
	restarts  map[string]int // op+":"+target -> count
	failNext  map[string]error
	compAddrs map[string]san.Addr
}

func newFakeHost() *fakeHost {
	return &fakeHost{
		restarts:  make(map[string]int),
		failNext:  make(map[string]error),
		compAddrs: make(map[string]san.Addr),
	}
}

func (h *fakeHost) act(op, target string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := op + ":" + target
	if err := h.failNext[key]; err != nil {
		return err
	}
	h.restarts[key]++
	return nil
}

func (h *fakeHost) count(op, target string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.restarts[op+":"+target]
}

func (h *fakeHost) RestartFrontEnd(name string) error { return h.act(OpRestartFrontEnd, name) }
func (h *fakeHost) RestartCache(name string) error    { return h.act(OpRestartCache, name) }
func (h *fakeHost) RestartWorker(id string) error     { return h.act(OpRestartWorker, id) }
func (h *fakeHost) SpawnWorker(class string) error    { return h.act(OpSpawnWorker, class) }
func (h *fakeHost) KillComponent(name string) error   { return h.act(OpKill, name) }
func (h *fakeHost) ComponentAddr(name string) (san.Addr, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a, ok := h.compAddrs[name]
	return a, ok
}

// startSup boots a supervisor on a fresh network and returns it plus a
// client endpoint for issuing commands.
func startSup(t *testing.T, host Host) (*Supervisor, *san.Endpoint) {
	t.Helper()
	net := san.NewNetwork(1)
	sup := New(Config{
		Name: "sup", Node: "n0", Net: net, Prefix: "b-", Host: host,
		HeartbeatGroup: "ctl", HeartbeatInterval: 5 * time.Millisecond,
		DisableKind: "ctl.disable", EnableKind: "ctl.enable",
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go sup.Run(ctx)

	client := net.Endpoint(san.Addr{Node: "c0", Proc: "client"}, 64)
	go func() {
		for msg := range client.Inbox() {
			client.DeliverReply(msg)
		}
	}()
	return sup, client
}

func call(t *testing.T, client *san.Endpoint, to san.Addr, cmd Command) Ack {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := client.Call(ctx, to, MsgCmd, cmd, 64)
	if err != nil {
		t.Fatalf("command %+v: %v", cmd, err)
	}
	ack, ok := resp.Body.(Ack)
	if !ok {
		t.Fatalf("reply body %T", resp.Body)
	}
	return ack
}

// TestCommandsExecuteThroughHost: every restart/spawn/kill op reaches
// the host exactly once and acks OK.
func TestCommandsExecuteThroughHost(t *testing.T) {
	host := newFakeHost()
	sup, client := startSup(t, host)

	ops := []struct{ op, target string }{
		{OpRestartFrontEnd, "fe0"},
		{OpRestartCache, "cache1"},
		{OpRestartWorker, "echo.3"},
		{OpSpawnWorker, "echo"},
		{OpKill, "cache0"},
	}
	for i, c := range ops {
		ack := call(t, client, sup.Addr(), Command{ID: uint64(i + 1), Origin: "t", Op: c.op, Target: c.target})
		if !ack.OK || ack.ID != uint64(i+1) {
			t.Fatalf("%s: ack %+v", c.op, ack)
		}
		if host.count(c.op, c.target) != 1 {
			t.Fatalf("%s executed %d times", c.op, host.count(c.op, c.target))
		}
	}
}

// TestDuplicateCommandIsIdempotent: redelivering a command (same
// origin and id) returns the cached ack without re-executing — the
// property that makes retry-after-lost-ack safe.
func TestDuplicateCommandIsIdempotent(t *testing.T) {
	host := newFakeHost()
	sup, client := startSup(t, host)

	cmd := Command{ID: 7, Origin: "mgr/a", Op: OpRestartFrontEnd, Target: "fe0"}
	first := call(t, client, sup.Addr(), cmd)
	second := call(t, client, sup.Addr(), cmd)
	if !first.OK || !second.OK {
		t.Fatalf("acks: %+v / %+v", first, second)
	}
	if got := host.count(OpRestartFrontEnd, "fe0"); got != 1 {
		t.Fatalf("duplicate delivery executed the restart %d times", got)
	}
	if st := sup.Stats(); st.Dupes != 1 || st.Commands != 1 {
		t.Fatalf("stats %+v, want 1 command + 1 dupe", st)
	}

	// A different id from the same origin is a new incident.
	third := call(t, client, sup.Addr(), Command{ID: 8, Origin: "mgr/a", Op: OpRestartFrontEnd, Target: "fe0"})
	if !third.OK || host.count(OpRestartFrontEnd, "fe0") != 2 {
		t.Fatalf("new incident not executed (count %d)", host.count(OpRestartFrontEnd, "fe0"))
	}
}

// TestFailedCommandAcksError: a host error comes back in the ack, and
// failures are NOT cached — a retry with the same id re-executes, so
// a transient refusal cannot be pinned against the incident's id.
func TestFailedCommandAcksError(t *testing.T) {
	host := newFakeHost()
	host.failNext[OpRestartCache+":cache0"] = fmt.Errorf("node is down")
	sup, client := startSup(t, host)

	ack := call(t, client, sup.Addr(), Command{ID: 1, Origin: "t", Op: OpRestartCache, Target: "cache0"})
	if ack.OK || ack.Err == "" {
		t.Fatalf("ack %+v, want error", ack)
	}
	if st := sup.Stats(); st.Failures != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The transient condition clears; the SAME command id must now
	// execute for real instead of replaying the cached refusal.
	host.mu.Lock()
	delete(host.failNext, OpRestartCache+":cache0")
	host.mu.Unlock()
	ack = call(t, client, sup.Addr(), Command{ID: 1, Origin: "t", Op: OpRestartCache, Target: "cache0"})
	if !ack.OK {
		t.Fatalf("retry after transient failure replayed the refusal: %+v", ack)
	}
	if got := host.count(OpRestartCache, "cache0"); got != 1 {
		t.Fatalf("retry executed %d times, want 1", got)
	}
	// Unknown op also errors cleanly.
	ack = call(t, client, sup.Addr(), Command{ID: 2, Origin: "t", Op: "frobnicate", Target: "x"})
	if ack.OK {
		t.Fatalf("unknown op acked OK")
	}
}

// TestDisableEnableForwarded: OpDisable/OpEnable resolve the component
// address through the host and forward the configured control kinds.
func TestDisableEnableForwarded(t *testing.T) {
	host := newFakeHost()
	sup, client := startSup(t, host)

	comp := client // reuse the client's network
	compEp := sup.cfg.Net.Endpoint(san.Addr{Node: "n1", Proc: "w0"}, 8)
	host.mu.Lock()
	host.compAddrs["w0"] = compEp.Addr()
	host.mu.Unlock()
	_ = comp

	if ack := call(t, client, sup.Addr(), Command{ID: 1, Origin: "t", Op: OpDisable, Target: "w0"}); !ack.OK {
		t.Fatalf("disable ack %+v", ack)
	}
	select {
	case msg := <-compEp.Inbox():
		if msg.Kind != "ctl.disable" {
			t.Fatalf("component got kind %q", msg.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("disable never reached the component")
	}
	if ack := call(t, client, sup.Addr(), Command{ID: 2, Origin: "t", Op: OpEnable, Target: "w0"}); !ack.OK {
		t.Fatalf("enable ack %+v", ack)
	}
	select {
	case msg := <-compEp.Inbox():
		if msg.Kind != "ctl.enable" {
			t.Fatalf("component got kind %q", msg.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("enable never reached the component")
	}
	// Unknown component refuses.
	if ack := call(t, client, sup.Addr(), Command{ID: 3, Origin: "t", Op: OpDisable, Target: "nope"}); ack.OK {
		t.Fatal("disable of unknown component acked OK")
	}
}

// TestHeartbeatsAnnouncePrefix: hellos carry the address and prefix a
// manager needs for ownership resolution.
func TestHeartbeatsAnnouncePrefix(t *testing.T) {
	host := newFakeHost()
	sup, client := startSup(t, host)

	watcher := sup.cfg.Net.Endpoint(san.Addr{Node: "w", Proc: "watch"}, 64)
	watcher.Join("ctl")
	_ = client

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case msg := <-watcher.Inbox():
			if msg.Kind != MsgHello {
				continue
			}
			hb, ok := msg.Body.(HelloMsg)
			if !ok {
				t.Fatalf("hello body %T", msg.Body)
			}
			if hb.Addr != sup.Addr() || hb.Prefix != "b-" || hb.Name != "sup" {
				t.Fatalf("hello %+v", hb)
			}
			return
		case <-time.After(20 * time.Millisecond):
		}
	}
	t.Fatal("no hello heartbeat observed")
}

// TestInvoke: the client helper round-trips a command through a peer
// supervisor, minting ids and origin automatically.
func TestInvoke(t *testing.T) {
	hostA, hostB := newFakeHost(), newFakeHost()
	net := san.NewNetwork(3)
	supA := New(Config{Name: "supA", Node: "a0", Net: net, Prefix: "a-", Host: hostA})
	supB := New(Config{Name: "supB", Node: "b0", Net: net, Prefix: "b-", Host: hostB})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go supA.Run(ctx)
	go supB.Run(ctx)

	cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
	defer ccancel()
	ack, err := supA.Invoke(cctx, supB.Addr(), Command{Op: OpKill, Target: "cache0"})
	if err != nil || !ack.OK {
		t.Fatalf("invoke: ack=%+v err=%v", ack, err)
	}
	if hostB.count(OpKill, "cache0") != 1 {
		t.Fatal("kill did not reach the peer host")
	}
	if hostA.count(OpKill, "cache0") != 0 {
		t.Fatal("kill executed on the wrong process")
	}
}

// TestResultCacheRetentionUnderRetryStorm: a storm of distinct
// commands overflowing the cache's soft capacity must NOT evict
// results still inside their retry window — redelivering any of them
// has to answer from the cache instead of re-executing (the
// double-restart bug age-gated eviction exists to prevent). Only the
// hard cap, and results past their retention age, may be shed.
func TestResultCacheRetentionUnderRetryStorm(t *testing.T) {
	host := newFakeHost()
	net := san.NewNetwork(1)
	sup := New(Config{
		Name: "sup", Node: "n0", Net: net, Prefix: "n", Host: host,
		ResultCacheCap:  4,
		ResultRetention: time.Hour, // nothing ages out during the test
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go sup.Run(ctx)
	client := net.Endpoint(san.Addr{Node: "c0", Proc: "client"}, 64)
	go func() {
		for msg := range client.Inbox() {
			client.DeliverReply(msg)
		}
	}()

	// 10 distinct incidents: 2.5x the soft cap, well under the hard cap.
	const storm = 10
	for i := 1; i <= storm; i++ {
		target := fmt.Sprintf("w%d", i)
		if ack := call(t, client, sup.Addr(), Command{ID: uint64(i), Origin: "mgr/a", Op: OpRestartWorker, Target: target}); !ack.OK {
			t.Fatalf("command %d: %+v", i, ack)
		}
	}
	// Every incident — including the very first, which pure-FIFO
	// eviction at cap 4 would have discarded six commands ago — must
	// still answer idempotently.
	for i := 1; i <= storm; i++ {
		target := fmt.Sprintf("w%d", i)
		ack := call(t, client, sup.Addr(), Command{ID: uint64(i), Origin: "mgr/a", Op: OpRestartWorker, Target: target})
		if !ack.OK {
			t.Fatalf("redelivery %d refused: %+v", i, ack)
		}
		if got := host.count(OpRestartWorker, target); got != 1 {
			t.Fatalf("redelivery of in-retention command %d re-executed the restart (%d times)", i, got)
		}
	}
	if st := sup.Stats(); st.Dupes != storm || st.Commands != storm {
		t.Fatalf("stats %+v, want %d commands + %d dupes", st, storm, storm)
	}

	// The hard cap still bounds memory when age cannot: push past
	// cap*hardFactor and verify the cache sheds down to it.
	hard := sup.cfg.ResultCacheCap * resultCacheHardFactor
	for i := storm + 1; i <= hard+20; i++ {
		target := fmt.Sprintf("w%d", i)
		if ack := call(t, client, sup.Addr(), Command{ID: uint64(i), Origin: "mgr/a", Op: OpRestartWorker, Target: target}); !ack.OK {
			t.Fatalf("command %d: %+v", i, ack)
		}
	}
	sup.mu.Lock()
	cached := len(sup.order)
	sup.mu.Unlock()
	if cached > hard {
		t.Fatalf("result cache holds %d entries, hard cap is %d", cached, hard)
	}
}

// TestResultCacheAgedEvictionRestoresCapacity: once results age past
// their retention window the soft cap reasserts itself, and a
// redelivery of an aged-out command re-executes — acceptable, because
// an origin still retrying after the retention window has violated
// the retry contract the window encodes.
func TestResultCacheAgedEvictionRestoresCapacity(t *testing.T) {
	host := newFakeHost()
	net := san.NewNetwork(2)
	sup := New(Config{
		Name: "sup", Node: "n0", Net: net, Prefix: "n", Host: host,
		ResultCacheCap:  4,
		ResultRetention: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go sup.Run(ctx)
	client := net.Endpoint(san.Addr{Node: "c0", Proc: "client"}, 64)
	go func() {
		for msg := range client.Inbox() {
			client.DeliverReply(msg)
		}
	}()

	for i := 1; i <= 10; i++ {
		call(t, client, sup.Addr(), Command{ID: uint64(i), Origin: "mgr/a", Op: OpRestartWorker, Target: fmt.Sprintf("w%d", i)})
	}
	time.Sleep(25 * time.Millisecond) // everything ages out of retention
	// The next completion triggers eviction down to the soft cap.
	call(t, client, sup.Addr(), Command{ID: 11, Origin: "mgr/a", Op: OpRestartWorker, Target: "w11"})
	sup.mu.Lock()
	cached := len(sup.order)
	sup.mu.Unlock()
	if cached > sup.cfg.ResultCacheCap {
		t.Fatalf("aged results not evicted: %d cached, soft cap %d", cached, sup.cfg.ResultCacheCap)
	}
	// An aged-out incident re-executes on redelivery — exactly once more.
	call(t, client, sup.Addr(), Command{ID: 1, Origin: "mgr/a", Op: OpRestartWorker, Target: "w1"})
	if got := host.count(OpRestartWorker, "w1"); got != 2 {
		t.Fatalf("aged redelivery executed %d times total, want 2", got)
	}
}

// TestStaleEpochCommandFenced: the supervisor refuses commands stamped
// with an epoch older than the highest it has observed — from commands
// or from group traffic via EpochFrom — so a deposed primary can never
// double-restart a component. Epoch 0 stays unfenced for operator
// tooling.
func TestStaleEpochCommandFenced(t *testing.T) {
	host := newFakeHost()
	net := san.NewNetwork(3)
	sup := New(Config{
		Name: "sup", Node: "n0", Net: net, Prefix: "n", Host: host,
		HeartbeatGroup: "ctl", HeartbeatInterval: 5 * time.Millisecond,
		EpochFrom: func(kind string, body any) (uint64, bool) {
			if kind != "test.beacon" {
				return 0, false
			}
			e, ok := body.(uint64)
			return e, ok
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go sup.Run(ctx)
	client := net.Endpoint(san.Addr{Node: "c0", Proc: "client"}, 64)
	go func() {
		for msg := range client.Inbox() {
			client.DeliverReply(msg)
		}
	}()

	// Epoch 3 command executes and raises the watermark.
	if ack := call(t, client, sup.Addr(), Command{ID: 1, Origin: "mgr/a", Op: OpRestartWorker, Target: "w0", Epoch: 3}); !ack.OK {
		t.Fatalf("epoch-3 command refused: %+v", ack)
	}
	// A deposed primary's epoch-2 command is fenced: refused, never
	// executed.
	ack := call(t, client, sup.Addr(), Command{ID: 9, Origin: "mgr/b", Op: OpRestartWorker, Target: "w0", Epoch: 2})
	if ack.OK {
		t.Fatal("stale-epoch command executed")
	}
	if got := host.count(OpRestartWorker, "w0"); got != 1 {
		t.Fatalf("stale-epoch command reached the host (%d executions)", got)
	}
	if st := sup.Stats(); st.StaleEpoch != 1 {
		t.Fatalf("stats %+v, want 1 stale-epoch refusal", st)
	}
	// Epoch 0 is no election claim at all: always accepted.
	if ack := call(t, client, sup.Addr(), Command{ID: 10, Origin: "op/cli", Op: OpRestartWorker, Target: "w1", Epoch: 0}); !ack.OK {
		t.Fatalf("unfenced command refused: %+v", ack)
	}

	// Beacons on the heartbeat group raise the watermark without any
	// command: an epoch-7 beacon fences even the regime that was valid a
	// moment ago.
	beaconer := net.Endpoint(san.Addr{Node: "m0", Proc: "mgr"}, 16)
	beaconer.Multicast("ctl", "test.beacon", uint64(7), 16)
	waitFor := time.Now().Add(2 * time.Second)
	for sup.Epoch() < 7 && time.Now().Before(waitFor) {
		time.Sleep(time.Millisecond)
	}
	if sup.Epoch() != 7 {
		t.Fatalf("beacon-observed epoch = %d, want 7", sup.Epoch())
	}
	ack = call(t, client, sup.Addr(), Command{ID: 11, Origin: "mgr/a", Op: OpRestartWorker, Target: "w0", Epoch: 3})
	if ack.OK {
		t.Fatal("command from a beacon-deposed epoch executed")
	}
}
