// Package supervisor implements the per-process supervisor daemon that
// makes the paper's process-peer supervision (§2, §3.2) work across OS
// process boundaries. Every core.Start process runs one: it announces
// itself on the SAN control group with periodic hello heartbeats
// (address-keyed, exactly like cache services) and executes
// restart/kill/spawn/disable/enable commands sent to it as SAN calls.
//
// The manager stays the brain — it watches heartbeats and decides what
// must be restarted — but the muscle is now location-transparent: when
// a component's process-peer duty points at another OS process, the
// manager delegates the restart to that process's supervisor instead
// of erroring out locally. This is the per-node resource/failover
// manager of the Microsoft Cluster Service design (Vogels et al.)
// grafted onto the SNS soft-state discipline: the supervisor keeps no
// durable state, re-announces itself from the very next heartbeat
// after a restart, and executes commands idempotently so a retried
// delivery can never restart a component twice.
package supervisor

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/san"
)

// Message kinds. MsgHello is multicast on the configured heartbeat
// group (the platform wires it to the SNS control group); MsgCmd /
// MsgAck are the unicast command protocol.
const (
	MsgHello = "sup.hello" // supervisor -> group: HelloMsg
	MsgCmd   = "sup.cmd"   // manager/monitor -> supervisor (Call): Command
	MsgAck   = "sup.ack"   // supervisor -> caller (reply): Ack
)

// Command operations.
const (
	// OpRestartFrontEnd restarts the named front end hosted by this
	// supervisor's process (kill any lingering instance, spawn a fresh
	// one under the same name).
	OpRestartFrontEnd = "restart-frontend"
	// OpRestartCache restarts the named cache partition (empty — it is
	// a cache — but the address and key range come back).
	OpRestartCache = "restart-cache"
	// OpRestartWorker kills and respawns the worker with the given id
	// under the same id and class — the hot-upgrade restart step.
	OpRestartWorker = "restart-worker"
	// OpSpawnWorker starts a fresh worker of the target class in this
	// process (cross-process replacement spawns).
	OpSpawnWorker = "spawn-worker"
	// OpKill crashes the named component without respawn — remote
	// fault injection for multi-process chaos.
	OpKill = "kill"
	// OpDisable / OpEnable forward a hot-upgrade disable/enable control
	// message to the named local component (§2.1).
	OpDisable = "disable"
	OpEnable  = "enable"
)

// HelloMsg is the supervisor's heartbeat body. Prefix is the node-name
// prefix of the process it governs: a manager resolving which
// supervisor owns a dead component matches the component's node name
// against the longest advertised prefix (Owner).
type HelloMsg struct {
	Name   string
	Addr   san.Addr
	Node   string
	Prefix string
}

// Owner resolves which supervisor owns a node by longest advertised
// prefix — the single ownership rule every resolver (manager restart
// sweeps, monitor upgrade waves) must share, or two watchers could
// delegate the same node's duties to different daemons.
func Owner(node string, sups map[string]HelloMsg) (HelloMsg, bool) {
	var best HelloMsg
	bestLen := -1
	for _, hb := range sups {
		if strings.HasPrefix(node, hb.Prefix) && len(hb.Prefix) > bestLen {
			best, bestLen = hb, len(hb.Prefix)
		}
	}
	return best, bestLen >= 0
}

// Command asks a supervisor to act. ID must be unique per Origin for
// one incident: retries of the same incident reuse the ID, so a
// command that executed but whose ack was lost is answered from the
// supervisor's result cache instead of being executed again.
//
// Epoch is the issuing manager's election epoch. A supervisor tracks
// the highest epoch it has observed (from commands and from beacons,
// via Config.EpochFrom) and refuses commands stamped with an older
// one — a deposed primary that has not yet heard the new primary's
// beacon can therefore never double-restart a component. Epoch 0
// means "no election claim" and is always accepted (operator tooling,
// the monitor's upgrade waves).
type Command struct {
	ID     uint64
	Origin string // issuing component's address, for idempotency scoping
	Op     string
	Target string // component name / worker id / class (OpSpawnWorker)
	Epoch  uint64 // issuing manager's election epoch; 0 = unfenced
}

// Ack answers a Command.
type Ack struct {
	ID  uint64
	OK  bool
	Err string // empty when OK
}

// Host is the supervisor's lever on its own process — the platform
// layer (core.System) implements it. All methods act locally: a
// component another process hosts is that process's supervisor's
// business.
type Host interface {
	RestartFrontEnd(name string) error
	RestartCache(name string) error
	// RestartWorker kills and respawns the worker with the same id.
	RestartWorker(id string) error
	// SpawnWorker starts a fresh worker of class.
	SpawnWorker(class string) error
	// KillComponent crashes a hosted component without respawn.
	KillComponent(name string) error
	// ComponentAddr resolves a hosted component's SAN address (for
	// forwarded disable/enable control messages).
	ComponentAddr(name string) (san.Addr, bool)
}

// Config assembles a supervisor.
type Config struct {
	Name string // process id; default "sup"
	Node string
	Net  *san.Network
	// Prefix is the hosting process's node-name prefix, advertised in
	// hellos so managers can resolve ownership.
	Prefix string
	// Host executes commands. A nil Host acks every command with an
	// error (useful only in tests).
	Host Host
	// HeartbeatGroup/HeartbeatInterval, when both set, make Run
	// multicast a HelloMsg every interval. The platform wires the
	// group to stub.GroupControl.
	HeartbeatGroup    string
	HeartbeatInterval time.Duration
	// DisableKind/EnableKind are the control message kinds forwarded
	// to components for OpDisable/OpEnable (the platform wires
	// stub.MsgDisable/stub.MsgEnable).
	DisableKind string
	EnableKind  string
	// EpochFrom, when set, makes Run join HeartbeatGroup and extract
	// an election epoch from every group message it sees (the platform
	// wires a closure that recognizes manager beacons — the supervisor
	// cannot import the stub package itself). The highest epoch
	// observed fences stale-epoch commands.
	EpochFrom func(kind string, body any) (uint64, bool)
	// ResultRetention is how long a completed command's result is
	// immune from cache eviction (so an origin still retrying that id
	// is guaranteed an idempotent answer). Default 5s; tests compress.
	ResultRetention time.Duration
	// ResultCacheCap overrides the result cache's soft capacity bound
	// (default resultCacheCap). Tests shrink it.
	ResultCacheCap int
}

// Stats counts supervisor activity.
type Stats struct {
	Commands   uint64 // commands executed (excluding duplicates)
	Dupes      uint64 // duplicate deliveries answered from the cache
	Failures   uint64 // commands whose execution returned an error
	Hellos     uint64 // heartbeats sent
	StaleEpoch uint64 // commands refused for carrying a deposed epoch
}

// Result cache bounds. The soft cap (resultCacheCap) is the steady-
// state size; entries younger than ResultRetention survive it, because
// evicting a result an origin is still retrying would re-execute the
// command — the exact bug idempotency exists to prevent. The hard cap
// is the memory backstop a pathological storm can push the cache to
// before age no longer matters.
const (
	resultCacheCap         = 512
	resultCacheHardFactor  = 8
	defaultResultRetention = 5 * time.Second
)

// Supervisor is the per-process daemon. It implements cluster.Process.
type Supervisor struct {
	cfg Config
	ep  *san.Endpoint

	nextID atomic.Uint64
	epoch  atomic.Uint64 // highest election epoch observed

	mu    sync.Mutex
	done  map[string]doneEntry // origin#id -> result, for idempotent redelivery
	order []string             // FIFO eviction order for done

	commands   atomic.Uint64
	dupes      atomic.Uint64
	failures   atomic.Uint64
	hellos     atomic.Uint64
	staleEpoch atomic.Uint64
}

// doneEntry is one cached command result plus its completion time —
// the age gate eviction keys on.
type doneEntry struct {
	ack Ack
	at  time.Time
}

// New creates a supervisor and eagerly registers its SAN endpoint so
// it is addressable as soon as it is spawned.
func New(cfg Config) *Supervisor {
	if cfg.Name == "" {
		cfg.Name = "sup"
	}
	if cfg.ResultRetention <= 0 {
		cfg.ResultRetention = defaultResultRetention
	}
	if cfg.ResultCacheCap <= 0 {
		cfg.ResultCacheCap = resultCacheCap
	}
	s := &Supervisor{cfg: cfg, done: make(map[string]doneEntry)}
	s.ep = cfg.Net.Endpoint(s.addr(), 256)
	return s
}

func (s *Supervisor) addr() san.Addr { return san.Addr{Node: s.cfg.Node, Proc: s.cfg.Name} }

// Addr returns the supervisor's SAN address.
func (s *Supervisor) Addr() san.Addr { return s.addr() }

// Prefix returns the node-name prefix this supervisor governs.
func (s *Supervisor) Prefix() string { return s.cfg.Prefix }

// ID implements cluster.Process.
func (s *Supervisor) ID() string { return s.cfg.Name }

// Stats returns a snapshot of counters.
func (s *Supervisor) Stats() Stats {
	return Stats{
		Commands:   s.commands.Load(),
		Dupes:      s.dupes.Load(),
		Failures:   s.failures.Load(),
		Hellos:     s.hellos.Load(),
		StaleEpoch: s.staleEpoch.Load(),
	}
}

// Epoch returns the highest election epoch this supervisor has seen.
func (s *Supervisor) Epoch() uint64 { return s.epoch.Load() }

// ObserveEpoch raises the supervisor's epoch watermark (monotonic).
func (s *Supervisor) ObserveEpoch(e uint64) {
	for {
		cur := s.epoch.Load()
		if e <= cur || s.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Hello builds the heartbeat body this supervisor announces.
func (s *Supervisor) Hello() HelloMsg {
	return HelloMsg{Name: s.cfg.Name, Addr: s.addr(), Node: s.cfg.Node, Prefix: s.cfg.Prefix}
}

// Run implements cluster.Process: heartbeat and serve commands until
// ctx is done.
func (s *Supervisor) Run(ctx context.Context) error {
	if s.ep == nil || !s.cfg.Net.Lookup(s.addr()) {
		s.ep = s.cfg.Net.Endpoint(s.addr(), 256)
	}
	ep := s.ep
	defer ep.Close()

	var hb <-chan time.Time
	if s.cfg.HeartbeatGroup != "" && s.cfg.HeartbeatInterval > 0 {
		t := time.NewTicker(s.cfg.HeartbeatInterval)
		defer t.Stop()
		hb = t.C
		s.heartbeat(ep) // announce immediately so delegation works now
	}
	if s.cfg.EpochFrom != nil && s.cfg.HeartbeatGroup != "" {
		// Observe election epochs from the control group's beacons so a
		// deposed primary's commands are fenced even before the new
		// primary sends us anything directly.
		ep.Join(s.cfg.HeartbeatGroup)
	}
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-hb:
			s.heartbeat(ep)
		case msg, ok := <-ep.Inbox():
			if !ok {
				return fmt.Errorf("supervisor: %s endpoint closed", s.cfg.Name)
			}
			if msg.Reply {
				// Acks for Invoke calls issued through this endpoint.
				ep.DeliverReply(msg)
				continue
			}
			if msg.Kind != MsgCmd {
				if s.cfg.EpochFrom != nil {
					if e, ok := s.cfg.EpochFrom(msg.Kind, msg.Body); ok {
						s.ObserveEpoch(e)
					}
				}
				msg.Release()
				continue
			}
			cmd, ok := msg.Body.(Command)
			if !ok {
				continue
			}
			ack := s.dispatch(cmd)
			_ = ep.Respond(msg, MsgAck, ack, 64)
		}
	}
}

func (s *Supervisor) heartbeat(ep *san.Endpoint) {
	s.hellos.Add(1)
	ep.Multicast(s.cfg.HeartbeatGroup, MsgHello, s.Hello(), 64)
}

// dispatch executes one command at most once: a duplicate delivery
// (same origin and id) of a command that already SUCCEEDED is
// answered from the result cache without touching the host again —
// the case idempotency exists for, a success whose ack was lost.
// Failures are deliberately NOT cached: a failed execution had no
// effect worth protecting, and pinning a transient refusal (say, a
// momentary capacity gap) against an id the caller reuses across
// retries would turn one bad moment into a permanent one.
//
// Eviction is age-gated, not pure FIFO: a result younger than
// ResultRetention may still have its origin retrying that id, and
// evicting it would re-execute the command on redelivery. Only when
// the cache balloons past the hard cap does memory safety outrank the
// retention promise.
func (s *Supervisor) dispatch(cmd Command) Ack {
	if cmd.Epoch != 0 {
		if cur := s.epoch.Load(); cmd.Epoch < cur {
			s.staleEpoch.Add(1)
			return Ack{ID: cmd.ID, Err: fmt.Sprintf("supervisor: stale epoch %d (current %d)", cmd.Epoch, cur)}
		}
		s.ObserveEpoch(cmd.Epoch)
	}
	key := cmd.Origin + "#" + fmt.Sprint(cmd.ID)
	s.mu.Lock()
	if e, seen := s.done[key]; seen {
		s.mu.Unlock()
		s.dupes.Add(1)
		return e.ack
	}
	s.mu.Unlock()

	ack := s.execute(cmd)
	if !ack.OK {
		return ack
	}

	now := time.Now()
	s.mu.Lock()
	if _, seen := s.done[key]; !seen {
		s.done[key] = doneEntry{ack: ack, at: now}
		s.order = append(s.order, key)
		hardCap := s.cfg.ResultCacheCap * resultCacheHardFactor
		for len(s.order) > s.cfg.ResultCacheCap {
			oldest := s.done[s.order[0]]
			if now.Sub(oldest.at) < s.cfg.ResultRetention && len(s.order) <= hardCap {
				break // still inside its retry window; keep it
			}
			delete(s.done, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.mu.Unlock()
	return ack
}

func (s *Supervisor) execute(cmd Command) Ack {
	s.commands.Add(1)
	var err error
	if s.cfg.Host == nil {
		err = fmt.Errorf("supervisor: no host wired")
	} else {
		switch cmd.Op {
		case OpRestartFrontEnd:
			err = s.cfg.Host.RestartFrontEnd(cmd.Target)
		case OpRestartCache:
			err = s.cfg.Host.RestartCache(cmd.Target)
		case OpRestartWorker:
			err = s.cfg.Host.RestartWorker(cmd.Target)
		case OpSpawnWorker:
			err = s.cfg.Host.SpawnWorker(cmd.Target)
		case OpKill:
			err = s.cfg.Host.KillComponent(cmd.Target)
		case OpDisable:
			err = s.forwardControl(cmd.Target, s.cfg.DisableKind)
		case OpEnable:
			err = s.forwardControl(cmd.Target, s.cfg.EnableKind)
		default:
			err = fmt.Errorf("supervisor: unknown op %q", cmd.Op)
		}
	}
	if err != nil {
		s.failures.Add(1)
		return Ack{ID: cmd.ID, Err: err.Error()}
	}
	return Ack{ID: cmd.ID, OK: true}
}

// forwardControl sends a hot-upgrade control message to a hosted
// component resolved by name.
func (s *Supervisor) forwardControl(name, kind string) error {
	if kind == "" {
		return fmt.Errorf("supervisor: no control kind configured")
	}
	addr, ok := s.cfg.Host.ComponentAddr(name)
	if !ok {
		return fmt.Errorf("supervisor: unknown component %s", name)
	}
	return s.ep.Send(addr, kind, nil, 16)
}

// NextCommandID mints an id for a new incident issued from this
// process (retries of the same incident must reuse the id).
func (s *Supervisor) NextCommandID() uint64 { return s.nextID.Add(1) }

// Invoke sends a command to a peer supervisor and waits for its ack —
// the client half of the protocol, used by selftests and operator
// tooling. The supervisor's Run loop must be live (it routes the reply
// back into the pending call). An ack with OK=false is returned with a
// nil error: the command was delivered and refused, which is an answer.
func (s *Supervisor) Invoke(ctx context.Context, to san.Addr, cmd Command) (Ack, error) {
	if cmd.Origin == "" {
		cmd.Origin = s.addr().String()
	}
	if cmd.ID == 0 {
		cmd.ID = s.NextCommandID()
	}
	resp, err := s.ep.Call(ctx, to, MsgCmd, cmd, 64)
	if err != nil {
		return Ack{}, err
	}
	ack, ok := resp.Body.(Ack)
	if !ok {
		return Ack{}, fmt.Errorf("supervisor: malformed ack %T", resp.Body)
	}
	return ack, nil
}
