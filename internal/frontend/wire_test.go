package frontend

import (
	"context"
	"testing"

	"repro/internal/media"
	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/tacc"
)

// TestFrontEndCachePathOverWire drives the front end's origin + cache
// path over a wire-mode SAN: the vcache get/put protocol (byte
// payloads included) must round-trip through the codec, and repeated
// requests must hit the cache exactly as in passthrough mode.
func TestFrontEndCachePathOverWire(t *testing.T) {
	net := san.NewNetwork(1, san.WithCodec(stub.WireCodec{}))
	fe, _, static := startFEOn(t, net, nil)
	static.Put("http://a/x.bin", tacc.Blob{MIME: media.MIMEOther, Data: make([]byte, 5000)})
	ctx := context.Background()

	resp, err := fe.Do(ctx, Request{URL: "http://a/x.bin", User: "u"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "original" || resp.Blob.Size() != 5000 {
		t.Fatalf("resp = %+v", resp)
	}
	if _, err := fe.Do(ctx, Request{URL: "http://a/x.bin", User: "u"}); err != nil {
		t.Fatal(err)
	}
	st := fe.Stats()
	if st.OriginFetches != 1 {
		t.Fatalf("origin fetches = %d, want 1 (cache must absorb the repeat over wire)", st.OriginFetches)
	}
	if st.CacheOriginal != 1 {
		t.Fatalf("cache-original hits = %d", st.CacheOriginal)
	}

	ns := net.Stats()
	if ns.WireEncodes == 0 || ns.WireDecodes == 0 {
		t.Fatalf("codec never ran: %+v", ns)
	}
	if ns.WireErrors != 0 {
		t.Fatalf("%d front-end messages failed serialization", ns.WireErrors)
	}
}
