package frontend

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/media"
	"repro/internal/origin"
	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/tacc"
	"repro/internal/vcache"
)

// benchFE boots a front end backed by one cache partition and a static
// origin, mirroring startFE but for benchmarks.
func benchFE(b *testing.B, mutate func(*Config)) (*FrontEnd, *origin.Static) {
	b.Helper()
	net := san.NewNetwork(1)
	cl := cluster.New(net)
	cl.AddNode("fe-node", false)
	cl.AddNode("c-node", false)

	static := origin.NewStatic()
	svc := vcache.NewService("cache0", net, "c-node", vcache.NewPartition(64<<20, nil))
	if _, err := cl.Spawn("c-node", svc); err != nil {
		b.Fatal(err)
	}

	cfg := Config{
		Name:        "fe0",
		Node:        "fe-node",
		Net:         net,
		Origin:      static,
		CacheNodes:  map[string]san.Addr{"cache0": svc.Addr()},
		Threads:     64,
		ManagerStub: stub.ManagerStubConfig{CallTimeout: 50 * time.Millisecond},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	fe := New(cfg)
	if _, err := cl.Spawn("fe-node", fe); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.StopAll)
	deadline := time.Now().Add(5 * time.Second)
	for !fe.Running() {
		if time.Now().After(deadline) {
			b.Fatal("front end never started")
		}
		time.Sleep(time.Millisecond)
	}
	return fe, static
}

// BenchmarkFrontEndHotKey drives concurrent requests for one hot URL
// through the full path: worker pool, virtual-cache probe over the SAN,
// origin on the first miss. The Zipf-skewed workloads of §4.1 make this
// the dominant request shape.
func BenchmarkFrontEndHotKey(b *testing.B) {
	fe, static := benchFE(b, nil)
	static.Put("http://a/hot.bin", tacc.Blob{MIME: media.MIMEOther, Data: make([]byte, 4096)})
	ctx := context.Background()
	// Warm the cache so the steady state is all hits.
	if _, err := fe.Do(ctx, Request{URL: "http://a/hot.bin"}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := fe.Do(ctx, Request{URL: "http://a/hot.bin"}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFrontEndZipfMix spreads parallel load over a small hot set,
// so distinct keys hash to distinct cache shards.
func BenchmarkFrontEndZipfMix(b *testing.B) {
	fe, static := benchFE(b, nil)
	urls := make([]string, 64)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://a/obj%d.bin", i)
		static.Put(urls[i], tacc.Blob{MIME: media.MIMEOther, Data: make([]byte, 4096)})
	}
	ctx := context.Background()
	for _, u := range urls {
		if _, err := fe.Do(ctx, Request{URL: u}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			// Crude Zipf-ish skew: half the traffic on the top 4 URLs.
			var u string
			if i%2 == 0 {
				u = urls[i%4]
			} else {
				u = urls[i%len(urls)]
			}
			if _, err := fe.Do(ctx, Request{URL: u}); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
