// Package frontend implements the SNS front end (paper §3.1.1): the
// component that presents the service interface to the outside world,
// shepherds each request — pair it with the user's profile, probe the
// virtual cache, dispatch a distiller pipeline via the manager stub,
// fall back to originals when workers fail — and sustains throughput
// with a large worker pool despite long blocking operations.
//
// The front end also hosts the service's control decisions: dispatch
// rules live here ("the behavior of the service as a whole [is]
// defined almost entirely in the front end"), workers stay simple.
package frontend

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/profiledb"
	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/tacc"
	"repro/internal/vcache"
)

// Request is one client request entering the front end.
type Request struct {
	URL  string
	User string
	// Raw bypasses distillation (the munger's "view original" link).
	Raw bool
}

// Response is what goes back to the client.
type Response struct {
	Blob tacc.Blob
	// Source records how the response was produced: "cache-distilled",
	// "cache-original", "distilled", "original", "fallback-original",
	// "fallback-stale".
	Source string
	// Degraded marks a BASE harvest reduction: the front end answered
	// from whatever it had on hand (a stale or undistilled cache
	// entry) instead of doing the full work, because doing the full
	// work would have missed the deadline or deepened an overload.
	// "An approximate answer delivered quickly is more useful than the
	// exact answer delivered slowly" (§3.1.8).
	Degraded bool
	// Trace is the request's end-to-end trace id, minted at admission.
	// HTTP adapters surface it (X-Trace-Id) so an operator can pull the
	// span tree from /trace?id= on any node that saw the request.
	Trace obs.TraceID

	// release, when non-nil, returns Blob.Data's backing buffer to the
	// SAN's receive pool: the cache-hit serve path is zero-copy, so the
	// bytes alias a pooled buffer instead of being cloned per request.
	release func()
}

// Release returns the response's backing buffer (if any) to the
// receive-buffer pool. Call it after the response body has been
// written out; Blob.Data must not be touched afterwards. Forgetting to
// call it never corrupts anything — the buffer just falls to the GC
// instead of recycling — and calling it on a copied (non-view)
// response is a no-op.
func (r *Response) Release() {
	if r.release != nil {
		r.release()
		r.release = nil
	}
}

// Config assembles a front end.
type Config struct {
	Name string
	Node string
	Net  *san.Network

	// Rules is the service's dispatch logic.
	Rules tacc.DispatchRule
	// Profiles is the write-through cache over the ACID profile DB.
	Profiles *profiledb.ReadCache
	// Origin fetches content on cache misses.
	Origin origin.Fetcher
	// CacheNodes maps cache partition names to their addresses.
	CacheNodes map[string]san.Addr

	// Threads is the worker-pool size (the paper's production front
	// end ran ~400 threads). Default 64.
	Threads int
	// QueueCap bounds the pending-request queue. Default 4*Threads.
	QueueCap int
	// CacheTTL is the TTL for objects we cache. Zero = no expiry.
	CacheTTL time.Duration
	// FetchTimeout bounds one origin fetch. Coalesced fetches run
	// detached from the leader's request context (one departing
	// client must not fail the whole flight), so only this timeout
	// and the front end's own lifecycle bound them. Default
	// 2 minutes — past the paper's observed 100 s worst-case miss
	// penalty (§4.4).
	FetchTimeout time.Duration
	// HeartbeatInterval paces FE heartbeats to the manager.
	HeartbeatInterval time.Duration
	// HTTPAddr is the host:port of this front end's HTTP adapter
	// (edge.FEServer). It rides every heartbeat so the edge can route
	// to the replica; empty means the FE is not HTTP-reachable and the
	// edge ignores it.
	HTTPAddr string
	// CacheTimeout bounds one virtual-cache round trip; an
	// unreachable cache partition reads as a miss after this long
	// (BASE: the cache is never a correctness dependency). Zero
	// keeps the vcache client default (2 s). Chaos scenarios that
	// partition the cache group tighten it so fallback-to-origin is
	// fast.
	CacheTimeout time.Duration
	// MinDistillSize: objects at or below this bypass distillation
	// (1 KB threshold, §4.1).
	MinDistillSize int
	// ManagerStub configures dispatch behavior.
	ManagerStub stub.ManagerStubConfig

	// RequestDeadline, when positive, is the end-to-end latency budget
	// stamped onto every request that arrives without its own context
	// deadline. It propagates with the request — through the cache
	// probes, into dispatch (TaskMsg.Deadline), down to the worker's
	// inbox — so every hop can drop work nobody awaits anymore instead
	// of executing it. Zero leaves requests unbounded (the caller's
	// context still applies).
	RequestDeadline time.Duration
	// MaxInflight bounds concurrently admitted requests (queued plus
	// executing). Requests beyond it take the degraded path — a stale
	// cache answer when one exists, a fast typed ErrOverloaded reply
	// otherwise — rather than queueing into a deadline they cannot
	// meet. Zero defaults to Threads+QueueCap (the pool's natural
	// capacity); negative disables the check.
	MaxInflight int
	// QueueHighWater, when positive, sheds on the lottery estimator's
	// queue-delta signal: if even the least-loaded worker's estimated
	// queue (ManagerStub.QueueEstimate) is at or past this depth, new
	// work would only age in worker inboxes, so it degrades or sheds
	// at admission instead. Zero disables the signal.
	QueueHighWater float64
	// BackpressureFn, when set, reports the cumulative count of sends
	// the transport refused for backpressure (e.g. the Backpressure
	// field of transport.Bridge stats). Growth between admission
	// checks marks the fabric saturated — remote congestion sheds
	// upstream here instead of piling more frames onto a stalled
	// peer.
	BackpressureFn func() uint64
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 64
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.Threads
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = stub.DefaultBeaconInterval
	}
	if c.MinDistillSize <= 0 {
		c.MinDistillSize = 1024
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 2 * time.Minute
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = c.Threads + c.QueueCap
	}
	return c
}

// Stats counts front-end activity.
type Stats struct {
	Requests       uint64
	CacheDistilled uint64 // served a cached post-transform object
	CacheOriginal  uint64 // original found in cache, then distilled
	OriginFetches  uint64
	Distilled      uint64
	PassedThrough  uint64
	Fallbacks      uint64 // distillation failed; original returned
	Errors         uint64

	// CoalescedOrigin counts requests that waited on another
	// request's in-flight origin fetch instead of stampeding the
	// origin; CoalescedDistill the same for distillation dispatch.
	CoalescedOrigin  uint64
	CoalescedDistill uint64

	// Shed counts requests refused outright at admission (typed
	// ErrOverloaded, no degraded answer existed); DegradedServes
	// counts saturated requests answered from stale/undistilled cache
	// data instead; Expired counts queued requests dropped at dequeue
	// because their deadline had already passed.
	Shed           uint64
	DegradedServes uint64
	Expired        uint64
}

type job struct {
	ctx  context.Context
	req  Request
	resp chan Response
	err  chan error
}

// FrontEnd implements cluster.Process.
type FrontEnd struct {
	cfg Config
	ep  *san.Endpoint

	mstub *stub.ManagerStub
	cache *vcache.Client
	jobs  chan job

	// Miss coalescing: concurrent requests for one original (or one
	// distilled variant) share a single origin fetch (or dispatch).
	origFlight    stub.FlightGroup[tacc.Blob]
	distillFlight stub.FlightGroup[tacc.Blob]

	running  atomic.Bool
	runDone  atomic.Pointer[chan struct{}] // closed when the current Run exits
	inflight atomic.Int64  // admitted requests currently queued or executing
	lastBP   atomic.Uint64 // last BackpressureFn sample (delta = congestion)
	stats    struct {
		requests, cacheDistilled, cacheOriginal, originFetches atomic.Uint64
		distilled, passedThrough, fallbacks, errors            atomic.Uint64
		coalescedOrigin, coalescedDistill                      atomic.Uint64
		shed, degradedServes, expired                          atomic.Uint64
	}

	mu       sync.Mutex
	disabled bool
}

// New creates a front end and eagerly registers its endpoint.
func New(cfg Config) *FrontEnd {
	cfg = cfg.withDefaults()
	fe := &FrontEnd{cfg: cfg, jobs: make(chan job, cfg.QueueCap)}
	fe.ep = cfg.Net.Endpoint(fe.addr(), 4096)
	fe.mstub = stub.NewManagerStub(fe.ep, cfg.ManagerStub)
	fe.cache = fe.newCacheClient()
	return fe
}

func (fe *FrontEnd) newCacheClient() *vcache.Client {
	c := vcache.NewClient(fe.ep)
	if fe.cfg.CacheTimeout > 0 {
		c.Timeout = fe.cfg.CacheTimeout
	}
	for name, addr := range fe.cfg.CacheNodes {
		c.AddNode(name, addr)
	}
	return c
}

func (fe *FrontEnd) addr() san.Addr { return san.Addr{Node: fe.cfg.Node, Proc: fe.cfg.Name} }

// Addr returns the front end's SAN address.
func (fe *FrontEnd) Addr() san.Addr { return fe.addr() }

// ID implements cluster.Process.
func (fe *FrontEnd) ID() string { return fe.cfg.Name }

// ManagerStub exposes the stub (for stats and tests).
func (fe *FrontEnd) ManagerStub() *stub.ManagerStub { return fe.mstub }

// Cache exposes the virtual-cache client (for membership changes).
func (fe *FrontEnd) Cache() *vcache.Client { return fe.cache }

// Stats returns a snapshot of counters.
func (fe *FrontEnd) Stats() Stats {
	return Stats{
		Requests:       fe.stats.requests.Load(),
		CacheDistilled: fe.stats.cacheDistilled.Load(),
		CacheOriginal:  fe.stats.cacheOriginal.Load(),
		OriginFetches:  fe.stats.originFetches.Load(),
		Distilled:      fe.stats.distilled.Load(),
		PassedThrough:  fe.stats.passedThrough.Load(),
		Fallbacks:      fe.stats.fallbacks.Load(),
		Errors:         fe.stats.errors.Load(),

		CoalescedOrigin:  fe.stats.coalescedOrigin.Load(),
		CoalescedDistill: fe.stats.coalescedDistill.Load(),

		Shed:           fe.stats.shed.Load(),
		DegradedServes: fe.stats.degradedServes.Load(),
		Expired:        fe.stats.expired.Load(),
	}
}

// Running reports whether the front end's Run loop is live.
func (fe *FrontEnd) Running() bool { return fe.running.Load() }

// Run implements cluster.Process: receive loop plus worker pool.
func (fe *FrontEnd) Run(ctx context.Context) error {
	if fe.ep == nil || !fe.cfg.Net.Lookup(fe.addr()) {
		fe.ep = fe.cfg.Net.Endpoint(fe.addr(), 4096)
		fe.mstub = stub.NewManagerStub(fe.ep, fe.cfg.ManagerStub)
		fe.cache = fe.newCacheClient()
	}
	ep := fe.ep
	defer ep.Close()
	defer fe.mstub.Stop()
	ep.Join(stub.GroupControl)

	fe.running.Store(true)
	defer fe.running.Store(false)
	// Closed on exit so Do calls whose job is still queued when the FE
	// dies fail fast instead of waiting on a worker that will never
	// answer (the caller may hold no deadline — e.g. the edge's HTTP
	// adapter — and a killed FE must read as an error, not a hang).
	done := make(chan struct{})
	fe.runDone.Store(&done)
	defer close(done)
	fe.cfg.Net.Registry().SetCollector("fe."+fe.cfg.Name, func(emit func(string, float64)) {
		st := fe.Stats()
		emit("requests", float64(st.Requests))
		emit("cache_distilled", float64(st.CacheDistilled))
		emit("cache_original", float64(st.CacheOriginal))
		emit("origin_fetches", float64(st.OriginFetches))
		emit("distilled", float64(st.Distilled))
		emit("fallbacks", float64(st.Fallbacks))
		emit("errors", float64(st.Errors))
		emit("shed", float64(st.Shed))
		emit("degraded", float64(st.DegradedServes))
		emit("expired", float64(st.Expired))
		emit("queue", float64(len(fe.jobs)))
		emit("inflight", float64(fe.inflight.Load()))
	})

	var wg sync.WaitGroup
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	for i := 0; i < fe.cfg.Threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-wctx.Done():
					return
				case j := <-fe.jobs:
					resp, err := fe.handle(j.ctx, wctx, j.req)
					if err != nil {
						j.err <- err
					} else {
						j.resp <- resp
					}
				}
			}
		}()
	}

	hb := time.NewTicker(fe.cfg.HeartbeatInterval)
	defer hb.Stop()
	fe.heartbeat(ep)

	var greeted san.Addr
	for {
		select {
		case <-ctx.Done():
			wcancel()
			wg.Wait()
			return nil
		case <-hb.C:
			fe.heartbeat(ep)
		case msg, ok := <-ep.Inbox():
			if !ok {
				wcancel()
				wg.Wait()
				return fmt.Errorf("frontend: %s endpoint closed", fe.cfg.Name)
			}
			if fe.mstub.HandleMessage(msg) {
				// Greet a newly discovered (or restarted) manager at
				// once, so the process-peer watch covers this front
				// end from its very first beacon — not a heartbeat
				// tick later.
				if mgr := fe.mstub.Manager(); !mgr.IsZero() && mgr != greeted {
					greeted = mgr
					fe.heartbeat(ep)
				}
				continue
			}
			switch msg.Kind {
			case stub.MsgDisable:
				fe.mu.Lock()
				fe.disabled = true
				fe.mu.Unlock()
				// Announce the drain at once — the edge must stop
				// routing here now, not a heartbeat tick later.
				fe.heartbeat(ep)
			case stub.MsgEnable:
				fe.mu.Lock()
				fe.disabled = false
				fe.mu.Unlock()
				fe.heartbeat(ep)
			}
		}
	}
}

func (fe *FrontEnd) heartbeat(ep *san.Endpoint) {
	// The liveness heartbeat is multicast on the control group, not
	// unicast to the primary: every standby manager replica mirrors the
	// front-end inventory from the same stream, so a freshly elected
	// primary takes over the FE process-peer watch with no
	// re-registration round (symmetric with cache and supervisor
	// hellos).
	fe.mu.Lock()
	draining := fe.disabled
	fe.mu.Unlock()
	ep.Multicast(stub.GroupControl, stub.MsgFEHello, stub.FEHeartbeat{
		Name:     fe.cfg.Name,
		Addr:     fe.addr(),
		Node:     fe.cfg.Node,
		HTTPAddr: fe.cfg.HTTPAddr,
		Draining: draining,
	}, 64)
	st := fe.Stats()
	ep.Multicast(stub.GroupReports, stub.MsgMonReport, stub.StatusReport{
		Component: fe.cfg.Name,
		Kind:      "frontend",
		Node:      fe.cfg.Node,
		Metrics: map[string]float64{
			"requests":  float64(st.Requests),
			"fallbacks": float64(st.Fallbacks),
			"errors":    float64(st.Errors),
			"queue":     float64(len(fe.jobs)),
			"shed":      float64(st.Shed),
			"degraded":  float64(st.DegradedServes),
		},
	}, 96)
}

// ErrDisabled is returned while the front end is disabled for a hot
// upgrade.
var ErrDisabled = fmt.Errorf("frontend: disabled for upgrade")

// ErrOverloaded is the typed overload reply: the front end shed the
// request at admission (saturated, and not even a degraded answer
// existed) or found its queue full. It is deliberately fast — no
// worker capacity, origin fetch, or dispatch retry was spent before
// returning it.
var ErrOverloaded = fmt.Errorf("frontend: request queue full")

// saturated is the admission-control estimator: it combines the local
// in-flight count, the lottery scheduler's queue-delta extrapolation
// for the worker pool, and the transport's backpressure counter into
// one question — would accepting this request plausibly meet its
// deadline, or only deepen the overload?
func (fe *FrontEnd) saturated() bool {
	if fe.cfg.MaxInflight > 0 && fe.inflight.Load() >= int64(fe.cfg.MaxInflight) {
		return true
	}
	if fn := fe.cfg.BackpressureFn; fn != nil {
		cur := fn()
		if last := fe.lastBP.Swap(cur); cur > last {
			// The transport refused sends since the last admission
			// check: a peer's reader is stalled. Piling more work on
			// only grows the refused-frame count.
			return true
		}
	}
	if hw := fe.cfg.QueueHighWater; hw > 0 {
		if est, known := fe.mstub.QueueEstimate(""); known && est >= hw {
			return true
		}
	}
	return false
}

// Do submits a request and waits for the response — the programmatic
// equivalent of an HTTP arrival (cmd/transend adapts net/http onto
// this). Under saturation it degrades before shedding: a stale cache
// entry past its TTL (Response.Degraded) beats a refusal, and a
// refusal (ErrOverloaded, fast and typed) beats a queued request that
// will miss its deadline anyway.
func (fe *FrontEnd) Do(ctx context.Context, req Request) (Response, error) {
	fe.mu.Lock()
	disabled := fe.disabled
	fe.mu.Unlock()
	if disabled {
		return Response{}, ErrDisabled
	}
	if !fe.running.Load() {
		return Response{}, fmt.Errorf("frontend: %s not running", fe.cfg.Name)
	}
	// The current run's death signal: if the FE is killed after this
	// job lands in the queue, no worker will ever answer it.
	var done chan struct{}
	if p := fe.runDone.Load(); p != nil {
		done = *p
	}
	if fe.cfg.RequestDeadline > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, fe.cfg.RequestDeadline)
			defer cancel()
		}
	}

	// Mint the request's trace id at admission (or adopt one the caller
	// already attached) — it rides the ctx through cache probes and
	// dispatch, crosses process boundaries on the wire, and keys the
	// span tree an operator pulls from /trace?id=.
	tracer := fe.cfg.Net.Tracer()
	trace := obs.TraceFrom(ctx)
	if !trace.Valid() {
		trace = tracer.NewTrace()
		ctx = obs.WithTrace(ctx, trace)
	}
	start := time.Now()
	// finish closes the root span. Forced outcomes (shed, degraded,
	// expired) record regardless of sampling — the requests that went
	// wrong are exactly the ones worth a trace.
	finish := func(note string, forced bool) {
		dur := time.Since(start)
		fe.cfg.Net.Registry().Histogram("fe."+fe.cfg.Name+".latency_ns", nil).Observe(float64(dur))
		sp := obs.Span{
			Trace: trace, Comp: fe.cfg.Name, Hop: obs.RootHop, Note: note,
			Start: start.UnixNano(), Dur: int64(dur),
		}
		if forced {
			tracer.ForceRecord(sp)
		} else {
			tracer.Record(sp)
		}
	}

	if !fe.saturated() {
		j := job{ctx: ctx, req: req, resp: make(chan Response, 1), err: make(chan error, 1)}
		select {
		case fe.jobs <- j:
			if trace.Sampled() {
				tracer.Record(obs.Span{
					Trace: trace, Comp: fe.cfg.Name, Hop: "fe.admit", Note: "ok",
					Start: start.UnixNano(), Dur: int64(time.Since(start)),
				})
			}
			fe.inflight.Add(1)
			defer fe.inflight.Add(-1)
			select {
			case resp := <-j.resp:
				resp.Trace = trace
				finish(resp.Source, false)
				return resp, nil
			case err := <-j.err:
				finish("error", false)
				return Response{}, err
			case <-ctx.Done():
				finish("expired", true)
				return Response{}, ctx.Err()
			case <-done:
				// The run exited — but a worker may have answered just
				// before it did, so prefer a buffered result over the
				// death signal.
				select {
				case resp := <-j.resp:
					resp.Trace = trace
					finish(resp.Source, false)
					return resp, nil
				case err := <-j.err:
					finish("error", false)
					return Response{}, err
				default:
					fe.stats.errors.Add(1)
					finish("stopped", true)
					return Response{}, fmt.Errorf("frontend: %s stopped", fe.cfg.Name)
				}
			}
		default:
			// Queue full is saturation by definition: fall through to
			// the degraded path.
		}
	}
	if resp, ok := fe.degradedServe(ctx, req); ok {
		tracer.ForceRecord(obs.Span{
			Trace: trace, Comp: fe.cfg.Name, Hop: "fe.admit", Note: "degraded",
			Start: start.UnixNano(),
		})
		resp.Trace = trace
		finish(resp.Source, true)
		return resp, nil
	}
	fe.stats.shed.Add(1)
	fe.stats.errors.Add(1)
	tracer.ForceRecord(obs.Span{
		Trace: trace, Comp: fe.cfg.Name, Hop: "fe.admit", Note: "shed",
		Start: start.UnixNano(),
	})
	finish("shed", true)
	return Response{}, ErrOverloaded
}

// degradedServe is the BASE harvest reduction an overloaded front end
// applies before refusing a request: answer from whatever the cache
// holds — the distilled variant or the original, fresh or past its TTL
// — without consuming a worker-pool slot, an origin fetch, or a
// dispatch. A fresh distilled hit is a full-quality answer and not
// marked Degraded (the cache probe is cheap either way); anything
// else served here is.
func (fe *FrontEnd) degradedServe(ctx context.Context, req Request) (Response, bool) {
	pipeline, profile := fe.plan(req)
	if len(pipeline) > 0 {
		key := pipeline.CacheKey(req.URL, profile)
		if data, mime, stale, release, ok := fe.cache.GetStaleView(ctx, key); ok {
			fe.stats.degradedServes.Add(1)
			resp := Response{
				Blob:    tacc.Blob{MIME: mime, Data: data},
				Source:  "cache-distilled",
				release: release,
			}
			if stale {
				resp.Source = "fallback-stale"
				resp.Degraded = true
			}
			return resp, true
		}
	}
	if data, mime, stale, release, ok := fe.cache.GetStaleView(ctx, "orig|"+req.URL); ok {
		fe.stats.degradedServes.Add(1)
		resp := Response{
			Blob:     tacc.Blob{MIME: mime, Data: data},
			Source:   "original",
			Degraded: len(pipeline) > 0, // undistilled when distillation was asked for
			release:  release,
		}
		if stale {
			resp.Source = "fallback-stale"
			resp.Degraded = true
		}
		return resp, true
	}
	return Response{}, false
}

// handle shepherds one request end to end. life is the front end's
// own lifecycle context: coalesced flights detach from the individual
// request's ctx (one departing client must not fail the whole flight)
// but still die with the process.
func (fe *FrontEnd) handle(ctx, life context.Context, req Request) (Response, error) {
	fe.stats.requests.Add(1)
	tracer := fe.cfg.Net.Tracer()
	trace := obs.TraceFrom(ctx)

	// 0. Drop expired work at dequeue: a request whose deadline passed
	// while it aged in the job queue has nobody awaiting it — the same
	// rule the workers apply to their inboxes.
	if err := ctx.Err(); err != nil {
		fe.stats.expired.Add(1)
		tracer.ForceRecord(obs.Span{
			Trace: trace, Comp: fe.cfg.Name, Hop: "fe.expired",
			Start: time.Now().UnixNano(),
		})
		return Response{}, err
	}

	// 1+2. Pair the request with the user's profile and let the
	// service-specific dispatch logic decide the pipeline.
	pipeline, profile := fe.plan(req)
	distillKey := pipeline.CacheKey(req.URL, profile)
	origKey := "orig|" + req.URL

	// 3. Distilled variant already cached? This is the steady-state
	// hot path, so it serves the view directly — the bytes stay in the
	// pooled receive buffer until the caller's Response.Release.
	if len(pipeline) > 0 {
		cstart := time.Now()
		data, mime, release, ok := fe.cache.GetView(ctx, distillKey)
		if trace.Sampled() {
			note := "miss"
			if ok {
				note = "hit"
			}
			tracer.Record(obs.Span{
				Trace: trace, Comp: fe.cfg.Name, Hop: "fe.cache", Note: note,
				Start: cstart.UnixNano(), Dur: int64(time.Since(cstart)),
			})
		}
		if ok {
			fe.stats.cacheDistilled.Add(1)
			return Response{
				Blob:    tacc.Blob{MIME: mime, Data: data},
				Source:  "cache-distilled",
				release: release,
			}, nil
		}
	}

	// 4. Fetch the original (cache first, then origin). Concurrent
	// misses on one URL coalesce into a single origin fetch: the
	// leader fetches and populates the cache, followers share the
	// result instead of stampeding the origin.
	var orig tacc.Blob
	if data, mime, ok := fe.cache.Get(ctx, origKey); ok {
		fe.stats.cacheOriginal.Add(1)
		orig = tacc.Blob{MIME: mime, Data: data}
	} else {
		if fe.cfg.Origin == nil {
			fe.stats.errors.Add(1)
			return Response{}, fmt.Errorf("frontend: no origin configured for %s", req.URL)
		}
		fetched, err, shared := fe.origFlight.Do(ctx, origKey, func() (tacc.Blob, error) {
			fctx, cancel := context.WithTimeout(life, fe.cfg.FetchTimeout)
			defer cancel()
			blob, err := fe.cfg.Origin.Fetch(fctx, req.URL)
			if err != nil {
				return tacc.Blob{}, err
			}
			fe.stats.originFetches.Add(1)
			fe.cache.Put(fctx, origKey, blob.Data, blob.MIME, fe.cfg.CacheTTL)
			return blob, nil
		})
		if shared {
			fe.stats.coalescedOrigin.Add(1)
		}
		if err != nil {
			fe.stats.errors.Add(1)
			return Response{}, fmt.Errorf("frontend: fetch %s: %w", req.URL, err)
		}
		orig = fetched
	}

	// 5. Pass small or rule-less content through unmodified.
	if len(pipeline) == 0 || orig.Size() <= fe.cfg.MinDistillSize {
		fe.stats.passedThrough.Add(1)
		return Response{Blob: orig, Source: "original"}, nil
	}

	// 6. Dispatch the pipeline, coalescing concurrent requests for
	// the same distilled variant into one dispatch (and one inject).
	// Failure means a degraded but fast answer, never an error page
	// with nothing in it: "in all cases, an approximate answer
	// delivered quickly is more useful than the exact answer
	// delivered slowly" (§3.1.8).
	out, err, shared := fe.distillFlight.Do(ctx, distillKey, func() (tacc.Blob, error) {
		// Detached like the origin flight; dispatch is already
		// bounded by the stub's per-attempt CallTimeout and retry
		// budget. The flight leader's deadline still rides along so
		// the stub stamps it into TaskMsg and workers can drop the
		// task once nobody awaits it — and so does its trace id, so
		// the dispatch and worker hops join the leader's span tree.
		dctx := life
		if trace.Valid() {
			dctx = obs.WithTrace(dctx, trace)
		}
		if dl, ok := ctx.Deadline(); ok {
			var cancel context.CancelFunc
			dctx, cancel = context.WithDeadline(dctx, dl)
			defer cancel()
		}
		task := &tacc.Task{Key: req.URL, Input: orig, Profile: profile}
		blob, err := fe.mstub.DispatchPipeline(dctx, pipeline, task)
		if err != nil {
			return tacc.Blob{}, err
		}
		// 7. Inject the distilled variant for future hits.
		fe.cache.Inject(dctx, distillKey, blob.Data, blob.MIME, fe.cfg.CacheTTL)
		return blob, nil
	})
	if shared {
		fe.stats.coalescedDistill.Add(1)
	}
	if err != nil {
		fe.stats.fallbacks.Add(1)
		return Response{
			Blob:   orig.WithMeta("degraded", err.Error()),
			Source: "fallback-original",
		}, nil
	}
	fe.stats.distilled.Add(1)
	return Response{Blob: out, Source: "distilled"}, nil
}

// plan pairs a request with its user profile and lets the dispatch
// rules pick the pipeline — the first two steps of every request,
// shared by the full handle path and the degraded-serve path.
func (fe *FrontEnd) plan(req Request) (tacc.Pipeline, map[string]string) {
	var profile map[string]string
	if fe.cfg.Profiles != nil && req.User != "" {
		profile = fe.cfg.Profiles.Get(req.User)
	}
	var pipeline tacc.Pipeline
	if fe.cfg.Rules != nil && !req.Raw {
		pipeline = fe.cfg.Rules(req.URL, mimeHint(req.URL), profile)
	}
	return pipeline, profile
}

// mimeHint guesses the MIME type from the URL extension so dispatch
// rules can run before the content arrives; rules that need certainty
// can re-check after fetch (our distillers verify magic bytes anyway).
func mimeHint(url string) string {
	switch {
	case strings.HasSuffix(url, ".sgif"):
		return "image/sgif"
	case strings.HasSuffix(url, ".sjpg"):
		return "image/sjpg"
	case strings.HasSuffix(url, ".html"), strings.HasSuffix(url, "/"):
		return "text/html"
	default:
		return "application/octet-stream"
	}
}
