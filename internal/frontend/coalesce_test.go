package frontend

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/origin"
	"repro/internal/tacc"
)

// countingFetcher wraps a Fetcher, counting fetches and holding each
// one long enough for concurrent requests to pile up.
type countingFetcher struct {
	inner   origin.Fetcher
	delay   time.Duration
	fetches atomic.Int64
}

func (c *countingFetcher) Fetch(ctx context.Context, url string) (tacc.Blob, error) {
	c.fetches.Add(1)
	select {
	case <-time.After(c.delay):
	case <-ctx.Done():
		return tacc.Blob{}, ctx.Err()
	}
	return c.inner.Fetch(ctx, url)
}

func TestConcurrentMissesCoalesceToOneFetch(t *testing.T) {
	static := origin.NewStatic()
	counter := &countingFetcher{inner: static, delay: 50 * time.Millisecond}
	fe, _, _ := startFE(t, func(cfg *Config) {
		cfg.Origin = counter
		cfg.Threads = 32
	})
	static.Put("http://a/hot.bin", tacc.Blob{MIME: media.MIMEOther, Data: make([]byte, 5000)})

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := fe.Do(context.Background(), Request{URL: "http://a/hot.bin"})
			if err != nil {
				errs <- err
				return
			}
			if resp.Blob.Size() != 5000 {
				t.Errorf("short response: %d bytes", resp.Blob.Size())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := counter.fetches.Load(); got != 1 {
		t.Fatalf("origin fetched %d times for one hot key, want 1", got)
	}
	st := fe.Stats()
	if st.OriginFetches != 1 {
		t.Fatalf("stats.OriginFetches = %d, want 1", st.OriginFetches)
	}
	if st.CoalescedOrigin != clients-1 {
		t.Fatalf("stats.CoalescedOrigin = %d, want %d", st.CoalescedOrigin, clients-1)
	}
}

func TestConcurrentDistillMissesCoalesce(t *testing.T) {
	// No workers exist, so every dispatch fails over to the original —
	// but concurrent requests for one distilled variant must still
	// share a single dispatch attempt.
	static := origin.NewStatic()
	counter := &countingFetcher{inner: static, delay: 20 * time.Millisecond}
	fe, _, _ := startFE(t, func(cfg *Config) {
		cfg.Origin = counter
		cfg.Threads = 32
		cfg.Rules = func(url, mime string, profile map[string]string) tacc.Pipeline {
			return tacc.Pipeline{{Class: "distill-sjpg"}}
		}
	})
	static.Put("http://a/big.sjpg", tacc.Blob{MIME: media.MIMESJPG, Data: make([]byte, 9000)})

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := fe.Do(context.Background(), Request{URL: "http://a/big.sjpg"})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			if resp.Source != "fallback-original" {
				t.Errorf("source = %s", resp.Source)
			}
		}()
	}
	wg.Wait()
	if got := fe.ManagerStub().Stats().Dispatches; got != 1 {
		t.Fatalf("dispatches = %d for one hot variant, want 1", got)
	}
	st := fe.Stats()
	if st.CoalescedDistill != clients-1 {
		t.Fatalf("stats.CoalescedDistill = %d, want %d", st.CoalescedDistill, clients-1)
	}
	if st.Fallbacks != clients {
		t.Fatalf("stats.Fallbacks = %d, want %d", st.Fallbacks, clients)
	}
}
