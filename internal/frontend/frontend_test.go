package frontend

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/media"
	"repro/internal/origin"
	"repro/internal/profiledb"
	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/tacc"
	"repro/internal/vcache"
)

// startFE boots a front end with a static origin, optional cache
// nodes, and no manager (pass-through paths only unless a rules+worker
// harness is added by the test).
func startFE(t *testing.T, mutate func(*Config)) (*FrontEnd, *cluster.Cluster, *origin.Static) {
	t.Helper()
	return startFEOn(t, san.NewNetwork(1), mutate)
}

// startFEOn is startFE over a caller-built network (e.g. one with the
// wire codec installed).
func startFEOn(t *testing.T, net *san.Network, mutate func(*Config)) (*FrontEnd, *cluster.Cluster, *origin.Static) {
	t.Helper()
	cl := cluster.New(net)
	cl.AddNode("fe-node", false)
	cl.AddNode("c-node", false)

	static := origin.NewStatic()
	db, err := profiledb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	// One cache partition.
	svc := vcache.NewService("cache0", net, "c-node", vcache.NewPartition(1<<20, nil))
	if _, err := cl.Spawn("c-node", svc); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		Name:           "fe0",
		Node:           "fe-node",
		Net:            net,
		Profiles:       profiledb.NewReadCache(db),
		Origin:         static,
		CacheNodes:     map[string]san.Addr{"cache0": svc.Addr()},
		Threads:        8,
		MinDistillSize: 100,
		ManagerStub:    stub.ManagerStubConfig{CallTimeout: 50 * time.Millisecond},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	fe := New(cfg)
	if _, err := cl.Spawn("fe-node", fe); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.StopAll)
	waitFor(t, "fe running", fe.Running)
	return fe, cl, static
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPassThroughAndOriginCaching(t *testing.T) {
	fe, _, static := startFE(t, nil)
	static.Put("http://a/x.bin", tacc.Blob{MIME: media.MIMEOther, Data: make([]byte, 5000)})
	ctx := context.Background()

	resp, err := fe.Do(ctx, Request{URL: "http://a/x.bin", User: "u"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "original" || resp.Blob.Size() != 5000 {
		t.Fatalf("resp = %+v", resp)
	}
	// Second request: original served from the virtual cache.
	resp2, err := fe.Do(ctx, Request{URL: "http://a/x.bin", User: "u"})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Source != "original" {
		t.Fatalf("source = %s", resp2.Source)
	}
	st := fe.Stats()
	if st.OriginFetches != 1 {
		t.Fatalf("origin fetches = %d, want 1 (cache absorbed the repeat)", st.OriginFetches)
	}
	if st.CacheOriginal != 1 {
		t.Fatalf("cache-original hits = %d", st.CacheOriginal)
	}
}

func TestOriginErrorSurfaces(t *testing.T) {
	fe, _, _ := startFE(t, nil)
	_, err := fe.Do(context.Background(), Request{URL: "http://missing/x.bin", User: "u"})
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
	if fe.Stats().Errors != 1 {
		t.Fatalf("errors = %d", fe.Stats().Errors)
	}
}

func TestFallbackWhenNoWorkers(t *testing.T) {
	// Rules demand distillation but there is no manager and no
	// workers: the front end returns the original (approximate
	// answer), not an error.
	fe, _, static := startFE(t, func(cfg *Config) {
		cfg.Rules = func(url, mime string, profile map[string]string) tacc.Pipeline {
			return tacc.Pipeline{{Class: "distill-sjpg"}}
		}
	})
	static.Put("http://a/big.sjpg", tacc.Blob{MIME: media.MIMESJPG, Data: make([]byte, 9000)})
	resp, err := fe.Do(context.Background(), Request{URL: "http://a/big.sjpg", User: "u"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "fallback-original" {
		t.Fatalf("source = %s", resp.Source)
	}
	if resp.Blob.Meta["degraded"] == "" {
		t.Fatal("degraded marker missing")
	}
	if fe.Stats().Fallbacks != 1 {
		t.Fatalf("fallbacks = %d", fe.Stats().Fallbacks)
	}
}

func TestRawBypassesRules(t *testing.T) {
	called := false
	fe, _, static := startFE(t, func(cfg *Config) {
		cfg.Rules = func(url, mime string, profile map[string]string) tacc.Pipeline {
			called = true
			return tacc.Pipeline{{Class: "x"}}
		}
	})
	static.Put("http://a/p.html", tacc.Blob{MIME: media.MIMEHTML, Data: make([]byte, 3000)})
	resp, err := fe.Do(context.Background(), Request{URL: "http://a/p.html", User: "u", Raw: true})
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("rules consulted for a raw request")
	}
	if resp.Source != "original" {
		t.Fatalf("source = %s", resp.Source)
	}
}

func TestSmallContentSkipsDistillation(t *testing.T) {
	fe, _, static := startFE(t, func(cfg *Config) {
		cfg.MinDistillSize = 1024
		cfg.Rules = func(url, mime string, profile map[string]string) tacc.Pipeline {
			return tacc.Pipeline{{Class: "never-exists"}}
		}
	})
	static.Put("http://a/icon.sgif", tacc.Blob{MIME: media.MIMESGIF, Data: make([]byte, 300)})
	resp, err := fe.Do(context.Background(), Request{URL: "http://a/icon.sgif", User: "u"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "original" {
		t.Fatalf("source = %s (1KB threshold must bypass the pipeline)", resp.Source)
	}
	if fe.Stats().Fallbacks != 0 {
		t.Fatal("threshold bypass went through dispatch")
	}
}

// slowFetcher wraps a Fetcher with a fixed delay, standing in for the
// wide-area miss penalty.
type slowFetcher struct {
	inner origin.Fetcher
	delay time.Duration
}

func (s slowFetcher) Fetch(ctx context.Context, url string) (tacc.Blob, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return tacc.Blob{}, ctx.Err()
	}
	return s.inner.Fetch(ctx, url)
}

func TestOverload(t *testing.T) {
	// A tiny pool with a slow origin: fill both admission slots with
	// slow fetches, and the front end sheds further load instead of
	// blocking forever. MaxInflight defaults to Threads+QueueCap = 2.
	static := origin.NewStatic()
	fe, _, _ := startFE(t, func(cfg *Config) {
		cfg.Threads = 1
		cfg.QueueCap = 1
		cfg.Origin = slowFetcher{inner: static, delay: time.Second}
	})
	for i := 0; i < 3; i++ {
		static.Put(fmt.Sprintf("http://a/x%d.bin", i),
			tacc.Blob{MIME: media.MIMEOther, Data: make([]byte, 200)})
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Occupy both inflight slots: one request on the worker thread,
	// one in the queue, each pinned to the origin for a full second.
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			fe.Do(ctx, Request{URL: fmt.Sprintf("http://a/x%d.bin", i), User: "u"})
			done <- struct{}{}
		}(i)
	}
	waitFor(t, "both admission slots held", func() bool {
		return fe.inflight.Load() >= 2
	})
	// A saturated front end degrades to whatever the cache holds
	// before shedding, so only a never-cached probe is guaranteed to
	// reach the shed rung — and it must be the typed refusal, fast,
	// not a queued request waiting out the origin delay.
	if _, err := fe.Do(ctx, Request{URL: "http://a/x2.bin"}); err != ErrOverloaded {
		t.Fatalf("saturated probe: err = %v, want ErrOverloaded", err)
	}
	if st := fe.Stats(); st.Shed == 0 {
		t.Fatalf("stats = %+v, want Shed > 0", st)
	}
	cancel() // release the pinned requests
	<-done
	<-done
}

func TestDisabledFrontEndRejects(t *testing.T) {
	fe, _, static := startFE(t, nil)
	static.Put("http://a/x.bin", tacc.Blob{MIME: media.MIMEOther, Data: make([]byte, 200)})
	mon := fe.cfg.Net.Endpoint(san.Addr{Node: "m", Proc: "mon"}, 8)
	if err := mon.Send(fe.Addr(), stub.MsgDisable, nil, 8); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "disabled", func() bool {
		_, err := fe.Do(context.Background(), Request{URL: "http://a/x.bin"})
		return err == ErrDisabled
	})
	if err := mon.Send(fe.Addr(), stub.MsgEnable, nil, 8); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-enabled", func() bool {
		_, err := fe.Do(context.Background(), Request{URL: "http://a/x.bin"})
		return err == nil
	})
}

func TestProfilePairing(t *testing.T) {
	var gotProfile map[string]string
	fe, _, static := startFE(t, func(cfg *Config) {
		cfg.Rules = func(url, mime string, profile map[string]string) tacc.Pipeline {
			gotProfile = profile
			return nil
		}
	})
	if err := fe.cfg.Profiles.Set("alice", "quality", "10"); err != nil {
		t.Fatal(err)
	}
	static.Put("http://a/x.html", tacc.Blob{MIME: media.MIMEHTML, Data: make([]byte, 2000)})
	if _, err := fe.Do(context.Background(), Request{URL: "http://a/x.html", User: "alice"}); err != nil {
		t.Fatal(err)
	}
	if gotProfile["quality"] != "10" {
		t.Fatalf("profile not paired with request: %v", gotProfile)
	}
}

func TestMimeHint(t *testing.T) {
	cases := map[string]string{
		"http://x/a.sgif": "image/sgif",
		"http://x/a.sjpg": "image/sjpg",
		"http://x/a.html": "text/html",
		"http://x/dir/":   "text/html",
		"http://x/a.zip":  "application/octet-stream",
	}
	for url, want := range cases {
		if got := mimeHint(url); got != want {
			t.Fatalf("mimeHint(%s) = %s, want %s", url, got, want)
		}
	}
}

func TestDoOnStoppedFrontEnd(t *testing.T) {
	fe, cl, _ := startFE(t, nil)
	cl.StopAll()
	waitFor(t, "stopped", func() bool { return !fe.Running() })
	if _, err := fe.Do(context.Background(), Request{URL: "http://a/x"}); err == nil {
		t.Fatal("Do succeeded on stopped front end")
	}
}
