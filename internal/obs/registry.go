package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Add is a single
// atomic op; hold the pointer returned by Registry.Counter rather
// than re-resolving the name per event.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets are the upper bounds, in nanoseconds, used
// when a histogram is created with nil buckets: 1µs up to 10s in
// roughly-log-spaced steps.
var DefaultLatencyBuckets = []float64{
	1e3, 1e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7,
	1e8, 2.5e8, 5e8, 1e9, 2.5e9, 5e9, 1e10,
}

// Histogram counts observations into fixed buckets (cumulative at
// render time, like Prometheus). Observe is a few atomic ops and a
// short linear scan over the bounds; no locks.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
	total  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Collector is a named callback that publishes point-in-time values
// from an existing stats struct into a snapshot. The emit function is
// only valid for the duration of the call.
type Collector func(emit func(name string, v float64))

// Registry is the process-wide metric namespace. Get-or-create
// lookups take a lock; the returned handles do not.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors map[string]Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		collectors: make(map[string]Collector),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds (DefaultLatencyBuckets when nil)
// on first use. Bounds are fixed at creation; later callers get the
// existing histogram regardless of the bounds they pass.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if bounds == nil {
			bounds = DefaultLatencyBuckets
		}
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// SetCollector registers (or replaces — restarts reuse names) the
// collector published under name.
func (r *Registry) SetCollector(name string, fn Collector) {
	r.mu.Lock()
	r.collectors[name] = fn
	r.mu.Unlock()
}

// DropCollector removes a collector; absent names are a no-op.
func (r *Registry) DropCollector(name string) {
	r.mu.Lock()
	delete(r.collectors, name)
	r.mu.Unlock()
}

// Snapshot folds every counter, gauge, collector emission, and
// histogram summary (<name>.count / <name>.sum) into one flat map.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+".count"] = float64(h.Count())
		out[name+".sum"] = h.Sum()
	}
	colls := make(map[string]Collector, len(r.collectors))
	for name, fn := range r.collectors {
		colls[name] = fn
	}
	r.mu.RUnlock()
	// Collectors run outside the registry lock: they read foreign
	// stats structs that may themselves grab locks.
	for prefix, fn := range colls {
		fn(func(name string, v float64) {
			out[prefix+"."+name] = v
		})
	}
	return out
}

// promName converts a dotted metric name to a Prometheus-legal one:
// sns_fe_fe0_requests.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("sns_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Histograms emit cumulative
// _bucket/_sum/_count series; collector values render as gauges.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	type hsnap struct {
		name   string
		bounds []float64
		counts []uint64
		sum    float64
		total  uint64
	}
	counters := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make([]hsnap, 0, len(r.hists))
	for name, h := range r.hists {
		hs := hsnap{name: name, bounds: h.bounds, counts: make([]uint64, len(h.counts)), sum: h.Sum(), total: h.Count()}
		for i := range h.counts {
			hs.counts[i] = h.counts[i].Load()
		}
		hists = append(hists, hs)
	}
	colls := make(map[string]Collector, len(r.collectors))
	for name, fn := range r.collectors {
		colls[name] = fn
	}
	r.mu.RUnlock()

	for prefix, fn := range colls {
		fn(func(name string, v float64) {
			gauges[prefix+"."+name] = v
		})
	}

	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name])
	}

	names = names[:0]
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, gauges[name])
	}

	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, h := range hists {
		pn := promName(h.name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pn, bound, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.total)
		fmt.Fprintf(w, "%s_sum %g\n", pn, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.total)
	}
}
