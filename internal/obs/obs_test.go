package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := TraceID(0xdeadbeef01)
	got, err := ParseTraceID(id.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != id {
		t.Fatalf("round trip: got %v want %v", got, id)
	}
	if _, err := ParseTraceID("zz"); err == nil {
		t.Fatal("expected error for bad hex")
	}
	if TraceID(0).Valid() {
		t.Fatal("zero id must be invalid")
	}
}

// Sampling must be deterministic given the seed and mint order, and
// honor the 1-in-rate contract exactly.
func TestSamplerDeterministic(t *testing.T) {
	mint := func(seed uint64, rate, n int) ([]TraceID, int) {
		tr := NewTracer(seed, 0)
		tr.SetSampleRate(rate)
		ids := make([]TraceID, n)
		sampled := 0
		for i := range ids {
			ids[i] = tr.NewTrace()
			if ids[i].Sampled() {
				sampled++
			}
		}
		return ids, sampled
	}

	a, na := mint(42, 8, 256)
	b, nb := mint(42, 8, 256)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mint %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	if na != nb || na != 256/8 {
		t.Fatalf("sampled %d/%d, want exactly %d", na, nb, 256/8)
	}

	c, _ := mint(43, 8, 256)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical id streams")
	}

	if _, n := mint(1, 1, 100); n != 100 {
		t.Fatalf("rate 1 sampled %d/100", n)
	}
	if _, n := mint(1, 0, 100); n != 0 {
		t.Fatalf("rate 0 sampled %d/100", n)
	}
	tr := NewTracer(1, 0)
	tr.SetSampleRate(0)
	if id := tr.NewTrace(); !id.Valid() || id.Sampled() {
		t.Fatalf("rate 0 must still mint valid unsampled ids, got %v", id)
	}
}

func TestRecordRespectsSampling(t *testing.T) {
	tr := NewTracer(7, 16)
	tr.SetProc("p0")
	unsampled := TraceID(2)
	sampled := TraceID(3)

	tr.Record(Span{Trace: unsampled, Hop: "x"})
	if got := tr.Spans(unsampled); len(got) != 0 {
		t.Fatalf("unsampled trace recorded: %v", got)
	}
	tr.ForceRecord(Span{Trace: unsampled, Hop: "fe.admit", Note: "shed"})
	if got := tr.Spans(unsampled); len(got) != 1 || got[0].Proc != "p0" {
		t.Fatalf("forced span missing or proc unset: %v", got)
	}
	tr.Record(Span{Trace: sampled, Hop: "x", Proc: "other"})
	if got := tr.Spans(sampled); len(got) != 1 || got[0].Proc != "other" {
		t.Fatalf("explicit proc overwritten: %v", got)
	}
}

func TestRingEviction(t *testing.T) {
	const cap = 8
	tr := NewTracer(1, cap)
	id := TraceID(3)
	for i := 0; i < cap+3; i++ {
		tr.Record(Span{Trace: id, Hop: "h", Start: int64(i)})
	}
	got := tr.Spans(id)
	if len(got) != cap {
		t.Fatalf("ring held %d spans, want %d", len(got), cap)
	}
	// Oldest three must be gone, order by start preserved.
	if got[0].Start != 3 || got[len(got)-1].Start != cap+2 {
		t.Fatalf("wrong eviction window: first=%d last=%d", got[0].Start, got[len(got)-1].Start)
	}
	if tr.RingLen() != cap {
		t.Fatalf("RingLen=%d want %d", tr.RingLen(), cap)
	}
}

func TestTakeNewPublishesLocalOnly(t *testing.T) {
	tr := NewTracer(1, 16)
	id := TraceID(5)
	tr.Record(Span{Trace: id, Hop: "a"})
	tr.Ingest([]Span{{Trace: id, Hop: "remote", Proc: "peer"}})
	tr.Record(Span{Trace: id, Hop: "b"})

	got := tr.TakeNew(100)
	if len(got) != 2 || got[0].Hop != "a" || got[1].Hop != "b" {
		t.Fatalf("TakeNew leaked ingested spans or dropped local ones: %+v", got)
	}
	if again := tr.TakeNew(100); len(again) != 0 {
		t.Fatalf("TakeNew returned spans twice: %+v", again)
	}
	// All three (local + ingested) remain queryable.
	if all := tr.Spans(id); len(all) != 3 {
		t.Fatalf("Spans=%d want 3", len(all))
	}
}

func TestTakeNewSkipsEvicted(t *testing.T) {
	tr := NewTracer(1, 4)
	id := TraceID(7)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Trace: id, Start: int64(i)})
	}
	got := tr.TakeNew(100)
	if len(got) != 4 || got[0].Start != 6 {
		t.Fatalf("expected last 4 spans after overflow, got %+v", got)
	}
}

func TestSlowRequestLog(t *testing.T) {
	tr := NewTracer(1, 16)
	tr.SetProc("p0")
	tr.SetSlowThreshold(10 * time.Millisecond)
	var mu sync.Mutex
	var lines []string
	tr.SetLogf(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	id := TraceID(9)
	tr.Record(Span{Trace: id, Hop: "worker.service", Comp: "w0", Dur: int64(8 * time.Millisecond)})
	tr.Record(Span{Trace: id, Hop: RootHop, Comp: "fe0", Dur: int64(20 * time.Millisecond)})
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 3 {
		t.Fatalf("slow log lines=%d want 3: %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], id.String()) || !strings.Contains(lines[0], "20ms") {
		t.Fatalf("bad slow header: %q", lines[0])
	}

	// Under threshold: no new output.
	tr.Record(Span{Trace: TraceID(11), Hop: RootHop, Dur: int64(time.Millisecond)})
	if len(lines) != 3 {
		t.Fatalf("fast request logged: %v", lines)
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != 0 {
		t.Fatal("empty ctx must carry no trace")
	}
	ctx2 := WithTrace(ctx, TraceID(21))
	if TraceFrom(ctx2) != TraceID(21) {
		t.Fatal("trace did not round-trip through ctx")
	}
	if WithTrace(ctx, 0) != ctx {
		t.Fatal("zero trace should not wrap the ctx")
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fe.fe0.requests")
	c.Add(3)
	c.Inc()
	if r.Counter("fe.fe0.requests") != c {
		t.Fatal("counter not deduped by name")
	}
	g := r.Gauge("fe.fe0.queue")
	g.Set(2.5)
	h := r.Histogram("fe.latency", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	r.SetCollector("san", func(emit func(string, float64)) {
		emit("delivered", 7)
	})

	snap := r.Snapshot()
	want := map[string]float64{
		"fe.fe0.requests":  4,
		"fe.fe0.queue":     2.5,
		"fe.latency.count": 3,
		"fe.latency.sum":   555,
		"san.delivered":    7,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Fatalf("snapshot[%q]=%v want %v (full: %v)", k, snap[k], v, snap)
		}
	}

	r.SetCollector("san", func(emit func(string, float64)) { emit("delivered", 9) })
	if snap := r.Snapshot(); snap["san.delivered"] != 9 {
		t.Fatalf("collector not replaced: %v", snap["san.delivered"])
	}
	r.DropCollector("san")
	if _, ok := r.Snapshot()["san.delivered"]; ok {
		t.Fatal("dropped collector still emitting")
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("fe.fe0.requests").Add(4)
	r.Gauge("san.inflight").Set(1.5)
	h := r.Histogram("fe.latency", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE sns_fe_fe0_requests counter",
		"sns_fe_fe0_requests 4",
		"# TYPE sns_san_inflight gauge",
		"sns_san_inflight 1.5",
		"# TYPE sns_fe_latency histogram",
		`sns_fe_latency_bucket{le="10"} 1`,
		`sns_fe_latency_bucket{le="100"} 2`,
		`sns_fe_latency_bucket{le="+Inf"} 3`,
		"sns_fe_latency_sum 555",
		"sns_fe_latency_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	tr := NewTracer(3, 64)
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := tr.NewTrace()
				tr.Record(Span{Trace: id, Hop: "h", Start: int64(i)})
				r.Counter("c").Inc()
				r.Histogram("h", nil).Observe(float64(i))
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
		_ = tr.TakeNew(32)
		_ = tr.RingLen()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 2000 {
		t.Fatalf("counter=%d want 2000", got)
	}
}
