// Package obs is the process-wide observability plane: a metrics
// registry and a distributed request tracer, shared by every SNS
// component in a process (each san.Network owns one of each).
//
// # Metrics registry
//
// Registry holds named counters, gauges, and fixed-bucket latency
// histograms under consistent dotted names ("fe.fe0.requests",
// "san.wire_encodes", "bridge.frames_out"). The fast path is a single
// atomic add on a pre-resolved handle — components look a metric up
// once and hold the pointer; nothing on the hot path takes a lock.
// Components whose counters already live in ad-hoc atomic Stats
// structs publish through collectors instead: a collector is a named
// callback that emits (name, value) pairs at snapshot time, so the
// existing structs join the registry without touching their own hot
// paths. Snapshot folds everything into one map for machine-readable
// /status; WritePrometheus renders the Prometheus text exposition
// format for /metrics.
//
// # Tracing
//
// A TraceID is minted at front-end admission and rides the request
// through every hop: in-process as san.Message.Trace (delivery
// metadata, like Message.Deadline), across process boundaries as a
// frame field (transport.FlagTrace) and embedded in stub.TaskMsg.
// Bit 0 of the id is the sampling decision — made once at the mint,
// honored everywhere — so downstream hops never re-roll the dice and
// a trace is always complete or absent. The default rate is 1 in 64;
// hops that observe a degraded, shed, or expired request record
// unconditionally, so every pathological request leaves a trail.
//
// Spans land in a bounded ring (oldest evicted first) — recording is
// a mutex-guarded array write, paid only for sampled traces, so the
// zero-copy send path stays inside its alloc gates when sampling is
// off. Each process periodically multicasts its freshly recorded
// spans as a digest on the report group (core's span reporter);
// every process ingests its peers' digests into the same ring, so
// /trace?id= on any node returns the cluster-wide span tree, and the
// monitor folds the digests into a per-hop latency breakdown.
//
// A root span ("fe.request") whose duration crosses SlowThreshold
// triggers the slow-request log: the full local span tree for that
// trace is emitted through Logf.
package obs
