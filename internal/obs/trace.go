package obs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request. Bit 0 carries the
// sampling decision made at mint time; the id is never zero, so a
// zero value always means "no trace attached".
type TraceID uint64

// Valid reports whether a trace is attached.
func (t TraceID) Valid() bool { return t != 0 }

// Sampled reports whether ordinary hops should record spans for this
// trace. Forced events (shed, degraded, expired) record regardless.
func (t TraceID) Sampled() bool { return t&1 == 1 }

// String renders the id as fixed-width hex, the form accepted by
// /trace?id= and emitted in X-Trace-Id.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// ParseTraceID parses the hex form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// RootHop is the span name recorded by the front end around the whole
// request; it is the span the slow-request log keys on.
const RootHop = "fe.request"

// Span is one timed hop of a traced request.
type Span struct {
	Trace TraceID `json:"trace"`
	Proc  string  `json:"proc"`           // OS-process identity (node prefix)
	Comp  string  `json:"comp"`           // component instance, e.g. "fe0", "w3"
	Hop   string  `json:"hop"`            // e.g. "fe.admit", "worker.queue"
	Note  string  `json:"note,omitempty"` // hop-specific detail: "hit", "shed", worker id
	Start int64   `json:"start"`          // unix nanoseconds
	Dur   int64   `json:"dur_ns"`
}

// DefaultSampleRate samples 1 in 64 traces.
const DefaultSampleRate = 64

const defaultRingCap = 4096

type slot struct {
	span  Span
	local bool // minted here (publishable) vs ingested from a peer
}

// Tracer mints trace ids and sinks spans into a bounded ring. All
// methods are safe for concurrent use; Record for an unsampled trace
// is a single branch.
type Tracer struct {
	rng  atomic.Uint64 // splitmix64 state, seeded
	seq  atomic.Uint64 // mints since start; drives the 1-in-rate decision
	rate atomic.Int64  // 0 = sampling off, 1 = every trace, n = 1 in n
	slow atomic.Int64  // slow-request threshold in ns; 0 = disabled

	procMu sync.Mutex
	proc   string
	logf   func(format string, args ...any)

	mu   sync.Mutex
	ring []slot
	head uint64 // spans ever recorded; next write lands at head%cap
	pub  uint64 // first sequence not yet returned by TakeNew
}

// NewTracer returns a tracer seeded for deterministic id minting and
// sampling, with a ring of ringCap spans (defaultRingCap when <= 0).
func NewTracer(seed uint64, ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = defaultRingCap
	}
	t := &Tracer{ring: make([]slot, ringCap)}
	t.rng.Store(seed*0x9e3779b97f4a7c15 + 0x1234567)
	t.rate.Store(DefaultSampleRate)
	return t
}

// SetProc sets the process identity stamped on locally recorded
// spans (typically the node prefix).
func (t *Tracer) SetProc(p string) {
	t.procMu.Lock()
	t.proc = p
	t.procMu.Unlock()
}

// SetSampleRate sets the sampling rate: n <= 0 disables sampling
// (NewTrace still mints propagating ids, none sampled), 1 samples
// every trace, n samples 1 in n.
func (t *Tracer) SetSampleRate(n int) {
	if n < 0 {
		n = 0
	}
	t.rate.Store(int64(n))
}

// SampleRate returns the current rate (0 = off).
func (t *Tracer) SampleRate() int { return int(t.rate.Load()) }

// SetSlowThreshold enables the slow-request log for root spans at or
// over d; d <= 0 disables it.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slow.Store(int64(d)) }

// SlowThreshold returns the current slow-request threshold.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slow.Load()) }

// SetLogf sets the sink for the slow-request log (nil disables
// output; the default discards).
func (t *Tracer) SetLogf(fn func(format string, args ...any)) {
	t.procMu.Lock()
	t.logf = fn
	t.procMu.Unlock()
}

// splitmix64 step, same generator the SAN uses for deterministic
// jitter.
func (t *Tracer) next() uint64 {
	for {
		old := t.rng.Load()
		st := old + 0x9e3779b97f4a7c15
		if t.rng.CompareAndSwap(old, st) {
			z := st
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
	}
}

// NewTrace mints a fresh id. The sampling decision is deterministic
// given the seed and mint order: every rate-th mint is sampled.
func (t *Tracer) NewTrace() TraceID {
	id := t.next() &^ 1
	if id == 0 {
		id = 2
	}
	rate := t.rate.Load()
	if rate > 0 {
		if n := t.seq.Add(1); rate == 1 || n%uint64(rate) == 0 {
			id |= 1
		}
	}
	return TraceID(id)
}

// Record sinks a span if its trace is sampled; a single branch
// otherwise.
func (t *Tracer) Record(sp Span) {
	if !sp.Trace.Sampled() {
		return
	}
	t.sink(sp, true)
}

// ForceRecord sinks a span for any valid trace, sampled or not — the
// degraded/shed/expired hops use it so pathological requests always
// leave a trail.
func (t *Tracer) ForceRecord(sp Span) {
	if !sp.Trace.Valid() {
		return
	}
	t.sink(sp, true)
}

// Ingest sinks spans received from a peer's digest. They keep their
// own Proc and are not republished by TakeNew (no gossip loops).
func (t *Tracer) Ingest(spans []Span) {
	if len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for _, sp := range spans {
		if !sp.Trace.Valid() {
			continue
		}
		t.ring[t.head%uint64(len(t.ring))] = slot{span: sp}
		t.head++
	}
	t.mu.Unlock()
}

func (t *Tracer) sink(sp Span, local bool) {
	if sp.Proc == "" {
		t.procMu.Lock()
		sp.Proc = t.proc
		t.procMu.Unlock()
	}
	t.mu.Lock()
	t.ring[t.head%uint64(len(t.ring))] = slot{span: sp, local: local}
	t.head++
	t.mu.Unlock()
	if sp.Hop == RootHop {
		if slow := t.slow.Load(); slow > 0 && sp.Dur >= slow {
			t.logSlow(sp)
		}
	}
}

func (t *Tracer) logSlow(root Span) {
	t.procMu.Lock()
	logf := t.logf
	t.procMu.Unlock()
	if logf == nil {
		return
	}
	spans := t.Spans(root.Trace)
	logf("slow request trace=%s total=%s spans=%d", root.Trace, time.Duration(root.Dur), len(spans))
	for _, sp := range spans {
		note := sp.Note
		if note != "" {
			note = " " + note
		}
		logf("  %-18s %-12s +%-12s %s%s", sp.Hop, sp.Proc+"/"+sp.Comp,
			time.Duration(sp.Start-root.Start), time.Duration(sp.Dur), note)
	}
}

// Spans returns every span in the ring for the given trace, ordered
// by start time. The result is a copy.
func (t *Tracer) Spans(id TraceID) []Span {
	if !id.Valid() {
		return nil
	}
	t.mu.Lock()
	var out []Span
	n := uint64(len(t.ring))
	lo := uint64(0)
	if t.head > n {
		lo = t.head - n
	}
	for i := lo; i < t.head; i++ {
		if s := t.ring[i%n]; s.span.Trace == id {
			out = append(out, s.span)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// TakeNew returns up to max locally recorded spans that have not been
// returned before — the digest the span reporter multicasts. Spans
// evicted before being taken are lost (bounded buffer, not a queue).
func (t *Tracer) TakeNew(max int) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	if t.head > n && t.pub < t.head-n {
		t.pub = t.head - n // fell behind; evicted spans are gone
	}
	var out []Span
	for t.pub < t.head && len(out) < max {
		if s := t.ring[t.pub%n]; s.local {
			out = append(out, s.span)
		}
		t.pub++
	}
	return out
}

// RingLen reports how many spans are currently held (for tests and
// status output).
func (t *Tracer) RingLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.head > uint64(len(t.ring)) {
		return len(t.ring)
	}
	return int(t.head)
}

type traceCtxKey struct{}

// WithTrace attaches a trace id to a context; san.Endpoint.Call picks
// it up the same way it picks up the deadline.
func WithTrace(ctx context.Context, id TraceID) context.Context {
	if !id.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, id)
}

// TraceFrom returns the trace id attached to ctx, or zero.
func TraceFrom(ctx context.Context) TraceID {
	id, _ := ctx.Value(traceCtxKey{}).(TraceID)
	return id
}
