// Package search implements the HotBot-style search engine of paper
// §3.2: an inverted full-text index statically partitioned across
// worker nodes ("each worker handles a subset of the database
// proportional to its CPU power, and every query goes to all workers
// in parallel"), a collating front end, a cache of recent searches for
// incremental delivery, and both failure-management modes the paper
// describes — cross-mounted replicas (the original Inktomi design,
// 100% data availability) and fast-restart with temporary partition
// loss (the HotBot/RAID design, graceful corpus degradation: losing 1
// of 26 nodes drops 54M docs to ~51M).
//
// HotBot predates the layered SNS framework and used ad hoc mechanisms
// in places; mirroring that, this package talks to the cluster and SAN
// directly instead of going through the TACC worker stubs.
package search

import (
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Doc is one document in the corpus.
type Doc struct {
	ID    int
	Title string
	Body  string
}

// Hit is one scored search result.
type Hit struct {
	Doc   int
	Title string
	Score float64
	Shard int
}

// Tokenize lowercases and splits text into terms. Deliberately
// simple: the reproduction's claims are about distribution, not IR
// quality.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	})
	out := fields[:0]
	for _, f := range fields {
		if len(f) > 1 {
			out = append(out, f)
		}
	}
	return out
}

type posting struct {
	doc int32
	tf  int32
}

// Shard is an inverted index over one partition of the corpus.
type Shard struct {
	ID       int
	postings map[string][]posting
	titles   map[int32]string
	docCount int
}

// BuildShard indexes one partition.
func BuildShard(id int, docs []Doc) *Shard {
	s := &Shard{
		ID:       id,
		postings: make(map[string][]posting),
		titles:   make(map[int32]string, len(docs)),
	}
	for _, d := range docs {
		s.titles[int32(d.ID)] = d.Title
		counts := map[string]int32{}
		for _, t := range Tokenize(d.Title + " " + d.Body) {
			counts[t]++
		}
		for term, tf := range counts {
			s.postings[term] = append(s.postings[term], posting{doc: int32(d.ID), tf: tf})
		}
		s.docCount++
	}
	return s
}

// Docs returns the number of documents indexed.
func (s *Shard) Docs() int { return s.docCount }

// Terms returns the vocabulary size.
func (s *Shard) Terms() int { return len(s.postings) }

// Search scores the query against the shard and returns the top k
// hits. Scoring is tf * idf with shard-local document frequencies —
// sufficient for stable ranking within and across partitions of a
// randomly partitioned corpus.
func (s *Shard) Search(query string, k int) []Hit {
	terms := Tokenize(query)
	if len(terms) == 0 || k <= 0 {
		return nil
	}
	scores := map[int32]float64{}
	for _, term := range terms {
		plist, ok := s.postings[term]
		if !ok {
			continue
		}
		idf := idf(s.docCount, len(plist))
		for _, p := range plist {
			scores[p.doc] += float64(p.tf) * idf
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, score := range scores {
		hits = append(hits, Hit{Doc: int(doc), Title: s.titles[doc], Score: score, Shard: s.ID})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

func idf(docs, df int) float64 {
	if df == 0 {
		return 0
	}
	// log((N+1)/(df+1)) + 1, always positive.
	return math.Log(float64(docs+1)/float64(df+1)) + 1
}

// MergeHits collates per-shard top-k lists into a global top-k (the
// front end's collation step).
func MergeHits(lists [][]Hit, k int) []Hit {
	var all []Hit
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Doc < all[j].Doc
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Partition assigns documents to n partitions uniformly at random
// (deterministic per seed) — "the database partitioning distributes
// documents randomly".
func Partition(docs []Doc, n int, seed int64) [][]Doc {
	if n <= 0 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Doc, n)
	for _, d := range docs {
		i := rng.Intn(n)
		out[i] = append(out[i], d)
	}
	return out
}

// GenerateCorpus synthesizes a corpus with a Zipf vocabulary, standing
// in for the 54M-page web crawl.
func GenerateCorpus(rng *rand.Rand, nDocs, vocab int) []Doc {
	if vocab < 100 {
		vocab = 100
	}
	words := make([]string, vocab)
	for i := range words {
		words[i] = syntheticWord(i)
	}
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(vocab-1))
	docs := make([]Doc, nDocs)
	for i := range docs {
		var title strings.Builder
		for w := 0; w < 3+rng.Intn(5); w++ {
			if w > 0 {
				title.WriteByte(' ')
			}
			title.WriteString(words[zipf.Uint64()])
		}
		var body strings.Builder
		for w := 0; w < 40+rng.Intn(160); w++ {
			if w > 0 {
				body.WriteByte(' ')
			}
			body.WriteString(words[zipf.Uint64()])
		}
		docs[i] = Doc{ID: i, Title: title.String(), Body: body.String()}
	}
	return docs
}

// syntheticWord produces a pronounceable token for a vocabulary rank.
func syntheticWord(i int) string {
	consonants := "bcdfghklmnprstvw"
	vowels := "aeiou"
	var b strings.Builder
	n := i
	for {
		b.WriteByte(consonants[n%len(consonants)])
		n /= len(consonants)
		b.WriteByte(vowels[n%len(vowels)])
		n /= len(vowels)
		if n == 0 {
			break
		}
	}
	return b.String()
}
