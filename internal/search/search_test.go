package search

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/san"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("The Quick-Brown FOX, jumps 42 times!")
	want := []string{"the", "quick", "brown", "fox", "jumps", "42", "times"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v", got)
		}
	}
}

func TestShardSearchRanking(t *testing.T) {
	docs := []Doc{
		{ID: 0, Title: "cluster computing", Body: "cluster cluster cluster workstation"},
		{ID: 1, Title: "databases", Body: "transaction acid durability"},
		{ID: 2, Title: "networks", Body: "cluster appears once here"},
	}
	s := BuildShard(0, docs)
	hits := s.Search("cluster", 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
	if hits[0].Doc != 0 || hits[1].Doc != 2 {
		t.Fatalf("ranking wrong: %+v", hits)
	}
	if hits[0].Score <= hits[1].Score {
		t.Fatal("tf weighting missing")
	}
	if got := s.Search("zebra", 10); len(got) != 0 {
		t.Fatalf("unknown term returned hits: %v", got)
	}
	if got := s.Search("", 10); got != nil {
		t.Fatal("empty query should return nil")
	}
}

func TestShardTopKBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	docs := GenerateCorpus(rng, 500, 200)
	s := BuildShard(0, docs)
	term := Tokenize(docs[0].Body)[0]
	hits := s.Search(term, 5)
	if len(hits) > 5 {
		t.Fatalf("top-k bound violated: %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by score")
		}
	}
}

func TestPartitionCoversAllDocsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	docs := GenerateCorpus(rng, 2000, 500)
	parts := Partition(docs, 7, 42)
	seen := map[int]int{}
	for _, p := range parts {
		for _, d := range p {
			seen[d.ID]++
		}
	}
	if len(seen) != 2000 {
		t.Fatalf("covered %d docs", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("doc %d assigned %d times", id, n)
		}
	}
	// Roughly balanced.
	for i, p := range parts {
		if len(p) < 2000/7/2 || len(p) > 2000/7*2 {
			t.Fatalf("partition %d has %d docs", i, len(p))
		}
	}
}

func TestMergeHits(t *testing.T) {
	a := []Hit{{Doc: 1, Score: 5}, {Doc: 2, Score: 1}}
	b := []Hit{{Doc: 3, Score: 3}}
	merged := MergeHits([][]Hit{a, b}, 2)
	if len(merged) != 2 || merged[0].Doc != 1 || merged[1].Doc != 3 {
		t.Fatalf("merged = %+v", merged)
	}
}

// deployTestEngine boots a small engine over a fresh cluster.
func deployTestEngine(t *testing.T, mode FailureMode, parts int) (*Engine, *cluster.Cluster, []Doc) {
	t.Helper()
	net := san.NewNetwork(1)
	cl := cluster.New(net)
	for i := 0; i < parts; i++ {
		cl.AddNode(fmt.Sprintf("snode%d", i), false)
	}
	rng := rand.New(rand.NewSource(3))
	docs := GenerateCorpus(rng, 3000, 800)
	e, err := Deploy(Config{
		Net:          net,
		Cluster:      cl,
		Partitions:   parts,
		Mode:         mode,
		Seed:         7,
		QueryTimeout: 300 * time.Millisecond,
	}, docs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.StopAll)
	return e, cl, docs
}

func TestEngineFullCoverageQuery(t *testing.T) {
	e, _, docs := deployTestEngine(t, FastRestart, 4)
	res := e.Query(context.Background(), "ba", 10)
	if res.Partial {
		t.Fatalf("partial with all nodes up: %+v", res)
	}
	if res.DocsSearched != len(docs) {
		t.Fatalf("searched %d of %d", res.DocsSearched, len(docs))
	}
	if res.ShardsAlive != 4 {
		t.Fatalf("shards alive = %d", res.ShardsAlive)
	}
}

func TestEngineMatchesSingleShardReference(t *testing.T) {
	// A partitioned engine must return the same top hits as one big
	// local index (random partitioning preserves ranking to within
	// idf noise; we check the top result and hit count).
	e, _, docs := deployTestEngine(t, FastRestart, 4)
	reference := BuildShard(0, docs)
	query := "ba be"
	got := e.Query(context.Background(), query, 20)
	want := reference.Search(query, 20)
	if len(got.Hits) == 0 || len(want) == 0 {
		t.Fatalf("no hits: engine=%d ref=%d", len(got.Hits), len(want))
	}
	wantDocs := map[int]bool{}
	for _, h := range want {
		wantDocs[h.Doc] = true
	}
	overlap := 0
	for _, h := range got.Hits {
		if wantDocs[h.Doc] {
			overlap++
		}
	}
	if float64(overlap)/float64(len(got.Hits)) < 0.6 {
		t.Fatalf("only %d/%d overlap with reference ranking", overlap, len(got.Hits))
	}
}

func TestFastRestartDegradesGracefully(t *testing.T) {
	e, cl, docs := deployTestEngine(t, FastRestart, 4)
	ctx := context.Background()

	// Kill one shard node: the 54M -> 51M story in miniature.
	if err := cl.KillNode("snode1"); err != nil {
		t.Fatal(err)
	}
	res := e.Query(ctx, "bi", 10)
	if !res.Partial {
		t.Fatal("node loss not reflected as partial result")
	}
	if res.DocsSearched >= len(docs) {
		t.Fatal("docs searched did not shrink")
	}
	if res.ShardsAlive != 3 {
		t.Fatalf("shards alive = %d, want 3", res.ShardsAlive)
	}
	// Still useful: roughly 3/4 of the corpus searched.
	frac := float64(res.DocsSearched) / float64(len(docs))
	if frac < 0.6 {
		t.Fatalf("coverage %.2f too low for one lost node of four", frac)
	}
	if e.Stats().PartialAnswers == 0 {
		t.Fatal("partial answers not counted")
	}
}

func TestCrossMountKeepsFullAvailability(t *testing.T) {
	e, cl, docs := deployTestEngine(t, CrossMount, 4)
	ctx := context.Background()
	if err := cl.KillNode("snode1"); err != nil {
		t.Fatal(err)
	}
	res := e.Query(ctx, "bi", 10)
	if res.Partial {
		t.Fatalf("cross-mount mode went partial: %+v", res)
	}
	if res.DocsSearched != len(docs) {
		t.Fatalf("searched %d of %d despite replicas", res.DocsSearched, len(docs))
	}
	if e.Stats().ReplicaFallbacks == 0 {
		t.Fatal("replica fallback not exercised")
	}
}

func TestResultCacheIncrementalDelivery(t *testing.T) {
	e, _, _ := deployTestEngine(t, FastRestart, 2)
	ctx := context.Background()
	res := e.Query(ctx, "ba", 50)
	if res.FromCache {
		t.Fatal("first query claimed cache")
	}
	res2 := e.Query(ctx, "ba", 50)
	if !res2.FromCache {
		t.Fatal("repeat query missed cache")
	}
	if e.Stats().CacheHits != 1 {
		t.Fatalf("cache hits = %d", e.Stats().CacheHits)
	}
	// Page 2 straight from the cache.
	if len(res.Hits) > 10 {
		page2, ok := e.Page("ba", 2, 10)
		if !ok || len(page2) == 0 {
			t.Fatal("page 2 unavailable from cache")
		}
		if page2[0].Doc != res.Hits[10].Doc {
			t.Fatal("page 2 content wrong")
		}
	}
	if _, ok := e.Page("never-queried", 1, 10); ok {
		t.Fatal("uncached query paged")
	}
	if _, ok := e.Page("ba", 0, 10); ok {
		t.Fatal("page 0 accepted")
	}
}

func TestResultCacheEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", &QueryResult{Query: "a"})
	c.put("b", &QueryResult{Query: "b"})
	c.put("c", &QueryResult{Query: "c"})
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestRenderResults(t *testing.T) {
	page := RenderResults(QueryResult{
		Query:        "clusters",
		Hits:         []Hit{{Doc: 1, Title: "a doc", Score: 2.5}},
		DocsSearched: 50,
		TotalDocs:    100,
		Partial:      true,
	})
	if !strings.Contains(page, "Partial results") {
		t.Fatal("partial banner missing")
	}
	if !strings.Contains(page, "a doc") {
		t.Fatal("hit missing")
	}
}

func TestDeployNeedsEnoughNodes(t *testing.T) {
	net := san.NewNetwork(1)
	cl := cluster.New(net)
	cl.AddNode("only", false)
	_, err := Deploy(Config{Net: net, Cluster: cl, Partitions: 4}, nil)
	if err == nil {
		t.Fatal("deploy with too few nodes succeeded")
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(rand.New(rand.NewSource(5)), 50, 200)
	b := GenerateCorpus(rand.New(rand.NewSource(5)), 50, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corpus not deterministic")
		}
	}
	if syntheticWord(0) == syntheticWord(1) {
		t.Fatal("word collision")
	}
}
