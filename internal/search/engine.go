package search

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/san"
)

// FailureMode selects how the engine handles node loss (§3.2).
type FailureMode int

const (
	// FastRestart is the HotBot production design: one copy of each
	// partition; a lost node temporarily shrinks the searchable
	// corpus, and fast restart brings it back.
	FastRestart FailureMode = iota
	// CrossMount is the original Inktomi design: every partition is
	// reachable from two nodes, so data availability stays at 100%
	// with graceful performance degradation.
	CrossMount
)

// String renders the mode.
func (m FailureMode) String() string {
	if m == CrossMount {
		return "cross-mount"
	}
	return "fast-restart"
}

// Wire protocol.
const (
	msgQuery = "shard.query"
	msgHits  = "shard.hits"
)

type queryReq struct {
	Query string
	K     int
}

type queryResp struct {
	Hits []Hit
	Docs int
}

// shardService serves one partition on one node. In CrossMount mode
// the same *Shard is served by a second service on a different node
// (the replica "cross-mounts" the shard's disk).
type shardService struct {
	name  string
	node  string
	net   *san.Network
	shard *Shard
	ep    *san.Endpoint
	// QueryDelay models per-query disk/CPU cost, if set.
	queryDelay time.Duration
}

func newShardService(name, node string, net *san.Network, shard *Shard, delay time.Duration) *shardService {
	s := &shardService{name: name, node: node, net: net, shard: shard, queryDelay: delay}
	s.ep = net.Endpoint(san.Addr{Node: node, Proc: name}, 1024)
	return s
}

func (s *shardService) ID() string { return s.name }

func (s *shardService) addr() san.Addr { return san.Addr{Node: s.node, Proc: s.name} }

func (s *shardService) Run(ctx context.Context) error {
	if s.ep == nil || !s.net.Lookup(s.addr()) {
		s.ep = s.net.Endpoint(s.addr(), 1024)
	}
	ep := s.ep
	defer ep.Close()
	for {
		select {
		case <-ctx.Done():
			return nil
		case msg, ok := <-ep.Inbox():
			if !ok {
				return fmt.Errorf("search: %s endpoint closed", s.name)
			}
			if msg.Kind != msgQuery {
				continue
			}
			req, ok := msg.Body.(queryReq)
			if !ok {
				continue
			}
			if s.queryDelay > 0 {
				time.Sleep(s.queryDelay)
			}
			hits := s.shard.Search(req.Query, req.K)
			_ = ep.Respond(msg, msgHits, queryResp{Hits: hits, Docs: s.shard.Docs()}, 64+32*len(hits))
		}
	}
}

// Config assembles a search engine deployment.
type Config struct {
	Net     *san.Network
	Cluster *cluster.Cluster
	// Partitions is the number of index partitions (the paper's
	// HotBot ran 26 nodes; tests use fewer).
	Partitions int
	Mode       FailureMode
	Seed       int64
	// QueryTimeout bounds each per-shard query.
	QueryTimeout time.Duration
	// QueryDelay models per-shard query cost.
	QueryDelay time.Duration
	// CacheSize bounds the recent-results cache (queries).
	CacheSize int
}

// QueryResult is a collated answer.
type QueryResult struct {
	Query string
	Hits  []Hit
	// DocsSearched / TotalDocs expose graceful degradation: on a
	// node loss in FastRestart mode, DocsSearched < TotalDocs.
	DocsSearched int
	TotalDocs    int
	Partial      bool
	FromCache    bool
	ShardsAsked  int
	ShardsAlive  int
}

// Engine is a deployed, queryable search service.
type Engine struct {
	cfg    Config
	total  int
	ep     *san.Endpoint
	pump   sync.Once
	shards []shardHosting

	mu    sync.Mutex
	cache *resultCache
	stats EngineStats
}

// EngineStats counts engine activity.
type EngineStats struct {
	Queries          uint64
	CacheHits        uint64
	PartialAnswers   uint64
	ShardTimeouts    uint64
	ReplicaFallbacks uint64
}

type shardHosting struct {
	shard   *Shard
	primary san.Addr
	replica san.Addr // zero unless CrossMount
}

// Deploy partitions the corpus, builds shards, and spawns shard
// services across the cluster's dedicated nodes (one partition per
// node, like HotBot's workers that are "bound to particular
// machines").
func Deploy(cfg Config, docs []Doc) (*Engine, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 4
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 2 * time.Second
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	nodes := cfg.Cluster.Nodes()
	var hosts []string
	for _, n := range nodes {
		if !n.Overflow && n.Alive {
			hosts = append(hosts, n.ID)
		}
	}
	if len(hosts) < cfg.Partitions {
		return nil, fmt.Errorf("search: %d partitions need %d nodes, have %d",
			cfg.Partitions, cfg.Partitions, len(hosts))
	}
	parts := Partition(docs, cfg.Partitions, cfg.Seed)
	e := &Engine{cfg: cfg, total: len(docs), cache: newResultCache(cfg.CacheSize)}
	for i, part := range parts {
		shard := BuildShard(i, part)
		primaryNode := hosts[i%len(hosts)]
		name := fmt.Sprintf("shard%d", i)
		svc := newShardService(name, primaryNode, cfg.Net, shard, cfg.QueryDelay)
		if _, err := cfg.Cluster.Spawn(primaryNode, svc); err != nil {
			return nil, err
		}
		hosting := shardHosting{shard: shard, primary: svc.addr()}
		if cfg.Mode == CrossMount {
			// The replica serves the same shard from the next node
			// over — the cross-mounted-disk arrangement.
			replicaNode := hosts[(i+1)%len(hosts)]
			rname := fmt.Sprintf("shard%d.r", i)
			rsvc := newShardService(rname, replicaNode, cfg.Net, shard, cfg.QueryDelay)
			if _, err := cfg.Cluster.Spawn(replicaNode, rsvc); err != nil {
				return nil, err
			}
			hosting.replica = rsvc.addr()
		}
		e.shards = append(e.shards, hosting)
	}
	e.ep = cfg.Net.Endpoint(san.Addr{Node: "hotbot-fe", Proc: "collator"}, 4096)
	return e, nil
}

// startPump launches the reply router once.
func (e *Engine) startPump() {
	e.pump.Do(func() {
		go func() {
			for msg := range e.ep.Inbox() {
				e.ep.DeliverReply(msg)
			}
		}()
	})
}

// Stats returns engine counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// TotalDocs returns the corpus size at deployment.
func (e *Engine) TotalDocs() int { return e.total }

// Query fans the query out to every partition in parallel, collates
// the top k, and caches the result for incremental delivery.
func (e *Engine) Query(ctx context.Context, query string, k int) QueryResult {
	e.startPump()
	e.mu.Lock()
	e.stats.Queries++
	if cached, ok := e.cache.get(query); ok {
		e.stats.CacheHits++
		e.mu.Unlock()
		hits := cached.Hits
		if len(hits) > k {
			hits = hits[:k]
		}
		out := *cached
		out.Hits = hits
		out.FromCache = true
		return out
	}
	e.mu.Unlock()

	type shardAnswer struct {
		resp     queryResp
		ok       bool
		fellBack bool
	}
	answers := make([]shardAnswer, len(e.shards))
	var wg sync.WaitGroup
	for i, h := range e.shards {
		i, h := i, h
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, ok := e.askShard(ctx, h.primary, query, k)
			fellBack := false
			if !ok && !h.replica.IsZero() {
				resp, ok = e.askShard(ctx, h.replica, query, k)
				fellBack = ok
			}
			answers[i] = shardAnswer{resp: resp, ok: ok, fellBack: fellBack}
		}()
	}
	wg.Wait()

	lists := make([][]Hit, 0, len(answers))
	searched := 0
	alive := 0
	for _, a := range answers {
		if !a.ok {
			continue
		}
		alive++
		searched += a.resp.Docs
		lists = append(lists, a.resp.Hits)
	}
	res := QueryResult{
		Query:        query,
		Hits:         MergeHits(lists, k),
		DocsSearched: searched,
		TotalDocs:    e.total,
		Partial:      alive < len(e.shards),
		ShardsAsked:  len(e.shards),
		ShardsAlive:  alive,
	}
	e.mu.Lock()
	if res.Partial {
		e.stats.PartialAnswers++
	}
	for _, a := range answers {
		if !a.ok {
			e.stats.ShardTimeouts++
		}
		if a.fellBack {
			e.stats.ReplicaFallbacks++
		}
	}
	e.cache.put(query, &res)
	e.mu.Unlock()
	return res
}

func (e *Engine) askShard(ctx context.Context, addr san.Addr, query string, k int) (queryResp, bool) {
	cctx, cancel := context.WithTimeout(ctx, e.cfg.QueryTimeout)
	defer cancel()
	msg, err := e.ep.Call(cctx, addr, msgQuery, queryReq{Query: query, K: k}, len(query)+16)
	if err != nil {
		return queryResp{}, false
	}
	resp, ok := msg.Body.(queryResp)
	return resp, ok
}

// Page serves result pages from the recent-results cache — the
// "integrated cache of recent searches, for incremental delivery"
// (Table 1). Page numbering is 1-based; ok is false when the query is
// not cached (caller should re-Query).
func (e *Engine) Page(query string, page, pageSize int) (hits []Hit, ok bool) {
	if page < 1 || pageSize <= 0 {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	res, found := e.cache.get(query)
	if !found {
		return nil, false
	}
	start := (page - 1) * pageSize
	if start >= len(res.Hits) {
		return nil, true
	}
	end := start + pageSize
	if end > len(res.Hits) {
		end = len(res.Hits)
	}
	return res.Hits[start:end], true
}

// resultCache is a small LRU of recent query results.
type resultCache struct {
	cap   int
	order []string
	m     map[string]*QueryResult
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, m: make(map[string]*QueryResult)}
}

func (c *resultCache) get(q string) (*QueryResult, bool) {
	res, ok := c.m[q]
	return res, ok
}

func (c *resultCache) put(q string, res *QueryResult) {
	if _, exists := c.m[q]; !exists {
		c.order = append(c.order, q)
		if len(c.order) > c.cap {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.m, oldest)
		}
	}
	c.m[q] = res
}

// RenderResults produces the dynamic-HTML result page (the paper's
// Tcl-macro presentation layer, Table 1's "dynamic HTML generation").
func RenderResults(res QueryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>HotBot: %s</title></head><body>\n", res.Query)
	fmt.Fprintf(&b, "<h1>Results for %q</h1>\n", res.Query)
	if res.Partial {
		fmt.Fprintf(&b, "<p><i>Partial results: searched %d of %d documents.</i></p>\n",
			res.DocsSearched, res.TotalDocs)
	}
	b.WriteString("<ol>\n")
	for _, h := range res.Hits {
		fmt.Fprintf(&b, `<li><a href="http://doc%d.example/">%s</a> <small>(%.2f)</small></li>`+"\n",
			h.Doc, h.Title, h.Score)
	}
	b.WriteString("</ol></body></html>\n")
	return b.String()
}
