package search

import (
	"math/rand"
	"testing"
)

func BenchmarkShardSearch(b *testing.B) {
	docs := GenerateCorpus(rand.New(rand.NewSource(1)), 10000, 3000)
	shard := BuildShard(0, docs)
	queries := []string{"ba de", "ka ne ro", "be", "du bi ha"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shard.Search(queries[i%len(queries)], 10)
	}
}

func BenchmarkBuildShard(b *testing.B) {
	docs := GenerateCorpus(rand.New(rand.NewSource(1)), 2000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildShard(0, docs)
	}
}

func BenchmarkMergeHits(b *testing.B) {
	lists := make([][]Hit, 16)
	for i := range lists {
		for j := 0; j < 10; j++ {
			lists[i] = append(lists[i], Hit{Doc: i*100 + j, Score: float64(j)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeHits(lists, 10)
	}
}
