package profiledb

import (
	"fmt"
	"testing"
)

func BenchmarkSet(b *testing.B) {
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Set(fmt.Sprintf("u%d", i%1000), "quality", "25"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetCached(b *testing.B) {
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	c := NewReadCache(db)
	for i := 0; i < 1000; i++ {
		c.Set(fmt.Sprintf("u%d", i), "quality", "25")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(fmt.Sprintf("u%d", i%1000))
	}
}

func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		db.Set(fmt.Sprintf("u%d", i%500), fmt.Sprintf("k%d", i%10), "v")
	}
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}
