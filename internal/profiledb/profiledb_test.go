package profiledb

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, dir
}

func TestSetGet(t *testing.T) {
	db, _ := openTemp(t)
	if err := db.Set("u1", "maxImageSize", "2048"); err != nil {
		t.Fatal(err)
	}
	if err := db.Set("u1", "quality", "25"); err != nil {
		t.Fatal(err)
	}
	prof := db.Get("u1")
	if prof["maxImageSize"] != "2048" || prof["quality"] != "25" {
		t.Fatalf("profile = %v", prof)
	}
	if v, ok := db.GetKey("u1", "quality"); !ok || v != "25" {
		t.Fatalf("GetKey = %q, %v", v, ok)
	}
	if db.Get("unknown") != nil {
		t.Fatal("unknown user should be nil")
	}
	if _, ok := db.GetKey("u1", "nope"); ok {
		t.Fatal("missing key reported present")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db, _ := openTemp(t)
	db.Set("u1", "k", "v")
	prof := db.Get("u1")
	prof["k"] = "mutated"
	if v, _ := db.GetKey("u1", "k"); v != "v" {
		t.Fatal("Get exposed internal map")
	}
}

func TestDelete(t *testing.T) {
	db, _ := openTemp(t)
	db.Set("u1", "a", "1")
	db.Set("u1", "b", "2")
	if err := db.Delete("u1", "a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.GetKey("u1", "a"); ok {
		t.Fatal("deleted key still present")
	}
	if err := db.DeleteUser("u1"); err != nil {
		t.Fatal(err)
	}
	if db.Users() != 0 {
		t.Fatalf("Users = %d", db.Users())
	}
}

func TestRecoveryAfterReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Set(fmt.Sprintf("u%d", i%10), fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	db.Delete("u0", "k0")
	db.Close()

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Users() != 10 {
		t.Fatalf("Users after recovery = %d, want 10", db2.Users())
	}
	if _, ok := db2.GetKey("u0", "k0"); ok {
		t.Fatal("deleted key resurrected")
	}
	if v, ok := db2.GetKey("u9", "k99"); !ok || v != "v99" {
		t.Fatalf("lost write: %q %v", v, ok)
	}
}

func TestTornLogTruncated(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.Set("u1", "a", "1")
	db.Set("u1", "b", "2")
	db.Close()

	// Simulate a crash mid-append: chop bytes off the log tail.
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, ok := db2.GetKey("u1", "a"); !ok || v != "1" {
		t.Fatal("complete record lost")
	}
	if _, ok := db2.GetKey("u1", "b"); ok {
		t.Fatal("torn record applied")
	}
	// New writes after recovery must persist.
	db2.Set("u1", "c", "3")
	db2.Close()
	db3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if v, _ := db3.GetKey("u1", "c"); v != "3" {
		t.Fatal("post-recovery write lost")
	}
}

func TestCorruptChecksumStopsReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.Set("u1", "a", "1")
	db.Set("u1", "b", "2")
	db.Close()
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok := db2.GetKey("u1", "b"); ok {
		t.Fatal("corrupt record applied")
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		db.Set("u1", "k", fmt.Sprintf("v%d", i)) // 50 overwrites
	}
	if db.LogRecords() != 50 {
		t.Fatalf("log records = %d", db.LogRecords())
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.LogRecords() != 1 {
		t.Fatalf("log records after compact = %d, want 1", db.LogRecords())
	}
	if v, _ := db.GetKey("u1", "k"); v != "v49" {
		t.Fatalf("value after compact = %q", v)
	}
	// Writes after compaction still recover.
	db.Set("u1", "k2", "x")
	db.Close()
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, _ := db2.GetKey("u1", "k2"); v != "x" {
		t.Fatal("post-compact write lost")
	}
	if v, _ := db2.GetKey("u1", "k"); v != "v49" {
		t.Fatal("compacted state lost")
	}
}

func TestClosedDBErrors(t *testing.T) {
	db, _ := openTemp(t)
	db.Close()
	if err := db.Set("u", "k", "v"); err == nil {
		t.Fatal("Set on closed DB succeeded")
	}
	if err := db.Compact(); err == nil {
		t.Fatal("Compact on closed DB succeeded")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	// Property: open/close cycles without writes never change state.
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	check := func(user, key, val string) bool {
		if user == "" || key == "" {
			return true
		}
		if err := db.Set(user, key, val); err != nil {
			return false
		}
		db.Close()
		db, err = Open(dir)
		if err != nil {
			return false
		}
		got, ok := db.GetKey(user, key)
		return ok && got == val
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
	db.Close()
}

func TestConcurrentWriters(t *testing.T) {
	db, _ := openTemp(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			user := fmt.Sprintf("u%d", g)
			for i := 0; i < 100; i++ {
				if err := db.Set(user, fmt.Sprintf("k%d", i), "v"); err != nil {
					t.Error(err)
					return
				}
				db.Get(user)
			}
		}()
	}
	wg.Wait()
	if db.Users() != 8 {
		t.Fatalf("Users = %d", db.Users())
	}
}

func TestReadCache(t *testing.T) {
	db, _ := openTemp(t)
	db.Set("u1", "k", "v")
	c := NewReadCache(db)
	if prof := c.Get("u1"); prof["k"] != "v" {
		t.Fatalf("Get = %v", prof)
	}
	c.Get("u1")
	c.Get("u1")
	hits, misses := c.Stats()
	if misses != 1 || hits != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/1", hits, misses)
	}
	// Write-through: both cache and DB updated.
	if err := c.Set("u1", "k", "v2"); err != nil {
		t.Fatal(err)
	}
	if prof := c.Get("u1"); prof["k"] != "v2" {
		t.Fatal("cache not updated on write-through")
	}
	if v, _ := db.GetKey("u1", "k"); v != "v2" {
		t.Fatal("DB not updated on write-through")
	}
	// Unknown users are negatively cached.
	if c.Get("ghost") != nil {
		t.Fatal("ghost profile should be nil")
	}
	c.Get("ghost")
	// Hits so far: 2 initial + 1 after write-through + 1 ghost re-read.
	hits2, _ := c.Stats()
	if hits2 != 4 {
		t.Fatalf("negative caching failed: hits=%d", hits2)
	}
}

func TestReadCacheWriteThroughFailure(t *testing.T) {
	db, _ := openTemp(t)
	c := NewReadCache(db)
	db.Close()
	if err := c.Set("u1", "k", "v"); err == nil {
		t.Fatal("Set should fail when DB is closed")
	}
	// The failed write must not poison the cache.
	db2, _ := openTemp(t)
	_ = db2
	if prof := c.Get("u1"); prof != nil && prof["k"] == "v" {
		t.Fatal("failed write visible in cache")
	}
}

func TestSyncWrites(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SyncWrites = true
	if err := db.Set("u", "k", "v"); err != nil {
		t.Fatal(err)
	}
	db.Close()
}
