// Package profiledb implements the customization database — the one
// ACID island in an otherwise BASE system (paper §1.4, §2.3, §3.1.4).
// It maps a user identification token to a list of key-value pairs,
// exactly the schema the paper prescribes, and is used by front ends
// to pair every request with the user's preferences.
//
// The paper used gdbm (TranSend) and parallel Informix (HotBot); here
// the store is a write-ahead-logged, crash-recoverable KV database:
// every mutation is appended to a checksummed log before being
// applied, recovery replays the log and truncates at the first torn
// record, and compaction rewrites the log as a snapshot. Reads vastly
// outnumber writes in this workload, so the front end wraps the DB in
// the write-through read cache of §3.1.4.
package profiledb

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// record is one logged mutation.
type record struct {
	Op   string `json:"op"` // "set", "del", "delu"
	User string `json:"u"`
	Key  string `json:"k,omitempty"`
	Val  string `json:"v,omitempty"`
}

// DB is the ACID profile store. All methods are safe for concurrent
// use.
type DB struct {
	// SyncWrites forces an fsync after every append, making commits
	// durable across OS crashes (full ACID "D"). Tests leave it off
	// for speed; the cmd/ tools turn it on.
	SyncWrites bool

	mu   sync.Mutex
	dir  string
	log  *os.File
	mem  map[string]map[string]string
	logN int // records in the log (drives compaction heuristics)
}

const logName = "profiles.wal"

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("profiledb: closed")

// Open opens (or creates) a database in dir, replaying the write-ahead
// log. A torn final record — the signature of a crash mid-append — is
// discarded and the log truncated to the last complete record.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profiledb: %w", err)
	}
	db := &DB{dir: dir, mem: make(map[string]map[string]string)}
	path := filepath.Join(dir, logName)
	valid, n, err := db.replay(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("profiledb: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiledb: truncate torn log: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiledb: %w", err)
	}
	db.log = f
	db.logN = n
	return db, nil
}

// replay loads the log into memory, returning the byte offset of the
// last complete record and the number of records applied.
func (db *DB) replay(path string) (validOffset int64, records int, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("profiledb: read log: %w", err)
	}
	off := 0
	for {
		if off+8 > len(data) {
			break
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > 1<<20 || off+8+int(n) > len(data) {
			break
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec record
		if json.Unmarshal(payload, &rec) != nil {
			break
		}
		db.apply(rec)
		off += 8 + int(n)
		records++
	}
	return int64(off), records, nil
}

func (db *DB) apply(rec record) {
	switch rec.Op {
	case "set":
		prof := db.mem[rec.User]
		if prof == nil {
			prof = make(map[string]string)
			db.mem[rec.User] = prof
		}
		prof[rec.Key] = rec.Val
	case "del":
		if prof := db.mem[rec.User]; prof != nil {
			delete(prof, rec.Key)
			if len(prof) == 0 {
				delete(db.mem, rec.User)
			}
		}
	case "delu":
		delete(db.mem, rec.User)
	}
}

// append writes one record to the log (and syncs if configured),
// then applies it to memory. Caller holds db.mu.
func (db *DB) append(rec record) error {
	if db.log == nil {
		return ErrClosed
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("profiledb: encode: %w", err)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	if _, err := db.log.Write(buf); err != nil {
		return fmt.Errorf("profiledb: append: %w", err)
	}
	if db.SyncWrites {
		if err := db.log.Sync(); err != nil {
			return fmt.Errorf("profiledb: sync: %w", err)
		}
	}
	db.apply(rec)
	db.logN++
	return nil
}

// Set stores one key-value pair in a user's profile.
func (db *DB) Set(user, key, val string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.append(record{Op: "set", User: user, Key: key, Val: val})
}

// Delete removes one key from a user's profile.
func (db *DB) Delete(user, key string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.append(record{Op: "del", User: user, Key: key})
}

// DeleteUser removes a user's entire profile.
func (db *DB) DeleteUser(user string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.append(record{Op: "delu", User: user})
}

// Get returns a copy of the user's profile (nil if absent).
func (db *DB) Get(user string) map[string]string {
	db.mu.Lock()
	defer db.mu.Unlock()
	prof := db.mem[user]
	if prof == nil {
		return nil
	}
	out := make(map[string]string, len(prof))
	for k, v := range prof {
		out[k] = v
	}
	return out
}

// GetKey returns one profile value.
func (db *DB) GetKey(user, key string) (string, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	prof := db.mem[user]
	if prof == nil {
		return "", false
	}
	v, ok := prof[key]
	return v, ok
}

// Users returns the number of users with non-empty profiles.
func (db *DB) Users() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.mem)
}

// LogRecords returns the number of records in the current log.
func (db *DB) LogRecords() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.logN
}

// Compact rewrites the log as a minimal snapshot (one "set" per live
// pair), atomically replacing the old log.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log == nil {
		return ErrClosed
	}
	tmpPath := filepath.Join(db.dir, logName+".tmp")
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("profiledb: compact: %w", err)
	}
	count := 0
	write := func(rec record) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
		copy(buf[8:], payload)
		_, err = tmp.Write(buf)
		return err
	}
	for user, prof := range db.mem {
		for k, v := range prof {
			if err := write(record{Op: "set", User: user, Key: k, Val: v}); err != nil {
				tmp.Close()
				os.Remove(tmpPath)
				return fmt.Errorf("profiledb: compact: %w", err)
			}
			count++
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("profiledb: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("profiledb: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(db.dir, logName)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("profiledb: compact: %w", err)
	}
	old := db.log
	f, err := os.OpenFile(filepath.Join(db.dir, logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("profiledb: compact reopen: %w", err)
	}
	old.Close()
	db.log = f
	db.logN = count
	return nil
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log == nil {
		return nil
	}
	err := db.log.Sync()
	if cerr := db.log.Close(); err == nil {
		err = cerr
	}
	db.log = nil
	return err
}

// ReadCache is the front end's write-through profile cache (§3.1.4):
// "user preference reads are much more frequent than writes, and the
// reads are absorbed by a write-through cache in the front end."
type ReadCache struct {
	db *DB

	mu     sync.Mutex
	cache  map[string]map[string]string
	hits   uint64
	misses uint64
}

// NewReadCache wraps a DB.
func NewReadCache(db *DB) *ReadCache {
	return &ReadCache{db: db, cache: make(map[string]map[string]string)}
}

// Get returns the user's profile, consulting the cache first.
func (c *ReadCache) Get(user string) map[string]string {
	c.mu.Lock()
	if prof, ok := c.cache[user]; ok {
		c.hits++
		out := make(map[string]string, len(prof))
		for k, v := range prof {
			out[k] = v
		}
		c.mu.Unlock()
		return out
	}
	c.misses++
	c.mu.Unlock()
	prof := c.db.Get(user)
	c.mu.Lock()
	if prof == nil {
		c.cache[user] = map[string]string{}
	} else {
		c.cache[user] = prof
	}
	c.mu.Unlock()
	return prof
}

// Set writes through: the DB commits first (preserving ACID), then the
// cache is updated.
func (c *ReadCache) Set(user, key, val string) error {
	if err := c.db.Set(user, key, val); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	prof := c.cache[user]
	if prof == nil {
		prof = make(map[string]string)
		c.cache[user] = prof
	}
	prof[key] = val
	return nil
}

// Stats returns cache hit/miss counts.
func (c *ReadCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
