package sim

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// This file holds the random-variate and summary-statistics helpers
// shared by the trace generator and the system model. All variates
// take an explicit *rand.Rand so callers control determinism.

// Exp draws an exponential variate with the given mean.
func Exp(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// LogNormal draws exp(N(mu, sigma^2)).
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}

// LogNormalMean returns the mu parameter such that a LogNormal(mu,
// sigma) variate has the requested mean: mean = exp(mu + sigma^2/2).
func LogNormalMean(mean, sigma float64) (mu float64) {
	return math.Log(mean) - sigma*sigma/2
}

// Pareto draws a bounded Pareto variate with shape alpha on [lo, hi].
func Pareto(rng *rand.Rand, alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("sim: Pareto requires 0 < lo < hi")
	}
	u := rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Zipf returns a sampler over {0, ..., n-1} with Zipf exponent s
// (s > 1 required by math/rand).
func Zipf(rng *rand.Rand, s float64, n int) func() int {
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

// Welford accumulates streaming mean and variance.
type Welford struct {
	N    int
	mean float64
	m2   float64
	Min  float64
	Max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.N++
	if w.N == 1 {
		w.Min, w.Max = x, x
	} else {
		if x < w.Min {
			w.Min = x
		}
		if x > w.Max {
			w.Max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.N)
	w.m2 += d * (x - w.mean)
}

// Mean returns the running mean (0 for no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running sample variance.
func (w *Welford) Var() float64 {
	if w.N < 2 {
		return 0
	}
	return w.m2 / float64(w.N-1)
}

// Std returns the running sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Quantiles computes the requested quantiles (each in [0,1]) of xs.
// xs is sorted in place. Empty input yields zeros.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sort.Float64s(xs)
	for i, q := range qs {
		pos := q * float64(len(xs)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			out[i] = xs[lo]
		} else {
			frac := pos - float64(lo)
			out[i] = xs[lo]*(1-frac) + xs[hi]*frac
		}
	}
	return out
}

// Histogram buckets observations into log-spaced bins, mirroring the
// log-x-axis presentation of the paper's Figure 5.
type Histogram struct {
	Lo, Hi float64 // value range covered by the bins
	Bins   []int
	n      int
}

// NewLogHistogram builds a histogram with the given number of
// log-spaced bins spanning [lo, hi].
func NewLogHistogram(lo, hi float64, bins int) *Histogram {
	if lo <= 0 || hi <= lo || bins <= 0 {
		panic("sim: bad histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, bins)}
}

// Add records one observation; out-of-range values clamp to the edge
// bins.
func (h *Histogram) Add(v float64) {
	h.n++
	if v < h.Lo {
		h.Bins[0]++
		return
	}
	if v >= h.Hi {
		h.Bins[len(h.Bins)-1]++
		return
	}
	f := math.Log(v/h.Lo) / math.Log(h.Hi/h.Lo)
	i := int(f * float64(len(h.Bins)))
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
}

// N returns the number of observations recorded.
func (h *Histogram) N() int { return h.n }

// BinCenter returns the geometric center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	step := math.Log(h.Hi/h.Lo) / float64(len(h.Bins))
	return h.Lo * math.Exp(step*(float64(i)+0.5))
}

// Probability returns the fraction of observations in bin i.
func (h *Histogram) Probability(i int) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.n)
}

// Seconds converts a float64 second count into a time.Duration.
func Seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// ToSeconds converts a duration to float64 seconds.
func ToSeconds(d time.Duration) float64 { return d.Seconds() }
