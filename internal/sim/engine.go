// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, a cancellable event queue, periodic processes, and
// seeded random-variate helpers.
//
// The engine backs the long-horizon experiments from the paper (queue
// dynamics over hundreds of virtual seconds, 24-hour arrival traces)
// that cannot be replayed in real time. All state is single-threaded:
// callbacks run sequentially in virtual-time order, so models need no
// locking and runs are exactly reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with New.
type Engine struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	nEvent uint64
}

// New returns an engine whose random stream is seeded with seed.
// Equal seeds yield identical runs.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time, measured from the start of the
// simulation.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. Models must
// draw all randomness from it (or from streams forked via NewStream)
// to stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewStream returns an independent random stream derived from the
// engine seed and the given label, so adding draws in one component
// does not perturb another.
func (e *Engine) NewStream(label string) *rand.Rand {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(int64(h) ^ e.rng.Int63()))
}

// Events reports how many events have been executed so far.
func (e *Engine) Events() uint64 { return e.nEvent }

// Event is a handle to a scheduled callback.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int // heap index; -1 once removed
	cancelled bool
}

// Cancel prevents a pending event from firing. Cancelling an event
// that already fired (or was already cancelled) is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: that is always a model bug.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step executes the next pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.nEvent++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the
// clock to exactly t. Events scheduled later remain pending.
func (e *Engine) RunUntil(t time.Duration) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Ticker invokes a callback periodically until stopped.
type Ticker struct {
	e       *Engine
	period  time.Duration
	fn      func()
	stopped bool
	pending *Event
}

// Every schedules fn to run every period, with the first firing after
// start. It panics if period <= 0.
func (e *Engine) Every(start, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{e: e, period: period, fn: fn}
	t.pending = e.After(start, t.tick)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.pending = t.e.After(t.period, t.tick)
	}
}

// Stop halts the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.pending != nil {
		t.pending.Cancel()
	}
}

// eventQueue is a min-heap ordered by (time, insertion sequence) so
// same-time events run FIFO.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
