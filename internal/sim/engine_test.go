package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.At(3*time.Second, func() { got = append(got, 3) })
	e.At(1*time.Second, func() { got = append(got, 1) })
	e.At(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.After(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel is a no-op.
	ev.Cancel()
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := New(1)
	fired := false
	later := e.At(2*time.Second, func() { fired = true })
	e.At(1*time.Second, func() { later.Cancel() })
	e.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New(1)
	e.At(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(time.Millisecond, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1 * time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		e.At(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events after Run, want 3", len(fired))
	}
}

func TestTicker(t *testing.T) {
	e := New(1)
	n := 0
	tk := e.Every(0, time.Second, func() {
		n++
		if n == 5 {
			// Stopping from inside the callback must halt cleanly.
		}
	})
	e.RunUntil(4500 * time.Millisecond)
	if n != 5 { // fires at 0,1,2,3,4
		t.Fatalf("ticker fired %d times, want 5", n)
	}
	tk.Stop()
	e.RunUntil(10 * time.Second)
	if n != 5 {
		t.Fatalf("ticker fired after Stop: %d", n)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := New(1)
	n := 0
	var tk *Ticker
	tk = e.Every(0, time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := New(42)
		var out []float64
		e.Every(0, time.Second, func() { out = append(out, e.Rand().Float64()) })
		e.RunUntil(10 * time.Second)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNewStreamIndependence(t *testing.T) {
	e := New(7)
	s1 := e.NewStream("alpha")
	s2 := e.NewStream("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Int63() == s2.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams look correlated: %d identical draws", same)
	}
}

func TestLogNormalMeanCalibration(t *testing.T) {
	e := New(3)
	const want, sigma = 5131.0, 1.0
	mu := LogNormalMean(want, sigma)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(LogNormal(e.Rand(), mu, sigma))
	}
	if math.Abs(w.Mean()-want)/want > 0.05 {
		t.Fatalf("lognormal mean = %.0f, want ~%.0f", w.Mean(), want)
	}
}

func TestParetoBounds(t *testing.T) {
	e := New(4)
	for i := 0; i < 10000; i++ {
		v := Pareto(e.Rand(), 1.2, 0.1, 100)
		if v < 0.1-1e-9 || v > 100+1e-9 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	q := Quantiles(xs, 0, 0.5, 1)
	if q[0] != 1 || q[1] != 3 || q[2] != 5 {
		t.Fatalf("quantiles = %v", q)
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Fatalf("empty quantiles = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewLogHistogram(10, 1e6, 50)
	h.Add(5)    // below range -> first bin
	h.Add(2e6)  // above range -> last bin
	h.Add(1000) // interior
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Bins[0] != 1 || h.Bins[len(h.Bins)-1] != 1 {
		t.Fatalf("edge clamping failed: %v", h.Bins)
	}
	sum := 0.0
	for i := range h.Bins {
		sum += h.Probability(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if c := h.BinCenter(0); c <= 10 || c >= 1e6 {
		t.Fatalf("bin center out of range: %v", c)
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	check := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		// Bound magnitudes so float error stays small.
		var w Welford
		mean := 0.0
		for i, x := range xs {
			x = math.Mod(x, 1000)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = x
			w.Add(x)
			mean += x
		}
		mean /= float64(len(xs))
		return math.Abs(w.Mean()-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if Seconds(1.5) != 1500*time.Millisecond {
		t.Fatal("Seconds broken")
	}
	if ToSeconds(2*time.Second) != 2.0 {
		t.Fatal("ToSeconds broken")
	}
}

func TestZipfSkew(t *testing.T) {
	e := New(9)
	z := Zipf(e.Rand(), 1.2, 1000)
	counts := map[int]int{}
	for i := 0; i < 50000; i++ {
		counts[z()]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("Zipf not skewed: rank0=%d rank10=%d", counts[0], counts[10])
	}
}
