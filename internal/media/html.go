package media

import (
	"fmt"
	"math/rand"
	"strings"
)

// This file provides the HTML half of the content domain: a generator
// that synthesizes realistic pages (text, links, inline image
// references) at a target byte size, and the scanning primitives the
// HTML-munger distiller is built on (paper §3.1.6: mark up inline
// image references with distillation preferences, add links to the
// originals, and prepend a control toolbar).

var loremWords = strings.Fields(`
lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod
tempor incididunt ut labore et dolore magna aliqua enim ad minim veniam
quis nostrud exercitation ullamco laboris nisi aliquip ex ea commodo
consequat duis aute irure in reprehenderit voluptate velit esse cillum
fugiat nulla pariatur excepteur sint occaecat cupidatat non proident
sunt culpa qui officia deserunt mollit anim id est laborum berkeley
cluster network service scalable proxy distillation cache worker`)

// GenerateHTML synthesizes a page of roughly targetBytes, containing
// paragraphs, anchors and inline image references. imageRefs returns
// the src values to embed (in order); pass nil for defaults.
func GenerateHTML(rng *rand.Rand, targetBytes int, imageRefs []string) []byte {
	if targetBytes < 128 {
		targetBytes = 128
	}
	var b strings.Builder
	b.Grow(targetBytes + 256)
	b.WriteString("<html><head><title>")
	writeWords(&b, rng, 4)
	b.WriteString("</title></head><body>\n")
	imgIdx := 0
	for b.Len() < targetBytes-32 {
		switch rng.Intn(6) {
		case 0: // heading
			b.WriteString("<h2>")
			writeWords(&b, rng, 3+rng.Intn(4))
			b.WriteString("</h2>\n")
		case 1: // link
			fmt.Fprintf(&b, `<a href="http://origin%d.example/page%d.html">`, rng.Intn(50), rng.Intn(1000))
			writeWords(&b, rng, 2+rng.Intn(3))
			b.WriteString("</a>\n")
		case 2: // inline image
			var src string
			if imgIdx < len(imageRefs) {
				src = imageRefs[imgIdx]
				imgIdx++
			} else {
				src = fmt.Sprintf("http://origin%d.example/img%d.sgif", rng.Intn(50), rng.Intn(1000))
			}
			fmt.Fprintf(&b, `<img src="%s" alt="figure">`+"\n", src)
		default: // paragraph
			b.WriteString("<p>")
			writeWords(&b, rng, 20+rng.Intn(40))
			b.WriteString("</p>\n")
		}
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

func writeWords(b *strings.Builder, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(loremWords[rng.Intn(len(loremWords))])
	}
}

// ImageRef is one inline image reference found in a page.
type ImageRef struct {
	Src        string
	TagStart   int // byte offset of '<'
	TagEnd     int // byte offset one past '>'
	SrcStart   int // byte offset of the src value
	SrcEnd     int // byte offset one past the src value
	AttrsExtra string
}

// FindImageRefs scans HTML for <img ...> tags and returns their src
// attributes with offsets. The scanner is deliberately forgiving —
// TranSend's HTML distiller had to survive pathological pages.
func FindImageRefs(html []byte) []ImageRef {
	var refs []ImageRef
	s := string(html)
	lower := strings.ToLower(s)
	pos := 0
	for {
		i := strings.Index(lower[pos:], "<img")
		if i < 0 {
			return refs
		}
		start := pos + i
		end := strings.IndexByte(s[start:], '>')
		if end < 0 {
			return refs
		}
		end = start + end + 1
		tag := s[start:end]
		tagLower := lower[start:end]
		if j := strings.Index(tagLower, "src="); j >= 0 {
			valStart := j + len("src=")
			var valEnd int
			if valStart < len(tag) && (tag[valStart] == '"' || tag[valStart] == '\'') {
				quote := tag[valStart]
				valStart++
				rel := strings.IndexByte(tag[valStart:], quote)
				if rel < 0 {
					pos = end
					continue
				}
				valEnd = valStart + rel
			} else {
				rel := strings.IndexAny(tag[valStart:], " \t\n>")
				if rel < 0 {
					rel = len(tag) - valStart
				}
				valEnd = valStart + rel
			}
			refs = append(refs, ImageRef{
				Src:      tag[valStart:valEnd],
				TagStart: start,
				TagEnd:   end,
				SrcStart: start + valStart,
				SrcEnd:   start + valEnd,
			})
		}
		pos = end
	}
}

// MungeOptions controls RewriteHTML, mirroring the knobs the paper's
// HTML distiller exposed per user profile.
type MungeOptions struct {
	// RewriteSrc maps an original image URL to its distilled URL.
	// Nil leaves sources untouched.
	RewriteSrc func(src string) string
	// OriginalLink, if set, appends an anchor to the original
	// content after each rewritten image.
	OriginalLink bool
	// Toolbar, if non-empty, is inserted immediately after <body>
	// (the paper's Figure 4 control toolbar).
	Toolbar string
}

// RewriteHTML applies the munge options and returns the new page.
func RewriteHTML(html []byte, opt MungeOptions) []byte {
	refs := FindImageRefs(html)
	var b strings.Builder
	b.Grow(len(html) + 512)
	s := string(html)
	last := 0
	for _, ref := range refs {
		newSrc := ref.Src
		if opt.RewriteSrc != nil {
			newSrc = opt.RewriteSrc(ref.Src)
		}
		b.WriteString(s[last:ref.SrcStart])
		b.WriteString(newSrc)
		b.WriteString(s[ref.SrcEnd:ref.TagEnd])
		if opt.OriginalLink {
			fmt.Fprintf(&b, `<a href="%s">[original]</a>`, ref.Src)
		}
		last = ref.TagEnd
	}
	b.WriteString(s[last:])
	out := b.String()
	if opt.Toolbar != "" {
		lower := strings.ToLower(out)
		if i := strings.Index(lower, "<body"); i >= 0 {
			if j := strings.IndexByte(out[i:], '>'); j >= 0 {
				at := i + j + 1
				out = out[:at] + opt.Toolbar + out[at:]
			}
		} else {
			out = opt.Toolbar + out
		}
	}
	return []byte(out)
}

// StripTags removes all markup, returning the text content — the
// thin-client ("PalmPilot") simplification primitive from §5.1.
func StripTags(html []byte) []byte {
	var b strings.Builder
	b.Grow(len(html))
	inTag := false
	for _, c := range string(html) {
		switch {
		case c == '<':
			inTag = true
		case c == '>':
			inTag = false
			b.WriteByte(' ')
		case !inTag:
			b.WriteRune(c)
		}
	}
	return []byte(strings.Join(strings.Fields(b.String()), " "))
}
