// Package media provides the content domain TranSend's distillers
// operate on (paper §3.1.6): a synthetic grayscale raster type, two
// image codecs — SGIF (palette + run-length, the GIF stand-in) and
// SJPG (8×8 block DCT with quality-scaled quantisation, the JPEG
// stand-in) — and an HTML generator/munger substrate.
//
// The codecs do real, CPU-bound, size-reducing work: distillation
// decodes, downscales and re-encodes at lower fidelity, so the latency
// and size behaviour the paper measures (Figure 3's 10 KB → 1.5 KB,
// Figure 7's size-linear distillation cost) emerges from actual
// computation rather than a canned table.
package media

import "math/rand"

// MIME types for the synthetic content universe, used throughout the
// service for dispatch decisions (the paper's GIF/JPEG/HTML trio).
const (
	MIMESGIF  = "image/sgif"
	MIMESJPG  = "image/sjpg"
	MIMEHTML  = "text/html"
	MIMEOther = "application/octet-stream"
)

// Image is an 8-bit grayscale raster.
type Image struct {
	W, H int
	Pix  []byte // row-major, len == W*H
}

// NewImage allocates a zeroed image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic("media: image dimensions must be positive")
	}
	return &Image{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x, y), clamping coordinates to the image
// bounds (convenient for block codecs at the edges).
func (im *Image) At(x, y int) byte {
	if x < 0 {
		x = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v byte) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Generate synthesizes a natural-looking image: low-frequency value
// noise (bilinear-interpolated coarse grid) plus fine-grain noise.
// Smooth large-scale structure is what makes the codecs' compression
// behave like real photo compression.
func Generate(rng *rand.Rand, w, h int) *Image {
	const cell = 16
	gw, gh := w/cell+2, h/cell+2
	grid := make([]float64, gw*gh)
	for i := range grid {
		grid[i] = rng.Float64() * 255
	}
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		gy := float64(y) / cell
		y0 := int(gy)
		fy := gy - float64(y0)
		for x := 0; x < w; x++ {
			gx := float64(x) / cell
			x0 := int(gx)
			fx := gx - float64(x0)
			v00 := grid[y0*gw+x0]
			v10 := grid[y0*gw+x0+1]
			v01 := grid[(y0+1)*gw+x0]
			v11 := grid[(y0+1)*gw+x0+1]
			v := v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
			v += (rng.Float64() - 0.5) * 12 // sensor noise
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Pix[y*w+x] = byte(v)
		}
	}
	return im
}

// Downscale returns the image reduced by an integer factor using a box
// filter (the paper's Figure 3 "scaling by a factor of 2 in each
// dimension"). Factor <= 1 returns a copy.
func (im *Image) Downscale(factor int) *Image {
	if factor <= 1 {
		out := NewImage(im.W, im.H)
		copy(out.Pix, im.Pix)
		return out
	}
	w := im.W / factor
	h := im.H / factor
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum, n := 0, 0
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					sx, sy := x*factor+dx, y*factor+dy
					if sx < im.W && sy < im.H {
						sum += int(im.Pix[sy*im.W+sx])
						n++
					}
				}
			}
			out.Pix[y*w+x] = byte(sum / n)
		}
	}
	return out
}

// BoxBlur applies a low-pass box filter of the given radius — the
// "low-pass filtering of JPEG images" distillation primitive.
func (im *Image) BoxBlur(radius int) *Image {
	if radius <= 0 {
		out := NewImage(im.W, im.H)
		copy(out.Pix, im.Pix)
		return out
	}
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			sum, n := 0, 0
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					sum += int(im.At(x+dx, y+dy))
					n++
				}
			}
			out.Pix[y*im.W+x] = byte(sum / n)
		}
	}
	return out
}

// MeanAbsDiff returns the mean absolute pixel difference between two
// images of identical dimensions, a simple quality metric for codec
// round-trip tests. It panics on dimension mismatch.
func MeanAbsDiff(a, b *Image) float64 {
	if a.W != b.W || a.H != b.H {
		panic("media: dimension mismatch")
	}
	sum := 0.0
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	return sum / float64(len(a.Pix))
}
