package media

import (
	"math"
	"math/rand"
)

// This file synthesizes content at a target encoded size, so the
// trace generator's size samples (paper Figure 5) can be materialized
// into real bytes that the distillers then really process.

// GenerateContent produces encoded content of approximately
// targetBytes for the given MIME type. The returned size tracks the
// target within roughly ±25% for images (codec output is not exactly
// steerable) and a few bytes for HTML.
func GenerateContent(rng *rand.Rand, mime string, targetBytes int) []byte {
	if targetBytes < 64 {
		targetBytes = 64
	}
	switch mime {
	case MIMESGIF:
		return generateSizedImage(rng, targetBytes, func(im *Image) []byte {
			return EncodeSGIF(im, 64)
		})
	case MIMESJPG:
		return generateSizedImage(rng, targetBytes, func(im *Image) []byte {
			return EncodeSJPG(im, 75)
		})
	case MIMEHTML:
		return GenerateHTML(rng, targetBytes, nil)
	default:
		buf := make([]byte, targetBytes)
		rng.Read(buf)
		return buf
	}
}

// generateSizedImage searches for image dimensions whose encoding
// lands near the target size, using a calibrate-then-correct loop.
func generateSizedImage(rng *rand.Rand, target int, encode func(*Image) []byte) []byte {
	// Initial guess: bytes-per-pixel ~0.6 for both codecs on
	// value-noise content.
	bpp := 0.6
	side := int(math.Sqrt(float64(target) / bpp))
	if side < 8 {
		side = 8
	}
	var best []byte
	for iter := 0; iter < 4; iter++ {
		im := Generate(rng, side, side)
		data := encode(im)
		if best == nil || absInt(len(data)-target) < absInt(len(best)-target) {
			best = data
		}
		ratio := float64(len(data)) / float64(target)
		if ratio > 0.8 && ratio < 1.25 {
			break
		}
		side = int(float64(side) / math.Sqrt(ratio))
		if side < 8 {
			side = 8
		}
		if side > 4096 {
			side = 4096
		}
	}
	return best
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// DetectMIME sniffs the synthetic content type from magic bytes.
func DetectMIME(data []byte) string {
	switch {
	case len(data) >= 4 && string(data[:4]) == "SGIF":
		return MIMESGIF
	case len(data) >= 4 && string(data[:4]) == "SJPG":
		return MIMESJPG
	case looksLikeHTML(data):
		return MIMEHTML
	default:
		return MIMEOther
	}
}

func looksLikeHTML(data []byte) bool {
	n := len(data)
	if n > 64 {
		n = 64
	}
	head := string(data[:n])
	for i := 0; i+5 < len(head); i++ {
		if head[i] == '<' {
			switch {
			case equalFold(head[i+1:], "html"),
				equalFold(head[i+1:], "head"),
				equalFold(head[i+1:], "body"),
				equalFold(head[i+1:], "!doc"):
				return true
			}
		}
	}
	return false
}

func equalFold(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		c, p := s[i], prefix[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if 'A' <= p && p <= 'Z' {
			p += 'a' - 'A'
		}
		if c != p {
			return false
		}
	}
	return true
}
