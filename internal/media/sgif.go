package media

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// SGIF is the repository's GIF stand-in: a palette-indexed,
// run-length-encoded raster format. Like GIF it is lossless given the
// palette, and distillation reduces size by shrinking dimensions and
// palette depth.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "SGIF" | width | height | paletteSize |
//	palette bytes (paletteSize gray values) |
//	runs: (runLength varint, paletteIndex byte)* covering W*H pixels

var sgifMagic = []byte("SGIF")

// ErrCorrupt reports undecodable image data. Distillers treat it the
// way TranSend treated pathological inputs: the worker errors out and
// the front end falls back to the original bytes.
var ErrCorrupt = errors.New("media: corrupt image data")

// EncodeSGIF encodes an image with the given palette size (2..256
// gray levels). Fewer levels means longer runs and a smaller file.
func EncodeSGIF(im *Image, colors int) []byte {
	if colors < 2 {
		colors = 2
	}
	if colors > 256 {
		colors = 256
	}
	buf := make([]byte, 0, len(im.Pix)/4+64)
	buf = append(buf, sgifMagic...)
	buf = binary.AppendUvarint(buf, uint64(im.W))
	buf = binary.AppendUvarint(buf, uint64(im.H))
	buf = binary.AppendUvarint(buf, uint64(colors))
	for i := 0; i < colors; i++ {
		buf = append(buf, byte(i*255/(colors-1)))
	}
	quant := func(v byte) byte {
		return byte((int(v)*(colors-1) + 127) / 255)
	}
	i := 0
	for i < len(im.Pix) {
		idx := quant(im.Pix[i])
		run := 1
		for i+run < len(im.Pix) && quant(im.Pix[i+run]) == idx {
			run++
		}
		buf = binary.AppendUvarint(buf, uint64(run))
		buf = append(buf, idx)
		i += run
	}
	return buf
}

// DecodeSGIF decodes SGIF data. It never panics on corrupt input.
func DecodeSGIF(data []byte) (*Image, error) {
	r := reader{data: data}
	if !r.expect(sgifMagic) {
		return nil, fmt.Errorf("%w: bad SGIF magic", ErrCorrupt)
	}
	w := r.uvarint()
	h := r.uvarint()
	colors := r.uvarint()
	if r.err != nil || w == 0 || h == 0 || colors < 2 || colors > 256 || w*h > 1<<28 {
		return nil, fmt.Errorf("%w: bad SGIF header", ErrCorrupt)
	}
	palette := r.bytes(int(colors))
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated SGIF palette", ErrCorrupt)
	}
	im := NewImage(int(w), int(h))
	pos := 0
	for pos < len(im.Pix) {
		run := r.uvarint()
		idx := r.byte()
		if r.err != nil || run == 0 || int(idx) >= len(palette) || pos+int(run) > len(im.Pix) {
			return nil, fmt.Errorf("%w: bad SGIF run at pixel %d", ErrCorrupt, pos)
		}
		v := palette[idx]
		for j := 0; j < int(run); j++ {
			im.Pix[pos+j] = v
		}
		pos += int(run)
	}
	return im, nil
}

// SGIFInfo reports the dimensions and palette size without a full
// decode.
func SGIFInfo(data []byte) (w, h, colors int, err error) {
	r := reader{data: data}
	if !r.expect(sgifMagic) {
		return 0, 0, 0, fmt.Errorf("%w: bad SGIF magic", ErrCorrupt)
	}
	uw, uh, uc := r.uvarint(), r.uvarint(), r.uvarint()
	if r.err != nil {
		return 0, 0, 0, fmt.Errorf("%w: truncated SGIF header", ErrCorrupt)
	}
	return int(uw), int(uh), int(uc), nil
}

// reader is a bounds-checked byte cursor shared by the codecs.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) expect(magic []byte) bool {
	if r.pos+len(magic) > len(r.data) {
		r.err = ErrCorrupt
		return false
	}
	for i, b := range magic {
		if r.data[r.pos+i] != b {
			r.err = ErrCorrupt
			return false
		}
	}
	r.pos += len(magic)
	return true
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.err = ErrCorrupt
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = ErrCorrupt
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}
