package media

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestImageAtSetClamping(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(1, 1, 100)
	if im.At(1, 1) != 100 {
		t.Fatal("Set/At round trip failed")
	}
	if im.At(-5, 1) != im.At(0, 1) || im.At(10, 1) != im.At(3, 1) {
		t.Fatal("At should clamp out-of-bounds coordinates")
	}
	im.Set(-1, -1, 42) // must not panic
	im.Set(99, 99, 42)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(1)), 64, 64)
	b := Generate(rand.New(rand.NewSource(1)), 64, 64)
	if MeanAbsDiff(a, b) != 0 {
		t.Fatal("same seed produced different images")
	}
}

func TestDownscale(t *testing.T) {
	im := Generate(rand.New(rand.NewSource(2)), 64, 48)
	small := im.Downscale(2)
	if small.W != 32 || small.H != 24 {
		t.Fatalf("downscaled dims = %dx%d", small.W, small.H)
	}
	same := im.Downscale(1)
	if MeanAbsDiff(im, same) != 0 {
		t.Fatal("factor 1 should copy")
	}
	tiny := NewImage(3, 3).Downscale(8)
	if tiny.W != 1 || tiny.H != 1 {
		t.Fatalf("min dims = %dx%d", tiny.W, tiny.H)
	}
}

func TestBoxBlurSmooths(t *testing.T) {
	im := NewImage(16, 16)
	// Checkerboard: maximal high-frequency content.
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if (x+y)%2 == 0 {
				im.Set(x, y, 255)
			}
		}
	}
	blurred := im.BoxBlur(1)
	// Interior pixels should approach the mean.
	v := blurred.At(8, 8)
	if v < 100 || v > 155 {
		t.Fatalf("blur failed: interior pixel %d", v)
	}
	if MeanAbsDiff(im, im.BoxBlur(0)) != 0 {
		t.Fatal("radius 0 should copy")
	}
}

func TestSGIFRoundTrip(t *testing.T) {
	im := Generate(rand.New(rand.NewSource(3)), 100, 80)
	data := EncodeSGIF(im, 256)
	got, err := DecodeSGIF(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("dims = %dx%d", got.W, got.H)
	}
	// 256 levels: quantisation error < 1 level.
	if d := MeanAbsDiff(im, got); d > 1.0 {
		t.Fatalf("round-trip error %.2f too high for 256 colors", d)
	}
}

func TestSGIFPaletteReductionShrinks(t *testing.T) {
	im := Generate(rand.New(rand.NewSource(4)), 128, 128)
	full := EncodeSGIF(im, 256)
	reduced := EncodeSGIF(im, 8)
	if len(reduced) >= len(full) {
		t.Fatalf("8-color SGIF (%d B) not smaller than 256-color (%d B)", len(reduced), len(full))
	}
}

func TestSGIFInfo(t *testing.T) {
	im := Generate(rand.New(rand.NewSource(5)), 33, 21)
	data := EncodeSGIF(im, 16)
	w, h, colors, err := SGIFInfo(data)
	if err != nil || w != 33 || h != 21 || colors != 16 {
		t.Fatalf("SGIFInfo = %d %d %d %v", w, h, colors, err)
	}
	if _, _, _, err := SGIFInfo([]byte("nope")); err == nil {
		t.Fatal("expected error on garbage")
	}
}

func TestSJPGRoundTripQuality(t *testing.T) {
	im := Generate(rand.New(rand.NewSource(6)), 96, 96)
	hi := EncodeSJPG(im, 90)
	lo := EncodeSJPG(im, 10)
	if len(lo) >= len(hi) {
		t.Fatalf("low quality (%d B) not smaller than high (%d B)", len(lo), len(hi))
	}
	decHi, err := DecodeSJPG(hi)
	if err != nil {
		t.Fatal(err)
	}
	decLo, err := DecodeSJPG(lo)
	if err != nil {
		t.Fatal(err)
	}
	errHi := MeanAbsDiff(im, decHi)
	errLo := MeanAbsDiff(im, decLo)
	if errHi >= errLo {
		t.Fatalf("quality ordering violated: err(q90)=%.2f err(q10)=%.2f", errHi, errLo)
	}
	if errHi > 8 {
		t.Fatalf("q90 round-trip error %.2f too high", errHi)
	}
}

func TestSJPGInfo(t *testing.T) {
	im := Generate(rand.New(rand.NewSource(7)), 40, 24)
	data := EncodeSJPG(im, 55)
	w, h, q, err := SJPGInfo(data)
	if err != nil || w != 40 || h != 24 || q != 55 {
		t.Fatalf("SJPGInfo = %d %d %d %v", w, h, q, err)
	}
}

func TestSJPGNonMultipleOf8(t *testing.T) {
	im := Generate(rand.New(rand.NewSource(8)), 37, 19)
	data := EncodeSJPG(im, 70)
	got, err := DecodeSJPG(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 37 || got.H != 19 {
		t.Fatalf("dims = %dx%d", got.W, got.H)
	}
}

func TestDistillationShrinksLikeFigure3(t *testing.T) {
	// Paper Figure 3: scale 2x + quality 25 turns 10KB into 1.5KB
	// (a factor of ~6.7). Verify our pipeline gives a substantial
	// reduction of the same flavour.
	rng := rand.New(rand.NewSource(9))
	orig := GenerateContent(rng, MIMESJPG, 10*1024)
	im, err := DecodeSJPG(orig)
	if err != nil {
		t.Fatal(err)
	}
	distilled := EncodeSJPG(im.Downscale(2), 25)
	ratio := float64(len(orig)) / float64(len(distilled))
	if ratio < 3 {
		t.Fatalf("distillation ratio %.1f, want >= 3 (paper ~6.7)", ratio)
	}
}

func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	check := func(data []byte) bool {
		// Both decoders must return an error or an image, never panic.
		if im, err := DecodeSGIF(data); err == nil && im == nil {
			return false
		}
		if im, err := DecodeSJPG(data); err == nil && im == nil {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodersRejectTruncation(t *testing.T) {
	im := Generate(rand.New(rand.NewSource(10)), 64, 64)
	for _, data := range [][]byte{EncodeSGIF(im, 32), EncodeSJPG(im, 60)} {
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			cut := data[:int(float64(len(data))*frac)]
			_, err1 := DecodeSGIF(cut)
			_, err2 := DecodeSJPG(cut)
			if err1 == nil && err2 == nil {
				t.Fatalf("truncation to %.0f%% accepted", frac*100)
			}
		}
	}
}

func TestGenerateHTMLTargetsSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, target := range []int{512, 5000, 20000} {
		page := GenerateHTML(rng, target, nil)
		if len(page) < target/2 || len(page) > target*2 {
			t.Fatalf("target %d produced %d bytes", target, len(page))
		}
		if !strings.Contains(string(page), "<html>") {
			t.Fatal("missing html tag")
		}
	}
}

func TestFindImageRefs(t *testing.T) {
	html := []byte(`<html><body>
<img src="http://a.example/x.sgif" alt="one">
<IMG SRC='http://b.example/y.sjpg'>
<img src=http://c.example/z.sgif >
<img alt="no src here">
</body></html>`)
	refs := FindImageRefs(html)
	if len(refs) != 3 {
		t.Fatalf("found %d refs, want 3: %+v", len(refs), refs)
	}
	want := []string{"http://a.example/x.sgif", "http://b.example/y.sjpg", "http://c.example/z.sgif"}
	for i, ref := range refs {
		if ref.Src != want[i] {
			t.Fatalf("ref[%d] = %q, want %q", i, ref.Src, want[i])
		}
	}
}

func TestRewriteHTML(t *testing.T) {
	html := []byte(`<html><body><p>hi</p><img src="http://a/x.sgif"></body></html>`)
	out := RewriteHTML(html, MungeOptions{
		RewriteSrc:   func(src string) string { return "/distill?u=" + src },
		OriginalLink: true,
		Toolbar:      `<div id="toolbar">TranSend</div>`,
	})
	s := string(out)
	if !strings.Contains(s, `src="/distill?u=http://a/x.sgif"`) {
		t.Fatalf("src not rewritten: %s", s)
	}
	if !strings.Contains(s, `<a href="http://a/x.sgif">[original]</a>`) {
		t.Fatalf("original link missing: %s", s)
	}
	if !strings.HasPrefix(s, `<html><body><div id="toolbar">`) {
		t.Fatalf("toolbar not after body: %s", s)
	}
}

func TestRewriteHTMLNoBody(t *testing.T) {
	out := RewriteHTML([]byte(`<p>x</p>`), MungeOptions{Toolbar: "<b>T</b>"})
	if !strings.HasPrefix(string(out), "<b>T</b>") {
		t.Fatalf("toolbar fallback failed: %s", out)
	}
}

func TestStripTags(t *testing.T) {
	got := string(StripTags([]byte("<html><body><p>hello <b>world</b></p></body></html>")))
	if got != "hello world" {
		t.Fatalf("StripTags = %q", got)
	}
}

func TestGenerateContentSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, mime := range []string{MIMESGIF, MIMESJPG, MIMEHTML} {
		for _, target := range []int{1024, 8192, 30000} {
			data := GenerateContent(rng, mime, target)
			ratio := float64(len(data)) / float64(target)
			if ratio < 0.4 || ratio > 2.5 {
				t.Fatalf("%s target %d produced %d bytes (ratio %.2f)", mime, target, len(data), ratio)
			}
			if got := DetectMIME(data); got != mime {
				t.Fatalf("DetectMIME(%s content) = %s", mime, got)
			}
		}
	}
}

func TestGenerateContentOther(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := GenerateContent(rng, MIMEOther, 500)
	if len(data) != 500 {
		t.Fatalf("other content size = %d", len(data))
	}
	if DetectMIME(data) == MIMEHTML {
		t.Fatal("random bytes detected as HTML")
	}
}

func TestMeanAbsDiffPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeanAbsDiff(NewImage(2, 2), NewImage(3, 3))
}
