package media

import (
	"encoding/binary"
	"fmt"
	"math"
)

// SJPG is the repository's JPEG stand-in: a lossy 8×8 block-DCT codec
// with a quality-scaled quantisation table (the same scheme as
// baseline JPEG luminance coding, minus the Huffman stage). Lower
// quality discards more high-frequency coefficients, so files shrink
// and blocks blur — real transform coding, not a size table.
//
// Layout:
//
//	magic "SJPG" | width | height | quality |
//	per 8×8 block: nCoef byte (0..64) then nCoef signed varints
//	(zigzag-ordered quantised coefficients, trailing zeros dropped)

var sjpgMagic = []byte("SJPG")

// baseQuant is the standard JPEG luminance quantisation table.
var baseQuant = [64]int{
	16, 11, 10, 16, 24, 40, 51, 61,
	12, 12, 14, 19, 26, 58, 60, 55,
	14, 13, 16, 24, 40, 57, 69, 56,
	14, 17, 22, 29, 51, 87, 80, 62,
	18, 22, 37, 56, 68, 109, 103, 77,
	24, 35, 55, 64, 81, 104, 113, 92,
	49, 64, 78, 87, 103, 121, 120, 101,
	72, 92, 95, 98, 112, 100, 103, 99,
}

// zigzag maps scan position to block index.
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// cosTable[u][x] = cos((2x+1)uπ/16), precomputed for the DCT.
var cosTable [8][8]float64

func init() {
	for u := 0; u < 8; u++ {
		for x := 0; x < 8; x++ {
			cosTable[u][x] = math.Cos(float64(2*x+1) * float64(u) * math.Pi / 16)
		}
	}
}

// quantTable scales the base table for a quality in 1..100, following
// the IJG convention (quality 50 = base table).
func quantTable(quality int) [64]int {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	var scale int
	if quality < 50 {
		scale = 5000 / quality
	} else {
		scale = 200 - 2*quality
	}
	var q [64]int
	for i, b := range baseQuant {
		v := (b*scale + 50) / 100
		if v < 1 {
			v = 1
		}
		if v > 255 {
			v = 255
		}
		q[i] = v
	}
	return q
}

// fdct computes the 2D DCT-II of one 8×8 block (level-shifted by 128).
func fdct(block *[64]float64) {
	var tmp [64]float64
	// Rows.
	for y := 0; y < 8; y++ {
		for u := 0; u < 8; u++ {
			sum := 0.0
			for x := 0; x < 8; x++ {
				sum += block[y*8+x] * cosTable[u][x]
			}
			c := 0.5
			if u == 0 {
				c = 1 / (2 * math.Sqrt2)
			}
			tmp[y*8+u] = sum * c
		}
	}
	// Columns.
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			sum := 0.0
			for y := 0; y < 8; y++ {
				sum += tmp[y*8+u] * cosTable[v][y]
			}
			c := 0.5
			if v == 0 {
				c = 1 / (2 * math.Sqrt2)
			}
			block[v*8+u] = sum * c
		}
	}
}

// idct computes the inverse 2D DCT of one 8×8 block.
func idct(block *[64]float64) {
	var tmp [64]float64
	for v := 0; v < 8; v++ {
		for x := 0; x < 8; x++ {
			sum := 0.0
			for u := 0; u < 8; u++ {
				c := 0.5
				if u == 0 {
					c = 1 / (2 * math.Sqrt2)
				}
				sum += c * block[v*8+u] * cosTable[u][x]
			}
			tmp[v*8+x] = sum
		}
	}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			sum := 0.0
			for v := 0; v < 8; v++ {
				c := 0.5
				if v == 0 {
					c = 1 / (2 * math.Sqrt2)
				}
				sum += c * tmp[v*8+x] * cosTable[v][y]
			}
			block[y*8+x] = sum
		}
	}
}

// EncodeSJPG encodes an image at the given quality (1..100).
func EncodeSJPG(im *Image, quality int) []byte {
	if quality < 1 {
		quality = 1
	}
	if quality > 100 {
		quality = 100
	}
	q := quantTable(quality)
	buf := make([]byte, 0, len(im.Pix)/3+64)
	buf = append(buf, sjpgMagic...)
	buf = binary.AppendUvarint(buf, uint64(im.W))
	buf = binary.AppendUvarint(buf, uint64(im.H))
	buf = binary.AppendUvarint(buf, uint64(quality))

	var block [64]float64
	var coefs [64]int64
	for by := 0; by < im.H; by += 8 {
		for bx := 0; bx < im.W; bx += 8 {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					block[y*8+x] = float64(im.At(bx+x, by+y)) - 128
				}
			}
			fdct(&block)
			last := -1
			for i := 0; i < 64; i++ {
				c := int64(math.Round(block[zigzag[i]] / float64(q[zigzag[i]])))
				coefs[i] = c
				if c != 0 {
					last = i
				}
			}
			n := last + 1
			buf = append(buf, byte(n))
			for i := 0; i < n; i++ {
				buf = binary.AppendVarint(buf, coefs[i])
			}
		}
	}
	return buf
}

// DecodeSJPG decodes SJPG data. It never panics on corrupt input.
func DecodeSJPG(data []byte) (*Image, error) {
	r := reader{data: data}
	if !r.expect(sjpgMagic) {
		return nil, fmt.Errorf("%w: bad SJPG magic", ErrCorrupt)
	}
	w := r.uvarint()
	h := r.uvarint()
	quality := r.uvarint()
	if r.err != nil || w == 0 || h == 0 || quality < 1 || quality > 100 || w*h > 1<<28 {
		return nil, fmt.Errorf("%w: bad SJPG header", ErrCorrupt)
	}
	q := quantTable(int(quality))
	im := NewImage(int(w), int(h))
	var block [64]float64
	for by := 0; by < im.H; by += 8 {
		for bx := 0; bx < im.W; bx += 8 {
			n := int(r.byte())
			if r.err != nil || n > 64 {
				return nil, fmt.Errorf("%w: bad SJPG block header at (%d,%d)", ErrCorrupt, bx, by)
			}
			for i := range block {
				block[i] = 0
			}
			for i := 0; i < n; i++ {
				c := r.varint()
				if r.err != nil {
					return nil, fmt.Errorf("%w: truncated SJPG block at (%d,%d)", ErrCorrupt, bx, by)
				}
				block[zigzag[i]] = float64(c) * float64(q[zigzag[i]])
			}
			idct(&block)
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					v := block[y*8+x] + 128
					if v < 0 {
						v = 0
					}
					if v > 255 {
						v = 255
					}
					im.Set(bx+x, by+y, byte(v))
				}
			}
		}
	}
	return im, nil
}

// SJPGInfo reports dimensions and quality without a full decode.
func SJPGInfo(data []byte) (w, h, quality int, err error) {
	r := reader{data: data}
	if !r.expect(sjpgMagic) {
		return 0, 0, 0, fmt.Errorf("%w: bad SJPG magic", ErrCorrupt)
	}
	uw, uh, uq := r.uvarint(), r.uvarint(), r.uvarint()
	if r.err != nil {
		return 0, 0, 0, fmt.Errorf("%w: truncated SJPG header", ErrCorrupt)
	}
	return int(uw), int(uh), int(uq), nil
}
