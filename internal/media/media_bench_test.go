package media

import (
	"math/rand"
	"testing"
)

func benchImage(b *testing.B) *Image {
	b.Helper()
	return Generate(rand.New(rand.NewSource(1)), 128, 128)
}

func BenchmarkEncodeSJPG(b *testing.B) {
	im := benchImage(b)
	b.SetBytes(int64(len(im.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeSJPG(im, 75)
	}
}

func BenchmarkDecodeSJPG(b *testing.B) {
	data := EncodeSJPG(benchImage(b), 75)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSJPG(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeSGIF(b *testing.B) {
	im := benchImage(b)
	b.SetBytes(int64(len(im.Pix)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeSGIF(im, 64)
	}
}

func BenchmarkDecodeSGIF(b *testing.B) {
	data := EncodeSGIF(benchImage(b), 64)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSGIF(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDownscale(b *testing.B) {
	im := benchImage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Downscale(2)
	}
}

func BenchmarkRewriteHTML(b *testing.B) {
	page := GenerateHTML(rand.New(rand.NewSource(2)), 20000, nil)
	opt := MungeOptions{
		RewriteSrc:   func(s string) string { return "/d?u=" + s },
		OriginalLink: true,
		Toolbar:      "<div>t</div>",
	}
	b.SetBytes(int64(len(page)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RewriteHTML(page, opt)
	}
}
