package tacc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func upper() Worker {
	return WorkerFunc{Name: "upper", Fn: func(ctx context.Context, t *Task) (Blob, error) {
		return Blob{MIME: t.Input.MIME, Data: []byte(strings.ToUpper(string(t.Input.Data)))}, nil
	}}
}

func suffix() Worker {
	return WorkerFunc{Name: "suffix", Fn: func(ctx context.Context, t *Task) (Blob, error) {
		s := t.Param("suffix", "!")
		return Blob{MIME: t.Input.MIME, Data: append(append([]byte{}, t.Input.Data...), s...)}, nil
	}}
}

func failing() Worker {
	return WorkerFunc{Name: "failing", Fn: func(ctx context.Context, t *Task) (Blob, error) {
		return Blob{}, errors.New("pathological input")
	}}
}

func concat() Worker {
	return WorkerFunc{Name: "concat", Fn: func(ctx context.Context, t *Task) (Blob, error) {
		var b []byte
		for _, in := range t.Inputs {
			b = append(b, in.Data...)
		}
		return Blob{MIME: "text/plain", Data: b}, nil
	}}
}

func newTestRegistry() *Registry {
	r := NewRegistry()
	r.Register("upper", upper)
	r.Register("suffix", suffix)
	r.Register("failing", failing)
	r.Register("concat", concat)
	return r
}

func TestPipelineChaining(t *testing.T) {
	r := newTestRegistry()
	out, err := r.Run(context.Background(),
		Pipeline{{Class: "upper"}, {Class: "suffix", Params: map[string]string{"suffix": "?"}}},
		&Task{Input: Blob{MIME: "text/plain", Data: []byte("hello")}})
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Data) != "HELLO?" {
		t.Fatalf("out = %q", out.Data)
	}
}

func TestPipelineOrderMatters(t *testing.T) {
	r := newTestRegistry()
	task := func() *Task { return &Task{Input: Blob{Data: []byte("a")}} }
	ab, err := r.Run(context.Background(), Pipeline{{Class: "suffix"}, {Class: "upper"}}, task())
	if err != nil {
		t.Fatal(err)
	}
	ba, err := r.Run(context.Background(), Pipeline{{Class: "upper"}, {Class: "suffix"}}, task())
	if err != nil {
		t.Fatal(err)
	}
	if string(ab.Data) != "A!" || string(ba.Data) != "A!" {
		// upper(suffix(a)) = "A!", suffix(upper(a)) = "A!" — same here,
		// but verify both ran fully.
		t.Fatalf("ab=%q ba=%q", ab.Data, ba.Data)
	}
}

func TestEmptyPipelinePassesThrough(t *testing.T) {
	r := newTestRegistry()
	in := Blob{MIME: "x", Data: []byte("untouched")}
	out, err := r.Run(context.Background(), nil, &Task{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Data) != "untouched" {
		t.Fatalf("out = %q", out.Data)
	}
}

func TestPipelineStageError(t *testing.T) {
	r := newTestRegistry()
	_, err := r.Run(context.Background(),
		Pipeline{{Class: "upper"}, {Class: "failing"}, {Class: "suffix"}},
		&Task{Input: Blob{Data: []byte("x")}})
	if err == nil || !strings.Contains(err.Error(), "failing") {
		t.Fatalf("err = %v", err)
	}
}

func TestPipelineUnknownClass(t *testing.T) {
	r := newTestRegistry()
	_, err := r.Run(context.Background(), Pipeline{{Class: "ghost"}}, &Task{})
	if !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("err = %v", err)
	}
}

func TestAggregationConsumesInputs(t *testing.T) {
	r := newTestRegistry()
	out, err := r.Run(context.Background(),
		Pipeline{{Class: "concat"}, {Class: "upper"}},
		&Task{Inputs: []Blob{{Data: []byte("a")}, {Data: []byte("b")}, {Data: []byte("c")}}})
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Data) != "ABC" {
		t.Fatalf("out = %q", out.Data)
	}
}

func TestParamLayering(t *testing.T) {
	task := &Task{
		Profile: map[string]string{"quality": "50", "scale": "2"},
		Params:  map[string]string{"quality": "25"},
	}
	if got := task.Param("quality", "75"); got != "25" {
		t.Fatalf("stage param should win: %q", got)
	}
	if got := task.Param("scale", "1"); got != "2" {
		t.Fatalf("profile should beat default: %q", got)
	}
	if got := task.Param("missing", "def"); got != "def" {
		t.Fatalf("default: %q", got)
	}
}

func TestParamConversions(t *testing.T) {
	task := &Task{Params: map[string]string{"n": "42", "bad": "xyz", "b": "true"}}
	if task.ParamInt("n", 0) != 42 {
		t.Fatal("ParamInt")
	}
	if task.ParamInt("bad", 7) != 7 {
		t.Fatal("ParamInt malformed should default")
	}
	if task.ParamInt("missing", 9) != 9 {
		t.Fatal("ParamInt missing")
	}
	if !task.ParamBool("b", false) {
		t.Fatal("ParamBool")
	}
	if task.ParamBool("bad", true) != true {
		t.Fatal("ParamBool malformed should default")
	}
}

func TestBlobHelpers(t *testing.T) {
	b := Blob{MIME: "x", Data: []byte("abc")}
	if b.Size() != 3 {
		t.Fatal("Size")
	}
	b2 := b.WithMeta("origSize", "100")
	if b2.Meta["origSize"] != "100" {
		t.Fatal("WithMeta")
	}
	if b.Meta != nil {
		t.Fatal("WithMeta mutated the original")
	}
}

func TestCacheKeyDistinguishesVariants(t *testing.T) {
	p1 := Pipeline{{Class: "distill", Params: map[string]string{"q": "25"}}}
	p2 := Pipeline{{Class: "distill", Params: map[string]string{"q": "50"}}}
	profA := map[string]string{"screen": "640"}
	profB := map[string]string{"screen": "320"}

	keys := map[string]bool{}
	for _, p := range []Pipeline{p1, p2} {
		for _, prof := range []map[string]string{profA, profB} {
			keys[p.CacheKey("http://x/y.sgif", prof)] = true
		}
	}
	if len(keys) != 4 {
		t.Fatalf("expected 4 distinct variant keys, got %d", len(keys))
	}
	// Identical inputs share a key (users with equal prefs share
	// cache entries).
	if p1.CacheKey("u", profA) != p1.CacheKey("u", map[string]string{"screen": "640"}) {
		t.Fatal("equal profiles should share cache keys")
	}
}

func TestCacheKeyDeterministicOrder(t *testing.T) {
	// Map iteration order must not leak into keys.
	check := func(a, b, c string) bool {
		prof1 := map[string]string{"k1": a, "k2": b, "k3": c}
		prof2 := map[string]string{"k3": c, "k1": a, "k2": b}
		p := Pipeline{{Class: "w"}}
		return p.CacheKey("obj", prof1) == p.CacheKey("obj", prof2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryClasses(t *testing.T) {
	r := newTestRegistry()
	classes := r.Classes()
	if len(classes) != 4 {
		t.Fatalf("classes = %v", classes)
	}
	for i := 1; i < len(classes); i++ {
		if classes[i-1] >= classes[i] {
			t.Fatal("classes not sorted")
		}
	}
}

func TestPipelineString(t *testing.T) {
	p := Pipeline{{Class: "a"}, {Class: "b"}}
	if p.String() != "a|b" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestWorkerStatelessness(t *testing.T) {
	// Each Run instantiates fresh workers; a worker that (wrongly)
	// kept state would accumulate across instantiations. Verify the
	// registry hands out independent instances.
	r := NewRegistry()
	counter := 0
	r.Register("counting", func() Worker {
		local := 0
		return WorkerFunc{Name: "counting", Fn: func(ctx context.Context, t *Task) (Blob, error) {
			local++
			counter++
			return Blob{Data: []byte(fmt.Sprintf("%d", local))}, nil
		}}
	})
	for i := 0; i < 3; i++ {
		out, err := r.Run(context.Background(), Pipeline{{Class: "counting"}}, &Task{})
		if err != nil {
			t.Fatal(err)
		}
		if string(out.Data) != "1" {
			t.Fatalf("instance %d saw local state %q", i, out.Data)
		}
	}
	if counter != 3 {
		t.Fatalf("factory calls = %d", counter)
	}
}
