// Package tacc defines the TACC programming model (paper §2.3):
// services are composed from stateless workers that Transform a single
// data object or Aggregate several, with uniform Caching and per-user
// Customization handled by the surrounding layers. Workers are chained
// Unix-pipeline style; the selection of which workers to invoke is
// service-specific and controlled outside the workers themselves.
//
// A worker sees exactly one thing: a Task carrying its input(s), the
// requesting user's profile (delivered automatically, which is what
// lets the same worker serve many services), and per-stage parameters.
// Workers hold no state between tasks — that statelessness is what the
// SNS layer's interchangeability, load balancing and restart-anywhere
// fault tolerance rely on.
package tacc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Blob is a typed chunk of content flowing through a pipeline.
type Blob struct {
	MIME string
	Data []byte
	// Meta carries annotations a worker wants to surface (e.g.
	// original size, distillation parameters used).
	Meta map[string]string
}

// Size returns the content length in bytes.
func (b Blob) Size() int { return len(b.Data) }

// WithMeta returns a copy of the blob with one metadata entry added.
func (b Blob) WithMeta(key, val string) Blob {
	meta := make(map[string]string, len(b.Meta)+1)
	for k, v := range b.Meta {
		meta[k] = v
	}
	meta[key] = val
	b.Meta = meta
	return b
}

// Task is one unit of work handed to a worker.
type Task struct {
	// Key names the object being operated on (typically the URL);
	// caches key on it plus the parameters.
	Key string
	// Input is the object for transformation workers.
	Input Blob
	// Inputs carries multiple objects for aggregation workers; when
	// non-empty it takes precedence over Input.
	Inputs []Blob
	// Profile is the requesting user's customization record,
	// automatically supplied by the front end (§2.3).
	Profile map[string]string
	// Params are per-stage arguments from the pipeline definition.
	Params map[string]string
}

// Param looks up a parameter: explicit stage params win, then the user
// profile, then the default. This layering is the paper's "appropriate
// profile information is automatically delivered to workers".
func (t *Task) Param(key, def string) string {
	if v, ok := t.Params[key]; ok {
		return v
	}
	if v, ok := t.Profile[key]; ok {
		return v
	}
	return def
}

// ParamInt is Param with integer conversion; malformed values fall
// back to the default (workers must tolerate junk profiles).
func (t *Task) ParamInt(key string, def int) int {
	v := t.Param(key, "")
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// ParamBool is Param with boolean conversion.
func (t *Task) ParamBool(key string, def bool) bool {
	v := t.Param(key, "")
	if v == "" {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return def
	}
	return b
}

// Worker is a stateless TACC building block. Process must not retain
// state between calls; it may be arbitrarily buggy (panics are
// isolated by the worker stub) and need not be thread-safe (the stub
// serializes calls).
type Worker interface {
	// Class names the worker type (e.g. "distill-sgif"). All
	// instances of a class are interchangeable.
	Class() string
	// Process executes one task.
	Process(ctx context.Context, task *Task) (Blob, error)
}

// WorkerFunc adapts a function to Worker.
type WorkerFunc struct {
	Name string
	Fn   func(ctx context.Context, task *Task) (Blob, error)
}

// Class implements Worker.
func (w WorkerFunc) Class() string { return w.Name }

// Process implements Worker.
func (w WorkerFunc) Process(ctx context.Context, task *Task) (Blob, error) {
	return w.Fn(ctx, task)
}

// Stage is one step of a pipeline: a worker class plus its parameters.
type Stage struct {
	Class  string
	Params map[string]string
}

// Pipeline is an ordered chain of stages; the output blob of stage i
// is the input of stage i+1 — "Unix-pipeline-like chaining of an
// arbitrary number of stateless transformations and aggregations".
type Pipeline []Stage

// String renders the pipeline compactly ("distill-sgif|munge-html").
func (p Pipeline) String() string {
	parts := make([]string, len(p))
	for i, s := range p {
		parts[i] = s.Class
	}
	return strings.Join(parts, "|")
}

// CacheKey derives a cache key for the pipeline applied to an object:
// object key + every stage and parameter that affects the output. Two
// users with identical preferences share cache entries; different
// preferences get distinct distilled variants (§3.1.8: objects are
// "named by the object URL and the user preferences").
func (p Pipeline) CacheKey(objectKey string, profile map[string]string) string {
	var b strings.Builder
	b.WriteString(objectKey)
	for _, st := range p {
		b.WriteByte('|')
		b.WriteString(st.Class)
		writeSortedKV(&b, st.Params)
	}
	b.WriteByte('#')
	writeSortedKV(&b, profile)
	return b.String()
}

func writeSortedKV(b *strings.Builder, m map[string]string) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteByte(';')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
	}
}

// Registry maps worker classes to factories, letting the manager spawn
// fresh worker instances on any node on demand (§2.2.1).
type Registry struct {
	mu        sync.RWMutex
	factories map[string]func() Worker
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]func() Worker)}
}

// ErrUnknownClass reports a class with no registered factory.
var ErrUnknownClass = errors.New("tacc: unknown worker class")

// Register installs a factory for a class, replacing any previous one.
func (r *Registry) Register(class string, factory func() Worker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.factories[class] = factory
}

// New instantiates a worker of the given class.
func (r *Registry) New(class string) (Worker, error) {
	r.mu.RLock()
	f, ok := r.factories[class]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownClass, class)
	}
	return f(), nil
}

// Classes lists registered classes, sorted.
func (r *Registry) Classes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for c := range r.factories {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Run executes a pipeline locally, instantiating each stage's worker
// from the registry. This is the composition semantics reference (the
// distributed path in the front end dispatches each stage to remote
// workers but must produce the same results).
func (r *Registry) Run(ctx context.Context, p Pipeline, task *Task) (Blob, error) {
	if len(p) == 0 {
		return task.Input, nil
	}
	cur := *task
	for i, stage := range p {
		w, err := r.New(stage.Class)
		if err != nil {
			return Blob{}, err
		}
		cur.Params = stage.Params
		out, err := w.Process(ctx, &cur)
		if err != nil {
			return Blob{}, fmt.Errorf("tacc: stage %d (%s): %w", i, stage.Class, err)
		}
		cur.Input = out
		cur.Inputs = nil // aggregation inputs are consumed by the first stage
	}
	return cur.Input, nil
}

// DispatchRule decides which pipeline serves a request — the
// service-layer logic the paper localizes in the front end (§2.2.1:
// "a front end encapsulates service-specific worker dispatch logic").
type DispatchRule func(url, mime string, profile map[string]string) Pipeline
