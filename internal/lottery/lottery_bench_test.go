package lottery

import (
	"math/rand"
	"testing"
	"time"
)

func BenchmarkPick(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tickets := make([]float64, 32)
	for i := range tickets {
		tickets[i] = 1 / float64(1+i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pick(rng, tickets)
	}
}

func BenchmarkSchedulerPick(b *testing.B) {
	s := NewScheduler(1, true)
	now := time.Unix(0, 0)
	ids := make([]string, 16)
	for i := range ids {
		ids[i] = string(rune('a' + i))
		s.Report(ids[i], float64(i), now)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Pick(ids, now)
	}
}
