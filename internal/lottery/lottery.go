// Package lottery implements the front ends' worker-selection policy:
// lottery scheduling (Waldspurger & Weihl, cited in §3.1.2) over
// tickets derived from cached, slightly stale load reports, plus the
// queue-delta estimator from §4.5 that eliminated the load
// oscillations caused by that staleness.
package lottery

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Pick draws a winner index proportional to tickets. Entries with
// non-positive tickets are treated as holding one ticket so no live
// worker is ever starved. It returns -1 for an empty slice.
func Pick(rng *rand.Rand, tickets []float64) int {
	if len(tickets) == 0 {
		return -1
	}
	total := 0.0
	for _, t := range tickets {
		if t <= 0 {
			t = 1
		}
		total += t
	}
	draw := rng.Float64() * total
	acc := 0.0
	for i, t := range tickets {
		if t <= 0 {
			t = 1
		}
		acc += t
		if draw < acc {
			return i
		}
	}
	return len(tickets) - 1
}

// TicketsFromQueue converts an estimated queue length into tickets:
// shorter queues get more tickets. The +1 keeps tickets finite for
// idle workers; negative estimates clamp to zero load.
func TicketsFromQueue(estimatedQueue float64) float64 {
	if estimatedQueue < 0 {
		estimatedQueue = 0
	}
	return 1 / (1 + estimatedQueue)
}

// Estimator tracks one worker's queue length between load reports.
//
// The naive approach — use the last reported queue length until the
// next report — caused rapid oscillation (§4.5): every front end
// dumped its traffic on whichever worker last reported the shortest
// queue. The repair keeps (a) a rate-of-change estimate from the last
// two reports and (b) a count of tasks this front end dispatched since
// the last report, and extrapolates.
type Estimator struct {
	mu sync.Mutex

	lastQueue  float64
	lastReport time.Time
	rate       float64 // queue-length change per second
	dispatched float64 // local sends since last report
	reports    int
}

// Report records a fresh load report at time now.
func (e *Estimator) Report(queue float64, now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.reports > 0 {
		dt := now.Sub(e.lastReport).Seconds()
		if dt > 0 {
			e.rate = (queue - e.lastQueue) / dt
		}
	}
	e.lastQueue = queue
	e.lastReport = now
	e.dispatched = 0
	e.reports++
}

// Dispatched notes that this front end sent one task to the worker.
func (e *Estimator) Dispatched() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.dispatched++
}

// Estimate extrapolates the worker's queue length at time now.
// With useDelta false it returns the raw last report (the pre-fix
// behaviour, kept for the §4.5 ablation).
func (e *Estimator) Estimate(now time.Time, useDelta bool) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.reports == 0 {
		return 0
	}
	if !useDelta {
		return e.lastQueue
	}
	dt := now.Sub(e.lastReport).Seconds()
	if dt < 0 {
		dt = 0
	}
	est := e.lastQueue + e.rate*dt + e.dispatched
	if est < 0 || math.IsNaN(est) {
		est = 0
	}
	return est
}

// Reports returns how many reports have been recorded.
func (e *Estimator) Reports() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reports
}

// Scheduler selects among a set of workers by lottery over estimated
// queue lengths. It is the manager-stub-side policy object shared by
// the live front end and the discrete-event model.
type Scheduler struct {
	UseDelta bool // queue-delta extrapolation on (the §4.5 fix)

	mu         sync.Mutex
	rng        *rand.Rand
	estimators map[string]*Estimator
}

// NewScheduler creates a scheduler with a deterministic random stream.
func NewScheduler(seed int64, useDelta bool) *Scheduler {
	return &Scheduler{
		UseDelta:   useDelta,
		rng:        rand.New(rand.NewSource(seed)),
		estimators: make(map[string]*Estimator),
	}
}

// Report records a load report for a worker.
func (s *Scheduler) Report(worker string, queue float64, now time.Time) {
	s.estimator(worker).Report(queue, now)
}

// Forget drops a worker (it de-registered or was reported dead).
func (s *Scheduler) Forget(worker string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.estimators, worker)
}

// Estimate returns the current queue estimate for one worker.
func (s *Scheduler) Estimate(worker string, now time.Time) float64 {
	return s.estimator(worker).Estimate(now, s.UseDelta)
}

// Pick selects one of the candidate workers by lottery and records the
// dispatch against its estimator. It returns "" for no candidates.
func (s *Scheduler) Pick(candidates []string, now time.Time) string {
	if len(candidates) == 0 {
		return ""
	}
	tickets := make([]float64, len(candidates))
	for i, w := range candidates {
		tickets[i] = TicketsFromQueue(s.estimator(w).Estimate(now, s.UseDelta))
	}
	s.mu.Lock()
	idx := Pick(s.rng, tickets)
	s.mu.Unlock()
	winner := candidates[idx]
	s.estimator(winner).Dispatched()
	return winner
}

func (s *Scheduler) estimator(worker string) *Estimator {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.estimators[worker]
	if !ok {
		e = &Estimator{}
		s.estimators[worker] = e
	}
	return e
}
