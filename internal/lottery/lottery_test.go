package lottery

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPickEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := Pick(rng, nil); got != -1 {
		t.Fatalf("Pick(empty) = %d", got)
	}
}

func TestPickSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if got := Pick(rng, []float64{5}); got != 0 {
			t.Fatalf("Pick single = %d", got)
		}
	}
}

func TestPickProportionalFairness(t *testing.T) {
	// A worker with 3x the tickets should win about 3x as often.
	rng := rand.New(rand.NewSource(42))
	tickets := []float64{3, 1}
	wins := [2]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		wins[Pick(rng, tickets)]++
	}
	ratio := float64(wins[0]) / float64(wins[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("win ratio = %.2f, want ~3.0", ratio)
	}
}

func TestPickZeroTicketsNotStarved(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tickets := []float64{0, 10}
	won := false
	for i := 0; i < 10000; i++ {
		if Pick(rng, tickets) == 0 {
			won = true
			break
		}
	}
	if !won {
		t.Fatal("zero-ticket worker starved; should hold one courtesy ticket")
	}
}

func TestPickAlwaysValidIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	check := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 1
			}
		}
		got := Pick(rng, raw)
		return got >= 0 && got < len(raw)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTicketsFromQueue(t *testing.T) {
	if TicketsFromQueue(0) != 1 {
		t.Fatal("idle worker should have 1 ticket")
	}
	if TicketsFromQueue(9) != 0.1 {
		t.Fatalf("q=9 tickets = %v", TicketsFromQueue(9))
	}
	if TicketsFromQueue(-5) != 1 {
		t.Fatal("negative queue should clamp to idle")
	}
	// Monotone decreasing.
	prev := math.Inf(1)
	for q := 0.0; q < 100; q++ {
		tk := TicketsFromQueue(q)
		if tk >= prev {
			t.Fatalf("tickets not strictly decreasing at q=%v", q)
		}
		prev = tk
	}
}

func TestEstimatorRawMode(t *testing.T) {
	e := &Estimator{}
	t0 := time.Unix(0, 0)
	e.Report(10, t0)
	if got := e.Estimate(t0.Add(time.Minute), false); got != 10 {
		t.Fatalf("raw estimate = %v, want 10 (stale report)", got)
	}
}

func TestEstimatorExtrapolatesRate(t *testing.T) {
	e := &Estimator{}
	t0 := time.Unix(0, 0)
	e.Report(0, t0)
	e.Report(10, t0.Add(time.Second)) // rate = +10/s
	got := e.Estimate(t0.Add(2*time.Second), true)
	if math.Abs(got-20) > 1e-9 {
		t.Fatalf("estimate = %v, want 20", got)
	}
}

func TestEstimatorCountsLocalDispatches(t *testing.T) {
	e := &Estimator{}
	t0 := time.Unix(0, 0)
	e.Report(5, t0)
	e.Dispatched()
	e.Dispatched()
	got := e.Estimate(t0, true)
	if got != 7 {
		t.Fatalf("estimate = %v, want 7 (5 reported + 2 local)", got)
	}
	// A fresh report resets the local dispatch count.
	e.Report(6, t0.Add(time.Second))
	if got := e.Estimate(t0.Add(time.Second), true); math.Abs(got-6) > 1.01 {
		t.Fatalf("estimate after report = %v, want ~6", got)
	}
}

func TestEstimatorClampsNegative(t *testing.T) {
	e := &Estimator{}
	t0 := time.Unix(0, 0)
	e.Report(10, t0)
	e.Report(0, t0.Add(time.Second)) // rate = -10/s
	if got := e.Estimate(t0.Add(time.Minute), true); got != 0 {
		t.Fatalf("estimate = %v, want clamp to 0", got)
	}
}

func TestEstimatorNoReports(t *testing.T) {
	e := &Estimator{}
	if got := e.Estimate(time.Now(), true); got != 0 {
		t.Fatalf("estimate with no reports = %v", got)
	}
	if e.Reports() != 0 {
		t.Fatal("Reports != 0")
	}
}

func TestSchedulerPrefersShortQueues(t *testing.T) {
	// Raw mode isolates the static preference; delta mode would
	// (correctly) equalize via dispatch feedback, tested below.
	s := NewScheduler(1, false)
	now := time.Unix(0, 0)
	s.Report("busy", 50, now)
	s.Report("idle", 0, now)
	wins := map[string]int{}
	for i := 0; i < 10000; i++ {
		wins[s.Pick([]string{"busy", "idle"}, now)]++
	}
	if wins["idle"] < wins["busy"]*5 {
		t.Fatalf("idle worker not preferred: %v", wins)
	}
}

func TestSchedulerDispatchFeedback(t *testing.T) {
	// With delta estimation, repeatedly picking the same worker
	// raises its estimated queue and shifts traffic away — the
	// oscillation fix. Without it, estimates stay frozen.
	now := time.Unix(0, 0)
	s := NewScheduler(1, true)
	s.Report("w1", 0, now)
	s.Report("w2", 0, now)
	for i := 0; i < 100; i++ {
		s.Pick([]string{"w1", "w2"}, now)
	}
	e1 := s.Estimate("w1", now)
	e2 := s.Estimate("w2", now)
	if e1+e2 < 99 {
		t.Fatalf("local dispatches not reflected: %v + %v", e1, e2)
	}
	if math.Abs(e1-e2) > 40 {
		t.Fatalf("dispatch feedback unbalanced: %v vs %v", e1, e2)
	}

	raw := NewScheduler(1, false)
	raw.Report("w1", 0, now)
	raw.Report("w2", 0, now)
	for i := 0; i < 100; i++ {
		raw.Pick([]string{"w1", "w2"}, now)
	}
	if raw.Estimate("w1", now) != 0 {
		t.Fatal("raw mode should ignore local dispatches")
	}
}

func TestSchedulerForget(t *testing.T) {
	s := NewScheduler(1, true)
	now := time.Unix(0, 0)
	s.Report("w1", 10, now)
	s.Forget("w1")
	if got := s.Estimate("w1", now); got != 0 {
		t.Fatalf("estimate after Forget = %v", got)
	}
}

func TestSchedulerPickEmpty(t *testing.T) {
	s := NewScheduler(1, true)
	if got := s.Pick(nil, time.Now()); got != "" {
		t.Fatalf("Pick(no candidates) = %q", got)
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func() []string {
		s := NewScheduler(99, true)
		now := time.Unix(0, 0)
		s.Report("a", 1, now)
		s.Report("b", 2, now)
		s.Report("c", 3, now)
		var picks []string
		for i := 0; i < 50; i++ {
			picks = append(picks, s.Pick([]string{"a", "b", "c"}, now))
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at pick %d", i)
		}
	}
}
