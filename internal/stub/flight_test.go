package stub

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupCoalesces(t *testing.T) {
	var g FlightGroup[int]
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	var shared atomic.Int64
	leaderDone := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, wasShared := g.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			calls.Add(1)
			return 42, nil
		})
		if err != nil || wasShared {
			t.Errorf("leader: v=%d err=%v shared=%v", v, err, wasShared)
		}
		leaderDone <- v
	}()
	<-started

	const followers = 8
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, wasShared := g.Do(context.Background(), "k", func() (int, error) {
				calls.Add(1)
				return -1, nil
			})
			if err != nil || v != 42 {
				t.Errorf("follower: v=%d err=%v", v, err)
			}
			if wasShared {
				shared.Add(1)
			}
		}()
	}
	// Give followers a moment to join the flight, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	if shared.Load() != followers {
		t.Fatalf("shared = %d, want %d", shared.Load(), followers)
	}
	if <-leaderDone != 42 {
		t.Fatal("leader result lost")
	}
}

func TestFlightGroupDistinctKeysRunIndependently(t *testing.T) {
	var g FlightGroup[string]
	v1, err1, s1 := g.Do(context.Background(), "a", func() (string, error) { return "A", nil })
	v2, err2, s2 := g.Do(context.Background(), "b", func() (string, error) { return "B", nil })
	if v1 != "A" || v2 != "B" || err1 != nil || err2 != nil || s1 || s2 {
		t.Fatalf("got (%q,%v,%v) and (%q,%v,%v)", v1, err1, s1, v2, err2, s2)
	}
}

func TestFlightGroupLeaderErrorShared(t *testing.T) {
	var g FlightGroup[int]
	boom := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})
	go g.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 0, boom
	})
	<-started
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(context.Background(), "k", func() (int, error) { return 1, nil })
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("follower err = %v, want leader's error", err)
	}
	// The key is free again after the flight lands.
	v, err, shared := g.Do(context.Background(), "k", func() (int, error) { return 7, nil })
	if v != 7 || err != nil || shared {
		t.Fatalf("post-flight Do = (%d, %v, %v)", v, err, shared)
	}
}

func TestFlightGroupFollowerContextCancel(t *testing.T) {
	var g FlightGroup[int]
	release := make(chan struct{})
	started := make(chan struct{})
	go g.Do(context.Background(), "k", func() (int, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err, shared := g.Do(ctx, "k", func() (int, error) { return 2, nil })
	close(release)
	if !errors.Is(err, context.DeadlineExceeded) || !shared {
		t.Fatalf("follower = (%v, shared=%v), want deadline exceeded", err, shared)
	}
}
