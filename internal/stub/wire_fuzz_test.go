package stub

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/san"
	"repro/internal/supervisor"
	"repro/internal/tacc"
	"repro/internal/vcache"
)

// wireSamples are representative protocol messages — the values the
// existing stub/manager tests pass over the in-process SAN — used
// both as the round-trip unit corpus and as fuzz seeds.
func wireSamples() map[string]any {
	w0 := WorkerInfo{
		ID: "w0", Class: "echo",
		Addr: san.Addr{Node: "n1", Proc: "w0"}, Node: "n1",
		QLen: 2.5,
	}
	ovf := WorkerInfo{
		ID: "sjpg.3", Class: "distill-sjpg",
		Addr: san.Addr{Node: "ovf0", Proc: "sjpg.3"}, Node: "ovf0",
		QLen: 17.25, Overflow: true,
	}
	return map[string]any{
		MsgBeacon: Beacon{
			Manager: san.Addr{Node: "mgr", Proc: "manager"},
			Seq:     42,
			Workers: []WorkerInfo{w0, ovf},
		},
		MsgRegister:   RegisterMsg{Info: w0},
		MsgDeregister: DeregisterMsg{ID: "w0"},
		MsgLoadReport: LoadReport{
			ID: "w0", Class: "echo", QLen: 10, CostMs: 3.75,
			Done: 100, Errors: 2, Crashes: 1, Info: w0,
		},
		MsgTask: TaskMsg{Task: tacc.Task{
			Key:   "http://origin1.example/obj42.sjpg",
			Input: tacc.Blob{MIME: "image/sjpg", Data: []byte("payload"), Meta: map[string]string{"orig": "1024"}},
			Inputs: []tacc.Blob{
				{MIME: "text/html", Data: []byte("<p>hi</p>")},
				{MIME: "image/sgif", Data: []byte{0, 1, 2}},
			},
			Profile: map[string]string{"quality": "low", "width": "320"},
			Params:  map[string]string{"minsize": "0"},
		},
			// Deadline rides the wire so remote workers can drop
			// expired work (unix nanos); Trace is the distributed
			// tracing id (sampled bit set).
			Deadline: 1700000000123456789,
			Trace:    0x1d2c3b4a59687f01 | 1,
		},
		MsgResult: ResultMsg{
			Blob: tacc.Blob{MIME: "image/sjpg", Data: []byte("distilled")},
			Err:  "",
		},
		MsgFEHello: FEHeartbeat{
			Name: "fe0", Addr: san.Addr{Node: "fe", Proc: "fe0"}, Node: "fe",
			HTTPAddr: "127.0.0.1:39201", Draining: true,
		},
		MsgSpawnReq: SpawnReq{Class: "echo"},
		MsgMonReport: StatusReport{
			Component: "w0", Kind: "worker", Node: "n1",
			Metrics: map[string]float64{"qlen": 3, "costMs": 1.5, "done": 7},
		},
		MsgSpanDigest: SpanDigest{Spans: []obs.Span{
			{
				Trace: 0x1d2c3b4a59687f01 | 1, Proc: "b-", Comp: "w0",
				Hop: "worker.service", Note: "distill-sjpg",
				Start: 1700000000123456789, Dur: 1250000,
			},
			{
				Trace: 0x1d2c3b4a59687f01 | 1, Proc: "b-", Comp: "w0",
				Hop: "worker.queue", Start: 1700000000123000000, Dur: 456789,
			},
			{
				Trace: 42, Proc: "a-", Comp: "fe0",
				Hop: "fe.admit", Note: "shed", Start: 1700000001000000000, Dur: 0,
			},
		}},
		vcache.MsgGet: vcache.GetReq{Key: "http://origin1.example/obj42.sjpg#distilled", Stale: true},
		vcache.MsgHello: vcache.HelloMsg{
			Name: "cache0", Addr: san.Addr{Node: "node0", Proc: "cache0"}, Node: "node0",
		},
		vcache.MsgGot: vcache.GetResp{Found: true, Data: []byte("cached bytes"), MIME: "image/sjpg", Stale: true},
		vcache.MsgPut: vcache.PutReq{
			Key: "http://origin1.example/obj42.sjpg", Data: []byte("original"),
			MIME: "image/sjpg", TTL: 90 * time.Second,
		},
		vcache.MsgInject: vcache.PutReq{
			Key: "http://origin1.example/obj42.sjpg#distilled", Data: []byte{9, 8, 7},
			MIME: "image/sjpg", TTL: 0,
		},
		vcache.MsgStatsR: vcache.Stats{
			Hits: 101, Misses: 17, Puts: 40, Injects: 12,
			Evictions: 3, Expired: 1, Used: 1 << 20, Objects: 49,
		},
		supervisor.MsgHello: supervisor.HelloMsg{
			Name: "sup", Addr: san.Addr{Node: "b-node0", Proc: "sup"},
			Node: "b-node0", Prefix: "b-",
		},
		supervisor.MsgCmd: supervisor.Command{
			ID: 9, Origin: "a-node1/manager", Op: supervisor.OpRestartCache, Target: "cache0",
		},
		supervisor.MsgAck: supervisor.Ack{ID: 9, OK: false, Err: "cache0 is not hosted here"},
	}
}

// TestWireRoundTrip: encode -> decode restores every sample exactly.
func TestWireRoundTrip(t *testing.T) {
	for kind, body := range wireSamples() {
		data, err := EncodeBody(kind, body)
		if err != nil {
			t.Fatalf("%s: encode: %v", kind, err)
		}
		got, err := DecodeBody(kind, data)
		if err != nil {
			t.Fatalf("%s: decode: %v", kind, err)
		}
		if !reflect.DeepEqual(got, body) {
			t.Fatalf("%s: round trip mismatch:\n got %#v\nwant %#v", kind, got, body)
		}
	}
}

// TestWireSamplesCoverEveryKind keeps the corpus honest: every kind
// the codec registers has a seed sample.
func TestWireSamplesCoverEveryKind(t *testing.T) {
	samples := wireSamples()
	for _, kind := range WireKinds() {
		if _, ok := samples[kind]; !ok {
			t.Errorf("no wire sample for kind %q", kind)
		}
	}
	if len(samples) != len(WireKinds()) {
		t.Errorf("%d samples for %d kinds", len(samples), len(WireKinds()))
	}
}

// TestEncodeBodyAppend: the append-style entry point preserves the
// destination prefix, produces bytes identical to EncodeBody, and
// reuses the destination's capacity instead of allocating.
func TestEncodeBodyAppend(t *testing.T) {
	for kind, body := range wireSamples() {
		want, err := EncodeBody(kind, body)
		if err != nil {
			t.Fatalf("%s: encode: %v", kind, err)
		}
		prefix := []byte("frame-header:")
		buf := make([]byte, len(prefix), len(prefix)+len(want)+64)
		copy(buf, prefix)
		got, err := EncodeBodyAppend(buf, kind, body)
		if err != nil {
			t.Fatalf("%s: append encode: %v", kind, err)
		}
		if !bytes.HasPrefix(got, prefix) {
			t.Fatalf("%s: append clobbered the destination prefix", kind)
		}
		if !bytes.Equal(got[len(prefix):], want) {
			t.Fatalf("%s: append encoding differs from EncodeBody", kind)
		}
		if &got[0] != &buf[0] {
			t.Fatalf("%s: append reallocated despite sufficient capacity", kind)
		}
	}
}

// TestWireDeterministic: equal values encode to equal bytes (maps are
// emitted in sorted order).
func TestWireDeterministic(t *testing.T) {
	for kind, body := range wireSamples() {
		a, _ := EncodeBody(kind, body)
		b, _ := EncodeBody(kind, body)
		if string(a) != string(b) {
			t.Fatalf("%s: nondeterministic encoding", kind)
		}
	}
}

// TestWireRejectsWrongType and truncation: the codec errors cleanly.
func TestWireRejects(t *testing.T) {
	if _, err := EncodeBody(MsgBeacon, DeregisterMsg{}); err == nil {
		t.Fatal("encode accepted a mismatched body type")
	}
	data, err := EncodeBody(MsgBeacon, wireSamples()[MsgBeacon])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeBody(MsgBeacon, data[:cut]); err == nil {
			t.Fatalf("decode accepted truncation at %d/%d bytes", cut, len(data))
		}
	}
	if _, err := DecodeBody(MsgBeacon, append(append([]byte{}, data...), 0)); err == nil {
		t.Fatal("decode accepted trailing garbage")
	}
	if _, err := DecodeBody(MsgShutdown, []byte{1}); err == nil {
		t.Fatal("decode accepted a body for a body-less kind")
	}
}

// TestFEHeartbeatOldFormatDecodes pins wire compatibility for the
// HTTPAddr/Draining extension: a frame laid out the pre-extension way
// (Name, Addr, Node only) must still decode, with the new fields
// zero-valued — a mixed-version cluster's old front ends keep
// heartbeating through new managers and edges.
func TestFEHeartbeatOldFormatDecodes(t *testing.T) {
	full := wireSamples()[MsgFEHello].(FEHeartbeat)
	old := struct {
		name, node string
		addr       san.Addr
	}{full.Name, full.Node, full.Addr}

	// Hand-build the old frame with the writer primitives the original
	// encoder used: str(Name), addr(Addr), str(Node), nothing after.
	w := &wireWriter{}
	w.str(old.name)
	w.addr(old.addr)
	w.str(old.node)

	got, err := DecodeBody(MsgFEHello, w.buf)
	if err != nil {
		t.Fatalf("old-format frame rejected: %v", err)
	}
	want := FEHeartbeat{Name: old.name, Addr: old.addr, Node: old.node}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("old-format decode:\n got %#v\nwant %#v", got, want)
	}
}

// FuzzWireRoundTrip fuzzes DecodeBody across every message kind
// (including the cache protocol): arbitrary bytes must never panic or
// over-allocate, and any input that decodes successfully must
// re-encode and re-decode to the same value (the codec is canonical on
// its own output). The re-encode runs through EncodeBodyAppend into a
// dirty recycled buffer, so the fuzzer also hammers the pooled
// append path the SAN's wire mode uses.
func FuzzWireRoundTrip(f *testing.F) {
	kinds := WireKinds()
	for i, kind := range kinds {
		data, err := EncodeBody(kind, wireSamples()[kind])
		if err != nil {
			f.Fatalf("%s: seed encode: %v", kind, err)
		}
		f.Add(i, data)
	}
	f.Add(0, []byte{})
	f.Add(1, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, kindIdx int, data []byte) {
		if kindIdx < 0 {
			kindIdx = -kindIdx
		}
		kind := kinds[kindIdx%len(kinds)]
		body, err := DecodeBody(kind, data)
		if err != nil {
			return // malformed input rejected cleanly: fine
		}
		// Re-encode into a recycled buffer holding stale garbage, as
		// the SAN's pool hands out.
		scratch := bytes.Repeat([]byte{0xa5}, 16)
		re, err := EncodeBodyAppend(scratch[:0], kind, body)
		if err != nil {
			t.Fatalf("%s: value %#v decoded but failed to re-encode: %v", kind, body, err)
		}
		if direct, err2 := EncodeBody(kind, body); err2 != nil || !bytes.Equal(re, direct) {
			t.Fatalf("%s: append encoding diverges from EncodeBody (err=%v)", kind, err2)
		}
		body2, err := DecodeBody(kind, re)
		if err != nil {
			t.Fatalf("%s: re-encoded bytes failed to decode: %v", kind, err)
		}
		if !reflect.DeepEqual(body, body2) {
			t.Fatalf("%s: canonical round trip mismatch:\n got %#v\nwant %#v", kind, body2, body)
		}
		// View-mode equivalence: the zero-copy decoder must produce the
		// same value as the owning decoder for every input the owning
		// decoder accepts — aliasing is a lifetime difference, never a
		// value difference.
		vbuf := append([]byte{}, re...)
		view, aliased, err := DecodeBodyView(kind, vbuf)
		if err != nil {
			t.Fatalf("%s: owning decode succeeded but view decode failed: %v", kind, err)
		}
		if !reflect.DeepEqual(view, body2) {
			t.Fatalf("%s: view decode diverges from DecodeBody:\n got %#v\nwant %#v", kind, view, body2)
		}
		if !aliased {
			// aliased=false promises the result shares no memory with
			// the input; dirtying the buffer must not touch it.
			for i := range vbuf {
				vbuf[i] ^= 0xFF
			}
			if !reflect.DeepEqual(view, body2) {
				t.Fatalf("%s: aliased=false but the view changed when its buffer was dirtied", kind)
			}
		}
	})
}

// TestDecodeBodyViewAliasing pins the aliasing contract on a kind with
// a bulk payload: the view's Data field aliases the wire buffer (a
// mutation shows through), and CloneBytes taken before the mutation is
// the copy-on-retain escape hatch that stays stable.
func TestDecodeBodyViewAliasing(t *testing.T) {
	want := wireSamples()[MsgResult].(ResultMsg)
	wire, err := EncodeBody(MsgResult, want)
	if err != nil {
		t.Fatal(err)
	}
	body, aliased, err := DecodeBodyView(MsgResult, wire)
	if err != nil {
		t.Fatal(err)
	}
	if !aliased {
		t.Fatal("MsgResult carries blob bytes but view decode reported aliased=false")
	}
	got := body.(ResultMsg)
	if !bytes.Equal(got.Blob.Data, want.Blob.Data) {
		t.Fatalf("view data mismatch: %q", got.Blob.Data)
	}

	// A consumer that must outlive the buffer clones before the
	// producer recycles it.
	kept := CloneBytes(got.Blob.Data)

	// Simulate buffer recycling: scribble over the wire bytes. The
	// live view changes with them (it aliases); the clone does not.
	for i := range wire {
		wire[i] = 0xEE
	}
	if bytes.Equal(got.Blob.Data, want.Blob.Data) {
		t.Fatal("view did not alias the wire buffer (copied despite view mode)")
	}
	if !bytes.Equal(kept, want.Blob.Data) {
		t.Fatalf("copy-on-retain clone changed with the buffer: %q", kept)
	}
}
