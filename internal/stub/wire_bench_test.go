package stub

import (
	"testing"
)

// benchBody is a representative hot-path message: the periodic load
// report every worker sends every ReportInterval.
func benchBody() (string, any) {
	return MsgLoadReport, wireSamples()[MsgLoadReport]
}

// BenchmarkWireEncodeAppend measures the steady-state encode path the
// SAN's wire mode runs: appending into a recycled buffer. This must
// stay at 0 allocs/op — the pooled-codec acceptance criterion.
func BenchmarkWireEncodeAppend(b *testing.B) {
	kind, body := benchBody()
	buf, err := EncodeBodyAppend(nil, kind, body)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = EncodeBodyAppend(buf[:0], kind, body)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncode is the cold path: every encode allocates its own
// buffer.
func BenchmarkWireEncode(b *testing.B) {
	kind, body := benchBody()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBody(kind, body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecode measures the per-delivery decode cost (each
// recipient materializes its own value from the shared bytes).
func BenchmarkWireDecode(b *testing.B) {
	kind, body := benchBody()
	data, err := EncodeBody(kind, body)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBody(kind, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireBeaconEncodeAppend tracks the biggest recurring encode:
// a manager beacon carrying a full worker table.
func BenchmarkWireBeaconEncodeAppend(b *testing.B) {
	beacon := wireSamples()[MsgBeacon].(Beacon)
	for len(beacon.Workers) < 32 {
		beacon.Workers = append(beacon.Workers, beacon.Workers...)
	}
	// Pre-box so the measurement is the codec, not callsite interface
	// conversion (the SAN receives bodies already boxed in `any`).
	var body any = beacon
	buf, err := EncodeBodyAppend(nil, MsgBeacon, body)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = EncodeBodyAppend(buf[:0], MsgBeacon, body)
		if err != nil {
			b.Fatal(err)
		}
	}
}
