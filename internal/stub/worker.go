package stub

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/san"
	"repro/internal/tacc"
)

// WorkerConfig tunes a worker stub.
type WorkerConfig struct {
	// QueueCap bounds the request queue; beyond it the stub rejects
	// tasks so front ends retry elsewhere. Default 64.
	QueueCap int
	// ReportInterval is the load-report period. Default 500 ms.
	ReportInterval time.Duration
	// SurvivePanic converts worker panics into task errors instead
	// of killing the stub process. The default (false) is the
	// paper's model: distillers crash freely on pathological input
	// and the SNS layer restarts them.
	SurvivePanic bool
	// Overflow marks this stub as running on an overflow-pool node.
	Overflow bool
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.ReportInterval <= 0 {
		c.ReportInterval = DefaultReportInterval
	}
	return c
}

// WorkerStub wraps a tacc.Worker into an SNS citizen: it queues tasks,
// reports load, registers with whatever manager is beaconing, survives
// (or deliberately propagates) worker crashes, and honors hot-upgrade
// disable/enable. It implements cluster.Process.
//
// The worker code itself "need not be thread-safe" (§2.2.5): the stub
// executes tasks strictly serially.
type WorkerStub struct {
	name   string
	node   string
	class  string
	worker tacc.Worker
	net    *san.Network
	cfg    WorkerConfig

	ep      *san.Endpoint
	queue   chan queuedTask
	qlen    atomic.Int64
	done    atomic.Uint64
	errs    atomic.Uint64
	crashes atomic.Uint64
	expired atomic.Uint64 // tasks dropped unrun: deadline passed in queue
	costMs  atomic.Uint64 // EWMA of task cost, microseconds, stored *1

	// Fault injection (chaos testing): an artificial per-task delay
	// and a hang switch, both honored by the process loop. A hung
	// worker keeps queueing tasks and reporting load (its queue
	// visibly grows) but completes nothing — the gray-failure mode
	// timeouts must catch, distinct from a crash.
	slowdown atomic.Int64 // nanoseconds added to every task
	hung     atomic.Bool

	mu        sync.Mutex
	manager   san.Addr
	lastEpoch uint64
	disabled  bool
}

// InjectSlowdown adds d to every subsequent task execution (zero
// removes the fault). Chaos harness knob.
func (s *WorkerStub) InjectSlowdown(d time.Duration) { s.slowdown.Store(int64(d)) }

// InjectHang stops (true) or resumes (false) task completion without
// killing the process. Chaos harness knob.
func (s *WorkerStub) InjectHang(h bool) { s.hung.Store(h) }

// NewWorkerStub creates a stub and eagerly registers its SAN endpoint.
func NewWorkerStub(name, node string, w tacc.Worker, net *san.Network, cfg WorkerConfig) *WorkerStub {
	cfg = cfg.withDefaults()
	s := &WorkerStub{
		name:   name,
		node:   node,
		class:  w.Class(),
		worker: w,
		net:    net,
		cfg:    cfg,
		queue:  make(chan queuedTask, cfg.QueueCap),
	}
	s.ep = net.Endpoint(s.addr(), cfg.QueueCap*2+64)
	return s
}

func (s *WorkerStub) addr() san.Addr { return san.Addr{Node: s.node, Proc: s.name} }

// Addr returns the stub's SAN address.
func (s *WorkerStub) Addr() san.Addr { return s.addr() }

// ID implements cluster.Process.
func (s *WorkerStub) ID() string { return s.name }

// Info describes this worker for registration.
func (s *WorkerStub) Info() WorkerInfo {
	return WorkerInfo{
		ID:       s.name,
		Class:    s.class,
		Addr:     s.addr(),
		Node:     s.node,
		Overflow: s.cfg.Overflow,
	}
}

// QueueLen returns the current queue length (pending + in service).
func (s *WorkerStub) QueueLen() int { return int(s.qlen.Load()) }

// ExpiredDrops returns how many queued tasks this stub dropped unrun
// because their deadline had already passed.
func (s *WorkerStub) ExpiredDrops() uint64 { return s.expired.Load() }

// TasksDone returns how many tasks this stub completed successfully —
// the per-worker share counter the gray-failure scenarios compare to
// show the lottery shifting load away from an impaired worker.
func (s *WorkerStub) TasksDone() uint64 { return s.done.Load() }

// errWorkerCrash marks a stub exit caused by a worker panic.
type errWorkerCrash struct{ cause any }

func (e errWorkerCrash) Error() string {
	return fmt.Sprintf("stub: worker crashed: %v", e.cause)
}

// Run implements cluster.Process.
func (s *WorkerStub) Run(ctx context.Context) error {
	if s.ep == nil || !s.net.Lookup(s.addr()) {
		s.ep = s.net.Endpoint(s.addr(), s.cfg.QueueCap*2+64)
	}
	ep := s.ep
	defer ep.Close()
	ep.Join(GroupControl)
	// Replace-by-name keeps restarts idempotent: a respawned stub with
	// the same name takes over its metric slot.
	s.net.Registry().SetCollector("worker."+s.name, func(emit func(string, float64)) {
		emit("qlen", float64(s.qlen.Load()))
		emit("done", float64(s.done.Load()))
		emit("errors", float64(s.errs.Load()))
		emit("crashes", float64(s.crashes.Load()))
		emit("expired", float64(s.expired.Load()))
		emit("cost_ms", float64(s.costMs.Load())/1000)
	})

	crashed := make(chan any, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	go func() {
		defer wg.Done()
		s.processLoop(pctx, crashed)
	}()

	ticker := time.NewTicker(s.cfg.ReportInterval)
	defer ticker.Stop()

	for {
		select {
		case <-ctx.Done():
			// Clean shutdown: tell the manager we are leaving so it
			// does not spawn a replacement. A crash (below) sends
			// nothing — a dead process cannot deregister, and the
			// manager must discover the loss by timeout (§3.1.3).
			s.deregister()
			pcancel()
			wg.Wait()
			return nil
		case cause := <-crashed:
			pcancel()
			wg.Wait()
			return errWorkerCrash{cause: cause}
		case <-ticker.C:
			s.reportLoad(ep)
		case msg, ok := <-ep.Inbox():
			if !ok {
				pcancel()
				wg.Wait()
				return fmt.Errorf("stub: %s endpoint closed", s.name)
			}
			s.handle(ctx, ep, msg)
		}
	}
}

func (s *WorkerStub) handle(ctx context.Context, ep *san.Endpoint, msg san.Message) {
	switch msg.Kind {
	case MsgBeacon:
		b, ok := msg.Body.(Beacon)
		if !ok {
			return
		}
		s.mu.Lock()
		if b.Epoch < s.lastEpoch {
			// Stale-epoch straggler from a deposed primary: following
			// it would re-anchor the stub on a manager that no longer
			// owns anything.
			s.mu.Unlock()
			return
		}
		s.lastEpoch = b.Epoch
		known := s.manager == b.Manager
		disabled := s.disabled
		s.manager = b.Manager
		s.mu.Unlock()
		if !known && !disabled {
			// New manager (first sight or restarted): re-register.
			// This is the §3.1.3 recovery path — "if the manager
			// crashes and restarts, the distillers detect beacons
			// from the new manager and re-register themselves".
			_ = ep.Send(b.Manager, MsgRegister, RegisterMsg{Info: s.Info()}, 64)
		}
	case MsgTask:
		s.mu.Lock()
		disabled := s.disabled
		s.mu.Unlock()
		if disabled {
			_ = ep.Respond(msg, MsgResult, ResultMsg{Err: "worker disabled"}, 16)
			return
		}
		select {
		case s.queue <- queuedTask{msg: msg, at: time.Now()}:
			s.qlen.Add(1)
		default:
			_ = ep.Respond(msg, MsgResult, ResultMsg{Err: "queue full"}, 16)
		}
	case MsgShutdown:
		// Graceful reap: de-register, then crash out cleanly; the
		// cluster reaps the process.
		s.deregister()
		s.mu.Lock()
		s.disabled = true
		s.mu.Unlock()
	case MsgDisable:
		s.mu.Lock()
		s.disabled = true
		s.mu.Unlock()
		s.deregister()
	case MsgEnable:
		s.mu.Lock()
		s.disabled = false
		mgr := s.manager
		s.mu.Unlock()
		if !mgr.IsZero() {
			_ = ep.Send(mgr, MsgRegister, RegisterMsg{Info: s.Info()}, 64)
		}
	}
}

// queuedTask pairs a task with its enqueue instant so the process
// loop can decompose latency into queue-wait vs service time — the
// split the trace plane and the slow-request log report per hop.
type queuedTask struct {
	msg san.Message
	at  time.Time
}

// processLoop serially executes queued tasks.
func (s *WorkerStub) processLoop(ctx context.Context, crashed chan<- any) {
	tracer := s.net.Tracer()
	for {
		select {
		case <-ctx.Done():
			return
		case qt := <-s.queue:
			msg := qt.msg
			for s.hung.Load() {
				select {
				case <-ctx.Done():
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
			if d := time.Duration(s.slowdown.Load()); d > 0 {
				select {
				case <-ctx.Done():
					return
				case <-time.After(d):
				}
			}
			trace := taskTrace(msg)
			if trace.Sampled() {
				tracer.Record(obs.Span{
					Trace: trace, Comp: s.name, Hop: "worker.queue",
					Start: qt.at.UnixNano(), Dur: int64(time.Since(qt.at)),
				})
			}
			if dl := taskDeadline(msg); !dl.IsZero() && time.Now().After(dl) {
				// The request expired while queued (or while this stub
				// hung): nobody awaits the answer, so don't burn capacity
				// computing it — the deadline-propagation half of graceful
				// degradation under overload.
				s.expired.Add(1)
				s.qlen.Add(-1)
				// Expired drops record unconditionally: a shed request is
				// exactly the one an operator wants a trace of.
				tracer.ForceRecord(obs.Span{
					Trace: trace, Comp: s.name, Hop: "worker.expired",
					Start: qt.at.UnixNano(), Dur: int64(time.Since(qt.at)),
				})
				_ = s.ep.Respond(msg, MsgResult, ResultMsg{Err: ErrTaskExpired}, 16)
				msg.Release()
				continue
			}
			start := time.Now()
			blob, err, panicked := s.runTask(ctx, msg)
			s.qlen.Add(-1)
			cost := time.Since(start)
			s.observeCost(cost)
			if trace.Sampled() {
				tracer.Record(obs.Span{
					Trace: trace, Comp: s.name, Hop: "worker.service", Note: s.class,
					Start: start.UnixNano(), Dur: int64(cost),
				})
			}
			if panicked != nil {
				s.crashes.Add(1)
				_ = s.ep.Respond(msg, MsgResult, ResultMsg{Err: fmt.Sprintf("worker panic: %v", panicked)}, 16)
				msg.Release()
				if !s.cfg.SurvivePanic {
					select {
					case crashed <- panicked:
					default:
					}
					return
				}
				continue
			}
			if err != nil {
				s.errs.Add(1)
				_ = s.ep.Respond(msg, MsgResult, ResultMsg{Err: err.Error()}, 16)
				msg.Release()
				continue
			}
			s.done.Add(1)
			_ = s.ep.Respond(msg, MsgResult, ResultMsg{Blob: blob}, blob.Size()+32)
			// Release after Respond: the result blob may alias the
			// task's input (identity transforms), and Respond has
			// finished encoding it by the time it returns.
			msg.Release()
		}
	}
}

// ErrTaskExpired is the ResultMsg.Err a worker answers with when it
// drops a task whose deadline passed before execution. Dispatch treats
// it as terminal — retrying work that is already too late only amplifies
// the overload that delayed it.
const ErrTaskExpired = "expired"

// taskDeadline extracts the effective deadline of a queued task: the
// SAN delivery deadline (in-process hops) or the one embedded in the
// TaskMsg body (which is how it crosses process boundaries), whichever
// is present.
func taskDeadline(msg san.Message) time.Time {
	if !msg.Deadline.IsZero() {
		return msg.Deadline
	}
	if tm, ok := msg.Body.(TaskMsg); ok && tm.Deadline != 0 {
		return time.Unix(0, tm.Deadline)
	}
	return time.Time{}
}

// taskTrace extracts the trace id of a queued task, mirroring
// taskDeadline: the SAN delivery metadata (in-process hops) or the
// copy embedded in the TaskMsg body (cross-process belt and braces).
func taskTrace(msg san.Message) obs.TraceID {
	if msg.Trace.Valid() {
		return msg.Trace
	}
	if tm, ok := msg.Body.(TaskMsg); ok {
		return obs.TraceID(tm.Trace)
	}
	return 0
}

// runTask executes the worker with panic isolation.
func (s *WorkerStub) runTask(ctx context.Context, msg san.Message) (blob tacc.Blob, err error, panicked any) {
	tm, ok := msg.Body.(TaskMsg)
	if !ok {
		return tacc.Blob{}, fmt.Errorf("stub: malformed task"), nil
	}
	defer func() {
		if r := recover(); r != nil {
			panicked = r
		}
	}()
	blob, err = s.worker.Process(ctx, &tm.Task)
	return blob, err, nil
}

func (s *WorkerStub) observeCost(d time.Duration) {
	us := uint64(d.Microseconds())
	old := s.costMs.Load()
	if old == 0 {
		s.costMs.Store(us)
		return
	}
	s.costMs.Store((old*7 + us*3) / 10) // EWMA alpha 0.3
}

// reportLoad sends the periodic load report to the manager and a
// status report to the monitor group.
func (s *WorkerStub) reportLoad(ep *san.Endpoint) {
	s.mu.Lock()
	mgr := s.manager
	disabled := s.disabled
	s.mu.Unlock()
	report := LoadReport{
		ID:      s.name,
		Class:   s.class,
		QLen:    int(s.qlen.Load()),
		CostMs:  float64(s.costMs.Load()) / 1000,
		Done:    s.done.Load(),
		Errors:  s.errs.Load(),
		Crashes: s.crashes.Load(),
		Info:    s.Info(),
	}
	if !mgr.IsZero() && !disabled {
		_ = ep.Send(mgr, MsgLoadReport, report, 64)
	}
	ep.Multicast(GroupReports, MsgMonReport, StatusReport{
		Component: s.name,
		Kind:      "worker",
		Node:      s.node,
		Metrics: map[string]float64{
			"qlen":    float64(report.QLen),
			"costMs":  report.CostMs,
			"done":    float64(report.Done),
			"errors":  float64(report.Errors),
			"expired": float64(s.expired.Load()),
		},
	}, 96)
}

func (s *WorkerStub) deregister() {
	s.mu.Lock()
	mgr := s.manager
	s.mu.Unlock()
	if !mgr.IsZero() {
		_ = s.ep.Send(mgr, MsgDeregister, DeregisterMsg{ID: s.name}, 32)
	}
}
