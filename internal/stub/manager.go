package stub

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/lottery"
	"repro/internal/obs"
	"repro/internal/san"
	"repro/internal/softstate"
	"repro/internal/tacc"
)

// ManagerStubConfig tunes a front end's manager stub.
type ManagerStubConfig struct {
	// WorkerTTL expires cached worker entries that stop appearing
	// in beacons. Generous by design: the cache must carry the
	// front end through a manager crash (§3.1.8 "stale load
	// balancing data"). Default 10x the beacon interval.
	WorkerTTL time.Duration
	// CallTimeout bounds one dispatch attempt to one worker.
	CallTimeout time.Duration
	// Retries is how many distinct workers to try before failing.
	Retries int
	// RetryBackoff is the base delay inserted before each retry
	// attempt. The actual delay grows exponentially per attempt with
	// uniform jitter (base*2^(attempt-1) .. 2x that), so a fleet of
	// front ends failing over from the same dead worker does not
	// re-converge on the next one in lockstep — the retry-storm
	// amplifier under overload. Default 2 ms; negative disables.
	RetryBackoff time.Duration
	// UseDelta enables the §4.5 queue-delta estimator.
	UseDelta bool
	// ManagerTimeout is the process-peer watchdog period: silence
	// longer than this triggers OnManagerSilence. Zero disables.
	ManagerTimeout time.Duration
	// OnManagerSilence is the process-peer action, typically
	// "restart the manager" wired up by the platform layer.
	OnManagerSilence func()
	// Seed feeds the lottery scheduler.
	Seed int64
}

func (c ManagerStubConfig) withDefaults() ManagerStubConfig {
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 10 * DefaultBeaconInterval
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = DefaultCallTimeout
	}
	if c.Retries <= 0 {
		c.Retries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	return c
}

// ManagerStub is the front-end half of the SNS narrow interface: it
// consumes manager beacons, caches worker locations and load hints,
// selects workers by lottery scheduling, dispatches tasks with
// timeout-and-retry, and watches the manager as a process peer.
type ManagerStub struct {
	ep  *san.Endpoint
	cfg ManagerStubConfig

	workers *softstate.Table[WorkerInfo]
	sched   *lottery.Scheduler
	wd      *softstate.Watchdog

	mu        sync.Mutex
	manager   san.Addr
	lastSeq   uint64
	lastEpoch uint64
	rng       *rand.Rand // jitter source for retry backoff (under mu)

	// Stats.
	dispatches  uint64
	retries     uint64
	failovers   uint64
	exhausted   uint64
	spawnAsks   uint64
	beaconsSeen uint64
	staleDrops  uint64
}

// ManagerStubStats is a snapshot of dispatch counters.
type ManagerStubStats struct {
	Dispatches  uint64
	Retries     uint64
	Failovers   uint64
	Exhausted   uint64
	SpawnAsks   uint64
	BeaconsSeen uint64
	// Epoch is the newest election epoch seen in a beacon; StaleDrops
	// counts beacons discarded for carrying an older one (a deposed
	// primary still talking).
	Epoch      uint64
	StaleDrops uint64
}

// NewManagerStub builds a stub over the front end's endpoint. The
// owner's receive loop must route every inbound message through
// HandleMessage (which also routes replies).
func NewManagerStub(ep *san.Endpoint, cfg ManagerStubConfig) *ManagerStub {
	cfg = cfg.withDefaults()
	ms := &ManagerStub{
		ep:      ep,
		cfg:     cfg,
		workers: softstate.NewTable[WorkerInfo](cfg.WorkerTTL, nil),
		sched:   lottery.NewScheduler(cfg.Seed, cfg.UseDelta),
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x6261636b6f6666)), // "backoff"
	}
	if cfg.ManagerTimeout > 0 && cfg.OnManagerSilence != nil {
		ms.wd = &softstate.Watchdog{
			Timeout:   cfg.ManagerTimeout,
			OnSilence: func(int) { cfg.OnManagerSilence() },
		}
		ms.wd.Start()
	}
	return ms
}

// Stop releases the watchdog.
func (ms *ManagerStub) Stop() {
	if ms.wd != nil {
		ms.wd.Stop()
	}
}

// HandleMessage processes one inbound SAN message if it belongs to the
// stub; it returns true when consumed. Call it for every message the
// front end receives.
func (ms *ManagerStub) HandleMessage(msg san.Message) bool {
	if ms.ep.DeliverReply(msg) {
		return true
	}
	if msg.Kind != MsgBeacon {
		return false
	}
	b, ok := msg.Body.(Beacon)
	if !ok {
		return true
	}
	ms.mu.Lock()
	if b.Epoch < ms.lastEpoch {
		// A deposed primary's straggler: the newest epoch owns this
		// stub now. Dropping it (rather than letting it flip the cached
		// manager address back and forth) is what makes failover settle
		// within one beacon interval.
		ms.staleDrops++
		ms.mu.Unlock()
		return true
	}
	ms.lastEpoch = b.Epoch
	ms.manager = b.Manager
	ms.lastSeq = b.Seq
	ms.beaconsSeen++
	ms.mu.Unlock()
	if ms.wd != nil {
		ms.wd.Feed()
	}
	now := time.Now()
	live := make(map[string]bool, len(b.Workers))
	for _, w := range b.Workers {
		live[w.ID] = true
		ms.workers.Put(w.ID, w)
		ms.sched.Report(w.ID, w.QLen, now)
	}
	// Workers the manager no longer advertises are gone (the manager
	// "reports distiller failures to the manager stubs, which update
	// their caches", §3.1.3).
	for id := range ms.workers.Snapshot() {
		if !live[id] {
			ms.workers.Delete(id)
			ms.sched.Forget(id)
		}
	}
	// Collect entries that aged out between beacons (softstate reads
	// are non-destructive; the owner reaps expiry). The scheduler
	// forgets them too, so its estimator drops stale queue state.
	for _, id := range ms.workers.Expired() {
		ms.sched.Forget(id)
	}
	return true
}

// Manager returns the last known manager address.
func (ms *ManagerStub) Manager() san.Addr {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.manager
}

// Epoch returns the newest election epoch seen in a beacon.
func (ms *ManagerStub) Epoch() uint64 {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.lastEpoch
}

// Workers returns the cached workers of a class, sorted by ID.
func (ms *ManagerStub) Workers(class string) []WorkerInfo {
	snap := ms.workers.Snapshot()
	var out []WorkerInfo
	for _, w := range snap {
		if w.Class == class {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// QueueEstimate returns the smallest estimated queue length (the §4.5
// extrapolation the lottery runs on) among cached workers of class —
// any class when class is "". This is the front end's saturation
// signal: when even the least-loaded worker's estimated queue is deep,
// new work cannot plausibly meet a tight deadline and should degrade
// or shed instead of piling on. ok is false when no workers are known;
// the caller cannot distinguish idle from unknown and must not shed on
// that.
func (ms *ManagerStub) QueueEstimate(class string) (float64, bool) {
	now := time.Now()
	best := 0.0
	known := false
	for id, w := range ms.workers.Snapshot() {
		if class != "" && w.Class != class {
			continue
		}
		est := ms.sched.Estimate(id, now)
		if !known || est < best {
			best, known = est, true
		}
	}
	return best, known
}

// Stats returns dispatch counters.
func (ms *ManagerStub) Stats() ManagerStubStats {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ManagerStubStats{
		Dispatches:  ms.dispatches,
		Retries:     ms.retries,
		Failovers:   ms.failovers,
		Exhausted:   ms.exhausted,
		SpawnAsks:   ms.spawnAsks,
		BeaconsSeen: ms.beaconsSeen,
		Epoch:       ms.lastEpoch,
		StaleDrops:  ms.staleDrops,
	}
}

// Errors returned by dispatch.
var (
	ErrNoWorkers = errors.New("stub: no workers available for class")
	ErrExhausted = errors.New("stub: all dispatch attempts failed")
	// ErrDeadline means the request's deadline passed (or cannot
	// plausibly be met) before a worker produced a result; retrying
	// would only burn capacity on an answer nobody awaits.
	ErrDeadline = errors.New("stub: request deadline exceeded")
)

// retryBackoff computes the jittered exponential delay before retry
// attempt n (n >= 1): base*2^(n-1) scaled by a uniform [1, 2) draw.
// The exponent is capped so a long retry budget cannot overflow into
// multi-second stalls. Returns 0 when backoff is disabled.
func (ms *ManagerStub) retryBackoff(attempt int) time.Duration {
	base := ms.cfg.RetryBackoff
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	d := base << shift
	ms.mu.Lock()
	jitter := 1 + ms.rng.Float64()
	ms.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// sleepBackoff waits the attempt's backoff, abandoning the wait when
// the context ends first. Returns false if the context ended.
func (ms *ManagerStub) sleepBackoff(ctx context.Context, attempt int) bool {
	d := ms.retryBackoff(attempt)
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Dispatch runs one task on some worker of the class: lottery pick,
// bounded call, retry elsewhere on timeout or overload. Dead workers
// are dropped from the local cache immediately — the timeout is the
// BASE failure detector (§3.1.8: "if a request is sent to a worker
// that no longer exists, the request will time out and another worker
// will be chosen").
func (ms *ManagerStub) Dispatch(ctx context.Context, class string, task *tacc.Task) (tacc.Blob, error) {
	ms.mu.Lock()
	ms.dispatches++
	ms.mu.Unlock()

	// One dispatch span covers the whole pick/call/retry episode; the
	// note names the worker that finally answered (or the last tried).
	trace := obs.TraceFrom(ctx)
	var picked string
	attempts := 0
	if trace.Sampled() {
		dstart := time.Now()
		defer func() {
			ms.ep.Tracer().Record(obs.Span{
				Trace: trace, Hop: "dispatch",
				Note:  fmt.Sprintf("%s->%s x%d", class, picked, attempts),
				Start: dstart.UnixNano(), Dur: int64(time.Since(dstart)),
			})
		}()
	}

	// The context deadline is the request's end-to-end deadline: it is
	// stamped into every TaskMsg so workers can drop expired queue
	// entries, and it bounds each attempt's timeout so retries never
	// outlive the caller's interest.
	dl, hasDL := ctx.Deadline()
	var dlNanos int64
	if hasDL {
		dlNanos = dl.UnixNano()
	}

	tried := make(map[string]bool)
	for attempt := 0; attempt < ms.cfg.Retries; attempt++ {
		if attempt > 0 && !ms.sleepBackoff(ctx, attempt) {
			return tacc.Blob{}, fmt.Errorf("%w: class %s", ErrDeadline, class)
		}
		var ids []string
		for _, w := range ms.Workers(class) {
			if !tried[w.ID] {
				ids = append(ids, w.ID)
			}
		}
		if len(ids) == 0 {
			if attempt == 0 {
				// Nothing known: ask the manager to spawn and give
				// the beacons a moment to propagate.
				ms.requestSpawn(class)
				if !ms.waitForWorker(ctx, class) {
					return tacc.Blob{}, fmt.Errorf("%w: %s", ErrNoWorkers, class)
				}
				continue
			}
			break
		}
		id := ms.sched.Pick(ids, time.Now())
		tried[id] = true
		picked, attempts = id, attempt+1
		info, ok := ms.workers.Get(id)
		if !ok {
			continue
		}
		if attempt > 0 {
			ms.mu.Lock()
			ms.retries++
			ms.mu.Unlock()
		}
		callTimeout := ms.cfg.CallTimeout
		if hasDL {
			remaining := time.Until(dl)
			if remaining <= 0 {
				return tacc.Blob{}, fmt.Errorf("%w: class %s", ErrDeadline, class)
			}
			if remaining < callTimeout {
				callTimeout = remaining
			}
		}
		cctx, cancel := context.WithTimeout(ctx, callTimeout)
		resp, err := ms.ep.Call(cctx, info.Addr, MsgTask, TaskMsg{Task: *task, Deadline: dlNanos, Trace: uint64(trace)}, task.Input.Size()+128)
		cancel()
		if err != nil {
			// Timeout or vanished endpoint: treat the worker as
			// dead until the next beacon says otherwise.
			ms.workers.Delete(id)
			ms.sched.Forget(id)
			ms.mu.Lock()
			ms.failovers++
			ms.mu.Unlock()
			continue
		}
		res, ok := resp.Body.(ResultMsg)
		if !ok {
			resp.Release()
			continue
		}
		if res.Err != "" {
			resp.Release()
			if res.Err == ErrTaskExpired {
				// The worker dropped the task because its deadline had
				// already passed when it reached the head of the queue.
				// Terminal, not retryable: the clock won't run backwards.
				return tacc.Blob{}, fmt.Errorf("%w: class %s (dropped by %s)", ErrDeadline, class, id)
			}
			if res.Err == "queue full" || res.Err == "worker disabled" {
				continue // overloaded/disabled: try another instance
			}
			// A genuine task error (e.g. pathological input) is
			// not retryable: every instance would fail the same way.
			return tacc.Blob{}, fmt.Errorf("stub: worker %s: %s", id, res.Err)
		}
		if resp.Lease != nil {
			// Copy-on-retain: Dispatch hands out an owned Blob (callers
			// cache it, compose pipelines with it), so a view-decoded
			// result is cloned out of its receive buffer here.
			res.Blob.Data = CloneBytes(res.Blob.Data)
			resp.Release()
		}
		return res.Blob, nil
	}
	ms.mu.Lock()
	ms.exhausted++
	ms.mu.Unlock()
	return tacc.Blob{}, fmt.Errorf("%w: class %s", ErrExhausted, class)
}

// DispatchPipeline chains stages through remote workers: the output of
// stage i is the input of stage i+1 (the distributed counterpart of
// tacc.Registry.Run).
func (ms *ManagerStub) DispatchPipeline(ctx context.Context, p tacc.Pipeline, task *tacc.Task) (tacc.Blob, error) {
	if len(p) == 0 {
		return task.Input, nil
	}
	cur := *task
	for i, stage := range p {
		cur.Params = stage.Params
		out, err := ms.Dispatch(ctx, stage.Class, &cur)
		if err != nil {
			return tacc.Blob{}, fmt.Errorf("stub: pipeline stage %d (%s): %w", i, stage.Class, err)
		}
		cur.Input = out
		cur.Inputs = nil
	}
	return cur.Input, nil
}

// requestSpawn asks the manager for a new worker of class.
func (ms *ManagerStub) requestSpawn(class string) {
	mgr := ms.Manager()
	if mgr.IsZero() {
		return
	}
	ms.mu.Lock()
	ms.spawnAsks++
	ms.mu.Unlock()
	_ = ms.ep.Send(mgr, MsgSpawnReq, SpawnReq{Class: class}, 32)
}

// waitForWorker polls the cached table briefly for a worker of class
// to appear (spawn + beacon round trip).
func (ms *ManagerStub) waitForWorker(ctx context.Context, class string) bool {
	deadline := time.Now().Add(ms.cfg.CallTimeout)
	for time.Now().Before(deadline) {
		if len(ms.Workers(class)) > 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(5 * time.Millisecond):
		}
	}
	return len(ms.Workers(class)) > 0
}
