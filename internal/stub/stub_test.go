package stub

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/san"
	"repro/internal/tacc"
)

// echoWorker returns its input with a marker, or fails/panics on
// demand via the task params.
type echoWorker struct{}

func (echoWorker) Class() string { return "echo" }

func (echoWorker) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	switch task.Param("mode", "") {
	case "fail":
		return tacc.Blob{}, errors.New("pathological input")
	case "panic":
		panic("worker bug")
	case "slow":
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
		}
	}
	return tacc.Blob{MIME: "text/plain", Data: append([]byte("echo:"), task.Input.Data...)}, nil
}

// fakeManager beacons periodically and records registrations.
type fakeManager struct {
	net      *san.Network
	ep       *san.Endpoint
	interval time.Duration

	registered   atomic.Int64
	deregistered atomic.Int64
	loadReports  atomic.Int64
	spawnReqs    atomic.Int64
	workers      chan WorkerInfo
}

func newFakeManager(net *san.Network, interval time.Duration) *fakeManager {
	fm := &fakeManager{
		net:      net,
		interval: interval,
		workers:  make(chan WorkerInfo, 64),
	}
	fm.ep = net.Endpoint(san.Addr{Node: "mgr", Proc: "manager"}, 1024)
	fm.ep.Join(GroupControl)
	return fm
}

func (fm *fakeManager) run(ctx context.Context, advertise func() []WorkerInfo) {
	tk := time.NewTicker(fm.interval)
	defer tk.Stop()
	seq := uint64(0)
	send := func() {
		seq++
		fm.ep.Multicast(GroupControl, MsgBeacon, Beacon{
			Manager: fm.ep.Addr(), Seq: seq, Workers: advertise(),
		}, 128)
	}
	send()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C:
			send()
		case msg, ok := <-fm.ep.Inbox():
			if !ok {
				return
			}
			switch msg.Kind {
			case MsgRegister:
				fm.registered.Add(1)
				fm.workers <- msg.Body.(RegisterMsg).Info
			case MsgDeregister:
				fm.deregistered.Add(1)
			case MsgLoadReport:
				fm.loadReports.Add(1)
			case MsgSpawnReq:
				fm.spawnReqs.Add(1)
			}
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// feEndpoint builds a front-end-like endpoint with a manager stub and
// a pump routing messages into it.
func feEndpoint(t *testing.T, net *san.Network, cfg ManagerStubConfig) (*san.Endpoint, *ManagerStub) {
	t.Helper()
	ep := net.Endpoint(san.Addr{Node: "fe", Proc: "fe0"}, 1024)
	ep.Join(GroupControl)
	ms := NewManagerStub(ep, cfg)
	go func() {
		for msg := range ep.Inbox() {
			ms.HandleMessage(msg)
		}
	}()
	t.Cleanup(ms.Stop)
	return ep, ms
}

func TestWorkerRegistersAndServes(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	fm := newFakeManager(net, 10*time.Millisecond)
	var advertised atomic.Value
	advertised.Store([]WorkerInfo{})
	go fm.run(ctx, func() []WorkerInfo { return advertised.Load().([]WorkerInfo) })

	ws := NewWorkerStub("w0", "n1", echoWorker{}, net, WorkerConfig{ReportInterval: 10 * time.Millisecond})
	go ws.Run(ctx)

	// Worker must register after seeing a beacon.
	waitFor(t, "registration", func() bool { return fm.registered.Load() == 1 })
	info := <-fm.workers
	if info.Class != "echo" || info.ID != "w0" {
		t.Fatalf("info = %+v", info)
	}
	advertised.Store([]WorkerInfo{info})

	// Load reports must flow.
	waitFor(t, "load reports", func() bool { return fm.loadReports.Load() >= 2 })

	// Dispatch through a manager stub.
	_, ms := feEndpoint(t, net, ManagerStubConfig{CallTimeout: time.Second})
	waitFor(t, "worker visible in stub", func() bool { return len(ms.Workers("echo")) == 1 })
	out, err := ms.Dispatch(ctx, "echo", &tacc.Task{Input: tacc.Blob{Data: []byte("hi")}})
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Data) != "echo:hi" {
		t.Fatalf("out = %q", out.Data)
	}
}

func TestWorkerTaskErrorPropagates(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fm := newFakeManager(net, 10*time.Millisecond)
	var adv atomic.Value
	adv.Store([]WorkerInfo{})
	go fm.run(ctx, func() []WorkerInfo { return adv.Load().([]WorkerInfo) })

	ws := NewWorkerStub("w0", "n1", echoWorker{}, net, WorkerConfig{ReportInterval: 10 * time.Millisecond})
	go ws.Run(ctx)
	waitFor(t, "registration", func() bool { return fm.registered.Load() == 1 })
	adv.Store([]WorkerInfo{<-fm.workers})

	_, ms := feEndpoint(t, net, ManagerStubConfig{CallTimeout: time.Second})
	waitFor(t, "worker visible", func() bool { return len(ms.Workers("echo")) == 1 })
	_, err := ms.Dispatch(ctx, "echo", &tacc.Task{Params: map[string]string{"mode": "fail"}})
	if err == nil || !strings.Contains(err.Error(), "pathological") {
		t.Fatalf("err = %v", err)
	}
	// Task errors are not retried on other instances.
	if st := ms.Stats(); st.Failovers != 0 {
		t.Fatalf("failovers = %d on a task error", st.Failovers)
	}
}

func TestWorkerPanicCrashesStub(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fm := newFakeManager(net, 10*time.Millisecond)
	var adv atomic.Value
	adv.Store([]WorkerInfo{})
	go fm.run(ctx, func() []WorkerInfo { return adv.Load().([]WorkerInfo) })

	ws := NewWorkerStub("w0", "n1", echoWorker{}, net, WorkerConfig{ReportInterval: 10 * time.Millisecond})
	exit := make(chan error, 1)
	go func() { exit <- ws.Run(ctx) }()
	waitFor(t, "registration", func() bool { return fm.registered.Load() == 1 })
	adv.Store([]WorkerInfo{<-fm.workers})

	ep, ms := feEndpoint(t, net, ManagerStubConfig{CallTimeout: time.Second})
	_ = ep
	waitFor(t, "worker visible", func() bool { return len(ms.Workers("echo")) == 1 })
	_, err := ms.Dispatch(ctx, "echo", &tacc.Task{Params: map[string]string{"mode": "panic"}})
	if err == nil {
		t.Fatal("panic should surface as an error to the caller")
	}
	select {
	case runErr := <-exit:
		var crash errWorkerCrash
		if !errors.As(runErr, &crash) {
			t.Fatalf("stub exit = %v, want worker crash", runErr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stub did not crash on worker panic")
	}
}

func TestWorkerPanicSurvivesWhenConfigured(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fm := newFakeManager(net, 10*time.Millisecond)
	var adv atomic.Value
	adv.Store([]WorkerInfo{})
	go fm.run(ctx, func() []WorkerInfo { return adv.Load().([]WorkerInfo) })

	ws := NewWorkerStub("w0", "n1", echoWorker{}, net,
		WorkerConfig{ReportInterval: 10 * time.Millisecond, SurvivePanic: true})
	go ws.Run(ctx)
	waitFor(t, "registration", func() bool { return fm.registered.Load() == 1 })
	adv.Store([]WorkerInfo{<-fm.workers})
	_, ms := feEndpoint(t, net, ManagerStubConfig{CallTimeout: time.Second})
	waitFor(t, "worker visible", func() bool { return len(ms.Workers("echo")) == 1 })

	if _, err := ms.Dispatch(ctx, "echo", &tacc.Task{Params: map[string]string{"mode": "panic"}}); err == nil {
		t.Fatal("panic should error")
	}
	// Stub survives and still serves.
	out, err := ms.Dispatch(ctx, "echo", &tacc.Task{Input: tacc.Blob{Data: []byte("ok")}})
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Data) != "echo:ok" {
		t.Fatalf("out = %q", out.Data)
	}
}

func TestDispatchFailsOverToLiveWorker(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fm := newFakeManager(net, 10*time.Millisecond)
	var adv atomic.Value
	adv.Store([]WorkerInfo{})
	go fm.run(ctx, func() []WorkerInfo { return adv.Load().([]WorkerInfo) })

	// One live worker plus one advertised ghost (crashed but still
	// in the stale beacon — exactly the §3.1.8 scenario).
	ws := NewWorkerStub("w-live", "n1", echoWorker{}, net, WorkerConfig{ReportInterval: 10 * time.Millisecond})
	go ws.Run(ctx)
	waitFor(t, "registration", func() bool { return fm.registered.Load() == 1 })
	live := <-fm.workers
	ghost := WorkerInfo{ID: "w-ghost", Class: "echo", Addr: san.Addr{Node: "gone", Proc: "w-ghost"}, Node: "gone"}
	adv.Store([]WorkerInfo{live, ghost})

	_, ms := feEndpoint(t, net, ManagerStubConfig{CallTimeout: 50 * time.Millisecond, Retries: 3})
	waitFor(t, "both visible", func() bool { return len(ms.Workers("echo")) == 2 })

	// Run enough dispatches that the lottery must hit the ghost at
	// least once; every request must still succeed via failover.
	for i := 0; i < 10; i++ {
		out, err := ms.Dispatch(ctx, "echo", &tacc.Task{Input: tacc.Blob{Data: []byte("x")}})
		if err != nil {
			t.Fatalf("dispatch %d: %v", i, err)
		}
		if string(out.Data) != "echo:x" {
			t.Fatalf("out = %q", out.Data)
		}
	}
}

func TestQueueFullRejection(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fm := newFakeManager(net, 10*time.Millisecond)
	var adv atomic.Value
	adv.Store([]WorkerInfo{})
	go fm.run(ctx, func() []WorkerInfo { return adv.Load().([]WorkerInfo) })

	// Tiny queue + slow tasks = rejections.
	ws := NewWorkerStub("w0", "n1", echoWorker{}, net,
		WorkerConfig{QueueCap: 1, ReportInterval: 10 * time.Millisecond})
	go ws.Run(ctx)
	waitFor(t, "registration", func() bool { return fm.registered.Load() == 1 })
	info := <-fm.workers
	adv.Store([]WorkerInfo{info})

	ep, _ := feEndpoint(t, net, ManagerStubConfig{CallTimeout: 100 * time.Millisecond})
	// Saturate: send slow tasks directly.
	slow := TaskMsg{Task: tacc.Task{Params: map[string]string{"mode": "slow"}}}
	for i := 0; i < 3; i++ {
		go ep.Call(ctx, info.Addr, MsgTask, slow, 64)
	}
	waitFor(t, "queue to fill", func() bool { return ws.QueueLen() >= 1 })
	cctx, ccancel := context.WithTimeout(ctx, time.Second)
	defer ccancel()
	resp, err := ep.Call(cctx, info.Addr, MsgTask, slow, 64)
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Body.(ResultMsg)
	if res.Err != "queue full" {
		t.Fatalf("res = %+v, want queue full", res)
	}
}

func TestManagerStubSurvivesManagerDeath(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mgrCtx, mgrCancel := context.WithCancel(ctx)
	fm := newFakeManager(net, 10*time.Millisecond)
	var adv atomic.Value
	adv.Store([]WorkerInfo{})
	go fm.run(mgrCtx, func() []WorkerInfo { return adv.Load().([]WorkerInfo) })

	ws := NewWorkerStub("w0", "n1", echoWorker{}, net, WorkerConfig{ReportInterval: 10 * time.Millisecond})
	go ws.Run(ctx)
	waitFor(t, "registration", func() bool { return fm.registered.Load() == 1 })
	adv.Store([]WorkerInfo{<-fm.workers})

	_, ms := feEndpoint(t, net, ManagerStubConfig{
		CallTimeout: time.Second,
		WorkerTTL:   10 * time.Second, // generous: cache must outlive the manager
	})
	waitFor(t, "worker visible", func() bool { return len(ms.Workers("echo")) == 1 })

	// Kill the manager; dispatch must keep working from cache.
	mgrCancel()
	net.DropNode("mgr")
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 5; i++ {
		out, err := ms.Dispatch(ctx, "echo", &tacc.Task{Input: tacc.Blob{Data: []byte("x")}})
		if err != nil {
			t.Fatalf("dispatch with dead manager: %v", err)
		}
		if string(out.Data) != "echo:x" {
			t.Fatalf("out = %q", out.Data)
		}
	}
}

func TestManagerWatchdogFires(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mgrCtx, mgrCancel := context.WithCancel(ctx)
	fm := newFakeManager(net, 10*time.Millisecond)
	go fm.run(mgrCtx, func() []WorkerInfo { return nil })

	var restarts atomic.Int32
	_, ms := feEndpoint(t, net, ManagerStubConfig{
		ManagerTimeout:   60 * time.Millisecond,
		OnManagerSilence: func() { restarts.Add(1) },
	})
	waitFor(t, "first beacon", func() bool { return ms.Stats().BeaconsSeen > 0 })
	if restarts.Load() != 0 {
		t.Fatal("watchdog fired while manager alive")
	}
	mgrCancel()
	waitFor(t, "watchdog", func() bool { return restarts.Load() >= 1 })
}

func TestHotUpgradeDisableEnable(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fm := newFakeManager(net, 10*time.Millisecond)
	var adv atomic.Value
	adv.Store([]WorkerInfo{})
	go fm.run(ctx, func() []WorkerInfo { return adv.Load().([]WorkerInfo) })

	ws := NewWorkerStub("w0", "n1", echoWorker{}, net, WorkerConfig{ReportInterval: 10 * time.Millisecond})
	go ws.Run(ctx)
	waitFor(t, "registration", func() bool { return fm.registered.Load() == 1 })
	info := <-fm.workers
	adv.Store([]WorkerInfo{info})

	ep, _ := feEndpoint(t, net, ManagerStubConfig{CallTimeout: time.Second})
	ctl := net.Endpoint(san.Addr{Node: "mon", Proc: "monitor"}, 16)
	if err := ctl.Send(info.Addr, MsgDisable, nil, 8); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "deregistration", func() bool { return fm.deregistered.Load() >= 1 })

	cctx, ccancel := context.WithTimeout(ctx, time.Second)
	defer ccancel()
	resp, err := ep.Call(cctx, info.Addr, MsgTask, TaskMsg{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Body.(ResultMsg).Err != "worker disabled" {
		t.Fatalf("resp = %+v", resp.Body)
	}

	// Enable: worker re-registers and serves again.
	before := fm.registered.Load()
	if err := ctl.Send(info.Addr, MsgEnable, nil, 8); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-registration", func() bool { return fm.registered.Load() > before })
	resp, err = ep.Call(cctx, info.Addr, MsgTask,
		TaskMsg{Task: tacc.Task{Input: tacc.Blob{Data: []byte("hi")}}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res := resp.Body.(ResultMsg); res.Err != "" || string(res.Blob.Data) != "echo:hi" {
		t.Fatalf("res = %+v", res)
	}
}

func TestDispatchNoWorkersAsksForSpawn(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fm := newFakeManager(net, 10*time.Millisecond)
	go fm.run(ctx, func() []WorkerInfo { return nil })

	_, ms := feEndpoint(t, net, ManagerStubConfig{CallTimeout: 50 * time.Millisecond})
	waitFor(t, "beacon", func() bool { return ms.Stats().BeaconsSeen > 0 })
	_, err := ms.Dispatch(ctx, "echo", &tacc.Task{})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v", err)
	}
	waitFor(t, "spawn request", func() bool { return fm.spawnReqs.Load() >= 1 })
}

func TestDispatchPipelineChains(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fm := newFakeManager(net, 10*time.Millisecond)
	var adv atomic.Value
	adv.Store([]WorkerInfo{})
	go fm.run(ctx, func() []WorkerInfo { return adv.Load().([]WorkerInfo) })

	ws := NewWorkerStub("w0", "n1", echoWorker{}, net, WorkerConfig{ReportInterval: 10 * time.Millisecond})
	go ws.Run(ctx)
	waitFor(t, "registration", func() bool { return fm.registered.Load() == 1 })
	adv.Store([]WorkerInfo{<-fm.workers})

	_, ms := feEndpoint(t, net, ManagerStubConfig{CallTimeout: time.Second})
	waitFor(t, "worker visible", func() bool { return len(ms.Workers("echo")) == 1 })
	out, err := ms.DispatchPipeline(ctx,
		tacc.Pipeline{{Class: "echo"}, {Class: "echo"}},
		&tacc.Task{Input: tacc.Blob{Data: []byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Data) != "echo:echo:x" {
		t.Fatalf("out = %q", out.Data)
	}
	// Empty pipeline passes through.
	out, err = ms.DispatchPipeline(ctx, nil, &tacc.Task{Input: tacc.Blob{Data: []byte("raw")}})
	if err != nil || string(out.Data) != "raw" {
		t.Fatalf("out = %q, %v", out.Data, err)
	}
}

func TestBeaconRemovesVanishedWorkers(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fm := newFakeManager(net, 10*time.Millisecond)
	var adv atomic.Value
	w1 := WorkerInfo{ID: "w1", Class: "echo", Addr: san.Addr{Node: "n1", Proc: "w1"}}
	w2 := WorkerInfo{ID: "w2", Class: "echo", Addr: san.Addr{Node: "n2", Proc: "w2"}}
	adv.Store([]WorkerInfo{w1, w2})
	go fm.run(ctx, func() []WorkerInfo { return adv.Load().([]WorkerInfo) })

	_, ms := feEndpoint(t, net, ManagerStubConfig{})
	waitFor(t, "two workers", func() bool { return len(ms.Workers("echo")) == 2 })
	adv.Store([]WorkerInfo{w1}) // manager reports w2 gone
	waitFor(t, "w2 dropped", func() bool { return len(ms.Workers("echo")) == 1 })
	if ms.Workers("echo")[0].ID != "w1" {
		t.Fatal("wrong worker dropped")
	}
}

func TestRetryBackoffJitteredExponential(t *testing.T) {
	const base = 2 * time.Millisecond
	_, ms := feEndpoint(t, san.NewNetwork(1), ManagerStubConfig{Seed: 7, RetryBackoff: base})

	// Every draw for attempt n lands in [base*2^(n-1), 2*base*2^(n-1)),
	// with the exponent capped at 6 so deep retry budgets cannot turn
	// into multi-second stalls.
	for attempt := 1; attempt <= 10; attempt++ {
		shift := attempt - 1
		if shift > 6 {
			shift = 6
		}
		lo := base << shift
		for i := 0; i < 16; i++ {
			if d := ms.retryBackoff(attempt); d < lo || d >= 2*lo {
				t.Fatalf("attempt %d draw %d: backoff %v outside [%v, %v)", attempt, i, d, lo, 2*lo)
			}
		}
	}

	// Same seed, same jitter sequence: retry timing stays inside the
	// run-twice determinism contract.
	_, ms1 := feEndpoint(t, san.NewNetwork(1), ManagerStubConfig{Seed: 42, RetryBackoff: base})
	_, ms2 := feEndpoint(t, san.NewNetwork(1), ManagerStubConfig{Seed: 42, RetryBackoff: base})
	for attempt := 1; attempt <= 6; attempt++ {
		if d1, d2 := ms1.retryBackoff(attempt), ms2.retryBackoff(attempt); d1 != d2 {
			t.Fatalf("attempt %d: same-seed stubs drew %v vs %v", attempt, d1, d2)
		}
	}

	// Negative disables backoff outright (zero would mean "default").
	_, msOff := feEndpoint(t, san.NewNetwork(1), ManagerStubConfig{Seed: 7, RetryBackoff: -time.Millisecond})
	if d := msOff.retryBackoff(3); d != 0 {
		t.Fatalf("disabled backoff returned %v, want 0", d)
	}
}

func TestDispatchBacksOffBetweenRetries(t *testing.T) {
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fm := newFakeManager(net, 5*time.Millisecond)
	// Three ghosts at dead addresses: every call times out, so a full
	// dispatch burns all three attempts with a backoff sleep before
	// each retry.
	ghosts := []WorkerInfo{
		{ID: "w-g1", Class: "echo", Addr: san.Addr{Node: "gone", Proc: "w-g1"}, Node: "gone"},
		{ID: "w-g2", Class: "echo", Addr: san.Addr{Node: "gone", Proc: "w-g2"}, Node: "gone"},
		{ID: "w-g3", Class: "echo", Addr: san.Addr{Node: "gone", Proc: "w-g3"}, Node: "gone"},
	}
	go fm.run(ctx, func() []WorkerInfo { return ghosts })

	const base = 30 * time.Millisecond
	_, ms := feEndpoint(t, net, ManagerStubConfig{
		Seed:         3,
		CallTimeout:  10 * time.Millisecond,
		Retries:      3,
		RetryBackoff: base,
	})
	waitFor(t, "ghosts advertised", func() bool { return len(ms.Workers("echo")) == 3 })

	start := time.Now()
	_, err := ms.Dispatch(ctx, "echo", &tacc.Task{Input: tacc.Blob{Data: []byte("x")}})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	// Backoff floor: >= base before attempt 1 and >= 2*base before
	// attempt 2 — without backoff this dispatch finishes in ~3 call
	// timeouts (30ms), well under the floor.
	if min := 3 * base; elapsed < min {
		t.Fatalf("dispatch returned after %v; jittered backoff floor is %v", elapsed, min)
	}
	if st := ms.Stats(); st.Retries != 2 || st.Exhausted != 1 {
		t.Fatalf("stats = %+v, want 2 retries and 1 exhausted", st)
	}
}
