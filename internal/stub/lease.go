package stub

import "repro/internal/san"

// Zero-copy view support. DecodeBodyView hands out []byte fields that
// alias the receive buffer; the buffer's lifetime is governed by a
// refcounted Lease. The concrete type lives in san (the network owns
// buffer pooling); stub re-exports it so codec-level code and tests
// can speak the Lease/Release contract without importing san
// directly.

// Lease is the refcounted pooled buffer backing decoded views. See
// san.Lease for the full contract: Release when done (a performance
// obligation, never a safety one), CloneBytes before retaining bytes
// past your release.
type Lease = san.Lease

// NewLease acquires a pooled lease holding one reference.
func NewLease(n int) *Lease { return san.NewLease(n) }

// CloneBytes is the copy-on-retain escape hatch for long-lived holders
// of view-decoded bytes.
func CloneBytes(b []byte) []byte { return san.CloneBytes(b) }
