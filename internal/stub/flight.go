package stub

import (
	"context"
	"sync"
)

// FlightGroup coalesces duplicate in-flight work by key (the classic
// singleflight pattern): the first caller for a key runs fn, later
// callers for the same key wait for that result instead of repeating
// the work. The front end uses it so concurrent misses on one URL
// produce one origin fetch and one distillation dispatch rather than
// a stampede — the paper's cache exists precisely to absorb
// Zipf-skewed reuse (§4.1), and a miss storm on a hot key would
// otherwise multiply the miss penalty by the arrival rate.
//
// The zero value is ready to use.
type FlightGroup[T any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[T]
}

type flightCall[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Do runs fn once per key at a time: the leader executes it, followers
// block until the leader finishes (or their own ctx is done) and share
// the leader's result. The boolean reports whether this caller shared
// another caller's work (it was a follower).
func (g *FlightGroup[T]) Do(ctx context.Context, key string, fn func() (T, error)) (T, error, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall[T])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err(), true
		}
	}
	c := &flightCall[T]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
