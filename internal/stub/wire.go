// Package stub implements the narrow interface between service-
// specific workers and the SNS layer (paper §2.2.5): the worker stub,
// which hides queueing, load reporting, fault isolation and discovery
// from worker code; and the manager stub, linked into front ends,
// which caches load-balancing state from manager beacons, dispatches
// tasks by lottery, and carries the process-peer duties (restart a
// silent manager).
package stub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/obs"
	"repro/internal/san"
	"repro/internal/supervisor"
	"repro/internal/tacc"
	"repro/internal/vcache"
)

// Multicast groups. Components discover each other exclusively through
// these — the paper's "use of IP multicast provides a level of
// indirection and relieves components of having to explicitly locate
// each other" (§3.1.2).
const (
	GroupControl = "sns.control" // manager beacons, registration traffic
	GroupReports = "sns.reports" // monitor state reports
)

// Message kinds.
const (
	MsgBeacon     = "mgr.beacon"   // manager -> group: Beacon
	MsgRegister   = "wrk.register" // worker -> manager: RegisterMsg
	MsgDeregister = "wrk.dereg"    // worker -> manager: DeregisterMsg
	MsgLoadReport = "wrk.load"     // worker -> manager: LoadReport
	MsgTask       = "wrk.task"     // front end -> worker: TaskMsg
	MsgResult     = "wrk.result"   // worker -> front end (reply): ResultMsg
	MsgFEHello    = "fe.heartbeat" // front end -> manager: FEHeartbeat
	MsgSpawnReq   = "mgr.spawnreq" // front end -> manager: SpawnReq
	MsgShutdown   = "ctl.shutdown" // manager -> worker: graceful reap
	MsgDisable    = "ctl.disable"  // monitor -> component: hot upgrade
	MsgEnable     = "ctl.enable"   // monitor -> component
	MsgMonReport  = "mon.report"   // component -> reports group: StatusReport
	MsgSpanDigest = "obs.spans"    // span reporter -> reports group: SpanDigest
)

// WorkerInfo describes one live worker as carried in beacons.
type WorkerInfo struct {
	ID    string
	Class string
	Addr  san.Addr
	Node  string
	// QLen is the manager's weighted moving average of the worker's
	// reported queue length.
	QLen float64
	// Overflow marks workers running on overflow-pool nodes.
	Overflow bool
}

// Beacon is the manager's periodic multicast: its own address (for
// registration and spawn requests) plus the load-balancing hints the
// front ends cache (§2.2.2). Epoch is the election generation: every
// takeover bumps it, and listeners ignore beacons from epochs older
// than the newest they have seen, so a deposed primary cannot drag
// followers back. Floors carries the per-class replica floors so a
// standby that wins an election adopts the primary's spawn duties
// exactly — like everything else here, soft state rebuilt from one
// beacon interval (§3.1.3).
type Beacon struct {
	Manager san.Addr
	Seq     uint64
	Epoch   uint64
	Workers []WorkerInfo
	Floors  map[string]int
}

// RegisterMsg announces a worker to the manager.
type RegisterMsg struct {
	Info WorkerInfo
}

// DeregisterMsg removes a worker (clean shutdown).
type DeregisterMsg struct {
	ID string
}

// LoadReport carries one worker's queue length to the manager. The
// paper characterizes distiller load "in terms of the queue length at
// the distiller, optionally weighted by the expected cost of
// distilling each item".
type LoadReport struct {
	ID      string
	Class   string
	QLen    int
	CostMs  float64 // average per-task cost observed, milliseconds
	Done    uint64  // tasks completed since start
	Errors  uint64
	Crashes uint64
	// Info lets the manager re-admit a worker it expired (e.g. after
	// a healed SAN partition): soft state regenerates from the very
	// next periodic message, no explicit rejoin protocol needed.
	Info WorkerInfo
}

// TaskMsg asks a worker to run one task. Deadline, when non-zero, is
// the absolute wall-clock instant (unix nanoseconds) after which the
// caller no longer awaits the result; it rides inside the body so it
// crosses process boundaries through the wire codec, and workers drop
// expired tasks from their inboxes instead of running them. Trace
// mirrors the same dual-carriage pattern for the tracing id
// (obs.TraceID bits): the SAN stamps Message.Trace on deliveries, and
// the body copy covers consumers that re-queue the task beyond the
// original message.
type TaskMsg struct {
	Task     tacc.Task
	Deadline int64
	Trace    uint64
}

// ResultMsg answers a TaskMsg.
type ResultMsg struct {
	Blob tacc.Blob
	Err  string // empty on success
}

// FEHeartbeat tells the manager a front end is alive (process-peer
// input for "the manager detects and restarts a crashed front end").
// HTTPAddr, when non-empty, is the host:port of the front end's HTTP
// adapter — the address an edge proxy routes client requests to.
// Draining marks a front end that has been disabled for a hot upgrade:
// still alive (heartbeats keep flowing so the manager does not restart
// it) but asking the edge to stop sending it new requests. Both fields
// ride an optional tail on the wire so pre-extension frames decode with
// zero values.
type FEHeartbeat struct {
	Name     string
	Addr     san.Addr
	Node     string
	HTTPAddr string
	Draining bool
}

// SpawnReq asks the manager to start a worker of a class the front end
// found no instances of.
type SpawnReq struct {
	Class string
}

// StatusReport is the monitor's food: any component multicasts these
// on GroupReports.
type StatusReport struct {
	Component string // process name
	Kind      string // "worker", "frontend", "manager", "cache"
	Node      string
	Metrics   map[string]float64
}

// SpanDigest batches freshly recorded trace spans for the report
// group: each process's span reporter multicasts one every report
// interval, and every process ingests its peers' digests, so any
// node can answer /trace?id= for the whole cluster (and the monitor
// folds the same stream into its per-hop latency table).
type SpanDigest struct {
	Spans []obs.Span
}

// Timing defaults shared across the SNS layer. The paper beacons every
// few seconds; tests compress time via Config knobs.
const (
	DefaultBeaconInterval = 500 * time.Millisecond
	DefaultReportInterval = 500 * time.Millisecond
	DefaultWorkerTTL      = 5 * DefaultReportInterval
	DefaultCallTimeout    = 2 * time.Second
)

// ---------------------------------------------------------------------------
// Wire codec.
//
// EncodeBody/DecodeBody define the production wire format for every
// SNS message — the stub control plane, the task/result data plane,
// and the vcache cache protocol: a compact, deterministic binary
// encoding (strings and byte slices are uvarint-length-prefixed, maps
// are emitted in sorted key order so equal values encode to equal
// bytes, floats are IEEE-754 bits). DecodeBody is total: malformed
// input yields an error, never a panic or an unbounded allocation —
// the property the FuzzWireRoundTrip fuzzer hammers on. A san.Network
// built with san.WithCodec(WireCodec{}) runs this codec on its live
// message path (wire mode); EncodeBodyAppend is the pooled-buffer
// entry point that path uses, and control signals without a body
// layout (MsgShutdown, MsgDisable, MsgEnable, vcache.MsgOK,
// vcache.MsgStats) encode a nil body as empty bytes.

// ErrWireFormat reports a malformed or truncated wire message.
var ErrWireFormat = errors.New("stub: malformed wire message")

// WireCodec adapts the package codec to san.Codec, so a network built
// with san.WithCodec(stub.WireCodec{}) serializes every SNS message —
// control plane, data plane, and the cache protocol — through the
// production encoding.
type WireCodec struct{}

// AppendBody implements san.Codec.
func (WireCodec) AppendBody(dst []byte, kind string, body any) ([]byte, error) {
	return EncodeBodyAppend(dst, kind, body)
}

// DecodeBody implements san.Codec.
func (WireCodec) DecodeBody(kind string, data []byte) (any, error) {
	return DecodeBody(kind, data)
}

// DecodeBodyView implements san.ViewCodec: a network running this
// codec decodes []byte body fields as views into the wire bytes, and
// deliveries carry the backing buffer's san.Lease.
func (WireCodec) DecodeBodyView(kind string, data []byte) (any, bool, error) {
	return DecodeBodyView(kind, data)
}

// EncodeBody serializes a message body for the given kind. Kinds
// without a registered body layout (control signals like MsgShutdown)
// encode a nil body as empty bytes.
func EncodeBody(kind string, body any) ([]byte, error) {
	return EncodeBodyAppend(nil, kind, body)
}

// EncodeBodyAppend serializes a message body for the given kind into
// dst (which may be nil or a recycled buffer; its existing contents
// are preserved) and returns the extended slice — the zero-alloc
// variant the SAN's pooled wire path uses.
func EncodeBodyAppend(dst []byte, kind string, body any) ([]byte, error) {
	w := &wireWriter{buf: dst}
	switch kind {
	case MsgBeacon:
		b, ok := body.(Beacon)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants Beacon, got %T", ErrWireFormat, kind, body)
		}
		w.addr(b.Manager)
		w.u64(b.Seq)
		w.u64(b.Epoch)
		w.uvarint(uint64(len(b.Workers)))
		for _, wi := range b.Workers {
			w.workerInfo(wi)
		}
		w.intMap(b.Floors)
	case MsgRegister:
		m, ok := body.(RegisterMsg)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants RegisterMsg, got %T", ErrWireFormat, kind, body)
		}
		w.workerInfo(m.Info)
	case MsgDeregister:
		m, ok := body.(DeregisterMsg)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants DeregisterMsg, got %T", ErrWireFormat, kind, body)
		}
		w.str(m.ID)
	case MsgLoadReport:
		m, ok := body.(LoadReport)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants LoadReport, got %T", ErrWireFormat, kind, body)
		}
		w.str(m.ID)
		w.str(m.Class)
		w.varint(int64(m.QLen))
		w.f64(m.CostMs)
		w.u64(m.Done)
		w.u64(m.Errors)
		w.u64(m.Crashes)
		w.workerInfo(m.Info)
	case MsgTask:
		m, ok := body.(TaskMsg)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants TaskMsg, got %T", ErrWireFormat, kind, body)
		}
		w.str(m.Task.Key)
		w.blob(m.Task.Input)
		w.uvarint(uint64(len(m.Task.Inputs)))
		for _, b := range m.Task.Inputs {
			w.blob(b)
		}
		w.strMap(m.Task.Profile)
		w.strMap(m.Task.Params)
		w.varint(m.Deadline)
		w.uvarint(m.Trace)
	case MsgResult:
		m, ok := body.(ResultMsg)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants ResultMsg, got %T", ErrWireFormat, kind, body)
		}
		w.blob(m.Blob)
		w.str(m.Err)
	case MsgFEHello:
		m, ok := body.(FEHeartbeat)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants FEHeartbeat, got %T", ErrWireFormat, kind, body)
		}
		w.str(m.Name)
		w.addr(m.Addr)
		w.str(m.Node)
		w.str(m.HTTPAddr)
		w.bool(m.Draining)
	case MsgSpawnReq:
		m, ok := body.(SpawnReq)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants SpawnReq, got %T", ErrWireFormat, kind, body)
		}
		w.str(m.Class)
	case MsgMonReport:
		m, ok := body.(StatusReport)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants StatusReport, got %T", ErrWireFormat, kind, body)
		}
		w.str(m.Component)
		w.str(m.Kind)
		w.str(m.Node)
		w.f64Map(m.Metrics)
	case MsgSpanDigest:
		m, ok := body.(SpanDigest)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants SpanDigest, got %T", ErrWireFormat, kind, body)
		}
		w.uvarint(uint64(len(m.Spans)))
		for _, sp := range m.Spans {
			w.uvarint(uint64(sp.Trace))
			w.str(sp.Proc)
			w.str(sp.Comp)
			w.str(sp.Hop)
			w.str(sp.Note)
			w.varint(sp.Start)
			w.varint(sp.Dur)
		}
	case vcache.MsgGet:
		m, ok := body.(vcache.GetReq)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants vcache.GetReq, got %T", ErrWireFormat, kind, body)
		}
		w.str(m.Key)
		w.bool(m.Stale)
	case vcache.MsgHello:
		m, ok := body.(vcache.HelloMsg)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants vcache.HelloMsg, got %T", ErrWireFormat, kind, body)
		}
		w.str(m.Name)
		w.addr(m.Addr)
		w.str(m.Node)
	case vcache.MsgGot:
		m, ok := body.(vcache.GetResp)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants vcache.GetResp, got %T", ErrWireFormat, kind, body)
		}
		w.bool(m.Found)
		w.bytes(m.Data)
		w.str(m.MIME)
		w.bool(m.Stale)
	case vcache.MsgPut, vcache.MsgInject:
		m, ok := body.(vcache.PutReq)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants vcache.PutReq, got %T", ErrWireFormat, kind, body)
		}
		w.str(m.Key)
		w.bytes(m.Data)
		w.str(m.MIME)
		w.varint(int64(m.TTL))
	case vcache.MsgStatsR:
		m, ok := body.(vcache.Stats)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants vcache.Stats, got %T", ErrWireFormat, kind, body)
		}
		w.u64(m.Hits)
		w.u64(m.Misses)
		w.u64(m.Puts)
		w.u64(m.Injects)
		w.u64(m.Evictions)
		w.u64(m.Expired)
		w.varint(m.Used)
		w.varint(int64(m.Objects))
	case supervisor.MsgHello:
		m, ok := body.(supervisor.HelloMsg)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants supervisor.HelloMsg, got %T", ErrWireFormat, kind, body)
		}
		w.str(m.Name)
		w.addr(m.Addr)
		w.str(m.Node)
		w.str(m.Prefix)
	case supervisor.MsgCmd:
		m, ok := body.(supervisor.Command)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants supervisor.Command, got %T", ErrWireFormat, kind, body)
		}
		w.u64(m.ID)
		w.str(m.Origin)
		w.str(m.Op)
		w.str(m.Target)
		w.u64(m.Epoch)
	case supervisor.MsgAck:
		m, ok := body.(supervisor.Ack)
		if !ok {
			return nil, fmt.Errorf("%w: %s wants supervisor.Ack, got %T", ErrWireFormat, kind, body)
		}
		w.u64(m.ID)
		w.bool(m.OK)
		w.str(m.Err)
	default:
		if body != nil {
			return nil, fmt.Errorf("%w: kind %q carries no body layout", ErrWireFormat, kind)
		}
	}
	return w.buf, nil
}

// DecodeBody parses a message body for the given kind. The returned
// value has the same concrete type EncodeBody accepts for that kind
// and shares no memory with data.
func DecodeBody(kind string, data []byte) (any, error) {
	body, _, err := decodeBody(kind, data, false)
	return body, err
}

// DecodeBodyView parses a message body in view mode: []byte fields of
// the result (blob data, cache values) alias data directly instead of
// copying, reported by aliased=true. Strings are always copied (Go
// string conversion), so only the bulk payload bytes share memory with
// the input. The caller owns data's lifetime: with aliased=true the
// result is valid only while data's buffer is — the san layer pairs it
// with a Lease. Kinds without byte-slice fields return aliased=false
// and are identical to DecodeBody.
func DecodeBodyView(kind string, data []byte) (body any, aliased bool, err error) {
	return decodeBody(kind, data, true)
}

func decodeBody(kind string, data []byte, view bool) (any, bool, error) {
	r := &wireReader{buf: data, view: view}
	var body any
	switch kind {
	case MsgBeacon:
		var b Beacon
		b.Manager = r.addr()
		b.Seq = r.u64()
		b.Epoch = r.u64()
		n := r.sliceLen(wireMinWorkerInfo)
		if n > 0 {
			b.Workers = make([]WorkerInfo, 0, n)
			for i := 0; i < n; i++ {
				b.Workers = append(b.Workers, r.workerInfo())
			}
		}
		b.Floors = r.intMap()
		body = b
	case MsgRegister:
		body = RegisterMsg{Info: r.workerInfo()}
	case MsgDeregister:
		body = DeregisterMsg{ID: r.str()}
	case MsgLoadReport:
		var m LoadReport
		m.ID = r.str()
		m.Class = r.str()
		m.QLen = int(r.varint())
		m.CostMs = r.f64()
		m.Done = r.u64()
		m.Errors = r.u64()
		m.Crashes = r.u64()
		m.Info = r.workerInfo()
		body = m
	case MsgTask:
		var m TaskMsg
		m.Task.Key = r.str()
		m.Task.Input = r.blob()
		n := r.sliceLen(wireMinBlob)
		if n > 0 {
			m.Task.Inputs = make([]tacc.Blob, 0, n)
			for i := 0; i < n; i++ {
				m.Task.Inputs = append(m.Task.Inputs, r.blob())
			}
		}
		m.Task.Profile = r.strMap()
		m.Task.Params = r.strMap()
		m.Deadline = r.varint()
		m.Trace = r.uvarint()
		body = m
	case MsgResult:
		body = ResultMsg{Blob: r.blob(), Err: r.str()}
	case MsgFEHello:
		m := FEHeartbeat{Name: r.str(), Addr: r.addr(), Node: r.str()}
		// Optional tail: frames encoded before the HTTPAddr/Draining
		// extension end here and decode with zero values.
		if r.err == nil && r.pos < len(r.buf) {
			m.HTTPAddr = r.str()
			m.Draining = r.bool()
		}
		body = m
	case MsgSpawnReq:
		body = SpawnReq{Class: r.str()}
	case MsgMonReport:
		body = StatusReport{Component: r.str(), Kind: r.str(), Node: r.str(), Metrics: r.f64Map()}
	case MsgSpanDigest:
		var m SpanDigest
		n := r.sliceLen(wireMinSpan)
		if n > 0 {
			m.Spans = make([]obs.Span, 0, n)
			for i := 0; i < n; i++ {
				m.Spans = append(m.Spans, obs.Span{
					Trace: obs.TraceID(r.uvarint()),
					Proc:  r.str(),
					Comp:  r.str(),
					Hop:   r.str(),
					Note:  r.str(),
					Start: r.varint(),
					Dur:   r.varint(),
				})
			}
		}
		body = m
	case vcache.MsgGet:
		body = vcache.GetReq{Key: r.str(), Stale: r.bool()}
	case vcache.MsgHello:
		body = vcache.HelloMsg{Name: r.str(), Addr: r.addr(), Node: r.str()}
	case vcache.MsgGot:
		body = vcache.GetResp{Found: r.bool(), Data: r.bytes(), MIME: r.str(), Stale: r.bool()}
	case vcache.MsgPut, vcache.MsgInject:
		body = vcache.PutReq{Key: r.str(), Data: r.bytes(), MIME: r.str(), TTL: time.Duration(r.varint())}
	case vcache.MsgStatsR:
		body = vcache.Stats{
			Hits:      r.u64(),
			Misses:    r.u64(),
			Puts:      r.u64(),
			Injects:   r.u64(),
			Evictions: r.u64(),
			Expired:   r.u64(),
			Used:      r.varint(),
			Objects:   int(r.varint()),
		}
	case supervisor.MsgHello:
		body = supervisor.HelloMsg{Name: r.str(), Addr: r.addr(), Node: r.str(), Prefix: r.str()}
	case supervisor.MsgCmd:
		body = supervisor.Command{ID: r.u64(), Origin: r.str(), Op: r.str(), Target: r.str(), Epoch: r.u64()}
	case supervisor.MsgAck:
		body = supervisor.Ack{ID: r.u64(), OK: r.bool(), Err: r.str()}
	default:
		if len(data) != 0 {
			return nil, false, fmt.Errorf("%w: kind %q carries no body layout", ErrWireFormat, kind)
		}
		return nil, false, nil
	}
	if r.err != nil {
		return nil, false, r.err
	}
	if len(r.buf) != r.pos {
		return nil, false, fmt.Errorf("%w: %d trailing bytes", ErrWireFormat, len(r.buf)-r.pos)
	}
	return body, r.aliased, nil
}

// WireKinds lists every kind with a registered body layout, sorted —
// the fuzzer's kind table.
func WireKinds() []string {
	return []string{
		MsgBeacon, MsgDeregister, MsgFEHello, MsgLoadReport, MsgMonReport,
		MsgRegister, MsgResult, MsgSpawnReq, MsgSpanDigest, MsgTask,
		supervisor.MsgAck, supervisor.MsgCmd, supervisor.MsgHello,
		vcache.MsgGet, vcache.MsgGot, vcache.MsgHello, vcache.MsgInject, vcache.MsgPut, vcache.MsgStatsR,
	}
}

// Minimum encoded sizes, used to bound slice preallocation against
// attacker-controlled counts: a claimed N-element slice needs at
// least N*min bytes of remaining input.
const (
	wireMinWorkerInfo = 7 // 4 empty strings + f64 varint + bool + 2 more strings? conservative floor
	wireMinBlob       = 3 // empty MIME + empty data + empty meta
	wireMinSpan       = 7 // trace uvarint + 4 empty strings + 2 varints
)

type wireWriter struct{ buf []byte }

func (w *wireWriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *wireWriter) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *wireWriter) u64(v uint64)     { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *wireWriter) f64(v float64)    { w.u64(math.Float64bits(v)) }
func (w *wireWriter) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

func (w *wireWriter) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *wireWriter) str(s string) { w.bytes([]byte(s)) }

func (w *wireWriter) addr(a san.Addr) {
	w.str(a.Node)
	w.str(a.Proc)
}

func (w *wireWriter) workerInfo(i WorkerInfo) {
	w.str(i.ID)
	w.str(i.Class)
	w.addr(i.Addr)
	w.str(i.Node)
	w.f64(i.QLen)
	w.bool(i.Overflow)
}

func (w *wireWriter) blob(b tacc.Blob) {
	w.str(b.MIME)
	w.bytes(b.Data)
	w.strMap(b.Meta)
}

// sortedKeys collects and sorts a map's keys, using the caller's
// stack-backed scratch array when it fits so typical small maps
// (profiles, metrics) sort without a heap allocation.
func sortedKeys[V any](m map[string]V, scratch *[8]string) []string {
	var keys []string
	if len(m) <= len(scratch) {
		keys = scratch[:0]
	} else {
		keys = make([]string, 0, len(m))
	}
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// strMap encodes a map in sorted key order: equal maps always yield
// equal bytes.
func (w *wireWriter) strMap(m map[string]string) {
	var scratch [8]string
	keys := sortedKeys(m, &scratch)
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(m[k])
	}
}

func (w *wireWriter) f64Map(m map[string]float64) {
	var scratch [8]string
	keys := sortedKeys(m, &scratch)
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.f64(m[k])
	}
}

func (w *wireWriter) intMap(m map[string]int) {
	var scratch [8]string
	keys := sortedKeys(m, &scratch)
	w.uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.varint(int64(m[k]))
	}
}

// wireReader parses with sticky errors: after the first failure every
// accessor returns zero values, so decode paths need no per-field
// error plumbing. In view mode (DecodeBodyView) bytes() returns
// subslices of buf instead of copies and records that it did, so the
// caller knows the result aliases the input.
type wireReader struct {
	buf     []byte
	pos     int
	err     error
	view    bool
	aliased bool
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = ErrWireFormat
	}
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *wireReader) bool() bool {
	if r.err != nil {
		return false
	}
	if r.pos >= len(r.buf) {
		r.fail()
		return false
	}
	b := r.buf[r.pos]
	r.pos++
	if b > 1 {
		r.fail()
		return false
	}
	return b == 1
}

func (r *wireReader) bytes() []byte {
	raw := r.raw()
	if len(raw) == 0 {
		return nil
	}
	if r.view {
		r.aliased = true
		// Capacity-capped so an append by the consumer reallocates
		// instead of scribbling over the rest of the receive buffer.
		return raw[:len(raw):len(raw)]
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	return out
}

// raw reads a length-prefixed field as a subslice of the input — no
// copy, no aliased mark. Callers either copy it themselves (str: the
// string conversion is the copy) or wrap it via bytes().
func (r *wireReader) raw() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.fail()
		return nil
	}
	out := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out
}

func (r *wireReader) str() string { return string(r.raw()) }

// sliceLen reads an element count and bounds it by the bytes left:
// each element needs at least min bytes, so a count the remaining
// input cannot possibly satisfy is rejected before any allocation.
func (r *wireReader) sliceLen(min int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64((len(r.buf)-r.pos)/min)+1 {
		r.fail()
		return 0
	}
	return int(n)
}

func (r *wireReader) addr() san.Addr {
	return san.Addr{Node: r.str(), Proc: r.str()}
}

func (r *wireReader) workerInfo() WorkerInfo {
	return WorkerInfo{
		ID:       r.str(),
		Class:    r.str(),
		Addr:     r.addr(),
		Node:     r.str(),
		QLen:     r.f64(),
		Overflow: r.bool(),
	}
}

func (r *wireReader) blob() tacc.Blob {
	return tacc.Blob{MIME: r.str(), Data: r.bytes(), Meta: r.strMap()}
}

func (r *wireReader) strMap() map[string]string {
	n := r.sliceLen(2)
	if n == 0 {
		return nil
	}
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := r.str()
		v := r.str()
		if r.err != nil {
			return nil
		}
		m[k] = v
	}
	return m
}

func (r *wireReader) intMap() map[string]int {
	n := r.sliceLen(2)
	if n == 0 {
		return nil
	}
	m := make(map[string]int, n)
	for i := 0; i < n; i++ {
		k := r.str()
		v := r.varint()
		if r.err != nil {
			return nil
		}
		m[k] = int(v)
	}
	return m
}

func (r *wireReader) f64Map() map[string]float64 {
	n := r.sliceLen(9)
	if n == 0 {
		return nil
	}
	m := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		k := r.str()
		v := r.f64()
		if r.err != nil {
			return nil
		}
		m[k] = v
	}
	return m
}
