// Package stub implements the narrow interface between service-
// specific workers and the SNS layer (paper §2.2.5): the worker stub,
// which hides queueing, load reporting, fault isolation and discovery
// from worker code; and the manager stub, linked into front ends,
// which caches load-balancing state from manager beacons, dispatches
// tasks by lottery, and carries the process-peer duties (restart a
// silent manager).
package stub

import (
	"time"

	"repro/internal/san"
	"repro/internal/tacc"
)

// Multicast groups. Components discover each other exclusively through
// these — the paper's "use of IP multicast provides a level of
// indirection and relieves components of having to explicitly locate
// each other" (§3.1.2).
const (
	GroupControl = "sns.control" // manager beacons, registration traffic
	GroupReports = "sns.reports" // monitor state reports
)

// Message kinds.
const (
	MsgBeacon     = "mgr.beacon"   // manager -> group: Beacon
	MsgRegister   = "wrk.register" // worker -> manager: RegisterMsg
	MsgDeregister = "wrk.dereg"    // worker -> manager: DeregisterMsg
	MsgLoadReport = "wrk.load"     // worker -> manager: LoadReport
	MsgTask       = "wrk.task"     // front end -> worker: TaskMsg
	MsgResult     = "wrk.result"   // worker -> front end (reply): ResultMsg
	MsgFEHello    = "fe.heartbeat" // front end -> manager: FEHeartbeat
	MsgSpawnReq   = "mgr.spawnreq" // front end -> manager: SpawnReq
	MsgShutdown   = "ctl.shutdown" // manager -> worker: graceful reap
	MsgDisable    = "ctl.disable"  // monitor -> component: hot upgrade
	MsgEnable     = "ctl.enable"   // monitor -> component
	MsgMonReport  = "mon.report"   // component -> reports group: StatusReport
)

// WorkerInfo describes one live worker as carried in beacons.
type WorkerInfo struct {
	ID    string
	Class string
	Addr  san.Addr
	Node  string
	// QLen is the manager's weighted moving average of the worker's
	// reported queue length.
	QLen float64
	// Overflow marks workers running on overflow-pool nodes.
	Overflow bool
}

// Beacon is the manager's periodic multicast: its own address (for
// registration and spawn requests) plus the load-balancing hints the
// front ends cache (§2.2.2).
type Beacon struct {
	Manager san.Addr
	Seq     uint64
	Workers []WorkerInfo
}

// RegisterMsg announces a worker to the manager.
type RegisterMsg struct {
	Info WorkerInfo
}

// DeregisterMsg removes a worker (clean shutdown).
type DeregisterMsg struct {
	ID string
}

// LoadReport carries one worker's queue length to the manager. The
// paper characterizes distiller load "in terms of the queue length at
// the distiller, optionally weighted by the expected cost of
// distilling each item".
type LoadReport struct {
	ID      string
	Class   string
	QLen    int
	CostMs  float64 // average per-task cost observed, milliseconds
	Done    uint64  // tasks completed since start
	Errors  uint64
	Crashes uint64
	// Info lets the manager re-admit a worker it expired (e.g. after
	// a healed SAN partition): soft state regenerates from the very
	// next periodic message, no explicit rejoin protocol needed.
	Info WorkerInfo
}

// TaskMsg asks a worker to run one task.
type TaskMsg struct {
	Task tacc.Task
}

// ResultMsg answers a TaskMsg.
type ResultMsg struct {
	Blob tacc.Blob
	Err  string // empty on success
}

// FEHeartbeat tells the manager a front end is alive (process-peer
// input for "the manager detects and restarts a crashed front end").
type FEHeartbeat struct {
	Name string
	Addr san.Addr
	Node string
}

// SpawnReq asks the manager to start a worker of a class the front end
// found no instances of.
type SpawnReq struct {
	Class string
}

// StatusReport is the monitor's food: any component multicasts these
// on GroupReports.
type StatusReport struct {
	Component string // process name
	Kind      string // "worker", "frontend", "manager", "cache"
	Node      string
	Metrics   map[string]float64
}

// Timing defaults shared across the SNS layer. The paper beacons every
// few seconds; tests compress time via Config knobs.
const (
	DefaultBeaconInterval = 500 * time.Millisecond
	DefaultReportInterval = 500 * time.Millisecond
	DefaultWorkerTTL      = 5 * DefaultReportInterval
	DefaultCallTimeout    = 2 * time.Second
)
