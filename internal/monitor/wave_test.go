package monitor

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/supervisor"
)

// waveHost fakes the platform behind a supervisor: RestartWorker
// records the id and reports success.
type waveHost struct {
	mu        sync.Mutex
	restarted []string
	fail      bool
}

func (h *waveHost) RestartWorker(id string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fail {
		return fmt.Errorf("registry gone")
	}
	h.restarted = append(h.restarted, id)
	return nil
}
func (h *waveHost) RestartFrontEnd(string) error          { return nil }
func (h *waveHost) RestartCache(string) error             { return nil }
func (h *waveHost) SpawnWorker(string) error              { return nil }
func (h *waveHost) KillComponent(string) error            { return nil }
func (h *waveHost) ComponentAddr(string) (san.Addr, bool) { return san.Addr{}, false }

func (h *waveHost) ids() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.restarted...)
}

// waveFixture: a monitor, a real supervisor daemon, a scripted manager
// beacon source, and two live worker endpoints — everything the wave
// driver touches, without booting a full system.
func startWaveFixture(t *testing.T) (*Monitor, *waveHost, *san.Network) {
	t.Helper()
	net := san.NewNetwork(1)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	m := New(Config{Node: "m0", Net: net, SilenceAfter: time.Second})
	go m.Run(ctx)

	host := &waveHost{}
	sup := supervisor.New(supervisor.Config{
		Node: "a-node0", Net: net, Prefix: "a-", Host: host,
		HeartbeatGroup: stub.GroupControl, HeartbeatInterval: 10 * time.Millisecond,
	})
	go sup.Run(ctx)

	workers := []stub.WorkerInfo{
		{ID: "a-echo.1", Class: "echo", Addr: san.Addr{Node: "a-node1", Proc: "a-echo.1"}, Node: "a-node1"},
		{ID: "a-echo.2", Class: "echo", Addr: san.Addr{Node: "a-node2", Proc: "a-echo.2"}, Node: "a-node2"},
		{ID: "a-sgif.1", Class: "sgif", Addr: san.Addr{Node: "a-node3", Proc: "a-sgif.1"}, Node: "a-node3"},
	}
	for _, w := range workers {
		ep := net.Endpoint(w.Addr, 64)
		go func() {
			for range ep.Inbox() {
				// Workers only need to absorb disable/enable here.
			}
		}()
	}
	mgr := net.Endpoint(san.Addr{Node: "m1", Proc: "manager"}, 64)
	go func() {
		tk := time.NewTicker(10 * time.Millisecond)
		defer tk.Stop()
		seq := uint64(0)
		for {
			select {
			case <-ctx.Done():
				return
			case <-tk.C:
				seq++
				mgr.Multicast(stub.GroupControl, stub.MsgBeacon,
					stub.Beacon{Manager: mgr.Addr(), Seq: seq, Workers: workers}, 256)
			}
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(m.WorkersOf("echo")) == 2 {
			if _, ok := m.SupervisorFor("a-node1"); ok {
				return m, host, net
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("wave fixture never became ready")
	return nil, nil, nil
}

// TestUpgradeWaveRollsEveryWorker: the driver walks the class in id
// order, restarts each worker through the owning supervisor, and
// leaves nothing disabled.
func TestUpgradeWaveRollsEveryWorker(t *testing.T) {
	m, host, _ := startWaveFixture(t)
	rep, err := m.UpgradeWave(context.Background(), "echo", WaveOptions{Drain: time.Millisecond})
	if err != nil {
		t.Fatalf("wave: %v (report %+v)", err, rep)
	}
	want := []string{"a-echo.1", "a-echo.2"}
	if len(rep.Upgraded) != 2 || rep.Upgraded[0] != want[0] || rep.Upgraded[1] != want[1] {
		t.Fatalf("Upgraded = %v, want %v", rep.Upgraded, want)
	}
	if got := host.ids(); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("host restarted %v, want %v", got, want)
	}
	if d := m.Disabled(); len(d) != 0 {
		t.Fatalf("wave left %v disabled", d)
	}
	// The other class was untouched.
	if len(m.WorkersOf("sgif")) != 1 {
		t.Fatal("sgif inventory changed")
	}
}

// TestUpgradeWaveFailureReenables: a refused restart marks the worker
// failed, re-enables it, and the wave (and its error) report it.
func TestUpgradeWaveFailureReenables(t *testing.T) {
	m, host, _ := startWaveFixture(t)
	host.mu.Lock()
	host.fail = true
	host.mu.Unlock()
	rep, err := m.UpgradeWave(context.Background(), "echo",
		WaveOptions{Drain: time.Millisecond, Retries: 1, CommandTimeout: time.Second})
	if err == nil {
		t.Fatalf("wave succeeded despite refusing host: %+v", rep)
	}
	if len(rep.Failed) != 2 || len(rep.Upgraded) != 0 {
		t.Fatalf("report %+v, want both failed", rep)
	}
	if d := m.Disabled(); len(d) != 0 {
		t.Fatalf("failed wave left %v disabled", d)
	}
}

// TestUpgradeWaveUnknownClass: an empty inventory is an error, not a
// vacuous success.
func TestUpgradeWaveUnknownClass(t *testing.T) {
	m, _, _ := startWaveFixture(t)
	if _, err := m.UpgradeWave(context.Background(), "nope", WaveOptions{}); err == nil {
		t.Fatal("wave over an unknown class succeeded")
	}
}

// TestSupervisorForLongestPrefix: ownership resolution prefers the
// most specific advertised prefix.
func TestSupervisorForLongestPrefix(t *testing.T) {
	m, _, net := startWaveFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	sup2 := supervisor.New(supervisor.Config{
		Node: "a-x0", Net: net, Prefix: "a-node1",
		HeartbeatGroup: stub.GroupControl, HeartbeatInterval: 10 * time.Millisecond,
	})
	go sup2.Run(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sup, ok := m.SupervisorFor("a-node1"); ok && sup.Prefix == "a-node1" {
			// The broader "a-" supervisor still owns everything else.
			if sup, ok := m.SupervisorFor("a-node2"); !ok || sup.Prefix != "a-" {
				t.Fatalf("a-node2 resolved to %+v", sup)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("longest-prefix supervisor never won resolution")
}
