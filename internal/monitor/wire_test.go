package monitor

import (
	"testing"
	"time"

	"repro/internal/san"
	"repro/internal/stub"
)

// TestMonitorOverWire feeds the monitor status reports and manager
// beacons through a wire-mode SAN: the reports group traffic it
// watches — including the metrics maps — must survive the codec, and
// the disable/enable control signals (body-less kinds) must still be
// deliverable.
func TestMonitorOverWire(t *testing.T) {
	net := san.NewNetwork(1, san.WithCodec(stub.WireCodec{}))
	m, _ := startMonitor(t, net, time.Hour)
	ep := net.Endpoint(san.Addr{Node: "n1", Proc: "w0"}, 16)
	waitFor(t, "component visible over wire", func() bool {
		report(ep, "w0", "worker")
		snap := m.Snapshot()
		return len(snap) == 1 && snap[0].Component == "w0"
	})
	if snap := m.Snapshot(); snap[0].Metrics["qlen"] != 3 {
		t.Fatalf("metrics map lost in transit: %+v", snap[0].Metrics)
	}

	// Disable: a nil-body control message over the wire path.
	if err := m.Disable(ep.Addr()); err != nil {
		t.Fatal(err)
	}
	msg := <-ep.Inbox()
	if msg.Kind != stub.MsgDisable || msg.Body != nil {
		t.Fatalf("disable arrived as %q body=%#v", msg.Kind, msg.Body)
	}

	st := net.Stats()
	if st.WireErrors != 0 {
		t.Fatalf("%d monitor messages failed serialization", st.WireErrors)
	}
	if st.WireEncodes == 0 {
		t.Fatalf("codec never ran: %+v", st)
	}
}
