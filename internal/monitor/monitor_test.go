package monitor

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/san"
	"repro/internal/stub"
)

func startMonitor(t *testing.T, net *san.Network, silence time.Duration) (*Monitor, *atomic.Int32) {
	t.Helper()
	var alerts atomic.Int32
	m := New(Config{
		Node:         "mon",
		Net:          net,
		SilenceAfter: silence,
		OnAlert:      func(Alert) { alerts.Add(1) },
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go m.Run(ctx)
	return m, &alerts
}

func report(ep *san.Endpoint, component, kind string) {
	ep.Multicast(stub.GroupReports, stub.MsgMonReport, stub.StatusReport{
		Component: component,
		Kind:      kind,
		Node:      "n1",
		Metrics:   map[string]float64{"qlen": 3},
	}, 64)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestMonitorTracksReports(t *testing.T) {
	net := san.NewNetwork(1)
	m, _ := startMonitor(t, net, time.Hour)
	ep := net.Endpoint(san.Addr{Node: "n1", Proc: "w0"}, 16)
	waitFor(t, "component visible", func() bool {
		report(ep, "w0", "worker")
		snap := m.Snapshot()
		return len(snap) == 1 && snap[0].Component == "w0" && snap[0].Kind == "worker"
	})
	snap := m.Snapshot()
	if snap[0].Metrics["qlen"] != 3 || snap[0].Silent {
		t.Fatalf("status = %+v", snap[0])
	}
}

func TestMonitorSilenceAlertAndRecovery(t *testing.T) {
	net := san.NewNetwork(1)
	m, alerts := startMonitor(t, net, 40*time.Millisecond)
	ep := net.Endpoint(san.Addr{Node: "n1", Proc: "w0"}, 16)
	waitFor(t, "component visible", func() bool {
		report(ep, "w0", "worker")
		return len(m.Snapshot()) == 1
	})
	// Go silent: alert fires and the component is marked SILENT.
	waitFor(t, "silence alert", func() bool { return alerts.Load() >= 1 })
	waitFor(t, "marked silent", func() bool {
		snap := m.Snapshot()
		return len(snap) == 1 && snap[0].Silent
	})
	if !strings.Contains(m.RenderTable(), "SILENT") {
		t.Fatal("render does not show silent state")
	}
	// Duplicate alerts are suppressed while still silent.
	n := alerts.Load()
	time.Sleep(100 * time.Millisecond)
	if alerts.Load() > n+1 {
		t.Fatalf("alert storm: %d alerts", alerts.Load())
	}
	// Recovery: a fresh report clears the state and emits a
	// recovery alert.
	before := len(m.Alerts())
	waitFor(t, "recovery", func() bool {
		report(ep, "w0", "worker")
		snap := m.Snapshot()
		return len(snap) == 1 && !snap[0].Silent
	})
	found := false
	for _, a := range m.Alerts()[before:] {
		if strings.Contains(a.Message, "recovered") {
			found = true
		}
	}
	if !found {
		t.Fatal("no recovery alert")
	}
}

func TestMonitorSeesManagerBeacons(t *testing.T) {
	net := san.NewNetwork(1)
	m, _ := startMonitor(t, net, time.Hour)
	mgr := net.Endpoint(san.Addr{Node: "m", Proc: "manager"}, 16)
	waitFor(t, "manager visible", func() bool {
		mgr.Multicast(stub.GroupControl, stub.MsgBeacon, stub.Beacon{
			Manager: mgr.Addr(),
			Workers: []stub.WorkerInfo{{ID: "w0"}},
		}, 64)
		snap := m.Snapshot()
		return len(snap) == 1 && snap[0].Kind == "manager" && snap[0].Metrics["workers"] == 1
	})
}

func TestMonitorDisableEnable(t *testing.T) {
	net := san.NewNetwork(1)
	m, _ := startMonitor(t, net, time.Hour)
	target := net.Endpoint(san.Addr{Node: "n1", Proc: "w0"}, 16)
	if err := m.Disable(target.Addr()); err != nil {
		t.Fatal(err)
	}
	msg := <-target.Inbox()
	if msg.Kind != stub.MsgDisable {
		t.Fatalf("got %s", msg.Kind)
	}
	if err := m.Enable(target.Addr()); err != nil {
		t.Fatal(err)
	}
	msg = <-target.Inbox()
	if msg.Kind != stub.MsgEnable {
		t.Fatalf("got %s", msg.Kind)
	}
}

func TestRenderTableFormatting(t *testing.T) {
	net := san.NewNetwork(1)
	m, _ := startMonitor(t, net, time.Hour)
	ep := net.Endpoint(san.Addr{Node: "n1", Proc: "a-worker"}, 16)
	waitFor(t, "component", func() bool {
		report(ep, "a-worker", "worker")
		return len(m.Snapshot()) == 1
	})
	out := m.RenderTable()
	if !strings.Contains(out, "a-worker") || !strings.Contains(out, "qlen=3.0") {
		t.Fatalf("render = %q", out)
	}
}

func TestDisabledList(t *testing.T) {
	net := san.NewNetwork(1)
	m, _ := startMonitor(t, net, time.Hour)
	a := net.Endpoint(san.Addr{Node: "n1", Proc: "w0"}, 16)
	b := net.Endpoint(san.Addr{Node: "n2", Proc: "w1"}, 16)
	if err := m.Disable(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := m.Disable(a.Addr()); err != nil {
		t.Fatal(err)
	}
	got := m.Disabled()
	if len(got) != 2 || got[0] != a.Addr() || got[1] != b.Addr() {
		t.Fatalf("Disabled() = %v, want sorted [n1/w0 n2/w1]", got)
	}
	if err := m.Enable(a.Addr()); err != nil {
		t.Fatal(err)
	}
	got = m.Disabled()
	if len(got) != 1 || got[0] != b.Addr() {
		t.Fatalf("Disabled() after enable = %v", got)
	}
}

// TestMonitorCopiesMetricsOnIngest: the monitor's view must not alias
// the reporter's map — a sender mutating its map after the multicast
// must not change (or race with) what the monitor displays.
func TestMonitorCopiesMetricsOnIngest(t *testing.T) {
	net := san.NewNetwork(1)
	m, _ := startMonitor(t, net, time.Hour)
	ep := net.Endpoint(san.Addr{Node: "n1", Proc: "w0"}, 16)

	// Warm up until the monitor has joined the report group, then send
	// the report under test exactly once.
	waitFor(t, "monitor joined", func() bool {
		report(ep, "warmup", "worker")
		return len(m.Snapshot()) >= 1
	})
	metrics := map[string]float64{"qlen": 3}
	ep.Multicast(stub.GroupReports, stub.MsgMonReport, stub.StatusReport{
		Component: "w0", Kind: "worker", Node: "n1", Metrics: metrics,
	}, 64)
	waitFor(t, "component visible", func() bool {
		for _, st := range m.Snapshot() {
			if st.Component == "w0" {
				return true
			}
		}
		return false
	})

	metrics["qlen"] = 99 // sender reuses its map for the next report
	for _, st := range m.Snapshot() {
		if st.Component == "w0" && st.Metrics["qlen"] != 3 {
			t.Fatalf("monitor aliased the reporter's metrics map: qlen=%v", st.Metrics["qlen"])
		}
	}
}

// TestMonitorHopBreakdown: span digests on the report group aggregate
// into per-hop count/avg/max across distinct processes.
func TestMonitorHopBreakdown(t *testing.T) {
	net := san.NewNetwork(1)
	m, _ := startMonitor(t, net, time.Hour)
	ep := net.Endpoint(san.Addr{Node: "n1", Proc: "w0"}, 16)

	waitFor(t, "monitor joined", func() bool {
		report(ep, "warmup", "worker")
		return len(m.Snapshot()) >= 1
	})
	ep.Multicast(stub.GroupReports, stub.MsgSpanDigest, stub.SpanDigest{
		Spans: []obs.Span{
			{Trace: 3, Proc: "a", Hop: "worker.service", Dur: int64(10 * time.Millisecond)},
			{Trace: 3, Proc: "b", Hop: "worker.service", Dur: int64(30 * time.Millisecond)},
			{Trace: 3, Proc: "a", Hop: "fe.request", Dur: int64(50 * time.Millisecond)},
		},
	}, 128)
	waitFor(t, "hops aggregated", func() bool { return len(m.HopBreakdown()) == 2 })

	hops := m.HopBreakdown()
	if hops[0].Hop != "fe.request" || hops[1].Hop != "worker.service" {
		t.Fatalf("hop order: %+v", hops)
	}
	ws := hops[1]
	if ws.Count != 2 || ws.Avg != 20*time.Millisecond || ws.Max != 30*time.Millisecond || ws.Procs != 2 {
		t.Fatalf("worker.service agg: %+v", ws)
	}
	if !strings.Contains(m.RenderTable(), "worker.service") {
		t.Fatal("RenderTable missing per-hop section")
	}
}
