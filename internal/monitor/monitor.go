// Package monitor implements the SNS graphical monitor (paper §3.1.7)
// minus the Tcl/Tk pixels: it subscribes to the multicast report
// group, presents a unified view of the system as a single virtual
// entity, raises asynchronous alerts when a component falls silent
// ("the monitor can page or email the system operator ... if it stops
// receiving reports from some component"), and supports temporarily
// disabling components for hot upgrades (§2.1).
package monitor

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/supervisor"
)

// ComponentStatus is the monitor's view of one component.
type ComponentStatus struct {
	Component string
	Kind      string
	Node      string
	Metrics   map[string]float64
	LastSeen  time.Time
	Silent    bool // no report within the alert window
}

// Alert is an asynchronous operator notification (the email/pager
// analogue).
type Alert struct {
	Time      time.Time
	Component string
	Message   string
}

// Config tunes the monitor.
type Config struct {
	Name string
	Node string
	Net  *san.Network
	// SilenceAfter marks a component silent (and alerts) when no
	// report arrives for this long. Default 4x the report interval.
	SilenceAfter time.Duration
	// OnAlert is invoked for every alert (nil = collect only).
	OnAlert func(Alert)
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "monitor"
	}
	if c.SilenceAfter <= 0 {
		c.SilenceAfter = 4 * stub.DefaultReportInterval
	}
	return c
}

// Monitor implements cluster.Process.
type Monitor struct {
	cfg Config
	ep  *san.Endpoint

	mu         sync.Mutex
	seen       map[string]*ComponentStatus
	hops       map[string]*hopAgg // per-hop latency from span digests
	alerts     []Alert
	alerted    map[string]bool // component -> alert outstanding
	disabled   map[san.Addr]bool
	sups       map[string]supervisor.HelloMsg // supervisor table, addr-keyed
	workers    []stub.WorkerInfo              // inventory from the last beacon
	workersSeq uint64                         // beacon seq the inventory came from
	cmdSeq     uint64
}

// New creates a monitor and registers its endpoint.
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:      cfg,
		seen:     make(map[string]*ComponentStatus),
		hops:     make(map[string]*hopAgg),
		alerted:  make(map[string]bool),
		disabled: make(map[san.Addr]bool),
		sups:     make(map[string]supervisor.HelloMsg),
	}
	m.ep = cfg.Net.Endpoint(m.addr(), 4096)
	return m
}

func (m *Monitor) addr() san.Addr { return san.Addr{Node: m.cfg.Node, Proc: m.cfg.Name} }

// Addr returns the monitor's SAN address.
func (m *Monitor) Addr() san.Addr { return m.addr() }

// ID implements cluster.Process.
func (m *Monitor) ID() string { return m.cfg.Name }

// Run implements cluster.Process.
func (m *Monitor) Run(ctx context.Context) error {
	if m.ep == nil || !m.cfg.Net.Lookup(m.addr()) {
		m.ep = m.cfg.Net.Endpoint(m.addr(), 4096)
	}
	ep := m.ep
	defer ep.Close()
	ep.Join(stub.GroupReports)
	ep.Join(stub.GroupControl) // beacons double as manager liveness

	scan := time.NewTicker(m.cfg.SilenceAfter / 2)
	defer scan.Stop()

	for {
		select {
		case <-ctx.Done():
			return nil
		case <-scan.C:
			m.scanSilence()
		case msg, ok := <-ep.Inbox():
			if !ok {
				return fmt.Errorf("monitor: endpoint closed")
			}
			m.handle(msg)
		}
	}
}

func (m *Monitor) handle(msg san.Message) {
	if msg.Reply {
		// Acks for supervisor commands issued by an upgrade wave.
		m.ep.DeliverReply(msg)
		return
	}
	switch msg.Kind {
	case stub.MsgMonReport:
		r, ok := msg.Body.(stub.StatusReport)
		if !ok {
			return
		}
		// Copy the metrics map: with the in-process SAN the sender's map
		// arrives by reference, and aliasing it would let a reporter
		// mutate the monitor's view (or race with it) after ingest.
		metrics := make(map[string]float64, len(r.Metrics))
		for k, v := range r.Metrics {
			metrics[k] = v
		}
		m.mu.Lock()
		m.seen[r.Component] = &ComponentStatus{
			Component: r.Component,
			Kind:      r.Kind,
			Node:      r.Node,
			Metrics:   metrics,
			LastSeen:  time.Now(),
		}
		if m.alerted[r.Component] {
			delete(m.alerted, r.Component)
			m.emitLocked(r.Component, "component recovered")
		}
		m.mu.Unlock()
	case stub.MsgBeacon:
		b, ok := msg.Body.(stub.Beacon)
		if !ok {
			return
		}
		m.mu.Lock()
		m.seen[b.Manager.Proc] = &ComponentStatus{
			Component: b.Manager.Proc,
			Kind:      "manager",
			Node:      b.Manager.Node,
			Metrics:   map[string]float64{"workers": float64(len(b.Workers))},
			LastSeen:  time.Now(),
		}
		// The beacon's worker list is the cluster-wide inventory the
		// upgrade-wave driver walks; the seq lets a reader insist on
		// an inventory generated after some action took effect.
		m.workers = append(m.workers[:0], b.Workers...)
		m.workersSeq = b.Seq
		m.mu.Unlock()
	case stub.MsgSpanDigest:
		d, ok := msg.Body.(stub.SpanDigest)
		if !ok {
			return
		}
		m.mu.Lock()
		for _, sp := range d.Spans {
			if sp.Hop == "" {
				continue
			}
			h := m.hops[sp.Hop]
			if h == nil {
				h = &hopAgg{procs: make(map[string]struct{})}
				m.hops[sp.Hop] = h
			}
			h.count++
			h.total += sp.Dur
			if sp.Dur > h.max {
				h.max = sp.Dur
			}
			if sp.Proc != "" {
				h.procs[sp.Proc] = struct{}{}
			}
		}
		m.mu.Unlock()
	case supervisor.MsgHello:
		hb, ok := msg.Body.(supervisor.HelloMsg)
		if !ok {
			return
		}
		m.mu.Lock()
		m.sups[hb.Addr.String()] = hb
		m.mu.Unlock()
	}
}

// hopAgg accumulates span digests for one hop name.
type hopAgg struct {
	count uint64
	total int64
	max   int64
	procs map[string]struct{}
}

// HopStat is the monitor's cluster-wide latency summary for one trace
// hop — the §3.1.7 "single virtual entity" view of where request time
// goes, fed by the span digests every process multicasts on the report
// group.
type HopStat struct {
	Hop   string
	Count uint64
	Avg   time.Duration
	Max   time.Duration
	Procs int // distinct processes that reported this hop
}

// HopBreakdown returns per-hop latency aggregates sorted by hop name.
func (m *Monitor) HopBreakdown() []HopStat {
	m.mu.Lock()
	out := make([]HopStat, 0, len(m.hops))
	for hop, h := range m.hops {
		st := HopStat{Hop: hop, Count: h.count, Max: time.Duration(h.max), Procs: len(h.procs)}
		if h.count > 0 {
			st.Avg = time.Duration(h.total / int64(h.count))
		}
		out = append(out, st)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Hop < out[j].Hop })
	return out
}

func (m *Monitor) scanSilence() {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, st := range m.seen {
		if now.Sub(st.LastSeen) > m.cfg.SilenceAfter {
			st.Silent = true
			if !m.alerted[name] {
				m.alerted[name] = true
				m.emitLocked(name, fmt.Sprintf("no reports for %v", now.Sub(st.LastSeen).Round(time.Millisecond)))
			}
		} else {
			st.Silent = false
		}
	}
}

func (m *Monitor) emitLocked(component, message string) {
	a := Alert{Time: time.Now(), Component: component, Message: message}
	m.alerts = append(m.alerts, a)
	if m.cfg.OnAlert != nil {
		// Deliver outside the lock.
		go m.cfg.OnAlert(a)
	}
}

// Snapshot returns the current component table, sorted by name.
func (m *Monitor) Snapshot() []ComponentStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ComponentStatus, 0, len(m.seen))
	for _, st := range m.seen {
		cp := *st
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out
}

// Alerts returns all alerts so far.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Disable sends a hot-upgrade disable to a component (§2.1 "temporary
// disabling of system components for hot upgrades").
func (m *Monitor) Disable(addr san.Addr) error {
	m.mu.Lock()
	m.disabled[addr] = true
	m.mu.Unlock()
	return m.ep.Send(addr, stub.MsgDisable, nil, 16)
}

// Enable re-enables a disabled component.
func (m *Monitor) Enable(addr san.Addr) error {
	m.mu.Lock()
	delete(m.disabled, addr)
	m.mu.Unlock()
	return m.ep.Send(addr, stub.MsgEnable, nil, 16)
}

// Disabled lists components currently disabled for upgrade, sorted by
// address, so operators (and chaos assertions) can see an upgrade in
// progress.
func (m *Monitor) Disabled() []san.Addr {
	m.mu.Lock()
	out := make([]san.Addr, 0, len(m.disabled))
	for a := range m.disabled {
		out = append(out, a)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// WorkersOf returns the workers of a class from the latest manager
// beacon, sorted by id — the cluster-wide inventory, wherever each
// worker's process lives.
func (m *Monitor) WorkersOf(class string) []stub.WorkerInfo {
	ws, _ := m.workersOfSeq(class)
	return ws
}

// workersOfSeq additionally reports the beacon seq the inventory was
// carried by.
func (m *Monitor) workersOfSeq(class string) ([]stub.WorkerInfo, uint64) {
	m.mu.Lock()
	var out []stub.WorkerInfo
	for _, w := range m.workers {
		if w.Class == class {
			out = append(out, w)
		}
	}
	seq := m.workersSeq
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, seq
}

// SupervisorFor resolves the supervisor owning a node by longest
// advertised prefix (supervisor.Owner — the same rule the manager
// uses, shared so the two watchers can never disagree).
func (m *Monitor) SupervisorFor(node string) (supervisor.HelloMsg, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return supervisor.Owner(node, m.sups)
}

// WaveOptions tunes an upgrade wave.
type WaveOptions struct {
	// Drain is how long a disabled worker gets to finish its queue
	// before the restart (default 100ms).
	Drain time.Duration
	// CommandTimeout bounds each supervisor command (default 5s).
	CommandTimeout time.Duration
	// Retries is the command attempt budget per worker (default 3);
	// retries reuse the command id, so they are idempotent.
	Retries int
	// ReadyTimeout bounds the wait for the restarted worker to
	// re-register before the wave rolls on (default 10s).
	ReadyTimeout time.Duration
}

func (o WaveOptions) withDefaults() WaveOptions {
	if o.Drain <= 0 {
		o.Drain = 100 * time.Millisecond
	}
	if o.CommandTimeout <= 0 {
		o.CommandTimeout = 5 * time.Second
	}
	if o.Retries <= 0 {
		o.Retries = 3
	}
	if o.ReadyTimeout <= 0 {
		o.ReadyTimeout = 10 * time.Second
	}
	return o
}

// WaveReport summarizes one upgrade wave.
type WaveReport struct {
	Class    string
	Upgraded []string // worker ids restarted and re-registered
	Failed   []string // worker ids the wave could not roll
}

// UpgradeWave performs the paper's hot upgrade (§2.1) as a rolling
// restart across every worker of a class, wherever each one's OS
// process lives: disable (the worker drains and deregisters — a
// voluntary departure, so the manager spawns no replacement), ask the
// owning process's supervisor to restart it under the same id (the
// restarted stub is the "upgraded binary"), re-enable, and wait for it
// to re-register before touching the next one. One worker is down at
// a time, so a class with two or more replicas serves throughout.
func (m *Monitor) UpgradeWave(ctx context.Context, class string, opts WaveOptions) (WaveReport, error) {
	opts = opts.withDefaults()
	rep := WaveReport{Class: class}
	workers := m.WorkersOf(class)
	if len(workers) == 0 {
		return rep, fmt.Errorf("monitor: no workers of class %q in the beacon inventory", class)
	}
	m.mu.Lock()
	m.emitLocked("upgrade-wave", fmt.Sprintf("rolling %d %s workers", len(workers), class))
	m.mu.Unlock()

	for _, w := range workers {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if err := m.rollOne(ctx, class, w, opts); err != nil {
			rep.Failed = append(rep.Failed, w.ID)
			m.mu.Lock()
			m.emitLocked("upgrade-wave", fmt.Sprintf("%s failed: %v", w.ID, err))
			m.mu.Unlock()
			continue
		}
		rep.Upgraded = append(rep.Upgraded, w.ID)
	}
	m.mu.Lock()
	m.emitLocked("upgrade-wave", fmt.Sprintf("%s complete: %d upgraded, %d failed",
		class, len(rep.Upgraded), len(rep.Failed)))
	m.mu.Unlock()
	if len(rep.Failed) > 0 {
		return rep, fmt.Errorf("monitor: wave left %d %s workers unupgraded", len(rep.Failed), class)
	}
	return rep, nil
}

// rollOne upgrades a single worker: disable -> drain -> supervisor
// restart -> enable -> wait for re-registration.
func (m *Monitor) rollOne(ctx context.Context, class string, w stub.WorkerInfo, opts WaveOptions) error {
	if err := m.Disable(w.Addr); err != nil {
		return fmt.Errorf("disable: %w", err)
	}
	// Whatever happens below, the component must not stay marked
	// disabled: the restarted stub is born enabled, and a failed wave
	// step should leave the old instance serving.
	defer func() { _ = m.Enable(w.Addr) }()

	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(opts.Drain):
	}

	sup, ok := m.SupervisorFor(w.Node)
	if !ok {
		return fmt.Errorf("no supervisor owns node %s", w.Node)
	}
	m.mu.Lock()
	m.cmdSeq++
	cmd := supervisor.Command{
		ID:     m.cmdSeq,
		Origin: m.addr().String(),
		Op:     supervisor.OpRestartWorker,
		Target: w.ID,
	}
	m.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < opts.Retries; attempt++ {
		cctx, cancel := context.WithTimeout(ctx, opts.CommandTimeout)
		resp, err := m.ep.Call(cctx, sup.Addr, supervisor.MsgCmd, cmd, 64)
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		ack, isAck := resp.Body.(supervisor.Ack)
		if !isAck {
			lastErr = fmt.Errorf("malformed ack %T", resp.Body)
			continue
		}
		if !ack.OK {
			return fmt.Errorf("supervisor refused: %s", ack.Err)
		}
		lastErr = nil
		break
	}
	if lastErr != nil {
		return fmt.Errorf("restart command: %w", lastErr)
	}

	// Roll on only once the upgraded instance is back in the beacon
	// inventory — the zero-downtime guarantee for the next step. The
	// cached inventory can still be the stale pre-disable snapshot
	// (it is at most one beacon old and would still list w.ID), so
	// insist on one carried by a beacon at least two seqs past the
	// restart: re-registration happens on beacon receipt, so the
	// first beacon that can prove it is the one after the next.
	m.mu.Lock()
	seqAtRestart := m.workersSeq
	m.mu.Unlock()
	deadline := time.Now().Add(opts.ReadyTimeout)
	for time.Now().Before(deadline) {
		cur, seq := m.workersOfSeq(class)
		if seq >= seqAtRestart+2 {
			for _, c := range cur {
				if c.ID == w.ID {
					return nil
				}
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	return fmt.Errorf("restarted worker %s never re-registered", w.ID)
}

// RenderTable renders the system view as text — the visualization
// panel's textual equivalent.
func (m *Monitor) RenderTable() string {
	snap := m.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-10s %-8s %-8s %s\n", "COMPONENT", "KIND", "NODE", "STATE", "METRICS")
	for _, st := range snap {
		state := "ok"
		if st.Silent {
			state = "SILENT"
		}
		keys := make([]string, 0, len(st.Metrics))
		for k := range st.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var metrics []string
		for _, k := range keys {
			metrics = append(metrics, fmt.Sprintf("%s=%.1f", k, st.Metrics[k]))
		}
		fmt.Fprintf(&b, "%-16s %-10s %-8s %-8s %s\n",
			st.Component, st.Kind, st.Node, state, strings.Join(metrics, " "))
	}
	if hops := m.HopBreakdown(); len(hops) > 0 {
		fmt.Fprintf(&b, "\n%-18s %8s %12s %12s %6s\n", "HOP", "COUNT", "AVG", "MAX", "PROCS")
		for _, h := range hops {
			fmt.Fprintf(&b, "%-18s %8d %12v %12v %6d\n",
				h.Hop, h.Count, h.Avg.Round(time.Microsecond), h.Max.Round(time.Microsecond), h.Procs)
		}
	}
	return b.String()
}
