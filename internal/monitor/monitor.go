// Package monitor implements the SNS graphical monitor (paper §3.1.7)
// minus the Tcl/Tk pixels: it subscribes to the multicast report
// group, presents a unified view of the system as a single virtual
// entity, raises asynchronous alerts when a component falls silent
// ("the monitor can page or email the system operator ... if it stops
// receiving reports from some component"), and supports temporarily
// disabling components for hot upgrades (§2.1).
package monitor

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/san"
	"repro/internal/stub"
)

// ComponentStatus is the monitor's view of one component.
type ComponentStatus struct {
	Component string
	Kind      string
	Node      string
	Metrics   map[string]float64
	LastSeen  time.Time
	Silent    bool // no report within the alert window
}

// Alert is an asynchronous operator notification (the email/pager
// analogue).
type Alert struct {
	Time      time.Time
	Component string
	Message   string
}

// Config tunes the monitor.
type Config struct {
	Name string
	Node string
	Net  *san.Network
	// SilenceAfter marks a component silent (and alerts) when no
	// report arrives for this long. Default 4x the report interval.
	SilenceAfter time.Duration
	// OnAlert is invoked for every alert (nil = collect only).
	OnAlert func(Alert)
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "monitor"
	}
	if c.SilenceAfter <= 0 {
		c.SilenceAfter = 4 * stub.DefaultReportInterval
	}
	return c
}

// Monitor implements cluster.Process.
type Monitor struct {
	cfg Config
	ep  *san.Endpoint

	mu       sync.Mutex
	seen     map[string]*ComponentStatus
	alerts   []Alert
	alerted  map[string]bool // component -> alert outstanding
	disabled map[san.Addr]bool
}

// New creates a monitor and registers its endpoint.
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:      cfg,
		seen:     make(map[string]*ComponentStatus),
		alerted:  make(map[string]bool),
		disabled: make(map[san.Addr]bool),
	}
	m.ep = cfg.Net.Endpoint(m.addr(), 4096)
	return m
}

func (m *Monitor) addr() san.Addr { return san.Addr{Node: m.cfg.Node, Proc: m.cfg.Name} }

// Addr returns the monitor's SAN address.
func (m *Monitor) Addr() san.Addr { return m.addr() }

// ID implements cluster.Process.
func (m *Monitor) ID() string { return m.cfg.Name }

// Run implements cluster.Process.
func (m *Monitor) Run(ctx context.Context) error {
	if m.ep == nil || !m.cfg.Net.Lookup(m.addr()) {
		m.ep = m.cfg.Net.Endpoint(m.addr(), 4096)
	}
	ep := m.ep
	defer ep.Close()
	ep.Join(stub.GroupReports)
	ep.Join(stub.GroupControl) // beacons double as manager liveness

	scan := time.NewTicker(m.cfg.SilenceAfter / 2)
	defer scan.Stop()

	for {
		select {
		case <-ctx.Done():
			return nil
		case <-scan.C:
			m.scanSilence()
		case msg, ok := <-ep.Inbox():
			if !ok {
				return fmt.Errorf("monitor: endpoint closed")
			}
			m.handle(msg)
		}
	}
}

func (m *Monitor) handle(msg san.Message) {
	switch msg.Kind {
	case stub.MsgMonReport:
		r, ok := msg.Body.(stub.StatusReport)
		if !ok {
			return
		}
		m.mu.Lock()
		m.seen[r.Component] = &ComponentStatus{
			Component: r.Component,
			Kind:      r.Kind,
			Node:      r.Node,
			Metrics:   r.Metrics,
			LastSeen:  time.Now(),
		}
		if m.alerted[r.Component] {
			delete(m.alerted, r.Component)
			m.emitLocked(r.Component, "component recovered")
		}
		m.mu.Unlock()
	case stub.MsgBeacon:
		b, ok := msg.Body.(stub.Beacon)
		if !ok {
			return
		}
		m.mu.Lock()
		m.seen[b.Manager.Proc] = &ComponentStatus{
			Component: b.Manager.Proc,
			Kind:      "manager",
			Node:      b.Manager.Node,
			Metrics:   map[string]float64{"workers": float64(len(b.Workers))},
			LastSeen:  time.Now(),
		}
		m.mu.Unlock()
	}
}

func (m *Monitor) scanSilence() {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, st := range m.seen {
		if now.Sub(st.LastSeen) > m.cfg.SilenceAfter {
			st.Silent = true
			if !m.alerted[name] {
				m.alerted[name] = true
				m.emitLocked(name, fmt.Sprintf("no reports for %v", now.Sub(st.LastSeen).Round(time.Millisecond)))
			}
		} else {
			st.Silent = false
		}
	}
}

func (m *Monitor) emitLocked(component, message string) {
	a := Alert{Time: time.Now(), Component: component, Message: message}
	m.alerts = append(m.alerts, a)
	if m.cfg.OnAlert != nil {
		// Deliver outside the lock.
		go m.cfg.OnAlert(a)
	}
}

// Snapshot returns the current component table, sorted by name.
func (m *Monitor) Snapshot() []ComponentStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ComponentStatus, 0, len(m.seen))
	for _, st := range m.seen {
		cp := *st
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out
}

// Alerts returns all alerts so far.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Disable sends a hot-upgrade disable to a component (§2.1 "temporary
// disabling of system components for hot upgrades").
func (m *Monitor) Disable(addr san.Addr) error {
	m.mu.Lock()
	m.disabled[addr] = true
	m.mu.Unlock()
	return m.ep.Send(addr, stub.MsgDisable, nil, 16)
}

// Enable re-enables a disabled component.
func (m *Monitor) Enable(addr san.Addr) error {
	m.mu.Lock()
	delete(m.disabled, addr)
	m.mu.Unlock()
	return m.ep.Send(addr, stub.MsgEnable, nil, 16)
}

// Disabled lists components currently disabled for upgrade, sorted by
// address, so operators (and chaos assertions) can see an upgrade in
// progress.
func (m *Monitor) Disabled() []san.Addr {
	m.mu.Lock()
	out := make([]san.Addr, 0, len(m.disabled))
	for a := range m.disabled {
		out = append(out, a)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// RenderTable renders the system view as text — the visualization
// panel's textual equivalent.
func (m *Monitor) RenderTable() string {
	snap := m.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-10s %-8s %-8s %s\n", "COMPONENT", "KIND", "NODE", "STATE", "METRICS")
	for _, st := range snap {
		state := "ok"
		if st.Silent {
			state = "SILENT"
		}
		keys := make([]string, 0, len(st.Metrics))
		for k := range st.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var metrics []string
		for _, k := range keys {
			metrics = append(metrics, fmt.Sprintf("%s=%.1f", k, st.Metrics[k]))
		}
		fmt.Fprintf(&b, "%-16s %-10s %-8s %-8s %s\n",
			st.Component, st.Kind, st.Node, state, strings.Join(metrics, " "))
	}
	return b.String()
}
