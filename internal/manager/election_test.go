package manager

import (
	"context"
	"testing"
	"time"

	"repro/internal/san"
	"repro/internal/stub"
)

// startReplica boots one manager replica with election knobs.
func startReplica(t *testing.T, net *san.Network, node string, sp Spawner, rank int, standby bool) (*Manager, context.CancelFunc) {
	t.Helper()
	m := New(Config{
		Node:           node,
		Net:            net,
		Policy:         Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
		BeaconInterval: tick,
		WorkerTTL:      5 * tick,
		FETTL:          6 * tick,
		Spawner:        sp,
		Rank:           rank,
		Standby:        standby,
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go m.Run(ctx)
	return m, cancel
}

// TestInitialEpochSeeding: a replica respawned with a known epoch
// high-water mark must claim past it (primary) or wait at it
// (standby) — otherwise its beacons would be dropped forever by stubs
// whose monotonic epoch checks saw the dead regime.
func TestInitialEpochSeeding(t *testing.T) {
	net := san.NewNetwork(1)
	p := New(Config{Node: "a", Net: net, InitialEpoch: 5})
	if !p.IsPrimary() || p.Epoch() != 6 {
		t.Fatalf("non-standby with InitialEpoch 5: primary=%v epoch=%d, want primary at 6", p.IsPrimary(), p.Epoch())
	}
	s := New(Config{Node: "b", Net: net, Standby: true, InitialEpoch: 5})
	if s.IsPrimary() || s.Epoch() != 5 {
		t.Fatalf("standby with InitialEpoch 5: primary=%v epoch=%d, want standby at 5", s.IsPrimary(), s.Epoch())
	}
}

// TestStandbySuppressesOutput: while a primary beacons, a standby
// replica sends nothing — but mirrors the primary's worker inventory
// from those beacons, so a later takeover starts at most one beacon
// interval behind.
func TestStandbySuppressesOutput(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	primary, _ := startReplica(t, net, "mgrA", sp, 0, false)
	standby, _ := startReplica(t, net, "mgrB", nil, 1, true)

	sp.SpawnWorker("echo", false)
	sp.SpawnWorker("echo", false)
	waitFor(t, "registrations", func() bool { return primary.Stats().Workers == 2 })
	waitFor(t, "standby mirror", func() bool { return standby.Stats().Workers == 2 })

	// A dozen beacon intervals of coexistence: the standby must stay
	// silent and subordinate the whole time.
	time.Sleep(12 * tick)
	st := standby.Stats()
	if st.Primary || st.BeaconsSent != 0 || st.Takeovers != 0 {
		t.Fatalf("standby broke suppression: %+v", st)
	}
	if !primary.IsPrimary() || primary.Epoch() != 1 {
		t.Fatalf("primary deposed by its own standby: primary=%v epoch=%d", primary.IsPrimary(), primary.Epoch())
	}
}

// TestStandbyTakesOverAfterPrimarySilence is the failover story: the
// primary dies, the standby claims the next epoch after the election
// timeout, and the workers re-anchor on it via its very first beacon —
// no recovery protocol, exactly the paper's §3.1.3 discipline extended
// to elections.
func TestStandbyTakesOverAfterPrimarySilence(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	primary, killPrimary := startReplica(t, net, "mgrA", sp, 0, false)
	// No spawner on the standby: this test watches pure re-anchoring,
	// and a spawner would let the new primary race a replacement spawn
	// against the original worker's re-registration (legal — BASE
	// prefers a duplicate worker over a lost one — but noisy here).
	standby, _ := startReplica(t, net, "mgrB", nil, 1, true)

	sp.SpawnWorker("echo", false)
	waitFor(t, "registration", func() bool { return primary.Stats().Workers == 1 })
	waitFor(t, "standby mirror", func() bool { return standby.Stats().Workers == 1 })

	killPrimary()
	waitFor(t, "takeover", func() bool { return standby.IsPrimary() })
	st := standby.Stats()
	if st.Epoch != 2 || st.Takeovers != 1 {
		t.Fatalf("takeover stats %+v, want epoch 2, 1 takeover", st)
	}
	// The worker saw a beacon from a manager address it did not know and
	// re-registered — the standby's inventory is now first-hand, not
	// mirrored, and survives past the worker TTL.
	waitFor(t, "worker re-registration", func() bool { return standby.Stats().Registrations >= 1 })
	time.Sleep(6 * tick) // past WorkerTTL: only refreshed state survives
	if got := standby.Stats().Workers; got != 1 {
		t.Fatalf("worker did not re-anchor on the new primary: %d workers", got)
	}
}

// TestSplitClaimResolvesByLowestAddress: two replicas both believing
// they are primary at the same epoch (the dual-claim race after a
// partition heals) converge on exactly one — the lexicographically
// smaller address — and the loser steps down on the winner's beacon.
func TestSplitClaimResolvesByLowestAddress(t *testing.T) {
	net := san.NewNetwork(1)
	a, _ := startReplica(t, net, "mgrA", nil, 0, false)
	b, _ := startReplica(t, net, "mgrB", nil, 0, false)

	waitFor(t, "split resolution", func() bool { return a.IsPrimary() && !b.IsPrimary() })
	if st := b.Stats(); st.StepDowns != 1 {
		t.Fatalf("loser stats %+v, want exactly one step-down", st)
	}
	// The regime is stable: the loser stays standby while the winner
	// keeps beaconing.
	time.Sleep(8 * tick)
	if !a.IsPrimary() || b.IsPrimary() {
		t.Fatalf("split claim reopened: a=%v b=%v", a.IsPrimary(), b.IsPrimary())
	}
}

// TestPrimaryStepsDownOnHigherEpoch: a beacon carrying a newer epoch
// deposes the current primary unconditionally — the fencing rule that
// makes a partitioned ex-primary harmless the moment it rejoins.
func TestPrimaryStepsDownOnHigherEpoch(t *testing.T) {
	net := san.NewNetwork(1)
	m, _ := startReplica(t, net, "mgrA", nil, 0, false)
	// The replica is "primary" from construction; wait for its Run loop
	// (first beacon) so it is actually listening on the control group.
	waitFor(t, "primary boot", func() bool { return m.Stats().BeaconsSent >= 1 })

	// The rival regime beacons continuously at epoch 7 — a one-shot
	// claim would let the deposed replica legitimately re-elect itself
	// after the election timeout, which is not what this test is about.
	rival := net.Endpoint(san.Addr{Node: "mgrZ", Proc: "manager"}, 16)
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		seq := uint64(0)
		tk := time.NewTicker(tick)
		defer tk.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tk.C:
				seq++
				rival.Multicast(stub.GroupControl, stub.MsgBeacon, stub.Beacon{
					Manager: rival.Addr(), Seq: seq, Epoch: 7,
				}, 64)
			}
		}
	}()

	waitFor(t, "step-down", func() bool { return !m.IsPrimary() })
	st := m.Stats()
	if st.Epoch != 7 || st.StepDowns != 1 {
		t.Fatalf("deposed stats %+v, want epoch 7, 1 step-down", st)
	}
	// Stale beacons from a long-dead regime are ignored outright.
	rival.Multicast(stub.GroupControl, stub.MsgBeacon, stub.Beacon{
		Manager: san.Addr{Node: "mgrY", Proc: "manager"}, Seq: 1, Epoch: 3,
	}, 64)
	time.Sleep(4 * tick)
	if m.Epoch() != 7 {
		t.Fatalf("stale beacon rewound the epoch to %d", m.Epoch())
	}
	if m.IsPrimary() {
		t.Fatal("deposed replica reclaimed primacy while the epoch-7 regime is beaconing")
	}
}
