// Package manager implements the SNS layer's centralized,
// fault-tolerant load-balancing manager (paper §2.2.2, §3.1.2): it
// collects load reports from worker stubs, synthesizes hints as
// weighted moving averages, piggybacks them on periodic multicast
// beacons, spawns additional workers when a class's average queue
// crosses the threshold H (damped by D seconds), recruits overflow
// nodes for bursts and reaps them afterwards (§2.2.3), and carries the
// process-peer duty of restarting crashed front ends.
//
// All manager state is soft (§3.1.3): workers re-register when they
// see beacons from a restarted manager, so there is no crash-recovery
// protocol at all — the BASE design that replaced the original
// process-pair prototype.
package manager

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/san"
	"repro/internal/softstate"
	"repro/internal/stub"
	"repro/internal/vcache"
)

// Policy is the spawn/reap policy (§4.5). It is shared verbatim with
// the discrete-event model so both systems embody the same rules.
type Policy struct {
	// SpawnThreshold H: spawn when a class's average queue length
	// crosses it. "H maps to the greatest delay the user is willing
	// to tolerate when the system is under high load."
	SpawnThreshold float64
	// Damping D: after any spawn in a class, spawning is disabled
	// for this long so the new worker can stabilize the system.
	Damping time.Duration
	// ReapThreshold: reap an overflow worker when the class average
	// falls below it.
	ReapThreshold float64
	// MaxPerClass bounds workers per class (0 = unlimited).
	MaxPerClass int
}

// DefaultPolicy mirrors the values used in the Figure 8 experiment.
func DefaultPolicy() Policy {
	return Policy{
		SpawnThreshold: 15,
		Damping:        15 * time.Second,
		ReapThreshold:  1,
		MaxPerClass:    0,
	}
}

// ShouldSpawn applies H/D given a class's average queue, live count,
// and the time of its last spawn.
func (p Policy) ShouldSpawn(classAvg float64, count int, now, lastSpawn time.Time) bool {
	if p.MaxPerClass > 0 && count >= p.MaxPerClass {
		return false
	}
	if now.Sub(lastSpawn) < p.Damping {
		return false
	}
	return classAvg > p.SpawnThreshold
}

// ShouldReap reports whether an overflow worker should be released.
func (p Policy) ShouldReap(classAvg float64, count int, now, lastSpawn time.Time) bool {
	if count <= 1 {
		return false
	}
	if now.Sub(lastSpawn) < p.Damping {
		return false
	}
	return classAvg < p.ReapThreshold
}

// Spawner is the manager's lever on the cluster, wired up by the
// platform layer (it stands in for the per-node daemons a production
// deployment would run).
type Spawner interface {
	// SpawnWorker starts a fresh worker of class somewhere
	// appropriate; overflow selects the overflow pool.
	SpawnWorker(class string, overflow bool) (stub.WorkerInfo, error)
	// ReapWorker stops a worker process.
	ReapWorker(id string) error
	// RestartFrontEnd restarts a crashed front end (process peer).
	RestartFrontEnd(name string) error
	// RestartCache restarts a crashed cache service (process peer).
	// The content is gone — it was a cache — but the partition's
	// address and key range come back, so front ends re-absorb it
	// without reconfiguration.
	RestartCache(name string) error
	// HasDedicatedCapacity reports whether a dedicated (non-
	// overflow) node can host another worker.
	HasDedicatedCapacity() bool
}

// Config tunes the manager.
type Config struct {
	Name   string
	Node   string
	Net    *san.Network
	Policy Policy
	// BeaconInterval is the multicast beacon period.
	BeaconInterval time.Duration
	// WorkerTTL expires workers that stop reporting ("timeouts are
	// used as a backup mechanism to infer failures", §3.1.3).
	WorkerTTL time.Duration
	// FETTL expires front ends that stop heartbeating; expiry
	// triggers the process-peer restart.
	FETTL time.Duration
	// CacheTTL expires cache services that stop heartbeating; expiry
	// triggers the process-peer restart (defaults to FETTL).
	CacheTTL time.Duration
	// Spawner performs cluster actions; may be nil (no spawning).
	Spawner Spawner
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "manager"
	}
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = stub.DefaultBeaconInterval
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 5 * c.BeaconInterval
	}
	if c.FETTL <= 0 {
		c.FETTL = 6 * c.BeaconInterval
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = c.FETTL
	}
	if c.Policy == (Policy{}) {
		c.Policy = DefaultPolicy()
	}
	return c
}

// Stats is a snapshot of manager activity.
type Stats struct {
	Workers        int
	FrontEnds      int
	Caches         int
	Spawns         uint64
	Reaps          uint64
	FERestarts     uint64
	CacheRestarts  uint64
	ReportsHandled uint64
	BeaconsSent    uint64
	Registrations  uint64
}

type workerState struct {
	info stub.WorkerInfo
	avg  *softstate.MovingAverage
}

// Manager is the centralized load balancer. It implements
// cluster.Process.
type Manager struct {
	cfg Config
	ep  *san.Endpoint

	mu           sync.Mutex
	workers      *softstate.Table[*workerState]
	fes          *softstate.Table[stub.FEHeartbeat]
	caches       *softstate.Table[vcache.HelloMsg]
	desired      map[string]int // class -> replica floor (learned)
	lastSpawn    map[string]time.Time
	feRetry      []string
	feRetryCount map[string]int
	cacheRetry   []string
	cacheRetryN  map[string]int
	seq          uint64
	stats        Stats
}

// New creates a manager and eagerly registers its SAN endpoint.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:       cfg,
		workers:   softstate.NewTable[*workerState](cfg.WorkerTTL, nil),
		fes:       softstate.NewTable[stub.FEHeartbeat](cfg.FETTL, nil),
		caches:    softstate.NewTable[vcache.HelloMsg](cfg.CacheTTL, nil),
		desired:   make(map[string]int),
		lastSpawn: make(map[string]time.Time),
	}
	m.ep = cfg.Net.Endpoint(m.addr(), 4096)
	return m
}

func (m *Manager) addr() san.Addr { return san.Addr{Node: m.cfg.Node, Proc: m.cfg.Name} }

// Addr returns the manager's SAN address.
func (m *Manager) Addr() san.Addr { return m.addr() }

// ID implements cluster.Process.
func (m *Manager) ID() string { return m.cfg.Name }

// Stats returns a snapshot of counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Workers = m.workers.Len()
	st.FrontEnds = m.fes.Len()
	st.Caches = m.caches.Len()
	return st
}

// Run implements cluster.Process: serve until ctx is done.
func (m *Manager) Run(ctx context.Context) error {
	if m.ep == nil || !m.cfg.Net.Lookup(m.addr()) {
		m.ep = m.cfg.Net.Endpoint(m.addr(), 4096)
	}
	ep := m.ep
	defer ep.Close()
	ep.Join(stub.GroupControl)

	beacon := time.NewTicker(m.cfg.BeaconInterval)
	defer beacon.Stop()
	policy := time.NewTicker(m.cfg.BeaconInterval)
	defer policy.Stop()

	m.sendBeacon(ep) // announce immediately so workers register fast

	for {
		select {
		case <-ctx.Done():
			return nil
		case <-beacon.C:
			m.sendBeacon(ep)
		case <-policy.C:
			m.evaluatePolicy()
		case msg, ok := <-ep.Inbox():
			if !ok {
				return fmt.Errorf("manager: endpoint closed")
			}
			m.handle(msg)
		}
	}
}

func (m *Manager) handle(msg san.Message) {
	switch msg.Kind {
	case stub.MsgRegister:
		r, ok := msg.Body.(stub.RegisterMsg)
		if !ok {
			return
		}
		m.mu.Lock()
		ws := &workerState{info: r.Info, avg: &softstate.MovingAverage{Alpha: 0.3}}
		m.workers.Put(r.Info.ID, ws)
		m.stats.Registrations++
		// The replica floor learns the highest concurrent count per
		// class, so crashed workers get replaced.
		count := m.classCountLocked(r.Info.Class)
		if count > m.desired[r.Info.Class] {
			m.desired[r.Info.Class] = count
		}
		m.mu.Unlock()
	case stub.MsgDeregister:
		d, ok := msg.Body.(stub.DeregisterMsg)
		if !ok {
			return
		}
		m.mu.Lock()
		if ws, ok := m.workers.Get(d.ID); ok {
			class := ws.info.Class
			m.workers.Delete(d.ID)
			// A voluntary de-registration lowers the floor: this
			// worker is not coming back.
			if m.desired[class] > m.classCountLocked(class) {
				m.desired[class] = m.classCountLocked(class)
			}
		}
		m.mu.Unlock()
	case stub.MsgLoadReport:
		r, ok := msg.Body.(stub.LoadReport)
		if !ok {
			return
		}
		m.mu.Lock()
		m.stats.ReportsHandled++
		if ws, ok := m.workers.Get(r.ID); ok {
			ws.avg.Add(float64(r.QLen))
			m.workers.Put(r.ID, ws) // refresh TTL
		} else if r.Info.ID == r.ID && !r.Info.Addr.IsZero() {
			// A report from a worker we expired (e.g. marooned by a
			// SAN partition that has since healed): re-admit it. Soft
			// state rebuilds from periodic messages alone (§3.1.3).
			ws := &workerState{info: r.Info, avg: &softstate.MovingAverage{Alpha: 0.3}}
			ws.avg.Add(float64(r.QLen))
			m.workers.Put(r.ID, ws)
			m.stats.Registrations++
			if count := m.classCountLocked(r.Info.Class); count > m.desired[r.Info.Class] {
				m.desired[r.Info.Class] = count
			}
		}
		m.mu.Unlock()
	case stub.MsgFEHello:
		hb, ok := msg.Body.(stub.FEHeartbeat)
		if !ok {
			return
		}
		m.mu.Lock()
		m.fes.Put(hb.Name, hb)
		m.mu.Unlock()
	case stub.MsgSpawnReq:
		req, ok := msg.Body.(stub.SpawnReq)
		if !ok {
			return
		}
		m.trySpawn(req.Class, "front-end request")
	case vcache.MsgHello:
		hb, ok := msg.Body.(vcache.HelloMsg)
		if !ok {
			return
		}
		// Keyed by SAN address, not name: several processes may each
		// host a "cache0", and one process's heartbeats must not mask
		// the death of another's (the restart call still passes the
		// name — RestartCache acts on locally hosted partitions only).
		m.mu.Lock()
		m.caches.Put(hb.Addr.String(), hb)
		m.mu.Unlock()
	}
}

// sendBeacon multicasts the manager's existence plus the current load
// hints, and reports itself to the monitor.
func (m *Manager) sendBeacon(ep *san.Endpoint) {
	m.mu.Lock()
	m.seq++
	seq := m.seq
	snap := m.workers.Snapshot()
	workers := make([]stub.WorkerInfo, 0, len(snap))
	for _, ws := range snap {
		info := ws.info
		info.QLen = ws.avg.Value()
		workers = append(workers, info)
	}
	m.stats.BeaconsSent++
	m.mu.Unlock()
	sort.Slice(workers, func(i, j int) bool { return workers[i].ID < workers[j].ID })
	ep.Multicast(stub.GroupControl, stub.MsgBeacon, stub.Beacon{
		Manager: m.addr(),
		Seq:     seq,
		Workers: workers,
	}, 64+len(workers)*48)
	ep.Multicast(stub.GroupReports, stub.MsgMonReport, stub.StatusReport{
		Component: m.cfg.Name,
		Kind:      "manager",
		Node:      m.cfg.Node,
		Metrics: map[string]float64{
			"workers": float64(len(workers)),
			"seq":     float64(seq),
		},
	}, 96)
}

// evaluatePolicy runs expiry, replacement, spawn-on-load, reaping, and
// front-end process-peer checks.
func (m *Manager) evaluatePolicy() {
	now := time.Now()

	// 1. Expire silent workers (timeout failure inference).
	m.mu.Lock()
	m.workers.Expired()

	// Gather per-class views.
	type classView struct {
		avg      float64
		count    int
		overflow []stub.WorkerInfo
	}
	classes := make(map[string]*classView)
	for _, ws := range m.workers.Snapshot() {
		cv := classes[ws.info.Class]
		if cv == nil {
			cv = &classView{}
			classes[ws.info.Class] = cv
		}
		cv.avg += ws.avg.Value()
		cv.count++
		if ws.info.Overflow {
			cv.overflow = append(cv.overflow, ws.info)
		}
	}
	for _, cv := range classes {
		if cv.count > 0 {
			cv.avg /= float64(cv.count)
		}
	}
	desired := make(map[string]int, len(m.desired))
	for c, d := range m.desired {
		desired[c] = d
	}
	lastSpawn := make(map[string]time.Time, len(m.lastSpawn))
	for c, t := range m.lastSpawn {
		lastSpawn[c] = t
	}
	m.mu.Unlock()

	if m.cfg.Spawner == nil {
		return
	}

	// 2. Replace crashed workers below the replica floor.
	for class, want := range desired {
		cv := classes[class]
		have := 0
		if cv != nil {
			have = cv.count
		}
		for have < want {
			if _, err := m.spawn(class, "replace crashed worker"); err != nil {
				break
			}
			have++
		}
	}

	// 3. Spawn on load (threshold H, damping D).
	for class, cv := range classes {
		if m.cfg.Policy.ShouldSpawn(cv.avg, cv.count, now, lastSpawn[class]) {
			m.trySpawn(class, "load threshold")
		}
	}

	// 4. Reap idle overflow workers once the burst subsides.
	for class, cv := range classes {
		if len(cv.overflow) == 0 {
			continue
		}
		if m.cfg.Policy.ShouldReap(cv.avg, cv.count, now, lastSpawn[class]) {
			victim := cv.overflow[0]
			_ = m.ep.Send(victim.Addr, stub.MsgShutdown, nil, 16)
			if err := m.cfg.Spawner.ReapWorker(victim.ID); err == nil {
				m.mu.Lock()
				m.workers.Delete(victim.ID)
				if m.desired[class] > 0 {
					m.desired[class]--
				}
				m.stats.Reaps++
				m.mu.Unlock()
			}
		}
	}

	// 5. Front-end process peer: restart silent front ends. Failed
	// restarts are retried on subsequent ticks — a watcher keeps
	// watching until the peer is back.
	m.mu.Lock()
	goneFEs := append(m.fes.Expired(), m.feRetry...)
	m.feRetry = nil
	m.mu.Unlock()
	m.restartSweep(goneFEs, &m.feRetry, &m.feRetryCount,
		m.cfg.Spawner.RestartFrontEnd, &m.stats.FERestarts)

	// 6. Cache process peer: same watch-until-back discipline for
	// silent cache services. Cache state is soft twice over — the
	// content was always discardable, and the inventory rebuilds from
	// heartbeats alone. Expired keys are "node/proc" addresses; the
	// restart duty wants the service name (the proc half).
	m.mu.Lock()
	goneCaches := m.caches.Expired()
	for i, key := range goneCaches {
		if slash := strings.LastIndex(key, "/"); slash >= 0 {
			goneCaches[i] = key[slash+1:]
		}
	}
	goneCaches = append(goneCaches, m.cacheRetry...)
	m.cacheRetry = nil
	m.mu.Unlock()
	m.restartSweep(goneCaches, &m.cacheRetry, &m.cacheRetryN,
		m.cfg.Spawner.RestartCache, &m.stats.CacheRestarts)
}

// restartSweep runs one process-peer restart pass with the shared
// retry discipline: a success counts in stat and clears the retry
// budget; a failure re-queues the name for the next tick, up to 10
// attempts. retry/counts/stat are fields of m guarded by m.mu.
func (m *Manager) restartSweep(gone []string, retry *[]string, counts *map[string]int, restart func(string) error, stat *uint64) {
	for _, name := range gone {
		if err := restart(name); err == nil {
			m.mu.Lock()
			*stat++
			delete(*counts, name)
			m.mu.Unlock()
		} else {
			m.mu.Lock()
			if *counts == nil {
				*counts = make(map[string]int)
			}
			(*counts)[name]++
			if (*counts)[name] < 10 {
				*retry = append(*retry, name)
			} else {
				delete(*counts, name)
			}
			m.mu.Unlock()
		}
	}
}

// trySpawn spawns a worker of class if the damping window allows.
func (m *Manager) trySpawn(class, reason string) {
	m.mu.Lock()
	last := m.lastSpawn[class]
	m.mu.Unlock()
	if time.Since(last) < m.cfg.Policy.Damping {
		return
	}
	_, _ = m.spawn(class, reason)
}

// spawn starts a worker, preferring dedicated capacity and falling
// back to the overflow pool (§2.2.3).
func (m *Manager) spawn(class, reason string) (stub.WorkerInfo, error) {
	if m.cfg.Spawner == nil {
		return stub.WorkerInfo{}, fmt.Errorf("manager: no spawner configured")
	}
	overflow := !m.cfg.Spawner.HasDedicatedCapacity()
	info, err := m.cfg.Spawner.SpawnWorker(class, overflow)
	if err != nil {
		return stub.WorkerInfo{}, err
	}
	m.mu.Lock()
	m.lastSpawn[class] = time.Now()
	m.stats.Spawns++
	if c := m.classCountLocked(class) + 1; c > m.desired[class] {
		m.desired[class] = c
	}
	m.mu.Unlock()
	_ = reason // reasons surface via the monitor's spawn metric
	return info, nil
}

func (m *Manager) classCountLocked(class string) int {
	n := 0
	for _, ws := range m.workers.Snapshot() {
		if ws.info.Class == class {
			n++
		}
	}
	return n
}

// ClassAverages exposes per-class average queue lengths (used by
// experiments and the monitor).
func (m *Manager) ClassAverages() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, ws := range m.workers.Snapshot() {
		sums[ws.info.Class] += ws.avg.Value()
		counts[ws.info.Class]++
	}
	out := make(map[string]float64, len(sums))
	for c, s := range sums {
		out[c] = s / float64(counts[c])
	}
	return out
}
