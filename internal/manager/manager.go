// Package manager implements the SNS layer's centralized,
// fault-tolerant load-balancing manager (paper §2.2.2, §3.1.2): it
// collects load reports from worker stubs, synthesizes hints as
// weighted moving averages, piggybacks them on periodic multicast
// beacons, spawns additional workers when a class's average queue
// crosses the threshold H (damped by D seconds), recruits overflow
// nodes for bursts and reaps them afterwards (§2.2.3), and carries the
// process-peer duty of restarting crashed front ends.
//
// All manager state is soft (§3.1.3): workers re-register when they
// see beacons from a restarted manager, so there is no crash-recovery
// protocol at all — the BASE design that replaced the original
// process-pair prototype.
//
// # Replication, epochs, and standby mode
//
// The manager role is replicated: N Manager instances share the
// control group, but exactly one — the primary — beacons, runs policy
// sweeps, and delegates restarts. The rest run in standby mode: the
// full receive loop stays live (they mirror the worker inventory and
// replica floors from the primary's beacons and ingest the multicast
// front-end/cache/supervisor heartbeats directly), but every output is
// suppressed. Because all of that state is BASE soft state, a standby
// is always at most one beacon interval behind the primary, which is
// the whole failover story: there is no state transfer and no recovery
// protocol.
//
// Election is by heartbeat rank: when a standby hears no primary
// beacon for ElectionTimeout plus a rank-proportional stagger, it
// increments the election epoch, declares itself primary, and beacons
// immediately. Beacons carry the epoch; every listener (stubs,
// supervisors, rival managers) ignores beacons older than the newest
// epoch it has seen, and supervisors refuse commands stamped with a
// deposed epoch — so a primary that was partitioned rather than dead
// can never double-restart a component. Two simultaneous claims at the
// same epoch resolve by lowest address: the loser steps back to
// standby on the winner's next beacon.
package manager

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/san"
	"repro/internal/softstate"
	"repro/internal/stub"
	"repro/internal/supervisor"
	"repro/internal/vcache"
)

// Policy is the spawn/reap policy (§4.5). It is shared verbatim with
// the discrete-event model so both systems embody the same rules.
type Policy struct {
	// SpawnThreshold H: spawn when a class's average queue length
	// crosses it. "H maps to the greatest delay the user is willing
	// to tolerate when the system is under high load."
	SpawnThreshold float64
	// Damping D: after any spawn in a class, spawning is disabled
	// for this long so the new worker can stabilize the system.
	Damping time.Duration
	// ReapThreshold: reap an overflow worker when the class average
	// falls below it.
	ReapThreshold float64
	// MaxPerClass bounds workers per class (0 = unlimited).
	MaxPerClass int
}

// DefaultPolicy mirrors the values used in the Figure 8 experiment.
func DefaultPolicy() Policy {
	return Policy{
		SpawnThreshold: 15,
		Damping:        15 * time.Second,
		ReapThreshold:  1,
		MaxPerClass:    0,
	}
}

// ShouldSpawn applies H/D given a class's average queue, live count,
// and the time of its last spawn.
func (p Policy) ShouldSpawn(classAvg float64, count int, now, lastSpawn time.Time) bool {
	if p.MaxPerClass > 0 && count >= p.MaxPerClass {
		return false
	}
	if now.Sub(lastSpawn) < p.Damping {
		return false
	}
	return classAvg > p.SpawnThreshold
}

// ShouldReap reports whether an overflow worker should be released.
func (p Policy) ShouldReap(classAvg float64, count int, now, lastSpawn time.Time) bool {
	if count <= 1 {
		return false
	}
	if now.Sub(lastSpawn) < p.Damping {
		return false
	}
	return classAvg < p.ReapThreshold
}

// Spawner is the manager's lever on the cluster, wired up by the
// platform layer (it stands in for the per-node daemons a production
// deployment would run).
type Spawner interface {
	// SpawnWorker starts a fresh worker of class somewhere
	// appropriate; overflow selects the overflow pool.
	SpawnWorker(class string, overflow bool) (stub.WorkerInfo, error)
	// ReapWorker stops a worker process.
	ReapWorker(id string) error
	// RestartFrontEnd restarts a crashed front end (process peer).
	RestartFrontEnd(name string) error
	// RestartCache restarts a crashed cache service (process peer).
	// The content is gone — it was a cache — but the partition's
	// address and key range come back, so front ends re-absorb it
	// without reconfiguration.
	RestartCache(name string) error
	// HasDedicatedCapacity reports whether a dedicated (non-
	// overflow) node can host another worker.
	HasDedicatedCapacity() bool
}

// Config tunes the manager.
type Config struct {
	Name   string
	Node   string
	Net    *san.Network
	Policy Policy
	// BeaconInterval is the multicast beacon period.
	BeaconInterval time.Duration
	// WorkerTTL expires workers that stop reporting ("timeouts are
	// used as a backup mechanism to infer failures", §3.1.3).
	WorkerTTL time.Duration
	// FETTL expires front ends that stop heartbeating; expiry
	// triggers the process-peer restart.
	FETTL time.Duration
	// CacheTTL expires cache services that stop heartbeating; expiry
	// triggers the process-peer restart (defaults to FETTL).
	CacheTTL time.Duration
	// SupTTL expires supervisors that stop heartbeating (defaults to
	// FETTL). An expired supervisor simply drops out of delegation
	// resolution; its own process respawns it.
	SupTTL time.Duration
	// Prefix is the node-name prefix of the process hosting this
	// manager. A dead component whose owning supervisor advertises a
	// different prefix lives in another OS process: its restart is
	// delegated to that supervisor over the SAN instead of attempted
	// (and failed) locally. Components behind the manager's own prefix
	// keep the direct local restart path — same process, no SAN hop.
	Prefix string
	// CmdTimeout bounds one delegated supervisor command (default 2s).
	CmdTimeout time.Duration
	// Spawner performs cluster actions; may be nil (no spawning).
	Spawner Spawner
	// Rank is this replica's election rank. It staggers takeover
	// timing (rank r waits r extra beacon intervals beyond
	// ElectionTimeout) so replicas claim the primacy one at a time
	// instead of racing.
	Rank int
	// Standby starts the replica in standby mode: full receive loop,
	// no beacons, no policy sweeps, no delegation — until it wins an
	// election. False (the default) starts as the acting primary at
	// epoch 1, which keeps a single-manager deployment's behavior
	// identical to the pre-replication code.
	Standby bool
	// ElectionTimeout is how long a standby tolerates primary silence
	// before claiming the primacy (plus the rank stagger). Default
	// 3 beacon intervals.
	ElectionTimeout time.Duration
	// InitialEpoch seeds the replica's election epoch. A respawned
	// replica re-enters the cluster already knowing roughly where the
	// epoch stands, so its eventual claim outbids the regime it died
	// under instead of a long-deposed one. A non-standby replica
	// claims InitialEpoch+1 immediately. Zero is the natural cold
	// start (a fresh primary claims epoch 1).
	InitialEpoch uint64
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "manager"
	}
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = stub.DefaultBeaconInterval
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 5 * c.BeaconInterval
	}
	if c.FETTL <= 0 {
		c.FETTL = 6 * c.BeaconInterval
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = c.FETTL
	}
	if c.SupTTL <= 0 {
		c.SupTTL = c.FETTL
	}
	if c.CmdTimeout <= 0 {
		c.CmdTimeout = 2 * time.Second
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 3 * c.BeaconInterval
	}
	if c.Policy == (Policy{}) {
		c.Policy = DefaultPolicy()
	}
	return c
}

// Stats is a snapshot of manager activity.
type Stats struct {
	Workers        int
	FrontEnds      int
	Caches         int
	Supervisors    int
	Spawns         uint64
	Reaps          uint64
	FERestarts     uint64
	CacheRestarts  uint64
	ReportsHandled uint64
	BeaconsSent    uint64
	Registrations  uint64
	// Delegated counts process-peer actions executed by a remote
	// supervisor on this manager's behalf; DelegateFails counts
	// delegation attempts that timed out or were refused (each is
	// retried, with fallback to the local spawner).
	Delegated      uint64
	DelegateFails  uint64
	DelegatedSpawn uint64
	// Election state: whether this replica is the acting primary, the
	// epoch it believes is current, and how many times it took over or
	// stepped down.
	Primary   bool
	Epoch     uint64
	Takeovers uint64
	StepDowns uint64
}

type workerState struct {
	info stub.WorkerInfo
	avg  *softstate.MovingAverage
}

// peerTarget identifies one dead component awaiting its process-peer
// restart: the name the restart duty acts on, plus the node whose
// prefix resolves the owning supervisor.
type peerTarget struct {
	name string
	node string
}

// Manager is the centralized load balancer. It implements
// cluster.Process.
type Manager struct {
	cfg Config
	ep  *san.Endpoint

	mu           sync.Mutex
	workers      *softstate.Table[*workerState]
	fes          *softstate.Table[stub.FEHeartbeat] // keyed by SAN address
	caches       *softstate.Table[vcache.HelloMsg]  // keyed by SAN address
	sups         *softstate.Table[supervisor.HelloMsg]
	desired      map[string]int // class -> replica floor (learned)
	lastSpawn    map[string]time.Time
	feRetry      []peerTarget
	feRetryCount map[string]int
	cacheRetry   []peerTarget
	cacheRetryN  map[string]int
	inflight     map[string]bool   // delegated commands awaiting an ack
	cmdIDs       map[string]uint64 // incident key -> command id (reused on retry)
	nextCmdID    uint64
	inflightSp   map[string]int // class -> delegated respawns in flight
	seq          uint64
	stats        Stats

	// Election state (guarded by mu).
	primary    bool
	epoch      uint64    // current election epoch (stamped on beacons/commands)
	curPrimary san.Addr  // last observed primary (self when primary)
	lastClaim  time.Time // when a rival primary's beacon was last heard
}

// New creates a manager and eagerly registers its SAN endpoint.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:        cfg,
		workers:    softstate.NewTable[*workerState](cfg.WorkerTTL, nil),
		fes:        softstate.NewTable[stub.FEHeartbeat](cfg.FETTL, nil),
		caches:     softstate.NewTable[vcache.HelloMsg](cfg.CacheTTL, nil),
		sups:       softstate.NewTable[supervisor.HelloMsg](cfg.SupTTL, nil),
		desired:    make(map[string]int),
		lastSpawn:  make(map[string]time.Time),
		inflight:   make(map[string]bool),
		cmdIDs:     make(map[string]uint64),
		inflightSp: make(map[string]int),
	}
	m.epoch = cfg.InitialEpoch
	if !cfg.Standby {
		m.primary = true
		m.epoch++
		m.curPrimary = m.addr()
	}
	m.lastClaim = time.Now()
	m.ep = cfg.Net.Endpoint(m.addr(), 4096)
	return m
}

func (m *Manager) addr() san.Addr { return san.Addr{Node: m.cfg.Node, Proc: m.cfg.Name} }

// Addr returns the manager's SAN address.
func (m *Manager) Addr() san.Addr { return m.addr() }

// ID implements cluster.Process.
func (m *Manager) ID() string { return m.cfg.Name }

// Stats returns a snapshot of counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Workers = m.workers.Len()
	st.FrontEnds = m.fes.Len()
	st.Caches = m.caches.Len()
	st.Supervisors = m.sups.Len()
	st.Primary = m.primary
	st.Epoch = m.epoch
	return st
}

// IsPrimary reports whether this replica is the acting primary.
func (m *Manager) IsPrimary() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.primary
}

// Epoch returns the election epoch this replica believes is current.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Run implements cluster.Process: serve until ctx is done.
func (m *Manager) Run(ctx context.Context) error {
	if m.ep == nil || !m.cfg.Net.Lookup(m.addr()) {
		m.ep = m.cfg.Net.Endpoint(m.addr(), 4096)
	}
	ep := m.ep
	defer ep.Close()
	ep.Join(stub.GroupControl)

	beacon := time.NewTicker(m.cfg.BeaconInterval)
	defer beacon.Stop()
	policy := time.NewTicker(m.cfg.BeaconInterval)
	defer policy.Stop()

	m.mu.Lock()
	m.lastClaim = time.Now() // fresh grace window per Run
	primary := m.primary
	m.mu.Unlock()
	if primary {
		m.sendBeacon(ep) // announce immediately so workers register fast
	}

	for {
		select {
		case <-ctx.Done():
			return nil
		case <-beacon.C:
			if m.IsPrimary() {
				m.sendBeacon(ep)
			} else {
				m.maybeTakeover(ep)
			}
		case <-policy.C:
			if m.IsPrimary() {
				m.evaluatePolicy()
			}
		case msg, ok := <-ep.Inbox():
			if !ok {
				return fmt.Errorf("manager: endpoint closed")
			}
			m.handle(msg)
		}
	}
}

// maybeTakeover is the standby half of the election: primary silence
// past ElectionTimeout plus this replica's rank stagger means the
// primary is gone — claim the next epoch and beacon immediately, so
// every stub, supervisor, and rival replica re-anchors within one
// beacon interval.
func (m *Manager) maybeTakeover(ep *san.Endpoint) {
	m.mu.Lock()
	if m.primary {
		m.mu.Unlock()
		return
	}
	wait := m.cfg.ElectionTimeout + time.Duration(m.cfg.Rank)*m.cfg.BeaconInterval
	if time.Since(m.lastClaim) < wait {
		m.mu.Unlock()
		return
	}
	m.epoch++
	m.primary = true
	m.curPrimary = m.addr()
	m.stats.Takeovers++
	m.mu.Unlock()
	m.sendBeacon(ep)
}

// observeBeacon processes a rival manager replica's beacon: adopt a
// newer epoch (stepping down if this replica was primary), resolve an
// equal-epoch split claim by lowest address, and — while in standby —
// mirror the primary's worker inventory and replica floors so a later
// takeover starts from state at most one beacon interval old.
func (m *Manager) observeBeacon(b stub.Beacon) {
	if b.Manager == m.addr() {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if b.Epoch < m.epoch {
		return // deposed primary still beaconing; ignore
	}
	if b.Epoch == m.epoch && m.primary {
		// Split claim at the same epoch: lowest address wins, the
		// other steps back to standby.
		if m.addr().String() < b.Manager.String() {
			return
		}
		m.primary = false
		m.stats.StepDowns++
	} else if b.Epoch > m.epoch && m.primary {
		m.primary = false
		m.stats.StepDowns++
	}
	m.epoch = b.Epoch
	m.curPrimary = b.Manager
	m.lastClaim = time.Now()

	// Standby mirror: the primary's beacon is the ground truth for the
	// worker inventory and the per-class replica floors. Load averages
	// ride along too, so a fresh primary's very first policy sweep
	// balances with current hints instead of zeros.
	live := make(map[string]bool, len(b.Workers))
	for _, wi := range b.Workers {
		live[wi.ID] = true
		if ws, ok := m.workers.Get(wi.ID); ok {
			ws.info = wi
			m.workers.Put(wi.ID, ws)
		} else {
			ws := &workerState{info: wi, avg: &softstate.MovingAverage{Alpha: 0.3}}
			ws.avg.Add(wi.QLen)
			m.workers.Put(wi.ID, ws)
		}
	}
	for id := range m.workers.Snapshot() {
		if !live[id] {
			m.workers.Delete(id)
		}
	}
	m.desired = make(map[string]int, len(b.Floors))
	for class, f := range b.Floors {
		m.desired[class] = f
	}
}

func (m *Manager) handle(msg san.Message) {
	if msg.Reply {
		// Acks from delegated supervisor commands route back into
		// their pending Calls.
		m.ep.DeliverReply(msg)
		return
	}
	switch msg.Kind {
	case stub.MsgBeacon:
		b, ok := msg.Body.(stub.Beacon)
		if !ok {
			return
		}
		m.observeBeacon(b)
	case stub.MsgRegister:
		r, ok := msg.Body.(stub.RegisterMsg)
		if !ok {
			return
		}
		m.mu.Lock()
		ws := &workerState{info: r.Info, avg: &softstate.MovingAverage{Alpha: 0.3}}
		m.workers.Put(r.Info.ID, ws)
		m.stats.Registrations++
		// The replica floor learns the highest concurrent count per
		// class, so crashed workers get replaced.
		count := m.classCountLocked(r.Info.Class)
		if count > m.desired[r.Info.Class] {
			m.desired[r.Info.Class] = count
		}
		m.mu.Unlock()
	case stub.MsgDeregister:
		d, ok := msg.Body.(stub.DeregisterMsg)
		if !ok {
			return
		}
		m.mu.Lock()
		if ws, ok := m.workers.Get(d.ID); ok {
			class := ws.info.Class
			m.workers.Delete(d.ID)
			// A voluntary de-registration lowers the floor: this
			// worker is not coming back.
			if m.desired[class] > m.classCountLocked(class) {
				m.desired[class] = m.classCountLocked(class)
			}
		}
		m.mu.Unlock()
	case stub.MsgLoadReport:
		r, ok := msg.Body.(stub.LoadReport)
		if !ok {
			return
		}
		m.mu.Lock()
		m.stats.ReportsHandled++
		if ws, ok := m.workers.Get(r.ID); ok {
			ws.avg.Add(float64(r.QLen))
			m.workers.Put(r.ID, ws) // refresh TTL
		} else if r.Info.ID == r.ID && !r.Info.Addr.IsZero() {
			// A report from a worker we expired (e.g. marooned by a
			// SAN partition that has since healed): re-admit it. Soft
			// state rebuilds from periodic messages alone (§3.1.3).
			ws := &workerState{info: r.Info, avg: &softstate.MovingAverage{Alpha: 0.3}}
			ws.avg.Add(float64(r.QLen))
			m.workers.Put(r.ID, ws)
			m.stats.Registrations++
			if count := m.classCountLocked(r.Info.Class); count > m.desired[r.Info.Class] {
				m.desired[r.Info.Class] = count
			}
		}
		m.mu.Unlock()
	case stub.MsgFEHello:
		hb, ok := msg.Body.(stub.FEHeartbeat)
		if !ok {
			return
		}
		// Keyed by SAN address, not bare name, so replicated roles
		// across processes stop interleaving: two processes may each
		// host an "fe0", and one's heartbeats must not mask the death
		// of the other's (mirrors the cache table below). The first
		// heartbeat after a restart also discharges the follow-through
		// entry planted when the restart was issued.
		m.mu.Lock()
		m.fes.Delete(provisionalKey(hb.Name))
		m.fes.Put(hb.Addr.String(), hb)
		m.mu.Unlock()
	case stub.MsgSpawnReq:
		req, ok := msg.Body.(stub.SpawnReq)
		if !ok {
			return
		}
		m.trySpawn(req.Class, "front-end request")
	case vcache.MsgHello:
		hb, ok := msg.Body.(vcache.HelloMsg)
		if !ok {
			return
		}
		// Keyed by SAN address, not name: several processes may each
		// host a "cache0", and one process's heartbeats must not mask
		// the death of another's (the restart call still passes the
		// name — RestartCache acts on locally hosted partitions only).
		m.mu.Lock()
		m.caches.Delete(provisionalKey(hb.Name))
		m.caches.Put(hb.Addr.String(), hb)
		m.mu.Unlock()
	case supervisor.MsgHello:
		hb, ok := msg.Body.(supervisor.HelloMsg)
		if !ok {
			return
		}
		m.mu.Lock()
		m.sups.Put(hb.Addr.String(), hb)
		m.mu.Unlock()
	}
}

// sendBeacon multicasts the manager's existence plus the current load
// hints, and reports itself to the monitor.
func (m *Manager) sendBeacon(ep *san.Endpoint) {
	m.mu.Lock()
	m.seq++
	seq := m.seq
	epoch := m.epoch
	snap := m.workers.Snapshot()
	workers := make([]stub.WorkerInfo, 0, len(snap))
	for _, ws := range snap {
		info := ws.info
		info.QLen = ws.avg.Value()
		workers = append(workers, info)
	}
	var floors map[string]int
	if len(m.desired) > 0 {
		floors = make(map[string]int, len(m.desired))
		for class, f := range m.desired {
			if f > 0 {
				floors[class] = f
			}
		}
	}
	m.stats.BeaconsSent++
	m.mu.Unlock()
	sort.Slice(workers, func(i, j int) bool { return workers[i].ID < workers[j].ID })
	ep.Multicast(stub.GroupControl, stub.MsgBeacon, stub.Beacon{
		Manager: m.addr(),
		Seq:     seq,
		Epoch:   epoch,
		Workers: workers,
		Floors:  floors,
	}, 64+len(workers)*48)
	ep.Multicast(stub.GroupReports, stub.MsgMonReport, stub.StatusReport{
		Component: m.cfg.Name,
		Kind:      "manager",
		Node:      m.cfg.Node,
		Metrics: map[string]float64{
			"workers": float64(len(workers)),
			"seq":     float64(seq),
		},
	}, 96)
}

// evaluatePolicy runs expiry, replacement, spawn-on-load, reaping, and
// front-end process-peer checks.
func (m *Manager) evaluatePolicy() {
	now := time.Now()

	// 1. Expire silent workers (timeout failure inference). The
	// expired entries keep their info: a worker whose node belongs to
	// another OS process is respawned there, through that process's
	// supervisor, so capacity stays where the operator placed it.
	m.mu.Lock()
	expiredWorkers := m.workers.ExpiredEntries()

	// Gather per-class views.
	type classView struct {
		avg      float64
		count    int
		overflow []stub.WorkerInfo
	}
	classes := make(map[string]*classView)
	for _, ws := range m.workers.Snapshot() {
		cv := classes[ws.info.Class]
		if cv == nil {
			cv = &classView{}
			classes[ws.info.Class] = cv
		}
		cv.avg += ws.avg.Value()
		cv.count++
		if ws.info.Overflow {
			cv.overflow = append(cv.overflow, ws.info)
		}
	}
	for _, cv := range classes {
		if cv.count > 0 {
			cv.avg /= float64(cv.count)
		}
	}
	desired := make(map[string]int, len(m.desired))
	for c, d := range m.desired {
		desired[c] = d
	}
	lastSpawn := make(map[string]time.Time, len(m.lastSpawn))
	for c, t := range m.lastSpawn {
		lastSpawn[c] = t
	}
	inflightSp := make(map[string]int, len(m.inflightSp))
	for c, n := range m.inflightSp {
		inflightSp[c] = n
	}
	m.mu.Unlock()

	if m.cfg.Spawner == nil {
		return
	}

	// 2a. Delegate respawns of workers that died in another process to
	// that process's supervisor; while a delegation is in flight the
	// floor loop below leaves its slot alone (no double spawn). A
	// failed delegation simply clears the slot — the floor deficit is
	// then made up locally on the next tick.
	for id, ws := range expiredWorkers {
		sup, remote := m.remoteSupervisorFor(ws.info.Node)
		if !remote {
			continue
		}
		key := "respawn:" + id
		class := ws.info.Class
		m.mu.Lock()
		if m.inflight[key] {
			m.mu.Unlock()
			continue
		}
		m.inflight[key] = true
		m.inflightSp[class]++
		inflightSp[class]++
		cmdID := m.commandIDLocked(key)
		m.mu.Unlock()
		go m.delegateSpawn(key, class, cmdID, sup)
	}

	// 2b. Replace crashed workers below the replica floor.
	for class, want := range desired {
		cv := classes[class]
		have := inflightSp[class]
		if cv != nil {
			have += cv.count
		}
		for have < want {
			if _, err := m.spawn(class, "replace crashed worker"); err != nil {
				break
			}
			have++
		}
	}

	// 3. Spawn on load (threshold H, damping D).
	for class, cv := range classes {
		if m.cfg.Policy.ShouldSpawn(cv.avg, cv.count, now, lastSpawn[class]) {
			m.trySpawn(class, "load threshold")
		}
	}

	// 4. Reap idle overflow workers once the burst subsides.
	for class, cv := range classes {
		if len(cv.overflow) == 0 {
			continue
		}
		if m.cfg.Policy.ShouldReap(cv.avg, cv.count, now, lastSpawn[class]) {
			victim := cv.overflow[0]
			_ = m.ep.Send(victim.Addr, stub.MsgShutdown, nil, 16)
			if err := m.cfg.Spawner.ReapWorker(victim.ID); err == nil {
				m.mu.Lock()
				m.workers.Delete(victim.ID)
				if m.desired[class] > 0 {
					m.desired[class]--
				}
				m.stats.Reaps++
				m.mu.Unlock()
			}
		}
	}

	// 5. Front-end process peer: restart silent front ends. Failed
	// restarts are retried on subsequent ticks — a watcher keeps
	// watching until the peer is back.
	m.mu.Lock()
	goneFEs := append(feTargets(m.fes.ExpiredEntries()), m.feRetry...)
	m.feRetry = nil
	m.mu.Unlock()
	m.restartSweep(goneFEs, supervisor.OpRestartFrontEnd, &m.feRetry, &m.feRetryCount,
		m.cfg.Spawner.RestartFrontEnd, &m.stats.FERestarts, m.followFE)

	// 6. Cache process peer: same watch-until-back discipline for
	// silent cache services. Cache state is soft twice over — the
	// content was always discardable, and the inventory rebuilds from
	// heartbeats alone.
	m.mu.Lock()
	goneCaches := append(cacheTargets(m.caches.ExpiredEntries()), m.cacheRetry...)
	m.cacheRetry = nil
	m.mu.Unlock()
	m.restartSweep(goneCaches, supervisor.OpRestartCache, &m.cacheRetry, &m.cacheRetryN,
		m.cfg.Spawner.RestartCache, &m.stats.CacheRestarts, m.followCache)
}

// provisionalKey builds the follow-through table key for a component a
// restart was just issued for. It can never collide with a heartbeat
// key — those are "node/proc" SAN addresses.
func provisionalKey(name string) string { return "pending:" + name }

// followFE/followCache plant the restart follow-through: a successful
// restart inserts a provisional entry under the component's name that
// only the restarted instance's first real heartbeat discharges. If
// the component dies again before it ever heartbeats — or the restart
// silently produced nothing — the provisional entry expires like any
// silent peer and the watcher fires again. Without this, a component
// killed in the gap between restart and first heartbeat vanishes from
// the soft state entirely and nobody ever restarts it.
func (m *Manager) followFE(t peerTarget) {
	m.mu.Lock()
	m.fes.Put(provisionalKey(t.name), stub.FEHeartbeat{Name: t.name, Node: t.node})
	m.mu.Unlock()
}

func (m *Manager) followCache(t peerTarget) {
	m.mu.Lock()
	m.caches.Put(provisionalKey(t.name), vcache.HelloMsg{Name: t.name, Node: t.node})
	m.mu.Unlock()
}

// feTargets/cacheTargets turn expired heartbeat entries into restart
// targets: the component name the restart duty acts on, plus the node
// that resolves the owning supervisor.
func feTargets(gone map[string]stub.FEHeartbeat) []peerTarget {
	out := make([]peerTarget, 0, len(gone))
	for _, hb := range gone {
		out = append(out, peerTarget{name: hb.Name, node: hb.Node})
	}
	return out
}

func cacheTargets(gone map[string]vcache.HelloMsg) []peerTarget {
	out := make([]peerTarget, 0, len(gone))
	for _, hb := range gone {
		out = append(out, peerTarget{name: hb.Name, node: hb.Node})
	}
	return out
}

// restartSweep runs one process-peer restart pass with the shared
// retry discipline: a success counts in stat and clears the retry
// budget; a failure re-queues the target for the next tick, up to 10
// attempts. Targets owned by a supervisor in another OS process are
// delegated over the SAN (asynchronously — the ack arrives on the
// manager's own inbox, so waiting inline would deadlock the receive
// loop); everything else takes the direct local path.
// retry/counts/stat are fields of m guarded by m.mu.
func (m *Manager) restartSweep(gone []peerTarget, op string, retry *[]peerTarget, counts *map[string]int, restart func(string) error, stat *uint64, follow func(peerTarget)) {
	for _, t := range gone {
		key := op + ":" + t.name
		sup, remote := m.remoteSupervisorFor(t.node)
		if remote {
			m.mu.Lock()
			if m.inflight[key] {
				m.mu.Unlock()
				continue // command already in flight; the ack decides
			}
			m.inflight[key] = true
			cmdID := m.commandIDLocked(key)
			m.mu.Unlock()
			go m.delegateRestart(key, op, t, cmdID, sup, retry, counts, restart, stat, follow)
			continue
		}
		if err := restart(t.name); err == nil {
			m.mu.Lock()
			*stat++
			delete(*counts, t.name)
			m.mu.Unlock()
			follow(t)
		} else {
			m.recordRestartFailure(key, t, retry, counts)
		}
	}
}

// recordRestartFailure applies the shared retry budget. When the
// budget exhausts, the incident's command id dies with it — a later,
// fresh incident for the same component must mint a new id, not be
// answered from a supervisor's cache of this one.
func (m *Manager) recordRestartFailure(key string, t peerTarget, retry *[]peerTarget, counts *map[string]int) {
	m.mu.Lock()
	if *counts == nil {
		*counts = make(map[string]int)
	}
	(*counts)[t.name]++
	if (*counts)[t.name] < 10 {
		*retry = append(*retry, t)
	} else {
		delete(*counts, t.name)
		delete(m.cmdIDs, key)
	}
	m.mu.Unlock()
}

// commandIDLocked returns the command id for an incident, minting one
// on first use. Retries of the same incident reuse the id, so a
// supervisor that executed the command but whose ack was lost answers
// the retry from its result cache instead of acting twice.
func (m *Manager) commandIDLocked(key string) uint64 {
	if id := m.cmdIDs[key]; id != 0 {
		return id
	}
	m.nextCmdID++
	m.cmdIDs[key] = m.nextCmdID
	return m.nextCmdID
}

// delegateRestart sends one restart command to the owning supervisor
// and applies the result: success counts like a local restart; failure
// falls back to the local spawner (covering components that are in
// fact hosted here), then to the shared retry budget.
func (m *Manager) delegateRestart(key, op string, t peerTarget, cmdID uint64, sup supervisor.HelloMsg, retry *[]peerTarget, counts *map[string]int, restart func(string) error, stat *uint64, follow func(peerTarget)) {
	ack, err := m.invokeSupervisor(sup, supervisor.Command{
		ID: cmdID, Origin: m.addr().String(), Op: op, Target: t.name,
	})
	delegated := err == nil && ack.OK
	success := delegated
	if !success {
		m.mu.Lock()
		m.stats.DelegateFails++
		m.mu.Unlock()
		// Local fallback: if the component is actually hosted in this
		// process (stale supervisor table, or a supervisor that died
		// mid-restart of a local component), the direct path still
		// works; otherwise it errors instantly and the retry budget
		// re-delegates on the next tick. A replica that was deposed
		// while the command was in flight (the refusal above may BE the
		// stale-epoch fence) must not touch anything: the duty belongs
		// to the new primary now.
		if m.IsPrimary() {
			success = restart(t.name) == nil
		}
	}
	m.mu.Lock()
	delete(m.inflight, key)
	m.mu.Unlock()
	if success {
		m.mu.Lock()
		*stat++
		if delegated {
			m.stats.Delegated++
		}
		delete(*counts, t.name)
		delete(m.cmdIDs, key)
		m.mu.Unlock()
		follow(t)
		return
	}
	m.recordRestartFailure(key, t, retry, counts)
}

// delegateSpawn asks a remote supervisor to start a replacement worker
// of class. Failure is absorbed: the replica floor makes the deficit
// up locally on the next policy tick.
func (m *Manager) delegateSpawn(key, class string, cmdID uint64, sup supervisor.HelloMsg) {
	ack, err := m.invokeSupervisor(sup, supervisor.Command{
		ID: cmdID, Origin: m.addr().String(), Op: supervisor.OpSpawnWorker, Target: class,
	})
	ok := err == nil && ack.OK
	m.mu.Lock()
	delete(m.inflight, key)
	if m.inflightSp[class] > 0 {
		m.inflightSp[class]--
	}
	if m.inflightSp[class] == 0 {
		delete(m.inflightSp, class)
	}
	delete(m.cmdIDs, key)
	if ok {
		m.lastSpawn[class] = time.Now()
		m.stats.Spawns++
		m.stats.DelegatedSpawn++
	} else {
		m.stats.DelegateFails++
	}
	m.mu.Unlock()
}

// invokeSupervisor performs one supervisor command Call with the
// configured timeout. The manager's receive loop routes the ack back
// into the pending call. Commands are stamped with the issuing epoch:
// a supervisor that has seen a newer one refuses the command, which is
// how a deposed primary's still-in-flight delegations die harmlessly.
func (m *Manager) invokeSupervisor(sup supervisor.HelloMsg, cmd supervisor.Command) (supervisor.Ack, error) {
	if cmd.Epoch == 0 {
		m.mu.Lock()
		cmd.Epoch = m.epoch
		m.mu.Unlock()
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.CmdTimeout)
	defer cancel()
	resp, err := m.ep.Call(ctx, sup.Addr, supervisor.MsgCmd, cmd, 64)
	if err != nil {
		return supervisor.Ack{}, err
	}
	ack, ok := resp.Body.(supervisor.Ack)
	if !ok {
		return supervisor.Ack{}, fmt.Errorf("manager: malformed supervisor ack %T", resp.Body)
	}
	return ack, nil
}

// SupervisorFor resolves the supervisor owning a node by longest
// advertised prefix (supervisor.Owner) — the RACS-style ownership
// rule: each process's supervisor governs exactly the node names
// carrying its prefix.
func (m *Manager) SupervisorFor(node string) (supervisor.HelloMsg, bool) {
	return supervisor.Owner(node, m.sups.Snapshot())
}

// remoteSupervisorFor resolves node ownership and reports whether the
// owner lives in another OS process (its advertised prefix differs
// from this manager's own). Components in the manager's own process
// keep the direct in-process restart path: delegating to a supervisor
// one function call away through a SAN round trip would only add a
// failure mode.
func (m *Manager) remoteSupervisorFor(node string) (supervisor.HelloMsg, bool) {
	sup, ok := m.SupervisorFor(node)
	return sup, ok && sup.Prefix != m.cfg.Prefix
}

// Supervisors returns the live supervisor table, sorted by address —
// operator tooling and selftests resolve delegation targets from it.
func (m *Manager) Supervisors() []supervisor.HelloMsg {
	snap := m.sups.Snapshot()
	out := make([]supervisor.HelloMsg, 0, len(snap))
	for _, hb := range snap {
		out = append(out, hb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.String() < out[j].Addr.String() })
	return out
}

// trySpawn spawns a worker of class if the damping window allows.
func (m *Manager) trySpawn(class, reason string) {
	m.mu.Lock()
	last := m.lastSpawn[class]
	m.mu.Unlock()
	if time.Since(last) < m.cfg.Policy.Damping {
		return
	}
	_, _ = m.spawn(class, reason)
}

// spawn starts a worker, preferring dedicated capacity and falling
// back to the overflow pool (§2.2.3).
func (m *Manager) spawn(class, reason string) (stub.WorkerInfo, error) {
	if m.cfg.Spawner == nil {
		return stub.WorkerInfo{}, fmt.Errorf("manager: no spawner configured")
	}
	overflow := !m.cfg.Spawner.HasDedicatedCapacity()
	info, err := m.cfg.Spawner.SpawnWorker(class, overflow)
	if err != nil {
		return stub.WorkerInfo{}, err
	}
	m.mu.Lock()
	m.lastSpawn[class] = time.Now()
	m.stats.Spawns++
	if c := m.classCountLocked(class) + 1; c > m.desired[class] {
		m.desired[class] = c
	}
	m.mu.Unlock()
	_ = reason // reasons surface via the monitor's spawn metric
	return info, nil
}

func (m *Manager) classCountLocked(class string) int {
	n := 0
	for _, ws := range m.workers.Snapshot() {
		if ws.info.Class == class {
			n++
		}
	}
	return n
}

// ClassAverages exposes per-class average queue lengths (used by
// experiments and the monitor).
func (m *Manager) ClassAverages() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, ws := range m.workers.Snapshot() {
		sums[ws.info.Class] += ws.avg.Value()
		counts[ws.info.Class]++
	}
	out := make(map[string]float64, len(sums))
	for c, s := range sums {
		out[c] = s / float64(counts[c])
	}
	return out
}
