package manager

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/supervisor"
	"repro/internal/vcache"
)

// scriptedSupervisor is a hand-driven supervisor endpoint: it
// heartbeats like the real daemon but answers commands from a script —
// absorb (no ack), refuse, or execute — so delegation failure modes
// are deterministic instead of timing-dependent.
type scriptedSupervisor struct {
	net    *san.Network
	addr   san.Addr
	prefix string
	ep     *san.Endpoint

	mu       sync.Mutex
	mode     string // "ok", "absorb", "refuse"
	commands []supervisor.Command
}

func startScriptedSupervisor(t *testing.T, net *san.Network, node, prefix string) *scriptedSupervisor {
	t.Helper()
	s := &scriptedSupervisor{
		net:    net,
		addr:   san.Addr{Node: node, Proc: "sup"},
		prefix: prefix,
		mode:   "ok",
	}
	s.ep = net.Endpoint(s.addr, 64)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() {
		hb := time.NewTicker(tick)
		defer hb.Stop()
		s.hello()
		for {
			select {
			case <-ctx.Done():
				return
			case <-hb.C:
				s.hello()
			case msg, ok := <-s.ep.Inbox():
				if !ok {
					return
				}
				if msg.Kind != supervisor.MsgCmd {
					continue
				}
				cmd := msg.Body.(supervisor.Command)
				s.mu.Lock()
				s.commands = append(s.commands, cmd)
				mode := s.mode
				s.mu.Unlock()
				switch mode {
				case "absorb":
					// Supervisor died mid-restart: command received,
					// no ack ever sent.
				case "refuse":
					_ = s.ep.Respond(msg, supervisor.MsgAck, supervisor.Ack{ID: cmd.ID, Err: "busy"}, 64)
				default:
					_ = s.ep.Respond(msg, supervisor.MsgAck, supervisor.Ack{ID: cmd.ID, OK: true}, 64)
				}
			}
		}
	}()
	return s
}

func (s *scriptedSupervisor) hello() {
	s.ep.Multicast(stub.GroupControl, supervisor.MsgHello, supervisor.HelloMsg{
		Name: "sup", Addr: s.addr, Node: s.addr.Node, Prefix: s.prefix,
	}, 64)
}

func (s *scriptedSupervisor) setMode(mode string) {
	s.mu.Lock()
	s.mode = mode
	s.mu.Unlock()
}

func (s *scriptedSupervisor) received() []supervisor.Command {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]supervisor.Command(nil), s.commands...)
}

// startManagerWithPrefix boots a manager that believes it lives in the
// "a-" process, with a short delegation timeout for test speed.
func startManagerWithPrefix(t *testing.T, net *san.Network, sp Spawner) *Manager {
	t.Helper()
	m := New(Config{
		Node:           "a-mgr",
		Prefix:         "a-",
		Net:            net,
		Policy:         Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
		BeaconInterval: tick,
		WorkerTTL:      5 * tick,
		FETTL:          6 * tick,
		CmdTimeout:     5 * tick,
		Spawner:        sp,
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go m.Run(ctx)
	return m
}

// failingRestartSpawner is a spawner whose FE/cache restarts always
// fail — the truthful local answer for a component hosted elsewhere.
type failingRestartSpawner struct {
	*testSpawner
}

func (s *failingRestartSpawner) RestartFrontEnd(name string) error {
	s.feStarts.Add(1)
	return fmt.Errorf("%s is not hosted here", name)
}

func (s *failingRestartSpawner) RestartCache(name string) error {
	s.cacheStarts.Add(1)
	return fmt.Errorf("%s is not hosted here", name)
}

// TestRemoteFERestartDelegatesToSupervisor: a front end heartbeating
// from another process's node prefix goes silent; the manager resolves
// the owning supervisor from its heartbeat table and delegates the
// restart over the SAN instead of erroring locally.
func TestRemoteFERestartDelegatesToSupervisor(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := startManagerWithPrefix(t, net, &failingRestartSpawner{testSpawner: sp})
	sup := startScriptedSupervisor(t, net, "b-node0", "b-")

	waitFor(t, "supervisor tracked", func() bool { return m.Stats().Supervisors == 1 })

	// One heartbeat from a remote front end, then silence.
	fe := net.Endpoint(san.Addr{Node: "b-node1", Proc: "fe0"}, 8)
	fe.Send(m.Addr(), stub.MsgFEHello, stub.FEHeartbeat{Name: "fe0", Addr: fe.Addr(), Node: "b-node1"}, 48)
	waitFor(t, "FE tracked", func() bool { return m.Stats().FrontEnds == 1 })

	waitFor(t, "delegated restart", func() bool { return m.Stats().Delegated >= 1 })
	if m.Stats().FERestarts == 0 {
		t.Fatal("delegated restart not counted as an FE restart")
	}
	cmds := sup.received()
	if len(cmds) == 0 || cmds[0].Op != supervisor.OpRestartFrontEnd || cmds[0].Target != "fe0" {
		t.Fatalf("supervisor saw %+v", cmds)
	}
}

// TestSupervisorDiesMidRestartManagerRedelegates: the first delegation
// is absorbed (supervisor crashed mid-restart, no ack); the manager
// counts the failure, tries the local fallback (which truthfully
// fails), and re-delegates on a later tick with the SAME command id —
// so a supervisor that did execute before dying would answer the retry
// from its idempotency cache rather than restarting twice.
func TestSupervisorDiesMidRestartManagerRedelegates(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := startManagerWithPrefix(t, net, &failingRestartSpawner{testSpawner: sp})
	sup := startScriptedSupervisor(t, net, "b-node0", "b-")
	sup.setMode("absorb")

	waitFor(t, "supervisor tracked", func() bool { return m.Stats().Supervisors == 1 })
	cache := net.Endpoint(san.Addr{Node: "b-node2", Proc: "cache0"}, 8)
	waitFor(t, "cache tracked", func() bool {
		cache.Multicast(stub.GroupControl, vcache.MsgHello,
			vcache.HelloMsg{Name: "cache0", Addr: cache.Addr(), Node: "b-node2"}, 48)
		return m.Stats().Caches == 1
	})

	// Let the cache expire; the absorbed delegation must register as a
	// failure (timeout + failed local fallback).
	waitFor(t, "delegation failure recorded", func() bool { return m.Stats().DelegateFails >= 1 })
	if m.Stats().Delegated != 0 {
		t.Fatalf("absorbed command counted as delegated: %+v", m.Stats())
	}

	// Supervisor comes back: the retry succeeds.
	sup.setMode("ok")
	waitFor(t, "re-delegation succeeded", func() bool { return m.Stats().Delegated >= 1 })
	if m.Stats().CacheRestarts == 0 {
		t.Fatal("cache restart not recorded")
	}

	// Every attempt for the incident carried the same command id.
	cmds := sup.received()
	if len(cmds) < 2 {
		t.Fatalf("only %d commands observed, want the retry too", len(cmds))
	}
	for _, c := range cmds {
		if c.ID != cmds[0].ID {
			t.Fatalf("retry minted a new command id: %+v", cmds)
		}
		if c.Op != supervisor.OpRestartCache || c.Target != "cache0" {
			t.Fatalf("unexpected command %+v", c)
		}
	}
}

// TestNoSupervisorFallsBackToLocalRestart: with no supervisor covering
// the node, the manager keeps the old direct path — the degenerate
// single-process deployment needs no daemon round trip.
func TestNoSupervisorFallsBackToLocalRestart(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := startManagerWithPrefix(t, net, sp)

	fe := net.Endpoint(san.Addr{Node: "b-node1", Proc: "fe0"}, 8)
	fe.Send(m.Addr(), stub.MsgFEHello, stub.FEHeartbeat{Name: "fe0", Addr: fe.Addr(), Node: "b-node1"}, 48)
	waitFor(t, "FE tracked", func() bool { return m.Stats().FrontEnds == 1 })
	waitFor(t, "local restart", func() bool { return sp.feStarts.Load() >= 1 })
	if st := m.Stats(); st.Delegated != 0 || st.FERestarts == 0 {
		t.Fatalf("stats %+v: want a local (non-delegated) restart", st)
	}
}

// TestFEHeartbeatsAreAddressKeyed: two processes each hosting an "fe0"
// must not interleave in the manager's table — the live one's
// heartbeats cannot mask the dead one's silence.
func TestFEHeartbeatsAreAddressKeyed(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := startManagerWithPrefix(t, net, &failingRestartSpawner{testSpawner: sp})
	supB := startScriptedSupervisor(t, net, "b-node0", "b-")

	waitFor(t, "supervisor tracked", func() bool { return m.Stats().Supervisors == 1 })

	// Same name, two addresses: one local to the manager's process
	// ("a-"), one remote ("b-").
	feA := net.Endpoint(san.Addr{Node: "a-node1", Proc: "fe0"}, 8)
	feB := net.Endpoint(san.Addr{Node: "b-node1", Proc: "fe0"}, 8)
	hbA := func() {
		feA.Send(m.Addr(), stub.MsgFEHello, stub.FEHeartbeat{Name: "fe0", Addr: feA.Addr(), Node: "a-node1"}, 48)
	}
	hbA()
	feB.Send(m.Addr(), stub.MsgFEHello, stub.FEHeartbeat{Name: "fe0", Addr: feB.Addr(), Node: "b-node1"}, 48)
	waitFor(t, "both replicas tracked", func() bool { return m.Stats().FrontEnds == 2 })

	// B's replica goes silent while A's keeps heartbeating: the
	// remote supervisor must still see the restart.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tk := time.NewTicker(tick)
		defer tk.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tk.C:
				hbA()
			}
		}
	}()
	waitFor(t, "dead replica restarted via its supervisor", func() bool {
		for _, c := range supB.received() {
			if c.Op == supervisor.OpRestartFrontEnd && c.Target == "fe0" {
				return true
			}
		}
		return false
	})
	// The live replica never stopped being tracked.
	if m.Stats().FrontEnds < 1 {
		t.Fatal("live replica lost from the table")
	}
}
