package manager

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/tacc"
	"repro/internal/vcache"
)

type nullWorker struct{ class string }

func (w nullWorker) Class() string { return w.class }
func (w nullWorker) Process(ctx context.Context, task *tacc.Task) (tacc.Blob, error) {
	return task.Input, nil
}

// testSpawner spawns real worker stubs on a shared network.
type testSpawner struct {
	net      *san.Network
	interval time.Duration

	mu          sync.Mutex
	nextID      int
	cancels     map[string]context.CancelFunc
	nodes       map[string]string
	spawns      atomic.Int64
	reaps       atomic.Int64
	feStarts    atomic.Int64
	cacheStarts atomic.Int64
	dedicated   atomic.Bool
}

func newTestSpawner(net *san.Network, interval time.Duration) *testSpawner {
	s := &testSpawner{
		net:      net,
		interval: interval,
		cancels:  make(map[string]context.CancelFunc),
		nodes:    make(map[string]string),
	}
	s.dedicated.Store(true)
	return s
}

func (s *testSpawner) SpawnWorker(class string, overflow bool) (stub.WorkerInfo, error) {
	s.mu.Lock()
	id := fmt.Sprintf("%s-%d", class, s.nextID)
	node := fmt.Sprintf("nd%d", s.nextID)
	if overflow {
		node = fmt.Sprintf("novf%d", s.nextID)
	}
	s.nextID++
	s.mu.Unlock()
	ws := stub.NewWorkerStub(id, node, nullWorker{class: class}, s.net,
		stub.WorkerConfig{ReportInterval: s.interval, Overflow: overflow})
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.cancels[id] = cancel
	s.nodes[id] = node
	s.mu.Unlock()
	go ws.Run(ctx)
	s.spawns.Add(1)
	return ws.Info(), nil
}

// crash kills a worker abruptly: its node drops off the SAN before the
// process can say goodbye, so no deregistration reaches the manager.
func (s *testSpawner) crash(id string) {
	s.mu.Lock()
	node := s.nodes[id]
	cancel := s.cancels[id]
	delete(s.cancels, id)
	delete(s.nodes, id)
	s.mu.Unlock()
	s.net.DropNode(node)
	if cancel != nil {
		cancel()
	}
}

func (s *testSpawner) ReapWorker(id string) error {
	s.mu.Lock()
	cancel, ok := s.cancels[id]
	delete(s.cancels, id)
	s.mu.Unlock()
	if ok {
		cancel()
	}
	s.reaps.Add(1)
	return nil
}

func (s *testSpawner) RestartFrontEnd(name string) error {
	s.feStarts.Add(1)
	return nil
}

func (s *testSpawner) RestartCache(name string) error {
	s.cacheStarts.Add(1)
	return nil
}

func (s *testSpawner) HasDedicatedCapacity() bool { return s.dedicated.Load() }

func (s *testSpawner) stopAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cancel := range s.cancels {
		cancel()
	}
}

const tick = 10 * time.Millisecond

func startManager(t *testing.T, net *san.Network, sp Spawner, pol Policy) *Manager {
	t.Helper()
	m := New(Config{
		Node:           "mgr",
		Net:            net,
		Policy:         pol,
		BeaconInterval: tick,
		WorkerTTL:      5 * tick,
		FETTL:          6 * tick,
		Spawner:        sp,
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go m.Run(ctx)
	return m
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWorkerLifecycle(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := startManager(t, net, sp, Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1})

	// Spawn two workers out-of-band; they register via beacons.
	info1, _ := sp.SpawnWorker("echo", false)
	info2, _ := sp.SpawnWorker("echo", false)
	_ = info2
	waitFor(t, "registrations", func() bool { return m.Stats().Workers == 2 })

	// Kill one silently (no deregister): TTL expiry plus the
	// replica floor respawns a replacement.
	sp.crash(info1.ID)
	waitFor(t, "replacement spawn", func() bool { return sp.spawns.Load() >= 3 })
	waitFor(t, "two live workers", func() bool { return m.Stats().Workers == 2 })
}

func TestBeaconCarriesLoadAverages(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := New(Config{
		Node:           "mgr",
		Net:            net,
		Policy:         Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
		BeaconInterval: tick,
		WorkerTTL:      time.Hour, // isolate from expiry
		Spawner:        sp,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	// A hand-rolled worker that reports a fixed queue length of 10.
	wep := net.Endpoint(san.Addr{Node: "n1", Proc: "w0"}, 64)
	wep.Join(stub.GroupControl)
	go func() {
		var mgr san.Addr
		registered := false
		tk := time.NewTicker(tick)
		defer tk.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case msg, ok := <-wep.Inbox():
				if !ok {
					return
				}
				if msg.Kind == stub.MsgBeacon {
					b := msg.Body.(stub.Beacon)
					mgr = b.Manager
					if !registered {
						registered = true
						wep.Send(mgr, stub.MsgRegister, stub.RegisterMsg{Info: stub.WorkerInfo{
							ID: "w0", Class: "echo", Addr: wep.Addr(), Node: "n1",
						}}, 64)
					}
				}
			case <-tk.C:
				if !mgr.IsZero() {
					wep.Send(mgr, stub.MsgLoadReport, stub.LoadReport{ID: "w0", Class: "echo", QLen: 10}, 64)
				}
			}
		}
	}()

	// Listen for beacons and check the advertised moving average
	// converges toward 10.
	lep := net.Endpoint(san.Addr{Node: "fe", Proc: "listen"}, 256)
	lep.Join(stub.GroupControl)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		msg := <-lep.Inbox()
		if msg.Kind != stub.MsgBeacon {
			continue
		}
		b := msg.Body.(stub.Beacon)
		if len(b.Workers) == 1 && b.Workers[0].QLen > 8 {
			return // converged
		}
	}
	t.Fatal("beacon load average never converged toward reports")
}

func TestSpawnOnLoadThresholdWithDamping(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := New(Config{
		Node:           "mgr",
		Net:            net,
		Policy:         Policy{SpawnThreshold: 5, Damping: 10 * tick, ReapThreshold: -1},
		BeaconInterval: tick,
		WorkerTTL:      time.Hour,
		Spawner:        sp,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	// Register a fake overloaded worker reporting queue 50.
	wep := net.Endpoint(san.Addr{Node: "n1", Proc: "hot"}, 64)
	wep.Join(stub.GroupControl)
	go func() {
		var mgr san.Addr
		reg := false
		tk := time.NewTicker(tick)
		defer tk.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case msg, ok := <-wep.Inbox():
				if !ok {
					return
				}
				if msg.Kind == stub.MsgBeacon {
					mgr = msg.Body.(stub.Beacon).Manager
					if !reg {
						reg = true
						wep.Send(mgr, stub.MsgRegister, stub.RegisterMsg{Info: stub.WorkerInfo{
							ID: "hot", Class: "echo", Addr: wep.Addr(), Node: "n1"}}, 64)
					}
				}
			case <-tk.C:
				if !mgr.IsZero() {
					wep.Send(mgr, stub.MsgLoadReport, stub.LoadReport{ID: "hot", Class: "echo", QLen: 50}, 64)
				}
			}
		}
	}()

	waitFor(t, "load spawn", func() bool { return sp.spawns.Load() >= 1 })
	// Damping: no flood of spawns immediately after.
	time.Sleep(5 * tick)
	if got := sp.spawns.Load(); got > 2 {
		t.Fatalf("damping failed: %d spawns in half a damping window", got)
	}
	if m.Stats().Spawns == 0 {
		t.Fatal("stats did not record spawns")
	}
}

func TestSpawnRequestFromFrontEnd(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := startManager(t, net, sp, Policy{SpawnThreshold: 1e9, Damping: time.Millisecond, ReapThreshold: -1})

	fe := net.Endpoint(san.Addr{Node: "fe", Proc: "fe0"}, 64)
	fe.Join(stub.GroupControl)
	waitFor(t, "manager beacon", func() bool {
		select {
		case msg := <-fe.Inbox():
			return msg.Kind == stub.MsgBeacon
		default:
			return false
		}
	})
	if err := fe.Send(m.Addr(), stub.MsgSpawnReq, stub.SpawnReq{Class: "echo"}, 32); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "spawn", func() bool { return sp.spawns.Load() >= 1 })
	waitFor(t, "registered", func() bool { return m.Stats().Workers == 1 })
}

func TestReapOverflowWorkers(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	sp.dedicated.Store(false) // force spawns onto the overflow pool
	m := New(Config{
		Node:           "mgr",
		Net:            net,
		Policy:         Policy{SpawnThreshold: 1e9, Damping: 2 * tick, ReapThreshold: 0.5},
		BeaconInterval: tick,
		WorkerTTL:      time.Hour,
		Spawner:        sp,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	// Two workers: one dedicated (registered directly), one overflow.
	sp.dedicated.Store(true)
	sp.SpawnWorker("echo", false)
	sp.SpawnWorker("echo", true) // overflow
	waitFor(t, "both registered", func() bool { return m.Stats().Workers == 2 })

	// Idle (queue 0 reports flow automatically from the stubs), so
	// the overflow worker gets reaped once damping passes.
	waitFor(t, "reap", func() bool { return m.Stats().Reaps >= 1 })
	waitFor(t, "one worker left", func() bool { return m.Stats().Workers == 1 })
	// The dedicated worker survives.
	if sp.reaps.Load() == 0 {
		t.Fatal("spawner.ReapWorker not called")
	}
}

func TestFrontEndProcessPeerRestart(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := startManager(t, net, sp, Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1})

	fe := net.Endpoint(san.Addr{Node: "fe", Proc: "fe0"}, 64)
	hb := func() {
		fe.Send(m.Addr(), stub.MsgFEHello, stub.FEHeartbeat{Name: "fe0", Addr: fe.Addr(), Node: "fe"}, 48)
	}
	hb()
	waitFor(t, "FE tracked", func() bool { return m.Stats().FrontEnds == 1 })
	// Stop heartbeating: the manager restarts the FE after FETTL.
	waitFor(t, "FE restart", func() bool { return sp.feStarts.Load() >= 1 })
	if m.Stats().FERestarts == 0 {
		t.Fatal("restart not recorded in stats")
	}
}

// TestCacheProcessPeerRestart: cache services heartbeat on the
// control group; silence past CacheTTL triggers the manager's
// RestartCache duty, exactly like front ends.
func TestCacheProcessPeerRestart(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := startManager(t, net, sp, Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1})

	cache := net.Endpoint(san.Addr{Node: "c0", Proc: "cache0"}, 64)
	waitFor(t, "cache tracked", func() bool {
		// Heartbeat until the manager (whose Run loop joins the group
		// asynchronously) has caught one.
		cache.Multicast(stub.GroupControl, vcache.MsgHello,
			vcache.HelloMsg{Name: "cache0", Addr: cache.Addr(), Node: "c0"}, 48)
		return m.Stats().Caches == 1
	})
	// Stop heartbeating: the manager restarts the cache after CacheTTL.
	waitFor(t, "cache restart", func() bool { return sp.cacheStarts.Load() >= 1 })
	if m.Stats().CacheRestarts == 0 {
		t.Fatal("cache restart not recorded in stats")
	}
}

func TestDeregisterLowersReplicaFloor(t *testing.T) {
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := startManager(t, net, sp, Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1})

	info, _ := sp.SpawnWorker("echo", false)
	waitFor(t, "registered", func() bool { return m.Stats().Workers == 1 })

	// Clean deregistration must NOT trigger a replacement.
	base := sp.spawns.Load()
	wep := net.Endpoint(san.Addr{Node: "x", Proc: "x"}, 8)
	wep.Send(m.Addr(), stub.MsgDeregister, stub.DeregisterMsg{ID: info.ID}, 32)
	waitFor(t, "worker removed", func() bool { return m.Stats().Workers == 0 })
	time.Sleep(10 * tick)
	if sp.spawns.Load() != base {
		t.Fatal("deregistered worker was replaced; floor should have dropped")
	}
}

func TestManagerRestartRebuildsSoftState(t *testing.T) {
	// §3.1.3: kill the manager, start a new one; workers re-register
	// on its beacons with no recovery protocol.
	net := san.NewNetwork(1)
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()

	ctx1, cancel1 := context.WithCancel(context.Background())
	m1 := New(Config{
		Node: "mgr", Net: net,
		Policy:         Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
		BeaconInterval: tick, WorkerTTL: time.Hour, Spawner: sp,
	})
	go m1.Run(ctx1)
	sp.SpawnWorker("echo", false)
	sp.SpawnWorker("echo", false)
	waitFor(t, "initial registrations", func() bool { return m1.Stats().Workers == 2 })

	cancel1()
	net.DropNode("mgr")
	time.Sleep(3 * tick)

	m2 := New(Config{
		Node: "mgr2", Net: net,
		Policy:         Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
		BeaconInterval: tick, WorkerTTL: time.Hour, Spawner: sp,
	})
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go m2.Run(ctx2)
	waitFor(t, "re-registration with new manager", func() bool { return m2.Stats().Workers == 2 })
}

func TestClassAverages(t *testing.T) {
	net := san.NewNetwork(1)
	m := New(Config{
		Node: "mgr", Net: net,
		Policy:         Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
		BeaconInterval: tick, WorkerTTL: time.Hour,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	wep := net.Endpoint(san.Addr{Node: "n1", Proc: "w0"}, 8)
	wep.Send(m.Addr(), stub.MsgRegister, stub.RegisterMsg{Info: stub.WorkerInfo{
		ID: "w0", Class: "echo", Addr: wep.Addr(), Node: "n1"}}, 64)
	waitFor(t, "registered", func() bool { return m.Stats().Workers == 1 })
	for i := 0; i < 10; i++ {
		wep.Send(m.Addr(), stub.MsgLoadReport, stub.LoadReport{ID: "w0", Class: "echo", QLen: 8}, 64)
	}
	waitFor(t, "reports handled", func() bool { return m.Stats().ReportsHandled >= 10 })
	avgs := m.ClassAverages()
	if avgs["echo"] < 6 {
		t.Fatalf("class average = %v, want near 8", avgs["echo"])
	}
}

func TestPolicyPureFunctions(t *testing.T) {
	p := Policy{SpawnThreshold: 10, Damping: time.Minute, ReapThreshold: 1, MaxPerClass: 3}
	now := time.Now()
	old := now.Add(-2 * time.Minute)
	if !p.ShouldSpawn(11, 1, now, old) {
		t.Fatal("should spawn above threshold")
	}
	if p.ShouldSpawn(11, 1, now, now.Add(-time.Second)) {
		t.Fatal("damping violated")
	}
	if p.ShouldSpawn(9, 1, now, old) {
		t.Fatal("spawned below threshold")
	}
	if p.ShouldSpawn(11, 3, now, old) {
		t.Fatal("MaxPerClass violated")
	}
	if !p.ShouldReap(0.5, 2, now, old) {
		t.Fatal("should reap idle class")
	}
	if p.ShouldReap(0.5, 1, now, old) {
		t.Fatal("reaped the last worker")
	}
	if p.ShouldReap(2, 2, now, old) {
		t.Fatal("reaped a busy class")
	}
}
