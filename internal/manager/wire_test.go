package manager

import (
	"testing"
	"time"

	"repro/internal/san"
	"repro/internal/stub"
)

// TestManagerWorkerLifecycleOverWire runs the full manager <-> worker
// protocol — beacons, registration, load reports, TTL expiry, crash
// replacement — over a wire-mode SAN, so every control-plane message
// the manager exchanges round-trips through the production codec.
func TestManagerWorkerLifecycleOverWire(t *testing.T) {
	net := san.NewNetwork(1, san.WithCodec(stub.WireCodec{}))
	sp := newTestSpawner(net, tick)
	defer sp.stopAll()
	m := startManager(t, net, sp, Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1})

	info1, _ := sp.SpawnWorker("echo", false)
	if _, err := sp.SpawnWorker("echo", false); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "registrations over wire", func() bool { return m.Stats().Workers == 2 })

	// Crash one silently: timeout inference and the replica floor must
	// work identically when the evidence arrives as bytes.
	sp.crash(info1.ID)
	waitFor(t, "replacement spawn", func() bool { return sp.spawns.Load() >= 3 })
	waitFor(t, "two live workers", func() bool { return m.Stats().Workers == 2 })

	st := net.Stats()
	if st.WireEncodes == 0 || st.WireDecodes == 0 {
		t.Fatalf("codec never ran: %+v", st)
	}
	if st.WireErrors != 0 {
		t.Fatalf("%d manager-protocol messages failed serialization", st.WireErrors)
	}
}
