package transport

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/san"
	"repro/internal/stub"
)

// sampleBody returns real wire-codec bytes — frames on a live bridge
// always carry codec output, so tests and benches should too.
func sampleBody(t testing.TB) []byte {
	t.Helper()
	body, err := stub.EncodeBody(stub.MsgLoadReport, stub.LoadReport{
		ID: "w0", Class: "echo", QLen: 7, CostMs: 2.5, Done: 41,
		Info: stub.WorkerInfo{ID: "w0", Class: "echo", Addr: san.Addr{Node: "b-node1", Proc: "w0"}, Node: "b-node1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func sampleFrames(t testing.TB) [][]byte {
	t.Helper()
	body := sampleBody(t)
	return [][]byte{
		AppendHello(nil, Hello{
			ID:        "a",
			Advertise: "tcp:127.0.0.1:7401",
			Peers:     []string{"tcp:127.0.0.1:7402", "unix:/tmp/sns.sock"},
			Endpoints: []san.Addr{
				{Node: "a-node0", Proc: "fe0"},
				{Node: "a-node1", Proc: "monitor"},
			},
		}),
		AppendAdvert(nil, AdvertUp, []san.Addr{{Node: "a-node2", Proc: "cache0"}}),
		AppendAdvert(nil, AdvertDown, []san.Addr{{Node: "a-node2", Proc: "cache0"}}),
		AppendData(nil,
			san.Addr{Node: "a-node0", Proc: "fe0"},
			san.Addr{Node: "b-node1", Proc: "w0"},
			stub.MsgLoadReport, 0, false, body),
		AppendData(nil,
			san.Addr{Node: "b-node1", Proc: "w0"},
			san.Addr{Node: "a-node0", Proc: "fe0"},
			stub.MsgResult, 99, true, []byte("reply-bytes")),
		AppendDataTrace(nil,
			san.Addr{Node: "a-node0", Proc: "fe0"},
			san.Addr{Node: "b-node1", Proc: "w0"},
			stub.MsgTask, 7, 0, 0xbeef01|1, []byte("traced-task")),
		AppendMcast(nil,
			san.Addr{Node: "b-node0", Proc: "manager"},
			stub.GroupControl, stub.MsgBeacon, body),
	}
}

// TestFrameRoundTrip: every sample frame decodes back to the fields it
// was built from, and re-encoding the decoded frame reproduces the
// original bytes exactly.
func TestFrameRoundTrip(t *testing.T) {
	body := sampleBody(t)
	from := san.Addr{Node: "a-node0", Proc: "fe0"}
	to := san.Addr{Node: "b-node1", Proc: "w0"}

	frame := AppendData(nil, from, to, "wrk.task", 42, true, body)
	var d Decoder
	_, _ = d.Write(frame)
	f, ok, err := d.Next()
	if err != nil || !ok {
		t.Fatalf("decode: ok=%v err=%v", ok, err)
	}
	if f.Type != FrameData || f.CallID != 42 || f.Flags&FlagReply == 0 {
		t.Fatalf("header fields wrong: %+v", f)
	}
	if string(f.SrcNode) != from.Node || string(f.SrcProc) != from.Proc ||
		string(f.DstNode) != to.Node || string(f.DstProc) != to.Proc ||
		string(f.Kind) != "wrk.task" || !bytes.Equal(f.Body, body) {
		t.Fatalf("payload fields wrong: %+v", f)
	}
	re := AppendData(nil,
		san.Addr{Node: string(f.SrcNode), Proc: string(f.SrcProc)},
		san.Addr{Node: string(f.DstNode), Proc: string(f.DstProc)},
		string(f.Kind), f.CallID, f.Flags&FlagReply != 0, f.Body)
	if !bytes.Equal(re, frame) {
		t.Fatal("re-encoding a decoded frame diverged from the original bytes")
	}

	// Traced frame: FlagTrace + uvarint id round-trips; an untraced
	// frame spends no bytes on it (AppendData above is byte-identical
	// to the pre-trace format).
	traced := AppendDataTrace(nil, from, to, "wrk.task", 42, FlagReply, 0x55aa, body)
	d = Decoder{}
	_, _ = d.Write(traced)
	f, ok, err = d.Next()
	if err != nil || !ok {
		t.Fatalf("traced decode: ok=%v err=%v", ok, err)
	}
	if f.Flags&FlagTrace == 0 || f.Trace != 0x55aa || f.Flags&FlagReply == 0 {
		t.Fatalf("traced frame fields wrong: %+v", f)
	}
	if len(traced) <= len(frame) {
		t.Fatal("traced frame should carry extra trace bytes")
	}
	// A FlagTrace claim with a zero trace id is malformed (re-seal the
	// CRC so the parser, not the checksum, makes that call).
	bad := append([]byte(nil), frame...)
	bad[preludeLen] |= FlagTrace // flags byte; following uvarint decodes as callID=0... garbage
	binary.LittleEndian.PutUint32(bad[len(bad)-crcLen:], crc32.ChecksumIEEE(bad[:len(bad)-crcLen]))
	var db Decoder
	_, _ = db.Write(bad)
	if _, _, err := db.Next(); err == nil {
		t.Fatal("decoder accepted a FlagTrace frame whose payload was not extended")
	}

	mc := AppendMcast(nil, from, "sns.control", "mgr.beacon", body)
	d = Decoder{}
	_, _ = d.Write(mc)
	f, ok, err = d.Next()
	if err != nil || !ok || f.Type != FrameMcast {
		t.Fatalf("mcast decode: ok=%v err=%v type=%d", ok, err, f.Type)
	}
	if string(f.Group) != "sns.control" || string(f.Kind) != "mgr.beacon" {
		t.Fatalf("mcast fields wrong: %+v", f)
	}

	h := Hello{
		ID: "a", Advertise: "tcp:127.0.0.1:7401", Peers: []string{"tcp:127.0.0.1:7402"},
		Endpoints: []san.Addr{{Node: "a-node0", Proc: "fe0"}, {Node: "a-node0", Proc: "sup"}},
	}
	d = Decoder{}
	_, _ = d.Write(AppendHello(nil, h))
	f, ok, err = d.Next()
	if err != nil || !ok {
		t.Fatalf("hello decode: ok=%v err=%v", ok, err)
	}
	got, err := f.DecodeHello()
	if err != nil || got.ID != h.ID || got.Advertise != h.Advertise ||
		len(got.Peers) != 1 || got.Peers[0] != h.Peers[0] {
		t.Fatalf("hello round trip: %+v err=%v", got, err)
	}
	if len(got.Endpoints) != 2 || got.Endpoints[0] != h.Endpoints[0] || got.Endpoints[1] != h.Endpoints[1] {
		t.Fatalf("hello endpoint table round trip: %+v", got.Endpoints)
	}

	adv := AppendAdvert(nil, AdvertDown, []san.Addr{{Node: "b-node2", Proc: "cache0"}})
	d = Decoder{}
	_, _ = d.Write(adv)
	f, ok, err = d.Next()
	if err != nil || !ok || f.Type != FrameAdvert {
		t.Fatalf("advert decode: ok=%v err=%v type=%d", ok, err, f.Type)
	}
	op, addrs, err := f.DecodeAdvert()
	if err != nil || op != AdvertDown || len(addrs) != 1 ||
		(addrs[0] != san.Addr{Node: "b-node2", Proc: "cache0"}) {
		t.Fatalf("advert round trip: op=%d addrs=%v err=%v", op, addrs, err)
	}
	if !bytes.Equal(AppendAdvert(nil, op, addrs), adv) {
		t.Fatal("re-encoding a decoded advert diverged from the original bytes")
	}
}

// TestDecoderTornReads: a concatenated batch fed one byte at a time
// yields exactly the same frames as fed whole — the streaming decoder
// tolerates arbitrary read fragmentation.
func TestDecoderTornReads(t *testing.T) {
	frames := sampleFrames(t)
	var stream []byte
	for _, fr := range frames {
		stream = append(stream, fr...)
	}

	var whole Decoder
	_, _ = whole.Write(stream)
	var want []Frame
	for {
		f, ok, err := whole.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		want = append(want, copyFrame(f))
	}
	if len(want) != len(frames) {
		t.Fatalf("whole-stream decode found %d frames, want %d", len(want), len(frames))
	}

	var torn Decoder
	var got []Frame
	for i := 0; i < len(stream); i++ {
		_, _ = torn.Write(stream[i : i+1])
		for {
			f, ok, err := torn.Next()
			if err != nil {
				t.Fatalf("byte %d: %v", i, err)
			}
			if !ok {
				break
			}
			got = append(got, copyFrame(f))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("torn decode found %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !framesEqual(got[i], want[i]) {
			t.Fatalf("frame %d differs between torn and whole decode", i)
		}
	}
	if torn.Buffered() != 0 {
		t.Fatalf("%d stray bytes left after full stream", torn.Buffered())
	}
}

// TestDecoderRejectsCorruption: flipped bytes fail the CRC, truncated
// frames wait for more data, bad magic and oversized claims error.
func TestDecoderRejectsCorruption(t *testing.T) {
	frame := sampleFrames(t)[1]

	for i := 0; i < len(frame); i++ {
		corrupt := append([]byte(nil), frame...)
		corrupt[i] ^= 0x40
		var d Decoder
		_, _ = d.Write(corrupt)
		if _, ok, err := d.Next(); err == nil && ok {
			// A flip in the length field can make the frame read as
			// incomplete (ok=false, no error) — that is fine; what must
			// never happen is a successful decode of corrupt bytes.
			t.Fatalf("decoder accepted a frame with byte %d flipped", i)
		}
	}

	var d Decoder
	_, _ = d.Write(frame[:len(frame)-1])
	if _, ok, err := d.Next(); ok || err != nil {
		t.Fatalf("truncated frame: ok=%v err=%v, want needs-more-data", ok, err)
	}

	huge := []byte{0x41, 0x53, Version, FrameData, 0xff, 0xff, 0xff, 0xff}
	d = Decoder{}
	_, _ = d.Write(huge)
	if _, _, err := d.Next(); err == nil {
		t.Fatal("oversized length claim not rejected")
	}
}

func copyFrame(f Frame) Frame {
	dup := func(b []byte) []byte { return append([]byte(nil), b...) }
	f.SrcNode, f.SrcProc = dup(f.SrcNode), dup(f.SrcProc)
	f.DstNode, f.DstProc = dup(f.DstNode), dup(f.DstProc)
	f.Group, f.Kind, f.Body = dup(f.Group), dup(f.Kind), dup(f.Body)
	return f
}

func framesEqual(a, b Frame) bool {
	return a.Type == b.Type && a.Flags == b.Flags && a.CallID == b.CallID &&
		a.Trace == b.Trace &&
		bytes.Equal(a.SrcNode, b.SrcNode) && bytes.Equal(a.SrcProc, b.SrcProc) &&
		bytes.Equal(a.DstNode, b.DstNode) && bytes.Equal(a.DstProc, b.DstProc) &&
		bytes.Equal(a.Group, b.Group) && bytes.Equal(a.Kind, b.Kind) &&
		bytes.Equal(a.Body, b.Body)
}

// TestFrameEncodeZeroAlloc: steady-state frame construction into a
// reused buffer allocates nothing — the property the bench snapshot
// gates.
func TestFrameEncodeZeroAlloc(t *testing.T) {
	body := sampleBody(t)
	from := san.Addr{Node: "a-node0", Proc: "fe0"}
	to := san.Addr{Node: "b-node1", Proc: "w0"}
	buf := AppendData(nil, from, to, "wrk.task", 1, false, body)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendData(buf[:0], from, to, "wrk.task", 1, false, body)
	})
	if allocs != 0 {
		t.Fatalf("AppendData allocates %.1f per op into a warm buffer", allocs)
	}
}
