// Package transport carries SAN traffic over real sockets, letting an
// SNS cluster span OS processes (the paper's §3.1 system-area network
// made literal). It has three layers:
//
//   - a versioned frame format — magic, version, frame type, flags,
//     call id, source/destination endpoint ids, message kind, body
//     length, CRC32 — with alloc-free encoders that append onto the
//     SAN's pooled wire-encode path, and a streaming Decoder that
//     tolerates torn reads and never trusts a length it has not
//     bounded;
//   - a batching writer (Batcher) that coalesces multiple frames into
//     one Write syscall under load, flushing on size or a microsecond
//     deadline, so per-message syscall cost amortizes away at high
//     rates;
//   - a Bridge that implements san.Fabric over TCP or Unix sockets:
//     per-peer connections with a handshake, peer-list gossip for mesh
//     formation, automatic reconnect, and a learning route table that
//     maps endpoint addresses to peers from observed traffic.
//
// The data plane is zero-copy end to end. Outbound, bodies at or
// above a small threshold are not copied into the batch buffer:
// AppendDataVec stages only the header and CRC trailer, the body
// rides as its own iovec, and the Batcher flushes via
// net.Buffers/writev, releasing the body's san.Lease after the write.
// Bodies above Config.ChunkBytes (default DefaultChunkBytes) stream
// as chunkFrag-sized chunk frames (FlagChunk + a uvarint
// id/total/offset envelope) so one huge body never stalls small
// frames queued behind it; the receiving bridge reassembles the
// stream into a single leased buffer before injecting it. Inbound,
// NewLeasedDecoder reads into san.Lease-backed buffers and delivery
// views alias them; the decoder recycles a buffer only after every
// consumer releases (see the Lease contract in internal/san —
// releasing is a performance obligation, never a safety one).
//
// Frame layout (all integers little-endian unless uvarint):
//
//	offset size  field
//	0      2     magic 0x5341 ("AS")
//	2      1     version (1)
//	3      1     frame type (hello/data/mcast)
//	4      4     length of everything after this prelude, CRC included
//	8      ...   payload (per-type, strings uvarint-length-prefixed)
//	8+n    4     CRC32 (IEEE) over prelude+payload
//
// Data payload: flags(1) [trace(uvarint) when FlagTrace] callID(uvarint)
// srcNode srcProc dstNode dstProc kind body. Mcast payload: srcNode
// srcProc group kind body. Hello payload: id advertise peerCount
// peers....
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/san"
)

// Wire constants. A frame's prelude is fixed-size so a streaming
// decoder can learn the full frame length from the first 8 bytes and
// bound every allocation before trusting anything else.
const (
	Magic   uint16 = 0x5341 // "AS" on the wire
	Version byte   = 1

	preludeLen = 8
	crcLen     = 4

	// MaxFramePayload bounds the post-prelude bytes of one frame
	// (CRC included). A peer claiming more is lying or corrupt; the
	// decoder rejects the frame before buffering or allocating for it.
	MaxFramePayload = 8 << 20
)

// Frame types.
const (
	FrameHello  byte = 1 // handshake: bridge id, listen addr, known peers, endpoint table
	FrameData   byte = 2 // point-to-point SAN message
	FrameMcast  byte = 3 // multicast SAN message
	FrameAdvert byte = 4 // incremental endpoint-table advertisement
)

// Advert operations (carried in the advert frame's op byte).
const (
	AdvertUp   byte = 1 // the listed endpoints registered on the sender
	AdvertDown byte = 2 // the listed endpoints closed on the sender
)

// Data-frame flags.
const (
	FlagReply byte = 1 << 0 // body answers a san Call (CallID echoes)
	// FlagChunk marks the body as one fragment of a larger message:
	// a chunk envelope (uvarint chunk id, total length, offset)
	// followed by the fragment bytes. The receiving bridge reassembles
	// fragments into the original body before injection, so a huge
	// blob streams as many small frames — ordinary traffic interleaves
	// between them instead of stalling behind one giant frame.
	FlagChunk byte = 1 << 1
	// FlagTrace marks a frame that carries a distributed-tracing id
	// (obs.TraceID) as a uvarint between the flags byte and the call
	// id. Untraced frames pay nothing: no flag, no field.
	FlagTrace byte = 1 << 2
)

// Decode errors. A stream that produces any of these has lost frame
// sync and the connection carrying it should be dropped.
var (
	ErrFrameFormat   = errors.New("transport: malformed frame")
	ErrFrameMagic    = errors.New("transport: bad frame magic")
	ErrFrameVersion  = errors.New("transport: unsupported frame version")
	ErrFrameCRC      = errors.New("transport: frame CRC mismatch")
	ErrFrameTooLarge = errors.New("transport: frame exceeds size bound")
)

// Frame is one decoded frame. The byte-slice fields alias the
// Decoder's internal buffer and are valid only until the next call to
// Next or Write; copy anything that must outlive the handling of this
// frame. (san's codec already copies on DecodeBody, so handing Body
// straight to InjectUnicast/InjectMulticast is safe.)
type Frame struct {
	Type   byte
	Flags  byte
	CallID uint64
	Trace  uint64 // distributed-tracing id; zero unless FlagTrace

	SrcNode, SrcProc []byte
	DstNode, DstProc []byte // FrameData only
	Group            []byte // FrameMcast only
	Kind             []byte
	Body             []byte
}

// appendPrelude reserves the fixed prelude; finishFrame back-patches
// the length and seals the CRC. Between the two, callers append the
// payload with the uvarint/string helpers below.
func appendPrelude(dst []byte, ftype byte) ([]byte, int) {
	off := len(dst)
	dst = binary.LittleEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, ftype, 0, 0, 0, 0)
	return dst, off
}

func finishFrame(dst []byte, off int) []byte {
	payload := len(dst) - off - preludeLen
	binary.LittleEndian.PutUint32(dst[off+4:], uint32(payload+crcLen))
	sum := crc32.ChecksumIEEE(dst[off:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendData appends one point-to-point frame carrying an
// already-encoded message body (the SAN's pooled EncodeBodyAppend
// output) and returns the extended slice. It allocates nothing when
// dst has capacity.
func AppendData(dst []byte, from, to san.Addr, kind string, callID uint64, reply bool, body []byte) []byte {
	flags := byte(0)
	if reply {
		flags |= FlagReply
	}
	return AppendDataTrace(dst, from, to, kind, callID, flags, 0, body)
}

// AppendDataTrace is AppendData with a verbatim flags byte and an
// optional tracing id: a non-zero trace sets FlagTrace and rides the
// frame as a uvarint. Zero traces add nothing to the wire.
func AppendDataTrace(dst []byte, from, to san.Addr, kind string, callID uint64, flags byte, trace uint64, body []byte) []byte {
	dst, off := appendPrelude(dst, FrameData)
	if trace != 0 {
		flags |= FlagTrace
	}
	dst = append(dst, flags)
	if trace != 0 {
		dst = binary.AppendUvarint(dst, trace)
	}
	dst = binary.AppendUvarint(dst, callID)
	dst = appendString(dst, from.Node)
	dst = appendString(dst, from.Proc)
	dst = appendString(dst, to.Node)
	dst = appendString(dst, to.Proc)
	dst = appendString(dst, kind)
	dst = appendBytes(dst, body)
	return finishFrame(dst, off)
}

// AppendDataVec builds the same wire bytes as AppendData but without
// splicing the body into the staging buffer: it returns the frame's
// header portion (prelude, meta, body length, and the optional prefix
// — the chunk envelope) appended to dst, plus the 4-byte CRC trailer.
// The frame on the wire is hdr ++ body ++ trailer; Batcher.AppendVec
// hands the three pieces to writev so an already-encoded blob goes to
// the socket straight from its lease, copy-free. The logical frame
// body is prefix ++ body. The flags byte is taken verbatim (compose
// FlagReply/FlagChunk yourself); a non-zero trace sets FlagTrace like
// AppendDataTrace.
func AppendDataVec(dst []byte, from, to san.Addr, kind string, callID uint64, flags byte, trace uint64, prefix, body []byte) (hdr []byte, trailer [4]byte) {
	dst, off := appendPrelude(dst, FrameData)
	if trace != 0 {
		flags |= FlagTrace
	}
	dst = append(dst, flags)
	if trace != 0 {
		dst = binary.AppendUvarint(dst, trace)
	}
	dst = binary.AppendUvarint(dst, callID)
	dst = appendString(dst, from.Node)
	dst = appendString(dst, from.Proc)
	dst = appendString(dst, to.Node)
	dst = appendString(dst, to.Proc)
	dst = appendString(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(prefix)+len(body)))
	dst = append(dst, prefix...)
	payload := len(dst) - off - preludeLen + len(body)
	binary.LittleEndian.PutUint32(dst[off+4:], uint32(payload+crcLen))
	sum := crc32.ChecksumIEEE(dst[off:])
	sum = crc32.Update(sum, crc32.IEEETable, body)
	binary.LittleEndian.PutUint32(trailer[:], sum)
	return dst, trailer
}

// appendChunkEnv appends the chunk envelope riding at the front of a
// FlagChunk frame's body: fragment stream id, total reassembled
// length, this fragment's offset.
func appendChunkEnv(dst []byte, id uint64, total, offset int) []byte {
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(total))
	return binary.AppendUvarint(dst, uint64(offset))
}

// ParseChunk splits a FlagChunk frame body into its envelope and
// fragment. The fragment aliases body.
func ParseChunk(body []byte) (id uint64, total, offset int, frag []byte, err error) {
	r := payloadReader{buf: body}
	id = r.uvarint()
	t := r.uvarint()
	o := r.uvarint()
	if r.err != nil || t > MaxChunkBody || o > t || uint64(len(body)-r.pos) > t-o {
		return 0, 0, 0, nil, fmt.Errorf("%w: chunk envelope", ErrFrameFormat)
	}
	return id, int(t), int(o), body[r.pos:], nil
}

// MaxChunkBody bounds the reassembled length a chunk stream may claim,
// the chunked analogue of MaxFramePayload. One cap for every caller:
// senders refuse to chunk anything larger, receivers refuse to
// allocate for a claim above it.
const MaxChunkBody = 64 << 20

// AppendMcast appends one multicast frame (group-addressed, no flags
// or call id — multicasts are never replies).
func AppendMcast(dst []byte, from san.Addr, group, kind string, body []byte) []byte {
	dst, off := appendPrelude(dst, FrameMcast)
	dst = appendString(dst, from.Node)
	dst = appendString(dst, from.Proc)
	dst = appendString(dst, group)
	dst = appendString(dst, kind)
	dst = appendBytes(dst, body)
	return finishFrame(dst, off)
}

// Hello is the handshake payload each side sends immediately after a
// connection opens: who it is, where it can be dialed, which other
// peers it knows — the gossip that lets a joining process complete the
// mesh from one seed address — and which SAN endpoints it hosts, so
// the receiver can route first packets instead of flooding them.
type Hello struct {
	ID        string
	Advertise string     // canonical dialable listen address
	Peers     []string   // advertised addresses of other known peers
	Endpoints []san.Addr // SAN endpoints registered on the sender
}

// AppendHello appends one handshake frame.
func AppendHello(dst []byte, h Hello) []byte {
	dst, off := appendPrelude(dst, FrameHello)
	dst = appendString(dst, h.ID)
	dst = appendString(dst, h.Advertise)
	dst = binary.AppendUvarint(dst, uint64(len(h.Peers)))
	for _, p := range h.Peers {
		dst = appendString(dst, p)
	}
	dst = binary.AppendUvarint(dst, uint64(len(h.Endpoints)))
	for _, a := range h.Endpoints {
		dst = appendString(dst, a.Node)
		dst = appendString(dst, a.Proc)
	}
	return finishFrame(dst, off)
}

// DecodeHello materializes a Hello from a decoded FrameHello (the
// hello fields ride in the payload reader's slots: ID in SrcNode,
// Advertise in SrcProc, peers and endpoints packed in Body). Callers
// get copies — hellos are rare and long-lived, unlike data frames. A
// hello without an endpoint section (an older capture) still parses;
// the endpoint table then arrives by advert frames alone.
func (f *Frame) DecodeHello() (Hello, error) {
	if f.Type != FrameHello {
		return Hello{}, fmt.Errorf("%w: not a hello frame", ErrFrameFormat)
	}
	h := Hello{ID: string(f.SrcNode), Advertise: string(f.SrcProc)}
	r := payloadReader{buf: f.Body}
	n := r.sliceLen(1)
	for i := 0; i < n && r.err == nil; i++ {
		h.Peers = append(h.Peers, string(r.bytes()))
	}
	if r.err == nil && r.pos < len(r.buf) {
		m := r.sliceLen(2)
		for i := 0; i < m && r.err == nil; i++ {
			a := san.Addr{Node: string(r.bytes()), Proc: string(r.bytes())}
			if r.err == nil {
				h.Endpoints = append(h.Endpoints, a)
			}
		}
	}
	if r.err != nil || r.pos != len(r.buf) {
		return Hello{}, fmt.Errorf("%w: hello peer list", ErrFrameFormat)
	}
	return h, nil
}

// AppendAdvert appends one endpoint-table advertisement frame: op
// (AdvertUp/AdvertDown) plus the affected addresses. Adverts ride the
// same ordered stream as data frames, so a peer's view of the sender's
// endpoint table is never ahead of the traffic that depends on it.
func AppendAdvert(dst []byte, op byte, addrs []san.Addr) []byte {
	dst, off := appendPrelude(dst, FrameAdvert)
	dst = append(dst, op)
	dst = binary.AppendUvarint(dst, uint64(len(addrs)))
	for _, a := range addrs {
		dst = appendString(dst, a.Node)
		dst = appendString(dst, a.Proc)
	}
	return finishFrame(dst, off)
}

// DecodeAdvert materializes an advert from a decoded FrameAdvert: the
// op rides in Flags, the packed address list in Body. Addresses are
// copied (adverts mutate long-lived route tables).
func (f *Frame) DecodeAdvert() (op byte, addrs []san.Addr, err error) {
	if f.Type != FrameAdvert {
		return 0, nil, fmt.Errorf("%w: not an advert frame", ErrFrameFormat)
	}
	r := payloadReader{buf: f.Body}
	n := r.sliceLen(2)
	for i := 0; i < n && r.err == nil; i++ {
		a := san.Addr{Node: string(r.bytes()), Proc: string(r.bytes())}
		if r.err == nil {
			addrs = append(addrs, a)
		}
	}
	if r.err != nil || r.pos != len(r.buf) {
		return 0, nil, fmt.Errorf("%w: advert address list", ErrFrameFormat)
	}
	if f.Flags != AdvertUp && f.Flags != AdvertDown {
		return 0, nil, fmt.Errorf("%w: advert op %d", ErrFrameFormat, f.Flags)
	}
	return f.Flags, addrs, nil
}

// Decoder incrementally parses a byte stream into frames. Feed raw
// reads with Write, then drain complete frames with Next; a torn read
// simply leaves Next reporting "no frame yet" until the remainder
// arrives. The internal buffer is bounded: a frame's claimed length is
// validated against MaxFramePayload as soon as the prelude is visible,
// before any of the payload is awaited.
//
// A leased decoder (NewLeasedDecoder) backs its buffer with a
// refcounted san.Lease so frame slices can outlive the next Write:
// a consumer that retains the current Lease() keeps the buffer pinned,
// and the decoder swaps to a fresh lease (carrying over the unconsumed
// tail) instead of scribbling over live views. The old buffer recycles
// when the last view releases — the receive half of the zero-copy data
// plane.
type Decoder struct {
	buf []byte
	r   int // consumed prefix

	frames uint64

	leased bool
	lease  *san.Lease
}

// leasedDecoderBuf sizes fresh receive leases: big enough to hold a
// full socket read plus a partial frame without immediate growth.
const leasedDecoderBuf = 64 << 10

// NewLeasedDecoder returns a decoder whose buffer lives in refcounted
// leases (see Decoder docs). The zero-valued Decoder remains the plain
// copying variant.
func NewLeasedDecoder() *Decoder { return &Decoder{leased: true} }

// Lease returns the lease backing the decoder's current buffer (nil
// before the first Write, or on an unleased decoder). Frames returned
// by Next alias this lease's buffer; retain it to keep them valid past
// the next Write.
func (d *Decoder) Lease() *san.Lease { return d.lease }

// Close drops the decoder's own reference to its buffer lease (no-op
// on a plain decoder). Call it when the stream ends; views retained by
// consumers stay valid — they hold their own references.
func (d *Decoder) Close() {
	if d.lease != nil {
		d.lease.Release()
		d.lease = nil
		d.buf = nil
		d.r = 0
	}
}

// Write feeds stream bytes into the decoder. It never fails; the
// error return exists to satisfy io.Writer so a decoder can sit
// directly under an io.Copy or TeeReader in tests.
func (d *Decoder) Write(p []byte) (int, error) {
	if d.leased {
		d.writeLeased(p)
		return len(p), nil
	}
	// Compact lazily: only when the dead prefix dominates the buffer.
	if d.r > 0 && (d.r >= len(d.buf) || d.r > 4096) {
		d.buf = append(d.buf[:0], d.buf[d.r:]...)
		d.r = 0
	}
	d.buf = append(d.buf, p...)
	return len(p), nil
}

// writeLeased is Write for the leased decoder. The invariant: d.buf
// always starts at index 0 of the current lease's array, so cap(d.buf)
// is the lease capacity and in-place appends never escape it. Only the
// decoder's goroutine mutates the buffer, and only after observing
// Refs()==1 — the atomic refcount orders consumers' last reads before
// the reuse, so recycling can never race a live view.
func (d *Decoder) writeLeased(p []byte) {
	if l := d.lease; l != nil && l.Refs() == 1 {
		if len(d.buf)+len(p) <= cap(d.buf) {
			d.buf = append(d.buf, p...)
			return
		}
		// Sole owner but out of room at the end: compact the
		// unconsumed tail down to the front if that makes p fit.
		tail := len(d.buf) - d.r
		if tail+len(p) <= cap(d.buf) {
			copy(d.buf, d.buf[d.r:])
			d.buf = append(d.buf[:tail], p...)
			d.r = 0
			return
		}
	}
	// Views are live on the current buffer (or it cannot hold the new
	// bytes): swap to a fresh lease carrying only the unconsumed tail.
	// The old buffer recycles when its last view releases.
	need := len(d.buf) - d.r + len(p)
	size := need
	if size < leasedDecoderBuf {
		size = leasedDecoderBuf
	}
	nl := san.NewLease(size)
	nb := append(nl.Bytes(), d.buf[d.r:]...)
	nb = append(nb, p...)
	if d.lease != nil {
		d.lease.Release()
	}
	d.lease = nl
	d.buf = nb
	d.r = 0
}

// Buffered returns the number of unconsumed bytes held.
func (d *Decoder) Buffered() int { return len(d.buf) - d.r }

// Frames returns the count of frames decoded so far.
func (d *Decoder) Frames() uint64 { return d.frames }

// Next parses the next complete frame. ok=false with a nil error
// means more bytes are needed; a non-nil error means the stream lost
// frame sync (bad magic, corrupt CRC, oversized claim) and must be
// abandoned — there is no resynchronization in a TCP-carried stream.
func (d *Decoder) Next() (Frame, bool, error) {
	avail := d.buf[d.r:]
	if len(avail) < preludeLen {
		return Frame{}, false, nil
	}
	if binary.LittleEndian.Uint16(avail) != Magic {
		return Frame{}, false, ErrFrameMagic
	}
	if avail[2] != Version {
		return Frame{}, false, ErrFrameVersion
	}
	ftype := avail[3]
	length := binary.LittleEndian.Uint32(avail[4:])
	if length > MaxFramePayload {
		return Frame{}, false, ErrFrameTooLarge
	}
	if length < crcLen {
		return Frame{}, false, fmt.Errorf("%w: frame length %d below CRC size", ErrFrameFormat, length)
	}
	total := preludeLen + int(length)
	if len(avail) < total {
		return Frame{}, false, nil
	}
	raw := avail[:total]
	want := binary.LittleEndian.Uint32(raw[total-crcLen:])
	if crc32.ChecksumIEEE(raw[:total-crcLen]) != want {
		return Frame{}, false, ErrFrameCRC
	}
	f, err := parsePayload(ftype, raw[preludeLen:total-crcLen])
	if err != nil {
		return Frame{}, false, err
	}
	d.r += total
	d.frames++
	return f, true, nil
}

// parsePayload decodes the per-type payload. All returned slices alias
// payload.
func parsePayload(ftype byte, payload []byte) (Frame, error) {
	f := Frame{Type: ftype}
	r := payloadReader{buf: payload}
	switch ftype {
	case FrameData:
		f.Flags = r.byte()
		if f.Flags&FlagTrace != 0 {
			f.Trace = r.uvarint()
			if f.Trace == 0 {
				return Frame{}, fmt.Errorf("%w: FlagTrace with zero trace id", ErrFrameFormat)
			}
		}
		f.CallID = r.uvarint()
		f.SrcNode = r.bytes()
		f.SrcProc = r.bytes()
		f.DstNode = r.bytes()
		f.DstProc = r.bytes()
		f.Kind = r.bytes()
		f.Body = r.bytes()
	case FrameMcast:
		f.SrcNode = r.bytes()
		f.SrcProc = r.bytes()
		f.Group = r.bytes()
		f.Kind = r.bytes()
		f.Body = r.bytes()
	case FrameHello:
		f.SrcNode = r.bytes() // hello ID
		f.SrcProc = r.bytes() // hello advertise addr
		f.Body = r.rest()     // packed peer + endpoint lists, parsed by DecodeHello
	case FrameAdvert:
		f.Flags = r.byte() // advert op
		f.Body = r.rest()  // packed address list, parsed by DecodeAdvert
	default:
		return Frame{}, fmt.Errorf("%w: unknown frame type %d", ErrFrameFormat, ftype)
	}
	if r.err != nil {
		return Frame{}, r.err
	}
	if ftype != FrameHello && r.pos != len(r.buf) {
		return Frame{}, fmt.Errorf("%w: %d trailing payload bytes", ErrFrameFormat, len(r.buf)-r.pos)
	}
	return f, nil
}

// payloadReader parses with sticky errors and zero copies: bytes()
// returns subslices of the input.
type payloadReader struct {
	buf []byte
	pos int
	err error
}

func (r *payloadReader) fail() {
	if r.err == nil {
		r.err = ErrFrameFormat
	}
}

func (r *payloadReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

func (r *payloadReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.fail()
		return nil
	}
	out := r.buf[r.pos : r.pos+int(n) : r.pos+int(n)]
	r.pos += int(n)
	return out
}

func (r *payloadReader) rest() []byte {
	out := r.buf[r.pos:]
	r.pos = len(r.buf)
	return out
}

// sliceLen reads an element count bounded by the bytes remaining (each
// element needs at least min bytes), so a hostile count cannot force
// an allocation the input could never back.
func (r *payloadReader) sliceLen(min int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64((len(r.buf)-r.pos)/min)+1 {
		r.fail()
		return 0
	}
	return int(n)
}
