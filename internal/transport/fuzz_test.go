package transport

import (
	"bytes"
	"testing"

	"repro/internal/san"
)

// FuzzFrameRoundTrip hammers the streaming frame decoder with
// arbitrary byte streams: truncations, corrupted CRCs, concatenated
// batches, hostile length claims. Invariants:
//
//   - the decoder never panics and never allocates a buffer the input
//     cannot back (length claims are bounded before trusting them);
//   - feeding the same stream byte-by-byte yields exactly the frames
//     the whole-stream feed yields (torn-read equivalence);
//   - any frame that decodes successfully re-encodes to bytes that
//     decode to an identical frame (the format is self-consistent).
//
// The corpus is seeded from real captures: a handshake exchange and a
// batch of data/mcast frames carrying genuine wire-codec bodies, as a
// live bridge would produce.
func FuzzFrameRoundTrip(f *testing.F) {
	for _, fr := range sampleFrames(f) {
		f.Add(fr)
	}
	// A full "session capture": hello + batch of three frames in one
	// stream, as the peer's first read might deliver it.
	var batch []byte
	for _, fr := range sampleFrames(f) {
		batch = append(batch, fr...)
	}
	f.Add(batch)
	f.Add(batch[:len(batch)/2]) // torn mid-frame
	corrupted := append([]byte(nil), batch...)
	corrupted[len(corrupted)-2] ^= 0xff // CRC damage on the last frame
	f.Add(corrupted)
	f.Add([]byte{0x41, 0x53, 1, 2, 0xff, 0xff, 0xff, 0x7f}) // huge length claim
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Whole-stream decode.
		var whole Decoder
		_, _ = whole.Write(data)
		var frames []Frame
		var wholeErr error
		for {
			fr, ok, err := whole.Next()
			if err != nil {
				wholeErr = err
				break
			}
			if !ok {
				break
			}
			frames = append(frames, copyFrame(fr))
		}

		// The decoder's buffer must never balloon past the input it
		// was fed (plus nothing: Write only appends what it is given).
		if whole.Buffered() > len(data) {
			t.Fatalf("decoder buffered %d bytes from %d input bytes", whole.Buffered(), len(data))
		}

		// Byte-at-a-time decode must agree frame for frame, error for
		// error.
		var torn Decoder
		var tornFrames []Frame
		var tornErr error
		for i := 0; i < len(data) && tornErr == nil; i++ {
			_, _ = torn.Write(data[i : i+1])
			for {
				fr, ok, err := torn.Next()
				if err != nil {
					tornErr = err
					break
				}
				if !ok {
					break
				}
				tornFrames = append(tornFrames, copyFrame(fr))
			}
		}
		if (wholeErr == nil) != (tornErr == nil) {
			t.Fatalf("torn/whole error divergence: whole=%v torn=%v", wholeErr, tornErr)
		}
		if len(frames) != len(tornFrames) {
			t.Fatalf("whole decode found %d frames, torn found %d", len(frames), len(tornFrames))
		}
		for i := range frames {
			if !framesEqual(frames[i], tornFrames[i]) {
				t.Fatalf("frame %d differs between torn and whole decode", i)
			}
		}

		// Valid frames re-encode canonically: the re-encoded bytes
		// decode to an identical frame. (Byte-identity with the fuzzed
		// input is not required — uvarints admit non-minimal forms.)
		for i, fr := range frames {
			re := reencode(fr)
			if re == nil {
				continue // hello frames with unparseable peer lists
			}
			var d2 Decoder
			_, _ = d2.Write(re)
			fr2, ok, err := d2.Next()
			if err != nil || !ok {
				t.Fatalf("frame %d: re-encoded bytes failed to decode: ok=%v err=%v", i, ok, err)
			}
			re2 := reencode(copyFrame(fr2))
			if !bytes.Equal(re, re2) {
				t.Fatalf("frame %d: re-encoding is not a fixed point", i)
			}
		}
	})
}

// reencode rebuilds a frame's canonical byte form from its decoded
// fields; nil when the frame cannot be rebuilt (malformed hello body).
func reencode(f Frame) []byte {
	switch f.Type {
	case FrameData:
		return AppendDataTrace(nil,
			san.Addr{Node: string(f.SrcNode), Proc: string(f.SrcProc)},
			san.Addr{Node: string(f.DstNode), Proc: string(f.DstProc)},
			string(f.Kind), f.CallID, f.Flags&FlagReply, f.Trace, f.Body)
	case FrameMcast:
		return AppendMcast(nil,
			san.Addr{Node: string(f.SrcNode), Proc: string(f.SrcProc)},
			string(f.Group), string(f.Kind), f.Body)
	case FrameHello:
		h, err := f.DecodeHello()
		if err != nil {
			return nil
		}
		return AppendHello(nil, h)
	case FrameAdvert:
		op, addrs, err := f.DecodeAdvert()
		if err != nil {
			return nil
		}
		return AppendAdvert(nil, op, addrs)
	}
	return nil
}
