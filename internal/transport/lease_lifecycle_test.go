package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/san"
)

// These tests pin the lease-lifecycle contract of the chunked data
// plane: every Retain handed to a batcher is balanced by exactly one
// Release no matter how the stream dies, and a stream id that
// completed, corrupted, or was evicted can never seed a fresh
// reassembly build from its late fragments.

// newChunkBridge builds the minimal Bridge the chunk send/receive
// paths need — counters, frame pool, and a wire-mode network for
// injection — without listeners or real peers.
func newChunkBridge() *Bridge {
	b := &Bridge{net: newWireNet(1)}
	b.framePool.New = func() any {
		buf := make([]byte, 0, 2048)
		return &buf
	}
	return b
}

// newTestPeer wraps a writer in a peer whose batcher flushes per the
// given delay (negative = inline per append). The conn exists only so
// peer.close() has something to close.
func newTestPeer(t *testing.T, id string, w interface{ Write([]byte) (int, error) }, delay time.Duration) *peer {
	t.Helper()
	c1, c2 := net.Pipe()
	t.Cleanup(func() { _ = c1.Close(); _ = c2.Close() })
	return &peer{
		id:    id,
		conn:  c1,
		batch: NewBatcher(w, DefaultFlushBytes, delay, 0),
		done:  make(chan struct{}),
	}
}

// failAfterWriter succeeds for the first ok Write calls, then returns
// a synthetic error forever. The batcher serializes Write calls under
// its own lock, so no further synchronization is needed.
type failAfterWriter struct {
	ok     int
	writes int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.ok {
		return 0, errors.New("synthetic write failure")
	}
	return len(p), nil
}

// discardWriter swallows everything.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// leasedBody fills a fresh lease with a recognizable pattern and
// returns it plus the wire view over its buffer.
func leasedBody(total int) (*san.Lease, []byte) {
	l := san.NewLease(total)
	wire := l.Bytes()[:total]
	for i := range wire {
		wire[i] = byte(i * 7)
	}
	return l, wire
}

// TestChunkedMidStreamWriterErrorLeaseBalance: a peer whose connection
// dies mid-stream must not unbalance the body lease — every fragment
// retain is released exactly once (by the flush that carried it, or
// inline once the batcher is sticky-errored), the dying peer is closed
// so its dial loop can take over, and the healthy peer still receives
// a complete, byte-identical stream.
func TestChunkedMidStreamWriterErrorLeaseBalance(t *testing.T) {
	b := newChunkBridge()
	var goodBuf bytes.Buffer
	good := newTestPeer(t, "good", &goodBuf, -1) // flush per fragment
	// The bad writer survives exactly one flush (hdr+body+trailer ride
	// as three sequential writes through the net.Buffers fallback), so
	// fragment 1 lands and fragment 2 hits the error: a genuinely
	// mid-stream death.
	badW := &failAfterWriter{ok: 3}
	bad := newTestPeer(t, "bad", badW, -1)
	t.Cleanup(func() { good.close(); bad.close() })

	const total = 4 * chunkFrag // four fragments
	lease, wire := leasedBody(total)
	defer lease.Release()

	from := san.Addr{Node: "a", Proc: "src"}
	to := san.Addr{Node: "b", Proc: "dst"}
	ok := b.unicastChunked([]*peer{good, bad}, from, to, "blob", 7, 0, 0, wire, lease)
	if !ok {
		t.Fatal("unicastChunked reported total failure despite a healthy peer")
	}

	// Lease balance: only our own reference may remain. With inline
	// flushing every batcher release has already run by the time
	// unicastChunked returns.
	if refs := lease.Refs(); refs != 1 {
		t.Fatalf("lease refs = %d after send, want 1 (leaked or double-released fragment references)", refs)
	}
	// The dying peer was closed so the redial path owns it now.
	select {
	case <-bad.done:
	default:
		t.Fatal("failing peer was not closed after its mid-stream write error")
	}
	// Its writer saw fragment 1 (three writes) plus the failing attempt
	// for fragment 2; the skip must prevent attempts for fragments 3-4.
	if badW.writes > 4 {
		t.Fatalf("failing peer saw %d writes; fragments after the error were not skipped", badW.writes)
	}

	// The healthy peer's stream reassembles to the exact body.
	dec := &Decoder{}
	if _, err := dec.Write(goodBuf.Bytes()); err != nil {
		t.Fatalf("decoder: %v", err)
	}
	got := make([]byte, total)
	frags, covered := 0, 0
	for {
		f, ok, err := dec.Next()
		if err != nil {
			t.Fatalf("decode healthy stream: %v", err)
		}
		if !ok {
			break
		}
		if f.Type != FrameData || f.Flags&FlagChunk == 0 {
			t.Fatalf("unexpected frame type %d flags %x", f.Type, f.Flags)
		}
		id, tot, off, frag, err := ParseChunk(f.Body)
		if err != nil {
			t.Fatalf("chunk envelope: %v", err)
		}
		if id != 1 || tot != total {
			t.Fatalf("fragment envelope id=%d total=%d, want id=1 total=%d", id, tot, total)
		}
		copy(got[off:], frag)
		frags++
		covered += len(frag)
	}
	if frags != 4 || covered != total {
		t.Fatalf("healthy peer got %d fragments covering %d bytes, want 4 covering %d", frags, covered, total)
	}
	if !bytes.Equal(got, wire) {
		t.Fatal("healthy peer's reassembled body differs from the sent body")
	}
}

// TestChunkedConcurrentStreamsLeaseBalance hammers the same two-peer
// fan-out from many goroutines with timer-driven flushing, so retains,
// flush releases, and the sticky-error inline releases all interleave
// for the race detector. Every stream's lease must come back to
// exactly the caller's reference.
func TestChunkedConcurrentStreamsLeaseBalance(t *testing.T) {
	b := newChunkBridge()
	good := newTestPeer(t, "good", discardWriter{}, 100*time.Microsecond)
	bad := newTestPeer(t, "bad", &failAfterWriter{ok: 5}, 100*time.Microsecond)
	t.Cleanup(func() { good.close(); bad.close() })

	from := san.Addr{Node: "a", Proc: "src"}
	to := san.Addr{Node: "b", Proc: "dst"}
	const streams = 24
	leases := make([]*san.Lease, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		lease, wire := leasedBody(3 * chunkFrag)
		leases[i] = lease
		wg.Add(1)
		go func(i int, wire []byte, lease *san.Lease) {
			defer wg.Done()
			b.unicastChunked([]*peer{good, bad}, from, to, "blob", uint64(i), 0, 0, wire, lease)
		}(i, wire, lease)
	}
	wg.Wait()
	// Close flushes whatever is still staged; after it returns every
	// batcher-held reference has been released.
	_ = good.batch.Close()
	_ = bad.batch.Close()
	for i, l := range leases {
		if refs := l.Refs(); refs != 1 {
			t.Fatalf("stream %d: lease refs = %d after close, want 1", i, refs)
		}
		l.Release()
	}
}

// feedChunk drives one fragment through the receive path exactly as
// the read loop would.
func feedChunk(b *Bridge, asm *chunkAsm, id uint64, total, offset int, frag []byte) {
	body := append(appendChunkEnv(nil, id, total, offset), frag...)
	f := Frame{Type: FrameData, Flags: FlagChunk, Body: body}
	b.handleChunk(asm, f, san.Addr{Node: "x", Proc: "src"}, san.Addr{Node: "y", Proc: "dst"}, "blob")
}

// TestChunkReassemblyDeadStreams drives hostile fragment interleavings
// straight into handleChunk and asserts the dead-id bookkeeping: late
// or duplicate fragments of finished streams are dropped at the door,
// eviction picks live builds (skipping stale order entries) and
// releases their leases, poisoned streams stay poisoned, and every
// bookkeeping structure stays bounded.
func TestChunkReassemblyDeadStreams(t *testing.T) {
	t.Run("late fragment of a completed stream", func(t *testing.T) {
		b := newChunkBridge()
		asm := &chunkAsm{builds: make(map[uint64]*chunkBuild)}
		feedChunk(b, asm, 1, 8, 0, []byte{1, 2, 3, 4})
		feedChunk(b, asm, 1, 8, 4, []byte{5, 6, 7, 8})
		if got := b.reassembled.Load(); got != 1 {
			t.Fatalf("reassembled = %d, want 1", got)
		}
		// A duplicate of the final fragment must not seed a new build:
		// pre-fix it would pin a fresh 8-byte lease forever.
		feedChunk(b, asm, 1, 8, 4, []byte{5, 6, 7, 8})
		if len(asm.builds) != 0 {
			t.Fatalf("duplicate fragment rebuilt a completed stream: %d builds live", len(asm.builds))
		}
		if got := b.reassembled.Load(); got != 1 {
			t.Fatalf("reassembled = %d after duplicate, want 1", got)
		}
	})

	t.Run("evicted build releases its lease and stays dead", func(t *testing.T) {
		b := newChunkBridge()
		asm := &chunkAsm{builds: make(map[uint64]*chunkBuild)}
		// Fill the table with incomplete builds (first half only).
		for id := uint64(100); id < 100+maxChunkBuilds; id++ {
			feedChunk(b, asm, id, 8, 0, []byte{0, 1, 2, 3})
		}
		victim := asm.builds[100]
		victim.lease.Retain() // hold it so the pool cannot recycle it under us
		defer victim.lease.Release()

		// One more build forces FIFO eviction of id 100.
		feedChunk(b, asm, 999, 8, 0, []byte{0, 1, 2, 3})
		if asm.builds[100] != nil {
			t.Fatal("oldest build not evicted")
		}
		if refs := victim.lease.Refs(); refs != 1 {
			t.Fatalf("evicted build's lease refs = %d, want 1 (only the test's hold) — eviction leaked the build reference", refs)
		}
		if !asm.dead[100] {
			t.Fatal("evicted stream id not marked dead")
		}
		// The evicted stream's tail arrives late: it must not restart an
		// uncompletable build (the pre-fix leak: a new lease pinned until
		// eviction wrapped around again).
		feedChunk(b, asm, 100, 8, 4, []byte{4, 5, 6, 7})
		if asm.builds[100] != nil {
			t.Fatal("late fragment of an evicted stream seeded a fresh build")
		}
		if got := b.reassembled.Load(); got != 0 {
			t.Fatalf("reassembled = %d, want 0", got)
		}
	})

	t.Run("eviction skips stale order entries of finished streams", func(t *testing.T) {
		b := newChunkBridge()
		asm := &chunkAsm{builds: make(map[uint64]*chunkBuild)}
		// Three streams complete; their order entries go stale.
		for id := uint64(1); id <= 3; id++ {
			feedChunk(b, asm, id, 4, 0, []byte{9, 9, 9, 9})
		}
		// Fill with live builds, then overflow by one.
		for id := uint64(10); id < 10+maxChunkBuilds; id++ {
			feedChunk(b, asm, id, 8, 0, []byte{0, 1, 2, 3})
		}
		feedChunk(b, asm, 500, 8, 0, []byte{0, 1, 2, 3})
		// Pre-fix, popping a stale entry counted as the eviction and the
		// table stayed over budget; now the oldest LIVE build (id 10) is
		// the one sacrificed.
		if len(asm.builds) != maxChunkBuilds {
			t.Fatalf("builds = %d after eviction, want %d", len(asm.builds), maxChunkBuilds)
		}
		if asm.builds[10] != nil {
			t.Fatal("oldest live build survived eviction")
		}
		if !asm.dead[10] {
			t.Fatal("evicted live stream not marked dead")
		}
		if asm.builds[11] == nil || asm.builds[500] == nil {
			t.Fatal("eviction removed the wrong builds")
		}
	})

	t.Run("corrupt total poisons the whole stream", func(t *testing.T) {
		b := newChunkBridge()
		asm := &chunkAsm{builds: make(map[uint64]*chunkBuild)}
		feedChunk(b, asm, 42, 8, 0, []byte{0, 1, 2, 3})
		// Same stream id, contradictory total: sender bug, stream dies.
		feedChunk(b, asm, 42, 12, 4, []byte{4, 5, 6, 7})
		if b.frameErrors.Load() != 1 {
			t.Fatalf("frameErrors = %d, want 1", b.frameErrors.Load())
		}
		if asm.builds[42] != nil || !asm.dead[42] {
			t.Fatal("poisoned stream not dropped and retired")
		}
		// Even a well-formed tail of the poisoned stream is garbage now.
		feedChunk(b, asm, 42, 8, 4, []byte{4, 5, 6, 7})
		if asm.builds[42] != nil {
			t.Fatal("fragment of a poisoned stream seeded a fresh build")
		}
		if got := b.reassembled.Load(); got != 0 {
			t.Fatalf("reassembled = %d, want 0", got)
		}
	})

	t.Run("bookkeeping stays bounded across thousands of streams", func(t *testing.T) {
		b := newChunkBridge()
		asm := &chunkAsm{builds: make(map[uint64]*chunkBuild)}
		const n = 1500
		for id := uint64(1); id <= n; id++ {
			feedChunk(b, asm, id, 4, 0, []byte{1, 2, 3, 4})
		}
		if got := b.reassembled.Load(); got != n {
			t.Fatalf("reassembled = %d, want %d", got, n)
		}
		if len(asm.builds) != 0 {
			t.Fatalf("%d builds leaked", len(asm.builds))
		}
		if len(asm.dead) > maxDeadChunkIDs || len(asm.deadOrder) > maxDeadChunkIDs {
			t.Fatalf("dead set unbounded: %d ids, %d order entries (cap %d)",
				len(asm.dead), len(asm.deadOrder), maxDeadChunkIDs)
		}
		if len(asm.order) > 4*maxChunkBuilds+1 {
			t.Fatalf("order slice not compacted: %d entries", len(asm.order))
		}
		// The most recent completions are still remembered as dead…
		if !asm.dead[n] || !asm.dead[n-maxDeadChunkIDs+1] {
			t.Fatal("recent stream ids missing from the dead set")
		}
		// …and a fragment bearing one is still refused.
		feedChunk(b, asm, n, 4, 0, []byte{1, 2, 3, 4})
		if len(asm.builds) != 0 {
			t.Fatal("dead id readmitted a build")
		}
	})
}
