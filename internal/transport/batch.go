package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// Batching defaults. The delay is the "microsecond deadline": long
// enough for a burst of sends to pile into one packet, short enough to
// be invisible next to even a loopback RTT.
const (
	DefaultFlushBytes = 32 << 10
	DefaultFlushDelay = 200 * time.Microsecond
)

// ErrBatcherClosed is returned by Append/Flush after Close.
var ErrBatcherClosed = errors.New("transport: batcher closed")

// BatchStats counts a batcher's life. FramesPerBatch (derivable as
// Frames/Batches) is the coalescing figure of merit: >1 means multiple
// frames shared a syscall/packet.
type BatchStats struct {
	Frames      uint64 // frames appended
	Batches     uint64 // Write calls issued
	Bytes       uint64 // bytes written
	SizeFlushes uint64 // flushes triggered by the size threshold
	TimeFlushes uint64 // flushes triggered by the deadline
	VecFrames   uint64 // frames whose body went out as its own iovec
	VecBytes    uint64 // body bytes written without staging (writev)
}

// vecWriter is the optional fast path a Batcher probes its writer for:
// a writer that can take a gather list in one call (net.Buffers →
// writev). Connection wrappers (deadline writers) forward it to the
// underlying *net.TCPConn/*net.UnixConn — Go's net package only
// issues a real writev when WriteTo sees the concrete conn type.
type vecWriter interface {
	WriteVec(bufs *net.Buffers) (int64, error)
}

// cut records one externally-held body spliced into the staged stream:
// the staging buffer splits at off, with body (and its release hook)
// in between. Offsets, not subslices — b.buf's backing array moves as
// it grows.
type cut struct {
	off     int
	body    []byte
	release func()
}

// Batcher coalesces frames into one buffered write per flush. Appends
// accumulate until the buffer reaches FlushBytes (flush inline, on the
// appender's goroutine) or the oldest pending frame has waited
// FlushDelay (flush from a timer). A FlushDelay of zero (or negative)
// disables coalescing: every Append writes immediately — the
// "unbatched" mode the benchmarks compare against.
//
// Writes happen under the batcher's lock, so the underlying writer
// needs no extra synchronization; errors are sticky and surface on
// the next Append/Flush.
type Batcher struct {
	w          io.Writer
	flushBytes int
	delay      time.Duration

	mu      sync.Mutex
	buf     []byte
	cuts    []cut // external bodies interleaved with buf (vectored)
	ext     int   // total external body bytes pending
	iov     net.Buffers
	pending int // frames in buf
	armed   bool
	timer   *time.Timer
	closed  bool
	err     error

	stats BatchStats
}

// NewBatcher wraps w. Zero flushBytes/delay pick the defaults; a
// negative delay disables batching entirely.
func NewBatcher(w io.Writer, flushBytes int, delay time.Duration) *Batcher {
	if flushBytes <= 0 {
		flushBytes = DefaultFlushBytes
	}
	if delay == 0 {
		delay = DefaultFlushDelay
	}
	return &Batcher{w: w, flushBytes: flushBytes, delay: delay}
}

// Append queues one frame. The bytes are copied; the caller's buffer
// is free for reuse on return.
func (b *Batcher) Append(frame []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBatcherClosed
	}
	if b.err != nil {
		return b.err
	}
	b.buf = append(b.buf, frame...)
	b.pending++
	b.stats.Frames++
	return b.afterAppendLocked()
}

// AppendVec queues one frame whose body stays in the caller's buffer:
// hdr and trailer (from AppendDataVec) are copied into the staging
// buffer as usual, but body is only referenced — at flush it goes to
// the socket as its own iovec. release, if non-nil, runs once the
// flush that carries the body completes (successfully or not); until
// then the caller must keep body immutable and alive, which is
// exactly the Lease.Retain/Release contract.
func (b *Batcher) AppendVec(hdr, body []byte, trailer [4]byte, release func()) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.err != nil {
		if release != nil {
			release() // nothing will carry the body; drop the reference
		}
		if b.closed {
			return ErrBatcherClosed
		}
		return b.err
	}
	b.buf = append(b.buf, hdr...)
	b.cuts = append(b.cuts, cut{off: len(b.buf), body: body, release: release})
	b.buf = append(b.buf, trailer[:]...)
	b.ext += len(body)
	b.pending++
	b.stats.Frames++
	b.stats.VecFrames++
	return b.afterAppendLocked()
}

func (b *Batcher) afterAppendLocked() error {
	if b.delay < 0 || len(b.buf)+b.ext >= b.flushBytes {
		return b.flushLocked(&b.stats.SizeFlushes)
	}
	if !b.armed {
		b.armed = true
		if b.timer == nil {
			b.timer = time.AfterFunc(b.delay, b.timerFlush)
		} else {
			b.timer.Reset(b.delay)
		}
	}
	return nil
}

func (b *Batcher) timerFlush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.pending == 0 {
		return
	}
	_ = b.flushLocked(&b.stats.TimeFlushes)
}

// Flush writes any pending frames now.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBatcherClosed
	}
	if b.pending == 0 {
		return b.err
	}
	return b.flushLocked(&b.stats.TimeFlushes)
}

func (b *Batcher) flushLocked(cause *uint64) error {
	if b.armed {
		b.armed = false
		b.timer.Stop()
	}
	if b.err != nil {
		b.releaseCutsLocked()
		return b.err
	}
	if b.pending == 0 {
		return nil
	}
	var (
		n   int64
		err error
	)
	if len(b.cuts) == 0 {
		var w int
		w, err = b.w.Write(b.buf)
		n = int64(w)
	} else {
		n, err = b.writeVecLocked()
	}
	b.stats.Batches++
	b.stats.Bytes += uint64(n)
	*cause++
	b.buf = b.buf[:0]
	b.pending = 0
	if err != nil {
		b.err = err
	}
	return b.err
}

// writeVecLocked assembles the staged bytes and the external bodies
// into one gather list and writes it — writev when the writer supports
// it, a WriteTo fallback loop otherwise. Either way the external
// bodies never pass through the staging buffer. Releases every cut's
// hook afterwards, success or not: the write attempt is over and the
// bodies are no longer needed.
func (b *Batcher) writeVecLocked() (int64, error) {
	iov := b.iov[:0]
	prev := 0
	for _, c := range b.cuts {
		if c.off > prev {
			iov = append(iov, b.buf[prev:c.off])
		}
		if len(c.body) > 0 {
			iov = append(iov, c.body)
			b.stats.VecBytes += uint64(len(c.body))
		}
		prev = c.off
	}
	if len(b.buf) > prev {
		iov = append(iov, b.buf[prev:])
	}
	b.iov = iov // keep the grown backing array for the next flush
	var (
		n   int64
		err error
	)
	bufs := iov // WriteTo consumes its receiver; keep b.iov intact
	if vw, ok := b.w.(vecWriter); ok {
		n, err = vw.WriteVec(&bufs)
	} else {
		// Plain writers get net.Buffers' sequential-Write fallback.
		n, err = bufs.WriteTo(b.w)
	}
	b.releaseCutsLocked()
	for i := range b.iov {
		b.iov[i] = nil // drop body references; the slots get reused
	}
	return n, err
}

func (b *Batcher) releaseCutsLocked() {
	for i := range b.cuts {
		if b.cuts[i].release != nil {
			b.cuts[i].release()
		}
		b.cuts[i] = cut{}
	}
	b.cuts = b.cuts[:0]
	b.ext = 0
}

// Close flushes what it can and refuses further appends. It does not
// close the underlying writer.
func (b *Batcher) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	err := b.flushLocked(&b.stats.TimeFlushes)
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
	}
	return err
}

// Stats returns a snapshot of the counters.
func (b *Batcher) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
