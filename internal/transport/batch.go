package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// Batching defaults. The delay is the "microsecond deadline": long
// enough for a burst of sends to pile into one packet, short enough to
// be invisible next to even a loopback RTT.
const (
	DefaultFlushBytes = 32 << 10
	DefaultFlushDelay = 200 * time.Microsecond
)

// ErrBatcherClosed is returned by Append/Flush after Close.
var ErrBatcherClosed = errors.New("transport: batcher closed")

// ErrBackpressure is returned by Append/AppendVec when the bytes
// queued behind an in-progress write exceed the batcher's bound: the
// peer's reader has stalled and buffering more would only hide the
// congestion. The frame is dropped (datagram semantics) and any
// release hook has already run; the connection stays up.
var ErrBackpressure = errors.New("transport: peer write queue full (backpressure)")

// BatchStats counts a batcher's life. FramesPerBatch (derivable as
// Frames/Batches) is the coalescing figure of merit: >1 means multiple
// frames shared a syscall/packet.
type BatchStats struct {
	Frames       uint64 // frames appended
	Batches      uint64 // Write calls issued
	Bytes        uint64 // bytes written
	SizeFlushes  uint64 // flushes triggered by the size threshold
	TimeFlushes  uint64 // flushes triggered by the deadline
	VecFrames    uint64 // frames whose body went out as its own iovec
	VecBytes     uint64 // body bytes written without staging (writev)
	Backpressure uint64 // appends refused because the queue bound was hit
	MaxQueued    uint64 // high-water mark of bytes staged behind a write
}

// vecWriter is the optional fast path a Batcher probes its writer for:
// a writer that can take a gather list in one call (net.Buffers →
// writev). Connection wrappers (deadline writers) forward it to the
// underlying *net.TCPConn/*net.UnixConn — Go's net package only
// issues a real writev when WriteTo sees the concrete conn type.
type vecWriter interface {
	WriteVec(bufs *net.Buffers) (int64, error)
}

// cut records one externally-held body spliced into the staged stream:
// the staging buffer splits at off, with body (and its release hook)
// in between. Offsets, not subslices — the staging buffer's backing
// array moves as it grows.
type cut struct {
	off     int
	body    []byte
	release func()
}

// Batcher coalesces frames into one buffered write per flush. Appends
// accumulate until the buffer reaches FlushBytes (flushed by the
// appender's goroutine) or the oldest pending frame has waited
// FlushDelay (flushed from a timer). A FlushDelay of zero (or
// negative) disables coalescing: every Append writes immediately — the
// "unbatched" mode the benchmarks compare against.
//
// Writes happen OUTSIDE the batcher's lock: the goroutine that
// triggers a flush takes ownership of the staged bytes (becoming the
// drainer), releases the lock, and writes, so concurrent appenders
// keep staging instead of queueing behind a stalled socket. At most
// one drainer is active at a time, so the underlying writer still
// needs no extra synchronization; it drains everything staged during
// its write before retiring. Errors are sticky and surface on the next
// Append/Flush.
//
// maxBytes, when positive, bounds the bytes staged behind an active
// drainer: an Append that would exceed it fails fast with
// ErrBackpressure instead of buffering unboundedly behind a peer whose
// reader has stalled. The bound only engages while a write is in
// flight — a healthy batcher flushes at FlushBytes long before
// reaching it — so it should be set comfortably above FlushBytes.
type Batcher struct {
	w          io.Writer
	flushBytes int
	delay      time.Duration
	maxBytes   int

	mu        sync.Mutex
	cond      *sync.Cond // signaled when the active drainer retires
	buf       []byte
	spare     []byte // recycled staging buffer (swapped by the drainer)
	cuts      []cut  // external bodies interleaved with buf (vectored)
	spareCuts []cut
	ext       int // total external body bytes pending
	iov       net.Buffers
	pending   int // frames in buf
	armed     bool
	timer     *time.Timer
	writing   bool // a drainer owns a write in progress
	closed    bool
	err       error

	stats BatchStats
}

// NewBatcher wraps w. Zero flushBytes/delay pick the defaults; a
// negative delay disables batching entirely. maxBytes bounds the bytes
// queued behind an in-progress write (see Batcher); zero or negative
// leaves the queue unbounded.
func NewBatcher(w io.Writer, flushBytes int, delay time.Duration, maxBytes int) *Batcher {
	if flushBytes <= 0 {
		flushBytes = DefaultFlushBytes
	}
	if delay == 0 {
		delay = DefaultFlushDelay
	}
	b := &Batcher{w: w, flushBytes: flushBytes, delay: delay, maxBytes: maxBytes}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Append queues one frame. The bytes are copied; the caller's buffer
// is free for reuse on return.
func (b *Batcher) Append(frame []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBatcherClosed
	}
	if b.err != nil {
		return b.err
	}
	if b.maxBytes > 0 && b.writing && len(b.buf)+b.ext+len(frame) > b.maxBytes {
		b.stats.Backpressure++
		return ErrBackpressure
	}
	b.buf = append(b.buf, frame...)
	b.pending++
	b.stats.Frames++
	return b.afterAppendLocked()
}

// AppendHooked is Append plus a flush hook: fn runs once the write
// carrying this frame completes (success or not) — the same contract
// as an AppendVec release, without an external body. A refused append
// (closed, sticky error, backpressure) runs fn inline. The traced
// send path uses it to time transport batch+flush; the untraced path
// never takes it, so the hot path stays hook-free.
func (b *Batcher) AppendHooked(frame []byte, fn func()) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.err != nil {
		if fn != nil {
			fn()
		}
		if b.closed {
			return ErrBatcherClosed
		}
		return b.err
	}
	if b.maxBytes > 0 && b.writing && len(b.buf)+b.ext+len(frame) > b.maxBytes {
		b.stats.Backpressure++
		if fn != nil {
			fn()
		}
		return ErrBackpressure
	}
	b.buf = append(b.buf, frame...)
	if fn != nil {
		b.cuts = append(b.cuts, cut{off: len(b.buf), release: fn})
	}
	b.pending++
	b.stats.Frames++
	return b.afterAppendLocked()
}

// AppendVec queues one frame whose body stays in the caller's buffer:
// hdr and trailer (from AppendDataVec) are copied into the staging
// buffer as usual, but body is only referenced — at flush it goes to
// the socket as its own iovec. release, if non-nil, runs once the
// flush that carries the body completes (successfully or not); until
// then the caller must keep body immutable and alive, which is
// exactly the Lease.Retain/Release contract. A refused append (closed,
// sticky error, or backpressure) runs release inline: nothing will
// carry the body.
func (b *Batcher) AppendVec(hdr, body []byte, trailer [4]byte, release func()) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.err != nil {
		if release != nil {
			release() // nothing will carry the body; drop the reference
		}
		if b.closed {
			return ErrBatcherClosed
		}
		return b.err
	}
	if b.maxBytes > 0 && b.writing && len(b.buf)+b.ext+len(hdr)+len(body)+len(trailer) > b.maxBytes {
		b.stats.Backpressure++
		if release != nil {
			release()
		}
		return ErrBackpressure
	}
	b.buf = append(b.buf, hdr...)
	b.cuts = append(b.cuts, cut{off: len(b.buf), body: body, release: release})
	b.buf = append(b.buf, trailer[:]...)
	b.ext += len(body)
	b.pending++
	b.stats.Frames++
	b.stats.VecFrames++
	return b.afterAppendLocked()
}

func (b *Batcher) afterAppendLocked() error {
	if q := uint64(len(b.buf) + b.ext); q > b.stats.MaxQueued {
		b.stats.MaxQueued = q
	}
	if b.delay >= 0 && len(b.buf)+b.ext < b.flushBytes {
		if !b.armed {
			b.armed = true
			if b.timer == nil {
				b.timer = time.AfterFunc(b.delay, b.timerFlush)
			} else {
				b.timer.Reset(b.delay)
			}
		}
		return nil
	}
	if b.writing {
		// The active drainer picks the staged frames up before it
		// retires; starting a second write would reorder the stream.
		return nil
	}
	return b.drainLocked(&b.stats.SizeFlushes)
}

func (b *Batcher) timerFlush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.armed = false
	if b.closed || b.pending == 0 || b.writing {
		return
	}
	_ = b.drainLocked(&b.stats.TimeFlushes)
}

// Flush writes any pending frames now, waiting out an active drainer
// (which carries everything staged with it) if there is one.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.closed {
			return ErrBatcherClosed
		}
		if !b.writing {
			if b.pending == 0 {
				return b.err
			}
			return b.drainLocked(&b.stats.TimeFlushes)
		}
		b.cond.Wait()
	}
}

// drainLocked makes the calling goroutine the drainer: it takes the
// staged bytes, writes them outside the lock, and loops until nothing
// staged remains (frames appended during a write ride the next one).
// Called with b.mu held and b.writing false; returns with b.mu held.
func (b *Batcher) drainLocked(cause *uint64) error {
	if b.armed {
		b.armed = false
		b.timer.Stop()
	}
	if b.err != nil {
		b.releaseStagedLocked()
		return b.err
	}
	if b.pending == 0 {
		return nil
	}
	buf, cuts := b.takeLocked()
	for {
		b.mu.Unlock()
		n, vecBytes, err := b.writeBatch(buf, cuts)
		// The write attempt is over, success or not: the bodies are no
		// longer needed. Hooks run outside the lock.
		for i := range cuts {
			if cuts[i].release != nil {
				cuts[i].release()
			}
			cuts[i] = cut{}
		}
		b.mu.Lock()
		b.stats.Batches++
		b.stats.Bytes += uint64(n)
		b.stats.VecBytes += vecBytes
		*cause++
		b.spare = buf[:0]
		b.spareCuts = cuts[:0]
		if err != nil && b.err == nil {
			b.err = err
		}
		if b.err == nil && b.pending > 0 {
			buf, cuts = b.takeLocked()
			continue
		}
		b.writing = false
		if b.err != nil {
			b.releaseStagedLocked()
		}
		b.cond.Broadcast()
		return b.err
	}
}

// takeLocked moves the staged frames to the drainer and resets staging
// onto the recycled spare buffers.
func (b *Batcher) takeLocked() ([]byte, []cut) {
	buf, cuts := b.buf, b.cuts
	b.buf, b.spare = b.spare[:0], nil
	b.cuts, b.spareCuts = b.spareCuts[:0], nil
	b.ext = 0
	b.pending = 0
	b.writing = true
	return buf, cuts
}

// writeBatch writes one taken batch with no lock held. The gather-list
// scratch (b.iov) is owned by the active drainer, of which there is at
// most one, so touching it unlocked is safe.
func (b *Batcher) writeBatch(buf []byte, cuts []cut) (n int64, vecBytes uint64, err error) {
	if len(cuts) == 0 {
		var w int
		w, err = b.w.Write(buf)
		return int64(w), 0, err
	}
	iov := b.iov[:0]
	prev := 0
	for _, c := range cuts {
		if c.off > prev {
			iov = append(iov, buf[prev:c.off])
		}
		if len(c.body) > 0 {
			iov = append(iov, c.body)
			vecBytes += uint64(len(c.body))
		}
		prev = c.off
	}
	if len(buf) > prev {
		iov = append(iov, buf[prev:])
	}
	b.iov = iov // keep the grown backing array for the next flush
	bufs := iov // WriteTo consumes its receiver; keep b.iov intact
	if vw, ok := b.w.(vecWriter); ok {
		n, err = vw.WriteVec(&bufs)
	} else {
		// Plain writers get net.Buffers' sequential-Write fallback.
		n, err = bufs.WriteTo(b.w)
	}
	for i := range b.iov {
		b.iov[i] = nil // drop body references; the slots get reused
	}
	return n, vecBytes, err
}

// releaseStagedLocked drops staged frames that will never be written
// (sticky error), running their release hooks.
func (b *Batcher) releaseStagedLocked() {
	for i := range b.cuts {
		if b.cuts[i].release != nil {
			b.cuts[i].release()
		}
		b.cuts[i] = cut{}
	}
	b.cuts = b.cuts[:0]
	b.ext = 0
	b.buf = b.buf[:0]
	b.pending = 0
}

// Close flushes what it can and refuses further appends. It does not
// close the underlying writer. If a drainer is mid-write, Close waits
// for it (bounded by the writer's own deadline, if any).
func (b *Batcher) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.closed {
			return nil
		}
		if !b.writing {
			err := b.drainLocked(&b.stats.TimeFlushes)
			b.closed = true
			if b.timer != nil {
				b.timer.Stop()
			}
			b.cond.Broadcast()
			return err
		}
		b.cond.Wait()
	}
}

// Stats returns a snapshot of the counters.
func (b *Batcher) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
