package transport

import (
	"errors"
	"io"
	"sync"
	"time"
)

// Batching defaults. The delay is the "microsecond deadline": long
// enough for a burst of sends to pile into one packet, short enough to
// be invisible next to even a loopback RTT.
const (
	DefaultFlushBytes = 32 << 10
	DefaultFlushDelay = 200 * time.Microsecond
)

// ErrBatcherClosed is returned by Append/Flush after Close.
var ErrBatcherClosed = errors.New("transport: batcher closed")

// BatchStats counts a batcher's life. FramesPerBatch (derivable as
// Frames/Batches) is the coalescing figure of merit: >1 means multiple
// frames shared a syscall/packet.
type BatchStats struct {
	Frames      uint64 // frames appended
	Batches     uint64 // Write calls issued
	Bytes       uint64 // bytes written
	SizeFlushes uint64 // flushes triggered by the size threshold
	TimeFlushes uint64 // flushes triggered by the deadline
}

// Batcher coalesces frames into one buffered write per flush. Appends
// accumulate until the buffer reaches FlushBytes (flush inline, on the
// appender's goroutine) or the oldest pending frame has waited
// FlushDelay (flush from a timer). A FlushDelay of zero (or negative)
// disables coalescing: every Append writes immediately — the
// "unbatched" mode the benchmarks compare against.
//
// Writes happen under the batcher's lock, so the underlying writer
// needs no extra synchronization; errors are sticky and surface on
// the next Append/Flush.
type Batcher struct {
	w          io.Writer
	flushBytes int
	delay      time.Duration

	mu      sync.Mutex
	buf     []byte
	pending int // frames in buf
	armed   bool
	timer   *time.Timer
	closed  bool
	err     error

	stats BatchStats
}

// NewBatcher wraps w. Zero flushBytes/delay pick the defaults; a
// negative delay disables batching entirely.
func NewBatcher(w io.Writer, flushBytes int, delay time.Duration) *Batcher {
	if flushBytes <= 0 {
		flushBytes = DefaultFlushBytes
	}
	if delay == 0 {
		delay = DefaultFlushDelay
	}
	return &Batcher{w: w, flushBytes: flushBytes, delay: delay}
}

// Append queues one frame. The bytes are copied; the caller's buffer
// is free for reuse on return.
func (b *Batcher) Append(frame []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBatcherClosed
	}
	if b.err != nil {
		return b.err
	}
	b.buf = append(b.buf, frame...)
	b.pending++
	b.stats.Frames++
	if b.delay < 0 || len(b.buf) >= b.flushBytes {
		return b.flushLocked(&b.stats.SizeFlushes)
	}
	if !b.armed {
		b.armed = true
		if b.timer == nil {
			b.timer = time.AfterFunc(b.delay, b.timerFlush)
		} else {
			b.timer.Reset(b.delay)
		}
	}
	return nil
}

func (b *Batcher) timerFlush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.pending == 0 {
		return
	}
	_ = b.flushLocked(&b.stats.TimeFlushes)
}

// Flush writes any pending frames now.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBatcherClosed
	}
	if b.pending == 0 {
		return b.err
	}
	return b.flushLocked(&b.stats.TimeFlushes)
}

func (b *Batcher) flushLocked(cause *uint64) error {
	if b.armed {
		b.armed = false
		b.timer.Stop()
	}
	if b.err != nil {
		return b.err
	}
	if b.pending == 0 {
		return nil
	}
	n, err := b.w.Write(b.buf)
	b.stats.Batches++
	b.stats.Bytes += uint64(n)
	*cause++
	b.buf = b.buf[:0]
	b.pending = 0
	if err != nil {
		b.err = err
	}
	return b.err
}

// Close flushes what it can and refuses further appends. It does not
// close the underlying writer.
func (b *Batcher) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	err := b.flushLocked(&b.stats.TimeFlushes)
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
	}
	return err
}

// Stats returns a snapshot of the counters.
func (b *Batcher) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
