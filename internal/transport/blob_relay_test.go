package transport

// Blob relay: the FE→cache→FE data path over a real two-bridge SAN,
// exercised at the paper's content sizes (a small HTML page, a mid-size
// image, a huge GIF). This is the path the zero-copy data plane exists
// for: the benchmark tracks per-request cost at each size, and the
// latency test pins down the property chunked relay buys — a 512 KB
// body in flight does not stall small frames behind it.

import (
	"bytes"
	"context"
	"sort"
	"testing"
	"time"

	"repro/internal/san"
	"repro/internal/vcache"
)

// relayPair is the FE→cache→FE harness: a vcache service behind one
// bridge, a client endpoint behind the other, loopback TCP between.
type relayPair struct {
	client     *vcache.Client
	netA, netB *san.Network
	ba, bb     *Bridge
}

func startRelayPair(tb testing.TB) *relayPair {
	tb.Helper()
	netA, netB := newWireNet(1), newWireNet(2)
	tb.Cleanup(func() { netA.Close() })
	tb.Cleanup(func() { netB.Close() })
	ba, err := New(Config{Net: netA, Listen: "tcp:127.0.0.1:0", ID: "relay-a"})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { ba.Close() })
	bb, err := New(Config{Net: netB, Listen: "tcp:127.0.0.1:0", ID: "relay-b", Join: []string{ba.Advertise()}})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { bb.Close() })
	if !ba.WaitPeers(1, 5*time.Second) || !bb.WaitPeers(1, 5*time.Second) {
		tb.Fatal("bridges never connected")
	}

	svc := vcache.NewService("cache0", netB, "b-cnode", vcache.NewPartition(256<<20, nil))
	ctx, cancel := context.WithCancel(context.Background())
	tb.Cleanup(cancel)
	go func() { _ = svc.Run(ctx) }()

	ep := netA.Endpoint(san.Addr{Node: "a-fe", Proc: "client"}, 256)
	go func() {
		for msg := range ep.Inbox() {
			ep.DeliverReply(msg)
		}
	}()
	client := vcache.NewClient(ep)
	client.AddNode("cache0", svc.Addr())
	return &relayPair{client: client, netA: netA, netB: netB, ba: ba, bb: bb}
}

// BenchmarkBlobRelay measures one cached-object fetch end to end
// (client → wire → cache partition → wire → client) at the three
// characteristic sizes. The 4 KB and 64 KB responses ride a single
// vectored frame; 512 KB crosses as chunk fragments and reassembles.
// GetView keeps the client side zero-copy, so allocs/op and B/op here
// are the data plane's whole per-request footprint.
func BenchmarkBlobRelay(b *testing.B) {
	for _, tc := range []struct {
		name string
		size int
	}{
		{"4k", 4 << 10},
		{"64k", 64 << 10},
		{"512k", 512 << 10},
	} {
		b.Run(tc.name, func(b *testing.B) {
			pair := startRelayPair(b)
			ctx := context.Background()
			payload := bytes.Repeat([]byte{0xAB}, tc.size)
			pair.client.Put(ctx, "blob", payload, "image/gif", 0)
			if data, _, release, ok := pair.client.GetView(ctx, "blob"); !ok || len(data) != tc.size {
				b.Fatalf("warmup get: ok=%v len=%d", ok, len(data))
			} else if release != nil {
				release()
			}
			b.SetBytes(int64(tc.size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, _, release, ok := pair.client.GetView(ctx, "blob")
				if !ok || len(data) != tc.size {
					b.Fatalf("get: ok=%v len=%d", ok, len(data))
				}
				if release != nil {
					release()
				}
			}
			b.StopTimer()
			if we := pair.netA.Stats().WireErrors + pair.netB.Stats().WireErrors; we != 0 {
				b.Fatalf("wire errors during relay: %d", we)
			}
		})
	}
}

// TestChunkedRelayLatency: while 512 KB responses stream continuously
// across the bridge, interleaved small requests must keep answering
// promptly — the chunked relay splits the big body into chunkFrag
// fragments precisely so a small frame is never queued behind more
// than a couple of them. Also asserts the stream arrived intact, via
// the chunk counters and a clean wire-error count.
func TestChunkedRelayLatency(t *testing.T) {
	pair := startRelayPair(t)
	ctx := context.Background()
	const big = 512 << 10
	payload := bytes.Repeat([]byte{0xCD}, big)
	pair.client.Put(ctx, "big", payload, "image/gif", 0)
	pair.client.Put(ctx, "small", []byte("tiny object"), "text/html", 0)

	// Saturate the B→A direction with chunked 512 KB responses.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			data, _, release, ok := pair.client.GetView(ctx, "big")
			if ok {
				if len(data) != big || data[0] != 0xCD || data[big-1] != 0xCD {
					t.Errorf("big body corrupt: len=%d", len(data))
				}
				if release != nil {
					release()
				}
			}
		}
	}()

	// Interleave small fetches and collect their round-trip times.
	rtts := make([]time.Duration, 0, 100)
	deadline := time.Now().Add(10 * time.Second)
	for len(rtts) < 100 && time.Now().Before(deadline) {
		start := time.Now()
		data, _, release, ok := pair.client.GetView(ctx, "small")
		if !ok {
			t.Fatal("small get missed while big bodies streamed")
		}
		if string(data) != "tiny object" {
			t.Fatalf("small body corrupt: %q", data)
		}
		if release != nil {
			release()
		}
		rtts = append(rtts, time.Since(start))
	}
	close(stop)
	<-done

	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	median := rtts[len(rtts)/2]
	// The bound is deliberately far above a loopback RTT but far below
	// what a wedged batcher (small frames stuck behind 512 KB bodies
	// for a write-deadline's worth of flushes) would produce.
	if median > 100*time.Millisecond {
		t.Fatalf("median small-frame RTT %v while 512 KB bodies streamed; chunked relay is not interleaving", median)
	}

	if st := pair.bb.Stats(); st.Chunked == 0 {
		t.Fatal("cache-side bridge never chunked a 512 KB response")
	}
	if st := pair.ba.Stats(); st.Reassembled == 0 {
		t.Fatal("client-side bridge never reassembled a chunk stream")
	}
	if we := pair.netA.Stats().WireErrors + pair.netB.Stats().WireErrors; we != 0 {
		t.Fatalf("wire errors: %d", we)
	}
	if fe := pair.ba.Stats().FrameErrors + pair.bb.Stats().FrameErrors; fe != 0 {
		t.Fatalf("frame errors: %d", fe)
	}
}
