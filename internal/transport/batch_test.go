package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/san"
)

// recordingWriter counts Write calls — each one models a syscall/packet.
type recordingWriter struct {
	mu     sync.Mutex
	writes int
	bytes  int
}

func (w *recordingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.writes++
	w.bytes += len(p)
	w.mu.Unlock()
	return len(p), nil
}

// TestBatcherPacksBurst is the coalescing acceptance test: a burst of
// frames appended faster than the flush deadline must share packets —
// at least 2 frames per Write on average, and far fewer Writes than
// frames.
func TestBatcherPacksBurst(t *testing.T) {
	w := &recordingWriter{}
	b := NewBatcher(w, 16<<10, 2*time.Millisecond, 0)
	frame := AppendMcast(nil, san.Addr{Node: "a", Proc: "p"}, "g", "k", []byte("0123456789abcdef"))

	const frames = 1000
	for i := 0; i < frames; i++ {
		if err := b.Append(frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	st := b.Stats()
	if st.Frames != frames {
		t.Fatalf("recorded %d frames, want %d", st.Frames, frames)
	}
	if st.Batches == 0 {
		t.Fatal("no batches flushed")
	}
	perBatch := float64(st.Frames) / float64(st.Batches)
	if perBatch < 2 {
		t.Fatalf("burst averaged %.2f frames/batch, want >= 2 (batches=%d)", perBatch, st.Batches)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.writes != int(st.Batches) {
		t.Fatalf("writer saw %d writes, stats say %d batches", w.writes, st.Batches)
	}
	if w.bytes != frames*len(frame) {
		t.Fatalf("writer saw %d bytes, want %d", w.bytes, frames*len(frame))
	}
}

// TestBatcherDeadlineFlush: a lone frame must not wait forever — the
// microsecond deadline flushes it without further appends.
func TestBatcherDeadlineFlush(t *testing.T) {
	w := &recordingWriter{}
	b := NewBatcher(w, 1<<20, time.Millisecond, 0)
	defer b.Close()
	if err := b.Append([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		w.mu.Lock()
		writes := w.writes
		w.mu.Unlock()
		if writes == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deadline flush never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if st := b.Stats(); st.TimeFlushes != 1 {
		t.Fatalf("TimeFlushes = %d, want 1", st.TimeFlushes)
	}
}

// TestBatcherSizeFlush: crossing the size threshold flushes inline,
// before any deadline.
func TestBatcherSizeFlush(t *testing.T) {
	w := &recordingWriter{}
	b := NewBatcher(w, 64, time.Hour, 0) // deadline effectively off
	defer b.Close()
	chunk := make([]byte, 48)
	if err := b.Append(chunk); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Batches != 0 {
		t.Fatal("flushed below the size threshold")
	}
	if err := b.Append(chunk); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.SizeFlushes != 1 || st.Batches != 1 {
		t.Fatalf("size flush not taken: %+v", st)
	}
}

// blockingWriter models a gray-failed peer: the connection is up but
// its reader drains nothing, so every Write stalls until the gate
// opens. Each Write announces itself on entered before blocking.
type blockingWriter struct {
	entered chan struct{}
	gate    chan struct{}
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.entered <- struct{}{}
	<-w.gate
	return len(p), nil
}

// TestBatcherBackpressure: with a write in flight against a stalled
// peer, appends keep staging only up to the byte bound, then fail fast
// with ErrBackpressure (releasing any vectored body's lease) instead
// of buffering unboundedly. Once the writer unsticks, the batcher
// drains and accepts work again.
func TestBatcherBackpressure(t *testing.T) {
	w := &blockingWriter{entered: make(chan struct{}, 16), gate: make(chan struct{})}
	b := NewBatcher(w, 64, time.Millisecond, 256)

	// Arm the timer flush with a small frame, then wait until its
	// drainer is provably stuck inside Write.
	if err := b.Append(make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("timer flush never reached the writer")
	}

	// Staging continues behind the stalled write until the bound.
	if err := b.Append(make([]byte, 100)); err != nil {
		t.Fatalf("first staged append: %v", err)
	}
	if err := b.Append(make([]byte, 100)); err != nil {
		t.Fatalf("second staged append: %v", err)
	}
	if err := b.Append(make([]byte, 100)); err != ErrBackpressure {
		t.Fatalf("append past the bound returned %v, want ErrBackpressure", err)
	}
	released := false
	var trailer [4]byte
	err := b.AppendVec(make([]byte, 16), make([]byte, 100), trailer, func() { released = true })
	if err != ErrBackpressure {
		t.Fatalf("AppendVec past the bound returned %v, want ErrBackpressure", err)
	}
	if !released {
		t.Fatal("refused AppendVec did not run its release hook")
	}

	// Unstick the peer: the drainer finishes, carries the staged
	// frames out, and the batcher accepts work again.
	close(w.gate)
	if err := b.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	if err := b.Append(make([]byte, 100)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Backpressure != 2 {
		t.Fatalf("Backpressure = %d, want 2", st.Backpressure)
	}
	if st.MaxQueued > 256 {
		t.Fatalf("MaxQueued = %d exceeded the 256-byte bound", st.MaxQueued)
	}
}

// TestBatcherUnbatched: negative delay writes every frame immediately
// — the comparison mode for the batched-vs-unbatched bench.
func TestBatcherUnbatched(t *testing.T) {
	w := &recordingWriter{}
	b := NewBatcher(w, 0, -1, 0)
	defer b.Close()
	for i := 0; i < 10; i++ {
		if err := b.Append([]byte("frame")); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.Stats(); st.Batches != 10 {
		t.Fatalf("unbatched mode issued %d writes for 10 frames", st.Batches)
	}
}
