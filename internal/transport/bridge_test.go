package transport

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/san"
	"repro/internal/stub"
	"repro/internal/tacc"
)

// newWireNet builds a wire-mode network carrying the production codec.
func newWireNet(seed int64) *san.Network {
	return san.NewNetwork(seed, san.WithCodec(stub.WireCodec{}))
}

// bridgePair splices two fresh networks over loopback TCP and waits
// for the mesh to form.
func bridgePair(t *testing.T, opts ...func(*Config)) (*san.Network, *san.Network, *Bridge, *Bridge) {
	t.Helper()
	netA, netB := newWireNet(1), newWireNet(2)
	cfgA := Config{Net: netA, Listen: "tcp:127.0.0.1:0", ID: "a"}
	for _, o := range opts {
		o(&cfgA)
	}
	ba, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ba.Close() })
	cfgB := Config{Net: netB, Listen: "tcp:127.0.0.1:0", ID: "b", Join: []string{ba.Advertise()}}
	for _, o := range opts {
		o(&cfgB)
	}
	bb, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bb.Close() })
	if !ba.WaitPeers(1, 5*time.Second) || !bb.WaitPeers(1, 5*time.Second) {
		t.Fatal("bridges never connected")
	}
	return netA, netB, ba, bb
}

// drainTo collects inbox messages into a channel-agnostic poller.
func awaitMsg(t *testing.T, ep *san.Endpoint, timeout time.Duration) san.Message {
	t.Helper()
	select {
	case msg, ok := <-ep.Inbox():
		if !ok {
			t.Fatal("inbox closed while waiting")
		}
		return msg
	case <-time.After(timeout):
		t.Fatal("no message within timeout")
	}
	return san.Message{}
}

// TestBridgeUnicastAndReply: a Send crosses the wire, and a Call/
// Respond round trip works across processes — call ids and the reply
// flag survive framing.
func TestBridgeUnicastAndReply(t *testing.T) {
	netA, netB, ba, bb := bridgePair(t)

	fe := netA.Endpoint(san.Addr{Node: "a-n0", Proc: "fe0"}, 64)
	wk := netB.Endpoint(san.Addr{Node: "b-n0", Proc: "w0"}, 64)

	// Worker loop: echo every task back as a result.
	go func() {
		for msg := range wk.Inbox() {
			if msg.Kind == stub.MsgTask {
				tm := msg.Body.(stub.TaskMsg)
				_ = wk.Respond(msg, stub.MsgResult, stub.ResultMsg{Blob: tm.Task.Input}, 64)
			}
		}
	}()
	// Front-end reply router.
	go func() {
		for msg := range fe.Inbox() {
			fe.DeliverReply(msg)
		}
	}()

	// Plain send A->B (flooded: no route learned yet).
	if err := fe.Send(wk.Addr(), stub.MsgSpawnReq, stub.SpawnReq{Class: "echo"}, 16); err != nil {
		t.Fatalf("cross-process send: %v", err)
	}

	// Call round trip.
	task := stub.TaskMsg{Task: taccTask("hello-across-processes")}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var resp san.Message
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		cctx, ccancel := context.WithTimeout(ctx, 2*time.Second)
		resp, err = fe.Call(cctx, wk.Addr(), stub.MsgTask, task, 128)
		ccancel()
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("cross-process call: %v", err)
	}
	rm, ok := resp.Body.(stub.ResultMsg)
	if !ok || string(rm.Blob.Data) != "hello-across-processes" {
		t.Fatalf("reply body wrong: %#v", resp.Body)
	}

	// Zero wire errors anywhere, and the route table learned both
	// directions (reply taught A; request taught B).
	for name, n := range map[string]*san.Network{"A": netA, "B": netB} {
		if s := n.Stats(); s.WireErrors != 0 {
			t.Fatalf("net %s: WireErrors=%d", name, s.WireErrors)
		}
	}
	if ba.Stats().FramesIn == 0 || bb.Stats().FramesIn == 0 {
		t.Fatal("frames did not flow both ways")
	}
}

// TestBridgeMulticast: a multicast on one network reaches group
// members on the other; encode-once bytes cross the wire once per
// peer, not once per remote member.
func TestBridgeMulticast(t *testing.T) {
	netA, netB, _, bb := bridgePair(t)

	mgr := netA.Endpoint(san.Addr{Node: "a-n0", Proc: "manager"}, 64)
	w1 := netB.Endpoint(san.Addr{Node: "b-n0", Proc: "w1"}, 64)
	w2 := netB.Endpoint(san.Addr{Node: "b-n1", Proc: "w2"}, 64)
	w1.Join(stub.GroupControl)
	w2.Join(stub.GroupControl)
	// Membership changes are local; the bridge needs no announcement.

	beacon := stub.Beacon{Manager: mgr.Addr(), Seq: 7}
	deadline := time.Now().Add(5 * time.Second)
	got1, got2 := false, false
	for !(got1 && got2) && time.Now().Before(deadline) {
		mgr.Multicast(stub.GroupControl, stub.MsgBeacon, beacon, 64)
		select {
		case m := <-w1.Inbox():
			if b, ok := m.Body.(stub.Beacon); ok && b.Seq == 7 {
				got1 = true
			}
		case <-time.After(20 * time.Millisecond):
		}
		select {
		case m := <-w2.Inbox():
			if b, ok := m.Body.(stub.Beacon); ok && b.Seq == 7 {
				got2 = true
			}
		case <-time.After(20 * time.Millisecond):
		}
	}
	if !got1 || !got2 {
		t.Fatalf("multicast did not reach remote members: w1=%v w2=%v", got1, got2)
	}
	if s := netB.Stats(); s.WireErrors != 0 {
		t.Fatalf("WireErrors=%d on receiving net", s.WireErrors)
	}
	if bb.Stats().Injected == 0 {
		t.Fatal("nothing injected on B")
	}
}

// TestBridgeBurstBatches is the batching acceptance test on the real
// path: a send burst across the bridge must average >=2 frames per
// write syscall.
func TestBridgeBurstBatches(t *testing.T) {
	netA, netB, ba, _ := bridgePair(t, func(c *Config) {
		c.FlushDelay = 2 * time.Millisecond
	})
	src := netA.Endpoint(san.Addr{Node: "a-n0", Proc: "src"}, 64)
	dst := netB.Endpoint(san.Addr{Node: "b-n0", Proc: "dst"}, 1<<14)
	go func() {
		for range dst.Inbox() {
		}
	}()

	const burst = 1000
	req := stub.SpawnReq{Class: "burst"}
	for i := 0; i < burst; i++ {
		if err := src.Send(dst.Addr(), stub.MsgSpawnReq, req, 16); err != nil {
			t.Fatal(err)
		}
	}
	// Allow the tail flush.
	time.Sleep(20 * time.Millisecond)
	st := ba.Stats()
	if st.FramesOut < burst {
		t.Fatalf("only %d frames left the bridge, want >= %d", st.FramesOut, burst)
	}
	perBatch := float64(st.FramesOut) / float64(st.Batches)
	if perBatch < 2 {
		t.Fatalf("burst averaged %.2f frames/batch (frames=%d batches=%d), want >= 2",
			perBatch, st.FramesOut, st.Batches)
	}
	t.Logf("burst packing: %d frames in %d batches (%.1f frames/batch)", st.FramesOut, st.Batches, perBatch)
}

// TestBridgeAdvertRouting: endpoint-table advertisement kills the
// first-packet flood. In a three-process mesh, a send to a remote
// endpoint that has produced no traffic yet routes straight to the
// advertising peer — the bridge never floods.
func TestBridgeAdvertRouting(t *testing.T) {
	netA, netB, ba, _ := bridgePair(t)
	netC := newWireNet(3)
	bc, err := New(Config{Net: netC, Listen: "tcp:127.0.0.1:0", ID: "c", Join: []string{ba.Advertise()}})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	if !ba.WaitPeers(2, 5*time.Second) || !bc.WaitPeers(2, 5*time.Second) {
		t.Fatal("mesh never formed")
	}

	src := netA.Endpoint(san.Addr{Node: "a-n0", Proc: "src"}, 8)
	dst := netB.Endpoint(san.Addr{Node: "b-n0", Proc: "dst"}, 64)

	// Wait until A has seen B's advert for dst (hello or incremental).
	waitAdvertised := func() bool {
		ba.mu.RLock()
		_, ok := ba.advertised[dst.Addr()]
		ba.mu.RUnlock()
		return ok
	}
	deadline := time.Now().Add(5 * time.Second)
	for !waitAdvertised() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !waitAdvertised() {
		t.Fatal("dst was never advertised to A")
	}

	if err := src.Send(dst.Addr(), stub.MsgSpawnReq, stub.SpawnReq{Class: "routed"}, 16); err != nil {
		t.Fatalf("advert-routed send: %v", err)
	}
	if m := awaitMsg(t, dst, 5*time.Second); m.Body.(stub.SpawnReq).Class != "routed" {
		t.Fatal("advert-routed message wrong")
	}
	if f := ba.Stats().Floods; f != 0 {
		t.Fatalf("first packet flooded %d times despite the advert", f)
	}
	// C, the uninvolved peer, never saw the unicast.
	if inj := bc.Stats().Injected; inj != 0 {
		t.Fatalf("bystander process received %d injected frames", inj)
	}
}

// TestBridgeInvalidationOnClose: closing a remote endpoint reaches the
// sender as an advert-down; the next send fails fast with
// ErrUnknownAddr instead of silently flooding the mesh forever.
func TestBridgeInvalidationOnClose(t *testing.T) {
	netA, netB, ba, _ := bridgePair(t)
	src := netA.Endpoint(san.Addr{Node: "a-n0", Proc: "src"}, 8)
	dst := netB.Endpoint(san.Addr{Node: "b-n0", Proc: "dst"}, 64)

	// Establish the route (and drain the delivery).
	deadline := time.Now().Add(5 * time.Second)
	delivered := false
	for !delivered && time.Now().Before(deadline) {
		_ = src.Send(dst.Addr(), stub.MsgSpawnReq, stub.SpawnReq{Class: "pre"}, 16)
		select {
		case <-dst.Inbox():
			delivered = true
		case <-time.After(10 * time.Millisecond):
		}
	}
	if !delivered {
		t.Fatal("route never established")
	}

	// Crash the endpoint (no goodbye traffic): the SAN tells the
	// bridge, the bridge tells its peers.
	netB.Drop(dst.Addr())
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		err := src.Send(dst.Addr(), stub.MsgSpawnReq, stub.SpawnReq{Class: "post"}, 16)
		if errors.Is(err, san.ErrUnknownAddr) {
			if ba.Stats().Unroutable == 0 {
				t.Fatal("unroutable send not counted")
			}
			// Re-registration revives the address.
			dst2 := netB.Endpoint(san.Addr{Node: "b-n0", Proc: "dst"}, 64)
			for time.Now().Before(deadline) {
				if err := src.Send(dst2.Addr(), stub.MsgSpawnReq, stub.SpawnReq{Class: "back"}, 16); err == nil {
					select {
					case <-dst2.Inbox():
						return
					case <-time.After(10 * time.Millisecond):
					}
				}
			}
			t.Fatal("address never revived after re-registration")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("dead endpoint never became unroutable at the sender")
}

// TestBridgeMeshGossip: a third process joining via one seed learns of
// — and connects to — the seed's existing peer.
func TestBridgeMeshGossip(t *testing.T) {
	netA, _, ba, _ := bridgePair(t)
	_ = netA
	netC := newWireNet(3)
	bc, err := New(Config{Net: netC, Listen: "tcp:127.0.0.1:0", ID: "c", Join: []string{ba.Advertise()}})
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	if !bc.WaitPeers(2, 5*time.Second) {
		t.Fatalf("joiner only reached %v; gossip did not complete the mesh", bc.Peers())
	}
	if !ba.WaitPeers(2, 5*time.Second) {
		t.Fatalf("seed only sees %v", ba.Peers())
	}
}

// TestBridgeReconnect: severing a connection heals automatically and
// traffic resumes.
func TestBridgeReconnect(t *testing.T) {
	netA, netB, ba, bb := bridgePair(t, func(c *Config) {
		c.RedialMin = 5 * time.Millisecond
	})
	src := netA.Endpoint(san.Addr{Node: "a-n0", Proc: "src"}, 64)
	dst := netB.Endpoint(san.Addr{Node: "b-n0", Proc: "dst"}, 256)

	if err := src.Send(dst.Addr(), stub.MsgSpawnReq, stub.SpawnReq{Class: "pre"}, 16); err != nil {
		t.Fatal(err)
	}
	if m := awaitMsg(t, dst, 5*time.Second); m.Body.(stub.SpawnReq).Class != "pre" {
		t.Fatal("pre-cut message wrong")
	}

	// Cut every live connection out from under both bridges.
	ba.SeverPeers(0)
	bb.SeverPeers(0)

	// Datagram semantics: sends during the outage may drop. Keep
	// sending until one lands again.
	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for !recovered && time.Now().Before(deadline) {
		_ = src.Send(dst.Addr(), stub.MsgSpawnReq, stub.SpawnReq{Class: "post"}, 16)
		select {
		case m, ok := <-dst.Inbox():
			if ok {
				if r, is := m.Body.(stub.SpawnReq); is && r.Class == "post" {
					recovered = true
				}
			}
		case <-time.After(10 * time.Millisecond):
		}
	}
	if !recovered {
		t.Fatal("traffic never resumed after the cut")
	}
}

// TestBridgeUnixSocket: the same splice over a unix domain socket —
// the zero-config local deployment mode.
func TestBridgeUnixSocket(t *testing.T) {
	dir := t.TempDir()
	netA, netB := newWireNet(1), newWireNet(2)
	ba, err := New(Config{Net: netA, Listen: "unix:" + dir + "/a.sock", ID: "ua"})
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Close()
	if ba.ID() != "ua" {
		t.Fatalf("ID() = %q", ba.ID())
	}
	bb, err := New(Config{Net: netB, Listen: "unix:" + dir + "/b.sock", ID: "ub", Join: []string{ba.Advertise()}})
	if err != nil {
		t.Fatal(err)
	}
	defer bb.Close()
	if !ba.WaitPeers(1, 5*time.Second) {
		t.Fatal("unix-socket bridges never connected")
	}
	if peers := ba.Peers(); len(peers) != 1 || peers[0] != "ub" {
		t.Fatalf("Peers() = %v", peers)
	}

	src := netA.Endpoint(san.Addr{Node: "n0", Proc: "src"}, 8)
	dst := netB.Endpoint(san.Addr{Node: "n1", Proc: "dst"}, 64)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_ = src.Send(dst.Addr(), stub.MsgSpawnReq, stub.SpawnReq{Class: "ux"}, 16)
		select {
		case m := <-dst.Inbox():
			if m.Body.(stub.SpawnReq).Class == "ux" {
				return
			}
		case <-time.After(10 * time.Millisecond):
		}
	}
	t.Fatal("no delivery over unix sockets")
}

// TestBridgeRejectsPassthroughNet: a bridge cannot carry a network
// without a codec — bodies must be bytes to cross a process boundary.
func TestBridgeRejectsPassthroughNet(t *testing.T) {
	if _, err := New(Config{Net: san.NewNetwork(1), Listen: "tcp:127.0.0.1:0"}); err == nil {
		t.Fatal("bridge accepted a passthrough network")
	}
	if _, err := New(Config{Listen: "tcp:127.0.0.1:0"}); err == nil {
		t.Fatal("bridge accepted a nil network")
	}
	if _, err := New(Config{Net: newWireNet(1), Listen: ""}); err == nil {
		t.Fatal("bridge accepted an empty listen address")
	}
}

// TestBridgeTeardownNoLeaks: the Close path — bridge, then network —
// joins every goroutine it started. This is the regression test for
// san.Network.Close's contract with the transport layer.
func TestBridgeTeardownNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		netA, netB := newWireNet(10), newWireNet(11)
		ba, err := New(Config{Net: netA, Listen: "tcp:127.0.0.1:0", ID: fmt.Sprintf("la%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		bb, err := New(Config{Net: netB, Listen: "tcp:127.0.0.1:0", ID: fmt.Sprintf("lb%d", i), Join: []string{ba.Advertise()}})
		if err != nil {
			t.Fatal(err)
		}
		if !ba.WaitPeers(1, 5*time.Second) {
			t.Fatal("no peer")
		}
		src := netA.Endpoint(san.Addr{Node: "n0", Proc: "src"}, 64)
		dst := netB.Endpoint(san.Addr{Node: "n1", Proc: "dst"}, 64)
		go func() {
			for range dst.Inbox() {
			}
		}()
		for j := 0; j < 50; j++ {
			_ = src.Send(dst.Addr(), stub.MsgSpawnReq, stub.SpawnReq{Class: "x"}, 16)
		}
		_ = bb.Close()
		_ = ba.Close()
		netA.Close()
		netB.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after teardown", before, runtime.NumGoroutine())
}

func taccTask(payload string) tacc.Task {
	return tacc.Task{Key: "k", Input: tacc.Blob{MIME: "text/plain", Data: []byte(payload)}}
}
