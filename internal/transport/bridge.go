package transport

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/san"
)

// Config assembles a Bridge.
type Config struct {
	// Net is the local SAN the bridge splices into the cluster. It
	// must be in wire mode (san.WithCodec) — bodies cross process
	// boundaries as bytes.
	Net *san.Network

	// Listen is the socket to accept peers on: "tcp:host:port" or
	// "unix:/path" (a bare "host:port" implies tcp). Port 0 picks a
	// free port; Advertise()/Addr() report the resolved address.
	Listen string

	// Advertise overrides the address gossiped to peers. Required
	// when Listen binds a wildcard ("tcp:0.0.0.0:7401") — the
	// resolved listener address is not dialable from other hosts.
	// Defaults to the resolved Listen address.
	Advertise string

	// Join lists seed addresses to dial. One live seed suffices: its
	// hello gossips the rest of the mesh.
	Join []string

	// ID names this bridge uniquely across the cluster. Empty
	// defaults to the advertised listen address, which is unique by
	// construction.
	ID string

	// FlushBytes / FlushDelay tune the per-peer batching writer
	// (DefaultFlushBytes / DefaultFlushDelay when zero; negative
	// FlushDelay disables batching).
	FlushBytes int
	FlushDelay time.Duration

	// RedialMin/RedialMax bound the reconnect backoff (defaults
	// 20 ms / 1 s).
	RedialMin, RedialMax time.Duration

	// HandshakeTimeout bounds the hello exchange (default 5 s).
	HandshakeTimeout time.Duration

	// WriteTimeout bounds one flush to a peer; a stall longer than
	// this kills the connection rather than wedging every sender
	// behind one sick peer (default 10 s).
	WriteTimeout time.Duration

	// MaxBatchBytes bounds the bytes queued behind an in-progress
	// write to one peer. When a peer's reader stalls (gray failure:
	// the connection is up but nothing drains), sends beyond the
	// bound fail fast with ErrBackpressure — the datagram drops and
	// its lease releases — instead of buffering without limit behind
	// the stalled flush. The refusals are counted in
	// Stats.Backpressure so upstream admission control can see remote
	// congestion. Zero picks DefaultMaxBatchBytes; negative disables
	// the bound.
	MaxBatchBytes int

	// ChunkBytes is the chunked-relay threshold: a leased body larger
	// than this streams to peers as FlagChunk fragments (chunkFrag
	// bytes each) instead of one giant frame, so ordinary frames
	// interleave between fragments rather than stalling behind a
	// 500 KB blob occupying a whole batch. Zero picks
	// DefaultChunkBytes; negative disables chunking (bodies up to
	// MaxFramePayload then ride single frames, as before).
	ChunkBytes int

	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.RedialMin <= 0 {
		c.RedialMin = 20 * time.Millisecond
	}
	if c.RedialMax <= 0 {
		c.RedialMax = time.Second
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = DefaultChunkBytes
	}
	if c.MaxBatchBytes == 0 {
		c.MaxBatchBytes = DefaultMaxBatchBytes
	}
	return c
}

// Zero-copy data-plane thresholds.
const (
	// DefaultChunkBytes: leased bodies above this are chunk-streamed.
	// Sized so a 64 KB cache object still rides one (vectored) frame
	// while the long tail of huge GIFs fragments.
	DefaultChunkBytes = 128 << 10
	// chunkFrag is the fragment size of chunked relay — half the
	// default batch threshold, so at most two fragments share a flush
	// and competing small frames never wait behind more than that.
	chunkFrag = 16 << 10
	// vecMinBody: leased bodies at least this large skip the staging
	// copy and go to the socket as their own iovec. Below it the
	// iovec bookkeeping costs more than the memcpy it saves.
	vecMinBody = 2 << 10
	// DefaultMaxBatchBytes bounds the per-peer write queue: far above
	// the flush threshold (a healthy peer drains long before this),
	// small enough that a stalled peer triggers fail-fast
	// backpressure within one RTT's worth of traffic.
	DefaultMaxBatchBytes = 1 << 20
)

// Stats counts bridge activity.
type Stats struct {
	Peers        int    // live peer connections
	FramesOut    uint64 // frames handed to peer batchers
	FramesIn     uint64 // frames decoded from peers
	BytesIn      uint64 // raw bytes read
	Batches      uint64 // write syscalls issued (all peers, lifetime)
	BytesOut     uint64 // bytes written (all peers, lifetime)
	Floods       uint64 // unicasts sent to every peer for lack of any route
	FrameErrors  uint64 // connections dropped for stream corruption
	Injected     uint64 // frames delivered into the local SAN
	Reconnects   uint64 // successful dials after the first
	HellosIn     uint64 // handshakes accepted
	AdvertsIn    uint64 // endpoint-table advertisement frames received
	Unroutable   uint64 // unicasts refused: destination advertised dead
	Chunked      uint64 // outbound bodies streamed as chunk fragments
	Reassembled  uint64 // inbound chunk streams completed and injected
	Backpressure uint64 // frames refused: a peer's write queue was full
	MaxQueued    uint64 // highest bytes any peer ever staged behind a write
}

// peer is one live connection to another bridge.
type peer struct {
	id        string
	advertise string
	conn      net.Conn
	batch     *Batcher
	dialed    bool // this side initiated the connection
	done      chan struct{}
	closeOnce sync.Once
}

func (p *peer) close() {
	p.closeOnce.Do(func() {
		_ = p.batch.Close()
		_ = p.conn.Close()
		close(p.done)
	})
}

// canonical reports whether this connection is the one both sides
// agree to keep when a pair accidentally holds two (each dialed the
// other simultaneously): the connection initiated by the
// lexicographically smaller bridge id wins. Both ends compute the
// same answer from the same two ids.
func (p *peer) canonical(selfID string) bool {
	if p.dialed {
		return selfID < p.id
	}
	return p.id < selfID
}

// Bridge splices a san.Network into a multi-process SAN. It implements
// san.Fabric: the network hands it messages for non-local endpoints;
// frames arriving from peers re-enter through the network's inject
// APIs. Routing is learned, switch-style, from the source address of
// received frames; unicasts with no learned route flood to all peers
// (the wrong recipients drop them silently — datagram semantics).
type Bridge struct {
	cfg       Config
	net       *san.Network
	ln        net.Listener
	advertise string

	mu      sync.RWMutex
	peers   map[string]*peer
	routes  map[san.Addr]*peer // learned from observed traffic (freshest)
	dialing map[string]bool    // canonical addrs with a live dial loop
	closed  bool

	// Endpoint-table advertisement state: locals is this process's
	// endpoint set (announced in hellos and incremental adverts);
	// advertised maps remote endpoints to the peer that vouched for
	// them; tombs records addresses known to be dead — advertised or
	// local endpoints that closed and were never re-announced — so a
	// send to one fails fast (ErrUnknownAddr on the SAN) instead of
	// flooding the mesh with undeliverable datagrams.
	locals     map[san.Addr]bool
	advertised map[san.Addr]*peer
	tombs      map[san.Addr]bool
	tombOrder  []san.Addr // FIFO eviction for tombs

	done chan struct{}
	wg   sync.WaitGroup

	framesOut   atomic.Uint64
	framesIn    atomic.Uint64
	bytesIn     atomic.Uint64
	floods      atomic.Uint64
	frameErrors atomic.Uint64
	injected    atomic.Uint64
	reconnects  atomic.Uint64
	hellosIn    atomic.Uint64
	advertsIn   atomic.Uint64
	unroutable  atomic.Uint64
	chunked     atomic.Uint64
	reassembled atomic.Uint64
	chunkSeq    atomic.Uint64 // per-bridge fragment-stream id source
	// severedUntil, while in the future, suppresses dials and inbound
	// peer registrations (SeverPeers) — guarded by mu.
	severedUntil time.Time

	// Batch counters accumulated from connections that have closed;
	// Stats() adds the live batchers on top.
	deadBatches      atomic.Uint64
	deadBytesOut     atomic.Uint64
	deadBackpressure atomic.Uint64
	deadMaxQueued    atomic.Uint64 // max, not sum: high-water across dead conns

	framePool sync.Pool
}

// New opens the listener, installs the bridge as the network's fabric,
// and begins dialing the seed addresses. The bridge owns its listener
// and all peer connections until Close.
func New(cfg Config) (*Bridge, error) {
	cfg = cfg.withDefaults()
	if cfg.Net == nil {
		return nil, errors.New("transport: Config.Net is required")
	}
	if !cfg.Net.WireMode() {
		return nil, errors.New("transport: bridge requires a wire-mode network (san.WithCodec)")
	}
	network, address, err := splitListen(cfg.Listen)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	advertise := network + ":" + ln.Addr().String()
	if cfg.Advertise != "" {
		advertise, err = canonicalAddr(cfg.Advertise)
		if err != nil {
			_ = ln.Close()
			return nil, fmt.Errorf("transport: bad advertise address: %w", err)
		}
	}
	b := &Bridge{
		cfg:        cfg,
		net:        cfg.Net,
		ln:         ln,
		advertise:  advertise,
		peers:      make(map[string]*peer),
		routes:     make(map[san.Addr]*peer),
		dialing:    make(map[string]bool),
		locals:     make(map[san.Addr]bool),
		advertised: make(map[san.Addr]*peer),
		tombs:      make(map[san.Addr]bool),
		done:       make(chan struct{}),
	}
	b.framePool.New = func() any {
		buf := make([]byte, 0, 2048)
		return &buf
	}
	if b.cfg.ID == "" {
		b.cfg.ID = b.advertise
	}
	cfg.Net.SetFabric(b)
	cfg.Net.Registry().SetCollector("bridge", func(emit func(string, float64)) {
		st := b.Stats()
		emit("peers", float64(st.Peers))
		emit("frames_out", float64(st.FramesOut))
		emit("frames_in", float64(st.FramesIn))
		emit("bytes_in", float64(st.BytesIn))
		emit("bytes_out", float64(st.BytesOut))
		emit("batches", float64(st.Batches))
		emit("floods", float64(st.Floods))
		emit("frame_errors", float64(st.FrameErrors))
		emit("injected", float64(st.Injected))
		emit("reconnects", float64(st.Reconnects))
		emit("unroutable", float64(st.Unroutable))
		emit("chunked", float64(st.Chunked))
		emit("reassembled", float64(st.Reassembled))
		emit("backpressure", float64(st.Backpressure))
		emit("max_queued", float64(st.MaxQueued))
	})
	b.wg.Add(1)
	go b.acceptLoop()
	for _, addr := range cfg.Join {
		b.ensureDial(addr)
	}
	return b, nil
}

// splitListen parses "tcp:host:port" / "unix:/path" / bare "host:port"
// into a net.Listen network+address pair.
func splitListen(s string) (network, address string, err error) {
	switch {
	case strings.HasPrefix(s, "tcp:"):
		return "tcp", s[len("tcp:"):], nil
	case strings.HasPrefix(s, "unix:"):
		return "unix", s[len("unix:"):], nil
	case s == "":
		return "", "", errors.New("transport: empty listen address")
	default:
		return "tcp", s, nil
	}
}

// canonicalAddr normalizes a dialable address to the advertised form.
func canonicalAddr(s string) (string, error) {
	network, address, err := splitListen(s)
	if err != nil {
		return "", err
	}
	return network + ":" + address, nil
}

// ID returns the bridge's cluster-unique id.
func (b *Bridge) ID() string { return b.cfg.ID }

// Advertise returns the canonical dialable listen address
// (scheme-prefixed), resolved — useful with ":0" listens.
func (b *Bridge) Advertise() string { return b.advertise }

// Peers returns the ids of currently connected peers.
func (b *Bridge) Peers() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.peers))
	for id := range b.peers {
		out = append(out, id)
	}
	return out
}

// WaitPeers blocks until at least n peers are connected (true) or the
// timeout expires (false).
func (b *Bridge) WaitPeers(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		b.mu.RLock()
		got := len(b.peers)
		b.mu.RUnlock()
		if got >= n {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// SeverPeers force-closes every live peer connection and, when d > 0,
// refuses dials and inbound registrations until d elapses — the
// multi-process analogue of san.Network.PartitionFor, so scripted
// TCP-partition schedules share the in-process chaos vocabulary.
// Healing is automatic: when the window passes, the standing dial
// loops reconnect and the hello exchange re-advertises endpoints.
// SeverPeers(0) just drops the current connections (redial starts
// immediately), matching a transient network blip.
func (b *Bridge) SeverPeers(d time.Duration) {
	b.mu.Lock()
	if d > 0 {
		until := time.Now().Add(d)
		if until.After(b.severedUntil) {
			b.severedUntil = until
		}
	}
	peers := b.peersLocked()
	b.mu.Unlock()
	for _, p := range peers {
		// Close the conn, not the peer: the read loop unblocks with an
		// error and runConn's teardown (removePeer → p.close) does the
		// bookkeeping exactly as for a real network failure.
		_ = p.conn.Close()
	}
}

// severedFor reports how much of a SeverPeers window remains.
func (b *Bridge) severedFor() time.Duration {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.severedUntil.IsZero() {
		return 0
	}
	return time.Until(b.severedUntil)
}

// Stats returns a snapshot of the counters.
func (b *Bridge) Stats() Stats {
	st := Stats{
		FramesOut:    b.framesOut.Load(),
		FramesIn:     b.framesIn.Load(),
		BytesIn:      b.bytesIn.Load(),
		Floods:       b.floods.Load(),
		FrameErrors:  b.frameErrors.Load(),
		Injected:     b.injected.Load(),
		Reconnects:   b.reconnects.Load(),
		HellosIn:     b.hellosIn.Load(),
		AdvertsIn:    b.advertsIn.Load(),
		Unroutable:   b.unroutable.Load(),
		Chunked:      b.chunked.Load(),
		Reassembled:  b.reassembled.Load(),
		Batches:      b.deadBatches.Load(),
		BytesOut:     b.deadBytesOut.Load(),
		Backpressure: b.deadBackpressure.Load(),
		MaxQueued:    b.deadMaxQueued.Load(),
	}
	b.mu.RLock()
	st.Peers = len(b.peers)
	live := make([]*Batcher, 0, len(b.peers))
	for _, p := range b.peers {
		live = append(live, p.batch)
	}
	b.mu.RUnlock()
	for _, batch := range live {
		bs := batch.Stats()
		st.Batches += bs.Batches
		st.BytesOut += bs.Bytes
		st.Backpressure += bs.Backpressure
		if bs.MaxQueued > st.MaxQueued {
			st.MaxQueued = bs.MaxQueued
		}
	}
	return st
}

// Close tears the bridge down: fabric detached, listener closed, all
// peer connections flushed and closed, every goroutine joined.
func (b *Bridge) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	peers := make([]*peer, 0, len(b.peers))
	for _, p := range b.peers {
		peers = append(peers, p)
	}
	b.mu.Unlock()

	if !b.net.Closed() {
		b.net.SetFabric(nil)
	}
	close(b.done)
	_ = b.ln.Close()
	for _, p := range peers {
		p.close()
	}
	b.wg.Wait()
	return nil
}

func (b *Bridge) isClosed() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.closed
}

func (b *Bridge) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}

// ---------------------------------------------------------------------------
// Fabric (outbound).

// Unicast implements san.Fabric. Routing preference: a route learned
// from observed traffic (freshest), then the peer that advertised the
// endpoint in its hello/advert stream. An address that was advertised
// and then invalidated (the endpoint closed) is refused outright —
// the SAN surfaces that as ErrUnknownAddr, the cross-process analogue
// of sending to an unbound local address. Only a genuinely never-seen
// address still floods, as a last resort for races the advert stream
// has not covered yet.
func (b *Bridge) Unicast(from, to san.Addr, kind string, callID uint64, reply bool, trace obs.TraceID, wire []byte, lease *san.Lease) bool {
	var stack [1]*peer
	targets := stack[:0]
	b.mu.RLock()
	if p, ok := b.routes[to]; ok {
		targets = append(targets, p)
	} else if p, ok := b.advertised[to]; ok {
		targets = append(targets, p)
	} else if b.tombs[to] {
		b.mu.RUnlock()
		b.unroutable.Add(1)
		return false
	} else {
		for _, p := range b.peers {
			targets = append(targets, p)
		}
		if len(targets) > 0 {
			b.floods.Add(1)
		}
	}
	b.mu.RUnlock()
	if len(targets) == 0 {
		return false
	}

	var flags byte
	if reply {
		flags |= FlagReply
	}
	// Huge leased bodies stream as chunk fragments so competing small
	// frames interleave between them instead of stalling a whole batch
	// behind one 500 KB blob.
	if lease != nil && b.cfg.ChunkBytes > 0 && len(wire) > b.cfg.ChunkBytes && len(wire) <= MaxChunkBody {
		return b.unicastChunked(targets, from, to, kind, callID, flags, trace, wire, lease)
	}

	bufp := b.framePool.Get().(*[]byte)
	sent := 0
	if lease != nil && len(wire) >= vecMinBody {
		// Vectored: only the header and CRC trailer are staged; the
		// already-encoded body goes to the socket as its own iovec,
		// pinned by one lease reference per peer until its flush.
		hdr, trailer := AppendDataVec((*bufp)[:0], from, to, kind, callID, flags, uint64(trace), nil, wire)
		for _, p := range targets {
			lease.Retain()
			release := lease.Release
			if trace.Sampled() {
				release = b.flushSpan(trace, kind, len(wire), lease.Release)
			}
			if b.appendVecToPeer(p, hdr, wire, trailer, release) {
				sent++
			}
		}
		*bufp = hdr[:0]
	} else {
		frame := AppendDataTrace((*bufp)[:0], from, to, kind, callID, flags, uint64(trace), wire)
		for _, p := range targets {
			if trace.Sampled() {
				if b.appendToPeerHooked(p, frame, b.flushSpan(trace, kind, len(wire), nil)) {
					sent++
				}
			} else if b.appendToPeer(p, frame) {
				sent++
			}
		}
		*bufp = frame[:0]
	}
	b.framesOut.Add(uint64(sent))
	b.framePool.Put(bufp)
	return sent > 0
}

// unicastChunked streams wire to each target as FlagChunk fragments of
// chunkFrag bytes. Each fragment is a self-contained frame (envelope:
// stream id, total, offset) carrying its slice of the body as an iovec,
// so the body is still never copied on the send side; the receiver
// reassembles into one lease and injects the completed message. A
// target counts as reached if its first fragment was accepted — a
// failure later in the stream is a dying connection, and the loss
// surfaces exactly like any other dropped datagram.
//
// Lease discipline: every appendVecToPeer call is handed exactly one
// retained reference, and the batcher guarantees exactly one release
// of it — inline when the batcher is closed or sticky-errored, after
// the flush that wrote the fragment otherwise. The Retain therefore
// sits immediately before the hand-off and nowhere else; this loop
// itself never releases.
func (b *Bridge) unicastChunked(targets []*peer, from, to san.Addr, kind string, callID uint64, flags byte, trace obs.TraceID, wire []byte, lease *san.Lease) bool {
	id := b.chunkSeq.Add(1)
	total := len(wire)
	flags |= FlagChunk
	bufp := b.framePool.Get().(*[]byte)
	scratch := (*bufp)[:0]
	var env [3 * 10]byte // three uvarints, 10 bytes max each
	sent := 0
	frames := 0
	// A peer whose batcher errors mid-stream is dying (appendVecToPeer
	// already closed it): skip its remaining fragments. Feeding them to
	// the closed batcher would only retain/release the lease N more
	// times for nothing — and were the connection redialed mid-stream,
	// the fresh batcher would accept a tail with no head, seeding a
	// reassembly build on the receiver that can never complete.
	var failed map[*peer]bool
	for off := 0; off < total; off += chunkFrag {
		end := off + chunkFrag
		if end > total {
			end = total
		}
		frag := wire[off:end]
		prefix := appendChunkEnv(env[:0], id, total, off)
		hdr, trailer := AppendDataVec(scratch[:0], from, to, kind, callID, flags, uint64(trace), prefix, frag)
		scratch = hdr
		last := end == total
		for _, p := range targets {
			if failed[p] {
				continue
			}
			lease.Retain() // ownership of this one ref passes to the batcher
			release := lease.Release
			if trace.Sampled() && last {
				// One span per chunked send, closed when the final
				// fragment's flush completes.
				release = b.flushSpan(trace, kind, total, lease.Release)
			}
			if b.appendVecToPeer(p, hdr, frag, trailer, release) {
				frames++
				if off == 0 {
					sent++
				}
			} else {
				if failed == nil {
					failed = make(map[*peer]bool, len(targets))
				}
				failed[p] = true
			}
		}
	}
	b.framesOut.Add(uint64(frames))
	b.chunked.Add(1)
	*bufp = scratch[:0]
	b.framePool.Put(bufp)
	return sent > 0
}

// ---------------------------------------------------------------------------
// Endpoint-table advertisement (san.Fabric observers).

// EndpointUp implements san.Fabric: a local endpoint registered. Peers
// learn it immediately through an incremental advert so their first
// packet to it routes instead of flooding.
func (b *Bridge) EndpointUp(a san.Addr) {
	b.mu.Lock()
	if b.closed || b.locals[a] {
		b.mu.Unlock()
		return
	}
	b.locals[a] = true
	delete(b.tombs, a)
	peers := b.peersLocked()
	b.mu.Unlock()
	b.broadcastAdvert(AdvertUp, a, peers)
}

// EndpointDown implements san.Fabric: a local endpoint closed. Peers
// invalidate their route and tombstone the address, so their next send
// to it reads as ErrUnknownAddr instead of a silent flood.
func (b *Bridge) EndpointDown(a san.Addr) {
	b.mu.Lock()
	if b.closed || !b.locals[a] {
		b.mu.Unlock()
		return
	}
	delete(b.locals, a)
	b.tombstoneLocked(a)
	peers := b.peersLocked()
	b.mu.Unlock()
	b.broadcastAdvert(AdvertDown, a, peers)
}

func (b *Bridge) peersLocked() []*peer {
	out := make([]*peer, 0, len(b.peers))
	for _, p := range b.peers {
		out = append(out, p)
	}
	return out
}

func (b *Bridge) broadcastAdvert(op byte, a san.Addr, peers []*peer) {
	if len(peers) == 0 {
		return
	}
	bufp := b.framePool.Get().(*[]byte)
	var one [1]san.Addr
	one[0] = a
	frame := AppendAdvert((*bufp)[:0], op, one[:])
	for _, p := range peers {
		b.appendToPeer(p, frame)
	}
	*bufp = frame[:0]
	b.framePool.Put(bufp)
}

// maxTombs bounds the dead-endpoint set; the oldest tombstones fall
// off FIFO. Losing a tombstone only downgrades a fast failure to one
// flood, so the bound is safe.
const maxTombs = 4096

func (b *Bridge) tombstoneLocked(a san.Addr) {
	if b.tombs[a] {
		return
	}
	b.tombs[a] = true
	b.tombOrder = append(b.tombOrder, a)
	if len(b.tombOrder) > maxTombs {
		if b.tombs[b.tombOrder[0]] {
			delete(b.tombs, b.tombOrder[0])
		}
		b.tombOrder = b.tombOrder[1:]
	}
}

// applyAdvertised records a peer's claim to host the given endpoints.
func (b *Bridge) applyAdvertised(p *peer, addrs []san.Addr) {
	if len(addrs) == 0 {
		return
	}
	b.mu.Lock()
	for _, a := range addrs {
		b.advertised[a] = p
		delete(b.tombs, a)
	}
	b.mu.Unlock()
}

// appendToPeer queues a frame on one peer's batcher. A write error
// (e.g. a WriteTimeout on a stalled peer) is fatal to the connection:
// the conn is closed so the read loop unblocks, the peer is removed,
// and the dial loop redials — a wedged connection must never keep
// counting as a live peer.
func (b *Bridge) appendToPeer(p *peer, frame []byte) bool {
	err := p.batch.Append(frame)
	if err == nil {
		return true
	}
	if errors.Is(err, ErrBackpressure) {
		// Remote congestion, not a dead connection: drop this datagram
		// and keep the conn. Closing here would turn every overload
		// into a reconnect storm; the counter lets admission control
		// upstream shed instead.
		return false
	}
	if !errors.Is(err, ErrBatcherClosed) {
		b.logf("transport: %s: write to peer %s failed, dropping connection: %v", b.cfg.ID, p.id, err)
		p.close()
	}
	return false
}

// appendVecToPeer is appendToPeer for vectored frames: hdr and trailer
// are staged, body rides as its own iovec, release runs when the
// batcher is done with the body (AppendVec runs it itself on a closed
// or sticky-error batcher). Same fatality rule as appendToPeer.
func (b *Bridge) appendVecToPeer(p *peer, hdr, body []byte, trailer [4]byte, release func()) bool {
	err := p.batch.AppendVec(hdr, body, trailer, release)
	if err == nil {
		return true
	}
	if errors.Is(err, ErrBackpressure) {
		return false // congestion drop; see appendToPeer
	}
	if !errors.Is(err, ErrBatcherClosed) {
		b.logf("transport: %s: write to peer %s failed, dropping connection: %v", b.cfg.ID, p.id, err)
		p.close()
	}
	return false
}

// appendToPeerHooked is appendToPeer for traced frames: fn runs when
// the flush carrying the frame completes (AppendHooked runs it inline
// on a refused append). Same fatality rule as appendToPeer.
func (b *Bridge) appendToPeerHooked(p *peer, frame []byte, fn func()) bool {
	err := p.batch.AppendHooked(frame, fn)
	if err == nil {
		return true
	}
	if errors.Is(err, ErrBackpressure) {
		return false // congestion drop; see appendToPeer
	}
	if !errors.Is(err, ErrBatcherClosed) {
		b.logf("transport: %s: write to peer %s failed, dropping connection: %v", b.cfg.ID, p.id, err)
		p.close()
	}
	return false
}

// flushSpan builds a batcher completion hook that records a
// "transport.flush" span for a sampled trace: the duration covers the
// batching wait plus the write that carried the frame. inner, when
// non-nil, runs first (the body's lease release).
func (b *Bridge) flushSpan(trace obs.TraceID, kind string, size int, inner func()) func() {
	start := time.Now()
	return func() {
		if inner != nil {
			inner()
		}
		b.net.Tracer().Record(obs.Span{
			Trace: trace,
			Comp:  b.cfg.ID,
			Hop:   "transport.flush",
			Note:  kind,
			Start: start.UnixNano(),
			Dur:   int64(time.Since(start)),
		})
	}
}

// Multicast implements san.Fabric: the frame is built once and the
// same bytes are appended to every peer's batch — the encode-once
// fan-out extended across the wire.
func (b *Bridge) Multicast(from san.Addr, group, kind string, wire []byte) {
	b.mu.RLock()
	if len(b.peers) == 0 {
		b.mu.RUnlock()
		return
	}
	peers := make([]*peer, 0, len(b.peers))
	for _, p := range b.peers {
		peers = append(peers, p)
	}
	b.mu.RUnlock()

	bufp := b.framePool.Get().(*[]byte)
	frame := AppendMcast((*bufp)[:0], from, group, kind, wire)
	sent := 0
	for _, p := range peers {
		if b.appendToPeer(p, frame) {
			sent++
		}
	}
	b.framesOut.Add(uint64(sent))
	*bufp = frame[:0]
	b.framePool.Put(bufp)
}

// ---------------------------------------------------------------------------
// Connection lifecycle.

func (b *Bridge) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			_, _ = b.runConn(conn, false)
		}()
	}
}

// ensureDial starts (at most) one persistent dial loop for addr.
func (b *Bridge) ensureDial(addr string) {
	canon, err := canonicalAddr(addr)
	if err != nil {
		b.logf("transport: bad peer address %q: %v", addr, err)
		return
	}
	b.mu.Lock()
	if b.closed || canon == b.advertise || b.dialing[canon] {
		b.mu.Unlock()
		return
	}
	b.dialing[canon] = true
	// Add under the lock: Close sets closed under the same lock before
	// it waits, so the waitgroup can never be grown after Wait begins.
	b.wg.Add(1)
	b.mu.Unlock()
	go b.dialLoop(canon)
}

// dialRetireAfter bounds how long a dial loop keeps retrying a
// gossiped address that never answers before retiring. Configured
// seed addresses are never retired — the operator asserted they
// exist.
const dialRetireAfter = 2 * time.Minute

// dialLoop keeps a connection to addr alive: dial, hand off to
// runConn, wait for the peer to die, redial with backoff. It stands
// down while another connection covers the same peer — matched by the
// peer id the address last answered with, so an aliased address
// ("localhost" vs "127.0.0.1") or a duplicate-rejected dial waits on
// the surviving connection instead of churning. Gossiped addresses
// that stay dead past dialRetireAfter are retired (a future hello
// re-announces them); configured seeds retry forever.
func (b *Bridge) dialLoop(canon string) {
	defer b.wg.Done()
	defer func() {
		b.mu.Lock()
		delete(b.dialing, canon)
		b.mu.Unlock()
	}()
	network, address, _ := splitListen(canon)
	backoff := b.cfg.RedialMin
	connected := false
	peerID := "" // who this address last identified as
	deadSince := time.Now()
	for {
		if b.isClosed() {
			return
		}
		if wait := b.severedFor(); wait > 0 {
			// A scripted partition (SeverPeers) is in force: hold all
			// redials until the window passes, then heal.
			select {
			case <-time.After(wait):
			case <-b.done:
				return
			}
			continue
		}
		if p := b.peerByAdvertiseOrID(canon, peerID); p != nil {
			select {
			case <-p.done:
				backoff = b.cfg.RedialMin
				deadSince = time.Now()
			case <-b.done:
				return
			}
			continue
		}
		conn, err := net.DialTimeout(network, address, b.cfg.HandshakeTimeout)
		if err == nil {
			id, kept := b.runConn(conn, true) // returns when the conn dies or is rejected
			if id != "" {
				peerID = id
			}
			if kept {
				if connected {
					b.reconnects.Add(1)
				}
				connected = true
				backoff = b.cfg.RedialMin
				deadSince = time.Now()
				continue
			}
			// Rejected (duplicate, self, or bad handshake): fall
			// through to the backoff — instant redial would churn.
		}
		if !b.isSeed(canon) && time.Since(deadSince) > dialRetireAfter {
			b.logf("transport: %s: retiring dead gossiped address %s", b.cfg.ID, canon)
			return
		}
		select {
		case <-time.After(backoff):
		case <-b.done:
			return
		}
		backoff *= 2
		if backoff > b.cfg.RedialMax {
			backoff = b.cfg.RedialMax
		}
	}
}

func (b *Bridge) isSeed(canon string) bool {
	for _, s := range b.cfg.Join {
		if c, err := canonicalAddr(s); err == nil && c == canon {
			return true
		}
	}
	return false
}

// peerByAdvertiseOrID finds a live peer covering the dialed address:
// by its advertised address, or by the identity the address answered
// with last time (covers aliased addresses and duplicate-conn
// rejections).
func (b *Bridge) peerByAdvertiseOrID(canon, id string) *peer {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if id != "" {
		if p, ok := b.peers[id]; ok {
			return p
		}
	}
	for _, p := range b.peers {
		if p.advertise == canon {
			return p
		}
	}
	return nil
}

// helloFor snapshots the gossip payload: who we are, every peer
// address we can vouch for, and the endpoint table we host — so the
// receiver can route its very first packet to us instead of flooding.
func (b *Bridge) helloFor() Hello {
	h := Hello{ID: b.cfg.ID, Advertise: b.advertise}
	b.mu.RLock()
	for _, p := range b.peers {
		if p.advertise != "" {
			h.Peers = append(h.Peers, p.advertise)
		}
	}
	for a := range b.locals {
		h.Endpoints = append(h.Endpoints, a)
	}
	b.mu.RUnlock()
	return h
}

// runConn performs the handshake, registers the peer, and runs the
// read loop until the connection dies. It blocks; dialers call it
// inline, the acceptor spawns a goroutine per conn. It returns the
// peer id the handshake produced ("" if none) and whether the
// connection was kept (registered and run, vs rejected).
func (b *Bridge) runConn(conn net.Conn, dialed bool) (peerID string, kept bool) {
	// Handshake: send our hello, read theirs, both under a deadline.
	deadline := time.Now().Add(b.cfg.HandshakeTimeout)
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(AppendHello(nil, b.helloFor())); err != nil {
		_ = conn.Close()
		return "", false
	}
	dec := NewLeasedDecoder()
	hello, err := b.readHello(conn, dec)
	if err != nil {
		b.logf("transport: handshake with %s failed: %v", conn.RemoteAddr(), err)
		_ = conn.Close()
		dec.Close()
		return "", false
	}
	_ = conn.SetDeadline(time.Time{})
	b.hellosIn.Add(1)

	maxBatch := b.cfg.MaxBatchBytes
	if maxBatch < 0 {
		maxBatch = 0 // negative config = unbounded batcher
	}
	p := &peer{
		id:        hello.ID,
		advertise: hello.Advertise,
		conn:      conn,
		batch:     NewBatcher(&deadlineWriter{conn: conn, timeout: b.cfg.WriteTimeout}, b.cfg.FlushBytes, b.cfg.FlushDelay, maxBatch),
		dialed:    dialed,
		done:      make(chan struct{}),
	}
	if !b.registerPeer(p) {
		_ = conn.Close()
		dec.Close()
		return hello.ID, false
	}
	b.logf("transport: %s connected to peer %s (%s, dialed=%v)", b.cfg.ID, p.id, p.advertise, dialed)

	// The peer's hello advertises its endpoint table; seed routes from
	// it so nothing we send it ever needs the flood path.
	b.applyAdvertised(p, hello.Endpoints)
	// Catch-up advert: any endpoint that registered here between our
	// hello snapshot and the peer becoming visible would otherwise be
	// missed by both the hello and the incremental broadcast.
	b.mu.RLock()
	catchup := make([]san.Addr, 0, len(b.locals))
	for a := range b.locals {
		catchup = append(catchup, a)
	}
	b.mu.RUnlock()
	if len(catchup) > 0 {
		bufp := b.framePool.Get().(*[]byte)
		frame := AppendAdvert((*bufp)[:0], AdvertUp, catchup)
		b.appendToPeer(p, frame)
		*bufp = frame[:0]
		b.framePool.Put(bufp)
	}

	// Gossip: dial anyone the peer knows that we don't.
	b.ensureDial(hello.Advertise)
	for _, addr := range hello.Peers {
		b.ensureDial(addr)
	}

	b.readLoop(p, dec)
	dec.Close()
	b.removePeer(p)
	return hello.ID, true
}

// readHello pulls the first frame off the conn; it must be a hello.
func (b *Bridge) readHello(conn net.Conn, dec *Decoder) (Hello, error) {
	buf := make([]byte, 4096)
	for {
		if f, ok, err := dec.Next(); err != nil {
			return Hello{}, err
		} else if ok {
			if f.Type != FrameHello {
				return Hello{}, fmt.Errorf("%w: first frame type %d, want hello", ErrFrameFormat, f.Type)
			}
			return f.DecodeHello()
		}
		n, err := conn.Read(buf)
		if n > 0 {
			b.bytesIn.Add(uint64(n))
			_, _ = dec.Write(buf[:n])
		}
		if err != nil {
			return Hello{}, err
		}
	}
}

// registerPeer installs p, resolving duplicate connections to the same
// peer with the canonical-initiator rule so both ends keep the same
// one. Returns false if p should be discarded.
func (b *Bridge) registerPeer(p *peer) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || p.id == b.cfg.ID {
		return false
	}
	if time.Now().Before(b.severedUntil) {
		return false // partition window in force: refuse inbound conns too
	}
	if old, ok := b.peers[p.id]; ok {
		if !p.canonical(b.cfg.ID) {
			return false // keep the existing (canonical or first) conn
		}
		if old.canonical(b.cfg.ID) {
			return false // existing conn already canonical; keep it
		}
		// The new conn is the canonical one: evict the old.
		delete(b.peers, p.id)
		for addr, rp := range b.routes {
			if rp == old {
				delete(b.routes, addr)
			}
		}
		go old.close()
	}
	b.peers[p.id] = p
	return true
}

func (b *Bridge) removePeer(p *peer) {
	p.close()
	bs := p.batch.Stats()
	b.deadBatches.Add(bs.Batches)
	b.deadBytesOut.Add(bs.Bytes)
	b.deadBackpressure.Add(bs.Backpressure)
	for {
		old := b.deadMaxQueued.Load()
		if bs.MaxQueued <= old || b.deadMaxQueued.CompareAndSwap(old, bs.MaxQueued) {
			break
		}
	}
	b.mu.Lock()
	if b.peers[p.id] == p {
		delete(b.peers, p.id)
	}
	for addr, rp := range b.routes {
		if rp == p {
			delete(b.routes, addr)
		}
	}
	// The peer's advertised endpoints are unreachable but NOT dead —
	// it may reconnect and re-advertise them in its next hello — so
	// they are forgotten, not tombstoned.
	for addr, rp := range b.advertised {
		if rp == p {
			delete(b.advertised, addr)
		}
	}
	b.mu.Unlock()
	b.logf("transport: %s lost peer %s", b.cfg.ID, p.id)
}

// chunkBuild is one in-flight reassembly: fragments land at their
// offsets in a lease-backed buffer sized for the full body, so the
// completed message injects with zero further copies.
type chunkBuild struct {
	lease *san.Lease
	buf   []byte
	got   int // fragment bytes received; TCP ordering makes overlap a sender bug
}

// maxChunkBuilds bounds concurrent reassemblies per connection — a
// hostile or wildly interleaving peer pins at most maxChunkBuilds ×
// MaxChunkBody. maxDeadChunkIDs bounds the memory of finished
// streams: ids whose build completed, corrupted, or was evicted stay
// on a dead list so their late fragments are dropped outright instead
// of seeding a fresh build that can never complete (which would pin a
// new lease until eviction came around for it again).
const (
	maxChunkBuilds  = 64
	maxDeadChunkIDs = 1024
)

// chunkAsm is a connection's reassembly table (owned by its read loop,
// so unlocked).
type chunkAsm struct {
	builds    map[uint64]*chunkBuild
	order     []uint64 // build insertion order, for FIFO eviction
	dead      map[uint64]bool
	deadOrder []uint64 // FIFO eviction for dead
}

func (a *chunkAsm) drop(id uint64) {
	if cb := a.builds[id]; cb != nil {
		cb.lease.Release()
		delete(a.builds, id)
	}
}

// markDead retires a stream id: late fragments carrying it are dropped
// at the door from now on. The set is FIFO-bounded; ids are never
// reused within a connection (the sender mints them from a counter),
// so an id aging off the list can only readmit a fragment delayed past
// maxDeadChunkIDs whole streams — at which point the build it seeds is
// ordinary eviction fodder.
func (a *chunkAsm) markDead(id uint64) {
	if a.dead == nil {
		a.dead = make(map[uint64]bool)
	}
	if a.dead[id] {
		return
	}
	a.dead[id] = true
	a.deadOrder = append(a.deadOrder, id)
	if len(a.deadOrder) > maxDeadChunkIDs {
		delete(a.dead, a.deadOrder[0])
		a.deadOrder = a.deadOrder[1:]
	}
}

func (a *chunkAsm) releaseAll() {
	for id := range a.builds {
		a.drop(id)
	}
}

// readLoop decodes frames off the connection and injects them into the
// local SAN until the stream ends or corrupts.
func (b *Bridge) readLoop(p *peer, dec *Decoder) {
	buf := make([]byte, 64<<10)
	intern := newInterner()
	asm := &chunkAsm{builds: make(map[uint64]*chunkBuild)}
	defer asm.releaseAll()
	for {
		for {
			f, ok, err := dec.Next()
			if err != nil {
				b.frameErrors.Add(1)
				b.logf("transport: %s: corrupt stream from %s: %v", b.cfg.ID, p.id, err)
				return
			}
			if !ok {
				break
			}
			b.framesIn.Add(1)
			b.handleFrame(p, f, intern, dec, asm)
		}
		n, err := p.conn.Read(buf)
		if n > 0 {
			b.bytesIn.Add(uint64(n))
			_, _ = dec.Write(buf[:n])
		}
		if err != nil {
			return
		}
	}
}

func (b *Bridge) handleFrame(p *peer, f Frame, intern *interner, dec *Decoder, asm *chunkAsm) {
	switch f.Type {
	case FrameData:
		from := san.Addr{Node: intern.str(f.SrcNode), Proc: intern.str(f.SrcProc)}
		to := san.Addr{Node: intern.str(f.DstNode), Proc: intern.str(f.DstProc)}
		b.learn(from, p)
		if f.Flags&FlagChunk != 0 {
			b.handleChunk(asm, f, from, to, intern.str(f.Kind))
			return
		}
		if b.net.InjectUnicast(from, to, intern.str(f.Kind), f.CallID, f.Flags&FlagReply != 0, obs.TraceID(f.Trace), f.Body, dec.Lease()) {
			b.injected.Add(1)
		}
	case FrameMcast:
		from := san.Addr{Node: intern.str(f.SrcNode), Proc: intern.str(f.SrcProc)}
		b.learn(from, p)
		if b.net.InjectMulticast(from, intern.str(f.Group), intern.str(f.Kind), f.Body, dec.Lease()) > 0 {
			b.injected.Add(1)
		}
	case FrameHello:
		if h, err := f.DecodeHello(); err == nil {
			b.applyAdvertised(p, h.Endpoints)
			b.ensureDial(h.Advertise)
			for _, addr := range h.Peers {
				b.ensureDial(addr)
			}
		}
	case FrameAdvert:
		op, addrs, err := f.DecodeAdvert()
		if err != nil {
			return
		}
		b.advertsIn.Add(1)
		switch op {
		case AdvertUp:
			b.applyAdvertised(p, addrs)
		case AdvertDown:
			b.mu.Lock()
			for _, a := range addrs {
				if b.advertised[a] == p {
					delete(b.advertised, a)
				}
				if b.routes[a] == p {
					delete(b.routes, a)
				}
				b.tombstoneLocked(a)
			}
			b.mu.Unlock()
		}
	}
}

// handleChunk folds one FlagChunk fragment into its reassembly build
// and injects the message when the last fragment lands. The frame's
// CRC already passed, so a malformed envelope or an inconsistent total
// is a sender bug; it poisons only that stream, not the connection.
func (b *Bridge) handleChunk(asm *chunkAsm, f Frame, from, to san.Addr, kind string) {
	id, total, offset, frag, err := ParseChunk(f.Body)
	if err != nil {
		b.frameErrors.Add(1)
		return
	}
	if asm.dead[id] {
		// Late fragment of a stream that already completed, corrupted,
		// or was evicted: it must never seed a fresh build.
		return
	}
	cb := asm.builds[id]
	if cb == nil {
		cb = &chunkBuild{lease: san.NewLease(total)}
		cb.buf = cb.lease.Bytes()[:total]
		asm.builds[id] = cb
		asm.order = append(asm.order, id)
		for len(asm.builds) > maxChunkBuilds && len(asm.order) > 0 {
			evicted := asm.order[0]
			asm.order = asm.order[1:]
			if asm.builds[evicted] == nil {
				continue // stale entry of an already-finished stream
			}
			// A live stream is being sacrificed: release its lease and
			// retire the id, so the fragments still in flight for it
			// cannot restart an uncompletable build.
			asm.drop(evicted)
			asm.markDead(evicted)
		}
		// Finished streams leave stale ids behind in order; compact
		// before the slice outgrows a small multiple of the live bound.
		if len(asm.order) > 4*maxChunkBuilds {
			live := asm.order[:0]
			for _, oid := range asm.order {
				if asm.builds[oid] != nil {
					live = append(live, oid)
				}
			}
			asm.order = live
		}
	}
	if total != len(cb.buf) || offset+len(frag) > len(cb.buf) {
		b.frameErrors.Add(1)
		asm.drop(id)
		asm.markDead(id) // the stream is poisoned; its tail is garbage
		return
	}
	copy(cb.buf[offset:], frag)
	cb.got += len(frag)
	if cb.got < len(cb.buf) {
		return
	}
	delete(asm.builds, id) // stale order entry: skipped by eviction, compacted later
	asm.markDead(id)       // a late duplicate must not rebuild a done stream
	b.reassembled.Add(1)
	if b.net.InjectUnicast(from, to, kind, f.CallID, f.Flags&FlagReply != 0, obs.TraceID(f.Trace), cb.buf, cb.lease) {
		b.injected.Add(1)
	}
	cb.lease.Release()
}

// learn records that addr is reachable via p (switch-style MAC
// learning: the source of an observed frame is a valid route). Entries
// move if the address shows up behind a different peer — a component
// restarted in another process. Observed traffic is proof of life, so
// any tombstone for the address dies with the sighting.
func (b *Bridge) learn(addr san.Addr, p *peer) {
	b.mu.RLock()
	cur, ok := b.routes[addr]
	tomb := b.tombs[addr]
	b.mu.RUnlock()
	if ok && cur == p && !tomb {
		return
	}
	b.mu.Lock()
	b.routes[addr] = p
	delete(b.tombs, addr)
	b.mu.Unlock()
}

// deadlineWriter applies a per-write deadline so one stalled peer
// cannot wedge every sender behind the batcher's lock forever.
type deadlineWriter struct {
	conn    net.Conn
	timeout time.Duration
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	if w.timeout > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	}
	return w.conn.Write(p)
}

// WriteVec forwards a gather list to the connection under the same
// deadline. net.Buffers.WriteTo issues a real writev only on the
// concrete TCP/unix conn types, which is exactly what w.conn is — this
// forwarder exists so the Batcher's vecWriter probe survives the
// deadline wrapper.
func (w *deadlineWriter) WriteVec(bufs *net.Buffers) (int64, error) {
	if w.timeout > 0 {
		_ = w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	}
	return bufs.WriteTo(w.conn)
}

// interner deduplicates the small, hot string set a connection sees
// (node names, process names, message kinds) so the steady-state
// receive path stops allocating for them. Map lookups keyed by
// string(bytes) do not allocate; only first sightings do. Each read
// loop owns one, so no locking. Retention is bounded in both
// dimensions — entry count and per-string length — so a hostile peer
// flooding distinct or huge identifiers cannot pin memory beyond the
// caps (the frame layer's never-over-allocate rule extends here).
type interner struct {
	m map[string]string
}

const (
	internMaxEntries = 4096
	internMaxStrLen  = 256 // identifiers are short; anything bigger is not worth pinning
)

func newInterner() *interner { return &interner{m: make(map[string]string, 64)} }

func (in *interner) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(in.m) < internMaxEntries && len(s) <= internMaxStrLen {
		in.m[s] = s
	}
	return s
}
