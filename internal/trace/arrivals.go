package trace

import (
	"math"
	"math/rand"
	"time"
)

// Arrival process (paper §4.2, Figure 6): web request traffic shows a
// strong 24-hour cycle overlaid with self-similar bursts visible at
// every time scale. We model the instantaneous rate as
//
//	lambda(t) = daily(t) * cascade(t)
//
// where daily is a sinusoid with its trough in the early morning and
// cascade is a multiplicative b-model cascade: each dyadic refinement
// of the day splits an interval's mass unevenly (fraction W vs 1-W,
// side chosen pseudo-randomly per interval), which yields burstiness
// across scales — the standard conservative-cascade construction for
// self-similar traffic. Arrivals are then drawn by Poisson thinning.

// ArrivalModel generates request timestamps.
type ArrivalModel struct {
	// MeanRate is the daily average arrival rate in requests/sec
	// (the paper's 24-hour trace averaged 5.8 req/s).
	MeanRate float64
	// DailySwing in [0,1) scales the sinusoidal day/night cycle;
	// 0.6 gives roughly the paper's 2x day-to-night range.
	DailySwing float64
	// CascadeBias W in (0.5, 1): how unevenly each dyadic split
	// divides mass. 0.5 disables bursts; ~0.57 matches Figure 6's
	// 2-2.5x peak-to-average ratios across scales.
	CascadeBias float64
	// CascadeDepth is the number of dyadic levels below the
	// 24-hour root (depth 14 reaches ~5 s granularity).
	CascadeDepth int
	// Seed fixes the cascade's split directions.
	Seed int64
}

// DefaultArrivals returns a model calibrated to Figure 6.
func DefaultArrivals(seed int64) *ArrivalModel {
	return &ArrivalModel{
		MeanRate:     5.8,
		DailySwing:   0.6,
		CascadeBias:  0.57,
		CascadeDepth: 14,
		Seed:         seed,
	}
}

const day = 24 * time.Hour

// daily returns the deterministic diurnal rate multiplier at t (mean
// 1 over a day, trough at 04:00, peak at 16:00).
func (m *ArrivalModel) daily(t time.Duration) float64 {
	frac := float64(t%day) / float64(day)
	// Shift so the minimum lands at 4am.
	phase := 2 * math.Pi * (frac - (4.0+12.0)/24.0)
	return 1 + m.DailySwing*math.Cos(phase)
}

// cascade returns the burst multiplier at t: the product of per-level
// split factors along t's dyadic path. Mean 1 at every scale.
func (m *ArrivalModel) cascade(t time.Duration) float64 {
	w := m.CascadeBias
	if w <= 0.5 {
		return 1
	}
	dayIdx := uint64(t / day)
	frac := float64(t%day) / float64(day)
	mult := 1.0
	// Walk the dyadic tree: at each level, t falls in the left or
	// right half; a hash of (day, level, interval index) decides
	// which half got the w share.
	idx := uint64(0)
	for level := 0; level < m.CascadeDepth; level++ {
		frac *= 2
		right := frac >= 1
		if right {
			frac -= 1
		}
		leftHeavy := splitHash(uint64(m.Seed), dayIdx, uint64(level), idx)
		heavy := 2 * w
		light := 2 * (1 - w)
		if right == leftHeavy {
			mult *= light
		} else {
			mult *= heavy
		}
		idx = idx*2 + b2u(right)
	}
	return mult
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// splitHash deterministically decides whether the left child of an
// interval receives the heavy share.
func splitHash(seed, day, level, idx uint64) bool {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, v := range [...]uint64{day, level, idx} {
		h ^= v
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h&1 == 0
}

// Rate returns the instantaneous arrival rate at t in req/s.
func (m *ArrivalModel) Rate(t time.Duration) float64 {
	return m.MeanRate * m.daily(t) * m.cascade(t)
}

// maxRate bounds the rate for thinning: the cascade multiplies at
// most (2W)^depth, but in practice we cap at a generous quantile to
// keep thinning efficient; rates above the cap are clamped (rare and
// irrelevant to the reproduced statistics).
func (m *ArrivalModel) maxRate() float64 {
	capMult := math.Pow(2*m.CascadeBias, 7) // ~99.9th percentile of cascade
	return m.MeanRate * (1 + m.DailySwing) * capMult
}

// Generate draws arrival timestamps on [start, end) by thinning a
// homogeneous Poisson process.
func (m *ArrivalModel) Generate(rng *rand.Rand, start, end time.Duration) []time.Duration {
	lmax := m.maxRate()
	var out []time.Duration
	t := start
	for {
		dt := rng.ExpFloat64() / lmax
		t += time.Duration(dt * float64(time.Second))
		if t >= end {
			return out
		}
		r := m.Rate(t)
		if r > lmax {
			r = lmax
		}
		if rng.Float64() < r/lmax {
			out = append(out, t)
		}
	}
}

// Bucketize counts arrivals per bucket over [start, end); it returns
// one count per bucket. This is how Figure 6's panels are rendered.
func Bucketize(times []time.Duration, start, end, bucket time.Duration) []int {
	n := int((end - start) / bucket)
	if n <= 0 {
		return nil
	}
	counts := make([]int, n)
	for _, t := range times {
		if t < start || t >= end {
			continue
		}
		i := int((t - start) / bucket)
		if i >= 0 && i < n {
			counts[i]++
		}
	}
	return counts
}

// BucketStats summarizes a bucket series as (avg, peak) in events per
// second given the bucket width.
func BucketStats(counts []int, bucket time.Duration) (avg, peak float64) {
	if len(counts) == 0 {
		return 0, 0
	}
	sum, max := 0, 0
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	sec := bucket.Seconds()
	return float64(sum) / float64(len(counts)) / sec, float64(max) / sec
}
