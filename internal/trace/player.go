package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Player is the high-performance trace playback engine (paper §4.1):
// it can generate requests at a constant, dynamically tunable rate, or
// faithfully replay a trace according to its timestamps (optionally
// time-compressed), giving fine-grained control over both the amount
// and the nature of offered load.
type Player struct {
	// Concurrency bounds in-flight requests (the engine's
	// simulated client population). Default 64.
	Concurrency int
	// Speedup divides faithful-mode inter-arrival gaps (10 means
	// 10x real time). Default 1.
	Speedup float64

	rate atomic.Uint64 // constant-rate mode: req/s as math.Float64bits
}

// RequestFunc executes one request and returns an error on failure.
type RequestFunc func(ctx context.Context, rec Record) error

// Stats summarizes a playback run.
type Stats struct {
	Issued    int
	Errors    int
	Elapsed   time.Duration
	Latency   sim.Welford // seconds
	Latencies []float64   // per-request seconds, for quantiles
	Offered   float64     // issued / elapsed, req/s
}

// SetRate changes the constant-rate mode's request rate (req/s); it
// may be called while PlayConstant is running ("dynamically tunable").
func (p *Player) SetRate(reqPerSec float64) {
	p.rate.Store(uint64FromFloat(reqPerSec))
}

func uint64FromFloat(f float64) uint64 {
	if f < 0 {
		f = 0
	}
	// Store microreq/s to avoid importing math for Float64bits in
	// hot paths; precision is ample.
	return uint64(f * 1e6)
}

func (p *Player) currentRate() float64 {
	return float64(p.rate.Load()) / 1e6
}

// PlayFaithful replays records honoring timestamps (divided by
// Speedup), invoking fn for each record from a bounded worker pool.
func (p *Player) PlayFaithful(ctx context.Context, records []Record, fn RequestFunc) Stats {
	speed := p.Speedup
	if speed <= 0 {
		speed = 1
	}
	start := time.Now()
	issue := make(chan Record)
	stats := p.collect(ctx, issue, fn)

	base := time.Now()
	var t0 time.Duration
	if len(records) > 0 {
		t0 = records[0].T
	}
loop:
	for _, rec := range records {
		due := base.Add(time.Duration(float64(rec.T-t0) / speed))
		if d := time.Until(due); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				break loop
			}
		}
		select {
		case issue <- rec:
		case <-ctx.Done():
			break loop
		}
	}
	close(issue)
	st := <-stats
	st.Elapsed = time.Since(start)
	if st.Elapsed > 0 {
		st.Offered = float64(st.Issued) / st.Elapsed.Seconds()
	}
	return st
}

// PlayConstant issues records in order at the rate set via SetRate
// (initially rate), until records are exhausted or ctx is cancelled.
func (p *Player) PlayConstant(ctx context.Context, records []Record, rate float64, fn RequestFunc) Stats {
	p.SetRate(rate)
	start := time.Now()
	issue := make(chan Record)
	stats := p.collect(ctx, issue, fn)

	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	credit := 0.0
	last := time.Now()
	i := 0
loop:
	for i < len(records) {
		select {
		case <-ctx.Done():
			break loop
		case now := <-ticker.C:
			credit += now.Sub(last).Seconds() * p.currentRate()
			last = now
			for credit >= 1 && i < len(records) {
				credit--
				select {
				case issue <- records[i]:
					i++
				case <-ctx.Done():
					break loop
				}
			}
		}
	}
	close(issue)
	st := <-stats
	st.Elapsed = time.Since(start)
	if st.Elapsed > 0 {
		st.Offered = float64(st.Issued) / st.Elapsed.Seconds()
	}
	return st
}

// collect runs the worker pool; the returned channel yields the final
// stats once the issue channel closes and workers drain.
func (p *Player) collect(ctx context.Context, issue <-chan Record, fn RequestFunc) <-chan Stats {
	conc := p.Concurrency
	if conc <= 0 {
		conc = 64
	}
	var mu sync.Mutex
	st := Stats{}
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rec := range issue {
				t0 := time.Now()
				err := fn(ctx, rec)
				lat := time.Since(t0).Seconds()
				mu.Lock()
				st.Issued++
				if err != nil {
					st.Errors++
				}
				st.Latency.Add(lat)
				st.Latencies = append(st.Latencies, lat)
				mu.Unlock()
			}
		}()
	}
	out := make(chan Stats, 1)
	go func() {
		wg.Wait()
		out <- st
	}()
	return out
}
