package trace

import (
	"math/rand"
	"testing"
	"time"
)

func BenchmarkContentModelSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewContentModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample(rng)
	}
}

func BenchmarkArrivalGenerateMinute(b *testing.B) {
	m := DefaultArrivals(1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Generate(rng, 12*time.Hour, 12*time.Hour+time.Minute)
	}
}

func BenchmarkTraceGenerate(b *testing.B) {
	cfg := DefaultConfig(1)
	cfg.Duration = time.Minute
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
