// Package trace reproduces TranSend's workload substrate (paper §4.1):
// the content-size distributions of Figure 5, the bursty arrival
// process of Figure 6, a synthetic HTTP trace format, and the
// high-performance playback engine used to stress the system at a
// controlled, tunable offered load.
//
// The real 45-day Berkeley dialup trace is unavailable, so the
// generator is calibrated to every marginal the paper publishes: MIME
// mix (50% GIF, 22% HTML, 18% JPEG), mean sizes (GIF 3428 B, HTML
// 5131 B, JPEG 12070 B), the bimodal GIF distribution with its 1 KB
// split between icons and photos, the JPEG fall-off below 1 KB, and
// the multi-scale burstiness of the arrival process.
package trace

import (
	"math/rand"

	"repro/internal/media"
	"repro/internal/sim"
)

// MIME mix observed in the paper's traces (§4.1). The remainder is
// "other" content that no distiller handles and is passed through.
const (
	FracGIF   = 0.50
	FracHTML  = 0.22
	FracJPEG  = 0.18
	FracOther = 0.10
)

// Mean content sizes from Figure 5's caption.
const (
	MeanHTML = 5131
	MeanGIF  = 3428
	MeanJPEG = 12070
)

// SizeModel draws content lengths for one MIME type.
type SizeModel struct {
	MIME string
	draw func(rng *rand.Rand) int
}

// Sample draws one content length in bytes.
func (m *SizeModel) Sample(rng *rand.Rand) int { return m.draw(rng) }

func clampSize(v float64) int {
	return int(sim.Clamp(v, 64, 2<<20))
}

// GIFSizes models Figure 5's bimodal GIF distribution: a low plateau
// of sub-1KB icons/bullets and a high plateau of photos/cartoons. The
// mixture is calibrated so the overall mean is ~3428 B and the 1 KB
// distillation threshold separates the two classes.
func GIFSizes() *SizeModel {
	const (
		iconWeight = 0.5
		iconSigma  = 0.7
		photoSigma = 1.0
	)
	iconMu := sim.LogNormalMean(380, iconSigma)
	photoMu := sim.LogNormalMean((MeanGIF-iconWeight*380)/(1-iconWeight), photoSigma)
	return &SizeModel{MIME: media.MIMESGIF, draw: func(rng *rand.Rand) int {
		if rng.Float64() < iconWeight {
			return clampSize(sim.LogNormal(rng, iconMu, iconSigma))
		}
		return clampSize(sim.LogNormal(rng, photoMu, photoSigma))
	}}
}

// HTMLSizes models the HTML distribution (mean 5131 B, long tail).
func HTMLSizes() *SizeModel {
	const sigma = 1.2
	mu := sim.LogNormalMean(MeanHTML, sigma)
	return &SizeModel{MIME: media.MIMEHTML, draw: func(rng *rand.Rand) int {
		return clampSize(sim.LogNormal(rng, mu, sigma))
	}}
}

// JPEGSizes models the JPEG distribution (mean 12070 B), which falls
// off rapidly below 1 KB in the paper's data.
func JPEGSizes() *SizeModel {
	const sigma = 1.1
	mu := sim.LogNormalMean(MeanJPEG, sigma)
	return &SizeModel{MIME: media.MIMESJPG, draw: func(rng *rand.Rand) int {
		return clampSize(sim.LogNormal(rng, mu, sigma))
	}}
}

// OtherSizes models the residual MIME types.
func OtherSizes() *SizeModel {
	const sigma = 1.2
	mu := sim.LogNormalMean(4000, sigma)
	return &SizeModel{MIME: media.MIMEOther, draw: func(rng *rand.Rand) int {
		return clampSize(sim.LogNormal(rng, mu, sigma))
	}}
}

// ContentModel draws (MIME, size) pairs according to the paper's mix.
type ContentModel struct {
	gif, html, jpeg, other *SizeModel
}

// NewContentModel builds the Figure 5 content model.
func NewContentModel() *ContentModel {
	return &ContentModel{
		gif:   GIFSizes(),
		html:  HTMLSizes(),
		jpeg:  JPEGSizes(),
		other: OtherSizes(),
	}
}

// Sample draws one object's MIME type and size.
func (c *ContentModel) Sample(rng *rand.Rand) (mime string, size int) {
	u := rng.Float64()
	switch {
	case u < FracGIF:
		return c.gif.MIME, c.gif.Sample(rng)
	case u < FracGIF+FracHTML:
		return c.html.MIME, c.html.Sample(rng)
	case u < FracGIF+FracHTML+FracJPEG:
		return c.jpeg.MIME, c.jpeg.Sample(rng)
	default:
		return c.other.MIME, c.other.Sample(rng)
	}
}

// SampleMIME draws a size for a specific MIME type.
func (c *ContentModel) SampleMIME(rng *rand.Rand, mime string) int {
	switch mime {
	case media.MIMESGIF:
		return c.gif.Sample(rng)
	case media.MIMEHTML:
		return c.html.Sample(rng)
	case media.MIMESJPG:
		return c.jpeg.Sample(rng)
	default:
		return c.other.Sample(rng)
	}
}
