package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/sim"
)

// Record is one trace entry: a timestamped HTTP request from an
// (anonymized) user for an object.
type Record struct {
	T      time.Duration `json:"t"`    // offset from trace start
	URL    string        `json:"url"`  // synthetic object URL
	MIME   string        `json:"mime"` // object content type
	Size   int           `json:"size"` // content length in bytes
	User   int           `json:"user"` // anonymized user id
	Object int           `json:"obj"`  // object id within the universe
}

// Config controls trace generation.
type Config struct {
	Seed     int64
	Start    time.Duration // virtual start offset (position in the daily cycle)
	Duration time.Duration
	Users    int // population size (paper: ~8000 active users)
	Objects  int // object universe size
	ZipfS    float64
	Arrivals *ArrivalModel // nil -> DefaultArrivals(Seed)
}

// DefaultConfig returns a configuration matching the paper's observed
// population at a test-friendly universe size.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:     seed,
		Start:    12 * time.Hour, // midday
		Duration: time.Hour,
		Users:    8000,
		Objects:  200000,
		ZipfS:    1.1,
	}
}

// Generate synthesizes a trace: arrival times from the burst model,
// object popularity from a Zipf law (which is what makes caching
// effective), and per-object MIME/size from the Figure 5 content
// model. Object attributes are deterministic functions of the object
// id, so repeated requests for an object agree.
func Generate(cfg Config) []Record {
	if cfg.Users <= 0 {
		cfg.Users = 8000
	}
	if cfg.Objects <= 1 {
		cfg.Objects = 200000
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.1
	}
	arr := cfg.Arrivals
	if arr == nil {
		arr = DefaultArrivals(cfg.Seed)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	times := arr.Generate(rng, cfg.Start, cfg.Start+cfg.Duration)
	zipf := sim.Zipf(rng, cfg.ZipfS, cfg.Objects)
	model := NewContentModel()

	out := make([]Record, 0, len(times))
	for _, t := range times {
		obj := zipf()
		mime, size := ObjectAttrs(cfg.Seed, obj, model)
		out = append(out, Record{
			T:      t - cfg.Start,
			URL:    ObjectURL(obj, mime),
			MIME:   mime,
			Size:   size,
			User:   rng.Intn(cfg.Users),
			Object: obj,
		})
	}
	return out
}

// ObjectAttrs returns the deterministic MIME and size for an object id
// under the given trace seed.
func ObjectAttrs(seed int64, obj int, model *ContentModel) (string, int) {
	r := rand.New(rand.NewSource(seed ^ int64(obj)*0x9e3779b9 + 0x1234))
	return model.Sample(r)
}

// ObjectURL renders the synthetic URL for an object.
func ObjectURL(obj int, mime string) string {
	ext := "bin"
	switch mime {
	case "image/sgif":
		ext = "sgif"
	case "image/sjpg":
		ext = "sjpg"
	case "text/html":
		ext = "html"
	}
	return fmt.Sprintf("http://origin%d.example/obj%d.%s", obj%50, obj, ext)
}

// Write streams records as JSON lines.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses JSON-lines records.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: read record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// WriteFile writes a trace file.
func WriteFile(path string, records []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a trace file.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
