package trace

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/sim"
)

func TestSizeModelMeans(t *testing.T) {
	// Figure 5 calibration: sampled means must track the paper's.
	cases := []struct {
		model *SizeModel
		want  float64
	}{
		{GIFSizes(), MeanGIF},
		{HTMLSizes(), MeanHTML},
		{JPEGSizes(), MeanJPEG},
	}
	rng := rand.New(rand.NewSource(1))
	for _, c := range cases {
		var w sim.Welford
		for i := 0; i < 300000; i++ {
			w.Add(float64(c.model.Sample(rng)))
		}
		if math.Abs(w.Mean()-c.want)/c.want > 0.12 {
			t.Errorf("%s mean = %.0f, want ~%.0f", c.model.MIME, w.Mean(), c.want)
		}
	}
}

func TestGIFBimodal(t *testing.T) {
	// The 1 KB threshold must split icons from photos: a healthy
	// mass on each side (paper: "two plateaus").
	rng := rand.New(rand.NewSource(2))
	m := GIFSizes()
	below, above := 0, 0
	for i := 0; i < 50000; i++ {
		if m.Sample(rng) < 1024 {
			below++
		} else {
			above++
		}
	}
	fb := float64(below) / 50000
	if fb < 0.30 || fb > 0.70 {
		t.Fatalf("GIF mass below 1KB = %.2f, want bimodal split near 0.5", fb)
	}
}

func TestJPEGFallsOffBelow1KB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := JPEGSizes()
	below := 0
	for i := 0; i < 50000; i++ {
		if m.Sample(rng) < 1024 {
			below++
		}
	}
	if frac := float64(below) / 50000; frac > 0.12 {
		t.Fatalf("JPEG mass below 1KB = %.2f, want < 0.12", frac)
	}
}

func TestContentModelMix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewContentModel()
	counts := map[string]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		mime, size := m.Sample(rng)
		counts[mime]++
		if size < 64 {
			t.Fatalf("size %d below floor", size)
		}
	}
	check := func(mime string, want float64) {
		got := float64(counts[mime]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s fraction = %.3f, want %.2f", mime, got, want)
		}
	}
	check(media.MIMESGIF, FracGIF)
	check(media.MIMEHTML, FracHTML)
	check(media.MIMESJPG, FracJPEG)
	check(media.MIMEOther, FracOther)
}

func TestArrivalMeanRate(t *testing.T) {
	m := DefaultArrivals(5)
	rng := rand.New(rand.NewSource(5))
	times := m.Generate(rng, 0, 24*time.Hour)
	got := float64(len(times)) / (24 * 3600)
	if math.Abs(got-m.MeanRate)/m.MeanRate > 0.15 {
		t.Fatalf("24h mean rate = %.2f req/s, want ~%.1f", got, m.MeanRate)
	}
}

func TestArrivalBurstinessAcrossScales(t *testing.T) {
	// Figure 6's qualitative claim: peak/avg grows as buckets
	// shrink, and short windows still show multi-x bursts.
	m := DefaultArrivals(6)
	rng := rand.New(rand.NewSource(6))
	times := m.Generate(rng, 0, 24*time.Hour)

	c24 := Bucketize(times, 0, 24*time.Hour, 2*time.Minute)
	avg24, peak24 := BucketStats(c24, 2*time.Minute)
	if peak24/avg24 < 1.5 {
		t.Fatalf("24h peak/avg = %.2f, want bursty (>1.5)", peak24/avg24)
	}

	c1s := Bucketize(times, 12*time.Hour, 12*time.Hour+200*time.Second, time.Second)
	_, peak1s := BucketStats(c1s, time.Second)
	if peak1s < avg24*1.5 {
		t.Fatalf("1s-bucket peak %.1f not bursty vs daily avg %.1f", peak1s, avg24)
	}
}

func TestDailyCycleShape(t *testing.T) {
	m := DefaultArrivals(7)
	night := m.daily(4 * time.Hour)
	evening := m.daily(16 * time.Hour)
	if night >= evening {
		t.Fatalf("daily(4h)=%.2f >= daily(16h)=%.2f; trough should be at night", night, evening)
	}
	// Mean multiplier over the day ~1.
	sum := 0.0
	for h := 0; h < 24; h++ {
		sum += m.daily(time.Duration(h) * time.Hour)
	}
	if math.Abs(sum/24-1) > 0.05 {
		t.Fatalf("daily mean multiplier = %.3f, want ~1", sum/24)
	}
}

func TestCascadeMeanOne(t *testing.T) {
	m := DefaultArrivals(8)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += m.cascade(time.Duration(i) * 4 * time.Second)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.25 {
		t.Fatalf("cascade mean = %.3f, want ~1", mean)
	}
	// Bias 0.5 disables bursts entirely.
	flat := *m
	flat.CascadeBias = 0.5
	if flat.cascade(time.Hour) != 1 {
		t.Fatal("bias 0.5 should yield multiplier 1")
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.Duration = 2 * time.Minute
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lens = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestObjectAttrsStable(t *testing.T) {
	m := NewContentModel()
	mime1, size1 := ObjectAttrs(1, 42, m)
	mime2, size2 := ObjectAttrs(1, 42, m)
	if mime1 != mime2 || size1 != size2 {
		t.Fatal("object attributes not deterministic")
	}
	url := ObjectURL(42, mime1)
	if url == "" {
		t.Fatal("empty URL")
	}
}

func TestTraceRepeatsObjects(t *testing.T) {
	// Zipf popularity must produce repeated objects — the property
	// caching depends on.
	cfg := DefaultConfig(10)
	cfg.Duration = 10 * time.Minute
	cfg.Objects = 5000
	recs := Generate(cfg)
	seen := map[int]int{}
	for _, r := range recs {
		seen[r.Object]++
	}
	if len(seen) >= len(recs) {
		t.Fatalf("no repeats: %d unique of %d", len(seen), len(recs))
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.Duration = time.Minute
	recs := Generate(cfg)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d != %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{bad json")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.jsonl")
	cfg := DefaultConfig(12)
	cfg.Duration = 30 * time.Second
	recs := Generate(cfg)
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("file round trip %d != %d", len(got), len(recs))
	}
}

func TestBucketizeEdges(t *testing.T) {
	times := []time.Duration{0, time.Second, 2*time.Second - 1, 5 * time.Second}
	counts := Bucketize(times, 0, 4*time.Second, time.Second)
	if len(counts) != 4 || counts[0] != 1 || counts[1] != 2 || counts[2] != 0 {
		t.Fatalf("counts = %v", counts)
	}
	if Bucketize(times, 0, 0, time.Second) != nil {
		t.Fatal("empty range should return nil")
	}
}

func TestPlayConstantRate(t *testing.T) {
	recs := make([]Record, 200)
	p := &Player{Concurrency: 32}
	var served atomic.Int32
	start := time.Now()
	st := p.PlayConstant(context.Background(), recs, 1000, func(ctx context.Context, rec Record) error {
		served.Add(1)
		return nil
	})
	elapsed := time.Since(start)
	if st.Issued != 200 || served.Load() != 200 {
		t.Fatalf("issued %d served %d", st.Issued, served.Load())
	}
	// 200 requests at 1000/s should take ~0.2s; allow generous slop.
	if elapsed > 2*time.Second {
		t.Fatalf("constant-rate playback too slow: %v", elapsed)
	}
}

func TestPlayFaithfulHonorsGaps(t *testing.T) {
	recs := []Record{{T: 0}, {T: 100 * time.Millisecond}}
	p := &Player{Concurrency: 4, Speedup: 2}
	start := time.Now()
	st := p.PlayFaithful(context.Background(), recs, func(ctx context.Context, rec Record) error {
		return nil
	})
	elapsed := time.Since(start)
	if st.Issued != 2 {
		t.Fatalf("issued %d", st.Issued)
	}
	// 100 ms gap at 2x speedup = 50 ms minimum.
	if elapsed < 40*time.Millisecond {
		t.Fatalf("faithful playback ignored gaps: %v", elapsed)
	}
}

func TestPlayCancellation(t *testing.T) {
	recs := make([]Record, 100000)
	for i := range recs {
		recs[i].T = time.Duration(i) * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	p := &Player{Concurrency: 4}
	st := p.PlayFaithful(ctx, recs, func(ctx context.Context, rec Record) error { return nil })
	if st.Issued >= len(recs) {
		t.Fatal("cancellation did not stop playback")
	}
}

func TestPlayErrorsCounted(t *testing.T) {
	recs := make([]Record, 10)
	p := &Player{Concurrency: 2}
	boom := errors.New("boom")
	st := p.PlayConstant(context.Background(), recs, 10000, func(ctx context.Context, rec Record) error {
		return boom
	})
	if st.Errors != 10 {
		t.Fatalf("errors = %d, want 10", st.Errors)
	}
	if st.Latency.N != 10 {
		t.Fatalf("latency samples = %d", st.Latency.N)
	}
}

func TestSetRateWhileRunning(t *testing.T) {
	p := &Player{Concurrency: 8}
	p.SetRate(50)
	if got := p.currentRate(); math.Abs(got-50) > 1e-6 {
		t.Fatalf("rate = %v", got)
	}
	p.SetRate(-1)
	if got := p.currentRate(); got != 0 {
		t.Fatalf("negative rate should clamp to 0, got %v", got)
	}
}
