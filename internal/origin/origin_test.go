package origin

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/tacc"
)

func TestFetchDeterministic(t *testing.T) {
	o := NewSimulated(1)
	ctx := context.Background()
	a, err := o.Fetch(ctx, "http://origin1.example/obj42.sjpg")
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Fetch(ctx, "http://origin1.example/obj42.sjpg")
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Data) != string(b.Data) || a.MIME != b.MIME {
		t.Fatal("same URL returned different content")
	}
	if o.Fetches() != 2 {
		t.Fatalf("fetches = %d", o.Fetches())
	}
}

func TestFetchMIMEFromExtension(t *testing.T) {
	o := NewSimulated(2)
	ctx := context.Background()
	cases := map[string]string{
		"http://x/a.sgif": media.MIMESGIF,
		"http://x/a.sjpg": media.MIMESJPG,
		"http://x/a.html": media.MIMEHTML,
		"http://x/a.bin":  media.MIMEOther,
	}
	for url, want := range cases {
		blob, err := o.Fetch(ctx, url)
		if err != nil {
			t.Fatal(err)
		}
		if blob.MIME != want {
			t.Fatalf("%s -> %s, want %s", url, blob.MIME, want)
		}
		if got := media.DetectMIME(blob.Data); got != want {
			t.Fatalf("%s content sniffs as %s", url, got)
		}
	}
	// Unknown extension: sampled from the mix, still valid content.
	blob, err := o.Fetch(ctx, "http://x/mystery")
	if err != nil {
		t.Fatal(err)
	}
	if blob.Size() == 0 {
		t.Fatal("empty content")
	}
}

func TestFetchDelay(t *testing.T) {
	o := NewSimulated(3)
	o.Delay = func(rng *rand.Rand) time.Duration { return 30 * time.Millisecond }
	start := time.Now()
	if _, err := o.Fetch(context.Background(), "http://x/a.html"); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("delay not applied")
	}
}

func TestFetchDelayCancellation(t *testing.T) {
	o := NewSimulated(4)
	o.Delay = func(rng *rand.Rand) time.Duration { return time.Minute }
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := o.Fetch(ctx, "http://x/a.html"); err == nil {
		t.Fatal("expected context error")
	}
}

func TestMissPenaltyDistribution(t *testing.T) {
	p := MissPenalty(1.0)
	rng := rand.New(rand.NewSource(5))
	min, max := time.Hour, time.Duration(0)
	for i := 0; i < 20000; i++ {
		d := p(rng)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min < 100*time.Millisecond {
		t.Fatalf("min penalty %v below paper floor", min)
	}
	if max > 100*time.Second {
		t.Fatalf("max penalty %v above paper ceiling", max)
	}
	if max < 5*time.Second {
		t.Fatalf("max penalty %v suspiciously small; want a heavy tail", max)
	}
}

func TestStaticFetcher(t *testing.T) {
	s := NewStatic()
	s.Put("http://a/page", tacc.Blob{MIME: "text/html", Data: []byte("hi")})
	blob, err := s.Fetch(context.Background(), "http://a/page")
	if err != nil || string(blob.Data) != "hi" {
		t.Fatalf("fetch = %q, %v", blob.Data, err)
	}
	_, err = s.Fetch(context.Background(), "http://a/missing")
	var nf *NotFoundError
	if !errors.As(err, &nf) || nf.URL != "http://a/missing" {
		t.Fatalf("err = %v", err)
	}
}
