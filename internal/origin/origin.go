// Package origin simulates the Internet content servers TranSend
// proxies for. Content is a deterministic function of the URL, so any
// component fetching the same URL sees identical bytes, and the
// configurable fetch delay reproduces the paper's measured miss
// penalty ("the time to fetch data from the Internet varies widely,
// from 100 ms through 100 seconds", §4.4).
package origin

import (
	"context"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/media"
	"repro/internal/sim"
	"repro/internal/tacc"
	"repro/internal/trace"
)

// Fetcher fetches original content for a URL.
type Fetcher interface {
	Fetch(ctx context.Context, url string) (tacc.Blob, error)
}

// Simulated is a deterministic origin-server universe.
type Simulated struct {
	// Seed fixes the content universe.
	Seed int64
	// Delay, if non-nil, returns the per-fetch miss penalty.
	Delay func(rng *rand.Rand) time.Duration

	model     *trace.ContentModel
	modelOnce sync.Once
	rngMu     sync.Mutex
	rng       *rand.Rand
	fetches   atomic.Uint64
}

// NewSimulated creates an origin universe.
func NewSimulated(seed int64) *Simulated {
	return &Simulated{Seed: seed}
}

// MissPenalty returns a delay source matching the paper's observed
// distribution: lognormal with median ~1 s, clamped to [100 ms, 100 s].
// Scale compresses it for tests (e.g. 0.01 gives 1-1000 ms).
func MissPenalty(scale float64) func(rng *rand.Rand) time.Duration {
	return func(rng *rand.Rand) time.Duration {
		s := sim.Clamp(sim.LogNormal(rng, 0, 1.5), 0.1, 100) * scale
		return sim.Seconds(s)
	}
}

// Fetches reports how many fetches have been served.
func (s *Simulated) Fetches() uint64 { return s.fetches.Load() }

// Fetch implements Fetcher: it synthesizes the URL's content (size and
// type drawn from the Figure 5 model, keyed by the URL) after the miss
// penalty elapses.
func (s *Simulated) Fetch(ctx context.Context, url string) (tacc.Blob, error) {
	s.modelOnce.Do(func() {
		s.model = trace.NewContentModel()
		s.rng = rand.New(rand.NewSource(s.Seed ^ 0x0f0f0f0f))
	})
	s.fetches.Add(1)
	if s.Delay != nil {
		s.rngMu.Lock()
		d := s.Delay(s.rng)
		s.rngMu.Unlock()
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return tacc.Blob{}, ctx.Err()
		}
	}
	h := fnv.New64a()
	h.Write([]byte(url))
	urlSeed := int64(h.Sum64())
	rng := rand.New(rand.NewSource(s.Seed ^ urlSeed))

	mime := mimeFromURL(url)
	var size int
	if mime == "" {
		mime, size = s.model.Sample(rng)
	} else {
		size = s.model.SampleMIME(rng, mime)
	}
	data := media.GenerateContent(rng, mime, size)
	return tacc.Blob{MIME: mime, Data: data}, nil
}

// mimeFromURL infers the type from the synthetic URL extension,
// falling back to "" (sample from the mix) for unknown paths.
func mimeFromURL(url string) string {
	switch {
	case strings.HasSuffix(url, ".sgif"):
		return media.MIMESGIF
	case strings.HasSuffix(url, ".sjpg"):
		return media.MIMESJPG
	case strings.HasSuffix(url, ".html"):
		return media.MIMEHTML
	case strings.HasSuffix(url, ".bin"):
		return media.MIMEOther
	default:
		return ""
	}
}

// Static is a Fetcher serving a fixed table — handy for examples and
// aggregators whose upstream pages are prepared in advance.
type Static struct {
	mu    sync.RWMutex
	pages map[string]tacc.Blob
}

// NewStatic creates an empty static origin.
func NewStatic() *Static {
	return &Static{pages: make(map[string]tacc.Blob)}
}

// Put installs a page.
func (s *Static) Put(url string, blob tacc.Blob) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages[url] = blob
}

// Fetch implements Fetcher.
func (s *Static) Fetch(ctx context.Context, url string) (tacc.Blob, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	blob, ok := s.pages[url]
	if !ok {
		return tacc.Blob{}, &NotFoundError{URL: url}
	}
	return blob, nil
}

// NotFoundError reports a missing page.
type NotFoundError struct{ URL string }

// Error implements error.
func (e *NotFoundError) Error() string { return "origin: not found: " + e.URL }
