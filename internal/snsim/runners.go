package snsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/manager"
	"repro/internal/sim"
)

// This file contains one runner per reproduced artifact. Each runner
// builds a Model with the paper's parameters, executes the scripted
// scenario, and returns a result struct the experiment harness prints
// as paper-style rows/series.

// ---------------------------------------------------------------- fig8

// Figure8Result carries the self-tuning time series (paper Figure 8).
type Figure8Result struct {
	Samples []Sample
	Spawns  []SpawnEvent
	KillAt  time.Duration
	Killed  []int
	Horizon time.Duration
	Policy  manager.Policy
}

// RunFigure8 reproduces Figure 8: offered load ramps from 0 to 40
// tasks/s over 400 s; distillers spawn as the moving-average queue
// crosses H; at t=250 s the first two distillers are killed manually
// and the system recovers.
func RunFigure8(seed int64) Figure8Result {
	pol := manager.Policy{SpawnThreshold: 15, Damping: 15 * time.Second, ReapThreshold: -1}
	const horizon = 400 * time.Second
	m := New(Params{
		Seed: seed,
		Rate: func(t time.Duration) float64 {
			return 40 * t.Seconds() / horizon.Seconds()
		},
		// Figure 8's distillers ran on SPARC-10-class machines: the
		// mean per-task cost is ~100 ms (8 ms/KB on ~12 KB of work),
		// so the 0-40 task/s ramp needs ~5 distillers, as in the
		// paper's run.
		SizeKB:         func(rng *rand.Rand) float64 { return sim.Clamp(sim.LogNormal(rng, 2.165, 0.8), 0.5, 60) },
		DistillMsPerKB: 8,
		DistillNoise:   0.35,
		HitRate:        1,
		Distillers:     1,
		Policy:         pol,
		UseDelta:       true,
		SpawnDelay:     time.Second,
	})
	const killAt = 250 * time.Second
	killed := []int{0, 1}
	m.At(killAt, func() {
		for _, idx := range killed {
			m.KillDistiller(idx)
		}
	})
	m.Run(horizon)
	return Figure8Result{
		Samples: m.Samples(),
		Spawns:  m.Spawns(),
		KillAt:  killAt,
		Killed:  killed,
		Horizon: horizon,
		Policy:  pol,
	}
}

// SpawnsAfter counts spawn events in (from, to].
func (r Figure8Result) SpawnsAfter(from, to time.Duration) int {
	n := 0
	for _, s := range r.Spawns {
		if s.T > from && s.T <= to {
			n++
		}
	}
	return n
}

// MaxQueueNear returns the maximum single-distiller queue length in
// samples within [from, to].
func (r Figure8Result) MaxQueueNear(from, to time.Duration) int {
	max := 0
	for _, s := range r.Samples {
		if s.T < from || s.T > to {
			continue
		}
		for _, q := range s.QueueLens {
			if q > max {
				max = q
			}
		}
	}
	return max
}

// BalancedAt reports whether queues are balanced (spread <= tol) at
// the sample nearest t.
func (r Figure8Result) BalancedAt(t time.Duration, tol int) bool {
	var best *Sample
	for i := range r.Samples {
		s := &r.Samples[i]
		if best == nil || abs64(int64(s.T-t)) < abs64(int64(best.T-t)) {
			best = s
		}
	}
	if best == nil || len(best.QueueLens) == 0 {
		return false
	}
	lo, hi := 1<<30, 0
	for _, q := range best.QueueLens {
		if q < lo {
			lo = q
		}
		if q > hi {
			hi = q
		}
	}
	return hi-lo <= tol
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// --------------------------------------------------------------- table2

// Table2Row is one row of the scalability experiment.
type Table2Row struct {
	LoadFrom, LoadTo int // requests/second range
	FrontEnds        int
	Distillers       int
	Saturated        string // element that saturated at the row's end
}

// Table2Result carries the sweep plus the derived per-element
// capacities the paper quotes (≈23 req/s per distiller, ≈70 per FE).
type Table2Result struct {
	Rows             []Table2Row
	PerDistillerReqS float64
	PerFrontEndReqS  float64
	MaxLoadReached   int
}

// RunTable2 reproduces Table 2's protocol: offer a fixed 10 KB JPEG
// workload at increasing rates; the manager auto-spawns distillers as
// they saturate; when a front end's edge saturates, add a front end
// (the experiment's manual step); stop when the configured hardware
// pool (10 "machines" for distillers, 3 front ends) is exhausted.
func RunTable2(seed int64) Table2Result {
	const (
		stepSeconds = 20
		loadStep    = 4
		maxLoad     = 168
		maxFEs      = 3
	)
	var rate float64
	m := New(Params{
		Seed:           seed,
		Rate:           func(time.Duration) float64 { return rate },
		SizeKB:         func(*rand.Rand) float64 { return 10 },
		DistillMsPerKB: 4.3, // 43 ms per 10 KB JPEG => ~23 req/s
		DistillNoise:   0.1,
		HitRate:        1,

		Distillers:     1,
		FrontEnds:      1,
		FECapacity:     75,
		DedicatedNodes: 10,
		Policy: manager.Policy{
			SpawnThreshold: 10,
			Damping:        4 * time.Second,
			ReapThreshold:  -1,
		},
		UseDelta:   true,
		SpawnDelay: 500 * time.Millisecond,
	})

	type stepState struct {
		load      int
		fes       int
		dists     int
		saturated string
	}
	var steps []stepState
	now := time.Duration(0)
	feBusy := make([]time.Duration, 0, 8)
	for load := loadStep; load <= maxLoad; load += loadStep {
		rate = float64(load)
		// Track FE busy-time delta across the step to estimate
		// utilization at this load level.
		feBusy = feBusy[:0]
		for _, fe := range m.fes {
			feBusy = append(feBusy, fe.busyTime)
		}
		distsBefore := m.Distillers()
		now += stepSeconds * time.Second
		m.Run(now)

		saturated := ""
		if m.Distillers() > distsBefore {
			saturated = "distillers"
		}
		// FE utilization over the step.
		maxUtil := 0.0
		for i, fe := range m.fes {
			var before time.Duration
			if i < len(feBusy) {
				before = feBusy[i]
			}
			util := float64(fe.busyTime-before) / float64(stepSeconds*time.Second)
			if util > maxUtil {
				maxUtil = util
			}
		}
		if maxUtil > 0.95 {
			if saturated != "" {
				saturated += " & FE link"
			} else {
				saturated = "FE link"
			}
			if m.FrontEnds() < maxFEs {
				m.AddFrontEnd()
			}
		}
		steps = append(steps, stepState{
			load:      load,
			fes:       m.FrontEnds(),
			dists:     m.Distillers(),
			saturated: saturated,
		})
		if m.FrontEnds() >= maxFEs && m.Distillers() >= 10 {
			break
		}
	}

	// Compress consecutive steps with identical resource counts.
	var rows []Table2Row
	for _, st := range steps {
		if n := len(rows); n > 0 &&
			rows[n-1].FrontEnds == st.fes && rows[n-1].Distillers == st.dists {
			rows[n-1].LoadTo = st.load
			if st.saturated != "" {
				rows[n-1].Saturated = st.saturated
			}
			continue
		}
		from := loadStep
		if n := len(rows); n > 0 {
			from = rows[n-1].LoadTo + 1
		}
		rows = append(rows, Table2Row{
			LoadFrom:   from,
			LoadTo:     st.load,
			FrontEnds:  st.fes,
			Distillers: st.dists,
			Saturated:  st.saturated,
		})
	}

	res := Table2Result{Rows: rows}
	if len(steps) > 0 {
		last := steps[len(steps)-1]
		res.MaxLoadReached = last.load
		if last.dists > 0 {
			res.PerDistillerReqS = float64(last.load) / float64(last.dists)
		}
	}
	// Per-FE capacity: the load at which the first FE addition
	// happened.
	for _, st := range steps {
		if st.fes > 1 {
			res.PerFrontEndReqS = float64(st.load)
			break
		}
	}
	return res
}

// Render formats the rows like the paper's Table 2.
func (r Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-8s %-12s %s\n", "Req/s", "# FEs", "# Distillers", "Saturated element")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %-8d %-12d %s\n",
			fmt.Sprintf("%d-%d", row.LoadFrom, row.LoadTo),
			row.FrontEnds, row.Distillers, row.Saturated)
	}
	fmt.Fprintf(&b, "derived: ~%.1f req/s per distiller, FE link saturates near %.0f req/s\n",
		r.PerDistillerReqS, r.PerFrontEndReqS)
	return b.String()
}

// ----------------------------------------------------------- oscillation

// OscillationResult quantifies §4.5's load-balancing oscillation.
type OscillationResult struct {
	UseDelta bool
	// Spread is the mean over samples of (max queue - min queue)
	// across distillers: high spread = oscillating/sloshing load.
	Spread float64
	// SwitchRate counts how often the longest queue changes
	// identity per minute — thrash frequency.
	SwitchRate float64
	Samples    []Sample
}

// RunOscillation drives 2 distillers near saturation from several
// independent front ends with a long report interval (stale data) and
// measures queue sloshing with the §4.5 estimator on or off. The
// oscillation is a herding effect: every front end independently sees
// the same stale "shortest queue" and over-weights it until the next
// report flips the ordering.
func RunOscillation(seed int64, useDelta bool) OscillationResult {
	m := New(Params{
		Seed:           seed,
		Rate:           func(time.Duration) float64 { return 41 }, // 2 distillers x 23 -> ~89%
		SizeKB:         func(*rand.Rand) float64 { return 10 },
		DistillMsPerKB: 4.3,
		DistillNoise:   0.1,
		HitRate:        1,
		Distillers:     2,
		FrontEnds:      4,               // independent manager stubs herd on stale hints
		ReportInterval: 4 * time.Second, // deliberately stale
		BeaconInterval: 4 * time.Second,
		Policy:         manager.Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
		UseDelta:       useDelta,
		SampleInterval: 250 * time.Millisecond,
	})
	m.Run(3 * time.Minute)

	samples := m.Samples()
	spreadSum, n := 0.0, 0
	switches := 0
	prevLeader := -1
	for _, s := range samples {
		if s.T < 20*time.Second || len(s.QueueLens) < 2 {
			continue // warmup
		}
		lo, hi, leader := 1<<30, 0, -1
		for id, q := range s.QueueLens {
			if q < lo {
				lo = q
			}
			if q > hi {
				hi = q
				leader = id
			}
		}
		spreadSum += float64(hi - lo)
		n++
		if prevLeader >= 0 && leader != prevLeader && hi-lo > 2 {
			switches++
		}
		prevLeader = leader
	}
	res := OscillationResult{UseDelta: useDelta, Samples: samples}
	if n > 0 {
		res.Spread = spreadSum / float64(n)
		minutes := samples[len(samples)-1].T.Minutes()
		res.SwitchRate = float64(switches) / minutes
	}
	return res
}

// ----------------------------------------------------------------- sansat

// SANSatResult captures the §4.6 SAN saturation study.
type SANSatResult struct {
	CapacityMbps   float64
	Isolated       bool
	BeaconLossRate float64
	Spread         float64 // load-balance quality under loss
	Spawns         int     // autoscaling actions that got through
	CompletedPerS  float64
	// CompletedFirst30s measures how fast the undersized system
	// scales up: control loss delays spawning and the front ends'
	// discovery of new workers.
	CompletedFirst30s uint64
	P95LatencyS       float64
}

// RunSANSaturation repeats the fixed-load experiment over a 10 Mb/s
// vs 100 Mb/s SAN: at 10 Mb/s the data traffic saturates the network,
// multicast control traffic drops, and the manager's ability to
// balance load and spawn workers is crippled — unless control traffic
// is isolated on a utility network.
func RunSANSaturation(seed int64, capacityMbps float64, isolated bool) SANSatResult {
	m := New(Params{
		Seed:           seed,
		Rate:           func(time.Duration) float64 { return 100 },
		SizeKB:         func(*rand.Rand) float64 { return 10 },
		DistillMsPerKB: 4.3,
		DistillNoise:   0.1,
		HitRate:        1,

		Distillers:      1, // badly undersized: the run is an autoscaling race
		FrontEnds:       2,
		FECapacity:      75,
		DedicatedNodes:  12,
		Policy:          manager.Policy{SpawnThreshold: 8, Damping: 5 * time.Second, ReapThreshold: -1},
		UseDelta:        true,
		SANCapacityMbps: capacityMbps,
		ControlIsolated: isolated,
		SpawnDelay:      1500 * time.Millisecond,
		BalkLimit:       1 << 30,
	})
	const horizon = 2 * time.Minute
	m.Run(horizon)

	st := m.Stats()
	samples := m.Samples()
	spreadSum, n := 0.0, 0
	for _, s := range samples {
		if s.T < 30*time.Second || len(s.QueueLens) < 2 {
			continue
		}
		lo, hi := 1<<30, 0
		for _, q := range s.QueueLens {
			if q < lo {
				lo = q
			}
			if q > hi {
				hi = q
			}
		}
		spreadSum += float64(hi - lo)
		n++
	}
	res := SANSatResult{
		CapacityMbps:  capacityMbps,
		Isolated:      isolated,
		Spawns:        len(m.Spawns()) - 2, // minus initial
		CompletedPerS: float64(st.Completed) / horizon.Seconds(),
	}
	for _, s := range samples {
		if s.T <= 30*time.Second {
			res.CompletedFirst30s = s.Completed
		}
	}
	if st.BeaconsSent > 0 {
		res.BeaconLossRate = float64(st.BeaconsLost) / float64(st.BeaconsSent)
	}
	if n > 0 {
		res.Spread = spreadSum / float64(n)
	}
	if len(st.Latencies) > 0 {
		res.P95LatencyS = sim.Quantiles(st.Latencies, 0.95)[0]
	}
	return res
}

// ------------------------------------------------------------- cache svc

// CacheServiceResult reproduces the §4.4 cache partition numbers.
type CacheServiceResult struct {
	MeanHitMs   float64
	P95HitMs    float64
	MaxRatePerS float64 // sustainable per-partition service rate
	MissMinS    float64
	MissMaxS    float64
	MissMedianS float64
}

// RunCacheService measures a single cache partition in isolation: the
// per-hit service time distribution (27 ms average, 95% under 100 ms,
// implying ~37 req/s capacity) and the wide miss-penalty range.
func RunCacheService(seed int64) CacheServiceResult {
	eng := sim.New(seed)
	rng := eng.NewStream("cache")
	var hits []float64
	for i := 0; i < 50000; i++ {
		hits = append(hits, 15+sim.Exp(rng, 12))
	}
	var hitW sim.Welford
	for _, h := range hits {
		hitW.Add(h)
	}
	var misses []float64
	for i := 0; i < 50000; i++ {
		misses = append(misses, sim.Clamp(sim.LogNormal(rng, 0, 1.5), 0.1, 100))
	}
	sort.Float64s(misses)
	q := sim.Quantiles(hits, 0.95)
	return CacheServiceResult{
		MeanHitMs:   hitW.Mean(),
		P95HitMs:    q[0],
		MaxRatePerS: 1000 / hitW.Mean(),
		MissMinS:    misses[0],
		MissMaxS:    misses[len(misses)-1],
		MissMedianS: misses[len(misses)/2],
	}
}

// --------------------------------------------------------------- economics

// EconResult reproduces §5.2's cost model.
type EconResult struct {
	ServerCostUSD     float64
	ModemsSupported   int
	SubscriberRatio   int
	Subscribers       int
	CostPerUserMonth  float64 // amortized over a year, in dollars
	CacheSavingsMonth float64 // T1 savings from >=50% hit rate
	PaybackMonths     float64
}

// RunEconomics evaluates the paper's arithmetic against the measured
// per-distiller capacity: a $5,000 server supporting ~750 modems at a
// 20:1 subscriber:modem ratio costs ~25 cents/user/month, and cache
// savings of ~$3,000/month pay it back in ~2 months.
func RunEconomics(perDistillerReqS float64) EconResult {
	const (
		serverCost = 5000.0
		ratio      = 20
		// A modem bank's peak demand, from the traces: ~15 req/s per
		// 600 modems => 0.025 req/s per modem.
		reqPerModem = 0.025
		t1SavingsMo = 3000.0
	)
	// A 2-CPU server spends roughly one CPU on distillation and the
	// other on front-end and cache work, so its distillation
	// capacity is about one distiller-equivalent; the paper
	// estimates 750 modems on a $5k Pentium Pro.
	capacity := perDistillerReqS
	modems := int(capacity / reqPerModem)
	if modems > 750*3 {
		modems = 750 * 3
	}
	subs := modems * ratio
	monthly := serverCost / 12 / float64(subs)
	return EconResult{
		ServerCostUSD:     serverCost,
		ModemsSupported:   modems,
		SubscriberRatio:   ratio,
		Subscribers:       subs,
		CostPerUserMonth:  monthly,
		CacheSavingsMonth: t1SavingsMo,
		PaybackMonths:     serverCost / t1SavingsMo,
	}
}
