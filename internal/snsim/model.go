// Package snsim is a discrete-event model of a TranSend deployment,
// used to regenerate the paper's long-horizon experiments (Figure 8's
// 400-second self-tuning run, Table 2's scalability sweep, the §4.4
// cache numbers, the §4.5 oscillation ablation and the §4.6 SAN
// saturation study) deterministically and in milliseconds of wall
// time.
//
// The model shares its *policy* code with the live system — the
// lottery scheduler and queue-delta estimator (internal/lottery), the
// manager's spawn/reap policy (internal/manager.Policy), and the
// moving-average load synthesis (internal/softstate) — so the two
// implementations cannot drift apart on the decisions that matter.
// Only the mechanics (queues, service times, link capacities) are
// simulated.
package snsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/lottery"
	"repro/internal/manager"
	"repro/internal/sim"
	"repro/internal/softstate"
)

// Params configures the model. Defaults reproduce the paper's
// calibration:
//
//   - JPEG distillation ≈43 ms for the 10 KB experiment objects
//     (≈23 req/s per distiller, Table 2),
//   - GIF distillation 8 ms/KB (Figure 7),
//   - cache hits 15 ms fixed + Exp(12 ms) (mean 27 ms, 95% < 100 ms,
//     ≈37 req/s per partition, §4.4),
//   - miss penalty lognormal clamped to [0.1 s, 100 s] (§4.4),
//   - front-end edge capacity ≈75 req/s (Table 2's "FE Ethernet"
//     saturating between 73 and 87 req/s).
type Params struct {
	Seed int64

	// Workload.
	Rate        func(t time.Duration) float64 // offered load, req/s
	MaxRate     float64                       // thinning bound (default 200)
	SizeKB      func(rng *rand.Rand) float64  // object size (default fixed 10 KB)
	HitRate     float64                       // cache hit probability (default 1: Table 2 methodology)
	PassThrough bool                          // skip the distillation stage (default: distill)

	// Service times.
	DistillMsPerKB float64 // default 4.3 (SJPG)
	DistillNoise   float64 // lognormal sigma on distillation time (default 0.2)
	CacheFixedMs   float64 // default 15
	CacheExpMs     float64 // default 12
	MissScale      float64 // scales the miss penalty (default 1)

	// Topology.
	FrontEnds      int     // initial (default 1)
	Distillers     int     // initial (default 1)
	CacheParts     int     // default 4
	FECapacity     float64 // req/s per front end (default 75)
	DedicatedNodes int     // distiller slots before overflow (default 10)

	// Control plane.
	BeaconInterval time.Duration // default 500 ms
	ReportInterval time.Duration // default 500 ms
	SpawnDelay     time.Duration // new-distiller startup (default 700 ms)
	Policy         manager.Policy
	UseDelta       bool // §4.5 estimator (default set by callers)
	BalkLimit      int  // distiller queue bound before drops (default 2000)

	// SAN model (§4.6): control traffic shares the SAN with data;
	// when utilization exceeds 1, multicast control messages drop
	// proportionally. ControlIsolated models the proposed utility
	// network (control unaffected by data).
	SANCapacityMbps float64 // 0 = infinite
	ControlIsolated bool

	// SampleInterval for time series (default 1 s).
	SampleInterval time.Duration
}

func (p Params) withDefaults() Params {
	if p.Rate == nil {
		p.Rate = func(time.Duration) float64 { return 10 }
	}
	if p.MaxRate <= 0 {
		p.MaxRate = 200
	}
	if p.SizeKB == nil {
		p.SizeKB = func(*rand.Rand) float64 { return 10 }
	}
	if p.HitRate == 0 {
		p.HitRate = 1
	}
	if p.DistillMsPerKB == 0 {
		p.DistillMsPerKB = 4.3
	}
	if p.DistillNoise == 0 {
		p.DistillNoise = 0.2
	}
	if p.CacheFixedMs == 0 {
		p.CacheFixedMs = 15
	}
	if p.CacheExpMs == 0 {
		p.CacheExpMs = 12
	}
	if p.MissScale == 0 {
		p.MissScale = 1
	}
	if p.FrontEnds <= 0 {
		p.FrontEnds = 1
	}
	if p.Distillers <= 0 {
		p.Distillers = 1
	}
	if p.CacheParts <= 0 {
		p.CacheParts = 4
	}
	if p.FECapacity <= 0 {
		p.FECapacity = 75
	}
	if p.DedicatedNodes <= 0 {
		p.DedicatedNodes = 10
	}
	if p.BeaconInterval <= 0 {
		p.BeaconInterval = 500 * time.Millisecond
	}
	if p.ReportInterval <= 0 {
		p.ReportInterval = 500 * time.Millisecond
	}
	if p.SpawnDelay <= 0 {
		p.SpawnDelay = 700 * time.Millisecond
	}
	if p.Policy == (manager.Policy{}) {
		p.Policy = manager.DefaultPolicy()
	}
	if p.BalkLimit <= 0 {
		p.BalkLimit = 2000
	}
	if p.SampleInterval <= 0 {
		p.SampleInterval = time.Second
	}
	return p
}

// request is one in-flight request.
type request struct {
	arrived time.Duration
	sizeKB  float64
	fe      int // index of the front end that admitted it
}

// station is a FIFO single-server queue with utilization accounting.
type station struct {
	m        *Model
	name     string
	queue    []*request
	busy     bool
	busyTime time.Duration
	served   uint64
	service  func(r *request) time.Duration
	done     func(r *request)
}

func (s *station) qlen() int {
	n := len(s.queue)
	if s.busy {
		n++
	}
	return n
}

func (s *station) submit(r *request) {
	s.queue = append(s.queue, r)
	if !s.busy {
		s.startNext()
	}
}

func (s *station) startNext() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	r := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true
	d := s.service(r)
	s.busyTime += d
	s.m.eng.After(d, func() {
		s.served++
		s.done(r)
		s.startNext()
	})
}

// distiller is a distillation worker in the model.
type distiller struct {
	id       int
	st       *station
	overflow bool
	alive    bool
	avg      *softstate.MovingAverage // manager-side WMA of reports
}

// Sample is one point of the recorded time series.
type Sample struct {
	T           time.Duration
	Offered     float64 // instantaneous offered rate
	QueueLens   map[int]int
	NDistillers int
	Completed   uint64
	Dropped     uint64
}

// SpawnEvent records an autoscaling action.
type SpawnEvent struct {
	T        time.Duration
	ID       int
	Overflow bool
	Reason   string
}

// RunStats summarizes a run.
type RunStats struct {
	Completed   uint64
	Dropped     uint64
	Timeouts    uint64
	Latencies   []float64 // seconds
	Latency     sim.Welford
	FEUtil      []float64 // per front end
	CacheUtil   []float64
	BeaconsSent uint64
	BeaconsLost uint64
}

// Model is the discrete-event system.
type Model struct {
	p   Params
	eng *sim.Engine

	arrRng *rand.Rand
	svcRng *rand.Rand
	misRng *rand.Rand
	sanRng *rand.Rand
	missMu float64

	fes    []*station
	caches []*station
	dists  []*distiller
	nextID int
	feRR   int

	scheds    []*lottery.Scheduler // one per front end: each FE has its own manager stub
	lastSpawn time.Duration
	spawning  bool
	// feKnown tracks which distillers the front ends have learned
	// about from a successfully delivered beacon — the manager-stub
	// location cache. A freshly spawned distiller receives no
	// traffic until a beacon carrying it gets through, which is how
	// SAN saturation cripples scaling (§4.6).
	feKnown map[int]bool

	stats     RunStats
	samples   []Sample
	spawns    []SpawnEvent
	dataBytes float64 // bytes moved in the current control window
	ctrlDrop  float64 // current control-drop probability
}

// New builds a model.
func New(p Params) *Model {
	p = p.withDefaults()
	m := &Model{
		p:      p,
		eng:    sim.New(p.Seed),
		missMu: 0, // lognormal mu for the miss penalty (median 1 s)
	}
	m.feKnown = make(map[int]bool)
	m.arrRng = m.eng.NewStream("arrivals")
	m.svcRng = m.eng.NewStream("service")
	m.misRng = m.eng.NewStream("miss")
	m.sanRng = m.eng.NewStream("san")
	m.lastSpawn = -p.Policy.Damping // allow an immediate first spawn

	for i := 0; i < p.FrontEnds; i++ {
		m.addFrontEnd()
	}
	for i := 0; i < p.CacheParts; i++ {
		m.addCachePart()
	}
	for i := 0; i < p.Distillers; i++ {
		d := m.spawnDistiller(false, "initial")
		m.feKnown[d.id] = true // learned during deployment
	}

	// Control plane.
	m.eng.Every(p.ReportInterval, p.ReportInterval, m.managerCollect)
	m.eng.Every(p.BeaconInterval, p.BeaconInterval, m.managerBeacon)
	m.eng.Every(0, p.SampleInterval, m.sample)
	m.scheduleNextArrival()
	return m
}

// vnow maps virtual time onto the wall-clock type the shared policy
// code expects.
func (m *Model) vnow() time.Time { return time.Unix(0, 0).Add(m.eng.Now()) }

// Engine exposes the underlying simulator (for scheduling external
// events like scripted kills).
func (m *Model) Engine() *sim.Engine { return m.eng }

// At schedules an external event.
func (m *Model) At(t time.Duration, fn func()) { m.eng.At(t, fn) }

// Run advances the simulation to time t.
func (m *Model) Run(until time.Duration) { m.eng.RunUntil(until) }

// Samples returns the recorded time series.
func (m *Model) Samples() []Sample { return m.samples }

// Spawns returns autoscaling events.
func (m *Model) Spawns() []SpawnEvent { return m.spawns }

// Stats returns run statistics; utilizations are computed against the
// current virtual time.
func (m *Model) Stats() RunStats {
	st := m.stats
	elapsed := m.eng.Now()
	if elapsed <= 0 {
		return st
	}
	for _, fe := range m.fes {
		st.FEUtil = append(st.FEUtil, float64(fe.busyTime)/float64(elapsed))
	}
	for _, c := range m.caches {
		st.CacheUtil = append(st.CacheUtil, float64(c.busyTime)/float64(elapsed))
	}
	return st
}

// Distillers returns the live distiller count.
func (m *Model) Distillers() int {
	n := 0
	for _, d := range m.dists {
		if d.alive {
			n++
		}
	}
	return n
}

// FrontEnds returns the front-end count.
func (m *Model) FrontEnds() int { return len(m.fes) }

// AddFrontEnd adds a front end mid-run (the Table 2 manual step).
func (m *Model) AddFrontEnd() { m.addFrontEnd() }

func (m *Model) addFrontEnd() {
	m.scheds = append(m.scheds, lottery.NewScheduler(m.p.Seed+int64(len(m.scheds)), m.p.UseDelta))
	fe := &station{
		m:    m,
		name: fmt.Sprintf("fe%d", len(m.fes)),
		service: func(r *request) time.Duration {
			// Deterministic per-request connection cost: the edge
			// handles FECapacity req/s.
			return time.Duration(float64(time.Second) / m.p.FECapacity)
		},
	}
	fe.done = func(r *request) { m.afterFE(r) }
	m.fes = append(m.fes, fe)
}

func (m *Model) addCachePart() {
	c := &station{
		m:    m,
		name: fmt.Sprintf("cache%d", len(m.caches)),
		service: func(r *request) time.Duration {
			ms := m.p.CacheFixedMs + sim.Exp(m.svcRng, m.p.CacheExpMs)
			return time.Duration(ms * float64(time.Millisecond))
		},
	}
	c.done = func(r *request) { m.afterCache(r) }
	m.caches = append(m.caches, c)
}

// spawnDistiller creates a distiller; overflow marks it as running on
// a recruited overflow node.
func (m *Model) spawnDistiller(overflow bool, reason string) *distiller {
	d := &distiller{
		id:       m.nextID,
		overflow: overflow,
		alive:    true,
		avg:      &softstate.MovingAverage{Alpha: 0.3},
	}
	m.nextID++
	d.st = &station{
		m:    m,
		name: fmt.Sprintf("distiller%d", d.id),
		service: func(r *request) time.Duration {
			ms := m.p.DistillMsPerKB * r.sizeKB
			if m.p.DistillNoise > 0 {
				ms *= sim.LogNormal(m.svcRng, -m.p.DistillNoise*m.p.DistillNoise/2, m.p.DistillNoise)
			}
			return time.Duration(ms * float64(time.Millisecond))
		},
	}
	d.st.done = func(r *request) { m.complete(r) }
	m.dists = append(m.dists, d)
	m.spawns = append(m.spawns, SpawnEvent{T: m.eng.Now(), ID: d.id, Overflow: overflow, Reason: reason})
	m.lastSpawn = m.eng.Now()
	return d
}

// KillDistiller crashes the distiller with the given index in the
// spawn order (Figure 8's manual kills). Queued requests are lost —
// their clients time out and retry is not modelled (the paper counts
// these as timeouts).
func (m *Model) KillDistiller(idx int) {
	if idx < 0 || idx >= len(m.dists) {
		return
	}
	d := m.dists[idx]
	if !d.alive {
		return
	}
	d.alive = false
	delete(m.feKnown, d.id)
	m.stats.Timeouts += uint64(d.st.qlen())
	d.st.queue = nil
	for _, sched := range m.scheds {
		sched.Forget(fmt.Sprintf("d%d", d.id))
	}
}

// scheduleNextArrival draws the next arrival by Poisson thinning.
func (m *Model) scheduleNextArrival() {
	dt := m.arrRng.ExpFloat64() / m.p.MaxRate
	m.eng.After(time.Duration(dt*float64(time.Second)), func() {
		rate := m.p.Rate(m.eng.Now())
		if rate > m.p.MaxRate {
			rate = m.p.MaxRate
		}
		if rate > 0 && m.arrRng.Float64() < rate/m.p.MaxRate {
			m.arrive()
		}
		m.scheduleNextArrival()
	})
}

func (m *Model) arrive() {
	idx := m.feRR % len(m.fes)
	m.feRR++
	r := &request{arrived: m.eng.Now(), sizeKB: m.p.SizeKB(m.svcRng), fe: idx}
	m.fes[idx].submit(r)
}

// afterFE routes a request from the front end to the cache stage.
func (m *Model) afterFE(r *request) {
	// SAN legs per request: FE<->cache fetch and FE<->distiller
	// round trip (the client-side legs ride the FE's own segment).
	m.dataBytes += r.sizeKB * 1024 * 4
	if m.svcRng.Float64() < m.p.HitRate {
		c := m.caches[int(r.arrived)%len(m.caches)]
		c.submit(r)
		return
	}
	// Miss: pay the origin penalty (no queueing — the bottleneck is
	// the wide area, not a local resource), then distill.
	penalty := sim.Clamp(sim.LogNormal(m.misRng, m.missMu, 1.5), 0.1, 100) * m.p.MissScale
	m.eng.After(sim.Seconds(penalty), func() { m.afterCache(r) })
}

// afterCache routes to a distiller (or completes for pass-through).
func (m *Model) afterCache(r *request) {
	if m.p.PassThrough {
		m.complete(r)
		return
	}
	var ids []string
	live := make(map[string]*distiller)
	for _, d := range m.dists {
		if d.alive && m.feKnown[d.id] {
			key := fmt.Sprintf("d%d", d.id)
			ids = append(ids, key)
			live[key] = d
		}
	}
	if len(ids) == 0 {
		m.stats.Dropped++
		return
	}
	sched := m.scheds[r.fe%len(m.scheds)]
	pick := sched.Pick(ids, m.vnow())
	d := live[pick]
	if d.st.qlen() >= m.p.BalkLimit {
		m.stats.Dropped++
		return
	}
	d.st.submit(r)
}

func (m *Model) complete(r *request) {
	lat := (m.eng.Now() - r.arrived).Seconds()
	m.stats.Completed++
	m.stats.Latency.Add(lat)
	m.stats.Latencies = append(m.stats.Latencies, lat)
}

// managerCollect is the report path: each live distiller reports its
// queue length; the manager folds it into a moving average. Reports
// are multicast-free (point to point) but still subject to SAN loss.
func (m *Model) managerCollect() {
	m.updateSANDrop()
	for _, d := range m.dists {
		if !d.alive {
			continue
		}
		if m.ctrlDrop > 0 && m.sanRng.Float64() < m.ctrlDrop {
			continue // report lost to SAN saturation
		}
		d.avg.Add(float64(d.st.qlen()))
	}
}

// managerBeacon is the beacon path: load hints reach the front ends'
// scheduler (possibly dropped under saturation), and the spawn/reap
// policy runs.
func (m *Model) managerBeacon() {
	m.stats.BeaconsSent++
	dropped := m.ctrlDrop > 0 && m.sanRng.Float64() < m.ctrlDrop
	if dropped {
		m.stats.BeaconsLost++
	} else {
		now := m.vnow()
		for _, d := range m.dists {
			if d.alive {
				m.feKnown[d.id] = true
				for _, sched := range m.scheds {
					sched.Report(fmt.Sprintf("d%d", d.id), d.avg.Value(), now)
				}
			}
		}
	}

	// Spawn/reap policy (shared with the live manager).
	classAvg, count, overflowCount := 0.0, 0, 0
	var reapCandidate *distiller
	for _, d := range m.dists {
		if !d.alive {
			continue
		}
		classAvg += d.avg.Value()
		count++
		if d.overflow {
			overflowCount++
			reapCandidate = d
		}
	}
	if count > 0 {
		classAvg /= float64(count)
	}
	now := time.Unix(0, 0).Add(m.lastSpawn)
	vnow := m.vnow()
	if !m.spawning && m.p.Policy.ShouldSpawn(classAvg, count, vnow, now) {
		m.spawning = true
		m.lastSpawn = m.eng.Now() // damp immediately at decision time
		overflow := count >= m.p.DedicatedNodes
		m.eng.After(m.p.SpawnDelay, func() {
			m.spawning = false
			m.spawnDistiller(overflow, "load threshold")
		})
	}
	if overflowCount > 0 && m.p.Policy.ShouldReap(classAvg, count, vnow, now) {
		reapCandidate.alive = false
		delete(m.feKnown, reapCandidate.id)
		for _, sched := range m.scheds {
			sched.Forget(fmt.Sprintf("d%d", reapCandidate.id))
		}
		// Queued work on a reaped worker drains first in a real
		// shutdown; model that by completing it instantly at the
		// mean service time cost already accounted.
		for _, r := range reapCandidate.st.queue {
			m.complete(r)
		}
		reapCandidate.st.queue = nil
	}
}

// updateSANDrop recomputes the control-loss probability from the data
// traffic of the last control window (§4.6: data saturating the SAN
// starves the unreliable multicast control channel).
func (m *Model) updateSANDrop() {
	if m.p.SANCapacityMbps <= 0 || m.p.ControlIsolated {
		m.ctrlDrop = 0
		m.dataBytes = 0
		return
	}
	window := m.p.ReportInterval.Seconds()
	offeredMbps := m.dataBytes * 8 / 1e6 / window
	m.dataBytes = 0
	util := offeredMbps / m.p.SANCapacityMbps
	if util <= 1 {
		m.ctrlDrop = 0
		return
	}
	m.ctrlDrop = 1 - 1/util
}

func (m *Model) sample() {
	qs := make(map[int]int)
	for _, d := range m.dists {
		if d.alive {
			qs[d.id] = d.st.qlen()
		}
	}
	m.samples = append(m.samples, Sample{
		T:           m.eng.Now(),
		Offered:     m.p.Rate(m.eng.Now()),
		QueueLens:   qs,
		NDistillers: len(qs),
		Completed:   m.stats.Completed,
		Dropped:     m.stats.Dropped,
	})
}
