package snsim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/manager"
)

func TestFigure8Shape(t *testing.T) {
	res := RunFigure8(1)

	// Load ramp forces multiple spawns before the kill.
	spawnsBeforeKill := res.SpawnsAfter(0, res.KillAt)
	if spawnsBeforeKill < 2 {
		t.Fatalf("only %d spawns during the ramp, want >= 2", spawnsBeforeKill)
	}
	// Killing two distillers triggers recovery spawns within ~2
	// damping windows.
	recovery := res.SpawnsAfter(res.KillAt, res.KillAt+2*res.Policy.Damping+5*time.Second)
	if recovery < 1 {
		t.Fatalf("no recovery spawn after the kill")
	}
	// The surviving distiller's queue spikes right after the kill...
	spike := res.MaxQueueNear(res.KillAt, res.KillAt+10*time.Second)
	if spike < int(res.Policy.SpawnThreshold) {
		t.Fatalf("no queue spike after kill: max=%d", spike)
	}
	// ...and the system stabilizes by the end: bounded queues.
	endMax := res.MaxQueueNear(res.Horizon-20*time.Second, res.Horizon)
	if endMax > 4*int(res.Policy.SpawnThreshold) {
		t.Fatalf("queues did not stabilize: end max=%d", endMax)
	}
	// Determinism.
	res2 := RunFigure8(1)
	if len(res2.Spawns) != len(res.Spawns) {
		t.Fatalf("same seed, different runs: %d vs %d spawns", len(res.Spawns), len(res2.Spawns))
	}
}

func TestFigure8LoadIsBalanced(t *testing.T) {
	res := RunFigure8(2)
	// Near the end of the run, queues across distillers should be
	// within a reasonable band of each other (the paper: balanced
	// "within five seconds" of each spawn).
	if !res.BalancedAt(res.Horizon-5*time.Second, 25) {
		t.Fatal("queues unbalanced at end of run")
	}
}

func TestTable2LinearScaling(t *testing.T) {
	res := RunTable2(1)
	if len(res.Rows) < 4 {
		t.Fatalf("too few rows: %+v", res.Rows)
	}
	// Distiller capacity near the paper's ~23 req/s.
	if res.PerDistillerReqS < 17 || res.PerDistillerReqS > 30 {
		t.Fatalf("per-distiller capacity = %.1f req/s, want ~23", res.PerDistillerReqS)
	}
	// FE link saturates in the paper's 60-100 req/s band.
	if res.PerFrontEndReqS < 56 || res.PerFrontEndReqS > 100 {
		t.Fatalf("per-FE capacity = %.0f req/s, want ~70-90", res.PerFrontEndReqS)
	}
	// Monotone growth: resources never shrink as load rises, and
	// distillers grow roughly linearly with load.
	prevD, prevFE := 0, 0
	for _, row := range res.Rows {
		if row.Distillers < prevD || row.FrontEnds < prevFE {
			t.Fatalf("resources shrank: %+v", res.Rows)
		}
		prevD, prevFE = row.Distillers, row.FrontEnds
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Distillers < 5 || last.FrontEnds < 2 {
		t.Fatalf("sweep ended too small: %+v", last)
	}
	// The experiment reaches well past 100 req/s like the paper's
	// 159 req/s endpoint.
	if res.MaxLoadReached < 120 {
		t.Fatalf("max load reached = %d", res.MaxLoadReached)
	}
}

func TestOscillationAblation(t *testing.T) {
	raw := RunOscillation(1, false)
	fixed := RunOscillation(1, true)
	// The §4.5 estimator must materially reduce queue sloshing.
	if fixed.Spread >= raw.Spread*0.7 {
		t.Fatalf("estimator did not damp oscillation: raw spread %.2f, fixed %.2f",
			raw.Spread, fixed.Spread)
	}
}

func TestSANSaturationCripplesControl(t *testing.T) {
	slow := RunSANSaturation(1, 10, false)
	fast := RunSANSaturation(1, 100, false)
	isolated := RunSANSaturation(1, 10, true)

	if slow.BeaconLossRate < 0.4 {
		t.Fatalf("10 Mb/s SAN should drop most control traffic, loss=%.2f", slow.BeaconLossRate)
	}
	if fast.BeaconLossRate > 0.01 {
		t.Fatalf("100 Mb/s SAN dropped beacons: %.2f", fast.BeaconLossRate)
	}
	if isolated.BeaconLossRate > 0.01 {
		t.Fatalf("utility network did not protect control traffic: %.2f", isolated.BeaconLossRate)
	}
	// Control loss must hurt: slower scale-up shows as worse tail
	// latency, and blind spawning over-provisions (the manager
	// cannot see that its new workers are absorbing load).
	if slow.P95LatencyS < isolated.P95LatencyS*1.1 {
		t.Fatalf("control loss did not degrade tail latency: %.2f vs %.2f",
			slow.P95LatencyS, isolated.P95LatencyS)
	}
	if slow.Spawns <= isolated.Spawns {
		t.Fatalf("control loss should cause spawn overshoot: %d vs %d",
			slow.Spawns, isolated.Spawns)
	}
	// The utility network restores healthy-SAN behaviour.
	if isolated.P95LatencyS > fast.P95LatencyS*1.02 {
		t.Fatalf("isolation did not restore health: %.2f vs %.2f",
			isolated.P95LatencyS, fast.P95LatencyS)
	}
}

func TestCacheServiceNumbers(t *testing.T) {
	res := RunCacheService(1)
	if res.MeanHitMs < 24 || res.MeanHitMs > 30 {
		t.Fatalf("mean hit = %.1f ms, want ~27", res.MeanHitMs)
	}
	if res.P95HitMs > 100 {
		t.Fatalf("p95 hit = %.1f ms, want < 100 (paper: 95%% under 100ms)", res.P95HitMs)
	}
	if res.MaxRatePerS < 33 || res.MaxRatePerS > 42 {
		t.Fatalf("per-partition capacity = %.1f req/s, want ~37", res.MaxRatePerS)
	}
	if res.MissMinS < 0.09 || res.MissMaxS > 101 {
		t.Fatalf("miss penalty range [%.2f, %.2f], want ~[0.1, 100]", res.MissMinS, res.MissMaxS)
	}
}

func TestCacheCurveShape(t *testing.T) {
	// Scaled-down but same shape: hit rate monotone in cache size,
	// then plateaus.
	base := CacheCurveParams{
		Seed:       1,
		Users:      800,
		ReqPerUser: 100,
		Universe:   200000,
	}
	var prev float64
	var rates []float64
	for _, gb := range []float64{0.05, 0.2, 0.8, 3.2} {
		p := base
		p.CacheBytes = int64(gb * float64(1<<30))
		r := RunCacheCurve(p)
		rates = append(rates, r.HitRate)
		if r.HitRate+0.02 < prev {
			t.Fatalf("hit rate fell with larger cache: %v", rates)
		}
		prev = r.HitRate
	}
	// Plateau: the last doubling gains little.
	if rates[3]-rates[2] > 0.1 {
		t.Fatalf("no plateau: %v", rates)
	}
}

func TestCacheCurvePopulationDecline(t *testing.T) {
	// The paper: hit rate rises with population "until the sum of
	// the users' working sets exceeds the cache size, causing the
	// cache hit rate to fall". With a small cache, a large
	// population's private working sets thrash it.
	if testing.Short() {
		t.Skip("long LRU simulation")
	}
	// Private-set reuse only exists when users make enough requests
	// to revisit their sets (~250 req/user, like the trace), and the
	// decline only bites once the sum of private sets outgrows the
	// cache: 250*25*6KB ≈ 37 MB and 1000*25*6KB ≈ 150 MB fit in
	// 256 MB, 3000*25*6KB ≈ 450 MB does not. (Scaled down from the
	// paper-sized populations so the full suite stays fast; the shape
	// is what matters.)
	point := func(users int) CacheCurveResult {
		return RunCacheCurve(CacheCurveParams{
			Seed: 1, Users: users, ReqPerUser: 250, Universe: 200000,
			PrivateSet: 25, CacheBytes: 256 << 20,
		})
	}
	small := point(250)
	mid := point(1000)
	big := point(3000)
	if mid.HitRate <= small.HitRate {
		t.Fatalf("rise missing: %d users %.3f vs %d users %.3f",
			small.Params.Users, small.HitRate, mid.Params.Users, mid.HitRate)
	}
	if big.HitRate >= mid.HitRate {
		t.Fatalf("decline missing: %d users %.3f vs %d users %.3f",
			mid.Params.Users, mid.HitRate, big.Params.Users, big.HitRate)
	}
}

func TestCacheCurvePopulationEffect(t *testing.T) {
	// With a big cache, more users -> more cross-user locality ->
	// higher hit rate.
	big := int64(8) << 30
	small := RunCacheCurve(CacheCurveParams{Seed: 1, Users: 200, ReqPerUser: 100, Universe: 200000, CacheBytes: big})
	large := RunCacheCurve(CacheCurveParams{Seed: 1, Users: 3200, ReqPerUser: 100, Universe: 200000, CacheBytes: big})
	if large.HitRate <= small.HitRate {
		t.Fatalf("population effect missing: %d users %.2f vs %d users %.2f",
			small.Params.Users, small.HitRate, large.Params.Users, large.HitRate)
	}
}

func TestModelDeterminism(t *testing.T) {
	run := func() uint64 {
		m := New(Params{Seed: 7, Rate: func(time.Duration) float64 { return 30 }, Distillers: 2,
			Policy: manager.Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1}})
		m.Run(30 * time.Second)
		return m.Stats().Completed
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Fatalf("model not deterministic: %d vs %d", a, b)
	}
}

func TestModelThroughputSanity(t *testing.T) {
	// Offered 20 req/s with ample capacity: completions track the
	// offered load.
	m := New(Params{
		Seed:       3,
		Rate:       func(time.Duration) float64 { return 20 },
		Distillers: 2,
		Policy:     manager.Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1},
	})
	m.Run(60 * time.Second)
	st := m.Stats()
	got := float64(st.Completed) / 60
	if got < 17 || got > 23 {
		t.Fatalf("throughput = %.1f req/s, offered 20", got)
	}
	if st.Dropped > 0 {
		t.Fatalf("drops under light load: %d", st.Dropped)
	}
	// Latency is dominated by the ~43 ms distillation plus ~27 ms
	// cache hit plus 13 ms FE: mean well under a second.
	if st.Latency.Mean() > 0.5 {
		t.Fatalf("mean latency %.3f s too high", st.Latency.Mean())
	}
}

func TestOverflowRecruitAndReap(t *testing.T) {
	// Small dedicated pool; a burst forces overflow recruitment and
	// the post-burst lull reaps it.
	var burst = func(t time.Duration) float64 {
		if t > 10*time.Second && t < 70*time.Second {
			return 90
		}
		return 4
	}
	m := New(Params{
		Seed:           4,
		Rate:           burst,
		SizeKB:         func(*rand.Rand) float64 { return 10 },
		Distillers:     1,
		DedicatedNodes: 2, // dedicated slots exhaust quickly
		Policy:         manager.Policy{SpawnThreshold: 8, Damping: 3 * time.Second, ReapThreshold: 0.5},
		UseDelta:       true,
		SpawnDelay:     500 * time.Millisecond,
		BalkLimit:      100000,
	})
	m.Run(3 * time.Minute)
	sawOverflow := false
	for _, s := range m.Spawns() {
		if s.Overflow {
			sawOverflow = true
		}
	}
	if !sawOverflow {
		t.Fatalf("burst never recruited the overflow pool: %+v", m.Spawns())
	}
	// After the burst subsides, overflow workers get reaped.
	finalOverflow := 0
	for _, d := range m.dists {
		if d.alive && d.overflow {
			finalOverflow++
		}
	}
	if finalOverflow > 0 {
		t.Fatalf("%d overflow workers still alive after the burst", finalOverflow)
	}
}

func TestEconomics(t *testing.T) {
	res := RunEconomics(23)
	if res.Subscribers < 10000 {
		t.Fatalf("subscribers = %d, want >= 10000 (paper: ~15000)", res.Subscribers)
	}
	if res.CostPerUserMonth > 1.0 {
		t.Fatalf("cost/user/month = $%.2f, want well under $1 (paper: ~$0.25)", res.CostPerUserMonth)
	}
	if res.PaybackMonths < 1 || res.PaybackMonths > 3 {
		t.Fatalf("payback = %.1f months, want ~2", res.PaybackMonths)
	}
}

func TestKillDistillerBounds(t *testing.T) {
	m := New(Params{Seed: 5, Distillers: 1,
		Policy: manager.Policy{SpawnThreshold: 1e9, Damping: time.Hour, ReapThreshold: -1}})
	m.KillDistiller(-1) // no panic
	m.KillDistiller(99)
	m.KillDistiller(0)
	m.KillDistiller(0) // double-kill tolerated
	if m.Distillers() != 0 {
		t.Fatal("kill did not take effect")
	}
}

func TestFigure8ResultHelpers(t *testing.T) {
	res := Figure8Result{
		Samples: []Sample{
			{T: 10 * time.Second, QueueLens: map[int]int{0: 5, 1: 7}},
			{T: 20 * time.Second, QueueLens: map[int]int{0: 30, 1: 2}},
		},
		Spawns: []SpawnEvent{{T: 5 * time.Second}, {T: 15 * time.Second}},
	}
	if got := res.SpawnsAfter(0, 10*time.Second); got != 1 {
		t.Fatalf("SpawnsAfter = %d", got)
	}
	if got := res.SpawnsAfter(0, time.Minute); got != 2 {
		t.Fatalf("SpawnsAfter all = %d", got)
	}
	if got := res.MaxQueueNear(0, time.Minute); got != 30 {
		t.Fatalf("MaxQueueNear = %d", got)
	}
	if got := res.MaxQueueNear(0, 12*time.Second); got != 7 {
		t.Fatalf("MaxQueueNear early = %d", got)
	}
	if !res.BalancedAt(10*time.Second, 2) {
		t.Fatal("BalancedAt should accept spread 2 <= tol 2")
	}
	if res.BalancedAt(20*time.Second, 2) {
		t.Fatal("BalancedAt should reject spread 28")
	}
	if (Figure8Result{}).BalancedAt(0, 5) {
		t.Fatal("empty result cannot be balanced")
	}
}

func TestTable2Render(t *testing.T) {
	res := Table2Result{
		Rows: []Table2Row{
			{LoadFrom: 4, LoadTo: 20, FrontEnds: 1, Distillers: 1, Saturated: "distillers"},
		},
		PerDistillerReqS: 23.5,
		PerFrontEndReqS:  72,
	}
	out := res.Render()
	for _, want := range []string{"4-20", "distillers", "23.5", "72"} {
		if !contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
