package snsim

import (
	"container/list"
	"math/rand"

	"repro/internal/trace"
)

// This file reproduces the §4.4 cache simulations: "we ran a number of
// cache simulations to explore the relationship between user
// population size, cache size, and cache hit rate, using LRU
// replacement". The paper's findings:
//
//   - hit rate increases monotonically with cache size, then plateaus
//     at a level set by the population size (6 GB -> ~56% for the
//     traced ~8000 users);
//   - for a fixed cache size, a larger population raises the hit rate
//     (cross-user locality) until the sum of working sets exceeds the
//     cache, after which it falls.

// CacheCurveParams configures one LRU simulation point.
type CacheCurveParams struct {
	Seed       int64
	Users      int
	ReqPerUser int
	// Universe is the number of distinct objects reachable (the
	// "web"); it does not scale with population.
	Universe int
	// Popularity is a three-way mixture per request:
	//   Locality     -> the shared Zipf head (cross-user popular set),
	//   PrivateFrac  -> the requesting user's private working set of
	//                   PrivateSet objects (bookmarks, home pages);
	//                   the paper's "sum of the users' working sets",
	//   remainder    -> uniform one-timers over the whole universe.
	// ZipfS/ZipfV shape the head: P(k) ~ (ZipfV+k)^-ZipfS.
	Locality    float64
	PrivateFrac float64
	PrivateSet  int
	ZipfS       float64
	ZipfV       int
	// CacheBytes is the total virtual-cache budget across all
	// partitions.
	CacheBytes int64
}

func (p CacheCurveParams) withDefaults() CacheCurveParams {
	if p.Users <= 0 {
		p.Users = 8000
	}
	if p.ReqPerUser <= 0 {
		p.ReqPerUser = 250
	}
	if p.Universe <= 0 {
		p.Universe = 2_000_000
	}
	if p.Locality == 0 {
		p.Locality = 0.48
	}
	if p.PrivateFrac == 0 {
		p.PrivateFrac = 0.22
	}
	if p.PrivateSet <= 0 {
		p.PrivateSet = 60
	}
	if p.ZipfS == 0 {
		p.ZipfS = 1.1
	}
	if p.ZipfV <= 0 {
		p.ZipfV = 4
	}
	if p.CacheBytes <= 0 {
		p.CacheBytes = 6 << 30
	}
	return p
}

// CacheCurveResult is one simulated point.
type CacheCurveResult struct {
	Params      CacheCurveParams
	Requests    int
	HitRate     float64
	UniqueBytes int64 // total working set touched
	ColdMisses  int
}

// byteLRU is a sizes-only LRU cache (no payloads — this is a
// simulation of byte occupancy, not a data store).
type byteLRU struct {
	budget int64
	used   int64
	ll     *list.List
	index  map[int]*list.Element
}

type lruEnt struct {
	obj  int
	size int64
}

func newByteLRU(budget int64) *byteLRU {
	return &byteLRU{budget: budget, ll: list.New(), index: make(map[int]*list.Element)}
}

// access touches an object, returning true on a hit; on a miss the
// object is inserted and LRU entries evicted to fit.
func (c *byteLRU) access(obj int, size int64) bool {
	if el, ok := c.index[obj]; ok {
		c.ll.MoveToFront(el)
		return true
	}
	if size > c.budget {
		return false // uncacheable
	}
	el := c.ll.PushFront(lruEnt{obj: obj, size: size})
	c.index[obj] = el
	c.used += size
	for c.used > c.budget {
		back := c.ll.Back()
		ent := back.Value.(lruEnt)
		c.ll.Remove(back)
		delete(c.index, ent.obj)
		c.used -= ent.size
	}
	return false
}

// RunCacheCurve simulates one (population, cache size) point.
//
// Every user draws from the same global popularity distribution (the
// paper's cross-user locality); a larger population therefore
// generates more requests over the same popular objects, raising the
// attainable hit rate — until the touched working set outgrows the
// cache.
func RunCacheCurve(p CacheCurveParams) CacheCurveResult {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	z := rand.NewZipf(rng, p.ZipfS, float64(p.ZipfV), uint64(p.Universe-1))
	draw := func() int {
		u := rng.Float64()
		switch {
		case u < p.Locality:
			return int(z.Uint64())
		case u < p.Locality+p.PrivateFrac:
			// The requesting user's private working set lives past
			// the shared universe in id space.
			user := rng.Intn(p.Users)
			return p.Universe + user*p.PrivateSet + rng.Intn(p.PrivateSet)
		default:
			return rng.Intn(p.Universe)
		}
	}
	model := trace.NewContentModel()

	cache := newByteLRU(p.CacheBytes)
	requests := p.Users * p.ReqPerUser
	hits := 0
	cold := 0
	var uniqueBytes int64
	// sizes memoizes the deterministic per-object size: sampling the
	// content model (a fresh seeded rng per draw) dominated the
	// simulation's runtime, and repeat accesses — the common case in
	// a locality-driven workload — need only the lookup.
	sizes := make(map[int]int64, requests/4)

	for i := 0; i < requests; i++ {
		obj := draw()
		size, ok := sizes[obj]
		if !ok {
			size = objSize(p.Seed, obj, model)
			sizes[obj] = size
			uniqueBytes += size
			cold++
		}
		if cache.access(obj, size) {
			hits++
		}
	}
	return CacheCurveResult{
		Params:      p,
		Requests:    requests,
		HitRate:     float64(hits) / float64(requests),
		UniqueBytes: uniqueBytes,
		ColdMisses:  cold,
	}
}

// objSize returns a deterministic per-object size without the full
// content-generation cost.
func objSize(seed int64, obj int, model *trace.ContentModel) int64 {
	r := rand.New(rand.NewSource(seed ^ int64(obj)*0x9e3779b9 + 0x5151))
	_, size := model.Sample(r)
	return int64(size)
}
